GO ?= go

.PHONY: all build vet test race verify bench chaos bench-durability

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the subsystems with real concurrency: replay/logging,
# the VM, and the parallel slicing engine (plus its dual-slice consumer).
race:
	$(GO) test -race ./internal/pinplay/... ./internal/vm/... ./internal/slice/... ./internal/dualslice/...

# Tier-1 verify (see ROADMAP.md).
verify: build vet test race

# Regenerate BENCH_slice.json (parallel slicing engine benchmark).
bench:
	$(GO) run ./cmd/drbench -experiment slicebench -workers 4

# Crash-injection suite under the race detector: torn files at every
# section boundary, injected tracer panics, stalled replays, persistent
# divergence — every fault must end in recovery or a typed error.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/... ./internal/supervisor/...

# Regenerate BENCH_durability.json (crash-safe write overhead).
bench-durability:
	$(GO) run ./cmd/drbench -experiment durbench
