GO ?= go

.PHONY: all build vet test race verify bench chaos soak fleet-soak bench-durability ring-chaos bench-ring matrix-smoke store-chaos

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the subsystems with real concurrency: replay/logging,
# the VM, the parallel slicing engine (plus its dual-slice consumer),
# the shared LRU caches, and the coordinator/worker fleet.
race:
	$(GO) test -race ./internal/pinplay/... ./internal/vm/... ./internal/slice/... ./internal/dualslice/... ./internal/lru/... ./internal/fleet/...

# Tier-1 verify (see ROADMAP.md).
verify: build vet test race

# Regenerate BENCH_slice.json (parallel slicing engine benchmark).
bench:
	$(GO) run ./cmd/drbench -experiment slicebench -workers 4

# Crash-injection suite under the race detector: torn files at every
# section boundary, injected tracer panics, stalled replays, persistent
# divergence — every fault must end in recovery or a typed error.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/... ./internal/supervisor/...

# Chaos soak against a live session daemon under the race detector:
# 32 concurrent clients, scheduled tracer panics/stalls, corrupt and
# tampered pinballs, quota violations, a breaker short-circuit phase and
# a graceful drain. SOAK_REQS scales the per-client request count.
SOAK_REQS ?= 12
soak:
	DRDEBUG_SOAK_REQS=$(SOAK_REQS) $(GO) test -race -count=1 -run TestChaosSoak -v ./internal/sessiond/

# Multi-process fleet chaos soak: a real drserved coordinator fronting
# three real drserved workers, 100 concurrent clients, one worker
# SIGKILLed and one SIGSTOPped mid-run. Every accepted request must end
# in a typed response and every completed slice must be bit-identical
# (by digest) to a single-node daemon's answer. FLEET_SOAK_REQS scales
# the per-client request count.
FLEET_SOAK_REQS ?= 3
fleet-soak:
	DRDEBUG_SOAK_REQS=$(FLEET_SOAK_REQS) $(GO) test -race -count=1 -run TestFleetChaosSoak -v ./internal/fleet/

# Regenerate BENCH_durability.json (crash-safe write overhead).
bench-durability:
	$(GO) run ./cmd/drbench -experiment durbench

# Flight-recorder chaos under the race detector: ring eviction and
# gap-bridging differential tests, tampered window hashes and resume
# recipes (every policy must yield a typed degraded outcome, never a
# clean exit), plus the ring scenario matrix (exact bridges, provenance
# slicing, ring fault rows).
ring-chaos:
	$(GO) test -race -count=1 -run 'Ring|Bridge|Gap' ./internal/pinplay/... ./internal/pinball/... ./internal/faultinject/... ./internal/core/... ./internal/slice/...
	$(GO) run -race ./cmd/drmatrix run -json ring-grid.json scenarios/ring.yaml

# Content-addressed store chaos under the race detector: the store
# corruptor matrix (bit-flipped chunk, torn manifest tail, dangling
# index entry, duplicate-digest collision — each caught as its declared
# typed sentinel; grid artifact written to store-grid.json), the store
# and spool-cache unit suites, then the multi-process GC-under-load
# soak: a coordinator over three stored workers, digest-only clients,
# one worker SIGKILLed mid-fetch, one object corrupted under load and
# GC running concurrently. STORE_SOAK_REQS scales the soak.
STORE_SOAK_REQS ?= 3
store-chaos:
	DRDEBUG_STORE_GRID=$(CURDIR)/store-grid.json $(GO) test -race -count=1 -run 'TestStore' -v ./internal/faultinject/
	$(GO) test -race -count=1 ./internal/store/ ./internal/lru/
	DRDEBUG_SOAK_REQS=$(STORE_SOAK_REQS) $(GO) test -race -count=1 -run TestStoreChaosSoak -v ./internal/fleet/

# Regenerate BENCH_ring.json (flight-recorder ring overhead).
bench-ring:
	$(GO) run ./cmd/drbench -experiment ringbench

# Bounded scenario-matrix smoke under the race detector: the Table 1
# bug kernels explored by Maple across 8 seeds each, with replay and
# slice-closure assertions, plus the matrix engine's own determinism
# tests. Writes the grid artifact to matrix-grid.json for CI upload.
matrix-smoke:
	$(GO) test -race -count=1 ./internal/matrix/
	$(GO) run -race ./cmd/drmatrix run -q -json matrix-grid.json scenarios/table1.yaml
