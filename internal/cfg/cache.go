package cfg

import (
	"sync"

	"repro/internal/isa"
	"repro/internal/lru"
)

// Process-lifetime CFG cache. Building a function's CFG and its
// post-dominator tree is a pure function of (code, function range,
// indirect-target sets), so graphs can be shared across analyzers,
// sessions and repeated slice queries of a cyclic-debugging session.
// The cache key folds a fingerprint of the program code, the function
// entry and a digest of the observed indirect targets inside the
// function; a refinement that adds a target simply keys a new entry, so
// stale graphs are never returned (no invalidation protocol needed —
// superseded entries just stop being requested).

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fold(h uint64, v int64) uint64 { return (h ^ uint64(v)) * fnvPrime }

// Fingerprint digests a program's code so cache keys distinguish
// programs beyond their name. Computed once per program (cached behind
// a lock, keyed by pointer identity — Program values are immutable
// once built).
func Fingerprint(prog *isa.Program) uint64 {
	fingerMu.Lock()
	if h, ok := fingerprints[prog]; ok {
		fingerMu.Unlock()
		return h
	}
	fingerMu.Unlock()

	h := fnvOffset
	for _, b := range []byte(prog.Name) {
		h = fold(h, int64(b))
	}
	for _, in := range prog.Code {
		h = fold(h, int64(in.Op))
		h = fold(h, int64(in.Rd))
		h = fold(h, int64(in.Rs1))
		h = fold(h, int64(in.Rs2))
		h = fold(h, in.Imm)
	}

	fingerMu.Lock()
	fingerprints[prog] = h
	fingerMu.Unlock()
	return h
}

var (
	fingerMu     sync.Mutex
	fingerprints = make(map[*isa.Program]uint64)
)

// graphKey identifies one cached FuncGraph.
type graphKey struct {
	prog    uint64 // program fingerprint
	entry   int64  // function entry pc
	targets uint64 // digest of the indirect-target sets inside the function
}

// targetsDigest folds the (sorted) indirect-target map an analyzer
// passes to Build.
func targetsDigest(targets map[int64][]int64) uint64 {
	h := fnvOffset
	// Fold order must be deterministic: iterate jump pcs in sorted order.
	// The per-pc target lists are already sorted by the analyzer.
	pcs := make([]int64, 0, len(targets))
	for pc := range targets {
		pcs = append(pcs, pc)
	}
	for i := 1; i < len(pcs); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && pcs[j] < pcs[j-1]; j-- {
			pcs[j], pcs[j-1] = pcs[j-1], pcs[j]
		}
	}
	for _, pc := range pcs {
		h = fold(h, pc)
		for _, t := range targets[pc] {
			h = fold(h, t)
		}
	}
	return h
}

// DefaultGraphCacheCap bounds the graph cache. Unlike the pre-LRU map
// (dropped wholesale when full), the LRU evicts per-graph, so a daemon
// serving many programs keeps its hottest CFGs resident.
const DefaultGraphCacheCap = 8192

var sharedGraphs = lru.New[graphKey, *FuncGraph](DefaultGraphCacheCap)

// CacheStats reports the process-lifetime CFG cache counters.
type CacheStats struct {
	Entries   int
	Hits      int64
	Misses    int64
	Evictions int64
}

// CachedGraph returns the graph for key, building it through build on
// first use. Concurrent callers of the same key share one build
// (single-flight) — analyzers in different sessions race to the same
// function graphs when concurrent slice sessions study one program.
func CachedGraph(key graphKey, build func() (*FuncGraph, error)) (*FuncGraph, error) {
	return sharedGraphs.GetOrLoad(key, build)
}

// SetGraphCacheCap bounds the number of resident graphs (minimum 1),
// evicting least-recently-used graphs immediately if over the new cap.
func SetGraphCacheCap(n int) { sharedGraphs.SetCap(n) }

// GraphCacheCap returns the current graph-cache capacity.
func GraphCacheCap() int { return sharedGraphs.Cap() }

// GraphCacheStats returns the shared cache's current counters.
func GraphCacheStats() CacheStats {
	st := sharedGraphs.Stats()
	return CacheStats{
		Entries:   st.Entries,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
	}
}

// ResetGraphCache empties the shared cache and counters (tests).
func ResetGraphCache() { sharedGraphs.Reset() }
