package cfg

import (
	"sync"
	"sync/atomic"

	"repro/internal/isa"
)

// Process-lifetime CFG cache. Building a function's CFG and its
// post-dominator tree is a pure function of (code, function range,
// indirect-target sets), so graphs can be shared across analyzers,
// sessions and repeated slice queries of a cyclic-debugging session.
// The cache key folds a fingerprint of the program code, the function
// entry and a digest of the observed indirect targets inside the
// function; a refinement that adds a target simply keys a new entry, so
// stale graphs are never returned (no invalidation protocol needed —
// superseded entries just stop being requested).

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fold(h uint64, v int64) uint64 { return (h ^ uint64(v)) * fnvPrime }

// Fingerprint digests a program's code so cache keys distinguish
// programs beyond their name. Computed once per program (cached behind
// a lock, keyed by pointer identity — Program values are immutable
// once built).
func Fingerprint(prog *isa.Program) uint64 {
	fingerMu.Lock()
	if h, ok := fingerprints[prog]; ok {
		fingerMu.Unlock()
		return h
	}
	fingerMu.Unlock()

	h := fnvOffset
	for _, b := range []byte(prog.Name) {
		h = fold(h, int64(b))
	}
	for _, in := range prog.Code {
		h = fold(h, int64(in.Op))
		h = fold(h, int64(in.Rd))
		h = fold(h, int64(in.Rs1))
		h = fold(h, int64(in.Rs2))
		h = fold(h, in.Imm)
	}

	fingerMu.Lock()
	fingerprints[prog] = h
	fingerMu.Unlock()
	return h
}

var (
	fingerMu     sync.Mutex
	fingerprints = make(map[*isa.Program]uint64)
)

// graphKey identifies one cached FuncGraph.
type graphKey struct {
	prog    uint64 // program fingerprint
	entry   int64  // function entry pc
	targets uint64 // digest of the indirect-target sets inside the function
}

// targetsDigest folds the (sorted) indirect-target map an analyzer
// passes to Build.
func targetsDigest(targets map[int64][]int64) uint64 {
	h := fnvOffset
	// Fold order must be deterministic: iterate jump pcs in sorted order.
	// The per-pc target lists are already sorted by the analyzer.
	pcs := make([]int64, 0, len(targets))
	for pc := range targets {
		pcs = append(pcs, pc)
	}
	for i := 1; i < len(pcs); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && pcs[j] < pcs[j-1]; j-- {
			pcs[j], pcs[j-1] = pcs[j-1], pcs[j]
		}
	}
	for _, pc := range pcs {
		h = fold(h, pc)
		for _, t := range targets[pc] {
			h = fold(h, t)
		}
	}
	return h
}

// cacheMaxEntries bounds the graph cache; when full, the cache is
// dropped wholesale (simple, and refills in one forward pass).
const cacheMaxEntries = 8192

// graphCache is the process-lifetime store.
type graphCache struct {
	mu     sync.RWMutex
	graphs map[graphKey]*FuncGraph

	hits   atomic.Int64
	misses atomic.Int64
}

var sharedGraphs = &graphCache{graphs: make(map[graphKey]*FuncGraph)}

func (c *graphCache) get(k graphKey) (*FuncGraph, bool) {
	c.mu.RLock()
	g, ok := c.graphs[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return g, ok
}

func (c *graphCache) put(k graphKey, g *FuncGraph) {
	c.mu.Lock()
	if len(c.graphs) >= cacheMaxEntries {
		c.graphs = make(map[graphKey]*FuncGraph)
	}
	c.graphs[k] = g
	c.mu.Unlock()
}

// CacheStats reports the process-lifetime CFG cache counters.
type CacheStats struct {
	Entries int
	Hits    int64
	Misses  int64
}

// GraphCacheStats returns the shared cache's current counters.
func GraphCacheStats() CacheStats {
	sharedGraphs.mu.RLock()
	n := len(sharedGraphs.graphs)
	sharedGraphs.mu.RUnlock()
	return CacheStats{
		Entries: n,
		Hits:    sharedGraphs.hits.Load(),
		Misses:  sharedGraphs.misses.Load(),
	}
}

// ResetGraphCache empties the shared cache and counters (tests).
func ResetGraphCache() {
	sharedGraphs.mu.Lock()
	sharedGraphs.graphs = make(map[graphKey]*FuncGraph)
	sharedGraphs.mu.Unlock()
	sharedGraphs.hits.Store(0)
	sharedGraphs.misses.Store(0)
}
