// Package cfg builds control-flow graphs from machine code, computes
// immediate post-dominators, and supports the paper's Section 5.1 dynamic
// refinement: indirect-jump targets observed at run time are added as CFG
// edges and the post-dominator information is recomputed, making dynamic
// control-dependence detection precise for binaries with jump tables.
//
// It is the analogue of the static analyzer DrDebug builds on Pin's static
// code discovery library.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Block is one basic block: the half-open pc range [Start, End).
type Block struct {
	ID    int
	Start int64
	End   int64
	Succs []int
	Preds []int
	// ToExit is set when the block's terminator leaves the function
	// (RET, HALT) or when an indirect jump has no known targets yet, in
	// which case the conservative approximation routes it to the virtual
	// exit node.
	ToExit bool
}

// FuncGraph is the CFG of one function plus its immediate post-dominator
// tree. The virtual exit node has id ExitID == len(Blocks).
type FuncGraph struct {
	Fn     isa.Func
	Blocks []*Block
	ExitID int

	// ipdom maps block id -> immediate post-dominator block id, with
	// ExitID acting as the root of the post-dominator tree.
	ipdom []int

	starts []int64 // Blocks[i].Start, for binary search
}

// Build constructs the CFG of fn from the program code. indirectTargets
// maps a JMPI pc to the set of targets to assume for it; static
// construction passes nil (the paper's "approximate CFG"), refinement
// passes the dynamically observed target sets.
func Build(prog *isa.Program, fn isa.Func, indirectTargets map[int64][]int64) (*FuncGraph, error) {
	if fn.Entry < 0 || fn.End > int64(len(prog.Code)) || fn.Entry >= fn.End {
		return nil, fmt.Errorf("cfg: bad function range [%d,%d)", fn.Entry, fn.End)
	}
	code := prog.Code

	// Collect leaders: the entry, branch/jump targets inside the
	// function, observed indirect targets, and fall-throughs of block
	// terminators.
	leaders := map[int64]bool{fn.Entry: true}
	mark := func(pc int64) {
		if pc >= fn.Entry && pc < fn.End {
			leaders[pc] = true
		}
	}
	for pc := fn.Entry; pc < fn.End; pc++ {
		in := code[pc]
		switch in.Op {
		case isa.BR, isa.BRZ:
			mark(in.Imm)
			mark(pc + 1)
		case isa.JMP:
			mark(in.Imm)
			mark(pc + 1)
		case isa.JMPI:
			for _, t := range indirectTargets[pc] {
				mark(t)
			}
			mark(pc + 1)
		case isa.RET, isa.HALT:
			mark(pc + 1)
		}
	}

	starts := make([]int64, 0, len(leaders))
	for pc := range leaders {
		starts = append(starts, pc)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	g := &FuncGraph{Fn: fn, starts: starts}
	idOf := make(map[int64]int, len(starts))
	for i, s := range starts {
		end := fn.End
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		g.Blocks = append(g.Blocks, &Block{ID: i, Start: s, End: end})
		idOf[s] = i
	}
	g.ExitID = len(g.Blocks)

	addEdge := func(b *Block, targetPC int64) {
		if t, ok := idOf[targetPC]; ok {
			b.Succs = append(b.Succs, t)
			g.Blocks[t].Preds = append(g.Blocks[t].Preds, b.ID)
		} else {
			// Target outside the function (tail jump); treat as exit.
			b.ToExit = true
		}
	}

	for _, b := range g.Blocks {
		last := code[b.End-1]
		switch last.Op {
		case isa.BR, isa.BRZ:
			addEdge(b, last.Imm)
			if b.End < fn.End {
				addEdge(b, b.End)
			} else {
				b.ToExit = true
			}
		case isa.JMP:
			addEdge(b, last.Imm)
		case isa.JMPI:
			targets := indirectTargets[b.End-1]
			if len(targets) == 0 {
				// No known targets. The approximate static CFG treats
				// the indirect jump as falling through — mirroring the
				// paper's Figure 7, where the static CFG misses the
				// jump-table edges, the post-dominator information is
				// wrong, and control dependences on the switch are
				// missed until dynamic refinement adds the real edges.
				if b.End < fn.End {
					addEdge(b, b.End)
				} else {
					b.ToExit = true
				}
			}
			for _, t := range targets {
				addEdge(b, t)
			}
		case isa.RET, isa.HALT:
			b.ToExit = true
		default:
			// Fall-through into the next block (the block ended because
			// the next pc is a leader).
			if b.End < fn.End {
				addEdge(b, b.End)
			} else {
				b.ToExit = true
			}
		}
	}

	g.computePostDominators()
	return g, nil
}

// BlockAt returns the block containing pc, or nil.
func (g *FuncGraph) BlockAt(pc int64) *Block {
	i := sort.Search(len(g.starts), func(i int) bool { return g.starts[i] > pc })
	if i == 0 {
		return nil
	}
	b := g.Blocks[i-1]
	if pc >= b.Start && pc < b.End {
		return b
	}
	return nil
}

// computePostDominators runs the Cooper–Harvey–Kennedy iterative dominance
// algorithm on the reversed CFG rooted at the virtual exit node.
func (g *FuncGraph) computePostDominators() {
	n := len(g.Blocks)
	exit := g.ExitID

	// Reverse-graph successors of the exit are the blocks marked ToExit;
	// reverse-graph edges otherwise flow from a block to its Preds.
	// Compute a reverse post-order of the reversed graph from exit.
	order := make([]int, 0, n+1)
	state := make([]uint8, n+1) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		node int
		next int
	}
	succsRev := func(id int) []int {
		if id == exit {
			var ss []int
			for _, b := range g.Blocks {
				if b.ToExit {
					ss = append(ss, b.ID)
				}
			}
			return ss
		}
		return g.Blocks[id].Preds
	}
	var stack []frame
	stack = append(stack, frame{exit, 0})
	state[exit] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := succsRev(f.node)
		if f.next < len(ss) {
			nxt := ss[f.next]
			f.next++
			if state[nxt] == 0 {
				state[nxt] = 1
				stack = append(stack, frame{nxt, 0})
			}
			continue
		}
		state[f.node] = 2
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	// order is post-order of the reversed graph; reverse it for RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	rpoNum := make([]int, n+1)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, id := range order {
		rpoNum[id] = i
	}

	ipdom := make([]int, n+1)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[exit] = exit

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, id := range order {
			if id == exit {
				continue
			}
			// Predecessors in the reversed graph = successors in the
			// original graph, plus exit for ToExit blocks.
			var newIdom = -1
			consider := func(p int) {
				if ipdom[p] == -1 {
					return
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			b := g.Blocks[id]
			for _, s := range b.Succs {
				consider(s)
			}
			if b.ToExit {
				consider(exit)
			}
			if newIdom != -1 && ipdom[id] != newIdom {
				ipdom[id] = newIdom
				changed = true
			}
		}
	}

	// Blocks that cannot reach exit (e.g. infinite loops) keep -1;
	// conservatively treat them as post-dominated only by exit.
	for i := 0; i < n; i++ {
		if ipdom[i] == -1 {
			ipdom[i] = exit
		}
	}
	g.ipdom = ipdom
}

// IPdomOf returns the immediate post-dominator block id of the given
// block id; ExitID is the tree root.
func (g *FuncGraph) IPdomOf(id int) int { return g.ipdom[id] }

// IPDPc returns the pc at which the control-dependence region opened by
// the branch at branchPC closes: the start pc of the immediate
// post-dominator block of the branch's block. It returns -1 when the
// region only closes at function exit.
func (g *FuncGraph) IPDPc(branchPC int64) int64 {
	b := g.BlockAt(branchPC)
	if b == nil {
		return -1
	}
	ip := g.ipdom[b.ID]
	if ip == g.ExitID || ip < 0 {
		return -1
	}
	return g.Blocks[ip].Start
}

// PostDominates reports whether block a post-dominates block b (including
// a == b).
func (g *FuncGraph) PostDominates(a, b int) bool {
	for x := b; ; x = g.ipdom[x] {
		if x == a {
			return true
		}
		if x == g.ExitID {
			return a == g.ExitID
		}
	}
}
