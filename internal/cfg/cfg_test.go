package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/isa"
)

// diamond builds: entry -> (then | else) -> join -> exit.
func diamond(t *testing.T) (*isa.Program, isa.Func) {
	t.Helper()
	prog, err := asm.Assemble("d.s", `
.func main
	movi r1, 1
	brz r1, elseL
	movi r2, 10
	jmp joinL
elseL:
	movi r2, 20
joinL:
	syscall r0, 2, r2
	halt
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	return prog, prog.Funcs[0]
}

func TestDiamondBlocksAndIPdom(t *testing.T) {
	prog, fn := diamond(t)
	g, err := Build(prog, fn, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: [0,2) cond, [2,4) then, [4,5) else, [5,7) join.
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4: %+v", len(g.Blocks), g.Blocks)
	}
	cond := g.BlockAt(1)
	join := g.BlockAt(5)
	if cond == nil || join == nil {
		t.Fatal("missing blocks")
	}
	if len(cond.Succs) != 2 {
		t.Errorf("cond block has %d succs, want 2", len(cond.Succs))
	}
	if g.IPdomOf(cond.ID) != join.ID {
		t.Errorf("ipdom(cond) = %d, want join %d", g.IPdomOf(cond.ID), join.ID)
	}
	// The branch's control-dependence region closes at the join.
	if got := g.IPDPc(1); got != join.Start {
		t.Errorf("IPDPc(branch) = %d, want %d", got, join.Start)
	}
	if !g.PostDominates(join.ID, cond.ID) {
		t.Error("join must post-dominate cond")
	}
	if g.PostDominates(g.BlockAt(2).ID, cond.ID) {
		t.Error("then must not post-dominate cond")
	}
}

func TestLoopIPdom(t *testing.T) {
	prog, err := asm.Assemble("l.s", `
.func main
	movi r1, 5
loop:
	addi r1, r1, -1
	br r1, loop
	halt
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(prog, prog.Funcs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	// The back-branch's region closes at the block after the loop.
	after := g.BlockAt(3)
	if got := g.IPDPc(2); got != after.Start {
		t.Errorf("IPDPc(loop branch) = %d, want %d", got, after.Start)
	}
}

func TestInfiniteLoopConservative(t *testing.T) {
	prog, err := asm.Assemble("i.s", `
.func main
	movi r1, 1
spin:
	br r1, spin
	halt
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(prog, prog.Funcs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	// A (dynamically) infinite loop must not wedge the analysis; the
	// branch that can fall through still closes at the next block.
	if g.IPDPc(1) == 1 {
		t.Error("branch cannot be its own ipdom")
	}
}

// switchProg mimics paper Figure 7: a switch lowered to an indirect jump.
const switchSrc = `
int classify(int c) {
	int w = 0;
	switch (c) {
	case 0: w = 100; break;
	case 1: w = 200; break;
	case 2: w = 300; break;
	}
	return w;
}
int main() { write(classify(read())); return 0; }
`

func TestIndirectJumpApproximateVsRefined(t *testing.T) {
	prog, err := cc.CompileSource("s.c", switchSrc)
	if err != nil {
		t.Fatal(err)
	}
	var jmpiPC int64 = -1
	fn := prog.FuncByName("classify")
	for pc := fn.Entry; pc < fn.End; pc++ {
		if prog.Code[pc].Op == isa.JMPI {
			jmpiPC = pc
		}
	}
	if jmpiPC < 0 {
		t.Fatal("no JMPI in classify")
	}

	// Approximate CFG: the unresolved indirect jump is treated as a
	// fall-through (the jump-table edges are missing), so the block has
	// exactly one successor and the post-dominator information is wrong —
	// Figure 7's imprecision.
	a := NewAnalyzer(prog)
	g, err := a.Graph(jmpiPC)
	if err != nil {
		t.Fatal(err)
	}
	jb := g.BlockAt(jmpiPC)
	if len(jb.Succs) != 1 {
		t.Fatalf("approximate CFG should fall through the JMPI, got %+v", jb)
	}

	// Refine with the ground-truth jump-table targets.
	if len(prog.JumpTables) != 1 {
		t.Fatalf("want 1 jump table, got %d", len(prog.JumpTables))
	}
	for _, target := range prog.JumpTables[0].Targets {
		if !a.ObserveIndirect(jmpiPC, target) && len(a.TargetsOf(jmpiPC)) == 0 {
			t.Error("ObserveIndirect dropped a new target")
		}
	}
	g2, err := a.Graph(jmpiPC)
	if err != nil {
		t.Fatal(err)
	}
	jb2 := g2.BlockAt(jmpiPC)
	if len(jb2.Succs) == 0 {
		t.Fatal("refined CFG still has no JMPI successors")
	}
	// After refinement the jump's control-dependence region closes inside
	// the function (at the switch join), not at function exit.
	if got := g2.IPDPc(jmpiPC); got < 0 {
		t.Error("refined IPDPc should be a concrete pc, got -1")
	}

	// Re-observing known targets must not invalidate the cache.
	before := a.Rebuilds()
	a.ObserveIndirect(jmpiPC, prog.JumpTables[0].Targets[0])
	if _, err := a.Graph(jmpiPC); err != nil {
		t.Fatal(err)
	}
	if a.Rebuilds() != before {
		t.Error("re-observing a known target caused a rebuild")
	}
}

func TestAnalyzerWithTablesMatchesRefined(t *testing.T) {
	prog, err := cc.CompileSource("s.c", switchSrc)
	if err != nil {
		t.Fatal(err)
	}
	gt := NewAnalyzerWithTables(prog)
	fn := prog.FuncByName("classify")
	var jmpiPC int64 = -1
	for pc := fn.Entry; pc < fn.End; pc++ {
		if prog.Code[pc].Op == isa.JMPI {
			jmpiPC = pc
		}
	}
	g, err := gt.Graph(jmpiPC)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.BlockAt(jmpiPC).Succs) == 0 {
		t.Error("ground-truth analyzer should resolve JMPI successors")
	}
}

func TestGraphErrors(t *testing.T) {
	prog, fn := diamond(t)
	if _, err := Build(prog, isa.Func{Name: "bad", Entry: 5, End: 2}, nil); err == nil {
		t.Error("bad range accepted")
	}
	a := NewAnalyzer(prog)
	if _, err := a.Graph(int64(len(prog.Code)) + 5); err == nil {
		t.Error("pc outside functions accepted")
	}
	_ = fn
}

func TestBlockAtBoundaries(t *testing.T) {
	prog, fn := diamond(t)
	g, err := Build(prog, fn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockAt(fn.Entry) == nil {
		t.Error("entry pc has no block")
	}
	if g.BlockAt(fn.End) != nil {
		t.Error("pc past end should have no block")
	}
	if g.BlockAt(-1) != nil {
		t.Error("negative pc should have no block")
	}
}

// TestIrreducibleControlFlow feeds the analyzer a CFG that structured
// source can never produce: a loop with two entries. Post-dominator
// soundness must hold regardless (assembly and refined indirect jumps can
// produce such shapes).
func TestIrreducibleControlFlow(t *testing.T) {
	prog, err := asm.Assemble("irr.s", `
.func main
	syscall r1, 1, rz
	brz r1, entryB
entryA:
	addi r2, r2, 1
	jmp common
entryB:
	addi r2, r2, 2
common:
	addi r3, r3, 1
	movi r4, 10
	cmplt r4, r3, r4
	br r4, entryA
	syscall r0, 2, r2
	halt
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(prog, prog.Funcs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force soundness: every block's ipdom lies on all paths to
	// exit.
	for _, b := range g.Blocks {
		p := g.IPdomOf(b.ID)
		if p == b.ID {
			t.Fatalf("block %d is its own ipdom", b.ID)
		}
		if p == g.ExitID {
			continue
		}
		// Reachability avoiding p.
		seen := map[int]bool{b.ID: true}
		stack := []int{b.ID}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if g.Blocks[id].ToExit {
				t.Fatalf("block %d reaches exit avoiding its ipdom %d", b.ID, p)
			}
			for _, s := range g.Blocks[id].Succs {
				if s != p && !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
}
