package cfg_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/progfuzz"
)

// TestPostDominatorSoundnessOnGeneratedPrograms brute-force-verifies the
// immediate post-dominator computation on the CFGs of randomly generated
// programs: for every block b with ipdom(b) = p, removing p must
// disconnect b from the exit (i.e. p lies on every b→exit path).
func TestPostDominatorSoundnessOnGeneratedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		src := progfuzz.Generate(progfuzz.Config{Seed: seed, Stmts: 16, Funcs: 3})
		prog, err := cc.CompileSource("fz.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		an := cfg.NewAnalyzerWithTables(prog)
		for _, fn := range prog.Funcs {
			g, err := an.Graph(fn.Entry)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, fn.Name, err)
			}
			for _, b := range g.Blocks {
				p := g.IPdomOf(b.ID)
				if p == b.ID {
					t.Fatalf("seed %d %s: block %d is its own ipdom", seed, fn.Name, b.ID)
				}
				if p == g.ExitID {
					continue // post-dominated only by exit: trivially sound
				}
				if reachesExitAvoiding(g, b.ID, p) {
					t.Fatalf("seed %d %s: block [%d,%d) reaches exit avoiding its ipdom [%d,%d)\n%s",
						seed, fn.Name, b.Start, b.End, g.Blocks[p].Start, g.Blocks[p].End, src)
				}
			}
		}
	}
}

// reachesExitAvoiding reports whether from can reach the virtual exit
// without passing through banned.
func reachesExitAvoiding(g *cfg.FuncGraph, from, banned int) bool {
	if from == banned {
		return false
	}
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := g.Blocks[id]
		if b.ToExit {
			return true
		}
		for _, s := range b.Succs {
			if s == banned || seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return false
}

// TestPostDominatorMinimality checks that the immediate post-dominator is
// the nearest one: no other post-dominator q of b lies strictly between b
// and ipdom(b) (i.e. ipdom(b) must post-dominate every other
// post-dominator candidate... equivalently, any q that post-dominates b
// and is not b must be post-dominated-or-equal to ipdom chain).
func TestPostDominatorMinimality(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		src := progfuzz.Generate(progfuzz.Config{Seed: seed + 100, Stmts: 14, Funcs: 2})
		prog, err := cc.CompileSource("fz.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		an := cfg.NewAnalyzerWithTables(prog)
		for _, fn := range prog.Funcs {
			g, err := an.Graph(fn.Entry)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range g.Blocks {
				// Collect all strict post-dominators of b by brute force.
				var pdoms []int
				for _, q := range g.Blocks {
					if q.ID != b.ID && !reachesExitAvoiding(g, b.ID, q.ID) {
						pdoms = append(pdoms, q.ID)
					}
				}
				ip := g.IPdomOf(b.ID)
				if ip == g.ExitID {
					if len(pdoms) != 0 {
						t.Fatalf("seed %d %s: block %d has pdoms %v but ipdom=exit", seed, fn.Name, b.ID, pdoms)
					}
					continue
				}
				// ip must be the unique post-dominator that every other
				// post-dominator of b also post-dominates... the nearest
				// one: every other pdom q must post-dominate ip.
				for _, q := range pdoms {
					if q == ip {
						continue
					}
					if !g.PostDominates(q, ip) {
						t.Fatalf("seed %d %s: block %d: ipdom %d is not nearest (pdom %d does not post-dominate it)",
							seed, fn.Name, b.ID, ip, q)
					}
				}
			}
		}
	}
}
