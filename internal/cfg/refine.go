package cfg

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/isa"
)

// Analyzer caches per-function CFGs and implements the Section 5.1
// refinement loop: start from the approximate static CFG (indirect jumps
// unresolved), record dynamically observed indirect-jump targets, and
// rebuild the affected function's CFG and post-dominator tree when a new
// target appears.
//
// Graph construction consults the process-lifetime cache (cache.go), so
// a second analyzer over the same program — a later slice query in the
// same cyclic-debugging session, or a parallel engine rebuilt after an
// option change — reuses CFGs and post-dominator trees instead of
// recomputing them. All methods are safe for concurrent use; the
// parallel forward pass queries IPDPc from every worker.
type Analyzer struct {
	prog *isa.Program

	mu     sync.RWMutex
	graphs map[int64]*FuncGraph // keyed by function entry pc

	// indirect maps a JMPI/CALLI pc to its observed target set.
	indirect map[int64]map[int64]bool

	// rebuilds counts CFG recomputations, for the evaluation harness.
	rebuilds int
}

// NewAnalyzer creates an analyzer over prog with no indirect-target
// knowledge — the "approximate static CFG" state.
func NewAnalyzer(prog *isa.Program) *Analyzer {
	return &Analyzer{
		prog:     prog,
		graphs:   make(map[int64]*FuncGraph),
		indirect: make(map[int64]map[int64]bool),
	}
}

// NewAnalyzerWithTables creates an analyzer pre-seeded with the compiler's
// jump-table ground truth. Used by tests to compare refined CFGs against
// the ideal, and unavailable to DrDebug proper (which must work on
// arbitrary binaries).
func NewAnalyzerWithTables(prog *isa.Program) *Analyzer {
	a := NewAnalyzer(prog)
	for _, jt := range prog.JumpTables {
		// Attribute every table target to every JMPI in the program that
		// could use it; without relocation info we conservatively find
		// JMPI instructions per function and seed each with the tables
		// reachable from that function. For the ground-truth analyzer it
		// is enough to seed all JMPIs with all table targets within the
		// same function.
		for pc, in := range prog.Code {
			if in.Op != isa.JMPI {
				continue
			}
			fn := prog.FuncAt(int64(pc))
			if fn == nil {
				continue
			}
			for _, t := range jt.Targets {
				if t >= fn.Entry && t < fn.End {
					a.observe(int64(pc), t)
				}
			}
		}
	}
	return a
}

// observe records a target without invalidating caches; returns true when
// the target is new.
func (a *Analyzer) observe(jmpPC, target int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.indirect[jmpPC]
	if set == nil {
		set = make(map[int64]bool)
		a.indirect[jmpPC] = set
	}
	if set[target] {
		return false
	}
	set[target] = true
	return true
}

// ObserveIndirect records a dynamically observed indirect-jump target.
// When the target is new, the containing function's CFG is invalidated so
// the next Graph call rebuilds it with the extra edge, and ObserveIndirect
// returns true.
func (a *Analyzer) ObserveIndirect(jmpPC, target int64) bool {
	if !a.observe(jmpPC, target) {
		return false
	}
	if fn := a.prog.FuncAt(jmpPC); fn != nil {
		a.mu.Lock()
		delete(a.graphs, fn.Entry)
		a.mu.Unlock()
	}
	return true
}

// Graph returns the (possibly refined) CFG of the function containing pc,
// building it on demand.
func (a *Analyzer) Graph(pc int64) (*FuncGraph, error) {
	fn := a.prog.FuncAt(pc)
	if fn == nil {
		return nil, fmt.Errorf("cfg: pc %d not in any function", pc)
	}
	a.mu.RLock()
	g, ok := a.graphs[fn.Entry]
	a.mu.RUnlock()
	if ok {
		return g, nil
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	if g, ok := a.graphs[fn.Entry]; ok { // raced with another builder
		return g, nil
	}
	targets := make(map[int64][]int64)
	for jpc, set := range a.indirect {
		if !fn.Contains(jpc) {
			continue
		}
		ts := make([]int64, 0, len(set))
		for t := range set {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		targets[jpc] = ts
	}
	key := graphKey{prog: Fingerprint(a.prog), entry: fn.Entry, targets: targetsDigest(targets)}
	g, err := CachedGraph(key, func() (*FuncGraph, error) {
		return Build(a.prog, *fn, targets)
	})
	if err != nil {
		return nil, err
	}
	a.graphs[fn.Entry] = g
	a.rebuilds++
	return g, nil
}

// IPDPc returns the closing pc of the control-dependence region opened by
// the branch at branchPC (see FuncGraph.IPDPc), using the current refined
// CFG.
func (a *Analyzer) IPDPc(branchPC int64) (int64, error) {
	g, err := a.Graph(branchPC)
	if err != nil {
		return -1, err
	}
	return g.IPDPc(branchPC), nil
}

// Rebuilds returns how many CFG constructions the analyzer has performed
// (initial builds plus refinements).
func (a *Analyzer) Rebuilds() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.rebuilds
}

// TargetsOf returns the observed targets of the indirect jump at pc.
func (a *Analyzer) TargetsOf(pc int64) []int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	set := a.indirect[pc]
	ts := make([]int64, 0, len(set))
	for t := range set {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}
