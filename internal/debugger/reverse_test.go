package debugger_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/debugger"
	"repro/internal/pinplay"
)

// reverseDebugger returns a debugger in replay mode on a failing run of
// the demo program.
func reverseDebugger(t *testing.T) *debugger.Debugger {
	t.Helper()
	prog, err := cc.CompileSource("demo.c", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.RecordFailure(prog, pinplay.LogConfig{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(prog, pinplay.LogConfig{Seed: 1})
	d.UseSession(sess)
	return d
}

func TestReverseStepi(t *testing.T) {
	d := reverseDebugger(t)
	// Run forward a while.
	exec(t, d, "break bump")
	out := exec(t, d, "continue")
	if !strings.Contains(out, "breakpoint 1 hit") {
		t.Fatalf("continue: %s", out)
	}
	exec(t, d, "continue") // second hit: total = 1
	before := exec(t, d, "print total")
	if !strings.Contains(before, "total = 1") {
		t.Fatalf("print: %s", before)
	}

	// Step back far enough to undo the first bump's store.
	out = exec(t, d, "reverse-stepi 40")
	if !strings.Contains(out, "back at position") {
		t.Fatalf("rsi: %s", out)
	}
	after := exec(t, d, "print total")
	if !strings.Contains(after, "total = 0") {
		t.Fatalf("after rsi, print: %s (state not rewound)", after)
	}

	// Forward again reproduces the same value.
	out = exec(t, d, "continue")
	if !strings.Contains(out, "breakpoint 1 hit") {
		t.Fatalf("re-continue: %s", out)
	}
	again := exec(t, d, "print total")
	if again != before {
		t.Errorf("forward after reverse diverged: %q vs %q", again, before)
	}
}

func TestReverseContinue(t *testing.T) {
	d := reverseDebugger(t)
	exec(t, d, "break bump")
	exec(t, d, "continue") // hit 1 (total=0)
	exec(t, d, "continue") // hit 2 (total=1)
	exec(t, d, "continue") // hit 3 (total=3)
	third := exec(t, d, "print total")

	out := exec(t, d, "reverse-continue")
	if !strings.Contains(out, "breakpoint 1 hit (reverse)") {
		t.Fatalf("rc: %s", out)
	}
	second := exec(t, d, "print total")
	if second == third {
		t.Errorf("reverse-continue did not move backwards: %q", second)
	}
	if !strings.Contains(second, "total = 1") {
		t.Errorf("at previous hit, %s (want total = 1)", second)
	}

	// Reverse past all hits lands at region entry.
	exec(t, d, "reverse-continue") // hit 1
	out = exec(t, d, "reverse-continue")
	if !strings.Contains(out, "no earlier breakpoint hit") {
		t.Fatalf("rc at start: %s", out)
	}
}

func TestReverseRequiresReplayMode(t *testing.T) {
	prog, err := cc.CompileSource("demo.c", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(prog, pinplay.LogConfig{Seed: 1})
	execErr(t, d, "reverse-stepi")
	execErr(t, d, "reverse-continue")
	exec(t, d, "run") // native mode
	execErr(t, d, "reverse-stepi")
}

func TestReverseThenSliceStillWorks(t *testing.T) {
	d := reverseDebugger(t)
	exec(t, d, "break bump")
	exec(t, d, "continue")
	exec(t, d, "reverse-stepi 5")
	out := exec(t, d, "slice")
	if !strings.Contains(out, "slice:") {
		t.Fatalf("slice after reverse: %s", out)
	}
}
