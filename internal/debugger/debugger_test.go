package debugger_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/debugger"
	"repro/internal/isa"
	"repro/internal/pinplay"
)

const demoSrc = `
int total;
int steps;
int bump(int n) {
	total = total + n;
	return total;
}
int main() {
	int i;
	for (i = 1; i <= 5; i++) {
		bump(i);
		steps = steps + 1;
	}
	assert(total == 999);
	return 0;
}`

func compileDemo(t *testing.T) *isa.Program {
	t.Helper()
	prog, err := cc.CompileSource("demo.c", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// exec runs one command and returns its output.
func exec(t *testing.T, d *debugger.Debugger, cmd string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Execute(cmd, &buf); err != nil {
		t.Fatalf("%q: %v", cmd, err)
	}
	return buf.String()
}

// execErr runs a command expecting an error.
func execErr(t *testing.T, d *debugger.Debugger, cmd string) {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Execute(cmd, &buf); err == nil {
		t.Errorf("%q should have failed; output: %s", cmd, buf.String())
	}
}

func TestBreakpointsAndStepping(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	out := exec(t, d, "break bump")
	if !strings.Contains(out, "breakpoint 1") {
		t.Fatalf("break output: %s", out)
	}
	out = exec(t, d, "run")
	if !strings.Contains(out, "breakpoint 1 hit") {
		t.Fatalf("run did not hit breakpoint: %s", out)
	}
	// total should still be 0 on first entry to bump.
	out = exec(t, d, "print total")
	if !strings.Contains(out, "total = 0") {
		t.Fatalf("print: %s", out)
	}
	out = exec(t, d, "continue")
	if !strings.Contains(out, "breakpoint 1 hit") {
		t.Fatalf("second continue: %s", out)
	}
	out = exec(t, d, "print total")
	if !strings.Contains(out, "total = 1") {
		t.Fatalf("after first bump, print: %s", out)
	}
	out = exec(t, d, "backtrace")
	if !strings.Contains(out, "bump") || !strings.Contains(out, "main") {
		t.Fatalf("backtrace: %s", out)
	}
	exec(t, d, "delete 1")
	out = exec(t, d, "continue")
	if !strings.Contains(out, "failed") {
		t.Fatalf("expected run to end at assert failure: %s", out)
	}
}

func TestBreakFileLineAndInfo(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	out := exec(t, d, "break demo.c:12")
	if !strings.Contains(out, "breakpoint 1") {
		t.Fatalf("break: %s", out)
	}
	out = exec(t, d, "info breakpoints")
	if !strings.Contains(out, "demo.c:12") {
		t.Fatalf("info breakpoints: %s", out)
	}
	out = exec(t, d, "run")
	if !strings.Contains(out, "breakpoint 1 hit") {
		t.Fatalf("run: %s", out)
	}
	out = exec(t, d, "info threads")
	if !strings.Contains(out, "thread 0") {
		t.Fatalf("info threads: %s", out)
	}
	out = exec(t, d, "info registers")
	if !strings.Contains(out, "r0") || !strings.Contains(out, "pc") {
		t.Fatalf("info registers: %s", out)
	}
	out = exec(t, d, "list")
	if !strings.Contains(out, "=>") {
		t.Fatalf("list: %s", out)
	}
	out = exec(t, d, "stepi")
	if !strings.Contains(out, "thread 0 at pc") {
		t.Fatalf("stepi: %s", out)
	}
	exec(t, d, "step")
}

func TestRecordReplaySliceWorkflow(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	exec(t, d, "break main")
	exec(t, d, "run")
	exec(t, d, "record on")
	exec(t, d, "delete 1")
	out := exec(t, d, "continue")
	if !strings.Contains(out, "failed") {
		t.Fatalf("continue: %s", out)
	}
	out = exec(t, d, "record off")
	if !strings.Contains(out, "region pinball captured") || !strings.Contains(out, "captured failure") {
		t.Fatalf("record off: %s", out)
	}

	// Cyclic debugging: replay the same region twice, same observations.
	out = exec(t, d, "replay")
	if !strings.Contains(out, "replaying region pinball") {
		t.Fatalf("replay: %s", out)
	}
	exec(t, d, "break bump")
	out = exec(t, d, "continue")
	if !strings.Contains(out, "breakpoint") {
		t.Fatalf("continue in replay: %s", out)
	}
	first := exec(t, d, "print total")
	exec(t, d, "replay")
	out = exec(t, d, "continue")
	if !strings.Contains(out, "breakpoint") {
		t.Fatalf("second replay continue: %s", out)
	}
	second := exec(t, d, "print total")
	if first != second {
		t.Errorf("replays observed different state: %q vs %q", first, second)
	}

	// Slice at the failure, inspect, save and reload it.
	out = exec(t, d, "slice")
	if !strings.Contains(out, "slice:") {
		t.Fatalf("slice: %s", out)
	}
	out = exec(t, d, "slice show")
	if !strings.Contains(out, "[statements]") {
		t.Fatalf("slice show: %s", out)
	}
	dir := t.TempDir()
	slicePath := filepath.Join(dir, "demo.slice")
	exec(t, d, "slice save "+slicePath)
	out = exec(t, d, "slice load "+slicePath)
	if !strings.Contains(out, "slice:") {
		t.Fatalf("slice load: %s", out)
	}

	// Execution slice: step through it and reach the assert.
	out = exec(t, d, "execslice")
	if !strings.Contains(out, "slice pinball generated") {
		t.Fatalf("execslice: %s", out)
	}
	sawAssert := false
	for i := 0; i < 200; i++ {
		out = exec(t, d, "slicestep")
		if strings.Contains(out, "end of execution slice") {
			break
		}
		if strings.Contains(out, "demo.c:14") {
			sawAssert = true
		}
	}
	if !sawAssert {
		t.Error("slice stepping never reached the assert line")
	}

	// Save the pinball for later sessions.
	pbPath := filepath.Join(dir, "demo.pinball")
	out = exec(t, d, "save pinball "+pbPath)
	if !strings.Contains(out, "pinball saved") {
		t.Fatalf("save pinball: %s", out)
	}
}

func TestSliceForVariableCommand(t *testing.T) {
	prog := compileDemo(t)
	sess, err := core.RecordFailure(prog, pinplay.LogConfig{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(prog, pinplay.LogConfig{Seed: 1})
	d.UseSession(sess)
	out := exec(t, d, "slice total")
	if !strings.Contains(out, "slice:") {
		t.Fatalf("slice total: %s", out)
	}
	out = exec(t, d, "slice at 0 5 2")
	if !strings.Contains(out, "slice:") {
		t.Fatalf("slice at: %s", out)
	}
}

func TestErrorPaths(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	execErr(t, d, "continue")
	execErr(t, d, "replay")
	execErr(t, d, "record on")
	execErr(t, d, "record off")
	execErr(t, d, "slice")
	execErr(t, d, "execslice")
	execErr(t, d, "slicestep")
	execErr(t, d, "break nosuchfunc")
	execErr(t, d, "break demo.c:9999")
	execErr(t, d, "delete 7")
	execErr(t, d, "print nope")
	execErr(t, d, "frobnicate")
	execErr(t, d, "thread 9")
	execErr(t, d, "save pinball /tmp/x")
	// Valid usage errors.
	execErr(t, d, "record maybe")
	execErr(t, d, "info")
}

func TestPrintForms(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	exec(t, d, "break demo.c:14")
	exec(t, d, "run")
	out := exec(t, d, "print $r0")
	if !strings.Contains(out, "$r0 =") {
		t.Fatalf("print reg: %s", out)
	}
	out = exec(t, d, "print $pc")
	if !strings.Contains(out, "$pc =") {
		t.Fatalf("print pc: %s", out)
	}
	out = exec(t, d, "print *0")
	if !strings.Contains(out, "*0 =") {
		t.Fatalf("print mem: %s", out)
	}
	out = exec(t, d, "print total")
	if !strings.Contains(out, "total = 15") {
		t.Fatalf("total after loop: %s", out)
	}
}

func TestREPL(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	in := strings.NewReader("break bump\nrun\nprint total\nbadcmd\nquit\n")
	var out bytes.Buffer
	if err := d.Run(in, &out); err != nil {
		t.Fatalf("repl: %v", err)
	}
	s := out.String()
	for _, want := range []string{"(drdebug)", "breakpoint 1", "total = 0", "error:"} {
		if !strings.Contains(s, want) {
			t.Errorf("repl output missing %q:\n%s", want, s)
		}
	}
}

func TestHelp(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	out := exec(t, d, "help")
	for _, want := range []string{"record", "replay", "slice", "execslice", "slicestep"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}

func TestDepsCommand(t *testing.T) {
	prog := compileDemo(t)
	sess, err := core.RecordFailure(prog, pinplay.LogConfig{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(prog, pinplay.LogConfig{Seed: 1})
	d.UseSession(sess)
	execErr(t, d, "deps") // no slice yet
	exec(t, d, "slice")
	out := exec(t, d, "deps")
	for _, want := range []string{"direct dependences", "value chain", "<-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("deps output missing %q:\n%s", want, out)
		}
	}
	execErr(t, d, "deps 99 0")
	execErr(t, d, "deps x y")
	execErr(t, d, "deps 1 2 3")
}

func TestSliceHTMLCommand(t *testing.T) {
	prog := compileDemo(t)
	sess, err := core.RecordFailure(prog, pinplay.LogConfig{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(prog, pinplay.LogConfig{Seed: 1})
	d.UseSession(sess)
	exec(t, d, "slice")
	path := filepath.Join(t.TempDir(), "s.html")
	out := exec(t, d, "slice html "+path)
	if !strings.Contains(out, "HTML slice report written") {
		t.Fatalf("slice html: %s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Dynamic slice") {
		t.Error("html file missing content")
	}
	execErr(t, d, "slice html")
}

func TestNextStepsOverCalls(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	exec(t, d, "break demo.c:11") // "bump(i);"
	out := exec(t, d, "run")
	if !strings.Contains(out, "breakpoint 1 hit") {
		t.Fatalf("run: %s", out)
	}
	// next must land on line 12 (steps over bump), not inside bump.
	out = exec(t, d, "next")
	if !strings.Contains(out, "demo.c:12") {
		t.Fatalf("next landed at %s, want demo.c:12", out)
	}
	// total was updated by the stepped-over call.
	out = exec(t, d, "print total")
	if !strings.Contains(out, "total = 1") {
		t.Fatalf("after next: %s", out)
	}
}

func TestFinishRunsToCaller(t *testing.T) {
	d := debugger.New(compileDemo(t), pinplay.LogConfig{Seed: 1})
	exec(t, d, "break demo.c:5") // inside bump
	out := exec(t, d, "run")
	if !strings.Contains(out, "breakpoint 1 hit") {
		t.Fatalf("run: %s", out)
	}
	out = exec(t, d, "finish")
	if !strings.Contains(out, "returned:") || !strings.Contains(out, "$r0 = 1") {
		t.Fatalf("finish: %s", out)
	}
	// Back in main.
	out = exec(t, d, "backtrace")
	if strings.Contains(strings.Split(out, "\n")[1], "bump") {
		t.Fatalf("still in bump after finish: %s", out)
	}
}
