// Package debugger implements DrDebug's interactive front-end: a
// gdb-style command interpreter over the replay machinery. All the usual
// commands (breakpoints, stepping, printing, backtraces) work during
// deterministic replay of a pinball, and the DrDebug extensions — region
// recording, dynamic slicing, slice navigation, execution-slice stepping —
// are available as additional commands, mirroring the paper's extended
// GDB/KDbg interface (state modification is unsupported, as in the paper).
package debugger

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/vm"
)

// mode says what kind of machine the debugger is driving.
type mode int

const (
	modeNone   mode = iota
	modeNative      // original execution (for recording regions)
	modeReplay      // deterministic replay of the session pinball
)

// breakpoint is one user breakpoint.
type breakpoint struct {
	id   int
	pc   int64
	spec string
}

// watchpoint stops execution when a memory word changes value.
type watchpoint struct {
	id   int
	addr int64
	spec string
	last int64
}

// Debugger drives one program. Create with New, feed commands to Execute
// or run a REPL with Run.
type Debugger struct {
	prog *isa.Program
	cfg  pinplay.LogConfig

	m        *vm.Machine
	mode     mode
	executed int64 // instructions replayed (region-end detection)
	total    int64

	sess     *core.Session
	recorder *pinplay.Recorder
	rr       *core.ReverseReplayer

	curSlice *slice.Slice
	stepper  *core.Stepper

	bps    []breakpoint
	wps    []watchpoint
	nextBP int
	curTid int

	out io.Writer
}

// New creates a debugger for prog. cfg configures native executions
// (scheduling seed, program input).
func New(prog *isa.Program, cfg pinplay.LogConfig) *Debugger {
	return &Debugger{prog: prog, cfg: cfg, nextBP: 1}
}

// Session returns the current debug session (nil before a region is
// recorded or loaded).
func (d *Debugger) Session() *core.Session { return d.sess }

// UseSession attaches an existing session (e.g. a pinball recorded by
// Maple) so the debugger starts directly in replay mode.
func (d *Debugger) UseSession(s *core.Session) {
	d.sess = s
	d.startReplay()
}

// Run reads commands from r until EOF or quit, writing responses to w.
func (d *Debugger) Run(r io.Reader, w io.Writer) error {
	d.out = w
	var buf [4096]byte
	var line strings.Builder
	prompt := func() { fmt.Fprint(w, "(drdebug) ") }
	prompt()
	for {
		n, err := r.Read(buf[:])
		if n > 0 {
			for _, c := range buf[:n] {
				if c != '\n' {
					line.WriteByte(c)
					continue
				}
				cmd := strings.TrimSpace(line.String())
				line.Reset()
				if cmd == "quit" || cmd == "q" {
					return nil
				}
				if cmd != "" {
					if err := d.Execute(cmd, w); err != nil {
						fmt.Fprintf(w, "error: %v\n", err)
					}
				}
				prompt()
			}
		}
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// Execute runs one command, writing output to w.
func (d *Debugger) Execute(cmdline string, w io.Writer) error {
	d.out = w
	f := strings.Fields(cmdline)
	if len(f) == 0 {
		return nil
	}
	args := f[1:]
	switch f[0] {
	case "help", "h":
		d.help()
	case "run", "r":
		return d.cmdRun()
	case "record":
		return d.cmdRecord(args)
	case "replay":
		return d.cmdReplay()
	case "continue", "c":
		return d.cmdContinue()
	case "stepi", "si":
		return d.cmdStepi()
	case "step", "s":
		return d.cmdStep()
	case "next", "n":
		return d.cmdNext()
	case "finish", "fin":
		return d.cmdFinish()
	case "break", "b":
		return d.cmdBreak(args)
	case "watch", "w":
		return d.cmdWatch(args)
	case "delete", "d":
		return d.cmdDelete(args)
	case "info":
		return d.cmdInfo(args)
	case "thread", "t":
		return d.cmdThread(args)
	case "print", "p":
		return d.cmdPrint(args)
	case "backtrace", "bt":
		return d.cmdBacktrace()
	case "list", "l":
		return d.cmdList()
	case "where":
		d.reportStop()
	case "slice":
		return d.cmdSlice(args)
	case "execslice":
		return d.cmdExecSlice()
	case "slicestep", "ss":
		return d.cmdSliceStep(false)
	case "sliceinstr":
		return d.cmdSliceStep(true)
	case "reverse-stepi", "rsi":
		return d.cmdReverseStepi(args)
	case "reverse-continue", "rc":
		return d.cmdReverseContinue()
	case "races":
		return d.cmdRaces()
	case "deps":
		return d.cmdDeps(args)
	case "save":
		return d.cmdSave(args)
	default:
		return fmt.Errorf("unknown command %q (try help)", f[0])
	}
	return nil
}

func (d *Debugger) help() {
	fmt.Fprint(d.out, `commands:
  run                      start the program (native execution)
  record on|off            capture an execution region into the session pinball
  replay                   (re)start deterministic replay of the session pinball
  continue / c             resume until breakpoint or stop
  step / s, stepi / si     source-line step / instruction step
  next / n                 source-line step, stepping over calls
  finish / fin             run until the current function returns
  break <file:line|fn|pc>  set breakpoint; delete <id> removes
  watch <var>|<var[i]>|*<addr>  stop when the memory word changes
  info breakpoints|threads|registers
  thread <tid>             select thread
  print <var>|$rN|$pc|*<addr>
  backtrace / bt           call stack of the selected thread
  list / l                 disassemble around the stop point
  where                    report the current stop
  slice [var|at <tid> <line> [nth]|show|html <path>|save <path>|load <path>]
                           compute/inspect dynamic slices (replay mode)
  execslice                build the slice pinball for the current slice
  slicestep / ss           step to the next statement in the execution slice
  sliceinstr               step to the next instruction in the execution slice
  reverse-stepi / rsi [n]  step n instructions backwards (replay mode)
  reverse-continue / rc    run backwards to the previous breakpoint hit
  races                    happens-before race detection over the region
  deps [tid idx]           navigate slice dependences backwards (from the
                           criterion, or from slice member tid@idx)
  save pinball <path>      save the session pinball
  quit / q
`)
}

// cmdRun starts a native execution and runs to the first stop.
func (d *Debugger) cmdRun() error {
	maxSteps := d.cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	mq := d.cfg.MeanQuantum
	if mq <= 0 {
		mq = 1000
	}
	d.m = vm.New(d.prog, vm.Config{
		Sched:    vm.NewRandomScheduler(d.cfg.Seed, mq),
		Env:      vm.NewNativeEnv(d.cfg.Input, d.cfg.RandSeed),
		MaxSteps: maxSteps,
	})
	d.mode = modeNative
	d.total = 0
	fmt.Fprintf(d.out, "starting %s (native, seed %d)\n", d.prog.Name, d.cfg.Seed)
	return d.resume(false)
}

// cmdRecord toggles region recording on the native machine.
func (d *Debugger) cmdRecord(args []string) error {
	if len(args) != 1 || (args[0] != "on" && args[0] != "off") {
		return fmt.Errorf("usage: record on|off")
	}
	if args[0] == "on" {
		if d.mode != modeNative || d.m == nil {
			return fmt.Errorf("record on requires a running native execution (use run)")
		}
		if d.recorder != nil {
			return fmt.Errorf("already recording")
		}
		if !d.m.Running() {
			return fmt.Errorf("the program has stopped (%v); restart with run", d.m.Stopped())
		}
		d.recorder = pinplay.StartRecording(d.m)
		fmt.Fprintln(d.out, "recording region...")
		return nil
	}
	if d.recorder == nil {
		return fmt.Errorf("not recording")
	}
	reason := "manual"
	if !d.m.Running() {
		reason = d.m.Stopped().String()
	}
	pb := d.recorder.Finish(d.m, reason)
	d.recorder = nil
	d.sess = core.Open(d.prog, pb)
	fmt.Fprintf(d.out, "region pinball captured: %d instructions (%d in main thread), end: %s\n",
		pb.RegionInstrs, pb.MainInstrs, pb.EndReason)
	if pb.Failure != nil {
		fmt.Fprintf(d.out, "captured failure: %v\n", pb.Failure)
	}
	return nil
}

// startReplay rebuilds the replay machine at region entry, with reverse
// debugging enabled through periodic checkpoints.
func (d *Debugger) startReplay() {
	d.rr = d.sess.NewReverseReplayer(0)
	d.m = d.rr.Machine()
	d.mode = modeReplay
	d.executed = 0
	d.total = d.rr.Total()
}

// stepOnce advances one instruction through whichever engine is active
// and returns false when execution cannot continue.
func (d *Debugger) stepOnce() bool {
	if d.mode == modeReplay && d.rr != nil {
		ok := d.rr.StepForward()
		d.m = d.rr.Machine()
		d.executed = d.rr.Executed()
		return ok
	}
	if !d.m.StepOne() {
		return false
	}
	d.executed++
	return true
}

// cmdReplay restarts deterministic replay — one iteration of the cyclic
// debugging loop.
func (d *Debugger) cmdReplay() error {
	if d.sess == nil {
		return fmt.Errorf("no session pinball (record a region or load one)")
	}
	d.startReplay()
	fmt.Fprintf(d.out, "replaying region pinball (%d instructions)\n", d.total)
	return nil
}

// atRegionEnd reports whether a replay consumed the whole region.
func (d *Debugger) atRegionEnd() bool {
	return d.mode == modeReplay && d.executed >= d.total
}

// resume runs until a breakpoint, machine stop, or region end.
// skipCurrent suppresses a breakpoint match on the very first instruction
// (continuing *from* a breakpoint must make progress).
func (d *Debugger) resume(skipCurrent bool) error {
	if d.m == nil {
		return fmt.Errorf("nothing is running (use run or replay)")
	}
	first := skipCurrent
	for {
		if d.atRegionEnd() {
			fmt.Fprintln(d.out, "end of recorded region")
			return nil
		}
		t := d.m.CurThread()
		if t == nil {
			d.reportStop()
			return nil
		}
		if !first && d.bpAt(t.PC) != nil {
			d.curTid = t.ID
			bp := d.bpAt(t.PC)
			fmt.Fprintf(d.out, "breakpoint %d hit: thread %d at %s\n", bp.id, t.ID, d.loc(t.PC))
			return nil
		}
		first = false
		if !d.stepOnce() {
			d.reportStop()
			return nil
		}
		if wp := d.watchHit(); wp != nil {
			if t := d.m.CurThread(); t != nil {
				d.curTid = t.ID
			}
			fmt.Fprintf(d.out, "watchpoint %d hit: %s changed to %d\n", wp.id, wp.spec, wp.last)
			return nil
		}
	}
}

// watchHit refreshes watched values and returns the first watchpoint
// whose word changed since the last check.
func (d *Debugger) watchHit() *watchpoint {
	for i := range d.wps {
		wp := &d.wps[i]
		if v := d.m.Mem.Read(wp.addr); v != wp.last {
			wp.last = v
			return wp
		}
	}
	return nil
}

// resolveWatchSpec maps <var>, <var[idx]> or *<addr> to a memory address.
func (d *Debugger) resolveWatchSpec(spec string) (int64, error) {
	if strings.HasPrefix(spec, "*") {
		addr, err := strconv.ParseInt(spec[1:], 10, 64)
		if err != nil || addr < 0 {
			return 0, fmt.Errorf("bad address %q", spec)
		}
		return addr, nil
	}
	name := spec
	idx := int64(0)
	if i := strings.IndexByte(spec, '['); i >= 0 && strings.HasSuffix(spec, "]") {
		name = spec[:i]
		v, err := strconv.ParseInt(spec[i+1:len(spec)-1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad index in %q", spec)
		}
		idx = v
	}
	sym := d.prog.SymbolByName(name)
	if sym == nil {
		return 0, fmt.Errorf("no global variable %q", name)
	}
	if idx < 0 || idx >= sym.Size {
		return 0, fmt.Errorf("index %d out of range for %s[%d]", idx, name, sym.Size)
	}
	return sym.Addr + idx, nil
}

// cmdWatch sets a watchpoint on a memory word.
func (d *Debugger) cmdWatch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: watch <var>|<var[idx]>|*<addr>")
	}
	addr, err := d.resolveWatchSpec(args[0])
	if err != nil {
		return err
	}
	cur := int64(0)
	if d.m != nil {
		cur = d.m.Mem.Read(addr)
	}
	wp := watchpoint{id: d.nextBP, addr: addr, spec: args[0], last: cur}
	d.nextBP++
	d.wps = append(d.wps, wp)
	fmt.Fprintf(d.out, "watchpoint %d on %s (word %d, currently %d)\n", wp.id, wp.spec, addr, cur)
	return nil
}

func (d *Debugger) cmdContinue() error { return d.resume(true) }

// cmdStepi executes exactly one instruction.
func (d *Debugger) cmdStepi() error {
	if d.m == nil {
		return fmt.Errorf("nothing is running")
	}
	if d.atRegionEnd() {
		fmt.Fprintln(d.out, "end of recorded region")
		return nil
	}
	if !d.stepOnce() {
		d.reportStop()
		return nil
	}
	if t := d.m.CurThread(); t != nil {
		d.curTid = t.ID
		fmt.Fprintf(d.out, "thread %d at %s\n", t.ID, d.loc(t.PC))
	}
	return nil
}

// cmdStep advances until the next instruction to execute has a different
// source line (a simplified source-line step over the interleaved
// execution).
func (d *Debugger) cmdStep() error {
	if d.m == nil {
		return fmt.Errorf("nothing is running")
	}
	t := d.m.CurThread()
	if t == nil {
		d.reportStop()
		return nil
	}
	startLine := d.prog.LineOf(t.PC)
	startTid := t.ID
	for {
		if d.atRegionEnd() {
			fmt.Fprintln(d.out, "end of recorded region")
			return nil
		}
		if !d.stepOnce() {
			d.reportStop()
			return nil
		}
		t = d.m.CurThread()
		if t == nil {
			d.reportStop()
			return nil
		}
		if t.ID == startTid && d.prog.LineOf(t.PC) != startLine {
			d.curTid = t.ID
			fmt.Fprintf(d.out, "thread %d at %s\n", t.ID, d.loc(t.PC))
			return nil
		}
	}
}

// cmdNext is a source-line step that does not descend into calls: when
// the pending instruction is a call, execution runs until the callee
// returns (stack pointer back above the call's frame) before line
// progress is considered.
func (d *Debugger) cmdNext() error {
	if d.m == nil {
		return fmt.Errorf("nothing is running")
	}
	t := d.m.CurThread()
	if t == nil {
		d.reportStop()
		return nil
	}
	startTid := t.ID
	startLine := d.prog.LineOf(t.PC)
	startSP := t.Regs[isa.SP]
	for {
		if d.atRegionEnd() {
			fmt.Fprintln(d.out, "end of recorded region")
			return nil
		}
		if !d.stepOnce() {
			d.reportStop()
			return nil
		}
		t = d.m.CurThread()
		if t == nil {
			d.reportStop()
			return nil
		}
		if t.ID != startTid {
			continue
		}
		// Inside a callee: the stack has grown below the starting frame.
		if t.Regs[isa.SP] < startSP {
			continue
		}
		if d.prog.LineOf(t.PC) != startLine {
			d.curTid = t.ID
			fmt.Fprintf(d.out, "thread %d at %s\n", t.ID, d.loc(t.PC))
			return nil
		}
	}
}

// cmdFinish runs until the selected thread returns from its current
// function (its stack pointer rises above the saved frame).
func (d *Debugger) cmdFinish() error {
	if d.m == nil {
		return fmt.Errorf("nothing is running")
	}
	t := d.m.CurThread()
	if t == nil {
		d.reportStop()
		return nil
	}
	startTid := t.ID
	// After the epilogue pops the saved fp and the return address, SP
	// ends above the current frame pointer.
	targetSP := t.Regs[isa.FP] + 1
	fn := d.prog.FuncAt(t.PC)
	for {
		if d.atRegionEnd() {
			fmt.Fprintln(d.out, "end of recorded region")
			return nil
		}
		if !d.stepOnce() {
			d.reportStop()
			return nil
		}
		t = d.m.CurThread()
		if t == nil {
			d.reportStop()
			return nil
		}
		if t.ID != startTid || t.Regs[isa.SP] <= targetSP {
			continue
		}
		if fn != nil && fn.Contains(t.PC) {
			continue
		}
		d.curTid = t.ID
		fmt.Fprintf(d.out, "returned: thread %d at %s ($r0 = %d)\n", t.ID, d.loc(t.PC), t.Regs[isa.RetReg])
		return nil
	}
}

// loc renders a pc as "pc N (file:line, func)".
func (d *Debugger) loc(pc int64) string {
	fn := "?"
	if f := d.prog.FuncAt(pc); f != nil {
		fn = f.Name
	}
	return fmt.Sprintf("pc %d (%s, %s)", pc, d.prog.SourceOf(pc), fn)
}

// reportStop explains why the machine is stopped.
func (d *Debugger) reportStop() {
	if d.m == nil {
		fmt.Fprintln(d.out, "not running")
		return
	}
	switch d.m.Stopped() {
	case vm.StopNone:
		if t := d.m.CurThread(); t != nil {
			fmt.Fprintf(d.out, "thread %d at %s\n", t.ID, d.loc(t.PC))
		}
	case vm.StopFailure:
		f := d.m.Failure()
		fmt.Fprintf(d.out, "program failed: %v\n", f)
	default:
		fmt.Fprintf(d.out, "program stopped: %v\n", d.m.Stopped())
	}
}

// bpAt returns the breakpoint at pc, or nil.
func (d *Debugger) bpAt(pc int64) *breakpoint {
	for i := range d.bps {
		if d.bps[i].pc == pc {
			return &d.bps[i]
		}
	}
	return nil
}

// resolveBreakSpec maps "file:line", a function name, or a raw pc to a pc.
func (d *Debugger) resolveBreakSpec(spec string) (int64, error) {
	return d.prog.ResolveLocation(spec)
}

func (d *Debugger) cmdBreak(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: break <file:line|function|pc>")
	}
	pc, err := d.resolveBreakSpec(args[0])
	if err != nil {
		return err
	}
	bp := breakpoint{id: d.nextBP, pc: pc, spec: args[0]}
	d.nextBP++
	d.bps = append(d.bps, bp)
	fmt.Fprintf(d.out, "breakpoint %d at %s\n", bp.id, d.loc(pc))
	return nil
}

func (d *Debugger) cmdDelete(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: delete <id>")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("bad breakpoint id %q", args[0])
	}
	for i := range d.bps {
		if d.bps[i].id == id {
			d.bps = append(d.bps[:i], d.bps[i+1:]...)
			fmt.Fprintf(d.out, "deleted breakpoint %d\n", id)
			return nil
		}
	}
	for i := range d.wps {
		if d.wps[i].id == id {
			d.wps = append(d.wps[:i], d.wps[i+1:]...)
			fmt.Fprintf(d.out, "deleted watchpoint %d\n", id)
			return nil
		}
	}
	return fmt.Errorf("no breakpoint %d", id)
}

func (d *Debugger) cmdInfo(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: info breakpoints|threads|registers")
	}
	switch args[0] {
	case "breakpoints", "b":
		if len(d.bps) == 0 && len(d.wps) == 0 {
			fmt.Fprintln(d.out, "no breakpoints")
			return nil
		}
		for _, bp := range d.bps {
			fmt.Fprintf(d.out, "%d: %s -> %s\n", bp.id, bp.spec, d.loc(bp.pc))
		}
		for _, wp := range d.wps {
			fmt.Fprintf(d.out, "%d: watch %s (word %d)\n", wp.id, wp.spec, wp.addr)
		}
	case "threads", "t":
		if d.m == nil {
			return fmt.Errorf("nothing is running")
		}
		for _, t := range d.m.Threads {
			marker := " "
			if t.ID == d.curTid {
				marker = "*"
			}
			fmt.Fprintf(d.out, "%s thread %d: %-14s %s (executed %d)\n",
				marker, t.ID, t.Status, d.loc(t.PC), t.Count)
		}
	case "registers", "r":
		if d.m == nil {
			return fmt.Errorf("nothing is running")
		}
		t, err := d.selThread()
		if err != nil {
			return err
		}
		for r := isa.R0; r < isa.NumRegs; r++ {
			if r != isa.RZ {
				fmt.Fprintf(d.out, "%-3s %20d\n", r, t.Regs[r])
			}
		}
		fmt.Fprintf(d.out, "pc  %20d\n", t.PC)
	default:
		return fmt.Errorf("unknown info %q", args[0])
	}
	return nil
}

func (d *Debugger) selThread() (*vm.Thread, error) {
	if d.m == nil {
		return nil, fmt.Errorf("nothing is running")
	}
	if d.curTid < len(d.m.Threads) {
		return d.m.Threads[d.curTid], nil
	}
	return nil, fmt.Errorf("no thread %d", d.curTid)
}

func (d *Debugger) cmdThread(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: thread <tid>")
	}
	tid, err := strconv.Atoi(args[0])
	if err != nil || d.m == nil || tid < 0 || tid >= len(d.m.Threads) {
		return fmt.Errorf("no thread %q", args[0])
	}
	d.curTid = tid
	fmt.Fprintf(d.out, "selected thread %d\n", tid)
	return nil
}

// cmdPrint evaluates a simple expression: global variable (optionally
// with [index]), $rN / $pc / $sp / $fp, or *addr.
func (d *Debugger) cmdPrint(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: print <var>|<var[idx]>|$rN|$pc|*<addr>")
	}
	if d.m == nil {
		return fmt.Errorf("nothing is running")
	}
	expr := args[0]
	switch {
	case strings.HasPrefix(expr, "$"):
		t, err := d.selThread()
		if err != nil {
			return err
		}
		name := expr[1:]
		if name == "pc" {
			fmt.Fprintf(d.out, "$pc = %d\n", t.PC)
			return nil
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if r.String() == name {
				fmt.Fprintf(d.out, "%s = %d\n", expr, t.Regs[r])
				return nil
			}
		}
		return fmt.Errorf("unknown register %q", name)
	case strings.HasPrefix(expr, "*"):
		addr, err := strconv.ParseInt(expr[1:], 10, 64)
		if err != nil || addr < 0 {
			return fmt.Errorf("bad address %q", expr[1:])
		}
		fmt.Fprintf(d.out, "*%d = %d\n", addr, d.m.Mem.Read(addr))
		return nil
	default:
		name := expr
		idx := int64(0)
		if i := strings.IndexByte(expr, '['); i >= 0 && strings.HasSuffix(expr, "]") {
			name = expr[:i]
			v, err := strconv.ParseInt(expr[i+1:len(expr)-1], 10, 64)
			if err != nil {
				return fmt.Errorf("bad index in %q", expr)
			}
			idx = v
		}
		sym := d.prog.SymbolByName(name)
		if sym == nil {
			return fmt.Errorf("no global variable %q (locals live in registers; use info registers)", name)
		}
		if idx < 0 || idx >= sym.Size {
			return fmt.Errorf("index %d out of range for %s[%d]", idx, name, sym.Size)
		}
		fmt.Fprintf(d.out, "%s = %d\n", expr, d.m.Mem.Read(sym.Addr+idx))
		return nil
	}
}

// cmdBacktrace walks the selected thread's frame-pointer chain.
func (d *Debugger) cmdBacktrace() error {
	t, err := d.selThread()
	if err != nil {
		return err
	}
	pc := t.PC
	fp := t.Regs[isa.FP]
	fmt.Fprintf(d.out, "thread %d:\n", t.ID)
	for depth := 0; depth < 64; depth++ {
		fmt.Fprintf(d.out, "#%d %s\n", depth, d.loc(pc))
		var ra int64
		if fn := d.prog.FuncAt(pc); depth == 0 && fn != nil && pc == fn.Entry {
			// Stopped at a function entry: the prologue has not run, so
			// the return address is still on top of the stack and the
			// frame pointer is the caller's.
			ra = d.m.Mem.Read(t.Regs[isa.SP])
		} else {
			// Frame layout after the prologue: [fp] holds the caller's
			// frame pointer, [fp+1] the return address.
			ra = d.m.Mem.Read(fp + 1)
			fp = d.m.Mem.Read(fp)
		}
		if ra < 0 || ra >= int64(len(d.prog.Code)) {
			return nil
		}
		pc = ra
		if fp <= 0 {
			return nil
		}
	}
	return nil
}

// cmdList disassembles around the selected thread's pc.
func (d *Debugger) cmdList() error {
	t, err := d.selThread()
	if err != nil {
		return err
	}
	lo := t.PC - 4
	if lo < 0 {
		lo = 0
	}
	hi := t.PC + 5
	if hi > int64(len(d.prog.Code)) {
		hi = int64(len(d.prog.Code))
	}
	for pc := lo; pc < hi; pc++ {
		marker := "  "
		if pc == t.PC {
			marker = "=>"
		}
		fmt.Fprintf(d.out, "%s %5d  %-28s %s\n", marker, pc, d.prog.Code[pc].String(), d.prog.SourceOf(pc))
	}
	return nil
}

// cmdSlice handles the slice command family.
func (d *Debugger) cmdSlice(args []string) error {
	if d.sess == nil {
		return fmt.Errorf("slicing requires a session pinball (record or load one)")
	}
	if len(args) == 0 {
		sl, err := d.sess.SliceAtFailure()
		if err != nil {
			return err
		}
		d.curSlice = sl
		d.printSliceSummary(sl)
		return nil
	}
	switch args[0] {
	case "show":
		if d.curSlice == nil {
			return fmt.Errorf("no current slice")
		}
		tr, err := d.sess.Trace()
		if err != nil {
			return err
		}
		ex := slice.BuildExclusions(tr, d.curSlice)
		return slice.ToFile(d.prog, tr, d.curSlice, ex).WriteText(d.out)
	case "html":
		if len(args) != 2 {
			return fmt.Errorf("usage: slice html <path>")
		}
		if d.curSlice == nil {
			return fmt.Errorf("no current slice")
		}
		tr, err := d.sess.Trace()
		if err != nil {
			return err
		}
		ex := slice.BuildExclusions(tr, d.curSlice)
		w, err := os.Create(args[1])
		if err != nil {
			return err
		}
		defer w.Close()
		if err := slice.ToFile(d.prog, tr, d.curSlice, ex).WriteHTML(w, nil); err != nil {
			return err
		}
		fmt.Fprintf(d.out, "HTML slice report written to %s\n", args[1])
		return nil
	case "save":
		if len(args) != 2 {
			return fmt.Errorf("usage: slice save <path>")
		}
		if d.curSlice == nil {
			return fmt.Errorf("no current slice")
		}
		if err := d.sess.SaveSlice(d.curSlice, args[1]); err != nil {
			return err
		}
		fmt.Fprintf(d.out, "slice saved to %s\n", args[1])
		return nil
	case "load":
		if len(args) != 2 {
			return fmt.Errorf("usage: slice load <path>")
		}
		sl, err := d.sess.LoadSlice(args[1])
		if err != nil {
			return err
		}
		d.curSlice = sl
		d.printSliceSummary(sl)
		return nil
	case "at":
		if len(args) < 3 {
			return fmt.Errorf("usage: slice at <tid> <line> [instance]")
		}
		tid, err1 := strconv.Atoi(args[1])
		line, err2 := strconv.Atoi(args[2])
		nth := 1
		if len(args) > 3 {
			nth, _ = strconv.Atoi(args[3])
		}
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad tid/line")
		}
		sl, err := d.sess.SliceAtLine(tid, int32(line), nth)
		if err != nil {
			return err
		}
		d.curSlice = sl
		d.printSliceSummary(sl)
		return nil
	default:
		// slice <var>
		sl, err := d.sess.SliceForVariable(args[0])
		if err != nil {
			return err
		}
		d.curSlice = sl
		d.printSliceSummary(sl)
		return nil
	}
}

func (d *Debugger) printSliceSummary(sl *slice.Slice) {
	tr, err := d.sess.Trace()
	if err != nil {
		fmt.Fprintf(d.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(d.out, "slice: %d of %d dynamic instructions (%d verified save/restore pairs, %d bypasses, %d CFG refinements)\n",
		sl.Stats.Members, sl.Stats.TraceLen, sl.Stats.VerifiedPairs, sl.Stats.PrunedBypasses, sl.Stats.CFGRefinements)
	// Show the distinct source lines, most recent first.
	seen := map[string]bool{}
	var srcs []string
	for i := len(sl.Members) - 1; i >= 0; i-- {
		src := d.prog.SourceOf(tr.Entry(sl.Members[i]).PC)
		if !seen[src] {
			seen[src] = true
			srcs = append(srcs, src)
		}
	}
	sort.Strings(srcs)
	fmt.Fprintf(d.out, "statements: %s\n", strings.Join(srcs, " "))
}

// cmdExecSlice turns the current slice into a slice pinball and prepares
// slice stepping.
func (d *Debugger) cmdExecSlice() error {
	if d.curSlice == nil {
		return fmt.Errorf("no current slice (use slice first)")
	}
	st, err := d.sess.NewStepper(d.curSlice)
	if err != nil {
		return err
	}
	d.stepper = st
	fmt.Fprintln(d.out, "slice pinball generated; use slicestep to walk the execution slice")
	return nil
}

// cmdSliceStep advances the execution-slice replay to the next statement
// (or instruction).
func (d *Debugger) cmdSliceStep(instrLevel bool) error {
	if d.stepper == nil {
		return fmt.Errorf("no execution slice (use execslice first)")
	}
	var p *core.StepPoint
	var err error
	if instrLevel {
		p, err = d.stepper.NextInstr()
	} else {
		p, err = d.stepper.NextStatement()
	}
	if err != nil {
		return err
	}
	if p == nil {
		fmt.Fprintln(d.out, "end of execution slice")
		return nil
	}
	if p.HasValue {
		fmt.Fprintf(d.out, "slice: thread %d at %s (computed %d)\n", p.Tid, d.loc(p.PC), p.Value)
	} else {
		fmt.Fprintf(d.out, "slice: thread %d at %s\n", p.Tid, d.loc(p.PC))
	}
	// Make print/backtrace look at the slice-replay machine.
	d.m = d.stepper.Machine()
	d.curTid = p.Tid
	return nil
}

// cmdReverseStepi steps n instructions backwards in the replayed region:
// restore the nearest earlier checkpoint, replay forward (the paper's
// proposed pinball-based reverse debugging).
func (d *Debugger) cmdReverseStepi(args []string) error {
	if d.mode != modeReplay || d.rr == nil {
		return fmt.Errorf("reverse debugging requires replay mode (use replay)")
	}
	n := int64(1)
	if len(args) == 1 {
		v, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad count %q", args[0])
		}
		n = v
	}
	if err := d.rr.StepBack(n); err != nil {
		return err
	}
	d.m = d.rr.Machine()
	d.executed = d.rr.Executed()
	if t := d.m.CurThread(); t != nil {
		d.curTid = t.ID
		fmt.Fprintf(d.out, "back at position %d: thread %d at %s\n", d.executed, t.ID, d.loc(t.PC))
	} else {
		fmt.Fprintf(d.out, "back at position %d\n", d.executed)
	}
	return nil
}

// cmdReverseContinue runs backwards to the most recent earlier position
// at which a breakpoint would trigger. Implemented as a deterministic
// forward scan from region entry (accelerated by the checkpoints).
func (d *Debugger) cmdReverseContinue() error {
	if d.mode != modeReplay || d.rr == nil {
		return fmt.Errorf("reverse debugging requires replay mode (use replay)")
	}
	if len(d.bps) == 0 {
		return fmt.Errorf("no breakpoints to run back to")
	}
	cur := d.rr.Executed()
	if err := d.rr.RunTo(0); err != nil {
		return err
	}
	lastHit := int64(-1)
	for d.rr.Executed() < cur {
		if t := d.rr.Machine().CurThread(); t != nil && d.bpAt(t.PC) != nil {
			lastHit = d.rr.Executed()
		}
		if !d.rr.StepForward() {
			break
		}
	}
	if lastHit < 0 {
		// No earlier hit: stay at region entry.
		if err := d.rr.RunTo(0); err != nil {
			return err
		}
		d.m = d.rr.Machine()
		d.executed = 0
		fmt.Fprintln(d.out, "no earlier breakpoint hit; at region entry")
		return nil
	}
	if err := d.rr.RunTo(lastHit); err != nil {
		return err
	}
	d.m = d.rr.Machine()
	d.executed = d.rr.Executed()
	t := d.m.CurThread()
	bp := d.bpAt(t.PC)
	d.curTid = t.ID
	fmt.Fprintf(d.out, "breakpoint %d hit (reverse): thread %d at %s\n", bp.id, t.ID, d.loc(t.PC))
	return nil
}

// cmdRaces runs happens-before race detection over the session's trace
// and prints each race with source positions.
func (d *Debugger) cmdRaces() error {
	if d.sess == nil {
		return fmt.Errorf("race detection requires a session pinball")
	}
	rep, err := d.sess.DetectRaces()
	if err != nil {
		return err
	}
	tr, err := d.sess.Trace()
	if err != nil {
		return err
	}
	if len(rep.Races) == 0 {
		fmt.Fprintf(d.out, "no data races in region (%d shared accesses checked)\n", rep.Checked)
		return nil
	}
	fmt.Fprintf(d.out, "%d data race(s) in region (%d shared accesses checked):\n", len(rep.Races), rep.Checked)
	for i, r := range rep.Races {
		fmt.Fprintf(d.out, "%d: %s\n", i+1, r.Describe(tr, d.prog))
	}
	fmt.Fprintln(d.out, "use 'slice at <tid> <line>' on a racy access to slice its root cause")
	return nil
}

// cmdDeps navigates the current slice's dependence edges backwards — the
// KDbg GUI's "Activate" workflow as text.
func (d *Debugger) cmdDeps(args []string) error {
	if d.curSlice == nil {
		return fmt.Errorf("no current slice (use slice first)")
	}
	tr, err := d.sess.Trace()
	if err != nil {
		return err
	}
	nav := slice.NewNavigator(tr, d.curSlice)
	ref := nav.Criterion()
	if len(args) == 2 {
		tid, err1 := strconv.Atoi(args[0])
		idx, err2 := strconv.ParseInt(args[1], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("usage: deps [tid idx]")
		}
		ref, err = nav.ResolveMember(tid, idx)
		if err != nil {
			return err
		}
	} else if len(args) != 0 {
		return fmt.Errorf("usage: deps [tid idx]")
	}
	fmt.Fprintf(d.out, "direct dependences of %s:\n", nav.Describe(d.prog, ref))
	for _, dep := range nav.DependsOn(ref) {
		marker := ""
		if dep.From.Tid != dep.To.Tid {
			marker = " [cross-thread]"
		}
		fmt.Fprintf(d.out, "  %-7s <- %s%s\n", dep.Kind, nav.Describe(d.prog, dep.To), marker)
	}
	fmt.Fprintln(d.out, "value chain (first dependence at each hop):")
	nav.WriteChain(d.out, d.prog, ref, 6)
	return nil
}

// cmdSave persists session artifacts.
func (d *Debugger) cmdSave(args []string) error {
	if len(args) != 2 || args[0] != "pinball" {
		return fmt.Errorf("usage: save pinball <path>")
	}
	if d.sess == nil {
		return fmt.Errorf("no session pinball")
	}
	if err := d.sess.Pinball.Save(args[1]); err != nil {
		return err
	}
	fmt.Fprintf(d.out, "pinball saved to %s\n", args[1])
	return nil
}
