package debugger_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/debugger"
	"repro/internal/pinplay"
)

func TestWatchpointStopsOnChange(t *testing.T) {
	prog, err := cc.CompileSource("w.c", `
int stage;
int main() {
	int i;
	int pad = 0;
	for (i = 0; i < 50; i++) { pad = pad + i; }
	stage = 1;
	for (i = 0; i < 50; i++) { pad = pad + i; }
	stage = 2;
	write(pad);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(prog, pinplay.LogConfig{Seed: 1})
	out := exec(t, d, "watch stage")
	if !strings.Contains(out, "watchpoint 1 on stage") {
		t.Fatalf("watch: %s", out)
	}
	out = exec(t, d, "run")
	if !strings.Contains(out, "watchpoint 1 hit: stage changed to 1") {
		t.Fatalf("first hit: %s", out)
	}
	out = exec(t, d, "continue")
	if !strings.Contains(out, "watchpoint 1 hit: stage changed to 2") {
		t.Fatalf("second hit: %s", out)
	}
	out = exec(t, d, "continue")
	if !strings.Contains(out, "stopped: exit") {
		t.Fatalf("run out: %s", out)
	}
}

func TestWatchpointInReplayMode(t *testing.T) {
	d := reverseDebugger(t)
	exec(t, d, "watch total")
	out := exec(t, d, "continue")
	if !strings.Contains(out, "watchpoint 1 hit: total changed to 1") {
		t.Fatalf("replay watch: %s", out)
	}
	// Watchpoints interact with reverse debugging: go back, re-continue,
	// same deterministic hit.
	exec(t, d, "reverse-stepi 20")
	// Reset the watch to the rewound value by deleting and re-adding.
	exec(t, d, "delete 1")
	exec(t, d, "watch total")
	out = exec(t, d, "continue")
	if !strings.Contains(out, "watchpoint 2 hit: total changed to 1") {
		t.Fatalf("watch after reverse: %s", out)
	}
}

func TestWatchpointSpecsAndErrors(t *testing.T) {
	prog, err := cc.CompileSource("w.c", `
int tab[4];
int main() { tab[2] = 9; write(tab[2]); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(prog, pinplay.LogConfig{Seed: 1})
	out := exec(t, d, "watch tab[2]")
	if !strings.Contains(out, "watchpoint 1") {
		t.Fatalf("watch array: %s", out)
	}
	out = exec(t, d, "run")
	if !strings.Contains(out, "watchpoint 1 hit") {
		t.Fatalf("array watch hit: %s", out)
	}
	out = exec(t, d, "info breakpoints")
	if !strings.Contains(out, "watch tab[2]") {
		t.Fatalf("info: %s", out)
	}
	exec(t, d, "delete 1")
	execErr(t, d, "watch nope")
	execErr(t, d, "watch tab[99]")
	execErr(t, d, "watch *-5")
	execErr(t, d, "watch")
}
