// Package dualslice implements dual slicing in the spirit of Weeratunge
// et al. (ISSTA'10), cited by the paper's related work: given a failing
// and a passing execution of the same program, slice the same criterion
// in both and diff the results at the source-statement level. Statements
// that only the failing run's slice contains are where the computation of
// the bad value diverged — for concurrency bugs, typically the racing
// access that the passing schedule ordered harmlessly.
package dualslice

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/slice"
	"repro/internal/tracer"
)

// Stmt summarises one source statement's participation in the two slices.
type Stmt struct {
	Src string
	// FailCount / PassCount are the statement's dynamic occurrence
	// counts in the failing / passing slice (0 = absent).
	FailCount int
	PassCount int
	// Threads lists the thread ids executing the statement in whichever
	// slice(s) contain it.
	Threads []int
}

// Diff is the outcome of a dual slice.
type Diff struct {
	// OnlyFailing holds statements in the failing slice but not the
	// passing one — the divergence, ordered by source position.
	OnlyFailing []Stmt
	// OnlyPassing holds statements only the passing slice contains.
	OnlyPassing []Stmt
	// Common holds statements in both.
	Common []Stmt
}

// summarise aggregates a slice into per-statement counts.
func summarise(prog *isa.Program, tr *tracer.Trace, sl *slice.Slice) map[string]*Stmt {
	out := map[string]*Stmt{}
	for _, m := range sl.Members {
		e := tr.Entry(m)
		src := prog.SourceOf(e.PC)
		st := out[src]
		if st == nil {
			st = &Stmt{Src: src}
			out[src] = st
		}
		st.FailCount++ // caller reinterprets for the passing side
		seen := false
		for _, t := range st.Threads {
			if t == e.Tid {
				seen = true
			}
		}
		if !seen {
			st.Threads = append(st.Threads, e.Tid)
		}
	}
	return out
}

// Compare diffs a failing-run slice against a passing-run slice of the
// same program.
func Compare(prog *isa.Program,
	failTr *tracer.Trace, failSl *slice.Slice,
	passTr *tracer.Trace, passSl *slice.Slice) *Diff {

	fail := summarise(prog, failTr, failSl)
	pass := summarise(prog, passTr, passSl)

	d := &Diff{}
	var srcs []string
	for s := range fail {
		srcs = append(srcs, s)
	}
	for s := range pass {
		if _, dup := fail[s]; !dup {
			srcs = append(srcs, s)
		}
	}
	sort.Strings(srcs)

	for _, src := range srcs {
		f, inF := fail[src]
		p, inP := pass[src]
		switch {
		case inF && inP:
			st := Stmt{Src: src, FailCount: f.FailCount, PassCount: p.FailCount}
			st.Threads = mergeThreads(f.Threads, p.Threads)
			d.Common = append(d.Common, st)
		case inF:
			d.OnlyFailing = append(d.OnlyFailing, Stmt{
				Src: src, FailCount: f.FailCount, Threads: f.Threads,
			})
		default:
			d.OnlyPassing = append(d.OnlyPassing, Stmt{
				Src: src, PassCount: p.FailCount, Threads: p.Threads,
			})
		}
	}
	return d
}

func mergeThreads(a, b []int) []int {
	set := map[int]bool{}
	for _, t := range a {
		set[t] = true
	}
	for _, t := range b {
		set[t] = true
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// WriteText renders the diff for the debugger/CLI.
func (d *Diff) WriteText(w io.Writer) {
	section := func(title string, stmts []Stmt, count func(Stmt) string) {
		fmt.Fprintf(w, "[%s] (%d statements)\n", title, len(stmts))
		for _, s := range stmts {
			fmt.Fprintf(w, "  %-32s %s threads=%v\n", s.Src, count(s), s.Threads)
		}
	}
	section("only in failing slice", d.OnlyFailing, func(s Stmt) string {
		return fmt.Sprintf("x%d", s.FailCount)
	})
	section("only in passing slice", d.OnlyPassing, func(s Stmt) string {
		return fmt.Sprintf("x%d", s.PassCount)
	})
	section("common", d.Common, func(s Stmt) string {
		return fmt.Sprintf("fail x%d / pass x%d", s.FailCount, s.PassCount)
	})
}

// Equal reports whether two diffs are identical — same statements, same
// counts, same thread sets, in the same order. The differential tests
// use it to check that the sequential and parallel slicing engines
// produce indistinguishable dual-slice results.
func (d *Diff) Equal(o *Diff) bool {
	sameStmts := func(a, b []Stmt) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Src != b[i].Src || a[i].FailCount != b[i].FailCount || a[i].PassCount != b[i].PassCount {
				return false
			}
			if len(a[i].Threads) != len(b[i].Threads) {
				return false
			}
			for j := range a[i].Threads {
				if a[i].Threads[j] != b[i].Threads[j] {
					return false
				}
			}
		}
		return true
	}
	return sameStmts(d.OnlyFailing, o.OnlyFailing) &&
		sameStmts(d.OnlyPassing, o.OnlyPassing) &&
		sameStmts(d.Common, o.Common)
}
