package dualslice_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dualslice"
	"repro/internal/isa"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/tracer"
)

// The atomicity-violation bug: under a failing schedule, main's write to
// x lands between t2's two reads; under a passing schedule it lands
// after.
const raceSrc = `
int x;
int result;
int t2func(int unused) {
	int k = x + 1;
	yield();
	k = k + x;
	result = k;
	assert(k == 3);
	return k;
}
int main() {
	x = 1;
	int t = spawn(t2func, 0);
	yield();
	x = 0 - 1;
	join(t);
	return 0;
}`

// sliceOf records one run under the given seed (requiring failure or
// success) and slices the last read of `result`-producing value: the
// write to result is the common criterion anchor.
func sliceOf(t *testing.T, prog *isa.Program, seed int64, wantFail bool) (*tracer.Trace, *slice.Slice, bool) {
	t.Helper()
	pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 5}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	failed := pb.Failure != nil
	if failed != wantFail {
		return nil, nil, false
	}
	sess := core.Open(prog, pb)
	tr, err := sess.Trace()
	if err != nil {
		t.Fatal(err)
	}
	sym := prog.SymbolByName("result")
	var crit tracer.Ref
	// Criterion: the write of result (same source statement in both
	// runs) — slice the value stored there.
	found := false
	for g := len(tr.Global) - 1; g >= 0 && !found; g-- {
		ref := tr.Global[g]
		e := tr.Entry(ref)
		if e.MemIsWrite && e.EffAddr == sym.Addr {
			crit = ref
			found = true
		}
	}
	if !found {
		// The failing run stops at the assert before writing result;
		// fall back to the failing thread's last event.
		crit = tr.Global[len(tr.Global)-1]
	}
	s, err := slice.New(prog, tr, slice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sl, err := s.Slice(crit)
	if err != nil {
		t.Fatal(err)
	}
	return tr, sl, true
}

func TestDualSliceIsolatesRacingWrite(t *testing.T) {
	prog, err := cc.CompileSource("race.c", raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	var failTr, passTr *tracer.Trace
	var failSl, passSl *slice.Slice
	for seed := int64(1); seed < 300 && (failTr == nil || passTr == nil); seed++ {
		if failTr == nil {
			if tr, sl, ok := sliceOf(t, prog, seed, true); ok {
				failTr, failSl = tr, sl
			}
		}
		if passTr == nil {
			if tr, sl, ok := sliceOf(t, prog, seed, false); ok {
				passTr, passSl = tr, sl
			}
		}
	}
	if failTr == nil || passTr == nil {
		t.Fatal("could not find both failing and passing schedules")
	}

	d := dualslice.Compare(prog, failTr, failSl, passTr, passSl)

	// The racing write "x = 0 - 1" (line 16) must be failing-only: in
	// the passing schedule it happens after both reads and does not feed
	// the criterion.
	foundRace := false
	for _, s := range d.OnlyFailing {
		if strings.HasSuffix(s.Src, ":16") {
			foundRace = true
		}
	}
	if !foundRace {
		var srcs []string
		for _, s := range d.OnlyFailing {
			srcs = append(srcs, s.Src)
		}
		t.Errorf("racing write not isolated; only-failing = %v", srcs)
	}
	// The shared prefix (k = x + 1 at line 5) is common.
	foundCommon := false
	for _, s := range d.Common {
		if strings.HasSuffix(s.Src, ":5") {
			foundCommon = true
		}
	}
	if !foundCommon {
		t.Error("common computation missing from Common")
	}

	var buf bytes.Buffer
	d.WriteText(&buf)
	for _, want := range []string{"only in failing slice", "only in passing slice", "common", "race.c:16"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestDualSliceIdenticalRunsHaveNoDiff(t *testing.T) {
	prog, err := cc.CompileSource("same.c", `
int a;
int main() {
	a = 5;
	a = a * 2;
	write(a);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	get := func(seed int64) (*tracer.Trace, *slice.Slice) {
		pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed}, pinplay.RegionSpec{})
		if err != nil {
			t.Fatal(err)
		}
		sess := core.Open(prog, pb)
		tr, err := sess.Trace()
		if err != nil {
			t.Fatal(err)
		}
		sym := prog.SymbolByName("a")
		crit, err := slice.LastReadOf(tr, sym.Addr)
		if err != nil {
			t.Fatal(err)
		}
		s, err := slice.New(prog, tr, slice.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sl, err := s.Slice(crit)
		if err != nil {
			t.Fatal(err)
		}
		return tr, sl
	}
	t1, s1 := get(1)
	t2, s2 := get(2)
	d := dualslice.Compare(prog, t1, s1, t2, s2)
	if len(d.OnlyFailing) != 0 || len(d.OnlyPassing) != 0 {
		t.Errorf("identical single-threaded runs diverged: %+v %+v", d.OnlyFailing, d.OnlyPassing)
	}
	if len(d.Common) == 0 {
		t.Error("no common statements")
	}
}
