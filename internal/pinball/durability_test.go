package pinball_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pinball"
	"repro/internal/vm"
)

// readDir lists the names in dir, failing the test on error.
func readDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	pb := samplePinball()
	if err := pb.Save(filepath.Join(dir, "a.pinball")); err != nil {
		t.Fatal(err)
	}
	if err := pb.SaveLegacy(filepath.Join(dir, "b.pinball")); err != nil {
		t.Fatal(err)
	}
	for _, name := range readDir(t, dir) {
		if strings.Contains(name, ".tmp") {
			t.Errorf("staging file %s left behind", name)
		}
	}
}

func TestFailedSaveKeepsExistingFile(t *testing.T) {
	// Saving over a path that cannot be renamed onto (it is a directory)
	// must fail without clobbering it and without leaving a staging file.
	dir := t.TempDir()
	target := filepath.Join(dir, "occupied")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	pb := samplePinball()
	if err := pb.Save(target); err == nil {
		t.Fatal("Save over a directory succeeded")
	}
	if err := pb.SaveLegacy(target); err == nil {
		t.Fatal("SaveLegacy over a directory succeeded")
	}
	if st, err := os.Stat(target); err != nil || !st.IsDir() {
		t.Errorf("existing target clobbered: %v %v", st, err)
	}
	for _, name := range readDir(t, dir) {
		if strings.Contains(name, ".tmp") {
			t.Errorf("staging file %s left behind after failed save", name)
		}
	}
}

// journalPinball is samplePinball with divergence checkpoints laid out
// for truncation tests: one at step 48 (inside the first quantum) and
// one at step 70 (the region end).
func journalPinball() *pinball.Pinball {
	pb := samplePinball()
	pb.Exclusions, pb.Injections = nil, nil
	pb.CheckpointEvery = 8
	pb.Checkpoints = []pinball.Checkpoint{
		{Tid: 0, Seq: 48, Idx: 48, Step: 48, Hash: 0xfeedface, PC: 10},
		{Tid: 1, Seq: 16, Idx: 16, Step: 70, Hash: 0xdeadbeef, PC: 20},
	}
	return pb
}

// writeJournal writes pb to path as a v3 journal in two flush windows,
// committing only when commit is true. Returns the flush-window byte
// boundary (end of the first AppendChunk's frames).
func writeJournal(t *testing.T, path string, pb *pinball.Pinball, commit bool) int64 {
	t.Helper()
	provisional := &pinball.Pinball{
		ProgramName: pb.ProgramName, Kind: pb.Kind,
		State: pb.State, CheckpointEvery: pb.CheckpointEvery,
	}
	w, err := pinball.NewJournalWriter(path, provisional, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendChunk(pb.Quanta[:1], pb.Syscalls, pb.OrderEdges, pb.Checkpoints[:1]); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	boundary := st.Size()
	if err := w.AppendChunk(pb.Quanta[1:], nil, nil, pb.Checkpoints[1:]); err != nil {
		t.Fatal(err)
	}
	if commit {
		if err := w.Commit(pb); err != nil {
			t.Fatal(err)
		}
	} else if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	return boundary
}

func TestJournalRoundTrip(t *testing.T) {
	pb := journalPinball()
	path := filepath.Join(t.TempDir(), "j.pinball")
	writeJournal(t, path, pb, true)
	got, err := pinball.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProgramName != pb.ProgramName || got.Kind != pb.Kind ||
		got.RegionInstrs != pb.RegionInstrs || got.EndReason != pb.EndReason {
		t.Error("metadata lost through the journal")
	}
	if len(got.Quanta) != 2 || got.Quanta[1] != pb.Quanta[1] {
		t.Errorf("quanta lost through the journal: %v", got.Quanta)
	}
	if len(got.Syscalls) != 1 || got.Syscalls[0] != pb.Syscalls[0] {
		t.Error("syscalls lost through the journal")
	}
	if len(got.Checkpoints) != 2 || got.Checkpoints[1] != pb.Checkpoints[1] {
		t.Error("checkpoints lost through the journal")
	}
	if !got.State.Mem.Equal(pb.State.Mem) {
		t.Error("memory image lost through the journal")
	}
}

func TestUncommittedJournalRejectedByLoad(t *testing.T) {
	pb := journalPinball()
	path := filepath.Join(t.TempDir(), "j.pinball")
	writeJournal(t, path, pb, false)
	_, err := pinball.Load(path)
	if !errors.Is(err, pinball.ErrTruncated) {
		t.Fatalf("uncommitted journal: err = %v, want ErrTruncated", err)
	}
	if !strings.Contains(err.Error(), "commit frame") {
		t.Errorf("error %q does not explain the missing commit", err)
	}
}

func TestSalvageUncommittedJournal(t *testing.T) {
	pb := journalPinball()
	path := filepath.Join(t.TempDir(), "j.pinball")
	writeJournal(t, path, pb, false)
	got, rep, err := pinball.Salvage(path)
	if err != nil {
		t.Fatalf("salvage: %v\n%s", err, rep.Summary())
	}
	// All 70 scheduled instructions survived; the anchor is the last
	// checkpoint, step 70 — the full region.
	if !rep.Truncated || rep.CheckpointStep != 70 {
		t.Errorf("report: truncated=%v step=%d, want truncation at 70", rep.Truncated, rep.CheckpointStep)
	}
	if got.RegionInstrs != 70 || got.TotalQuantumInstrs() != 70 {
		t.Errorf("salvaged region %d/%d, want 70/70", got.RegionInstrs, got.TotalQuantumInstrs())
	}
	if got.EndReason != "salvaged" {
		t.Errorf("EndReason = %q", got.EndReason)
	}
}

func TestSalvageTornJournalTruncatesToCheckpoint(t *testing.T) {
	pb := journalPinball()
	dir := t.TempDir()
	path := filepath.Join(dir, "j.pinball")
	boundary := writeJournal(t, path, pb, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the second flush window: only the first
	// window (quantum {0,50}, checkpoint at 48) survives intact.
	torn := filepath.Join(dir, "torn.pinball")
	if err := os.WriteFile(torn, data[:boundary+7], 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep, err := pinball.Salvage(torn)
	if err != nil {
		t.Fatalf("salvage: %v\n%s", err, rep.Summary())
	}
	if rep.CheckpointStep != 48 || got.RegionInstrs != 48 {
		t.Errorf("salvaged to step %d / region %d, want 48", rep.CheckpointStep, got.RegionInstrs)
	}
	// The 50-instruction quantum was split at the truncation boundary.
	if len(got.Quanta) != 1 || got.Quanta[0] != (vm.Quantum{Tid: 0, Count: 48}) {
		t.Errorf("salvaged quanta = %v, want [{0 48}]", got.Quanta)
	}
	if got.MainInstrs != 48 {
		t.Errorf("MainInstrs = %d, want 48", got.MainInstrs)
	}
	if len(got.Checkpoints) != 1 || got.Checkpoints[0].Step != 48 {
		t.Errorf("checkpoints = %v, want just the step-48 one", got.Checkpoints)
	}
	if rep.DamageOffset != boundary {
		t.Errorf("DamageOffset = %d, want flush boundary %d", rep.DamageOffset, boundary)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("salvaged pinball invalid: %v", err)
	}
}

func TestSalvageJournalWithoutCheckpointsFails(t *testing.T) {
	pb := journalPinball()
	pb.CheckpointEvery, pb.Checkpoints = 0, nil
	path := filepath.Join(t.TempDir(), "j.pinball")
	provisional := &pinball.Pinball{ProgramName: pb.ProgramName, Kind: pb.Kind, State: pb.State}
	w, err := pinball.NewJournalWriter(path, provisional, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendChunk(pb.Quanta, pb.Syscalls, pb.OrderEdges, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	_, _, err = pinball.Salvage(path)
	if !errors.Is(err, pinball.ErrUnsalvageable) {
		t.Fatalf("journal without checkpoints: err = %v, want ErrUnsalvageable", err)
	}
}

// tornAtSection returns the v2 encoding of pb cut right before section
// id's frame starts.
func tornAtSection(t *testing.T, pb *pinball.Pinball, id byte) []byte {
	t.Helper()
	data, err := pb.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	secs, err := pinball.SectionOffsets(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range secs {
		if s.ID == id {
			return data[:s.Off]
		}
	}
	t.Fatalf("pinball has no section %d", id)
	return nil
}

func TestSalvageFramedLostCheckpoints(t *testing.T) {
	pb := journalPinball()
	torn := tornAtSection(t, pb, 7) // secCheckpoints is the last section
	got, rep, err := pinball.SalvageBytes(torn)
	if err != nil {
		t.Fatalf("salvage: %v\n%s", err, rep.Summary())
	}
	if !rep.Unverified {
		t.Error("report does not flag the salvaged pinball as unverified")
	}
	if got.RegionInstrs != pb.RegionInstrs || len(got.Checkpoints) != 0 {
		t.Errorf("salvaged region %d checkpoints %d, want full region, no checkpoints",
			got.RegionInstrs, len(got.Checkpoints))
	}
	// The lost checkpoints leave a cadence without checkpoints, which
	// Validate allows; replay simply cannot window-verify.
	if err := got.Validate(); err != nil {
		t.Errorf("salvaged pinball invalid: %v", err)
	}
}

func TestSalvageFramedLostSyscallsFails(t *testing.T) {
	pb := journalPinball()
	torn := tornAtSection(t, pb, 4) // secSyscalls: replay-critical
	_, rep, err := pinball.SalvageBytes(torn)
	if !errors.Is(err, pinball.ErrUnsalvageable) {
		t.Fatalf("lost syscalls: err = %v, want ErrUnsalvageable", err)
	}
	if !strings.Contains(err.Error(), "syscall") {
		t.Errorf("error %q does not name the lost section", err)
	}
	if len(rep.LostSections) == 0 {
		t.Error("report lists no lost sections")
	}
}

func TestSalvageSlicePinballLostSliceSectionFails(t *testing.T) {
	pb := samplePinball()
	pb.Kind = pinball.KindSlice
	pb.Syscalls, pb.OrderEdges = nil, nil // make secSlice the tear point
	torn := tornAtSection(t, pb, 6)       // secSlice
	_, _, err := pinball.SalvageBytes(torn)
	if !errors.Is(err, pinball.ErrUnsalvageable) {
		t.Fatalf("slice pinball without slice section: err = %v, want ErrUnsalvageable", err)
	}
}

func TestSalvageIntactFile(t *testing.T) {
	pb := samplePinball()
	path := filepath.Join(t.TempDir(), "ok.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	got, rep, err := pinball.Salvage(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact {
		t.Error("intact file not reported as intact")
	}
	if got.RegionInstrs != pb.RegionInstrs {
		t.Error("intact salvage altered the pinball")
	}
}

func TestSalvageLegacyFails(t *testing.T) {
	pb := samplePinball()
	path := filepath.Join(t.TempDir(), "v0.pinball")
	if err := pb.SaveLegacy(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = pinball.SalvageBytes(data[:len(data)/2])
	if !errors.Is(err, pinball.ErrUnsalvageable) {
		t.Fatalf("torn legacy: err = %v, want ErrUnsalvageable", err)
	}
}

func TestLoadErrorsCarrySectionOffsets(t *testing.T) {
	pb := samplePinball()
	data, err := pb.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	secs, err := pinball.SectionOffsets(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the schedule section (id 3).
	for _, s := range secs {
		if s.ID == 3 {
			data[s.Off+13] ^= 0xff
		}
	}
	bad := filepath.Join(t.TempDir(), "flipped.pinball")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = pinball.Load(bad)
	if !errors.Is(err, pinball.ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrCorrupt", err)
	}
	msg := err.Error()
	for _, want := range []string{"section id 3", "byte offset", "checksum", "flipped.pinball"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
