package pinball

import (
	"fmt"
	"sort"
)

// Flight-recorder (ring) support. A ring recording bounds what the
// recorder retains: the region is cut into flush windows, every window's
// divergence checkpoints are always kept, but once the retained window
// content (schedule, syscall results, order edges) exceeds the byte
// budget the oldest windows are evicted. Each evicted window leaves an
// Eviction record behind — its global-step span and the windowed FNV-1a
// hash of every instruction event inside it — so a replayer can re-derive
// the missing window by deterministic re-execution (from the Recipe) and
// verify the re-derived content against the retained hash. A hash match
// makes the bridge exact; a mismatch is a typed degraded outcome, never a
// silent wrong answer.

// Eviction records one window the ring recorder dropped: its window id,
// the global region-step span [FromStep, ToStep) it covered, the
// estimated byte span of the dropped content, and the windowed FNV-1a
// hash of every instruction event executed inside the span.
type Eviction struct {
	ID       int64
	FromStep int64 // first global region step of the window
	ToStep   int64 // first global region step after the window
	Bytes    int64 // estimated encoded bytes of the dropped content
	Hash     uint64
}

func (e Eviction) String() string {
	return fmt.Sprintf("window %d steps [%d,%d) ~%dB hash %016x", e.ID, e.FromStep, e.ToStep, e.Bytes, e.Hash)
}

// Span returns the number of region instructions the eviction covers.
func (e Eviction) Span() int64 { return e.ToStep - e.FromStep }

// Recipe captures the resumable nondeterminism state at region entry —
// the exact scheduler and environment state the original recording
// continued from. It is what makes gap bridging possible: re-executing
// the region natively from the pinball's initial state with a resumed
// scheduler/environment reproduces the original execution bit for bit,
// so evicted windows can be re-derived instead of stored.
type Recipe struct {
	// SchedState is the random scheduler's generator state at region
	// entry; MeanQ its mean quantum.
	SchedState uint64
	MeanQ      int64
	// CurTid/CurLeft describe the scheduler quantum in flight when
	// recording started (the region rarely begins on a quantum
	// boundary). CurLeft 0 means no quantum was in flight.
	CurTid  int
	CurLeft int64
	// Environment state at region entry: remaining program input, the
	// input cursor, the rand() generator state and the logical clock.
	EnvInput []int64
	EnvPos   int64
	EnvRand  uint64
	EnvClock int64
}

// ringV1 is the ring section payload (v2 section / v3 commit frame):
// everything flight-recorder mode adds to a pinball.
type ringV1 struct {
	RingBytes  int64
	SampleKeep int64
	Evictions  []Eviction
	Recipe     *Recipe
}

// ringWindowV1 is the v3 window-seal frame payload: appended when the
// recorder seals a flush window, before it is known whether the window
// will survive the budget. It is what lets Salvage reconstruct a fully
// bridgeable pinball from an interrupted ring journal.
type ringWindowV1 struct {
	ID       int64
	FromStep int64
	ToStep   int64
	Hash     uint64
}

// GapInstrs returns the number of region instructions covered by evicted
// windows — the part of the region a replay must bridge by re-execution.
func (p *Pinball) GapInstrs() int64 {
	var n int64
	for _, e := range p.Evictions {
		n += e.Span()
	}
	return n
}

// Gapped reports whether the pinball has evicted windows and therefore
// needs gap-bridging replay.
func (p *Pinball) Gapped() bool { return len(p.Evictions) > 0 }

// validateRing checks the ring fields' structural invariants; bad is the
// ErrCorrupt wrapper from Validate.
func (p *Pinball) validateRing(bad func(format string, args ...any) error) error {
	if p.RingBytes < 0 || p.SampleKeep < 0 {
		return bad("negative ring configuration")
	}
	if len(p.Evictions) == 0 {
		return nil
	}
	if p.Kind == KindSlice {
		return bad("slice pinball carries ring evictions")
	}
	if p.Recipe == nil {
		return bad("%d evicted windows but no bridge recipe", len(p.Evictions))
	}
	if !sort.SliceIsSorted(p.Evictions, func(i, j int) bool { return p.Evictions[i].FromStep < p.Evictions[j].FromStep }) {
		return bad("eviction manifest out of order")
	}
	var prevEnd int64
	for i, e := range p.Evictions {
		if e.FromStep < 0 || e.ToStep <= e.FromStep {
			return bad("eviction %d has empty step span [%d,%d)", i, e.FromStep, e.ToStep)
		}
		if e.FromStep < prevEnd {
			return bad("eviction %d span [%d,%d) overlaps the previous window", i, e.FromStep, e.ToStep)
		}
		if e.ToStep > p.RegionInstrs {
			return bad("eviction %d span [%d,%d) extends past the region end %d", i, e.FromStep, e.ToStep, p.RegionInstrs)
		}
		prevEnd = e.ToStep
	}
	if p.Recipe != nil && p.Recipe.CurLeft < 0 {
		return bad("bridge recipe has negative in-flight quantum")
	}
	return nil
}
