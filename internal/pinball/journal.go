package pinball

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/vm"
)

// Incremental journal (format version 3). A pinball written with Save
// only exists once recording has finished; a crash mid-record loses the
// whole capture. The journal inverts that: the file starts with the
// sections known at region entry (provisional meta, initial machine
// state) and then grows by checksummed chunk frames as the recording
// runs, each flush covering a window of the region. A final commit frame
// carries the authoritative meta and marks the recording complete.
//
// Chunk frames inside one flush are ordered syscalls, order edges,
// checkpoints, then quanta LAST. Because frames are appended in order, a
// torn tail that keeps a flush's quanta chunk necessarily keeps every
// event chunk of the same window — so the longest valid frame prefix is
// always consistent up to its last quanta chunk, and Salvage can anchor
// a replayable truncation at the last divergence checkpoint it covers.
//
// Load accepts only committed journals; an uncommitted journal is an
// interrupted recording and fails with ErrTruncated (pointing the user
// at drrepair / Salvage).

// Journal chunk section ids (the framed ids 1..7 keep their meaning).
const (
	secQuantaChunk     = byte(8)  // []vm.Quantum delta
	secSyscallChunk    = byte(9)  // []vm.SyscallRecord delta
	secOrderChunk      = byte(10) // []vm.OrderEdge delta
	secCheckpointChunk = byte(11) // []Checkpoint delta
	secCommit          = byte(12) // metaV1, authoritative, terminates the journal
	// Ring (flight-recorder) frames; secRing = 13 lives in format.go.
	secRecipe     = byte(14) // Recipe, written right after the state frame
	secRingWindow = byte(15) // ringWindowV1, one per sealed flush window
)

// journalHeaderLen is the v3 file header: magic + version + kind.
const journalHeaderLen = int64(len(fileMagic) + 2)

// JournalWriter appends a recording to disk as it happens. Methods keep
// a sticky error: after the first failure every later call is a no-op
// returning the same error, so the recording loop does not need to check
// every flush.
type JournalWriter struct {
	f    *os.File
	path string
	sync bool
	err  error
}

// NewJournalWriter creates (truncating) the journal at path and writes
// the header, the provisional meta and the initial state section from p
// — which only needs the fields known at region entry: ProgramName,
// Kind, CheckpointEvery and State. When sync is true every sealed chunk
// is fsynced, making each flushed window durable immediately.
func NewJournalWriter(path string, p *Pinball, sync bool) (*JournalWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pinball: journal: %w", err)
	}
	w := &JournalWriter{f: f, path: path, sync: sync}
	header := append([]byte(fileMagic), versionJournal, kindByte(p.Kind))
	if _, err := f.Write(header); err != nil {
		w.fail(err)
		return nil, w.err
	}
	w.appendFrame(secMeta, p.meta(nil))
	w.appendFrame(secState, p.State)
	w.maybeSync()
	if w.err != nil {
		return nil, w.err
	}
	return w, nil
}

// Path returns where the journal is being written.
func (w *JournalWriter) Path() string { return w.path }

// Err returns the sticky write error, if any.
func (w *JournalWriter) Err() error { return w.err }

// fail records the first error and stops further writes.
func (w *JournalWriter) fail(err error) {
	if w.err == nil {
		w.err = fmt.Errorf("pinball: journal %s: %w", w.path, err)
	}
}

// appendFrame seals one section frame: gob+gzip payload, length, CRC.
func (w *JournalWriter) appendFrame(id byte, v any) {
	if w.err != nil {
		return
	}
	payload, err := packPayload(v)
	if err != nil {
		w.fail(fmt.Errorf("encode section %d: %w", id, err))
		return
	}
	var hdr [sectionHeaderLen]byte
	hdr[0] = id
	binary.BigEndian.PutUint64(hdr[1:9], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr[:]); err != nil {
		w.fail(err)
		return
	}
	if _, err := w.f.Write(payload); err != nil {
		w.fail(err)
	}
}

// maybeSync fsyncs the journal when durable flushing is on.
func (w *JournalWriter) maybeSync() {
	if w.err != nil || !w.sync {
		return
	}
	if err := w.f.Sync(); err != nil {
		w.fail(err)
	}
}

// AppendChunk seals one flush window: the non-empty deltas since the
// previous flush, quanta written last so a torn tail can never keep a
// schedule window whose events were lost.
func (w *JournalWriter) AppendChunk(quanta []vm.Quantum, syscalls []vm.SyscallRecord, edges []vm.OrderEdge, cps []Checkpoint) error {
	if len(syscalls) > 0 {
		w.appendFrame(secSyscallChunk, syscalls)
	}
	if len(edges) > 0 {
		w.appendFrame(secOrderChunk, edges)
	}
	if len(cps) > 0 {
		w.appendFrame(secCheckpointChunk, cps)
	}
	if len(quanta) > 0 {
		w.appendFrame(secQuantaChunk, quanta)
	}
	w.maybeSync()
	return w.err
}

// AppendRecipe seals the bridge-recipe frame. Ring recordings write it
// immediately after the header sections, so even a journal torn at the
// first flush still knows how to re-derive the region by re-execution.
func (w *JournalWriter) AppendRecipe(r *Recipe) error {
	w.appendFrame(secRecipe, r)
	w.maybeSync()
	return w.err
}

// AppendWindowSeal records that the ring recorder sealed flush window id
// covering global region steps [fromStep, toStep) with the given windowed
// event hash. The window's content stays in the in-memory ring (it may
// yet be evicted); only retained content is written at commit. Together
// with the recipe frame this makes an interrupted ring journal fully
// recoverable: every sealed window becomes a verifiable gap.
func (w *JournalWriter) AppendWindowSeal(id, fromStep, toStep int64, hash uint64) error {
	w.appendFrame(secRingWindow, ringWindowV1{ID: id, FromStep: fromStep, ToStep: toStep, Hash: hash})
	w.maybeSync()
	return w.err
}

// Commit writes the authoritative meta from the finished pinball,
// fsyncs and closes the journal — only then is the file a complete,
// loadable pinball.
func (w *JournalWriter) Commit(final *Pinball) error {
	if final.RingBytes != 0 || final.SampleKeep != 0 || len(final.Evictions) > 0 || final.Recipe != nil {
		w.appendFrame(secRing, ringV1{final.RingBytes, final.SampleKeep, final.Evictions, final.Recipe})
	}
	w.appendFrame(secCommit, final.meta(nil))
	if w.err == nil {
		if err := w.f.Sync(); err != nil {
			w.fail(err)
		}
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.fail(err)
	}
	return w.err
}

// Abort closes the journal without committing. The file is left on disk:
// it is exactly what a crash would have left, and Salvage can recover
// its checkpoint-consistent prefix.
func (w *JournalWriter) Abort() error {
	if err := w.f.Close(); err != nil && w.err == nil {
		w.fail(err)
	}
	return w.err
}

// journalParts is the raw content of a journal's valid frame prefix.
type journalParts struct {
	kindB     byte
	meta      metaV1 // provisional at first, overwritten by the commit frame
	hasMeta   bool
	committed bool
	p         *Pinball
	frames    int
	end       int64 // byte offset just past the last good frame

	// Ring (flight-recorder) journal state: ringMode is set by the recipe
	// frame; windows accumulates every window-seal frame, in order.
	ringMode bool
	windows  []ringWindowV1
}

// readJournalFrames walks the journal's frames from the top of file,
// accumulating chunks in order, until end of file, the commit frame, or
// the first damaged frame — in which case the error describes the damage
// and parts holds everything before it (parts.end is the damage offset).
func readJournalFrames(data []byte) (*journalParts, error) {
	parts := &journalParts{p: &Pinball{}, end: journalHeaderLen}
	if int64(len(data)) < journalHeaderLen {
		parts.end = int64(len(data))
		return parts, fmt.Errorf("%w: header ends after version byte", ErrTruncated)
	}
	parts.kindB = data[len(fileMagic)+1]
	for off := journalHeaderLen; off < int64(len(data)); {
		f, next, err := readFrame(data, off, parts.frames+1)
		if err != nil {
			return parts, err
		}
		if err := parts.applyFrame(f); err != nil {
			return parts, err
		}
		parts.frames++
		parts.end = next
		off = next
		if parts.committed {
			if rest := int64(len(data)) - off; rest != 0 {
				return parts, fmt.Errorf("%w: %d trailing bytes after the commit frame at byte offset %d", ErrCorrupt, rest, off)
			}
			break
		}
	}
	return parts, nil
}

// applyFrame merges one valid frame into the accumulated journal state.
func (j *journalParts) applyFrame(f frame) error {
	switch f.id {
	case secMeta:
		if err := f.decode(&j.meta); err != nil {
			return err
		}
		j.hasMeta = true
	case secCommit:
		if err := f.decode(&j.meta); err != nil {
			return err
		}
		j.hasMeta, j.committed = true, true
	case secState:
		return f.decode(&j.p.State)
	case secQuantaChunk:
		var q []vm.Quantum
		if err := f.decode(&q); err != nil {
			return err
		}
		// A flush boundary can split a still-open quantum across chunks;
		// re-merge adjacent same-thread runs so the decoded schedule is the
		// machine's maximal run-length form, bit-identical to a Save.
		for _, e := range q {
			if n := len(j.p.Quanta); n > 0 && j.p.Quanta[n-1].Tid == e.Tid {
				j.p.Quanta[n-1].Count += e.Count
				continue
			}
			j.p.Quanta = append(j.p.Quanta, e)
		}
	case secSyscallChunk:
		var s []vm.SyscallRecord
		if err := f.decode(&s); err != nil {
			return err
		}
		j.p.Syscalls = append(j.p.Syscalls, s...)
	case secOrderChunk:
		var e []vm.OrderEdge
		if err := f.decode(&e); err != nil {
			return err
		}
		j.p.OrderEdges = append(j.p.OrderEdges, e...)
	case secCheckpointChunk:
		var c []Checkpoint
		if err := f.decode(&c); err != nil {
			return err
		}
		j.p.Checkpoints = append(j.p.Checkpoints, c...)
	case secRecipe:
		var r Recipe
		if err := f.decode(&r); err != nil {
			return err
		}
		j.p.Recipe = &r
		j.ringMode = true
	case secRingWindow:
		var wv ringWindowV1
		if err := f.decode(&wv); err != nil {
			return err
		}
		j.windows = append(j.windows, wv)
	case secRing:
		var rg ringV1
		if err := f.decode(&rg); err != nil {
			return err
		}
		j.p.RingBytes, j.p.SampleKeep = rg.RingBytes, rg.SampleKeep
		j.p.Evictions = rg.Evictions
		if rg.Recipe != nil {
			j.p.Recipe = rg.Recipe
		}
	}
	return nil // checksum-verified unknown section: skip
}

// decodeJournal reads a committed journal from the full file bytes.
func decodeJournal(data []byte) (*Pinball, error) {
	parts, err := readJournalFrames(data)
	if err != nil {
		return nil, err
	}
	if !parts.committed {
		return nil, fmt.Errorf("%w: journal has no commit frame — the recording was interrupted (run drrepair, or load with salvage enabled)", ErrTruncated)
	}
	p := parts.p
	p.applyMeta(parts.meta)
	if kindByte(p.Kind) != parts.kindB {
		return nil, fmt.Errorf("%w: header kind %q does not match meta kind %q", ErrCorrupt, parts.kindB, p.Kind)
	}
	return p, nil
}
