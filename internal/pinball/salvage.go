package pinball

import (
	"fmt"
	"os"
)

// Salvage recovers a usable pinball from a damaged file. Where Decode
// must reject a torn or bit-flipped file outright, Salvage keeps the
// longest prefix of CRC-valid, decodable sections and reconstitutes a
// consistent partial pinball from it:
//
//   - A framed (v2) file that lost only trailing optional sections
//     (order edges, divergence checkpoints) is rebuilt whole; the meta
//     section's manifest proves the lost sections were optional.
//   - An interrupted journal (v3, no commit frame — a crash or kill mid
//     recording) is truncated to the last divergence checkpoint covered
//     by its surviving schedule chunks: the result replays bit-identically
//     to the original execution up to that checkpoint, and slices like
//     any other pinball.
//
// Damage that costs data replay cannot do without — the initial state,
// the schedule, recorded syscall results, a slice pinball's injections,
// or (when truncation is needed) every checkpoint — fails with
// ErrUnsalvageable. The report describes what was kept, what was lost
// and where the damage sits, whether salvage succeeded or not.

// SalvageReport describes a salvage attempt.
type SalvageReport struct {
	Path    string `json:"path,omitempty"`
	Version byte   `json:"version"`

	// Intact is true when the file decoded cleanly and was returned
	// unchanged (nothing to salvage).
	Intact bool `json:"intact"`
	// Committed reports whether a journal had its commit frame.
	Committed bool `json:"committed,omitempty"`

	BytesTotal int64 `json:"bytes_total"`
	BytesKept  int64 `json:"bytes_kept"`

	// DamageOffset is the absolute byte offset of the first damaged
	// frame (-1 when the framing itself was fine, e.g. an uncommitted but
	// untorn journal). DamageCause is the typed scan error's text.
	DamageOffset int64  `json:"damage_offset"`
	DamageCause  string `json:"damage_cause,omitempty"`

	SectionsKept int    `json:"sections_kept"`
	LostSections []byte `json:"lost_sections,omitempty"` // known-lost ids (v2 manifest)

	// OriginalInstrs is the recorded region length when known (0 for an
	// uncommitted journal, whose final length died with the recording).
	// SalvagedInstrs is the region length of the recovered pinball.
	OriginalInstrs int64 `json:"original_instrs,omitempty"`
	SalvagedInstrs int64 `json:"salvaged_instrs"`

	// Truncated is set when the recovery anchored at a divergence
	// checkpoint; CheckpointStep is that checkpoint's global region step.
	Truncated      bool  `json:"truncated"`
	CheckpointStep int64 `json:"checkpoint_step,omitempty"`
	// Unverified is set when the recovered pinball lost its divergence
	// checkpoints: it replays, but replay cannot be validated windows-wise.
	Unverified bool `json:"unverified,omitempty"`
	// Evicted counts the sealed flight-recorder windows recovered as
	// evictions from an interrupted ring journal: their content was still
	// in the recorder's memory when the recording died, so replay must
	// re-derive every one of them by gap bridging.
	Evicted int `json:"evicted,omitempty"`
}

// Summary renders the report as a short human-readable block.
func (r *SalvageReport) Summary() string {
	if r.Intact {
		return fmt.Sprintf("intact pinball (format version %d, %d bytes): nothing to repair", r.Version, r.BytesTotal)
	}
	s := fmt.Sprintf("kept %d of %d bytes (%d sections)", r.BytesKept, r.BytesTotal, r.SectionsKept)
	if r.DamageOffset >= 0 {
		s += fmt.Sprintf("\nfirst damage at byte offset %d: %s", r.DamageOffset, r.DamageCause)
	} else if r.DamageCause != "" {
		s += "\n" + r.DamageCause
	}
	if len(r.LostSections) > 0 {
		s += fmt.Sprintf("\nlost sections: %v", r.LostSections)
	}
	if r.Truncated {
		s += fmt.Sprintf("\ntruncated to the last intact divergence checkpoint: %d instructions (region step %d)",
			r.SalvagedInstrs, r.CheckpointStep)
	} else {
		s += fmt.Sprintf("\nregion recovered whole: %d instructions", r.SalvagedInstrs)
	}
	if r.Unverified {
		s += "\ndivergence checkpoints were lost: replay of the salvaged pinball is unverified"
	}
	if r.Evicted > 0 {
		s += fmt.Sprintf("\nring journal: %d sealed windows recovered as evictions; replay will re-derive them by gap bridging", r.Evicted)
	}
	return s
}

// Salvage reads the file at path and recovers what it can. On success
// the returned pinball passes Validate and is replayable; the report is
// non-nil even on failure, so tools can show diagnostics either way.
func Salvage(path string) (*Pinball, *SalvageReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &SalvageReport{Path: path, DamageOffset: -1, DamageCause: err.Error()},
			fmt.Errorf("pinball: %w", err)
	}
	p, rep, err := SalvageBytes(data)
	rep.Path = path
	if err != nil {
		return nil, rep, fmt.Errorf("pinball: salvage %s: %w", path, err)
	}
	return p, rep, nil
}

// SalvageBytes is Salvage over in-memory file bytes.
func SalvageBytes(data []byte) (*Pinball, *SalvageReport, error) {
	rep := &SalvageReport{BytesTotal: int64(len(data)), DamageOffset: -1}

	// A file that loads cleanly needs no repair.
	if p, err := Decode(data); err == nil {
		rep.Intact = true
		rep.Version = data[len(fileMagic)]
		rep.BytesKept = rep.BytesTotal
		rep.OriginalInstrs, rep.SalvagedInstrs = p.RegionInstrs, p.RegionInstrs
		return p, rep, nil
	}

	if len(data) < len(fileMagic)+1 || string(data[:len(fileMagic)]) != fileMagic {
		rep.DamageCause = "no pinball magic"
		return nil, rep, fmt.Errorf("%w: not a pinball file", ErrUnsalvageable)
	}
	rep.Version = data[len(fileMagic)]
	switch rep.Version {
	case versionLegacy:
		// Legacy files are one opaque gzip stream: no frame boundaries to
		// recover at.
		rep.DamageCause = "legacy format has no section framing to salvage"
		return nil, rep, fmt.Errorf("%w: damaged legacy (v0) pinball has no recoverable framing", ErrUnsalvageable)
	case versionFramed:
		return salvageFramed(data, rep)
	case versionJournal:
		return salvageJournal(data, rep)
	}
	rep.DamageCause = fmt.Sprintf("unknown format version %d", rep.Version)
	return nil, rep, fmt.Errorf("%w: unknown format version %d", ErrUnsalvageable, rep.Version)
}

// replayCritical are the section ids replay cannot run without. The
// slice section is critical only for slice pinballs (checked separately).
var replayCritical = map[byte]string{
	secMeta:     "meta",
	secState:    "initial state",
	secSchedule: "schedule",
	secSyscalls: "syscall results",
}

// salvageFramed recovers a framed (v2) file: the valid frame prefix is
// kept, and the meta manifest decides whether the lost tail mattered.
func salvageFramed(data []byte, rep *SalvageReport) (*Pinball, *SalvageReport, error) {
	if int64(len(data)) < framedHeaderLen {
		rep.DamageCause = "file ends inside the header"
		return nil, rep, fmt.Errorf("%w: file ends inside the header", ErrUnsalvageable)
	}
	count := int(data[len(fileMagic)+2])
	p := &Pinball{}
	meta := metaV1{}
	seen := map[byte]bool{}
	off := framedHeaderLen
	for i := 1; i <= count; i++ {
		f, next, err := readFrame(data, off, i)
		if err == nil && seen[f.id] {
			err = fmt.Errorf("%w: duplicate section id %d (#%d) at byte offset %d", ErrCorrupt, f.id, i, f.off)
		}
		if err == nil {
			err = f.apply(p, &meta)
		}
		if err != nil {
			rep.DamageOffset, rep.DamageCause = off, err.Error()
			break
		}
		seen[f.id] = true
		rep.SectionsKept++
		off = next
	}
	rep.BytesKept = off

	// Which sections did the tear cost? Old files without a manifest
	// cannot prove the lost tail was optional, so they only salvage when
	// every declared section survived (i.e. only trailing garbage or a
	// torn final frame past the declared count — rare, but cheap to keep).
	if !seen[secMeta] {
		return nil, rep, fmt.Errorf("%w: the meta section did not survive", ErrUnsalvageable)
	}
	if len(meta.Sections) == 0 && rep.SectionsKept < count {
		return nil, rep, fmt.Errorf("%w: file predates the section manifest; cannot prove the %d lost sections were optional",
			ErrUnsalvageable, count-rep.SectionsKept)
	}
	for _, id := range meta.Sections {
		if seen[id] {
			continue
		}
		rep.LostSections = append(rep.LostSections, id)
		if what, critical := replayCritical[id]; critical {
			return nil, rep, fmt.Errorf("%w: the %s section did not survive", ErrUnsalvageable, what)
		}
		if id == secSlice && meta.Kind == KindSlice {
			return nil, rep, fmt.Errorf("%w: the slice pinball's exclusion/injection section did not survive", ErrUnsalvageable)
		}
		if id == secCheckpoints {
			rep.Unverified = true
		}
	}
	p.applyMeta(meta)
	rep.OriginalInstrs, rep.SalvagedInstrs = p.RegionInstrs, p.RegionInstrs
	if err := p.Validate(); err != nil {
		return nil, rep, fmt.Errorf("%w: salvaged content is inconsistent: %v", ErrUnsalvageable, err)
	}
	return p, rep, nil
}

// salvageJournal recovers an interrupted or damaged journal (v3): the
// valid frame prefix is truncated to the last divergence checkpoint its
// schedule chunks cover.
func salvageJournal(data []byte, rep *SalvageReport) (*Pinball, *SalvageReport, error) {
	parts, scanErr := readJournalFrames(data)
	rep.BytesKept = parts.end
	rep.SectionsKept = parts.frames
	rep.Committed = parts.committed
	if scanErr != nil {
		rep.DamageOffset, rep.DamageCause = parts.end, scanErr.Error()
	} else if !parts.committed {
		rep.DamageCause = "journal has no commit frame: the recording was interrupted"
	}

	p := parts.p
	switch {
	case !parts.hasMeta:
		return nil, rep, fmt.Errorf("%w: the provisional meta frame did not survive", ErrUnsalvageable)
	case p.State == nil:
		return nil, rep, fmt.Errorf("%w: the initial state frame did not survive", ErrUnsalvageable)
	}
	if parts.ringMode && !(parts.committed && scanErr == nil) {
		// A ring journal defers retained window content to commit time, so
		// an interrupted one has no schedule chunks to truncate — instead
		// every sealed window becomes a verifiable eviction.
		return salvageRing(parts, rep)
	}
	if len(p.Quanta) == 0 {
		return nil, rep, fmt.Errorf("%w: no schedule chunk survived", ErrUnsalvageable)
	}
	p.applyMeta(parts.meta)
	rep.OriginalInstrs = parts.meta.RegionInstrs // 0 unless the commit frame survived

	if parts.committed && scanErr == nil {
		// Clean committed journal (Decode would have accepted it; only
		// reachable if validation failed, which truncation cannot fix).
		if err := p.Validate(); err != nil {
			return nil, rep, fmt.Errorf("%w: committed journal is inconsistent: %v", ErrUnsalvageable, err)
		}
		rep.SalvagedInstrs = p.RegionInstrs
		return p, rep, nil
	}

	// The recording was cut mid-flight: anchor at the last checkpoint the
	// surviving schedule covers. Chunk ordering inside a flush (quanta
	// last) guarantees every event at or before that step survived too.
	scheduled := p.TotalQuantumInstrs()
	anchor := int64(-1)
	for _, cp := range p.Checkpoints {
		if cp.Step <= scheduled && cp.Step > anchor {
			anchor = cp.Step
		}
	}
	if anchor <= 0 {
		return nil, rep, fmt.Errorf("%w: no intact divergence checkpoint to anchor a truncation (recording covered %d scheduled instructions)",
			ErrUnsalvageable, scheduled)
	}
	p.truncateToStep(anchor)
	rep.Truncated = true
	rep.CheckpointStep = anchor
	rep.SalvagedInstrs = p.RegionInstrs
	if err := p.Validate(); err != nil {
		return nil, rep, fmt.Errorf("%w: salvaged content is inconsistent: %v", ErrUnsalvageable, err)
	}
	return p, rep, nil
}

// salvageRing reconstructs an interrupted ring-mode journal as a fully
// evicted pinball: initial state, recipe, every divergence checkpoint and
// every sealed window's span+hash survive on disk, while all window
// content (still in the recorder's in-memory ring when the recording
// died) is re-derived at replay time by gap bridging and verified against
// the retained hashes.
func salvageRing(parts *journalParts, rep *SalvageReport) (*Pinball, *SalvageReport, error) {
	p := parts.p
	if len(parts.windows) == 0 {
		return nil, rep, fmt.Errorf("%w: ring journal has no sealed window to anchor a recovery", ErrUnsalvageable)
	}
	p.applyMeta(parts.meta)
	rep.OriginalInstrs = parts.meta.RegionInstrs // 0 unless the commit frame survived

	var end int64
	evs := make([]Eviction, 0, len(parts.windows))
	for _, w := range parts.windows {
		evs = append(evs, Eviction{ID: w.ID, FromStep: w.FromStep, ToStep: w.ToStep, Hash: w.Hash})
		if w.ToStep > end {
			end = w.ToStep
		}
	}
	// Drop any content frames that did survive (a torn commit can leave a
	// partial content tail): without the eviction manifest there is no
	// proof of which windows they cover, and bridging re-derives them
	// anyway.
	p.Quanta, p.Syscalls, p.OrderEdges = nil, nil, nil
	p.Evictions = evs
	p.RegionInstrs, p.MainInstrs = end, 0

	cps := p.Checkpoints[:0:0]
	for _, cp := range p.Checkpoints {
		if cp.Step <= end {
			cps = append(cps, cp)
		}
	}
	p.Checkpoints = cps
	p.EndReason = "salvaged"
	p.Failure = nil

	rep.Truncated = true
	rep.CheckpointStep = end
	rep.SalvagedInstrs = end
	rep.Evicted = len(evs)
	if err := p.Validate(); err != nil {
		return nil, rep, fmt.Errorf("%w: salvaged ring content is inconsistent: %v", ErrUnsalvageable, err)
	}
	return p, rep, nil
}

// truncateToStep cuts the pinball's region to exactly step instructions:
// the schedule is trimmed (splitting the quantum the boundary lands in),
// region accounting recomputed, and checkpoints/injections past the
// boundary dropped. Trailing syscall results and order edges are
// unreachable by the shortened replay and kept harmlessly. The recorded
// failure sat at the region's (lost) end, so it is cleared.
func (p *Pinball) truncateToStep(step int64) {
	var total int64
	trimmed := p.Quanta[:0:0]
	for _, q := range p.Quanta {
		if total+q.Count >= step {
			if left := step - total; left > 0 {
				q.Count = left
				trimmed = append(trimmed, q)
			}
			total = step
			break
		}
		total += q.Count
		trimmed = append(trimmed, q)
	}
	p.Quanta = trimmed
	p.RegionInstrs = step
	var main int64
	for _, q := range p.Quanta {
		if q.Tid == 0 {
			main += q.Count
		}
	}
	p.MainInstrs = main

	cps := p.Checkpoints[:0:0]
	for _, cp := range p.Checkpoints {
		if cp.Step <= step {
			cps = append(cps, cp)
		}
	}
	p.Checkpoints = cps

	inj := p.Injections[:0:0]
	for _, in := range p.Injections {
		if in.AtStep <= step {
			inj = append(inj, in)
		}
	}
	p.Injections = inj

	p.EndReason = "salvaged"
	p.Failure = nil
}
