package pinball

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Crash-safe file replacement. A pinball can take hours to record, so the
// window where a crash, disk-full or SIGKILL leaves the destination torn
// must be zero: the payload is written to a temporary file in the target
// directory, fsynced, and renamed over the destination — the rename is
// atomic on POSIX filesystems, so readers only ever observe the old
// complete file or the new complete file. The directory is fsynced after
// the rename so the new name itself survives a power loss. On any error
// the temporary file is removed and an existing destination is never
// clobbered.

// writeFileAtomic writes the output of write to path with the
// temp+fsync+rename protocol.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".pinball-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// filesystems refuse to fsync directories; that only weakens durability
// of the name (the file contents are already synced), so it is reported
// but not treated as fatal by callers that cannot do better.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	return nil
}
