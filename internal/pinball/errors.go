package pinball

import "errors"

// Load failure classes. Load wraps every error it returns around exactly
// one of these sentinels (plus the file path), so tools can map failure
// modes to exit codes and messages with errors.Is.
var (
	// ErrNotPinball marks files that do not carry the pinball magic.
	ErrNotPinball = errors.New("not a pinball file")
	// ErrVersionSkew marks pinballs written by an unknown format version.
	ErrVersionSkew = errors.New("unsupported pinball format version")
	// ErrTruncated marks files that end before their framing says they
	// should (interrupted download, partial write).
	ErrTruncated = errors.New("truncated pinball")
	// ErrCorrupt marks files whose framing is intact but whose content is
	// damaged or inconsistent: a section checksum mismatch, undecodable
	// gob, or a payload that fails structural validation.
	ErrCorrupt = errors.New("corrupt pinball")
	// ErrUnsalvageable marks damaged files Salvage cannot repair: the
	// surviving prefix is missing data replay cannot do without (initial
	// state, schedule, syscall results, a slice pinball's injections), or
	// holds no intact divergence checkpoint to anchor a truncation.
	ErrUnsalvageable = errors.New("unsalvageable pinball")
)
