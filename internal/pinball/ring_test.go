package pinball_test

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pinball"
	"repro/internal/vm"
)

func ringRecipe() *pinball.Recipe {
	return &pinball.Recipe{SchedState: 7, MeanQ: 10}
}

// ringPinball is a gapped flight-recorder pinball: windows (0,30] and
// (30,60] were evicted, the final 30 instructions retained.
func ringPinball() *pinball.Pinball {
	pb := journalPinball()
	pb.Quanta = []vm.Quantum{{Tid: 0, Count: 30}}
	pb.RegionInstrs, pb.MainInstrs = 90, 30
	pb.RingBytes, pb.SampleKeep = 512, 0
	pb.Recipe = ringRecipe()
	pb.Evictions = []pinball.Eviction{
		{ID: 0, FromStep: 0, ToStep: 30, Bytes: 100, Hash: 0x1111},
		{ID: 1, FromStep: 30, ToStep: 60, Bytes: 100, Hash: 0x2222},
	}
	pb.Checkpoints = nil
	return pb
}

func TestGapAccounting(t *testing.T) {
	pb := ringPinball()
	if !pb.Gapped() {
		t.Fatal("pinball with evictions not Gapped")
	}
	if got := pb.GapInstrs(); got != 60 {
		t.Fatalf("GapInstrs = %d, want 60", got)
	}
	if err := pb.Validate(); err != nil {
		t.Fatalf("gapped pinball invalid: %v", err)
	}
	if samplePinball().Gapped() {
		t.Error("plain pinball reports Gapped")
	}
}

func TestValidateRejectsBrokenRings(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*pinball.Pinball)
		want string
	}{
		{"missing recipe", func(p *pinball.Pinball) { p.Recipe = nil }, "recipe"},
		{"unsorted spans", func(p *pinball.Pinball) {
			p.Evictions[0], p.Evictions[1] = p.Evictions[1], p.Evictions[0]
		}, "order"},
		{"overlapping spans", func(p *pinball.Pinball) { p.Evictions[1].FromStep = 20 }, "overlap"},
		{"span past region", func(p *pinball.Pinball) { p.Evictions[1].ToStep = 1000 }, "region"},
		{"empty span", func(p *pinball.Pinball) { p.Evictions[1].ToStep = 30 }, "span"},
		{"negative budget", func(p *pinball.Pinball) { p.RingBytes = -1 }, "ring"},
		{"gap total mismatch", func(p *pinball.Pinball) { p.Evictions[1].ToStep = 50 }, "instruction"},
		{"slice pinball with gaps", func(p *pinball.Pinball) { p.Kind = pinball.KindSlice }, "slice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pb := ringPinball()
			tc.mut(pb)
			err := pb.Validate()
			if err == nil {
				t.Fatal("Validate accepted the broken ring pinball")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRingFieldsSurviveSaveLoad(t *testing.T) {
	pb := ringPinball()
	path := filepath.Join(t.TempDir(), "ring.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := pinball.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != pb.ID() {
		t.Fatalf("round trip changed identity: %s vs %s", got.ID(), pb.ID())
	}
	if len(got.Evictions) != 2 || got.Evictions[1] != pb.Evictions[1] {
		t.Errorf("evictions lost: %v", got.Evictions)
	}
	if got.Recipe == nil || got.Recipe.SchedState != pb.Recipe.SchedState || got.Recipe.MeanQ != pb.Recipe.MeanQ {
		t.Errorf("recipe lost: %v", got.Recipe)
	}
	if got.RingBytes != 512 {
		t.Errorf("RingBytes = %d", got.RingBytes)
	}
}

func TestRingIdentityCoversRingFields(t *testing.T) {
	a, b := ringPinball(), ringPinball()
	b.Evictions[0].Hash ^= 1
	if a.ID() == b.ID() {
		t.Error("flipping an eviction hash did not change the pinball identity")
	}
	c := ringPinball()
	c.Recipe.SchedState ^= 1
	if a.ID() == c.ID() {
		t.Error("tampering the recipe did not change the pinball identity")
	}
}

// writeRingJournal hand-builds an interrupted ring journal: recipe frame,
// then three sealed windows — each a checkpoint chunk followed by the
// window-seal frame — with no content chunks and no commit (exactly what a
// crash mid ring recording leaves). It returns the file bytes and the byte
// offset of every frame in order (recipe first).
func writeRingJournal(t *testing.T) ([]byte, []int64) {
	t.Helper()
	base := journalPinball()
	path := filepath.Join(t.TempDir(), "ring.journal")
	provisional := &pinball.Pinball{
		ProgramName: base.ProgramName, Kind: base.Kind,
		State: base.State, CheckpointEvery: base.CheckpointEvery,
	}
	w, err := pinball.NewJournalWriter(path, provisional, false)
	if err != nil {
		t.Fatal(err)
	}
	off := func() int64 {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	var offs []int64
	offs = append(offs, off())
	if err := w.AppendRecipe(ringRecipe()); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		from, to := i*30, (i+1)*30
		offs = append(offs, off())
		cp := pinball.Checkpoint{Tid: 0, Seq: to, Idx: to, Step: to, Hash: 0xc0ffee + uint64(i), PC: 10}
		if err := w.AppendChunk(nil, nil, nil, []pinball.Checkpoint{cp}); err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off())
		if err := w.AppendWindowSeal(i, from, to, 0xabc0+uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	offs = append(offs, off())
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, offs
}

func TestSalvageInterruptedRingJournal(t *testing.T) {
	data, _ := writeRingJournal(t)
	got, rep, err := pinball.SalvageBytes(data)
	if err != nil {
		t.Fatalf("salvage: %v\n%s", err, rep.Summary())
	}
	if rep.Evicted != 3 || !rep.Truncated || rep.CheckpointStep != 90 {
		t.Errorf("report evicted=%d truncated=%v step=%d, want 3 windows anchored at 90",
			rep.Evicted, rep.Truncated, rep.CheckpointStep)
	}
	if got.RegionInstrs != 90 || got.GapInstrs() != 90 || len(got.Quanta) != 0 {
		t.Errorf("salvaged region %d, gaps %d, quanta %d: want a fully evicted 90-step region",
			got.RegionInstrs, got.GapInstrs(), len(got.Quanta))
	}
	if len(got.Checkpoints) != 3 {
		t.Errorf("checkpoints = %d, want all 3", len(got.Checkpoints))
	}
	if got.Recipe == nil || got.EndReason != "salvaged" || got.Failure != nil {
		t.Errorf("recipe=%v end=%q failure=%v", got.Recipe, got.EndReason, got.Failure)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("salvaged ring pinball invalid: %v", err)
	}
	if !strings.Contains(rep.Summary(), "gap bridging") {
		t.Errorf("summary does not explain the recovery:\n%s", rep.Summary())
	}
}

func TestSalvageRingTornFileMatrix(t *testing.T) {
	data, offs := writeRingJournal(t)
	// offs: [0]=recipe, then per window i: [1+2i]=checkpoint chunk,
	// [2+2i]=window seal; [7]=end of file.
	cases := []struct {
		name        string
		cut         int64
		wantWindows int
		wantCps     int
	}{
		// Tear inside the third window's seal frame: the first two sealed
		// windows (and their checkpoints) survive as verifiable evictions.
		{"inside an evicted span's seal", offs[6] + 5, 2, 2},
		// Tear inside the last retained checkpoint chunk: the chunk is lost,
		// and with it the third window's seal that follows it.
		{"at the last retained checkpoint", offs[5] + 5, 2, 2},
		// Tear right after the second seal: clean two-window prefix.
		{"between flush windows", offs[5], 2, 2},
		// Tear inside the very first checkpoint chunk: no window sealed yet.
		{"before any seal", offs[1] + 5, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, rep, err := pinball.SalvageBytes(data[:tc.cut])
			if tc.wantWindows == 0 {
				if !errors.Is(err, pinball.ErrUnsalvageable) {
					t.Fatalf("err = %v, want ErrUnsalvageable (no sealed window)", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("salvage: %v\n%s", err, rep.Summary())
			}
			if rep.Evicted != tc.wantWindows {
				t.Errorf("evicted = %d, want %d", rep.Evicted, tc.wantWindows)
			}
			wantRegion := int64(tc.wantWindows) * 30
			if got.RegionInstrs != wantRegion || got.GapInstrs() != wantRegion {
				t.Errorf("region %d gaps %d, want %d fully evicted", got.RegionInstrs, got.GapInstrs(), wantRegion)
			}
			if len(got.Checkpoints) != tc.wantCps {
				t.Errorf("checkpoints = %d, want %d", len(got.Checkpoints), tc.wantCps)
			}
			if err := got.Validate(); err != nil {
				t.Errorf("salvaged pinball invalid: %v", err)
			}
		})
	}
}

func TestSalvageRingCommittedTornManifest(t *testing.T) {
	// Commit a ring journal (content chunk, then the eviction-manifest
	// frame, then the commit frame), and tear inside the manifest. The
	// surviving content chunk has no manifest to prove what it covers, so
	// salvage falls back to the fully evicted form.
	base := journalPinball()
	final := ringPinball()
	path := filepath.Join(t.TempDir(), "ring.journal")
	provisional := &pinball.Pinball{
		ProgramName: base.ProgramName, Kind: base.Kind,
		State: base.State, CheckpointEvery: base.CheckpointEvery,
	}
	w, err := pinball.NewJournalWriter(path, provisional, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRecipe(final.Recipe); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := w.AppendWindowSeal(i, i*30, (i+1)*30, 0xabc0+uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	contentOff := st.Size()
	if err := w.AppendChunk(final.Quanta, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(final); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pinball.Load(path); err != nil {
		t.Fatalf("committed ring journal does not load: %v", err)
	}

	// Find the manifest frame (section id 13) after the content chunk and
	// tear a few bytes into it.
	manifestOff := int64(-1)
	for off := contentOff; off < int64(len(data)); {
		id := data[off]
		plen := int64(binary.BigEndian.Uint64(data[off+1 : off+9]))
		if id == 13 {
			manifestOff = off
			break
		}
		off += 13 + plen
	}
	if manifestOff < 0 {
		t.Fatal("no eviction-manifest frame in the committed ring journal")
	}
	got, rep, err := pinball.SalvageBytes(data[:manifestOff+7])
	if err != nil {
		t.Fatalf("salvage: %v\n%s", err, rep.Summary())
	}
	if rep.Evicted != 3 || got.GapInstrs() != 90 || len(got.Quanta) != 0 {
		t.Errorf("evicted=%d gaps=%d quanta=%d, want the fully evicted form (surviving content dropped)",
			rep.Evicted, got.GapInstrs(), len(got.Quanta))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("salvaged pinball invalid: %v", err)
	}
}
