// Package pinball defines the on-disk capture format of the PinPlay-style
// record/replay system: the initial architecture state of an execution
// region plus every source of nondeterminism needed to reproduce it — the
// thread schedule (run-length quanta), system-call results and the
// shared-memory access order. Slice pinballs additionally carry the code
// exclusion regions and the side-effect injections that let the replayer
// skip everything outside an execution slice (paper Section 4).
package pinball

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Kind distinguishes how a pinball was produced.
type Kind string

// Pinball kinds.
const (
	KindRegion Kind = "region" // captured region of a native execution
	KindWhole  Kind = "whole"  // region spanning the whole execution
	KindSlice  Kind = "slice"  // relogged execution slice
)

// Exclusion is one code-exclusion region for one thread, in the paper's
// [startPc:sinstance:tid, endPc:einstance:tid) notation, plus the
// mechanically exact per-thread dynamic instruction index range
// [FromIdx, ToIdx) it denotes.
type Exclusion struct {
	Tid           int
	StartPC       int64
	StartInstance int64 // which dynamic execution of StartPC opens the region
	EndPC         int64
	EndInstance   int64
	FromIdx       int64 // first excluded per-thread instruction index
	ToIdx         int64 // first index after the excluded range
}

func (e Exclusion) String() string {
	return fmt.Sprintf("[%d:%d:%d, %d:%d:%d)", e.StartPC, e.StartInstance, e.Tid, e.EndPC, e.EndInstance, e.Tid)
}

// MemWrite is one injected memory cell.
type MemWrite struct {
	Addr int64
	Val  int64
}

// Injection restores the side effects of one skipped exclusion region:
// when slice replay reaches AtStep executed-instructions, thread Tid's
// registers are replaced, its pc moved past the region, and the region's
// memory writes applied — PinPlay's "injecting modified memory cells and
// registers" (paper Figure 6b).
type Injection struct {
	AtStep int64 // ordinal among the slice pinball's executed instructions
	Tid    int
	NewPC  int64
	// NewCount restores the thread's per-thread dynamic instruction
	// index to its original-execution value, so instruction identities
	// (tid, idx) remain stable between region replay and slice replay.
	NewCount int64
	Regs     [isa.NumRegs]int64 // full register file at region exit
	Mem      []MemWrite
}

// Pinball is a captured execution (region). It contains everything needed
// to deterministically re-execute: where execution starts (State), which
// thread runs when (Quanta), what the environment answered (Syscalls),
// and — for analysis tools — the shared-memory access order (OrderEdges).
type Pinball struct {
	ProgramName string
	Kind        Kind

	State    *vm.MachineState
	Quanta   []vm.Quantum
	Syscalls []vm.SyscallRecord

	// OrderEdges is the shared-memory access order observed while
	// logging; the slicer's global-trace construction consumes it.
	OrderEdges []vm.OrderEdge

	// Region accounting.
	RegionInstrs int64 // instructions in the region, all threads
	MainInstrs   int64 // instructions executed by the main thread
	SkipMain     int64 // main-thread instructions skipped before logging

	// EndReason records why logging stopped: "length", "halt", "exit",
	// "failure", "deadlock" or "manual".
	EndReason string
	Failure   *vm.Failure

	// Slice pinballs only.
	Exclusions []Exclusion
	Injections []Injection
}

// TotalQuantumInstrs returns the number of instructions the pinball's
// schedule executes.
func (p *Pinball) TotalQuantumInstrs() int64 {
	var n int64
	for _, q := range p.Quanta {
		n += q.Count
	}
	return n
}

// File format framing: a magic string and a format version precede the
// gzip stream so stale or foreign files fail fast with a clear error
// instead of a gob panic deep inside decoding.
const (
	fileMagic     = "DRPB"
	formatVersion = byte(1)
)

// Save writes the pinball to path, gob-encoded and gzip-compressed (the
// paper uses bzip2 pinball compression; gzip is the stdlib equivalent).
func (p *Pinball) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pinball: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append([]byte(fileMagic), formatVersion)); err != nil {
		return fmt.Errorf("pinball: %w", err)
	}
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(p); err != nil {
		return fmt.Errorf("pinball: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("pinball: compress: %w", err)
	}
	return f.Close()
}

// Load reads a pinball from path.
func Load(path string) (*Pinball, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pinball: %w", err)
	}
	defer f.Close()
	header := make([]byte, len(fileMagic)+1)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("pinball: %s is not a pinball file", path)
	}
	if string(header[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("pinball: %s is not a pinball file (bad magic)", path)
	}
	if v := header[len(fileMagic)]; v != formatVersion {
		return nil, fmt.Errorf("pinball: %s has format version %d; this build reads %d", path, v, formatVersion)
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("pinball: decompress: %w", err)
	}
	defer zr.Close()
	var p Pinball
	if err := gob.NewDecoder(zr).Decode(&p); err != nil {
		return nil, fmt.Errorf("pinball: decode: %w", err)
	}
	return &p, nil
}

// EncodedSize returns the compressed size of the pinball in bytes by
// encoding it to a counting sink; the evaluation tables report this as
// the pinball's space overhead.
func (p *Pinball) EncodedSize() (int64, error) {
	var cw countingWriter
	zw := gzip.NewWriter(&cw)
	if err := gob.NewEncoder(zw).Encode(p); err != nil {
		return 0, err
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(b []byte) (int, error) {
	c.n += int64(len(b))
	return len(b), nil
}
