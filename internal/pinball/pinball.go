// Package pinball defines the on-disk capture format of the PinPlay-style
// record/replay system: the initial architecture state of an execution
// region plus every source of nondeterminism needed to reproduce it — the
// thread schedule (run-length quanta), system-call results and the
// shared-memory access order. Slice pinballs additionally carry the code
// exclusion regions and the side-effect injections that let the replayer
// skip everything outside an execution slice (paper Section 4).
package pinball

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Kind distinguishes how a pinball was produced.
type Kind string

// Pinball kinds.
const (
	KindRegion Kind = "region" // captured region of a native execution
	KindWhole  Kind = "whole"  // region spanning the whole execution
	KindSlice  Kind = "slice"  // relogged execution slice
)

// Exclusion is one code-exclusion region for one thread, in the paper's
// [startPc:sinstance:tid, endPc:einstance:tid) notation, plus the
// mechanically exact per-thread dynamic instruction index range
// [FromIdx, ToIdx) it denotes.
type Exclusion struct {
	Tid           int
	StartPC       int64
	StartInstance int64 // which dynamic execution of StartPC opens the region
	EndPC         int64
	EndInstance   int64
	FromIdx       int64 // first excluded per-thread instruction index
	ToIdx         int64 // first index after the excluded range
}

func (e Exclusion) String() string {
	return fmt.Sprintf("[%d:%d:%d, %d:%d:%d)", e.StartPC, e.StartInstance, e.Tid, e.EndPC, e.EndInstance, e.Tid)
}

// MemWrite is one injected memory cell.
type MemWrite struct {
	Addr int64
	Val  int64
}

// Injection restores the side effects of one skipped exclusion region:
// when slice replay reaches AtStep executed-instructions, thread Tid's
// registers are replaced, its pc moved past the region, and the region's
// memory writes applied — PinPlay's "injecting modified memory cells and
// registers" (paper Figure 6b).
type Injection struct {
	AtStep int64 // ordinal among the slice pinball's executed instructions
	Tid    int
	NewPC  int64
	// NewCount restores the thread's per-thread dynamic instruction
	// index to its original-execution value, so instruction identities
	// (tid, idx) remain stable between region replay and slice replay.
	NewCount int64
	Regs     [isa.NumRegs]int64 // full register file at region exit
	Mem      []MemWrite
}

// Pinball is a captured execution (region). It contains everything needed
// to deterministically re-execute: where execution starts (State), which
// thread runs when (Quanta), what the environment answered (Syscalls),
// and — for analysis tools — the shared-memory access order (OrderEdges).
type Pinball struct {
	ProgramName string
	Kind        Kind

	State    *vm.MachineState
	Quanta   []vm.Quantum
	Syscalls []vm.SyscallRecord

	// OrderEdges is the shared-memory access order observed while
	// logging; the slicer's global-trace construction consumes it.
	OrderEdges []vm.OrderEdge

	// Region accounting.
	RegionInstrs int64 // instructions in the region, all threads
	MainInstrs   int64 // instructions executed by the main thread
	SkipMain     int64 // main-thread instructions skipped before logging

	// EndReason records why logging stopped: "length", "halt", "exit",
	// "failure", "deadlock" or "manual".
	EndReason string
	Failure   *vm.Failure

	// Slice pinballs only.
	Exclusions []Exclusion
	Injections []Injection

	// Divergence checkpoints: per-thread rolling-hash snapshots taken
	// every CheckpointEvery instructions while logging, validated during
	// replay so a divergent replay fails fast inside the first bad
	// window instead of at the terminal instruction-count mismatch.
	// Empty for legacy pinballs and when checkpointing was disabled.
	CheckpointEvery int64
	Checkpoints     []Checkpoint

	// Flight-recorder (ring) fields. RingBytes is the configured retained
	// byte budget (0 = ring mode off); SampleKeep the keep-1-in-N window
	// sampling policy (0 or 1 = keep every window). Evictions lists the
	// windows the recorder dropped, ascending by step span; Recipe carries
	// the region-entry nondeterminism state that lets a replayer re-derive
	// them. See ring.go.
	RingBytes  int64
	SampleKeep int64
	Evictions  []Eviction
	Recipe     *Recipe
}

// DefaultCheckpointEvery is the default per-thread checkpoint cadence in
// instructions.
const DefaultCheckpointEvery = 1024

// Checkpoint is one divergence checkpoint: after thread Tid's Seq'th
// instruction of the region, the rolling hash of its instruction stream
// (pc, effective address, value, control target per instruction) was
// Hash, and the thread sat at PC with register file Regs. Replay
// recomputes the same hash and compares when the thread reaches Seq.
type Checkpoint struct {
	Tid  int
	Seq  int64 // region instructions executed by Tid when taken (k*CheckpointEvery)
	Idx  int64 // per-thread dynamic index of the last hashed instruction
	Step int64 // global executed-instruction ordinal within the region
	Hash uint64
	PC   int64
	Regs [isa.NumRegs]int64
}

// TotalQuantumInstrs returns the number of instructions the pinball's
// schedule executes.
func (p *Pinball) TotalQuantumInstrs() int64 {
	var n int64
	for _, q := range p.Quanta {
		n += q.Count
	}
	return n
}

// Validate checks the pinball's structural invariants — the properties
// every pinball produced by the logger/relogger holds and the replayer
// relies on. Load runs it so that a tampered-but-well-framed file is
// rejected before it can send a replay spinning. All failures wrap
// ErrCorrupt.
func (p *Pinball) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	switch p.Kind {
	case KindRegion, KindWhole, KindSlice:
	default:
		return bad("unknown pinball kind %q", p.Kind)
	}
	if p.State == nil {
		return bad("no machine state")
	}
	if len(p.State.Threads) == 0 {
		return bad("machine state has no threads")
	}
	for i, ts := range p.State.Threads {
		if ts.ID != i {
			return bad("thread state %d has id %d", i, ts.ID)
		}
	}
	if p.RegionInstrs < 0 || p.MainInstrs < 0 || p.SkipMain < 0 {
		return bad("negative region accounting")
	}
	if p.MainInstrs > p.RegionInstrs {
		return bad("main-thread instructions %d exceed region total %d", p.MainInstrs, p.RegionInstrs)
	}
	var total int64
	for i, q := range p.Quanta {
		if q.Tid < 0 || q.Tid >= vm.MaxThreads {
			return bad("quantum %d has thread id %d", i, q.Tid)
		}
		if q.Count <= 0 {
			return bad("quantum %d has count %d", i, q.Count)
		}
		total += q.Count
	}
	if err := p.validateRing(bad); err != nil {
		return err
	}
	if total+p.GapInstrs() != p.RegionInstrs {
		return bad("schedule covers %d instructions plus %d evicted but region claims %d", total, p.GapInstrs(), p.RegionInstrs)
	}
	for i, s := range p.Syscalls {
		if s.Tid < 0 || s.Tid >= vm.MaxThreads {
			return bad("syscall %d has thread id %d", i, s.Tid)
		}
	}
	for i, e := range p.Exclusions {
		if e.Tid < 0 || e.Tid >= vm.MaxThreads {
			return bad("exclusion %d has thread id %d", i, e.Tid)
		}
		if e.FromIdx >= e.ToIdx {
			return bad("exclusion %d has empty index range [%d, %d)", i, e.FromIdx, e.ToIdx)
		}
	}
	var lastStep int64
	for i, in := range p.Injections {
		if in.Tid < 0 || in.Tid >= vm.MaxThreads {
			return bad("injection %d has thread id %d", i, in.Tid)
		}
		if in.AtStep < lastStep || in.AtStep > total {
			return bad("injection %d at step %d out of order or past region end %d", i, in.AtStep, total)
		}
		lastStep = in.AtStep
	}
	if p.CheckpointEvery < 0 {
		return bad("negative checkpoint cadence %d", p.CheckpointEvery)
	}
	if len(p.Checkpoints) > 0 && p.CheckpointEvery == 0 {
		return bad("checkpoints present without a cadence")
	}
	lastSeq := map[int]int64{}
	for i, cp := range p.Checkpoints {
		if cp.Tid < 0 || cp.Tid >= vm.MaxThreads {
			return bad("checkpoint %d has thread id %d", i, cp.Tid)
		}
		if cp.Seq <= lastSeq[cp.Tid] {
			return bad("checkpoint %d for thread %d out of order (seq %d)", i, cp.Tid, cp.Seq)
		}
		if cp.Step < 1 || cp.Step > total+p.GapInstrs() {
			return bad("checkpoint %d at step %d outside region of %d", i, cp.Step, total+p.GapInstrs())
		}
		lastSeq[cp.Tid] = cp.Seq
	}
	if f := p.Failure; f != nil {
		if f.Tid < 0 || f.Tid >= vm.MaxThreads {
			return bad("failure has thread id %d", f.Tid)
		}
		if f.Reason == "" {
			return bad("failure without a reason")
		}
	}
	return nil
}

// ID returns a stable content digest of the pinball, used as the cache
// key for process-lifetime slicing artefacts (dependence shards, CFGs,
// forward-pass metadata): two loads of the same pinball file share one
// cache entry, and a different recording — even of the same program —
// gets a different key. The digest folds the structural identity of the
// capture (program, kind, region accounting, schedule, syscalls, order
// edges) plus every divergence-checkpoint hash, which pins down the
// recorded instruction stream itself.
func (p *Pinball) ID() string {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	fold := func(v int64) {
		h = (h ^ uint64(v)) * prime
	}
	for _, b := range []byte(p.ProgramName) {
		fold(int64(b))
	}
	for _, b := range []byte(p.Kind) {
		fold(int64(b))
	}
	fold(p.RegionInstrs)
	fold(p.MainInstrs)
	fold(p.SkipMain)
	fold(p.CheckpointEvery)
	for _, q := range p.Quanta {
		fold(int64(q.Tid))
		fold(q.Count)
	}
	for _, s := range p.Syscalls {
		fold(int64(s.Tid))
		fold(s.Num)
		fold(s.Arg)
		fold(s.Ret)
	}
	for _, e := range p.OrderEdges {
		fold(int64(e.FromTid))
		fold(e.FromIdx)
		fold(int64(e.ToTid))
		fold(e.ToIdx)
	}
	for _, cp := range p.Checkpoints {
		fold(int64(cp.Tid))
		fold(cp.Seq)
		fold(int64(cp.Hash))
		fold(cp.PC)
	}
	for _, ex := range p.Exclusions {
		fold(int64(ex.Tid))
		fold(ex.FromIdx)
		fold(ex.ToIdx)
	}
	fold(p.RingBytes)
	fold(p.SampleKeep)
	for _, e := range p.Evictions {
		fold(e.ID)
		fold(e.FromStep)
		fold(e.ToStep)
		fold(int64(e.Hash))
	}
	if r := p.Recipe; r != nil {
		fold(int64(r.SchedState))
		fold(r.MeanQ)
		fold(int64(r.CurTid))
		fold(r.CurLeft)
		fold(int64(r.EnvRand))
		fold(r.EnvClock)
		fold(r.EnvPos)
		for _, v := range r.EnvInput {
			fold(v)
		}
	}
	return fmt.Sprintf("%016x", h)
}
