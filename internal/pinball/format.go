package pinball

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/vm"
)

// On-disk framing. Every pinball starts with the magic and a format
// version byte:
//
//	version 1 ("legacy v0"): one gzip stream holding the gob of the whole
//	Pinball struct — no checksums, no bounds. Still readable.
//	version 2 ("format v1"): kind byte, section count, then framed
//	sections: id (1B), payload length (8B big-endian), CRC32-IEEE of the
//	compressed payload (4B), payload (gzip-compressed gob). Truncation,
//	bit flips and dropped sections are all detected before decoding.
const (
	fileMagic     = "DRPB"
	versionLegacy = byte(1) // pre-framing format, kept readable
	versionFramed = byte(2) // current format ("pinball format v1")
)

// Section ids of the framed format. Meta, state and schedule are
// mandatory; the rest are written only when non-empty. Unknown ids are
// checksum-verified and skipped, leaving room for additive extensions.
const (
	secMeta        = byte(1)
	secState       = byte(2)
	secSchedule    = byte(3)
	secSyscalls    = byte(4)
	secOrder       = byte(5)
	secSlice       = byte(6)
	secCheckpoints = byte(7)
)

// sectionHeaderLen is id + length + crc.
const sectionHeaderLen = 1 + 8 + 4

// maxSectionLen bounds a single section payload (1 GiB compressed) so a
// tampered length field cannot drive a huge allocation.
const maxSectionLen = int64(1) << 30

// metaV1 is the meta section payload: everything about the pinball that
// is not bulk data.
type metaV1 struct {
	ProgramName     string
	Kind            Kind
	RegionInstrs    int64
	MainInstrs      int64
	SkipMain        int64
	EndReason       string
	Failure         *vm.Failure
	CheckpointEvery int64
}

// sliceV1 is the slice section payload.
type sliceV1 struct {
	Exclusions []Exclusion
	Injections []Injection
}

// kindByte maps a pinball kind to its header triage byte.
func kindByte(k Kind) byte {
	switch k {
	case KindWhole:
		return 'W'
	case KindSlice:
		return 'S'
	default:
		return 'R'
	}
}

// Save writes the pinball to path in the framed v1 format (the paper uses
// bzip2 pinball compression; gzip is the stdlib equivalent).
func (p *Pinball) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pinball: %w", err)
	}
	defer f.Close()
	if err := p.encode(f); err != nil {
		return fmt.Errorf("pinball: save %s: %w", path, err)
	}
	return f.Close()
}

// EncodeBytes returns the framed on-disk representation of the pinball,
// exactly as Save would write it. The fault-injection harness corrupts
// these bytes in memory instead of going through temporary files.
func (p *Pinball) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encode writes the framed representation to w.
func (p *Pinball) encode(w io.Writer) error {
	type section struct {
		id      byte
		payload []byte
	}
	pack := func(id byte, v any) (section, error) {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if err := gob.NewEncoder(zw).Encode(v); err != nil {
			return section{}, fmt.Errorf("encode section %d: %w", id, err)
		}
		if err := zw.Close(); err != nil {
			return section{}, fmt.Errorf("compress section %d: %w", id, err)
		}
		return section{id, buf.Bytes()}, nil
	}

	sections := []struct {
		id    byte
		v     any
		empty bool
	}{
		{secMeta, metaV1{
			ProgramName: p.ProgramName, Kind: p.Kind,
			RegionInstrs: p.RegionInstrs, MainInstrs: p.MainInstrs, SkipMain: p.SkipMain,
			EndReason: p.EndReason, Failure: p.Failure, CheckpointEvery: p.CheckpointEvery,
		}, false},
		{secState, p.State, false},
		{secSchedule, p.Quanta, false},
		{secSyscalls, p.Syscalls, len(p.Syscalls) == 0},
		{secOrder, p.OrderEdges, len(p.OrderEdges) == 0},
		{secSlice, sliceV1{p.Exclusions, p.Injections}, len(p.Exclusions) == 0 && len(p.Injections) == 0},
		{secCheckpoints, p.Checkpoints, len(p.Checkpoints) == 0},
	}
	var packed []section
	for _, s := range sections {
		if s.empty {
			continue
		}
		ps, err := pack(s.id, s.v)
		if err != nil {
			return err
		}
		packed = append(packed, ps)
	}

	header := append([]byte(fileMagic), versionFramed, kindByte(p.Kind), byte(len(packed)))
	if _, err := w.Write(header); err != nil {
		return err
	}
	var frame [sectionHeaderLen]byte
	for _, s := range packed {
		frame[0] = s.id
		binary.BigEndian.PutUint64(frame[1:9], uint64(len(s.payload)))
		binary.BigEndian.PutUint32(frame[9:13], crc32.ChecksumIEEE(s.payload))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
	}
	return nil
}

// Load reads, checksum-verifies and structurally validates a pinball.
// Every error is wrapped with the file path and one of the typed
// sentinels (ErrNotPinball, ErrVersionSkew, ErrTruncated, ErrCorrupt).
func Load(path string) (*Pinball, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pinball: %w", err)
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("pinball: load %s: %w", path, err)
	}
	return p, nil
}

// Decode parses pinball file bytes (both format versions), verifying
// checksums and structural invariants.
func Decode(data []byte) (*Pinball, error) {
	if len(data) < len(fileMagic)+1 {
		return nil, fmt.Errorf("%w: %d-byte file", ErrNotPinball, len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrNotPinball)
	}
	var p *Pinball
	var err error
	switch v := data[len(fileMagic)]; v {
	case versionLegacy:
		p, err = decodeLegacy(data[len(fileMagic)+1:])
	case versionFramed:
		p, err = decodeFramed(data[len(fileMagic)+1:])
	default:
		return nil, fmt.Errorf("%w: file has version %d, this build reads up to %d", ErrVersionSkew, v, versionFramed)
	}
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// decodeLegacy reads the pre-framing format: gzip over the gob of the
// whole struct.
func decodeLegacy(body []byte) (*Pinball, error) {
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: legacy decompress: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	var p Pinball
	if err := gobDecode(zr, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// decodeFramed reads the v1 section framing.
func decodeFramed(body []byte) (*Pinball, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: header ends after version byte", ErrTruncated)
	}
	kindB, count := body[0], int(body[1])
	body = body[2:]

	p := &Pinball{}
	meta := metaV1{}
	seen := map[byte]bool{}
	for i := 0; i < count; i++ {
		if len(body) < sectionHeaderLen {
			return nil, fmt.Errorf("%w: file ends inside the header of section %d of %d", ErrTruncated, i+1, count)
		}
		id := body[0]
		n := int64(binary.BigEndian.Uint64(body[1:9]))
		sum := binary.BigEndian.Uint32(body[9:13])
		body = body[sectionHeaderLen:]
		if n < 0 || n > maxSectionLen {
			return nil, fmt.Errorf("%w: section %d claims %d bytes", ErrCorrupt, id, n)
		}
		if int64(len(body)) < n {
			return nil, fmt.Errorf("%w: section %d claims %d bytes, %d remain", ErrTruncated, id, n, len(body))
		}
		payload := body[:n]
		body = body[n:]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, fmt.Errorf("%w: section %d checksum mismatch (want %08x, got %08x)", ErrCorrupt, id, sum, got)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		seen[id] = true

		var dst any
		var sl sliceV1
		switch id {
		case secMeta:
			dst = &meta
		case secState:
			dst = &p.State
		case secSchedule:
			dst = &p.Quanta
		case secSyscalls:
			dst = &p.Syscalls
		case secOrder:
			dst = &p.OrderEdges
		case secSlice:
			dst = &sl
		case secCheckpoints:
			dst = &p.Checkpoints
		default:
			continue // checksum-verified unknown section: skip
		}
		zr, err := gzip.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("%w: section %d decompress: %v", ErrCorrupt, id, err)
		}
		if err := gobDecode(zr, dst); err != nil {
			zr.Close()
			return nil, fmt.Errorf("section %d: %w", id, err)
		}
		zr.Close()
		if id == secSlice {
			p.Exclusions, p.Injections = sl.Exclusions, sl.Injections
		}
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last section", ErrCorrupt, len(body))
	}
	for _, req := range []byte{secMeta, secState, secSchedule} {
		if !seen[req] {
			return nil, fmt.Errorf("%w: mandatory section %d missing", ErrCorrupt, req)
		}
	}
	p.ProgramName, p.Kind = meta.ProgramName, meta.Kind
	p.RegionInstrs, p.MainInstrs, p.SkipMain = meta.RegionInstrs, meta.MainInstrs, meta.SkipMain
	p.EndReason, p.Failure, p.CheckpointEvery = meta.EndReason, meta.Failure, meta.CheckpointEvery
	if kindByte(p.Kind) != kindB {
		return nil, fmt.Errorf("%w: header kind %q does not match meta kind %q", ErrCorrupt, kindB, p.Kind)
	}
	return p, nil
}

// gobDecode decodes into v, converting both gob errors and gob panics
// (which malformed streams can trigger deep inside the decoder) into
// typed errors.
func gobDecode(r io.Reader, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: decode panic: %v", ErrCorrupt, p)
		}
	}()
	if err := gob.NewDecoder(r).Decode(v); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: stream ends mid-value", ErrTruncated)
		}
		return fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	return nil
}

// SectionInfo locates one framed section inside a v1 pinball file; Off is
// the frame start and Len the full frame length (header + payload). The
// fault-injection harness uses it to drop or damage precise sections.
type SectionInfo struct {
	ID  byte
	Off int64
	Len int64
}

// SectionOffsets walks the framing of v1 pinball file bytes without
// decoding payloads. It fails with the same typed errors as Decode.
func SectionOffsets(data []byte) ([]SectionInfo, error) {
	headerLen := len(fileMagic) + 3
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d-byte file", ErrTruncated, len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrNotPinball)
	}
	if v := data[len(fileMagic)]; v != versionFramed {
		return nil, fmt.Errorf("%w: version %d has no section framing", ErrVersionSkew, v)
	}
	count := int(data[headerLen-1])
	off := int64(headerLen)
	var out []SectionInfo
	for i := 0; i < count; i++ {
		if int64(len(data)) < off+sectionHeaderLen {
			return nil, fmt.Errorf("%w: file ends inside section header %d", ErrTruncated, i+1)
		}
		n := int64(binary.BigEndian.Uint64(data[off+1 : off+9]))
		if n < 0 || n > maxSectionLen || int64(len(data)) < off+sectionHeaderLen+n {
			return nil, fmt.Errorf("%w: section %d overruns the file", ErrTruncated, i+1)
		}
		out = append(out, SectionInfo{ID: data[off], Off: off, Len: sectionHeaderLen + n})
		off += sectionHeaderLen + n
	}
	return out, nil
}

// SaveLegacy writes the pinball in the pre-framing v0 format (magic,
// version byte 1, one gzip+gob stream) — kept only so compatibility
// tests and the fault-injection harness can produce legacy files.
func (p *Pinball) SaveLegacy(path string) error {
	cp := *p
	cp.CheckpointEvery, cp.Checkpoints = 0, nil // fields v0 never had
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pinball: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append([]byte(fileMagic), versionLegacy)); err != nil {
		return fmt.Errorf("pinball: %w", err)
	}
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(&cp); err != nil {
		return fmt.Errorf("pinball: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("pinball: compress: %w", err)
	}
	return f.Close()
}

// EncodedSize returns the on-disk size of the pinball in bytes by
// encoding it to a counting sink; the evaluation tables report this as
// the pinball's space overhead.
func (p *Pinball) EncodedSize() (int64, error) {
	var cw countingWriter
	if err := p.encode(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(b []byte) (int, error) {
	c.n += int64(len(b))
	return len(b), nil
}
