package pinball

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/vm"
)

// gzWriters recycles gzip writers across section encodes. A fresh
// deflate state is several hundred KB, and the journal seals dozens of
// frames per recording.
var gzWriters = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// packPayload gob-encodes v through a pooled gzip writer and returns
// the compressed section payload.
func packPayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzWriters.Get().(*gzip.Writer)
	zw.Reset(&buf)
	err := gob.NewEncoder(zw).Encode(v)
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	gzWriters.Put(zw)
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// On-disk framing. Every pinball starts with the magic and a format
// version byte:
//
//	version 1 ("legacy v0"): one gzip stream holding the gob of the whole
//	Pinball struct — no checksums, no bounds. Still readable.
//	version 2 ("format v1"): kind byte, section count, then framed
//	sections: id (1B), payload length (8B big-endian), CRC32-IEEE of the
//	compressed payload (4B), payload (gzip-compressed gob). Truncation,
//	bit flips and dropped sections are all detected before decoding.
//	version 3 ("journal"): kind byte, then framed sections appended
//	incrementally while recording, terminated by a commit frame — see
//	journal.go. A journal without its commit frame is an interrupted
//	recording: Load rejects it as truncated, Salvage recovers its
//	longest checkpoint-consistent prefix.
const (
	fileMagic      = "DRPB"
	versionLegacy  = byte(1) // pre-framing format, kept readable
	versionFramed  = byte(2) // atomic-save format ("pinball format v1")
	versionJournal = byte(3) // incremental journal written during recording
)

// Section ids of the framed format. Meta, state and schedule are
// mandatory; the rest are written only when non-empty. Unknown ids are
// checksum-verified and skipped, leaving room for additive extensions.
const (
	secMeta        = byte(1)
	secState       = byte(2)
	secSchedule    = byte(3)
	secSyscalls    = byte(4)
	secOrder       = byte(5)
	secSlice       = byte(6)
	secCheckpoints = byte(7)
	// secRing carries the flight-recorder payload (ringV1): budget,
	// sampling policy, eviction manifest and bridge recipe. Written by v2
	// saves of ring pinballs and as the commit-time manifest frame of v3
	// ring journals. Ids 8-12 are the v3 chunk frames (journal.go).
	secRing = byte(13)
)

// sectionHeaderLen is id + length + crc.
const sectionHeaderLen = 1 + 8 + 4

// maxSectionLen bounds a single section payload (1 GiB compressed) so a
// tampered length field cannot drive a huge allocation.
const maxSectionLen = int64(1) << 30

// metaV1 is the meta section payload: everything about the pinball that
// is not bulk data.
type metaV1 struct {
	ProgramName     string
	Kind            Kind
	RegionInstrs    int64
	MainInstrs      int64
	SkipMain        int64
	EndReason       string
	Failure         *vm.Failure
	CheckpointEvery int64
	// Sections is the manifest of section ids the writer emitted. Salvage
	// uses it to tell which sections a torn file actually lost — without
	// it, a tear at a frame boundary is indistinguishable from a shorter
	// recording. Empty in files written before the manifest existed (gob
	// decodes the missing field as nil).
	Sections []byte
}

// sliceV1 is the slice section payload.
type sliceV1 struct {
	Exclusions []Exclusion
	Injections []Injection
}

// meta builds the meta section payload with the given section manifest.
func (p *Pinball) meta(manifest []byte) metaV1 {
	return metaV1{
		ProgramName: p.ProgramName, Kind: p.Kind,
		RegionInstrs: p.RegionInstrs, MainInstrs: p.MainInstrs, SkipMain: p.SkipMain,
		EndReason: p.EndReason, Failure: p.Failure, CheckpointEvery: p.CheckpointEvery,
		Sections: manifest,
	}
}

// applyMeta copies the meta payload's fields onto the pinball.
func (p *Pinball) applyMeta(meta metaV1) {
	p.ProgramName, p.Kind = meta.ProgramName, meta.Kind
	p.RegionInstrs, p.MainInstrs, p.SkipMain = meta.RegionInstrs, meta.MainInstrs, meta.SkipMain
	p.EndReason, p.Failure, p.CheckpointEvery = meta.EndReason, meta.Failure, meta.CheckpointEvery
}

// kindByte maps a pinball kind to its header triage byte.
func kindByte(k Kind) byte {
	switch k {
	case KindWhole:
		return 'W'
	case KindSlice:
		return 'S'
	default:
		return 'R'
	}
}

// Save writes the pinball to path in the framed v1 format (the paper uses
// bzip2 pinball compression; gzip is the stdlib equivalent). The write is
// crash-safe: the file is staged in a temporary sibling, fsynced and
// atomically renamed into place, so a crash or disk-full mid-save leaves
// either the previous complete file or no file — never a torn pinball,
// and never a stray temp file.
func (p *Pinball) Save(path string) error {
	if err := writeFileAtomic(path, p.encode); err != nil {
		return fmt.Errorf("pinball: save %s: %w", path, err)
	}
	return nil
}

// EncodeBytes returns the framed on-disk representation of the pinball,
// exactly as Save would write it. The fault-injection harness corrupts
// these bytes in memory instead of going through temporary files.
func (p *Pinball) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encode writes the framed representation to w.
func (p *Pinball) encode(w io.Writer) error {
	type section struct {
		id      byte
		payload []byte
	}
	pack := func(id byte, v any) (section, error) {
		payload, err := packPayload(v)
		if err != nil {
			return section{}, fmt.Errorf("encode section %d: %w", id, err)
		}
		return section{id, payload}, nil
	}

	sections := []struct {
		id    byte
		v     any
		empty bool
	}{
		{secMeta, nil, false}, // meta payload built after the manifest is known
		{secState, p.State, false},
		{secSchedule, p.Quanta, false},
		{secSyscalls, p.Syscalls, len(p.Syscalls) == 0},
		{secOrder, p.OrderEdges, len(p.OrderEdges) == 0},
		{secSlice, sliceV1{p.Exclusions, p.Injections}, len(p.Exclusions) == 0 && len(p.Injections) == 0},
		{secCheckpoints, p.Checkpoints, len(p.Checkpoints) == 0},
		{secRing, ringV1{p.RingBytes, p.SampleKeep, p.Evictions, p.Recipe},
			p.RingBytes == 0 && p.SampleKeep == 0 && len(p.Evictions) == 0 && p.Recipe == nil},
	}
	var manifest []byte
	for _, s := range sections {
		if !s.empty {
			manifest = append(manifest, s.id)
		}
	}
	sections[0].v = p.meta(manifest)
	var packed []section
	for _, s := range sections {
		if s.empty {
			continue
		}
		ps, err := pack(s.id, s.v)
		if err != nil {
			return err
		}
		packed = append(packed, ps)
	}

	header := append([]byte(fileMagic), versionFramed, kindByte(p.Kind), byte(len(packed)))
	if _, err := w.Write(header); err != nil {
		return err
	}
	var frame [sectionHeaderLen]byte
	for _, s := range packed {
		frame[0] = s.id
		binary.BigEndian.PutUint64(frame[1:9], uint64(len(s.payload)))
		binary.BigEndian.PutUint32(frame[9:13], crc32.ChecksumIEEE(s.payload))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
	}
	return nil
}

// Load reads, checksum-verifies and structurally validates a pinball.
// Every error is wrapped with the file path and one of the typed
// sentinels (ErrNotPinball, ErrVersionSkew, ErrTruncated, ErrCorrupt).
func Load(path string) (*Pinball, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pinball: %w", err)
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("pinball: load %s: %w", path, err)
	}
	return p, nil
}

// Decode parses pinball file bytes (both format versions), verifying
// checksums and structural invariants.
func Decode(data []byte) (*Pinball, error) {
	if len(data) < len(fileMagic)+1 {
		return nil, fmt.Errorf("%w: %d-byte file", ErrNotPinball, len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrNotPinball)
	}
	var p *Pinball
	var err error
	switch v := data[len(fileMagic)]; v {
	case versionLegacy:
		p, err = decodeLegacy(data[len(fileMagic)+1:])
	case versionFramed:
		p, err = decodeFramed(data)
	case versionJournal:
		p, err = decodeJournal(data)
	default:
		return nil, fmt.Errorf("%w: file has version %d, this build reads up to %d", ErrVersionSkew, v, versionJournal)
	}
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// decodeLegacy reads the pre-framing format: gzip over the gob of the
// whole struct.
func decodeLegacy(body []byte) (*Pinball, error) {
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: legacy decompress: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	var p Pinball
	if err := gobDecode(zr, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// frame is one parsed section frame: its id, 1-based position in the
// file, absolute byte offset and checksum-verified payload.
type frame struct {
	id      byte
	index   int
	off     int64
	payload []byte
}

// readFrame parses and checksum-verifies the frame at absolute byte
// offset off of the file bytes. Every error names the failing section's
// index and byte offset, so corruption reports (and drrepair diagnostics)
// point at the damage instead of just declaring it.
func readFrame(data []byte, off int64, index int) (frame, int64, error) {
	if int64(len(data)) < off+sectionHeaderLen {
		return frame{}, 0, fmt.Errorf("%w: file ends inside the header of section #%d at byte offset %d",
			ErrTruncated, index, off)
	}
	id := data[off]
	n := int64(binary.BigEndian.Uint64(data[off+1 : off+9]))
	sum := binary.BigEndian.Uint32(data[off+9 : off+13])
	if n < 0 || n > maxSectionLen {
		return frame{}, 0, fmt.Errorf("%w: section id %d (#%d) at byte offset %d claims %d bytes",
			ErrCorrupt, id, index, off, n)
	}
	if int64(len(data)) < off+sectionHeaderLen+n {
		return frame{}, 0, fmt.Errorf("%w: section id %d (#%d) at byte offset %d claims %d payload bytes, %d remain",
			ErrTruncated, id, index, off, n, int64(len(data))-off-sectionHeaderLen)
	}
	payload := data[off+sectionHeaderLen : off+sectionHeaderLen+n]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return frame{}, 0, fmt.Errorf("%w: section id %d (#%d) at byte offset %d checksum mismatch (want %08x, got %08x)",
			ErrCorrupt, id, index, off, sum, got)
	}
	return frame{id: id, index: index, off: off, payload: payload}, off + sectionHeaderLen + n, nil
}

// decode decompresses and gob-decodes the frame payload into dst,
// pinning errors to the frame's location.
func (f frame) decode(dst any) error {
	zr, err := gzip.NewReader(bytes.NewReader(f.payload))
	if err != nil {
		return fmt.Errorf("%w: section id %d (#%d) at byte offset %d: decompress: %v",
			ErrCorrupt, f.id, f.index, f.off, err)
	}
	defer zr.Close()
	if err := gobDecode(zr, dst); err != nil {
		return fmt.Errorf("section id %d (#%d) at byte offset %d: %w", f.id, f.index, f.off, err)
	}
	return nil
}

// apply decodes the frame into its slot on p (meta frames into meta).
// Unknown ids are checksum-verified and skipped.
func (f frame) apply(p *Pinball, meta *metaV1) error {
	var dst any
	var sl sliceV1
	var ring ringV1
	switch f.id {
	case secMeta:
		dst = meta
	case secState:
		dst = &p.State
	case secSchedule:
		dst = &p.Quanta
	case secSyscalls:
		dst = &p.Syscalls
	case secOrder:
		dst = &p.OrderEdges
	case secSlice:
		dst = &sl
	case secCheckpoints:
		dst = &p.Checkpoints
	case secRing:
		dst = &ring
	default:
		return nil
	}
	if err := f.decode(dst); err != nil {
		return err
	}
	switch f.id {
	case secSlice:
		p.Exclusions, p.Injections = sl.Exclusions, sl.Injections
	case secRing:
		p.RingBytes, p.SampleKeep = ring.RingBytes, ring.SampleKeep
		p.Evictions, p.Recipe = ring.Evictions, ring.Recipe
	}
	return nil
}

// framedHeaderLen is the v2 file header: magic + version + kind + count.
const framedHeaderLen = int64(len(fileMagic) + 3)

// decodeFramed reads the v1 section framing from the full file bytes.
func decodeFramed(data []byte) (*Pinball, error) {
	if int64(len(data)) < framedHeaderLen {
		return nil, fmt.Errorf("%w: header ends after version byte", ErrTruncated)
	}
	kindB, count := data[len(fileMagic)+1], int(data[len(fileMagic)+2])

	p := &Pinball{}
	meta := metaV1{}
	seen := map[byte]bool{}
	off := framedHeaderLen
	for i := 1; i <= count; i++ {
		f, next, err := readFrame(data, off, i)
		if err != nil {
			return nil, err
		}
		off = next
		if seen[f.id] {
			return nil, fmt.Errorf("%w: duplicate section id %d (#%d) at byte offset %d", ErrCorrupt, f.id, i, f.off)
		}
		seen[f.id] = true
		if err := f.apply(p, &meta); err != nil {
			return nil, err
		}
	}
	if rest := int64(len(data)) - off; rest != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last section at byte offset %d", ErrCorrupt, rest, off)
	}
	for _, req := range []byte{secMeta, secState, secSchedule} {
		if !seen[req] {
			return nil, fmt.Errorf("%w: mandatory section %d missing", ErrCorrupt, req)
		}
	}
	for _, id := range meta.Sections {
		if !seen[id] {
			return nil, fmt.Errorf("%w: section %d is in the manifest but missing from the file", ErrCorrupt, id)
		}
	}
	p.applyMeta(meta)
	if kindByte(p.Kind) != kindB {
		return nil, fmt.Errorf("%w: header kind %q does not match meta kind %q", ErrCorrupt, kindB, p.Kind)
	}
	return p, nil
}

// gobDecode decodes into v, converting both gob errors and gob panics
// (which malformed streams can trigger deep inside the decoder) into
// typed errors.
func gobDecode(r io.Reader, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: decode panic: %v", ErrCorrupt, p)
		}
	}()
	if err := gob.NewDecoder(r).Decode(v); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: stream ends mid-value", ErrTruncated)
		}
		return fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	return nil
}

// SectionInfo locates one framed section inside a v1 pinball file; Off is
// the frame start and Len the full frame length (header + payload). The
// fault-injection harness uses it to drop or damage precise sections.
type SectionInfo struct {
	ID  byte
	Off int64
	Len int64
}

// SectionOffsets walks the framing of v1 (framed) or journal pinball
// file bytes without decoding payloads. It fails with the same typed
// errors as Decode.
func SectionOffsets(data []byte) ([]SectionInfo, error) {
	headerLen := len(fileMagic) + 2
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d-byte file", ErrTruncated, len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrNotPinball)
	}
	count := -1 // journal: frames run to end of file
	off := int64(headerLen)
	switch v := data[len(fileMagic)]; v {
	case versionFramed:
		if int64(len(data)) < framedHeaderLen {
			return nil, fmt.Errorf("%w: %d-byte file", ErrTruncated, len(data))
		}
		count = int(data[headerLen])
		off = framedHeaderLen
	case versionJournal:
	default:
		return nil, fmt.Errorf("%w: version %d has no section framing", ErrVersionSkew, v)
	}
	var out []SectionInfo
	for i := 1; count < 0 || i <= count; i++ {
		if count < 0 && off == int64(len(data)) {
			break
		}
		if int64(len(data)) < off+sectionHeaderLen {
			return nil, fmt.Errorf("%w: file ends inside section header %d", ErrTruncated, i)
		}
		n := int64(binary.BigEndian.Uint64(data[off+1 : off+9]))
		if n < 0 || n > maxSectionLen || int64(len(data)) < off+sectionHeaderLen+n {
			return nil, fmt.Errorf("%w: section %d overruns the file", ErrTruncated, i)
		}
		out = append(out, SectionInfo{ID: data[off], Off: off, Len: sectionHeaderLen + n})
		off += sectionHeaderLen + n
	}
	return out, nil
}

// SaveLegacy writes the pinball in the pre-framing v0 format (magic,
// version byte 1, one gzip+gob stream) — kept only so compatibility
// tests and the fault-injection harness can produce legacy files. Like
// Save, the write is staged and atomically renamed: a mid-write error
// removes the staging file and never clobbers an existing good pinball.
func (p *Pinball) SaveLegacy(path string) error {
	cp := *p
	cp.CheckpointEvery, cp.Checkpoints = 0, nil // fields v0 never had
	err := writeFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(append([]byte(fileMagic), versionLegacy)); err != nil {
			return err
		}
		zw := gzip.NewWriter(w)
		if err := gob.NewEncoder(zw).Encode(&cp); err != nil {
			return fmt.Errorf("encode: %w", err)
		}
		return zw.Close()
	})
	if err != nil {
		return fmt.Errorf("pinball: save %s: %w", path, err)
	}
	return nil
}

// EncodedSize returns the on-disk size of the pinball in bytes by
// encoding it to a counting sink; the evaluation tables report this as
// the pinball's space overhead.
func (p *Pinball) EncodedSize() (int64, error) {
	var cw countingWriter
	if err := p.encode(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(b []byte) (int, error) {
	c.n += int64(len(b))
	return len(b), nil
}
