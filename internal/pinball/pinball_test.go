package pinball_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

func samplePinball() *pinball.Pinball {
	mem := vm.NewMemory()
	mem.Write(0, 42)
	mem.Write(5000, -7)
	return &pinball.Pinball{
		ProgramName: "sample",
		Kind:        pinball.KindRegion,
		State: &vm.MachineState{
			Mem:      mem.Snapshot(),
			Threads:  []vm.ThreadState{{ID: 0, PC: 10, Count: 99}},
			HeapNext: vm.HeapBase + 16,
		},
		Quanta:       []vm.Quantum{{Tid: 0, Count: 50}, {Tid: 1, Count: 20}},
		Syscalls:     []vm.SyscallRecord{{Tid: 0, Num: isa.SysRead, Ret: 5}},
		OrderEdges:   []vm.OrderEdge{{FromTid: 0, FromIdx: 3, ToTid: 1, ToIdx: 9, Addr: 12}},
		RegionInstrs: 70,
		MainInstrs:   50,
		EndReason:    "length",
		Exclusions:   []pinball.Exclusion{{Tid: 0, StartPC: 4, StartInstance: 1, EndPC: 9, EndInstance: 2, FromIdx: 10, ToIdx: 20}},
		Injections: []pinball.Injection{{
			AtStep: 7, Tid: 0, NewPC: 9, NewCount: 20,
			Mem: []pinball.MemWrite{{Addr: 3, Val: 4}},
		}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	pb := samplePinball()
	path := filepath.Join(t.TempDir(), "s.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := pinball.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProgramName != pb.ProgramName || got.Kind != pb.Kind ||
		got.RegionInstrs != pb.RegionInstrs || got.EndReason != pb.EndReason {
		t.Error("metadata lost in round trip")
	}
	if len(got.Quanta) != 2 || got.Quanta[1] != pb.Quanta[1] {
		t.Error("quanta lost")
	}
	if len(got.Syscalls) != 1 || got.Syscalls[0] != pb.Syscalls[0] {
		t.Error("syscalls lost")
	}
	if len(got.OrderEdges) != 1 || got.OrderEdges[0] != pb.OrderEdges[0] {
		t.Error("order edges lost")
	}
	if len(got.Injections) != 1 || got.Injections[0].NewCount != 20 {
		t.Error("injections lost")
	}
	if !got.State.Mem.Equal(pb.State.Mem) {
		t.Error("memory image lost")
	}
	if got.State.Threads[0].Count != 99 {
		t.Error("thread state lost")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := pinball.Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(bad, []byte("not a pinball"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pinball.Load(bad); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestEncodedSizeMatchesFile(t *testing.T) {
	pb := samplePinball()
	sz, err := pb.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// gzip timestamps can differ by a few bytes; sizes must be close.
	if d := st.Size() - sz; d < -64 || d > 64 {
		t.Errorf("EncodedSize %d vs file %d", sz, st.Size())
	}
}

func TestTotalQuantumInstrs(t *testing.T) {
	pb := samplePinball()
	if got := pb.TotalQuantumInstrs(); got != 70 {
		t.Errorf("TotalQuantumInstrs = %d, want 70", got)
	}
}

func TestExclusionString(t *testing.T) {
	e := pinball.Exclusion{Tid: 2, StartPC: 4, StartInstance: 1, EndPC: 9, EndInstance: 3}
	if got := e.String(); got != "[4:1:2, 9:3:2)" {
		t.Errorf("String = %q", got)
	}
}

func TestQuantaSumProperty(t *testing.T) {
	f := func(counts []uint16) bool {
		pb := &pinball.Pinball{}
		var want int64
		for i, c := range counts {
			pb.Quanta = append(pb.Quanta, vm.Quantum{Tid: i % 4, Count: int64(c)})
			want += int64(c)
		}
		return pb.TotalQuantumInstrs() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsWrongVersionAndMagic(t *testing.T) {
	dir := t.TempDir()
	// Valid file, then corrupt the version byte.
	pb := samplePinball()
	path := filepath.Join(dir, "v.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	version := data[4]
	data[4] = 99 // version byte
	bad := filepath.Join(dir, "badver.pinball")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pinball.Load(bad); !errors.Is(err, pinball.ErrVersionSkew) {
		t.Errorf("wrong version: err = %v, want ErrVersionSkew", err)
	}
	// Too short to even hold the magic.
	tiny := filepath.Join(dir, "tiny")
	if err := os.WriteFile(tiny, []byte("DR"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pinball.Load(tiny); !errors.Is(err, pinball.ErrNotPinball) {
		t.Errorf("2-byte file: err = %v, want ErrNotPinball", err)
	}
	// Valid header, body cut mid-section.
	data[4] = version
	cut := filepath.Join(dir, "cut.pinball")
	if err := os.WriteFile(cut, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pinball.Load(cut); !errors.Is(err, pinball.ErrTruncated) {
		t.Errorf("half file: err = %v, want ErrTruncated", err)
	}
	// Wrong magic.
	data[0] = 'X'
	mag := filepath.Join(dir, "badmagic.pinball")
	if err := os.WriteFile(mag, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pinball.Load(mag); !errors.Is(err, pinball.ErrNotPinball) {
		t.Errorf("wrong magic: err = %v, want ErrNotPinball", err)
	}
}

func TestLoadErrorsNameTheFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "garbage.pinball")
	if err := os.WriteFile(bad, []byte("definitely not a pinball"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := pinball.Load(bad)
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if !strings.Contains(err.Error(), "garbage.pinball") {
		t.Errorf("Load error %q does not name the file", err)
	}
}

func TestCheckpointsRoundTrip(t *testing.T) {
	pb := samplePinball()
	pb.CheckpointEvery = 64
	pb.Checkpoints = []pinball.Checkpoint{
		{Tid: 0, Seq: 64, Idx: 64, Step: 64, Hash: 0xfeedface, PC: 10},
		{Tid: 1, Seq: 64, Idx: 64, Step: 70, Hash: 0xdeadbeef, PC: 20},
	}
	path := filepath.Join(t.TempDir(), "ck.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := pinball.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointEvery != 64 || len(got.Checkpoints) != 2 ||
		got.Checkpoints[1] != pb.Checkpoints[1] {
		t.Errorf("checkpoints lost in round trip: every=%d %v",
			got.CheckpointEvery, got.Checkpoints)
	}
}
