package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// putFake stores a fabricated journal with a controlled touch time and
// returns its digest.
func putFake(t *testing.T, s *Store, tag string, at int64) string {
	t.Helper()
	clock := time.Unix(at, 0)
	old := s.now
	s.now = func() time.Time { return clock }
	defer func() { s.now = old }()
	data := fakeJournal([]byte("payload-" + tag))
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put %s: %v", tag, err)
	}
	return Digest(data)
}

func TestGCKeepLastLRU(t *testing.T) {
	s := openT(t)
	oldest := putFake(t, s, "oldest", 100)
	mid := putFake(t, s, "mid", 200)
	newest := putFake(t, s, "newest", 300)

	rep, err := s.GC(GCPolicy{KeepLast: 2})
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if len(rep.Evicted) != 1 || rep.Evicted[0] != oldest {
		t.Fatalf("evicted %v, want [%s]", rep.Evicted, oldest)
	}
	if _, err := s.Get(oldest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted entry still readable: %v", err)
	}
	for _, d := range []string{mid, newest} {
		if _, err := s.Get(d); err != nil {
			t.Fatalf("survivor %s unreadable after gc: %v", d, err)
		}
	}
	if rep.DeletedObjects == 0 || rep.ReclaimedBytes == 0 {
		t.Fatalf("gc reclaimed nothing: %+v", rep)
	}
}

func TestGCPinnedAndLeasedSurvive(t *testing.T) {
	s := openT(t)
	pinned := putFake(t, s, "pinned", 100)
	leased := putFake(t, s, "leased", 110)
	doomed := putFake(t, s, "doomed", 120)
	if err := s.Pin(pinned); err != nil {
		t.Fatal(err)
	}
	release, err := s.Acquire(leased)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rep, err := s.GC(GCPolicy{KeepLast: 0, MaxBytes: 1}) // evict everything evictable
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if len(rep.Evicted) != 1 || rep.Evicted[0] != doomed {
		t.Fatalf("evicted %v, want only [%s]", rep.Evicted, doomed)
	}
	if rep.KeptPinned != 1 || rep.KeptLeased != 1 {
		t.Fatalf("kept counters: %+v", rep)
	}
	for _, d := range []string{pinned, leased} {
		if _, err := s.Get(d); err != nil {
			t.Fatalf("protected %s collected: %v", d, err)
		}
	}
}

func TestGCMaxBytes(t *testing.T) {
	s := openT(t)
	a := putFake(t, s, "a", 100)
	b := putFake(t, s, "b", 200)
	c := putFake(t, s, "c", 300)
	infoC, _ := s.Stat(c)
	infoB, _ := s.Stat(b)

	rep, err := s.GC(GCPolicy{MaxBytes: infoB.Size + infoC.Size})
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if len(rep.Evicted) != 1 || rep.Evicted[0] != a {
		t.Fatalf("evicted %v, want LRU [%s]", rep.Evicted, a)
	}
}

func TestGCDryRunDeletesNothing(t *testing.T) {
	s := openT(t)
	d := putFake(t, s, "only", 100)
	rep, err := s.GC(GCPolicy{MaxBytes: 1, DryRun: true})
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if len(rep.Evicted) != 1 || !rep.DryRun {
		t.Fatalf("dry-run report: %+v", rep)
	}
	if _, err := s.Get(d); err != nil {
		t.Fatalf("dry-run deleted data: %v", err)
	}
}

// TestGCSweepsOrphansAndCompacts: objects no entry references (what a
// crash between tombstone and sweep leaves) are reclaimed, tombstoned
// entries disappear from the compacted manifest, and stale lease files
// from dead pids are removed.
func TestGCSweepsOrphansAndCompacts(t *testing.T) {
	s := openT(t)
	live := putFake(t, s, "live", 100)
	orphan := filepath.Join(s.root, objectsDir, "ff", "ffffffffffffffff")
	if err := os.MkdirAll(filepath.Dir(orphan), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphan, []byte("orphaned bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(s.root, leasesDir, live+".999999999.7")
	if err := os.WriteFile(stale, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.GC(GCPolicy{})
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if rep.OrphansSwept != 1 || rep.StaleLeases != 1 {
		t.Fatalf("sweep counters: %+v", rep)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan object survived gc")
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale lease survived gc")
	}
	// Compaction: manifest now replays to exactly the live entry set.
	m, err := loadManifest(s.manifestPath())
	if err != nil {
		t.Fatalf("compacted manifest: %v", err)
	}
	if len(m.entries) != 1 || m.entries[live] == nil || m.torn {
		t.Fatalf("compacted index: %d entries torn=%v", len(m.entries), m.torn)
	}
	if _, err := s.Get(live); err != nil {
		t.Fatalf("live entry unreadable after compaction: %v", err)
	}
}

// TestGCTombstoneBeforeObjectDelete pins the crash-safety ordering by
// inspection of effects: after eviction the manifest has no record of
// the entry (tombstone + compaction) AND its objects are gone; a
// partial state where objects are gone but the entry is live must be
// impossible, which the ordering (tombstone, fsync, compact, then
// unlink) guarantees. Here we check the recovery half: a store whose
// objects vanished without a tombstone (simulated crash artifact in
// reverse) still fails typed rather than silently.
func TestGCCrashArtifactsStayTyped(t *testing.T) {
	s := openT(t)
	d := putFake(t, s, "crashed", 100)
	e := s.man.entries[d]
	for _, c := range e.Chunks {
		os.Remove(s.objectPath(c.Digest))
	}
	if _, err := s.Get(d); !errors.Is(err, ErrObjectMissing) {
		t.Fatalf("entry with vanished objects: %v, want ErrObjectMissing", err)
	}
}

func TestVerifyCleanAndDamaged(t *testing.T) {
	s := openT(t)
	data := recordedPinball(t)
	digest := Digest(data)
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatalf("verify clean store: %v (%+v)", err, rep)
	}
	if rep.Entries != 1 || rep.ChunksChecked == 0 {
		t.Fatalf("verify report: %+v", rep)
	}

	flipObjectByte(t, s, digest, 0)
	rep, err = s.Verify()
	if !errors.Is(err, ErrObjectCorrupt) {
		t.Fatalf("verify damaged store: %v, want ErrObjectCorrupt", err)
	}
	if rep.CorruptCount != 1 || len(rep.Corrupt) != 1 {
		t.Fatalf("verify report after damage: %+v", rep)
	}
	// Verify quarantined the damaged object; a second pass sees it missing.
	rep, err = s.Verify()
	if !errors.Is(err, ErrObjectMissing) {
		t.Fatalf("second verify: %v, want ErrObjectMissing", err)
	}
	if rep.MissingCount != 1 {
		t.Fatalf("second verify report: %+v", rep)
	}
}

func TestVerifyReportsTornManifest(t *testing.T) {
	s := openT(t)
	putFake(t, s, "x", 100)
	// Tear the manifest tail as a crash would.
	raw, err := os.ReadFile(s.manifestPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.manifestPath(), raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Verify()
	if !errors.Is(err, ErrManifestTorn) {
		t.Fatalf("verify torn manifest: %v, want ErrManifestTorn", err)
	}
}

// TestGCUnderLoadSoak runs concurrent putters, readers and a GC loop
// against one store root through two handles (in-process model of the
// multi-process soak): no reader of a pinned or freshly-touched entry
// may ever see corruption, and GC must only reclaim unpinned,
// unreferenced entries.
func TestGCUnderLoadSoak(t *testing.T) {
	root := t.TempDir()
	s1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}

	pinnedData := fakeJournal([]byte("pinned-forever"), bytes.Repeat([]byte("p"), 512))
	pinnedDigest := Digest(pinnedData)
	if _, err := s1.Put(pinnedData, PutMeta{}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Pin(pinnedDigest); err != nil {
		t.Fatal(err)
	}

	leasedData := fakeJournal([]byte("leased-for-session"), bytes.Repeat([]byte("l"), 512))
	leasedDigest := Digest(leasedData)
	if _, err := s1.Put(leasedData, PutMeta{}); err != nil {
		t.Fatal(err)
	}
	release, err := s1.Acquire(leasedDigest)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	const iters = 30
	var wg sync.WaitGroup
	errc := make(chan error, 64)

	// Churn: transient entries being added via both handles.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int, s *Store) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				data := fakeJournal([]byte(fmt.Sprintf("churn-%d-%d", w, i)))
				if _, err := s.Put(data, PutMeta{}); err != nil {
					errc <- fmt.Errorf("churn put: %w", err)
					return
				}
			}
		}(w, []*Store{s1, s2}[w])
	}
	// Readers of the protected entries: must never see corruption or
	// absence, whatever GC does around them.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if got, err := s.Get(pinnedDigest); err != nil {
					errc <- fmt.Errorf("pinned read: %w", err)
					return
				} else if !bytes.Equal(got, pinnedData) {
					errc <- fmt.Errorf("pinned read returned wrong bytes")
					return
				}
				if _, err := s.Get(leasedDigest); err != nil {
					errc <- fmt.Errorf("leased read: %w", err)
					return
				}
			}
		}([]*Store{s1, s2}[r])
	}
	// GC loop with an aggressive policy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3; i++ {
			if _, err := s2.GC(GCPolicy{KeepLast: 3}); err != nil {
				errc <- fmt.Errorf("gc: %w", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Final state: protected entries intact and validated, store verifies
	// clean (GC compaction may leave a clean or torn-free manifest only).
	for _, d := range []string{pinnedDigest, leasedDigest} {
		if _, err := s1.Get(d); err != nil {
			t.Errorf("protected %s after soak: %v", d, err)
		}
	}
	if rep, err := s1.Verify(); err != nil {
		t.Errorf("post-soak verify: %v (%+v)", err, rep)
	}
}
