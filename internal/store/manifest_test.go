package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeManifest(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), manifestName)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestManifestReplay(t *testing.T) {
	path := writeManifest(t,
		manifestHeader,
		`{"op":"add","entry":{"digest":"aaaa000000000000","size":10,"chunks":[{"digest":"c1c1c1c1c1c1c1c1","size":10}],"added_unix":100,"touch_unix":100}}`,
		`{"op":"add","entry":{"digest":"bbbb000000000000","size":20,"chunks":[],"added_unix":101,"touch_unix":101}}`,
		`{"op":"pin","digest":"aaaa000000000000"}`,
		`{"op":"touch","digest":"bbbb000000000000","unix":500}`,
		`{"op":"del","digest":"bbbb000000000000"}`,
		`{"op":"touch","digest":"bbbb000000000000","unix":900}`, // after del: no-op
	)
	m, err := loadManifest(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if m.torn {
		t.Fatal("clean manifest reported torn")
	}
	if len(m.entries) != 1 {
		t.Fatalf("%d entries, want 1", len(m.entries))
	}
	e := m.entries["aaaa000000000000"]
	if e == nil || !e.Pinned || e.Size != 10 || len(e.Chunks) != 1 {
		t.Fatalf("entry: %+v", e)
	}
}

func TestManifestMissingIsEmpty(t *testing.T) {
	m, err := loadManifest(filepath.Join(t.TempDir(), "absent.db"))
	if err != nil || len(m.entries) != 0 || m.torn {
		t.Fatalf("missing manifest: %+v, %v", m, err)
	}
}

// TestManifestTornTailRecovered: a crash mid-append leaves a partial
// final line; the intact prefix must load and the tear be reported.
func TestManifestTornTailRecovered(t *testing.T) {
	full := strings.Join([]string{
		manifestHeader,
		`{"op":"add","entry":{"digest":"aaaa000000000000","size":10,"chunks":[],"added_unix":1,"touch_unix":1}}`,
		`{"op":"add","entry":{"digest":"bbbb000000000000","size":20,"chunks":[],"added_unix":2,"touch_unix":2}}`,
	}, "\n") + "\n"
	path := filepath.Join(t.TempDir(), manifestName)
	// Chop at several points inside the final record, including exactly at
	// the missing-newline boundary (cut=1: the record itself is whole, so
	// recovery keeps it — only the tear is flagged).
	for _, cut := range []int{1, 10, 40} {
		torn := full[:len(full)-cut]
		if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := loadManifest(path)
		if err != nil {
			t.Fatalf("cut %d: load: %v", cut, err)
		}
		if !m.torn {
			t.Fatalf("cut %d: tear not reported", cut)
		}
		if m.entries["aaaa000000000000"] == nil {
			t.Fatalf("cut %d: intact prefix not recovered: %d entries", cut, len(m.entries))
		}
		if cut > 1 && len(m.entries) != 1 {
			t.Fatalf("cut %d: torn record survived: %d entries", cut, len(m.entries))
		}
	}
}

// TestManifestMidFileCorruptionTyped: damage that is not a torn tail is
// rejected with ErrManifestCorrupt, never silently skipped.
func TestManifestMidFileCorruptionTyped(t *testing.T) {
	path := writeManifest(t,
		manifestHeader,
		`{"op":"add","entry":{"digest":"aaaa000000000000","size":10,"chunks":[],"added_unix":1,"touch_unix":1}}`,
		`{"op":"add","en%%%GARBAGE%%%`,
		`{"op":"add","entry":{"digest":"bbbb000000000000","size":20,"chunks":[],"added_unix":2,"touch_unix":2}}`,
	)
	if _, err := loadManifest(path); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("mid-file garbage: %v, want ErrManifestCorrupt", err)
	}
}

func TestManifestBadHeaderTyped(t *testing.T) {
	path := writeManifest(t,
		`{"not-a-store":true}`,
		`{"op":"add","entry":{"digest":"aaaa000000000000","size":10,"chunks":[],"added_unix":1,"touch_unix":1}}`,
	)
	if _, err := loadManifest(path); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("bad header: %v, want ErrManifestCorrupt", err)
	}
}

func TestManifestUnknownOpMidFileTyped(t *testing.T) {
	path := writeManifest(t,
		manifestHeader,
		`{"op":"frobnicate","digest":"aaaa000000000000"}`,
		`{"op":"add","entry":{"digest":"bbbb000000000000","size":20,"chunks":[],"added_unix":2,"touch_unix":2}}`,
	)
	if _, err := loadManifest(path); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("unknown op: %v, want ErrManifestCorrupt", err)
	}
}

func TestManifestPrefixIteration(t *testing.T) {
	m := &manifest{entries: map[string]*Entry{}}
	for _, d := range []string{"ab00000000000000", "ab11111111111111", "cd00000000000000"} {
		applyRecord(m, &record{Op: "add", Entry: &Entry{Digest: d}})
	}
	got := m.list("ab")
	if len(got) != 2 || got[0].Digest != "ab00000000000000" || got[1].Digest != "ab11111111111111" {
		t.Fatalf("prefix ab: %+v", got)
	}
	if len(m.list("")) != 3 {
		t.Fatal("empty prefix should list all")
	}
	if len(m.list("ff")) != 0 {
		t.Fatal("no-match prefix should be empty")
	}
}

// TestManifestCompactRoundTrip: compaction folds pins/touches into the
// add records and replays to the identical index.
func TestManifestCompactRoundTrip(t *testing.T) {
	path := writeManifest(t,
		manifestHeader,
		`{"op":"add","entry":{"digest":"aaaa000000000000","size":10,"chunks":[{"digest":"c1c1c1c1c1c1c1c1","size":10}],"added_unix":1,"touch_unix":1}}`,
		`{"op":"pin","digest":"aaaa000000000000"}`,
		`{"op":"touch","digest":"aaaa000000000000","unix":77}`,
	)
	m, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := m.compactBytes()
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), manifestName)
	if err := os.WriteFile(path2, compact, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := loadManifest(path2)
	if err != nil {
		t.Fatalf("compacted manifest does not load: %v", err)
	}
	e := m2.entries["aaaa000000000000"]
	if e == nil || !e.Pinned || e.TouchUnix != 77 || len(e.Chunks) != 1 {
		t.Fatalf("compaction lost state: %+v", e)
	}
}
