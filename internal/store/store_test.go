package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/pinball"
	"repro/internal/pinplay"
)

// recordedPinball logs one small real pinball and returns its framed
// bytes — the store must round-trip real recordings, not just
// synthetic frames.
func recordedPinball(t testing.TB) []byte {
	t.Helper()
	prog, err := cc.CompileSource("store_fixture.c", `
int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 16; i++) {
		acc = acc + read();
		write(acc);
	}
	return 0;
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	input := make([]int64, 32)
	for i := range input {
		input[i] = int64(i*5 + 2)
	}
	pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: 3, MeanQuantum: 11, Input: input, CheckpointEvery: 4}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	data, err := pb.EncodeBytes()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// fakeJournal fabricates journal-framed pinball bytes from raw frame
// payloads: valid for SectionOffsets (and therefore for store
// chunking), no decode semantics. Frames shared between two fakes are
// byte-identical, which is what the dedup tests need to control.
func fakeJournal(payloads ...[]byte) []byte {
	out := []byte("DRPB")
	out = append(out, 3 /* journal version */, 'W')
	for i, p := range payloads {
		frame := make([]byte, 13)
		frame[0] = byte(8 + i%5) // journal frame ids 8-12
		binary.BigEndian.PutUint64(frame[1:9], uint64(len(p)))
		binary.BigEndian.PutUint32(frame[9:13], crc32.ChecksumIEEE(p))
		out = append(out, frame...)
		out = append(out, p...)
	}
	return out
}

func openT(t testing.TB) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t)
	data := recordedPinball(t)
	want := Digest(data)

	res, err := s.Put(data, PutMeta{Program: "store_fixture.c", Kind: "whole"})
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if res.Digest != want || res.Existed || res.Size != int64(len(data)) {
		t.Fatalf("put result %+v, want digest %s size %d", res, want, len(data))
	}
	if res.Chunks < 3 {
		t.Fatalf("real pinball split into %d chunks, want >= 3 (header + sections)", res.Chunks)
	}

	got, err := s.Get(want)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("get returned different bytes than put")
	}
	if _, err := pinball.Decode(got); err != nil {
		t.Fatalf("round-tripped pinball no longer decodes: %v", err)
	}

	info, err := s.Stat(want)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if info.Program != "store_fixture.c" || info.Kind != "whole" || info.Size != int64(len(data)) {
		t.Fatalf("stat: %+v", info)
	}

	// Re-put is a cheap dedup hit.
	res2, err := s.Put(data, PutMeta{})
	if err != nil {
		t.Fatalf("re-put: %v", err)
	}
	if !res2.Existed || res2.NewChunks != 0 {
		t.Fatalf("re-put result %+v, want existed", res2)
	}
}

func TestGetUnknownDigest(t *testing.T) {
	s := openT(t)
	if _, err := s.Get("deadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get unknown: %v, want ErrNotFound", err)
	}
	if _, err := s.Stat("deadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat unknown: %v, want ErrNotFound", err)
	}
}

func TestPutRejectsNonPinball(t *testing.T) {
	s := openT(t)
	if _, err := s.Put([]byte("not a pinball at all"), PutMeta{}); !errors.Is(err, pinball.ErrNotPinball) {
		t.Fatalf("put garbage: %v, want ErrNotPinball", err)
	}
}

// TestChunkDedupAcrossRecordings proves chunk-level sharing: two
// recordings with byte-identical frames store the shared frames once.
func TestChunkDedupAcrossRecordings(t *testing.T) {
	s := openT(t)
	shared1 := bytes.Repeat([]byte("quanta-alpha"), 100)
	shared2 := bytes.Repeat([]byte("quanta-beta"), 100)
	a := fakeJournal(shared1, shared2, []byte("tail-of-a"))
	b := fakeJournal(shared1, shared2, []byte("tail-of-b"))
	if Digest(a) == Digest(b) {
		t.Fatal("fixtures should differ")
	}

	resA, err := s.Put(a, PutMeta{})
	if err != nil {
		t.Fatalf("put a: %v", err)
	}
	if resA.NewChunks != resA.Chunks {
		t.Fatalf("first put should write every chunk: %+v", resA)
	}
	resB, err := s.Put(b, PutMeta{})
	if err != nil {
		t.Fatalf("put b: %v", err)
	}
	// b shares the header chunk and the two shared frames with a; only
	// its tail frame is new.
	if resB.NewChunks != 1 {
		t.Fatalf("second put wrote %d new chunks, want 1 (shared frames deduplicated): %+v", resB.NewChunks, resB)
	}
	if resB.SharedBytes == 0 {
		t.Fatalf("second put shared no bytes: %+v", resB)
	}
	for _, data := range [][]byte{a, b} {
		got, err := s.Get(Digest(data))
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("dedup broke round-trip")
		}
	}
}

// flipObjectByte damages one chunk object of digest on disk and returns
// the chunk digest it hit.
func flipObjectByte(t *testing.T, s *Store, digest string, chunkIdx int) string {
	t.Helper()
	info, err := s.Stat(digest)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if chunkIdx >= info.Chunks {
		t.Fatalf("entry has %d chunks, want index %d", info.Chunks, chunkIdx)
	}
	e := s.man.entries[digest]
	cd := e.Chunks[chunkIdx].Digest
	path := s.objectPath(cd)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read object: %v", err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("rewrite object: %v", err)
	}
	return cd
}

func TestValidationOnReadQuarantines(t *testing.T) {
	s := openT(t)
	data := recordedPinball(t)
	digest := Digest(data)
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put: %v", err)
	}
	cd := flipObjectByte(t, s, digest, 1)

	_, err := s.Get(digest)
	if !errors.Is(err, ErrObjectCorrupt) {
		t.Fatalf("get of corrupted entry: %v, want ErrObjectCorrupt", err)
	}
	var coe *CorruptObjectError
	if !errors.As(err, &coe) {
		t.Fatalf("error is not a *CorruptObjectError: %v", err)
	}
	if coe.Chunk != cd || coe.Digest != digest || coe.Quarantined == "" {
		t.Fatalf("corrupt error detail: %+v", coe)
	}
	if _, err := os.Stat(coe.Quarantined); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if _, err := os.Stat(s.objectPath(cd)); !os.IsNotExist(err) {
		t.Fatalf("damaged object still in objects/: %v", err)
	}

	// The evidence is recoverable without validation.
	damaged, ok, err := s.GetDamaged(digest)
	if err != nil || !ok {
		t.Fatalf("GetDamaged: ok=%v err=%v", ok, err)
	}
	if len(damaged) != len(data) {
		t.Fatalf("damaged assembly %d bytes, want %d (quarantined chunk re-read)", len(damaged), len(data))
	}
	if bytes.Equal(damaged, data) {
		t.Fatal("damaged assembly should carry the flipped bit")
	}

	// Healing with an intact replica restores reads.
	if err := s.Heal(digest, data); err != nil {
		t.Fatalf("heal: %v", err)
	}
	got, err := s.Get(digest)
	if err != nil {
		t.Fatalf("get after heal: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("healed bytes differ")
	}
}

func TestMissingObjectTyped(t *testing.T) {
	s := openT(t)
	data := recordedPinball(t)
	digest := Digest(data)
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put: %v", err)
	}
	e := s.man.entries[digest]
	if err := os.Remove(s.objectPath(e.Chunks[0].Digest)); err != nil {
		t.Fatalf("remove object: %v", err)
	}
	_, err := s.Get(digest)
	if !errors.Is(err, ErrObjectMissing) {
		t.Fatalf("get with missing chunk: %v, want ErrObjectMissing", err)
	}
}

func TestHealRejectsWrongBytes(t *testing.T) {
	s := openT(t)
	data := recordedPinball(t)
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Heal(Digest(data), fakeJournal([]byte("imposter"))); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("heal with wrong bytes: %v, want ErrDigestMismatch", err)
	}
}

func TestMaterializeSpools(t *testing.T) {
	s := openT(t)
	data := recordedPinball(t)
	digest := Digest(data)
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put: %v", err)
	}
	path, err := s.Materialize(digest)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if path != s.SpoolPath(digest) {
		t.Fatalf("spool path %s, want %s", path, s.SpoolPath(digest))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read spool: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("spool bytes differ")
	}
	// A stale/garbled spool file must be replaced by the next Materialize.
	if err := os.WriteFile(path, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Materialize(digest); err != nil {
		t.Fatalf("re-materialize: %v", err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, data) {
		t.Fatal("stale spool not replaced")
	}
}

func TestListPrefixAndResolve(t *testing.T) {
	s := openT(t)
	var digests []string
	for i := 0; i < 4; i++ {
		data := fakeJournal([]byte(strings.Repeat("x", i+1)))
		if _, err := s.Put(data, PutMeta{}); err != nil {
			t.Fatalf("put: %v", err)
		}
		digests = append(digests, Digest(data))
	}
	all, err := s.List("")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(all) != 4 {
		t.Fatalf("list: %d entries, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Digest >= all[i].Digest {
			t.Fatal("list not digest-ordered")
		}
	}
	d := digests[0]
	got, err := s.Resolve(d[:8])
	if err != nil || got != d {
		t.Fatalf("resolve %q: %q, %v", d[:8], got, err)
	}
	if _, err := s.Resolve("zzzz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve miss: %v", err)
	}
	if _, err := s.Resolve(""); err == nil {
		t.Fatal("empty prefix with 4 entries should be ambiguous")
	}
}

func TestPinUnpinAndLease(t *testing.T) {
	s := openT(t)
	data := recordedPinball(t)
	digest := Digest(data)
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Pin(digest); err != nil {
		t.Fatalf("pin: %v", err)
	}
	if info, _ := s.Stat(digest); !info.Pinned {
		t.Fatal("pin not visible in stat")
	}
	if err := s.Unpin(digest); err != nil {
		t.Fatalf("unpin: %v", err)
	}
	if info, _ := s.Stat(digest); info.Pinned {
		t.Fatal("unpin not visible in stat")
	}
	if err := s.Pin("deadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pin unknown: %v", err)
	}

	release, err := s.Acquire(digest)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if info, _ := s.Stat(digest); !info.Leased {
		t.Fatal("lease not visible in stat")
	}
	release()
	release() // idempotent
	if info, _ := s.Stat(digest); info.Leased {
		t.Fatal("lease survived release")
	}
}

// TestLeaseFromDeadPidIgnored proves a crashed session's lease file
// does not block GC forever.
func TestLeaseFromDeadPidIgnored(t *testing.T) {
	s := openT(t)
	data := recordedPinball(t)
	digest := Digest(data)
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put: %v", err)
	}
	stale := filepath.Join(s.root, leasesDir, digest+".999999999.1")
	if err := os.WriteFile(stale, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Stat(digest); info.Leased {
		t.Fatal("dead-pid lease should be ignored")
	}
	live := filepath.Join(s.root, leasesDir, digest+".1.2") // pid 1 is always alive
	if err := os.WriteFile(live, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Stat(digest); !info.Leased {
		t.Fatal("live-pid lease should count")
	}
}

func TestCrossProcessVisibility(t *testing.T) {
	root := t.TempDir()
	s1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	data := recordedPinball(t)
	if _, err := s1.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put via s1: %v", err)
	}
	// s2 opened before the put; its next read must see the append.
	got, err := s2.Get(Digest(data))
	if err != nil {
		t.Fatalf("get via s2: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("bytes differ across handles")
	}
}

func TestDigestShape(t *testing.T) {
	d := Digest([]byte("hello"))
	if !ValidDigest(d) {
		t.Fatalf("digest %q fails its own shape check", d)
	}
	if ValidDigest("short") || ValidDigest("ZZZZZZZZZZZZZZZZ") {
		t.Fatal("bad shapes accepted")
	}
}

// TestTouchAdvancesOnGet pins the LRU input: Get must bump TouchUnix.
func TestTouchAdvancesOnGet(t *testing.T) {
	s := openT(t)
	clock := time.Unix(1000, 0)
	s.now = func() time.Time { return clock }
	data := recordedPinball(t)
	digest := Digest(data)
	if _, err := s.Put(data, PutMeta{}); err != nil {
		t.Fatalf("put: %v", err)
	}
	clock = time.Unix(2000, 0)
	if _, err := s.Get(digest); err != nil {
		t.Fatalf("get: %v", err)
	}
	info, _ := s.Stat(digest)
	if info.TouchUnix != 2000 || info.AddedUnix != 1000 {
		t.Fatalf("touch=%d added=%d, want 2000/1000", info.TouchUnix, info.AddedUnix)
	}
}
