package store

import (
	"errors"
	"fmt"
)

// Typed failure classes. Every error the store returns wraps exactly one
// of these sentinels, so callers (the session daemon, drstore, drrepair)
// can map failure modes to wire codes and exit codes with errors.Is —
// corruption is never reported as a generic I/O error and never
// swallowed.
var (
	// ErrNotFound marks digests the manifest has no live entry for.
	ErrNotFound = errors.New("digest not in store")
	// ErrObjectCorrupt marks a chunk object whose bytes no longer hash to
	// the digest they are filed under — a bit flip, a torn write, or a
	// duplicate-digest collision. The object is quarantined when detected.
	ErrObjectCorrupt = errors.New("store object corrupt")
	// ErrObjectMissing marks a manifest entry referencing a chunk object
	// that does not exist on disk (a dangling index entry).
	ErrObjectMissing = errors.New("store object missing")
	// ErrDigestMismatch marks assembled pinball bytes that do not hash to
	// the digest they were requested under — chunk-level validation
	// passed, but the whole is not the recorded file (e.g. a manifest
	// entry listing the wrong chunks).
	ErrDigestMismatch = errors.New("content digest mismatch")
	// ErrManifestCorrupt marks a manifest record that is syntactically
	// broken somewhere other than the final line — damage no crash of an
	// append-only writer can explain.
	ErrManifestCorrupt = errors.New("store manifest corrupt")
	// ErrManifestTorn marks a manifest whose final record is incomplete —
	// what a crash mid-append leaves. Open recovers the intact prefix and
	// reports the tear; Verify surfaces it typed.
	ErrManifestTorn = errors.New("store manifest torn")
	// ErrBusy marks an operation that lost the store lock to another
	// process within its patience window.
	ErrBusy = errors.New("store busy")
)

// CorruptObjectError details one validation-on-read failure: which chunk
// of which entry failed, what it should have hashed to, what it hashed
// to, and where the damaged bytes were quarantined. It wraps
// ErrObjectCorrupt (hash mismatch) or ErrObjectMissing (absent file).
type CorruptObjectError struct {
	Digest      string // pinball entry being read
	Chunk       string // chunk object digest
	Want, Got   string // expected vs computed chunk hash ("" for missing)
	Quarantined string // path the damaged object was moved to ("" if missing)
	sentinel    error
}

func (e *CorruptObjectError) Error() string {
	if e.sentinel == ErrObjectMissing {
		return fmt.Sprintf("%v: entry %s chunk %s has no object file", e.sentinel, e.Digest, e.Chunk)
	}
	return fmt.Sprintf("%v: entry %s chunk %s hashes to %s (quarantined %s)",
		e.sentinel, e.Digest, e.Chunk, e.Got, e.Quarantined)
}

func (e *CorruptObjectError) Unwrap() error { return e.sentinel }
