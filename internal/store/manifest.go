package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The manifest is an append-only streamed-JSON database: a header line
// followed by one JSON record per line. Readers build the in-memory
// index by replaying the records in order (last write wins), so the
// only write operation a mutator ever needs is a single O_APPEND write
// of one line — which is what makes concurrent writers and crashes
// tractable:
//
//   - a crash mid-append leaves a torn final line; Open recovers the
//     intact prefix and reports the tear typed (ErrManifestTorn) instead
//     of failing or silently dropping it;
//   - damage anywhere else cannot be explained by an interrupted append
//     and is rejected typed (ErrManifestCorrupt);
//   - GC makes deletions durable as tombstone records *before* touching
//     any object file, so a crash between the two leaves orphan objects
//     (harmless, reclaimed by the next GC) — never a live entry pointing
//     at deleted objects.
//
// GC compacts the log by rewriting it (header + one "add" per live
// entry, pins and touch times folded in) and renaming it into place
// atomically.

// manifestHeader is the first line of every manifest file.
const manifestHeader = `{"drstore":1}`

// Chunk is one content-addressed piece of a stored pinball.
type Chunk struct {
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
}

// Entry is one stored pinball: its full-file content digest, the
// ordered chunk list that reassembles it, capture metadata for ls, and
// the retention state GC decides by.
type Entry struct {
	Digest    string  `json:"digest"`
	Size      int64   `json:"size"`
	Chunks    []Chunk `json:"chunks"`
	Program   string  `json:"program,omitempty"`
	Kind      string  `json:"kind,omitempty"`
	AddedUnix int64   `json:"added_unix"`
	TouchUnix int64   `json:"touch_unix"`
	Pinned    bool    `json:"pinned,omitempty"`
}

// record is one manifest line. Op selects which fields are meaningful:
// "add" carries Entry; "pin"/"unpin"/"del" carry Digest; "touch"
// carries Digest and Unix.
type record struct {
	Op     string `json:"op"`
	Entry  *Entry `json:"entry,omitempty"`
	Digest string `json:"digest,omitempty"`
	Unix   int64  `json:"unix,omitempty"`
}

// manifest is the replayed in-memory index.
type manifest struct {
	entries map[string]*Entry
	// torn reports a recovered crash-torn tail: the byte offset the
	// damage starts at and the cause. Zero offset with torn=false means
	// the file was clean.
	torn    bool
	tornOff int64
}

// loadManifest replays the manifest file at path. A missing file is an
// empty store. A torn final line is recovered past (torn=true); any
// other damage fails with ErrManifestCorrupt.
func loadManifest(path string) (*manifest, error) {
	m := &manifest{entries: make(map[string]*Entry)}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return m, nil
		}
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	if len(data) == 0 {
		return m, nil
	}
	off := int64(0)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // + newline
		// A final line without its newline (or mid-JSON) is a torn append.
		atEOF := off+int64(len(line)) >= int64(len(data))
		if first {
			first = false
			var hdr struct {
				V int `json:"drstore"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.V != 1 {
				if atEOF {
					m.torn, m.tornOff = true, off
					return m, nil
				}
				return nil, fmt.Errorf("%w: bad header %q", ErrManifestCorrupt, truncateForError(line))
			}
			off += lineLen
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || !applyRecord(m, &r) {
			if atEOF {
				m.torn, m.tornOff = true, off
				return m, nil
			}
			return nil, fmt.Errorf("%w: record at byte offset %d: %q", ErrManifestCorrupt, off, truncateForError(line))
		}
		off += lineLen
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifestCorrupt, err)
	}
	// A file that does not end in a newline tore mid-append even if the
	// fragment happened to parse (e.g. truncation landing on a brace).
	if data[len(data)-1] != '\n' && !m.torn {
		m.torn, m.tornOff = true, int64(len(data))
	}
	return m, nil
}

// applyRecord merges one record into the index, reporting false for
// records that are structurally senseless (unknown op, add without an
// entry) — the caller decides whether that is a torn tail or corruption.
func applyRecord(m *manifest, r *record) bool {
	switch r.Op {
	case "add":
		if r.Entry == nil || r.Entry.Digest == "" {
			return false
		}
		e := *r.Entry
		m.entries[e.Digest] = &e
	case "pin", "unpin", "touch", "del":
		if r.Digest == "" {
			return false
		}
		e := m.entries[r.Digest]
		if e == nil {
			return true // pin/touch/del of an already-collected entry: no-op
		}
		switch r.Op {
		case "pin":
			e.Pinned = true
		case "unpin":
			e.Pinned = false
		case "touch":
			e.TouchUnix = r.Unix
		case "del":
			delete(m.entries, r.Digest)
		}
	default:
		return false
	}
	return true
}

// list returns the live entries whose digest starts with prefix, in
// digest order — the manifest's prefix iteration.
func (m *manifest) list(prefix string) []*Entry {
	var out []*Entry
	for d, e := range m.entries {
		if strings.HasPrefix(d, prefix) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// encodeRecord marshals one manifest line (with trailing newline).
func encodeRecord(r *record) ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest record: %w", err)
	}
	return append(data, '\n'), nil
}

// compactBytes renders the full replacement manifest for the live
// index: header plus one "add" per entry, in digest order.
func (m *manifest) compactBytes() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(manifestHeader)
	buf.WriteByte('\n')
	for _, e := range m.list("") {
		line, err := encodeRecord(&record{Op: "add", Entry: e})
		if err != nil {
			return nil, err
		}
		buf.Write(line)
	}
	return buf.Bytes(), nil
}

func truncateForError(line []byte) string {
	const max = 80
	if len(line) > max {
		return string(line[:max]) + "..."
	}
	return string(line)
}
