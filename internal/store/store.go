package store

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/pinball"
)

// Store is a content-addressed pinball store rooted at one directory:
//
//	root/
//	  manifest.db        append-only streamed-JSON index (see manifest.go)
//	  lock               flock target serialising cross-process mutation
//	  objects/<xx>/<digest>   chunk objects, named by their own content digest
//	  quarantine/<digest>.<unix>   damaged objects moved aside, never deleted by GC
//	  leases/<digest>.<pid>.<seq>  open-session markers GC must not collect
//	  spool/<digest>.pinball       validated whole-file copies for path-based loaders
//
// Pinballs are keyed by the FNV-1a 64 digest of their full file bytes —
// the same content hash the engine cache and circuit breaker key by —
// rendered as 16 hex digits. Files are split at pinball section-frame
// boundaries (journal v3 chunk frames are the natural unit) so chunks
// shared across recordings are stored once.
//
// Every read re-hashes every chunk before returning bytes
// (validation-on-read): a mismatch quarantines the damaged object and
// fails with a typed *CorruptObjectError; nothing corrupt is ever
// returned silently.
//
// The Store is safe for concurrent use in-process (s.mu) and across
// processes (flock on root/lock for mutation; the manifest is re-read
// under the lock so writers always append against fresh state).
type Store struct {
	root string

	mu  sync.Mutex
	man *manifest

	// In-process leases (Acquire) back the on-disk lease files so a GC in
	// this process is cheap and a GC in another process sees the files.
	leases   map[string]int
	leaseSeq uint64

	now func() time.Time
}

const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	leasesDir     = "leases"
	spoolDir      = "spool"
	manifestName  = "manifest.db"
	lockName      = "lock"
)

var digestRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// Digest hashes file bytes to the store's content key: FNV-1a 64 as 16
// hex digits. It matches the engine-cache/breaker content hash.
func Digest(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// DigestFile hashes a file on disk to its store key.
func DigestFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return Digest(data), nil
}

// ValidDigest reports whether s has the shape of a store digest.
func ValidDigest(s string) bool { return digestRE.MatchString(s) }

// Open creates (if needed) and opens a store rooted at dir. A torn
// manifest tail — the artifact of a crashed append — is recovered past
// silently here and reported by Verify; true mid-file corruption fails
// typed.
func Open(root string) (*Store, error) {
	for _, d := range []string{root, filepath.Join(root, objectsDir), filepath.Join(root, quarantineDir), filepath.Join(root, leasesDir), filepath.Join(root, spoolDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{root: root, leases: make(map[string]int), now: time.Now}
	man, err := loadManifest(s.manifestPath())
	if err != nil {
		return nil, err
	}
	s.man = man
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) manifestPath() string { return filepath.Join(s.root, manifestName) }

func (s *Store) objectPath(chunkDigest string) string {
	return filepath.Join(s.root, objectsDir, chunkDigest[:2], chunkDigest)
}

// SpoolPath returns where Materialize places the validated whole-file
// copy of digest. The file exists only after a successful Materialize.
func (s *Store) SpoolPath(digest string) string {
	return filepath.Join(s.root, spoolDir, digest+".pinball")
}

// lock takes the cross-process store lock (flock LOCK_EX on root/lock)
// and returns the unlock func. The in-process mutex must already be
// held.
func (s *Store) lock() (func(), error) {
	f, err := os.OpenFile(filepath.Join(s.root, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: flock: %v", ErrBusy, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}

// reload re-reads the manifest from disk; must be called under the
// store lock so appends from other processes are visible before we act.
func (s *Store) reload() error {
	man, err := loadManifest(s.manifestPath())
	if err != nil {
		return err
	}
	s.man = man
	return nil
}

// appendRecords appends manifest lines durably (single write + fsync),
// keeping the in-memory index in step. Caller holds the store lock.
func (s *Store) appendRecords(recs ...*record) error {
	var buf []byte
	for _, r := range recs {
		line, err := encodeRecord(r)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
	}
	f, err := os.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open manifest: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat manifest: %w", err)
	}
	if st.Size() == 0 {
		buf = append([]byte(manifestHeader+"\n"), buf...)
	}
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("store: append manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	for _, r := range recs {
		applyRecord(s.man, r)
	}
	return nil
}

// chunkSpans splits pinball file bytes at section-frame boundaries:
// the file header is chunk 0, each framed section (journal chunk
// frames included) is its own chunk. Files whose framing cannot be
// walked — legacy v0 or foreign bytes — become a single whole-file
// chunk, so dedup degrades gracefully instead of refusing.
func chunkSpans(data []byte) [][2]int64 {
	secs, err := pinball.SectionOffsets(data)
	if err != nil || len(secs) == 0 {
		return [][2]int64{{0, int64(len(data))}}
	}
	var spans [][2]int64
	if secs[0].Off > 0 {
		spans = append(spans, [2]int64{0, secs[0].Off})
	}
	for _, sec := range secs {
		spans = append(spans, [2]int64{sec.Off, sec.Off + sec.Len})
	}
	if end := secs[len(secs)-1].Off + secs[len(secs)-1].Len; end < int64(len(data)) {
		spans = append(spans, [2]int64{end, int64(len(data))})
	}
	return spans
}

// PutMeta carries the optional capture metadata recorded with an entry.
type PutMeta struct {
	Program string
	Kind    string
}

// PutResult reports what Put did.
type PutResult struct {
	Digest      string
	Size        int64
	Chunks      int
	NewChunks   int // chunks written (not already present from another recording)
	Existed     bool
	SharedBytes int64 // bytes deduplicated against existing objects
}

// Put stores pinball file bytes under their content digest, splitting
// at section-frame boundaries and writing only chunks the store does
// not already hold. Re-putting an existing digest is a cheap touch.
func (s *Store) Put(data []byte, meta PutMeta) (*PutResult, error) {
	if len(data) < 4 || string(data[:4]) != "DRPB" {
		return nil, fmt.Errorf("store: refusing to store non-pinball bytes: %w", pinball.ErrNotPinball)
	}
	digest := Digest(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return nil, err
	}
	defer unlock()
	if err := s.reload(); err != nil {
		return nil, err
	}
	now := s.now().Unix()
	if e, ok := s.man.entries[digest]; ok {
		if err := s.appendRecords(&record{Op: "touch", Digest: digest, Unix: now}); err != nil {
			return nil, err
		}
		return &PutResult{Digest: digest, Size: e.Size, Chunks: len(e.Chunks), Existed: true}, nil
	}
	spans := chunkSpans(data)
	entry := &Entry{
		Digest:    digest,
		Size:      int64(len(data)),
		Program:   meta.Program,
		Kind:      meta.Kind,
		AddedUnix: now,
		TouchUnix: now,
	}
	res := &PutResult{Digest: digest, Size: int64(len(data)), Chunks: len(spans)}
	for _, span := range spans {
		chunk := data[span[0]:span[1]]
		cd := Digest(chunk)
		entry.Chunks = append(entry.Chunks, Chunk{Digest: cd, Size: int64(len(chunk))})
		path := s.objectPath(cd)
		if _, err := os.Stat(path); err == nil {
			res.SharedBytes += int64(len(chunk))
			continue
		}
		if err := writeFileAtomic(path, chunk); err != nil {
			return nil, fmt.Errorf("store: write object %s: %w", cd, err)
		}
		res.NewChunks++
	}
	if err := s.appendRecords(&record{Op: "add", Entry: entry}); err != nil {
		return nil, err
	}
	return res, nil
}

// Get returns the validated file bytes for digest. Every chunk is
// re-hashed before assembly; a mismatched chunk is quarantined and the
// read fails with a *CorruptObjectError, a missing chunk fails typed
// without quarantine, and an assembled file that does not hash to the
// requested digest fails with ErrDigestMismatch. Successful reads
// record a touch (LRU-by-last-slice for GC).
func (s *Store) Get(digest string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return nil, err
	}
	defer unlock()
	if err := s.reload(); err != nil {
		return nil, err
	}
	e, ok := s.man.entries[digest]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	data := make([]byte, 0, e.Size)
	for _, c := range e.Chunks {
		chunk, err := s.readChunk(digest, c)
		if err != nil {
			return nil, err
		}
		data = append(data, chunk...)
	}
	if got := Digest(data); got != digest {
		return nil, fmt.Errorf("%w: entry %s assembles to %s (manifest lists wrong chunks)", ErrDigestMismatch, digest, got)
	}
	if err := s.appendRecords(&record{Op: "touch", Digest: digest, Unix: s.now().Unix()}); err != nil {
		return nil, err
	}
	return data, nil
}

// readChunk reads and validates one chunk object, quarantining on hash
// mismatch. Caller holds the store lock.
func (s *Store) readChunk(entryDigest string, c Chunk) ([]byte, error) {
	path := s.objectPath(c.Digest)
	chunk, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &CorruptObjectError{Digest: entryDigest, Chunk: c.Digest, Want: c.Digest, sentinel: ErrObjectMissing}
		}
		return nil, fmt.Errorf("store: read object %s: %w", c.Digest, err)
	}
	if got := Digest(chunk); got != c.Digest {
		q := s.quarantine(path, c.Digest)
		return nil, &CorruptObjectError{Digest: entryDigest, Chunk: c.Digest, Want: c.Digest, Got: got, Quarantined: q, sentinel: ErrObjectCorrupt}
	}
	return chunk, nil
}

// quarantine moves a damaged object aside (never deleting the evidence)
// and returns the destination path ("" if the move itself failed — the
// read still fails typed either way).
func (s *Store) quarantine(path, chunkDigest string) string {
	dst := filepath.Join(s.root, quarantineDir, fmt.Sprintf("%s.%d", chunkDigest, s.now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		return ""
	}
	return dst
}

// GetDamaged assembles whatever bytes survive for digest without
// validation — reading quarantined copies for chunks that were moved
// aside and skipping chunks that are gone entirely. It exists to feed
// pinball.SalvageBytes when no intact replica can be fetched; callers
// must treat the result as damaged. ok is false when not a single byte
// of the entry could be found.
func (s *Store) GetDamaged(digest string) (data []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return nil, false, err
	}
	defer unlock()
	if err := s.reload(); err != nil {
		return nil, false, err
	}
	e, found := s.man.entries[digest]
	if !found {
		return nil, false, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	any := false
	for _, c := range e.Chunks {
		chunk, rerr := os.ReadFile(s.objectPath(c.Digest))
		if rerr != nil {
			chunk = s.readQuarantined(c.Digest)
		}
		if chunk != nil {
			any = true
			data = append(data, chunk...)
		}
	}
	return data, any, nil
}

// readQuarantined returns the newest quarantined copy of a chunk, nil
// if none exists.
func (s *Store) readQuarantined(chunkDigest string) []byte {
	matches, _ := filepath.Glob(filepath.Join(s.root, quarantineDir, chunkDigest+".*"))
	if len(matches) == 0 {
		return nil
	}
	sort.Strings(matches)
	data, err := os.ReadFile(matches[len(matches)-1])
	if err != nil {
		return nil
	}
	return data
}

// Heal re-stores intact file bytes for an entry whose objects were
// damaged: the chunk objects are rewritten from the replica and the
// entry re-added. Used after a successful peer re-fetch or salvage.
// The bytes must hash to digest.
func (s *Store) Heal(digest string, data []byte) error {
	if Digest(data) != digest {
		return fmt.Errorf("%w: replica hashes to %s, want %s", ErrDigestMismatch, Digest(data), digest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.reload(); err != nil {
		return err
	}
	now := s.now().Unix()
	entry := &Entry{Digest: digest, Size: int64(len(data)), AddedUnix: now, TouchUnix: now}
	if old, ok := s.man.entries[digest]; ok {
		entry.Program, entry.Kind, entry.Pinned, entry.AddedUnix = old.Program, old.Kind, old.Pinned, old.AddedUnix
	}
	for _, span := range chunkSpans(data) {
		chunk := data[span[0]:span[1]]
		cd := Digest(chunk)
		entry.Chunks = append(entry.Chunks, Chunk{Digest: cd, Size: int64(len(chunk))})
		path := s.objectPath(cd)
		// Rewrite unconditionally: a present-but-damaged object is exactly
		// what we are healing.
		if err := writeFileAtomic(path, chunk); err != nil {
			return fmt.Errorf("store: heal object %s: %w", cd, err)
		}
	}
	return s.appendRecords(&record{Op: "add", Entry: entry})
}

// Materialize writes the validated whole file to the spool and returns
// its path, for loaders that need a file path rather than bytes. The
// spool copy is rewritten on every call (a stale or damaged spool file
// must never outlive the validated read that replaces it).
func (s *Store) Materialize(digest string) (string, error) {
	data, err := s.Get(digest)
	if err != nil {
		return "", err
	}
	path := s.SpoolPath(digest)
	if err := writeFileAtomic(path, data); err != nil {
		return "", fmt.Errorf("store: spool %s: %w", digest, err)
	}
	return path, nil
}

// SpoolSalvaged writes salvaged replacement bytes to digest's spool
// path and returns it. The bytes deliberately do NOT hash to digest —
// they are pinball.Salvage's best recovery of a damaged entry no peer
// could replace — so they never enter the object store; callers must
// annotate anything served from them as salvaged.
func (s *Store) SpoolSalvaged(digest string, data []byte) (string, error) {
	path := s.SpoolPath(digest)
	if err := writeFileAtomic(path, data); err != nil {
		return "", fmt.Errorf("store: spool salvaged %s: %w", digest, err)
	}
	return path, nil
}

// Info is the public view of one entry.
type Info struct {
	Digest    string `json:"digest"`
	Size      int64  `json:"size"`
	Chunks    int    `json:"chunks"`
	Program   string `json:"program,omitempty"`
	Kind      string `json:"kind,omitempty"`
	AddedUnix int64  `json:"added_unix"`
	TouchUnix int64  `json:"touch_unix"`
	Pinned    bool   `json:"pinned"`
	Leased    bool   `json:"leased"`
}

func (s *Store) infoLocked(e *Entry) Info {
	return Info{
		Digest: e.Digest, Size: e.Size, Chunks: len(e.Chunks),
		Program: e.Program, Kind: e.Kind,
		AddedUnix: e.AddedUnix, TouchUnix: e.TouchUnix,
		Pinned: e.Pinned, Leased: s.leasedLocked(e.Digest),
	}
}

// Stat returns the entry for digest, or ErrNotFound.
func (s *Store) Stat(digest string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.reload(); err != nil {
		return Info{}, err
	}
	e, ok := s.man.entries[digest]
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	return s.infoLocked(e), nil
}

// List returns entries whose digest starts with prefix, digest-ordered.
// An empty prefix lists everything.
func (s *Store) List(prefix string) ([]Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.reload(); err != nil {
		return nil, err
	}
	var out []Info
	for _, e := range s.man.list(prefix) {
		out = append(out, s.infoLocked(e))
	}
	return out, nil
}

// Resolve expands a digest prefix to the unique matching digest.
func (s *Store) Resolve(prefix string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.reload(); err != nil {
		return "", err
	}
	matches := s.man.list(prefix)
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("%w: no digest with prefix %q", ErrNotFound, prefix)
	case 1:
		return matches[0].Digest, nil
	default:
		return "", fmt.Errorf("store: prefix %q is ambiguous (%d matches)", prefix, len(matches))
	}
}

// Pin marks an entry exempt from GC; Unpin reverses it.
func (s *Store) Pin(digest string) error   { return s.setPin(digest, "pin") }
func (s *Store) Unpin(digest string) error { return s.setPin(digest, "unpin") }

func (s *Store) setPin(digest, op string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.reload(); err != nil {
		return err
	}
	if _, ok := s.man.entries[digest]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	return s.appendRecords(&record{Op: op, Digest: digest})
}

// Acquire takes a lease on digest for the duration of an open session:
// GC will not collect a leased entry, in this process (lease map) or
// any other (lease file carrying our pid, ignored once the pid is
// dead). Release with the returned func.
func (s *Store) Acquire(digest string) (release func(), err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Hold the cross-process lock so the lease file cannot land in the
	// middle of another process's GC victim selection.
	unlock, err := s.lock()
	if err != nil {
		return nil, err
	}
	defer unlock()
	if err := s.reload(); err != nil {
		return nil, err
	}
	if _, ok := s.man.entries[digest]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	s.leaseSeq++
	name := fmt.Sprintf("%s.%d.%d", digest, os.Getpid(), s.leaseSeq)
	path := filepath.Join(s.root, leasesDir, name)
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		return nil, fmt.Errorf("store: write lease: %w", err)
	}
	s.leases[digest]++
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.leases[digest]--; s.leases[digest] <= 0 {
				delete(s.leases, digest)
			}
			os.Remove(path)
		})
	}, nil
}

// leasedLocked reports whether digest has a live lease: in-process, or
// an on-disk lease file whose pid is still alive. Lease files from dead
// pids are stale (crashed session) and do not block GC.
func (s *Store) leasedLocked(digest string) bool {
	if s.leases[digest] > 0 {
		return true
	}
	matches, _ := filepath.Glob(filepath.Join(s.root, leasesDir, digest+".*"))
	for _, m := range matches {
		parts := strings.Split(filepath.Base(m), ".")
		if len(parts) < 3 {
			continue
		}
		pid, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		if pidAlive(pid) {
			return true
		}
	}
	return false
}

// pidAlive reports whether a process with the given pid exists.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	return syscall.Kill(pid, 0) == nil || syscall.Kill(pid, 0) == syscall.EPERM
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so readers never observe a partial object.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
