package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// GCPolicy selects what GC may reclaim. Pinned entries and entries with
// a live lease (open session) are never collected regardless of policy.
type GCPolicy struct {
	// KeepLast, when > 0, keeps at most the KeepLast most-recently-touched
	// entries (last slice wins); older unpinned, unleased entries are
	// evicted.
	KeepLast int
	// MaxBytes, when > 0, evicts least-recently-touched unpinned,
	// unleased entries until the live entries' summed size fits.
	MaxBytes int64
	// DryRun computes the report without writing anything.
	DryRun bool
}

// GCReport describes one GC pass.
type GCReport struct {
	Evicted        []string `json:"evicted,omitempty"` // entry digests tombstoned
	KeptPinned     int      `json:"kept_pinned"`
	KeptLeased     int      `json:"kept_leased"`
	DeletedObjects int      `json:"deleted_objects"`
	ReclaimedBytes int64    `json:"reclaimed_bytes"`
	OrphansSwept   int      `json:"orphans_swept"` // object files no live entry references
	StaleLeases    int      `json:"stale_leases"`  // lease files from dead pids removed
	DryRun         bool     `json:"dry_run,omitempty"`
}

// GC reclaims store space under policy. It is crash-safe against
// concurrent writers: the whole pass holds the cross-process store
// lock, evictions are made durable as manifest tombstones (fsync)
// before any object file is unlinked, and the manifest is then
// compacted by atomic rename. A crash at any point leaves either live
// entries with all their objects, or tombstoned entries whose objects
// are orphans — which the next GC sweeps.
func (s *Store) GC(policy GCPolicy) (*GCReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return nil, err
	}
	defer unlock()
	if err := s.reload(); err != nil {
		return nil, err
	}
	rep := &GCReport{DryRun: policy.DryRun}

	// Partition live entries into collectable and protected.
	all := s.man.list("")
	var candidates []*Entry
	for _, e := range all {
		switch {
		case e.Pinned:
			rep.KeptPinned++
		case s.leasedLocked(e.Digest):
			rep.KeptLeased++
		default:
			candidates = append(candidates, e)
		}
	}
	// LRU-by-last-slice: oldest touch first.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].TouchUnix != candidates[j].TouchUnix {
			return candidates[i].TouchUnix < candidates[j].TouchUnix
		}
		return candidates[i].Digest < candidates[j].Digest
	})

	evict := map[string]bool{}
	if policy.KeepLast > 0 && len(candidates) > policy.KeepLast {
		for _, e := range candidates[:len(candidates)-policy.KeepLast] {
			evict[e.Digest] = true
		}
	}
	if policy.MaxBytes > 0 {
		total := int64(0)
		for _, e := range all {
			if !evict[e.Digest] {
				total += e.Size
			}
		}
		for _, e := range candidates {
			if total <= policy.MaxBytes {
				break
			}
			if !evict[e.Digest] {
				evict[e.Digest] = true
				total -= e.Size
			}
		}
	}
	evictedChunks := map[string]bool{}
	for _, e := range candidates {
		if evict[e.Digest] {
			rep.Evicted = append(rep.Evicted, e.Digest)
			for _, c := range e.Chunks {
				evictedChunks[c.Digest] = true
			}
		}
	}
	sort.Strings(rep.Evicted)

	if policy.DryRun {
		return rep, nil
	}

	// 1. Tombstones first, durably — from here the entries are dead even
	//    if we crash before touching a single object file.
	if len(rep.Evicted) > 0 {
		recs := make([]*record, 0, len(rep.Evicted))
		for _, d := range rep.Evicted {
			recs = append(recs, &record{Op: "del", Digest: d})
		}
		if err := s.appendRecords(recs...); err != nil {
			return nil, err
		}
	}

	// 2. Compact the manifest log (header + one add per live entry),
	//    atomic rename into place.
	compact, err := s.man.compactBytes()
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(s.manifestPath(), compact); err != nil {
		return nil, fmt.Errorf("store: compact manifest: %w", err)
	}

	// 3. Object sweep: unlink every object no live entry references —
	//    both this pass's evictions and orphans from earlier crashes.
	referenced := map[string]bool{}
	for _, e := range s.man.entries {
		for _, c := range e.Chunks {
			referenced[c.Digest] = true
		}
	}
	objRoot := filepath.Join(s.root, objectsDir)
	err = filepath.Walk(objRoot, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || strings.HasPrefix(fi.Name(), ".tmp-") {
			return err
		}
		if !referenced[fi.Name()] {
			if rmErr := os.Remove(path); rmErr == nil {
				rep.DeletedObjects++
				rep.ReclaimedBytes += fi.Size()
				if !evictedChunks[fi.Name()] {
					rep.OrphansSwept++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: object sweep: %w", err)
	}

	// 4. Spool sweep: whole-file copies of dead entries.
	spools, _ := filepath.Glob(filepath.Join(s.root, spoolDir, "*.pinball"))
	for _, p := range spools {
		d := strings.TrimSuffix(filepath.Base(p), ".pinball")
		if _, live := s.man.entries[d]; !live && !s.leasedLocked(d) {
			os.Remove(p)
		}
	}

	// 5. Stale lease sweep: lease files whose pid is dead.
	leases, _ := filepath.Glob(filepath.Join(s.root, leasesDir, "*"))
	for _, p := range leases {
		parts := strings.Split(filepath.Base(p), ".")
		if len(parts) < 3 {
			continue
		}
		pid, perr := strconv.Atoi(parts[1])
		if perr != nil || pidAlive(pid) {
			continue
		}
		if os.Remove(p) == nil {
			rep.StaleLeases++
		}
	}
	return rep, nil
}

// VerifyReport describes a full store audit.
type VerifyReport struct {
	Entries       int                   `json:"entries"`
	ChunksChecked int                   `json:"chunks_checked"`
	Corrupt       []*CorruptObjectError `json:"-"`
	CorruptCount  int                   `json:"corrupt"`
	MissingCount  int                   `json:"missing"`
	Mismatched    []string              `json:"mismatched,omitempty"` // entries whose assembly hashes wrong
	Orphans       int                   `json:"orphans"`
	Torn          bool                  `json:"torn"`
	TornOffset    int64                 `json:"torn_offset,omitempty"`
}

// Verify audits the whole store: every chunk of every entry is
// re-hashed (damaged objects are quarantined exactly as a read would),
// entry assemblies are checked against their digests, orphan objects
// are counted, and a crash-torn manifest tail is surfaced typed. The
// returned error is nil only for a fully clean store; otherwise it
// wraps the most severe finding (ErrObjectCorrupt > ErrObjectMissing >
// ErrDigestMismatch > ErrManifestTorn).
func (s *Store) Verify() (*VerifyReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return nil, err
	}
	defer unlock()
	if err := s.reload(); err != nil {
		return nil, err
	}
	rep := &VerifyReport{Torn: s.man.torn, TornOffset: s.man.tornOff}
	referenced := map[string]bool{}
	for _, e := range s.man.list("") {
		rep.Entries++
		h := fnv.New64a()
		broken := false
		for _, c := range e.Chunks {
			referenced[c.Digest] = true
			rep.ChunksChecked++
			chunk, cerr := s.readChunk(e.Digest, c)
			if cerr != nil {
				broken = true
				var coe *CorruptObjectError
				if errors.As(cerr, &coe) {
					rep.Corrupt = append(rep.Corrupt, coe)
					if errors.Is(cerr, ErrObjectMissing) {
						rep.MissingCount++
					} else {
						rep.CorruptCount++
					}
				} else {
					return nil, cerr
				}
				continue
			}
			h.Write(chunk)
		}
		if !broken {
			if got := fmt.Sprintf("%016x", h.Sum64()); got != e.Digest {
				rep.Mismatched = append(rep.Mismatched, e.Digest)
			}
		}
	}
	filepath.Walk(filepath.Join(s.root, objectsDir), func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || strings.HasPrefix(fi.Name(), ".tmp-") {
			return nil
		}
		if !referenced[fi.Name()] {
			rep.Orphans++
		}
		return nil
	})
	switch {
	case rep.CorruptCount > 0:
		return rep, fmt.Errorf("%w: %d damaged chunk object(s) quarantined", ErrObjectCorrupt, rep.CorruptCount)
	case rep.MissingCount > 0:
		return rep, fmt.Errorf("%w: %d dangling chunk reference(s)", ErrObjectMissing, rep.MissingCount)
	case len(rep.Mismatched) > 0:
		return rep, fmt.Errorf("%w: %d entr(ies) assemble to the wrong digest", ErrDigestMismatch, len(rep.Mismatched))
	case rep.Torn:
		return rep, fmt.Errorf("%w: recovered tail at byte offset %d", ErrManifestTorn, rep.TornOffset)
	}
	return rep, nil
}
