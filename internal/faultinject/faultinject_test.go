package faultinject

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/vm"
)

// The detection workload keeps all three tamper surfaces live throughout
// the region: a shared counter guarded by a lock (so schedule tampering
// changes observed values), a read() in every loop iteration (so syscall
// tampering changes program input), and stack-held locals (so initial
// state tampering shifts effective addresses).
const detectSrc = `
int counter;
int mtx;
int results[4];
int worker(int id) {
	int i;
	int v;
	int local = 0;
	for (i = 0; i < 40; i++) {
		v = read();
		lock(&mtx);
		counter = counter + v + 1;
		unlock(&mtx);
		local = local + counter;
	}
	results[id] = local;
	return 0;
}
int main() {
	int t1 = spawn(worker, 1);
	int t2 = spawn(worker, 2);
	worker(0);
	join(t1);
	join(t2);
	write(counter);
	write(results[0]);
	write(results[1]);
	write(results[2]);
	return 0;
}`

func compileT(t testing.TB) *isa.Program {
	t.Helper()
	p, err := cc.CompileSource("detect.c", detectSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func logConfig() pinplay.LogConfig {
	input := make([]int64, 130)
	for i := range input {
		input[i] = int64(i*3 + 1)
	}
	return pinplay.LogConfig{
		Seed:            7,
		MeanQuantum:     23,
		Input:           input,
		CheckpointEvery: 8,
	}
}

// boundedOpts caps every replay in the matrix: a tampered pinball must
// terminate with an error, never hang.
func boundedOpts() pinplay.ReplayOptions {
	return pinplay.ReplayOptions{Limits: vm.Timeout(5_000_000, 2*time.Second)}
}

// idxRange finds the per-thread dynamic-index range a thread covers in a
// region replay, for building exclusions.
type idxRange struct {
	vm.NopTracer
	tid      int
	min, max int64
	seen     bool
}

func (r *idxRange) OnInstr(ev *vm.InstrEvent) {
	if ev.Tid != r.tid {
		return
	}
	if !r.seen || ev.Idx < r.min {
		r.min = ev.Idx
	}
	if !r.seen || ev.Idx > r.max {
		r.max = ev.Idx
	}
	r.seen = true
}

// makePinballs logs one pinball of each kind: whole, region, and a slice
// relogged from the region.
func makePinballs(t *testing.T) map[pinball.Kind]*pinball.Pinball {
	t.Helper()
	prog := compileT(t)
	cfg := logConfig()

	whole, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log whole: %v", err)
	}
	region, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{SkipMain: 150, LengthMain: 600})
	if err != nil {
		t.Fatalf("log region: %v", err)
	}

	r := &idxRange{tid: 1}
	if _, _, err := pinplay.ReplayWith(prog, region, pinplay.ReplayOptions{Tracer: r}); err != nil {
		t.Fatalf("scout replay: %v", err)
	}
	if !r.seen || r.max-r.min < 64 {
		t.Fatalf("thread 1 range too small for an exclusion: [%d, %d]", r.min, r.max)
	}
	excl := []pinball.Exclusion{{Tid: 1, FromIdx: r.min + 8, ToIdx: r.min + 24}}
	slice, err := pinplay.RelogWith(prog, region, excl, pinplay.ReplayOptions{})
	if err != nil {
		t.Fatalf("relog: %v", err)
	}
	if len(slice.Injections) == 0 {
		t.Fatal("slice pinball has no injections")
	}

	pbs := map[pinball.Kind]*pinball.Pinball{
		pinball.KindWhole:  whole,
		pinball.KindRegion: region,
		pinball.KindSlice:  slice,
	}
	for kind, pb := range pbs {
		if len(pb.Checkpoints) == 0 {
			t.Fatalf("%v pinball recorded no checkpoints", kind)
		}
		if _, rep, err := pinplay.ReplayWith(prog, pb, boundedOpts()); err != nil {
			t.Fatalf("clean %v replay failed: %v", kind, err)
		} else if rep.Checked == 0 {
			t.Fatalf("clean %v replay verified no checkpoints", kind)
		}
	}
	return pbs
}

// TestFileCorruptorsDetected proves every byte-level corruptor, applied
// to every pinball kind, is rejected by Decode with its declared typed
// error — no corrupted file survives loading.
func TestFileCorruptorsDetected(t *testing.T) {
	pbs := makePinballs(t)
	for kind, pb := range pbs {
		data, err := pb.EncodeBytes()
		if err != nil {
			t.Fatalf("encode %v: %v", kind, err)
		}
		for _, c := range FileCorruptors() {
			bad, ok := c.Apply(data)
			if !ok {
				t.Errorf("%v/%s: corruptor not applicable", kind, c.Name)
				continue
			}
			_, err := pinball.Decode(bad)
			if err == nil {
				t.Errorf("%v/%s: corrupted pinball decoded cleanly", kind, c.Name)
				continue
			}
			if !errors.Is(err, c.Want) {
				t.Errorf("%v/%s: error %v, want %v", kind, c.Name, err, c.Want)
			}
		}
	}
}

// TestPinballCorruptorsDetected proves every semantic corruptor, applied
// to every applicable pinball kind, is caught: either Validate rejects
// the tampered pinball at load time, or the replay fails (divergence
// checkpoint, schedule mismatch or machine fault) — and always within
// the execution bounds. Zero silent garbage replays.
func TestPinballCorruptorsDetected(t *testing.T) {
	prog := compileT(t)
	pbs := makePinballs(t)
	for kind, pb := range pbs {
		for _, c := range PinballCorruptors() {
			if c.SliceOnly && kind != pinball.KindSlice {
				continue
			}
			bad, err := Clone(pb)
			if err != nil {
				t.Fatalf("%v/%s: clone: %v", kind, c.Name, err)
			}
			if !c.Apply(bad) {
				t.Errorf("%v/%s: corruptor not applicable", kind, c.Name)
				continue
			}
			if err := bad.Validate(); err != nil {
				// Layer 1: structural validation at load time.
				if !errors.Is(err, pinball.ErrCorrupt) {
					t.Errorf("%v/%s: Validate error %v, want ErrCorrupt", kind, c.Name, err)
				}
				continue
			}
			// Layer 2: replay-time detection, bounded so tampering can
			// never hang the replayer.
			start := time.Now()
			_, _, err = pinplay.ReplayWith(prog, bad, boundedOpts())
			if err == nil {
				t.Errorf("%v/%s: tampered pinball replayed cleanly", kind, c.Name)
				continue
			}
			if !errors.Is(err, pinplay.ErrReplay) {
				t.Errorf("%v/%s: error %v does not wrap ErrReplay", kind, c.Name, err)
			}
			if el := time.Since(start); el > 10*time.Second {
				t.Errorf("%v/%s: detection took %v", kind, c.Name, el)
			}
		}
	}
}

// TestDegradedModeSurveysAllWindows checks the log-and-continue policy:
// with two tampered checkpoint hashes, a degraded replay runs to the end
// of the region and reports both divergent windows instead of aborting
// at the first.
func TestDegradedModeSurveysAllWindows(t *testing.T) {
	prog := compileT(t)
	pbs := makePinballs(t)
	pb, err := Clone(pbs[pinball.KindRegion])
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	if len(pb.Checkpoints) < 4 {
		t.Fatalf("need >=4 checkpoints, have %d", len(pb.Checkpoints))
	}
	pb.Checkpoints[1].Hash ^= 0xBAD
	pb.Checkpoints[len(pb.Checkpoints)-1].Hash ^= 0xBAD

	var seen int
	opts := boundedOpts()
	opts.Degraded = true
	opts.OnDivergence = func(pinplay.Divergence) { seen++ }
	_, rep, err := pinplay.ReplayWith(prog, pb, opts)
	if err != nil {
		t.Fatalf("degraded replay aborted: %v", err)
	}
	if len(rep.Divergences) != 2 || seen != 2 {
		t.Fatalf("divergences = %d (callback %d), want 2", len(rep.Divergences), seen)
	}
	if rep.Executed != pb.TotalQuantumInstrs() {
		t.Fatalf("degraded replay stopped early: %d of %d", rep.Executed, pb.TotalQuantumInstrs())
	}

	// The same tampering under the default policy aborts with the window.
	_, _, err = pinplay.ReplayWith(prog, pb, boundedOpts())
	var de *pinplay.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("fail-fast replay error = %v, want DivergenceError", err)
	}
	if de.Div.Window() == "" {
		t.Fatal("divergence has no window")
	}
}

// TestNoVerifySkipsCheckpoints checks the escape hatch: a tampered
// checkpoint is ignored when verification is disabled.
func TestNoVerifySkipsCheckpoints(t *testing.T) {
	prog := compileT(t)
	pbs := makePinballs(t)
	pb, err := Clone(pbs[pinball.KindWhole])
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	pb.Checkpoints[0].Hash ^= 1
	opts := boundedOpts()
	opts.NoVerify = true
	if _, rep, err := pinplay.ReplayWith(prog, pb, opts); err != nil {
		t.Fatalf("no-verify replay: %v", err)
	} else if rep.Checked != 0 {
		t.Fatalf("no-verify replay checked %d checkpoints", rep.Checked)
	}
}

// TestLimitsBoundReplay checks that execution limits convert a
// too-long replay into a typed, classifiable error.
func TestLimitsBoundReplay(t *testing.T) {
	prog := compileT(t)
	pbs := makePinballs(t)
	pb := pbs[pinball.KindWhole]

	opts := pinplay.ReplayOptions{Limits: vm.Limits{Steps: 100}}
	_, _, err := pinplay.ReplayWith(prog, pb, opts)
	if !errors.Is(err, pinplay.ErrReplay) {
		t.Fatalf("budgeted replay error = %v, want ErrReplay", err)
	}

	opts = pinplay.ReplayOptions{Limits: vm.Limits{Deadline: time.Now().Add(-time.Second)}}
	_, _, err = pinplay.ReplayWith(prog, pb, opts)
	if !errors.Is(err, pinplay.ErrReplay) {
		t.Fatalf("expired-deadline replay error = %v, want ErrReplay", err)
	}
}
