package faultinject

import (
	"encoding/json"
	"errors"
	"os"
	"testing"

	"repro/internal/pinball"
	"repro/internal/store"
)

// The store chaos matrix drives every StoreCorruptor against a freshly
// populated content-addressed store and asserts the validation-on-read
// contract from three angles:
//
//   - Open never fails for recoverable damage (a torn manifest tail is
//     recovered, not fatal);
//   - Verify reports exactly the declared typed sentinel;
//   - Get for an affected digest either returns the correct bytes or a
//     typed error — never silently wrong content.
//
// With DRDEBUG_STORE_GRID set, the per-cell outcomes are written as a
// JSON grid artifact for CI upload.

// storeGridCell is one corruptor outcome in the store-grid artifact.
type storeGridCell struct {
	Corruptor string `json:"corruptor"`
	Detail    string `json:"detail"`
	Want      string `json:"want"`
	VerifyErr string `json:"verify_err"`
	Typed     bool   `json:"typed"`
	GetTyped  bool   `json:"get_typed"` // reads failed typed (or served correct bytes)
}

// populateStore fills a fresh store with every pinball kind the format
// suite produces, and returns the store plus the stored digests and the
// original bytes by digest.
func populateStore(t *testing.T, root string) (*store.Store, map[string][]byte) {
	t.Helper()
	s, err := store.Open(root)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	want := map[string][]byte{}
	for kind, pb := range makePinballs(t) {
		data, err := pb.EncodeBytes()
		if err != nil {
			t.Fatalf("encode %v: %v", kind, err)
		}
		res, err := s.Put(data, store.PutMeta{Kind: string(kind)})
		if err != nil {
			t.Fatalf("put %v: %v", kind, err)
		}
		want[res.Digest] = data
	}
	if len(want) == 0 {
		t.Fatal("fixture stored nothing")
	}
	return s, want
}

// TestStoreCorruptorMatrix sweeps the store damage suite: every
// corruptor must be applicable, every resulting store must still open,
// and the damage must surface as exactly the declared typed sentinel —
// from Verify and from ordinary reads.
func TestStoreCorruptorMatrix(t *testing.T) {
	var grid []storeGridCell
	for _, c := range StoreCorruptors() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			root := t.TempDir()
			_, want := populateStore(t, root)
			detail, ok := c.Apply(root)
			if !ok {
				t.Fatalf("%s: corruptor not applicable to a populated store", c.Name)
			}

			// Damage must never make the store unopenable.
			s, err := store.Open(root)
			if err != nil {
				t.Fatalf("%s: store does not open after damage: %v", c.Name, err)
			}
			rep, verr := s.Verify()
			if verr == nil {
				t.Fatalf("%s: Verify reports a clean store (report %+v)", c.Name, rep)
			}
			typed := errors.Is(verr, c.Want)
			if !typed {
				t.Errorf("%s: Verify error %v, want %v", c.Name, verr, c.Want)
			}

			// Reads of every stored digest: correct bytes or a typed error.
			getTyped := true
			for digest, orig := range want {
				got, gerr := s.Get(digest)
				if gerr == nil {
					if string(got) != string(orig) {
						getTyped = false
						t.Errorf("%s: Get(%s) served wrong bytes silently", c.Name, digest)
					}
					continue
				}
				if !storeTypedErr(gerr) {
					getTyped = false
					t.Errorf("%s: Get(%s) error is untyped: %v", c.Name, digest, gerr)
				}
			}
			grid = append(grid, storeGridCell{
				Corruptor: c.Name, Detail: detail, Want: c.Want.Error(),
				VerifyErr: verr.Error(), Typed: typed, GetTyped: getTyped,
			})
		})
	}
	writeStoreGrid(t, grid)
}

// storeTypedErr reports whether err wraps one of the store's typed
// sentinels — the read contract for damaged stores.
func storeTypedErr(err error) bool {
	return errors.Is(err, store.ErrObjectCorrupt) ||
		errors.Is(err, store.ErrObjectMissing) ||
		errors.Is(err, store.ErrDigestMismatch) ||
		errors.Is(err, store.ErrManifestCorrupt) ||
		errors.Is(err, store.ErrManifestTorn) ||
		errors.Is(err, store.ErrNotFound)
}

// writeStoreGrid writes the matrix outcomes as a JSON artifact when
// DRDEBUG_STORE_GRID names a path (CI uploads it for inspection).
func writeStoreGrid(t *testing.T, grid []storeGridCell) {
	t.Helper()
	path := os.Getenv("DRDEBUG_STORE_GRID")
	if path == "" || len(grid) == 0 {
		return
	}
	data, err := json.MarshalIndent(grid, "", "  ")
	if err != nil {
		t.Fatalf("marshal store grid: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write store grid: %v", err)
	}
	t.Logf("store grid written to %s (%d cells)", path, len(grid))
}

// TestStoreBitFlipHealable checks the quarantine→salvage ladder end to
// end for the bit-flip corruptor: after validation-on-read quarantines
// the damaged chunk, GetDamaged must reassemble best-effort bytes from
// the quarantined copy, and those bytes must still salvage into a
// loadable pinball — the store never strands a recording it could
// partially save.
func TestStoreBitFlipHealable(t *testing.T) {
	root := t.TempDir()
	s, want := populateStore(t, root)
	var bitFlip StoreCorruptor
	for _, c := range StoreCorruptors() {
		if c.Name == "bit-flip-chunk" {
			bitFlip = c
		}
	}
	if _, ok := bitFlip.Apply(root); !ok {
		t.Fatal("bit-flip corruptor not applicable")
	}

	// Find the entry the flipped chunk belonged to: the one whose Get
	// now fails typed.
	var victim string
	for digest := range want {
		if _, err := s.Get(digest); err != nil {
			if !errors.Is(err, store.ErrObjectCorrupt) {
				t.Fatalf("Get(%s) = %v, want ErrObjectCorrupt", digest, err)
			}
			victim = digest
		}
	}
	if victim == "" {
		t.Fatal("no entry was damaged by the bit flip")
	}

	// The damaged object was quarantined, so best-effort assembly still
	// sees its (rotten) bytes; the whole must NOT hash to the digest.
	data, ok, err := s.GetDamaged(victim)
	if err != nil || !ok {
		t.Fatalf("GetDamaged(%s) = ok=%v err=%v", victim, ok, err)
	}
	if store.Digest(data) == victim {
		t.Fatal("best-effort assembly hashes clean — the corruptor flipped nothing")
	}
	// A one-bit flip in a checksummed section must be caught typed by
	// the pinball layer, and salvage must recover the intact sections.
	if _, err := pinball.Decode(data); err == nil {
		t.Fatal("bit-flipped pinball decoded cleanly")
	} else if !typedPinballErr(err) {
		t.Fatalf("decode error is untyped: %v", err)
	}
	if _, _, err := pinball.SalvageBytes(data); err != nil && !errors.Is(err, pinball.ErrUnsalvageable) {
		t.Fatalf("salvage error is untyped: %v", err)
	}

	// Healing with the original bytes fully restores the entry.
	if err := s.Heal(victim, want[victim]); err != nil {
		t.Fatalf("heal: %v", err)
	}
	got, err := s.Get(victim)
	if err != nil {
		t.Fatalf("get after heal: %v", err)
	}
	if string(got) != string(want[victim]) {
		t.Fatal("healed entry differs from the original bytes")
	}
}
