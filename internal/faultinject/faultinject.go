// Package faultinject provides deterministic pinball corruptors for
// testing the robustness layers around record/replay: the framed,
// checksummed pinball format (which must reject corrupted files with
// typed errors) and the replay divergence checkpoints (which must catch
// semantic tampering that survives decoding). Every corruptor is pure
// and deterministic — same input bytes or pinball, same corruption — so
// the detection matrix in the tests is reproducible.
//
// Two corruptor families mirror the two defence layers:
//
//   - FileCorruptors mutate encoded pinball bytes (bit flips,
//     truncations, dropped sections, checksum and header tampering).
//     pinball.Decode must reject each with the declared typed error.
//   - PinballCorruptors mutate a decoded Pinball in memory (schedule
//     shifts, syscall-result tampering, initial-state edits). These
//     survive re-encoding; either pinball.Validate rejects them or a
//     replay divergence checkpoint must fire.
package faultinject

import (
	"encoding/binary"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

// FileCorruptor deterministically corrupts the encoded (framed) bytes of
// a pinball file.
type FileCorruptor struct {
	Name string
	// Want is the typed pinball error Decode must return for the
	// corrupted bytes (matched with errors.Is).
	Want error
	// Apply returns a corrupted copy of data. ok is false when the
	// corruptor does not apply to this file (it never mutates data).
	Apply func(data []byte) (out []byte, ok bool)
}

// headerLen is the framed header: magic + version + kind + section count.
const headerLen = 4 + 1 + 1 + 1

// sectionHeaderLen mirrors the framing: id (1B) + length (8B) + CRC (4B).
const sectionHeaderLen = 1 + 8 + 4

// clone copies data so corruptors never alias the caller's bytes.
func clone(data []byte) []byte {
	return append([]byte(nil), data...)
}

// sections parses the section table, returning nil when the bytes are
// not a well-formed framed pinball (corruptors needing the table then
// report not-applicable).
func sections(data []byte) []pinball.SectionInfo {
	secs, err := pinball.SectionOffsets(data)
	if err != nil {
		return nil
	}
	return secs
}

// findSection returns the section with the given id, or ok=false.
func findSection(data []byte, id byte) (pinball.SectionInfo, bool) {
	for _, s := range sections(data) {
		if s.ID == id {
			return s, true
		}
	}
	return pinball.SectionInfo{}, false
}

// FileCorruptors returns the full byte-level corruptor suite. Section id
// 3 (the schedule) is used where a specific section is needed: it is
// mandatory, so the corruptors apply to every pinball kind.
func FileCorruptors() []FileCorruptor {
	const secSchedule = byte(3)
	return []FileCorruptor{
		{
			Name: "flip-magic",
			Want: pinball.ErrNotPinball,
			Apply: func(data []byte) ([]byte, bool) {
				if len(data) == 0 {
					return nil, false
				}
				out := clone(data)
				out[0] ^= 0xFF
				return out, true
			},
		},
		{
			Name: "bump-version",
			Want: pinball.ErrVersionSkew,
			Apply: func(data []byte) ([]byte, bool) {
				if len(data) < 5 {
					return nil, false
				}
				out := clone(data)
				out[4] = 0x7F
				return out, true
			},
		},
		{
			Name: "swap-kind-byte",
			Want: pinball.ErrCorrupt,
			Apply: func(data []byte) ([]byte, bool) {
				if len(data) < headerLen {
					return nil, false
				}
				out := clone(data)
				if out[5] == 'S' {
					out[5] = 'R'
				} else {
					out[5] = 'S'
				}
				return out, true
			},
		},
		{
			Name: "flip-payload-bit",
			Want: pinball.ErrCorrupt,
			Apply: func(data []byte) ([]byte, bool) {
				s, ok := findSection(data, secSchedule)
				if !ok || s.Len <= sectionHeaderLen {
					return nil, false
				}
				out := clone(data)
				out[s.Off+sectionHeaderLen+(s.Len-sectionHeaderLen)/2] ^= 0x10
				return out, true
			},
		},
		{
			Name: "zero-crc",
			Want: pinball.ErrCorrupt,
			Apply: func(data []byte) ([]byte, bool) {
				s, ok := findSection(data, secSchedule)
				if !ok {
					return nil, false
				}
				out := clone(data)
				crc := out[s.Off+9 : s.Off+13]
				if binary.BigEndian.Uint32(crc) == 0 {
					binary.BigEndian.PutUint32(crc, 0xFFFFFFFF)
				} else {
					binary.BigEndian.PutUint32(crc, 0)
				}
				return out, true
			},
		},
		{
			Name: "drop-section",
			Want: pinball.ErrCorrupt,
			Apply: func(data []byte) ([]byte, bool) {
				s, ok := findSection(data, secSchedule)
				if !ok {
					return nil, false
				}
				out := make([]byte, 0, int64(len(data))-s.Len)
				out = append(out, data[:s.Off]...)
				out = append(out, data[s.Off+s.Len:]...)
				out[6]-- // section count
				return out, true
			},
		},
		{
			Name: "truncate-tail",
			Want: pinball.ErrTruncated,
			Apply: func(data []byte) ([]byte, bool) {
				if len(data) < headerLen+16 {
					return nil, false
				}
				return clone(data[:len(data)-16]), true
			},
		},
		{
			Name: "truncate-half",
			Want: pinball.ErrTruncated,
			Apply: func(data []byte) ([]byte, bool) {
				if len(data) < headerLen*2 {
					return nil, false
				}
				return clone(data[:len(data)/2]), true
			},
		},
		{
			Name: "truncate-header",
			Want: pinball.ErrTruncated,
			Apply: func(data []byte) ([]byte, bool) {
				if len(data) < 5 {
					return nil, false
				}
				return clone(data[:5]), true
			},
		},
		{
			Name: "trailing-garbage",
			Want: pinball.ErrCorrupt,
			Apply: func(data []byte) ([]byte, bool) {
				out := clone(data)
				return append(out, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55), true
			},
		},
	}
}

// PinballCorruptor deterministically tampers with a decoded pinball —
// semantic corruption that byte-level checksums cannot see. Detection is
// two-layered: pinball.Validate may reject the result outright;
// otherwise a replay must fail (divergence checkpoint, schedule
// mismatch, or a machine fault).
type PinballCorruptor struct {
	Name string
	// SliceOnly marks corruptors that only apply to slice pinballs.
	SliceOnly bool
	// Apply mutates pb in place. ok is false when the corruptor does not
	// apply to this pinball.
	Apply func(pb *pinball.Pinball) bool
}

// Clone deep-copies a pinball through its encoded form, so corruptors
// can mutate freely without touching the original.
func Clone(pb *pinball.Pinball) (*pinball.Pinball, error) {
	data, err := pb.EncodeBytes()
	if err != nil {
		return nil, err
	}
	return pinball.Decode(data)
}

// PinballCorruptors returns the semantic tampering suite.
func PinballCorruptors() []PinballCorruptor {
	return []PinballCorruptor{
		{
			// Move instructions across a preemption boundary between two
			// threads: the quantum sum (and so Validate) is preserved,
			// but the replayed interleaving differs from the recording.
			Name: "shift-quantum-boundary",
			Apply: func(pb *pinball.Pinball) bool {
				q := pb.Quanta
				for off := 0; off < len(q); off++ {
					i := (len(q)/2 + off) % len(q)
					if i+1 >= len(q) {
						continue
					}
					if q[i].Tid != q[i+1].Tid && q[i].Count > 1 {
						n := q[i].Count - 1
						if n > 7 {
							n = 7
						}
						q[i].Count -= n
						q[i+1].Count += n
						return true
					}
				}
				return false
			},
		},
		{
			// Hand one mid-region quantum to a different thread that is
			// also scheduled later: both threads' instruction streams
			// shift relative to the recording.
			Name: "swap-quantum-tid",
			Apply: func(pb *pinball.Pinball) bool {
				q := pb.Quanta
				for off := 0; off < len(q); off++ {
					i := (len(q)/2 + off) % len(q)
					for j := i + 1; j < len(q); j++ {
						if q[j].Tid != q[i].Tid {
							q[i].Tid = q[j].Tid
							return true
						}
					}
				}
				return false
			},
		},
		{
			// Corrupt every recorded syscall result: replayed reads hand
			// the program different input than the recording saw.
			Name: "tamper-syscall-ret",
			Apply: func(pb *pinball.Pinball) bool {
				if len(pb.Syscalls) == 0 {
					return false
				}
				for i := range pb.Syscalls {
					pb.Syscalls[i].Ret += 9001
				}
				return true
			},
		},
		{
			// Shift the main thread's stack pointer in the captured
			// initial state: every stack access lands one word off.
			Name: "tamper-initial-sp",
			Apply: func(pb *pinball.Pinball) bool {
				if pb.State == nil || len(pb.State.Threads) == 0 {
					return false
				}
				pb.State.Threads[0].Regs[isa.SP] -= 1
				return true
			},
		},
		{
			// Flip a live global in the captured memory image (globals
			// occupy [0, vm.HeapBase)). If the image has no non-zero
			// global yet, plant a non-zero value at address 0.
			Name: "tamper-global-word",
			Apply: func(pb *pinball.Pinball) bool {
				if pb.State == nil {
					return false
				}
				img := pb.State.Mem
				for pn, words := range img {
					base := pn * int64(len(words))
					if base < 0 || base >= vm.HeapBase {
						continue
					}
					for i, w := range words {
						if w != 0 && base+int64(i) < vm.HeapBase {
							words[i] = w ^ 0x2A
							return true
						}
					}
				}
				if img == nil {
					return false
				}
				img[0] = make([]int64, 1<<6)
				img[0][0] = 0x5A
				return true
			},
		},
		{
			// Drop trailing quanta (fixing the instruction accounting so
			// the quantum sum stays consistent) until a recorded
			// checkpoint lies beyond the shortened schedule. Validate
			// rejects the result: a checkpoint past the region end.
			Name: "truncate-schedule",
			Apply: func(pb *pinball.Pinball) bool {
				var maxStep int64
				for _, cp := range pb.Checkpoints {
					if cp.Step > maxStep {
						maxStep = cp.Step
					}
				}
				if maxStep == 0 {
					return false
				}
				total := pb.TotalQuantumInstrs()
				for len(pb.Quanta) > 1 && total >= maxStep {
					last := pb.Quanta[len(pb.Quanta)-1]
					pb.Quanta = pb.Quanta[:len(pb.Quanta)-1]
					total -= last.Count
					pb.RegionInstrs -= last.Count
					if last.Tid == 0 {
						pb.MainInstrs -= last.Count
						if pb.MainInstrs < 0 {
							pb.MainInstrs = 0
						}
					}
				}
				return total < maxStep
			},
		},
		{
			// Flip a recorded checkpoint hash: the replay itself is
			// untampered, so this exercises pure checkpoint comparison.
			Name: "tamper-checkpoint-hash",
			Apply: func(pb *pinball.Pinball) bool {
				if len(pb.Checkpoints) == 0 {
					return false
				}
				pb.Checkpoints[len(pb.Checkpoints)/2].Hash ^= 0xDEADBEEF
				return true
			},
		},
		{
			// Remove one side-effect injection from a slice pinball: the
			// thread resumes after a skipped region without the region's
			// effects.
			Name:      "drop-injection",
			SliceOnly: true,
			Apply: func(pb *pinball.Pinball) bool {
				if len(pb.Injections) == 0 {
					return false
				}
				i := len(pb.Injections) / 2
				pb.Injections = append(pb.Injections[:i], pb.Injections[i+1:]...)
				return true
			},
		},
	}
}

// RingCorruptors returns the flight-recorder tampering suite. Every
// corruptor applies only to gapped (ring) pinballs — Apply reports false
// for ordinary recordings — and must be caught the same two-layered way:
// Validate rejects the structurally broken ones, and a replay of the rest
// fails typed (a BridgeError or divergence), never silently succeeding
// with wrong content.
func RingCorruptors() []PinballCorruptor {
	return []PinballCorruptor{
		{
			// Flip one retained window hash. The bridge re-derives the
			// window bit-for-bit correctly, but verification against the
			// tampered hash must fail: an exact bridge becomes a typed
			// degraded outcome, never a clean exit.
			Name: "flip-eviction-hash",
			Apply: func(pb *pinball.Pinball) bool {
				if !pb.Gapped() {
					return false
				}
				pb.Evictions[len(pb.Evictions)/2].Hash ^= 1
				return true
			},
		},
		{
			// Tamper the bridge recipe's scheduler state: re-execution
			// takes a different interleaving, so the re-derived windows
			// diverge from the retained hashes (or a checkpoint fires).
			Name: "tamper-ring-recipe",
			Apply: func(pb *pinball.Pinball) bool {
				if !pb.Gapped() || pb.Recipe == nil {
					return false
				}
				pb.Recipe.SchedState ^= 1
				return true
			},
		},
		{
			// Drop the recipe entirely: a gapped pinball without its
			// bridge recipe cannot be replayed and is structurally
			// invalid — Validate must reject it at load time.
			Name: "drop-ring-recipe",
			Apply: func(pb *pinball.Pinball) bool {
				if !pb.Gapped() || pb.Recipe == nil {
					return false
				}
				pb.Recipe = nil
				return true
			},
		},
	}
}
