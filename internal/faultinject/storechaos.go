package faultinject

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/store"
)

// StoreCorruptor deterministically damages a content-addressed store's
// on-disk state — chunk objects, the manifest log, or the index
// relation between them. Each corruptor names the typed store sentinel
// the next validation-on-read (or a full Verify sweep) must surface:
// the store's contract is that no on-disk damage is ever served
// silently or reported as a generic I/O error.
type StoreCorruptor struct {
	Name string
	// Want is the typed store error Verify must wrap after the damage
	// (matched with errors.Is).
	Want error
	// Apply damages the store rooted at root. ok is false when the
	// corruptor does not apply (e.g. the store holds no objects yet).
	// detail names what was damaged, for test diagnostics.
	Apply func(root string) (detail string, ok bool)
}

// chunkObjects lists the store's chunk object files in sorted order, so
// corruptors pick their victim deterministically.
func chunkObjects(root string) []string {
	var out []string
	filepath.Walk(filepath.Join(root, "objects"), func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return nil
		}
		out = append(out, path)
		return nil
	})
	sort.Strings(out)
	return out
}

// StoreCorruptors returns the store damage suite: every way a disk, a
// crashed writer, or a confused operator can rot a store that the
// validation layer must catch typed.
func StoreCorruptors() []StoreCorruptor {
	return []StoreCorruptor{
		{
			// A single flipped bit in a chunk object body: the classic
			// silent disk rot. Validation-on-read re-hashes the chunk,
			// quarantines the damaged object and reports ErrObjectCorrupt.
			Name: "bit-flip-chunk",
			Want: store.ErrObjectCorrupt,
			Apply: func(root string) (string, bool) {
				objs := chunkObjects(root)
				if len(objs) == 0 {
					return "", false
				}
				victim := objs[0]
				data, err := os.ReadFile(victim)
				if err != nil || len(data) == 0 {
					return "", false
				}
				data[len(data)/2] ^= 0x20
				if err := os.WriteFile(victim, data, 0o644); err != nil {
					return "", false
				}
				return victim, true
			},
		},
		{
			// The manifest's final append cut short — what a crash or a
			// full disk leaves. Open must recover the intact prefix and
			// the tear must surface typed, never as corruption and never
			// silently.
			Name: "truncate-manifest-tail",
			Want: store.ErrManifestTorn,
			Apply: func(root string) (string, bool) {
				path := filepath.Join(root, "manifest.db")
				data, err := os.ReadFile(path)
				if err != nil || len(data) < 16 {
					return "", false
				}
				cut := len(data) - 3 // into the final record, past its newline
				if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
					return "", false
				}
				return fmt.Sprintf("%s truncated to %d of %d bytes", path, cut, len(data)), true
			},
		},
		{
			// A manifest entry whose chunk object vanished — a dangling
			// index entry, as left by a crash between GC's tombstone and a
			// later manual cleanup, or plain operator error. Reads must
			// report ErrObjectMissing, not invent bytes.
			Name: "dangling-index-entry",
			Want: store.ErrObjectMissing,
			Apply: func(root string) (string, bool) {
				objs := chunkObjects(root)
				if len(objs) == 0 {
					return "", false
				}
				victim := objs[0]
				if err := os.Remove(victim); err != nil {
					return "", false
				}
				return victim, true
			},
		},
		{
			// A duplicate-digest collision: a manifest "add" record
			// re-claims an existing entry digest with a chunk list that
			// assembles to different content (the append-only log's
			// last-write-wins makes the bogus record authoritative). The
			// chunks themselves are intact, so only whole-file digest
			// validation catches it — ErrDigestMismatch, never the wrong
			// bytes.
			Name: "duplicate-digest-collision",
			Want: store.ErrDigestMismatch,
			Apply: func(root string) (string, bool) {
				s, err := store.Open(root)
				if err != nil {
					return "", false
				}
				infos, err := s.List("")
				if err != nil || len(infos) == 0 {
					return "", false
				}
				objs := chunkObjects(root)
				if len(objs) == 0 {
					return "", false
				}
				fi, err := os.Stat(objs[0])
				if err != nil {
					return "", false
				}
				chunk := map[string]any{"digest": filepath.Base(objs[0]), "size": fi.Size()}
				// The first chunk twice: its doubled assembly cannot hash
				// to the victim's recorded whole-file digest.
				rec := map[string]any{
					"op": "add",
					"entry": map[string]any{
						"digest":     infos[0].Digest,
						"size":       2 * fi.Size(),
						"chunks":     []any{chunk, chunk},
						"added_unix": infos[0].AddedUnix,
						"touch_unix": infos[0].TouchUnix,
					},
				}
				line, err := json.Marshal(rec)
				if err != nil {
					return "", false
				}
				f, err := os.OpenFile(filepath.Join(root, "manifest.db"), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return "", false
				}
				defer f.Close()
				if _, err := f.Write(append(line, '\n')); err != nil {
					return "", false
				}
				return fmt.Sprintf("entry %s re-added over chunk %s", infos[0].Digest, filepath.Base(objs[0])), true
			},
		},
	}
}
