package faultinject

import (
	"fmt"

	"repro/internal/vm"
)

// Crash-point injection. Where the corruptor suites damage content, the
// crash-point suite simulates the process dying mid-write: a file torn
// at every structurally interesting byte offset — each frame boundary,
// inside each frame header, and mid-payload of each frame. The contract
// under test is the durability model's: pinball.Decode rejects every
// torn file with a typed error, and pinball.Salvage either recovers a
// checkpoint-consistent prefix that replays bit-identically to the
// original, or refuses with ErrUnsalvageable — never a hang, never a
// silently wrong pinball.

// CrashPoint is one simulated crash: the file cut at Off bytes.
type CrashPoint struct {
	Name string
	Off  int64
}

// CrashPoints enumerates the tear offsets of a framed (v2) or journal
// (v3) pinball file: before each frame, inside each frame header, and
// mid-payload of each frame, plus one byte short of a complete file.
// Returns nil when the bytes have no parsable framing.
func CrashPoints(data []byte) []CrashPoint {
	secs := sections(data)
	if secs == nil {
		return nil
	}
	var pts []CrashPoint
	for i, s := range secs {
		at := func(what string, off int64) CrashPoint {
			return CrashPoint{Name: fmt.Sprintf("%s-frame%d-id%d", what, i+1, s.ID), Off: off}
		}
		pts = append(pts,
			at("before", s.Off),
			at("in-header", s.Off+sectionHeaderLen/2),
			at("mid-payload", s.Off+sectionHeaderLen+(s.Len-sectionHeaderLen)/2),
		)
	}
	if n := int64(len(data)); n > 0 {
		pts = append(pts, CrashPoint{Name: "end-minus-1", Off: n - 1})
	}
	return pts
}

// TornCopy returns a copy of the file bytes cut at the crash point.
func TornCopy(data []byte, cp CrashPoint) []byte {
	return clone(data[:cp.Off])
}

// PanicTracer panics at the After'th observed instruction — a stand-in
// for a buggy analysis pass blowing up mid-replay. The supervisor must
// isolate it into a typed session error.
type PanicTracer struct {
	vm.NopTracer
	After int64
	n     int64
}

func (p *PanicTracer) OnInstr(ev *vm.InstrEvent) {
	p.n++
	if p.n >= p.After {
		panic(fmt.Sprintf("faultinject: injected tracer panic at instruction %d", p.n))
	}
}

// StallTracer blocks at the After'th observed instruction until Release
// is closed — a hung analysis pass for watchdog testing. Callers must
// close Release (e.g. in a test cleanup) so the abandoned replay
// goroutine can finish.
type StallTracer struct {
	vm.NopTracer
	After   int64
	Release chan struct{}
	n       int64
}

func (s *StallTracer) OnInstr(ev *vm.InstrEvent) {
	s.n++
	if s.n == s.After {
		<-s.Release
	}
}
