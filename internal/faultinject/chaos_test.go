package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/supervisor"
	"repro/internal/vm"
)

// The chaos suite is the differential harness for the durability layer:
// it tears recording files at every crash point and injects panics,
// stalls and persistent divergence into supervised phases, asserting the
// system-wide invariant — every fault either fully recovers (the
// salvaged pinball replays bit-identically to the original execution's
// prefix) or is reported as a typed error. Never a hang, never a
// silently wrong result.

// regionSpec is the recording region the chaos tests run on: short
// enough that hundreds of crash points replay in seconds.
func regionSpec() pinplay.RegionSpec {
	return pinplay.RegionSpec{SkipMain: 150, LengthMain: 600}
}

// makeRegion compiles the workload and logs one region pinball.
func makeRegion(t *testing.T) (*isa.Program, *pinball.Pinball) {
	t.Helper()
	prog := compileT(t)
	pb, err := pinplay.Log(prog, logConfig(), regionSpec())
	if err != nil {
		t.Fatalf("log region: %v", err)
	}
	if len(pb.Checkpoints) < 4 {
		t.Fatalf("region recorded only %d checkpoints", len(pb.Checkpoints))
	}
	return prog, pb
}

// typedPinballErr reports whether err wraps one of the pinball format's
// typed sentinels — the decode contract for damaged files.
func typedPinballErr(err error) bool {
	return errors.Is(err, pinball.ErrTruncated) ||
		errors.Is(err, pinball.ErrCorrupt) ||
		errors.Is(err, pinball.ErrNotPinball) ||
		errors.Is(err, pinball.ErrVersionSkew)
}

// sameState reports whether two replay machines ended in identical
// memory and program output.
func sameState(a, b *vm.Machine) bool {
	if !a.Snapshot().Mem.Equal(b.Snapshot().Mem) {
		return false
	}
	ao, bo := a.Output(), b.Output()
	if len(ao) != len(bo) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	return true
}

// TestJournalCrashPoints tears a committed recording journal at every
// frame boundary, header byte and payload midpoint, and checks the full
// durability contract at each: Decode rejects the torn file typed, and
// Salvage either truncates to a divergence checkpoint whose prefix
// replays bit-identically to the original recording, or refuses typed.
func TestJournalCrashPoints(t *testing.T) {
	prog := compileT(t)
	cfg := logConfig()
	cfg.JournalPath = filepath.Join(t.TempDir(), "rec.journal")
	cfg.JournalEvery = 128
	cfg.JournalNoSync = true
	pb, err := pinplay.Log(prog, cfg, regionSpec())
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	data, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	// Sanity: the committed journal IS the recording.
	if got, err := pinball.Decode(data); err != nil {
		t.Fatalf("decode committed journal: %v", err)
	} else if got.ID() != pb.ID() {
		t.Fatalf("journal pinball id %x != recorded %x", got.ID(), pb.ID())
	}

	pts := CrashPoints(data)
	if len(pts) < 20 {
		t.Fatalf("only %d crash points in a %d-byte journal", len(pts), len(data))
	}
	refs := map[int64]*vm.Machine{} // original-prefix replays, by step
	var salvaged, unsalvageable int
	for _, cp := range pts {
		torn := TornCopy(data, cp)
		if len(torn) == len(data) {
			continue // the "crash" lost nothing
		}
		if _, err := pinball.Decode(torn); err == nil {
			t.Errorf("%s: torn journal decoded cleanly", cp.Name)
			continue
		} else if !typedPinballErr(err) {
			t.Errorf("%s: decode error is untyped: %v", cp.Name, err)
		}
		spb, rep, err := pinball.SalvageBytes(torn)
		if err != nil {
			if !errors.Is(err, pinball.ErrUnsalvageable) {
				t.Errorf("%s: salvage error is untyped: %v", cp.Name, err)
			}
			unsalvageable++
			continue
		}
		salvaged++
		if !rep.Truncated || rep.CheckpointStep != spb.RegionInstrs {
			t.Errorf("%s: report (truncated=%v step=%d) inconsistent with pinball (%d instrs)",
				cp.Name, rep.Truncated, rep.CheckpointStep, spb.RegionInstrs)
			continue
		}
		m, _, err := pinplay.ReplayWith(prog, spb, boundedOpts())
		if err != nil {
			t.Errorf("%s: salvaged pinball does not replay: %v", cp.Name, err)
			continue
		}
		ref := refs[spb.RegionInstrs]
		if ref == nil {
			if ref, _, err = pinplay.ReplayToStep(prog, pb, spb.RegionInstrs, boundedOpts()); err != nil {
				t.Fatalf("%s: reference prefix replay to %d: %v", cp.Name, spb.RegionInstrs, err)
			}
			refs[spb.RegionInstrs] = ref
		}
		if !sameState(m, ref) {
			t.Errorf("%s: salvaged replay diverges from the original execution's first %d instructions",
				cp.Name, spb.RegionInstrs)
		}
	}
	if salvaged == 0 {
		t.Error("no crash point was salvageable — the journal never anchored a checkpoint")
	}
	if unsalvageable == 0 {
		t.Error("no crash point was unsalvageable — early tears should cost the meta/state frames")
	}
	t.Logf("journal: %d crash points, %d salvaged, %d refused typed", len(pts), salvaged, unsalvageable)
}

// TestMidRecordAbortSalvages simulates the recording process dying just
// before the commit frame lands — the canonical mid-record crash — and
// checks the strict loader refuses with guidance while Salvage recovers
// a checkpoint-exact prefix.
func TestMidRecordAbortSalvages(t *testing.T) {
	prog := compileT(t)
	cfg := logConfig()
	cfg.JournalPath = filepath.Join(t.TempDir(), "rec.journal")
	cfg.JournalEvery = 128
	cfg.JournalNoSync = true
	pb, err := pinplay.Log(prog, cfg, regionSpec())
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	data, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	secs := sections(data)
	if len(secs) < 3 {
		t.Fatalf("journal has only %d frames", len(secs))
	}
	torn := clone(data[:secs[len(secs)-1].Off]) // everything but the commit frame

	_, err = pinball.Decode(torn)
	if !errors.Is(err, pinball.ErrTruncated) {
		t.Fatalf("uncommitted journal decode error = %v, want ErrTruncated", err)
	}
	if !strings.Contains(err.Error(), "commit") {
		t.Fatalf("error does not explain the missing commit frame: %v", err)
	}

	spb, rep, err := pinball.SalvageBytes(torn)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if rep.Committed || !rep.Truncated {
		t.Fatalf("report: committed=%v truncated=%v, want uncommitted+truncated", rep.Committed, rep.Truncated)
	}
	if spb.EndReason != "salvaged" || spb.Failure != nil {
		t.Fatalf("salvaged pinball: end=%q failure=%v", spb.EndReason, spb.Failure)
	}
	m, _, err := pinplay.ReplayWith(prog, spb, boundedOpts())
	if err != nil {
		t.Fatalf("salvaged replay: %v", err)
	}
	ref, _, err := pinplay.ReplayToStep(prog, pb, spb.RegionInstrs, boundedOpts())
	if err != nil {
		t.Fatalf("reference prefix replay: %v", err)
	}
	if !sameState(m, ref) {
		t.Fatal("salvaged replay diverges from the original execution's prefix")
	}
}

// TestFramedCrashPoints tears the atomic framed encoding of every
// pinball kind at every crash point: each torn file must be rejected
// typed, and when the manifest proves only optional tail sections died,
// Salvage must rebuild a pinball that replays identically to the intact
// original.
func TestFramedCrashPoints(t *testing.T) {
	prog := compileT(t)
	pbs := makePinballs(t)
	for kind, pb := range pbs {
		data, err := pb.EncodeBytes()
		if err != nil {
			t.Fatalf("encode %v: %v", kind, err)
		}
		var ref *vm.Machine // intact replay, computed on first need
		var salvaged int
		for _, cp := range CrashPoints(data) {
			torn := TornCopy(data, cp)
			if len(torn) == len(data) {
				continue
			}
			name := string(kind) + "/" + cp.Name
			if _, err := pinball.Decode(torn); err == nil {
				t.Errorf("%s: torn file decoded cleanly", name)
				continue
			} else if !typedPinballErr(err) {
				t.Errorf("%s: decode error is untyped: %v", name, err)
			}
			spb, rep, err := pinball.SalvageBytes(torn)
			if err != nil {
				if !errors.Is(err, pinball.ErrUnsalvageable) {
					t.Errorf("%s: salvage error is untyped: %v", name, err)
				}
				continue
			}
			salvaged++
			// A framed salvage never truncates: the region survives whole.
			if rep.Truncated || spb.RegionInstrs != pb.RegionInstrs {
				t.Errorf("%s: framed salvage truncated (%d of %d instrs)", name, spb.RegionInstrs, pb.RegionInstrs)
				continue
			}
			m, _, err := pinplay.ReplayWith(prog, spb, boundedOpts())
			if err != nil {
				t.Errorf("%s: salvaged pinball does not replay: %v", name, err)
				continue
			}
			if ref == nil {
				if ref, _, err = pinplay.ReplayWith(prog, pb, boundedOpts()); err != nil {
					t.Fatalf("%v: intact replay: %v", kind, err)
				}
			}
			if !sameState(m, ref) {
				t.Errorf("%s: salvaged replay diverges from the intact pinball's", name)
			}
		}
		if salvaged == 0 {
			t.Errorf("%v: no crash point was salvageable — tails losing only checkpoints should recover", kind)
		}
	}
}

// TestInjectedPanicIsolated injects a panicking tracer into a supervised
// replay: the panic must surface as a typed session error carrying the
// panic site's stack — after the full retry budget, since a panic could
// be transient — and must never crash the caller.
func TestInjectedPanicIsolated(t *testing.T) {
	prog, pb := makeRegion(t)
	var sleeps []time.Duration
	opts := supervisor.Options{
		MaxAttempts: 3,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	ropts := boundedOpts()
	ropts.Tracer = &PanicTracer{After: 100}
	res, err := supervisor.Replay(prog, pb, opts, ropts)
	var se *supervisor.SessionError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v (%T), want *SessionError", err, err)
	}
	if se.Kind != supervisor.KindPanic || se.Attempts != 3 {
		t.Fatalf("SessionError kind=%s attempts=%d, want panic after 3", se.Kind, se.Attempts)
	}
	var pe *supervisor.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not carry the PanicError: %v", err)
	}
	if !strings.Contains(pe.Error(), "injected tracer panic") || len(pe.Stack) == 0 {
		t.Fatalf("PanicError lost the panic value or stack: %v", pe)
	}
	if len(sleeps) != 2 {
		t.Fatalf("backoff slept %d times, want 2 (between 3 attempts)", len(sleeps))
	}
	if res.Report.Kind != supervisor.KindPanic || len(res.Report.Attempts) != 3 {
		t.Fatalf("report kind=%s attempts=%d", res.Report.Kind, len(res.Report.Attempts))
	}
}

// TestStalledReplayWatchdog injects a tracer that blocks mid-replay: the
// watchdog must convert the hang into a typed timeout, fast and without
// retrying (a hang re-hangs).
func TestStalledReplayWatchdog(t *testing.T) {
	prog, pb := makeRegion(t)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // let the abandoned goroutine finish
	ropts := boundedOpts()
	ropts.Tracer = &StallTracer{After: 100, Release: release}
	opts := supervisor.Options{
		MaxAttempts: 3,
		Watchdog:    100 * time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
	start := time.Now()
	_, err := supervisor.Replay(prog, pb, opts, ropts)
	elapsed := time.Since(start)
	var se *supervisor.SessionError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v (%T), want *SessionError", err, err)
	}
	if se.Kind != supervisor.KindTimeout || se.Attempts != 1 {
		t.Fatalf("SessionError kind=%s attempts=%d, want timeout after exactly 1", se.Kind, se.Attempts)
	}
	var he *supervisor.HangError
	if !errors.As(err, &he) {
		t.Fatalf("error does not carry the HangError: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("watchdog verdict took %v — the hang leaked into the caller", elapsed)
	}
}

// TestPersistentDivergenceDegrades tampers a mid-region checkpoint so
// every replay attempt diverges, and checks the supervisor's last line
// of defence: checkpoint-anchored degraded recovery, whose machine state
// must match the clean recording's prefix exactly.
func TestPersistentDivergenceDegrades(t *testing.T) {
	prog, pb := makeRegion(t)
	bad, err := Clone(pb)
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	bad.Checkpoints[len(bad.Checkpoints)/2].Hash ^= 0xDEADBEEF

	opts := supervisor.Options{MaxAttempts: 2, Sleep: func(time.Duration) {}}
	res, err := supervisor.Replay(prog, bad, opts, boundedOpts())
	if err != nil {
		t.Fatalf("degraded recovery failed: %v", err)
	}
	if !res.Degraded || res.RecoveredStep <= 0 {
		t.Fatalf("degraded=%v step=%d, want checkpoint-anchored recovery", res.Degraded, res.RecoveredStep)
	}
	if len(res.Report.Attempts) != 2 || !res.Report.Degraded || res.Report.RecoveredStep != res.RecoveredStep {
		t.Fatalf("report: %+v", res.Report)
	}
	ref, _, err := pinplay.ReplayToStep(prog, pb, res.RecoveredStep, boundedOpts())
	if err != nil {
		t.Fatalf("reference prefix replay: %v", err)
	}
	if !sameState(res.Machine, ref) {
		t.Fatal("degraded machine state diverges from the clean recording's prefix")
	}
}

// TestChaosMatrixNeverHangs sweeps the semantic corruptor suite through
// the supervisor: every tampered pinball must come back as a typed
// session error or a degraded recovery within the execution bounds.
func TestChaosMatrixNeverHangs(t *testing.T) {
	prog, pb := makeRegion(t)
	opts := supervisor.Options{MaxAttempts: 2, Sleep: func(time.Duration) {}}
	for _, c := range PinballCorruptors() {
		if c.SliceOnly {
			continue
		}
		bad, err := Clone(pb)
		if err != nil {
			t.Fatalf("%s: clone: %v", c.Name, err)
		}
		if !c.Apply(bad) {
			t.Errorf("%s: corruptor not applicable", c.Name)
			continue
		}
		if err := bad.Validate(); err != nil {
			continue // rejected at load time — never reaches the supervisor
		}
		start := time.Now()
		res, err := supervisor.Replay(prog, bad, opts, boundedOpts())
		elapsed := time.Since(start)
		if elapsed > 30*time.Second {
			t.Errorf("%s: supervised verdict took %v", c.Name, elapsed)
		}
		if err == nil {
			if !res.Degraded {
				t.Errorf("%s: tampered pinball replayed cleanly under supervision", c.Name)
			}
			continue
		}
		var se *supervisor.SessionError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v (%T) is not a typed SessionError", c.Name, err, err)
		}
	}
}
