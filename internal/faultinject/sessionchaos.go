package faultinject

import (
	"sync/atomic"
	"time"

	"repro/internal/vm"
)

// SleepTracer is a self-releasing stall: it blocks the replay for a
// fixed duration at the After'th observed instruction. Unlike
// StallTracer it needs no external Release, which makes it safe to
// inject into a daemon where nobody holds a handle to the session — the
// watchdog fires, the abandoned goroutine wakes up For later and exits
// on its own.
type SleepTracer struct {
	vm.NopTracer
	After int64
	For   time.Duration
	n     int64
}

func (s *SleepTracer) OnInstr(ev *vm.InstrEvent) {
	s.n++
	if s.n == s.After {
		time.Sleep(s.For)
	}
}

// FlakyTracer panics the first Failures times the execution reaches its
// After'th observed instruction, then behaves forever after: a
// transient fault a retry policy rides out. The instruction count
// resets on each panic, so every retry attempt reaches the same
// injection point.
type FlakyTracer struct {
	vm.NopTracer
	// Failures is how many times the tracer panics before going quiet.
	Failures int64
	// After is the observed-instruction offset of each injected panic.
	After  int64
	n      int64
	thrown atomic.Int64
}

func (f *FlakyTracer) OnInstr(ev *vm.InstrEvent) {
	f.n++
	if f.n == f.After && f.thrown.Add(1) <= f.Failures {
		f.n = 0
		panic("faultinject: injected transient panic")
	}
}

// SessionChaos schedules fault injection across a stream of daemon
// sessions: every PanicEveryN'th replaying session gets a panicking
// observer, every StallEveryN'th a stalling one. The counter is shared
// and atomic, so concurrent sessions draw deterministic-in-aggregate
// faults (exactly 1/N of sessions each kind) without coordination.
type SessionChaos struct {
	// PanicEveryN injects a panicking observer into every Nth session
	// (0 = never).
	PanicEveryN int64
	// StallEveryN injects a stalling observer into every Nth session
	// (0 = never); StallFor is how long it blocks (it must exceed the
	// server's watchdog for the stall to be observable as a timeout).
	StallEveryN int64
	StallFor    time.Duration

	n atomic.Int64
}

// Tracer returns the fault to inject into the next session, nil for
// most. It has the signature sessiond's Config.Chaos hook expects.
func (c *SessionChaos) Tracer(op string) vm.Tracer {
	k := c.n.Add(1)
	if c.PanicEveryN > 0 && k%c.PanicEveryN == 0 {
		return &PanicTracer{After: 40}
	}
	if c.StallEveryN > 0 && k%c.StallEveryN == 0 {
		return &SleepTracer{After: 40, For: c.StallFor}
	}
	return nil
}

// Injected reports how many sessions have drawn from the chaos schedule.
func (c *SessionChaos) Injected() int64 { return c.n.Load() }
