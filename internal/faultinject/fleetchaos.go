package faultinject

import "sync/atomic"

// Fleet chaos: the failure modes a coordinator/worker fleet must
// survive are injected at two seams — the coordinator's dialer (network
// partitions) and the worker agent's heartbeat gate (a worker that is
// alive and computing but looks dead). Both are plain atomic gates with
// no dependency on the fleet packages, so either side can wire them
// into its injection hooks.

// Partition simulates a network partition toward one peer: while cut,
// the wrapped dialer must refuse. It is safe for concurrent use and can
// be cut and healed repeatedly.
type Partition struct {
	cut atomic.Bool
}

// Cut severs the link; Heal restores it.
func (p *Partition) Cut()  { p.cut.Store(true) }
func (p *Partition) Heal() { p.cut.Store(false) }

// Allow reports whether a dial may proceed.
func (p *Partition) Allow() bool { return !p.cut.Load() }

// HeartbeatDropper suppresses a worker's heartbeats — the "alive but
// looks dead" fault that must trigger dead-worker re-dispatch without
// losing the worker's in-flight results. It has the contract of the
// fleet agent's BeatHook: Allow is called once per beat and consumes
// one pending drop.
type HeartbeatDropper struct {
	pending atomic.Int64
	forever atomic.Bool
}

// DropNext suppresses the next n heartbeats.
func (d *HeartbeatDropper) DropNext(n int64) { d.pending.Add(n) }

// Forever suppresses every heartbeat from now on (a silent worker);
// Resume undoes it.
func (d *HeartbeatDropper) Forever() { d.forever.Store(true) }
func (d *HeartbeatDropper) Resume()  { d.forever.Store(false) }

// Allow reports whether this beat may be sent, consuming one pending
// drop when not.
func (d *HeartbeatDropper) Allow() bool {
	if d.forever.Load() {
		return false
	}
	for {
		n := d.pending.Load()
		if n <= 0 {
			return true
		}
		if d.pending.CompareAndSwap(n, n-1) {
			return false
		}
	}
}
