package faultinject

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pinball"
	"repro/internal/pinplay"
)

// makeRingPinball records the detection workload in flight-recorder mode
// with a budget tight enough to force evictions, and proves the clean
// pinball bridges exactly before any tampering.
func makeRingPinball(t *testing.T) *pinball.Pinball {
	t.Helper()
	prog := compileT(t)
	cfg := logConfig()
	cfg.RingBytes = 400
	cfg.JournalEvery = 150
	pb, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("ring log: %v", err)
	}
	if !pb.Gapped() {
		t.Fatalf("ring budget %d evicted nothing (region %d instructions)", cfg.RingBytes, pb.RegionInstrs)
	}
	_, rep, err := pinplay.ReplayWith(prog, pb, boundedOpts())
	if err != nil {
		t.Fatalf("clean bridged replay failed: %v", err)
	}
	if rep.Bridge == nil || rep.Bridge.Exact != len(pb.Evictions) {
		t.Fatalf("clean bridge not exact: %+v", rep.Bridge)
	}
	return pb
}

// TestRingCorruptorsDetected proves every flight-recorder corruptor is
// caught: Validate rejects the structurally broken pinballs, and a strict
// replay of the rest fails with a typed error inside the bounded budget.
// No tampered ring pinball ever replays cleanly.
func TestRingCorruptorsDetected(t *testing.T) {
	prog := compileT(t)
	pb := makeRingPinball(t)
	for _, c := range RingCorruptors() {
		bad, err := Clone(pb)
		if err != nil {
			t.Fatalf("%s: clone: %v", c.Name, err)
		}
		if !c.Apply(bad) {
			t.Errorf("%s: corruptor not applicable to a ring pinball", c.Name)
			continue
		}
		if err := bad.Validate(); err != nil {
			if !errors.Is(err, pinball.ErrCorrupt) {
				t.Errorf("%s: Validate error %v, want ErrCorrupt", c.Name, err)
			}
			continue
		}
		start := time.Now()
		_, _, err = pinplay.ReplayWith(prog, bad, boundedOpts())
		if err == nil {
			t.Errorf("%s: tampered ring pinball replayed cleanly", c.Name)
			continue
		}
		if !errors.Is(err, pinplay.ErrReplay) {
			t.Errorf("%s: error %v does not wrap ErrReplay", c.Name, err)
		}
		if el := time.Since(start); el > 10*time.Second {
			t.Errorf("%s: detection took %v", c.Name, el)
		}
	}
}

// TestRingCorruptorsNotApplicableToFullRecordings pins the guard: ring
// corruptors must refuse ordinary (gap-free) pinballs instead of
// mutating fields that do not exist there.
func TestRingCorruptorsNotApplicableToFullRecordings(t *testing.T) {
	prog := compileT(t)
	pb, err := pinplay.Log(prog, logConfig(), pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	for _, c := range RingCorruptors() {
		bad, err := Clone(pb)
		if err != nil {
			t.Fatalf("%s: clone: %v", c.Name, err)
		}
		if c.Apply(bad) {
			t.Errorf("%s: applied to a gap-free pinball", c.Name)
		}
	}
}

// TestFlippedWindowHashNeverCleanExit is the fail-safe contract for
// bridge verification: flipping one retained window hash turns an exact
// bridge into a typed degraded outcome under every policy. Strict
// replay fails with a BridgeError naming the window; the estimates
// policy completes but reports the window as estimated content — in no
// configuration does the tampered pinball produce a clean result.
func TestFlippedWindowHashNeverCleanExit(t *testing.T) {
	prog := compileT(t)
	pb := makeRingPinball(t)
	bad, err := Clone(pb)
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	tampered := bad.Evictions[len(bad.Evictions)/2].ID
	bad.Evictions[len(bad.Evictions)/2].Hash ^= 1
	if err := bad.Validate(); err != nil {
		t.Fatalf("hash flip should not be structurally detectable: %v", err)
	}

	// Strict policy: typed error, classified as both a bridge failure
	// and a replay failure, pinned to the tampered window.
	_, _, err = pinplay.ReplayWith(prog, bad, boundedOpts())
	if err == nil {
		t.Fatal("strict replay of a hash-flipped ring pinball succeeded")
	}
	if !errors.Is(err, pinplay.ErrBridge) || !errors.Is(err, pinplay.ErrReplay) {
		t.Fatalf("error %v does not wrap ErrBridge and ErrReplay", err)
	}
	var be *pinplay.BridgeError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a BridgeError", err)
	}
	if be.Ev.ID != tampered {
		t.Fatalf("BridgeError names window %d, want %d", be.Ev.ID, tampered)
	}

	// Estimates policy: the replay completes, but the outcome is typed
	// degraded — the tampered window is reported as estimated.
	opts := boundedOpts()
	opts.BridgeEstimates = true
	_, rep, err := pinplay.ReplayWith(prog, bad, opts)
	if err != nil {
		t.Fatalf("estimates replay failed: %v", err)
	}
	if rep.Bridge == nil || !rep.Bridge.Degraded() {
		t.Fatalf("estimates replay not reported degraded: %+v", rep.Bridge)
	}
	if len(rep.Bridge.Estimated) != 1 || rep.Bridge.Estimated[0].ID != tampered {
		t.Fatalf("estimated windows %v, want exactly window %d", rep.Bridge.Estimated, tampered)
	}
	if rep.Bridge.Exact != len(bad.Evictions)-1 {
		t.Fatalf("exact windows %d, want %d", rep.Bridge.Exact, len(bad.Evictions)-1)
	}
}

// TestTamperedRecipeEnvDetected covers the environment half of the
// recipe: corrupting the resumed rand() state changes what the bridged
// re-execution observes, and verification must catch it.
func TestTamperedRecipeEnvDetected(t *testing.T) {
	prog := compileT(t)
	pb := makeRingPinball(t)
	bad, err := Clone(pb)
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	bad.Recipe.EnvPos++
	if err := bad.Validate(); err != nil {
		t.Skipf("Validate already rejects the tampered recipe: %v", err)
	}
	if _, _, err := pinplay.ReplayWith(prog, bad, boundedOpts()); err == nil {
		t.Fatal("replay with tampered recipe environment succeeded")
	} else if !errors.Is(err, pinplay.ErrReplay) {
		t.Fatalf("error %v does not wrap ErrReplay", err)
	}
}
