package core_test

import (
	"path/filepath"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/vm"
)

// raceSrc is an atomicity-violation bug exposed under some schedules: a
// write to x lands between t2's two reads.
const raceSrc = `
int x;
int pad;
int t2func(int unused) {
	int k = x + 1;
	yield();
	k = k + x;
	assert(k == 3);
	return k;
}
int main() {
	int i;
	x = 1;
	for (i = 0; i < 50; i++) { pad = pad + i; }
	int t = spawn(t2func, 0);
	yield();
	x = 0 - 1;
	join(t);
	return 0;
}`

func failingSession(t *testing.T) *core.Session {
	t.Helper()
	prog, err := cc.CompileSource("race.c", raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed < 300; seed++ {
		s, err := core.RecordFailure(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 5}, 0)
		if err == nil {
			return s
		}
	}
	t.Fatal("no seed exposed the race")
	return nil
}

func TestSessionReplayAndTrace(t *testing.T) {
	s := failingSession(t)
	m, err := s.Replay(nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if m.Stopped() != vm.StopFailure {
		t.Fatalf("replay stop = %v, want failure", m.Stopped())
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if int64(tr.Len()) != s.Pinball.RegionInstrs {
		t.Errorf("trace has %d entries, region %d", tr.Len(), s.Pinball.RegionInstrs)
	}
	// Cached.
	tr2, _ := s.Trace()
	if tr2 != tr {
		t.Error("trace not cached")
	}
}

func TestSliceAtFailureFindsRootCause(t *testing.T) {
	s := failingSession(t)
	sl, err := s.SliceAtFailure()
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	tr, _ := s.Trace()
	foundRace := false
	for _, m := range sl.Members {
		if tr.Entry(m).Instr.Line == 17 { // "x = 0 - 1"
			foundRace = true
		}
	}
	if !foundRace {
		t.Error("failure slice does not contain the racing write")
	}
}

func TestSliceForVariableAndAtLine(t *testing.T) {
	s := failingSession(t)
	if _, err := s.SliceForVariable("x"); err != nil {
		t.Errorf("SliceForVariable: %v", err)
	}
	if _, err := s.SliceForVariable("nope"); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := s.SliceAtLine(0, 13, 1); err != nil { // "x = 1"
		t.Errorf("SliceAtLine: %v", err)
	}
}

func TestSessionSaveLoadPinballAndSlice(t *testing.T) {
	s := failingSession(t)
	dir := t.TempDir()
	pbPath := filepath.Join(dir, "r.pinball")
	if err := s.Pinball.Save(pbPath); err != nil {
		t.Fatal(err)
	}
	s2, err := core.LoadSession(s.Prog, pbPath)
	if err != nil {
		t.Fatalf("LoadSession: %v", err)
	}
	sl, err := s2.SliceAtFailure()
	if err != nil {
		t.Fatal(err)
	}
	slPath := filepath.Join(dir, "f.slice")
	if err := s2.SaveSlice(sl, slPath); err != nil {
		t.Fatal(err)
	}
	// A fresh session over the same pinball can reuse the slice — the
	// "slices usable across multiple debug sessions" property.
	s3, err := core.LoadSession(s.Prog, pbPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s3.LoadSlice(slPath)
	if err != nil {
		t.Fatalf("LoadSlice in new session: %v", err)
	}
	if len(got.Members) != len(sl.Members) {
		t.Errorf("slice changed across sessions: %d vs %d members", len(got.Members), len(sl.Members))
	}
}

func TestLoadSessionRejectsWrongProgram(t *testing.T) {
	s := failingSession(t)
	dir := t.TempDir()
	pbPath := filepath.Join(dir, "r.pinball")
	if err := s.Pinball.Save(pbPath); err != nil {
		t.Fatal(err)
	}
	other, err := cc.CompileSource("other.c", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadSession(other, pbPath); err == nil {
		t.Error("pinball for a different program accepted")
	}
}

func TestStepperWalksSliceForward(t *testing.T) {
	s := failingSession(t)
	sl, err := s.SliceAtFailure()
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.NewStepper(sl)
	if err != nil {
		t.Fatalf("stepper: %v", err)
	}
	var stops []*core.StepPoint
	var lastIdxPerTid = map[int]int64{}
	for {
		p, err := st.NextInstr()
		if err != nil {
			t.Fatalf("NextInstr: %v", err)
		}
		if p == nil {
			break
		}
		if last, ok := lastIdxPerTid[p.Tid]; ok && p.Idx <= last {
			t.Fatalf("stepper went backwards in thread %d: %d -> %d", p.Tid, last, p.Idx)
		}
		lastIdxPerTid[p.Tid] = p.Idx
		stops = append(stops, p)
	}
	if len(stops) == 0 {
		t.Fatal("stepper produced no stops")
	}
	// Every stop must be a slice member instruction count-wise: the
	// number of stops equals the members whose instructions executed in
	// the slice replay.
	if len(stops) > len(sl.Members) {
		t.Errorf("more stops (%d) than slice members (%d)", len(stops), len(sl.Members))
	}
	// The final stop is the failing assert.
	last := stops[len(stops)-1]
	if last.PC != s.Pinball.Failure.PC {
		t.Errorf("last stop at pc %d, failure at pc %d", last.PC, s.Pinball.Failure.PC)
	}
}

func TestStepperStatementLevelAndValues(t *testing.T) {
	s := failingSession(t)
	sl, err := s.SliceAtFailure()
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.NewStepper(sl)
	if err != nil {
		t.Fatal(err)
	}
	prevSrc := ""
	n := 0
	sawRace := false
	checkNext := false
	for {
		p, err := st.NextStatement()
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			break
		}
		if p.Src == prevSrc {
			t.Errorf("statement step repeated source %s", p.Src)
		}
		prevSrc = p.Src
		n++
		// While stepping, the user can examine program state: once the
		// racing statement has fully stepped past (the next stop), x
		// must read -1.
		if checkNext {
			checkNext = false
			v, err := st.ReadVar("x")
			if err != nil {
				t.Fatal(err)
			}
			if v != -1 {
				t.Errorf("after racing write, x = %d, want -1", v)
			}
		}
		if p.Line == 17 {
			sawRace = true
			checkNext = true
		}
	}
	if n == 0 {
		t.Fatal("no statement stops")
	}
	if !sawRace {
		t.Error("statement stepping never hit the racing write")
	}
}

func TestRecordRegionSession(t *testing.T) {
	prog, err := cc.CompileSource("loop.c", `
int acc;
int main() {
	int i;
	for (i = 0; i < 1000; i++) { acc = acc + i; }
	write(acc);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.RecordRegion(prog, pinplay.LogConfig{Seed: 1}, pinplay.RegionSpec{SkipMain: 100, LengthMain: 500})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pinball.MainInstrs < 500 {
		t.Errorf("region main instrs = %d", s.Pinball.MainInstrs)
	}
	if _, err := s.Replay(nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if _, err := s.Trace(); err != nil {
		t.Fatalf("trace: %v", err)
	}
}

func TestSliceAtFailureRequiresFailure(t *testing.T) {
	prog, err := cc.CompileSource("ok.c", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.RecordRegion(prog, pinplay.LogConfig{Seed: 1}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SliceAtFailure(); err == nil {
		t.Error("SliceAtFailure on clean run should fail")
	}
}

func TestSetSliceOptionsInvalidatesSlicer(t *testing.T) {
	s := failingSession(t)
	sl1, err := s.SliceAtFailure()
	if err != nil {
		t.Fatal(err)
	}
	opts := sl1.Stats
	s.SetSliceOptions(slice.Options{MaxSave: 10, ControlDeps: true})
	sl2, err := s.SliceAtFailure()
	if err != nil {
		t.Fatal(err)
	}
	// Without pruning the slice can only grow.
	if sl2.Stats.Members < sl1.Stats.Members {
		t.Errorf("unpruned slice smaller than pruned: %d < %d", sl2.Stats.Members, sl1.Stats.Members)
	}
	_ = opts
}

func TestDualSliceSessionAPI(t *testing.T) {
	prog, err := cc.CompileSource("race.c", raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	var failing, passing *core.Session
	for seed := int64(1); seed < 300 && (failing == nil || passing == nil); seed++ {
		cfg := pinplay.LogConfig{Seed: seed, MeanQuantum: 5}
		if s, err := core.RecordFailure(prog, cfg, 0); err == nil {
			if failing == nil {
				failing = s
			}
			continue
		}
		if passing == nil {
			s, err := core.RecordRegion(prog, cfg, pinplay.RegionSpec{})
			if err != nil {
				t.Fatal(err)
			}
			passing = s
		}
	}
	if failing == nil || passing == nil {
		t.Fatal("could not find both outcomes")
	}
	d, err := core.DualSlice(failing, passing, "x")
	if err != nil {
		t.Fatalf("DualSlice: %v", err)
	}
	if len(d.Common) == 0 {
		t.Error("no common statements")
	}
	if _, err := core.DualSlice(failing, passing, "nope"); err == nil {
		t.Error("unknown variable accepted")
	}
	other, _ := cc.CompileSource("o.c", "int main() { return 0; }")
	otherSess, err := core.RecordRegion(other, pinplay.LogConfig{Seed: 1}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.DualSlice(failing, otherSess, "x"); err == nil {
		t.Error("mismatched programs accepted")
	}
}
