package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/pinplay"
	"repro/internal/vm"
)

// ReverseReplayer adds reverse debugging on top of deterministic replay,
// the way the paper's related-work section proposes for DrDebug:
// checkpoint the architectural state periodically during (forward)
// replay, and implement every backward command as "restore the nearest
// earlier checkpoint, then replay forward" — user-level check-pointing
// rather than OS support.
//
// Positions are measured in instructions executed since region entry; the
// mapping from a position to scheduler and syscall-log state is exact
// because replay is deterministic.
type ReverseReplayer struct {
	sess *Session

	m        *vm.Machine
	executed int64
	total    int64

	// Schedule cursor: quanta index and instructions consumed within it.
	qi   int
	qoff int64

	// Nondeterministic syscalls consumed so far, per thread.
	sysConsumed map[int]int
	sysWatch    *sysCounter

	interval    int64
	checkpoints []reverseCheckpoint
}

type reverseCheckpoint struct {
	executed    int64
	qi          int
	qoff        int64
	sysConsumed map[int]int
	state       *vm.MachineState
}

// sysCounter counts nondeterministic syscall results consumed per thread.
type sysCounter struct {
	vm.NopTracer
	consumed map[int]int
}

func (s *sysCounter) OnSyscall(r vm.SyscallRecord) {
	switch r.Num {
	case isa.SysRead, isa.SysTime, isa.SysRand:
		s.consumed[r.Tid]++
	}
}

// DefaultCheckpointInterval is the spacing between reverse-debugging
// checkpoints, in executed instructions.
const DefaultCheckpointInterval int64 = 10_000

// NewReverseReplayer prepares a reverse-capable replay of the session's
// pinball. interval is the checkpoint spacing (0 uses the default).
func (s *Session) NewReverseReplayer(interval int64) *ReverseReplayer {
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	r := &ReverseReplayer{
		sess:        s,
		total:       s.Pinball.TotalQuantumInstrs(),
		interval:    interval,
		sysConsumed: map[int]int{},
	}
	r.reset()
	// Checkpoint 0 is the region entry itself.
	r.checkpoint()
	return r
}

// reset positions the replay at region entry.
func (r *ReverseReplayer) reset() {
	r.sysWatch = &sysCounter{consumed: map[int]int{}}
	r.m = pinplay.NewReplayMachine(r.sess.Prog, r.sess.Pinball, r.sysWatch)
	r.executed = 0
	r.qi = 0
	r.qoff = 0
	r.sysConsumed = r.sysWatch.consumed
}

// Machine returns the machine at the current position. The pointer
// changes after backward motion; callers must re-fetch it.
func (r *ReverseReplayer) Machine() *vm.Machine { return r.m }

// Executed returns the current position (instructions since region
// entry).
func (r *ReverseReplayer) Executed() int64 { return r.executed }

// Total returns the region length.
func (r *ReverseReplayer) Total() int64 { return r.total }

// AtEnd reports whether the replay has consumed the region.
func (r *ReverseReplayer) AtEnd() bool {
	return r.executed >= r.total || !r.m.Running()
}

// checkpoint records the current state.
func (r *ReverseReplayer) checkpoint() {
	consumed := make(map[int]int, len(r.sysConsumed))
	for k, v := range r.sysConsumed {
		consumed[k] = v
	}
	r.checkpoints = append(r.checkpoints, reverseCheckpoint{
		executed:    r.executed,
		qi:          r.qi,
		qoff:        r.qoff,
		sysConsumed: consumed,
		state:       r.m.Snapshot(),
	})
}

// StepForward executes one instruction, maintaining the schedule cursor
// and taking periodic checkpoints. It returns false at region end or
// machine stop.
func (r *ReverseReplayer) StepForward() bool {
	if r.AtEnd() {
		// Reproduce a trailing fault not counted in quanta, exactly like
		// pinplay.Replay.
		if r.executed >= r.total && r.sess.Pinball.Failure != nil && r.m.Running() {
			r.m.StepOne()
		}
		return false
	}
	before := r.m.Steps()
	ok := r.m.StepOne()
	if r.m.Steps() > before {
		// An instruction executed even if the machine then stopped (a
		// failing assert executes and is counted in the quanta).
		r.executed++
		quanta := r.sess.Pinball.Quanta
		r.qoff++
		for r.qi < len(quanta) && r.qoff >= quanta[r.qi].Count {
			r.qoff -= quanta[r.qi].Count
			r.qi++
		}
		if n := len(r.checkpoints); ok && r.executed-r.checkpoints[n-1].executed >= r.interval {
			r.checkpoint()
		}
	}
	return ok
}

// RunTo moves the current position to target (in executed instructions),
// forward or backward. Backward motion restores the nearest earlier
// checkpoint and replays forward.
func (r *ReverseReplayer) RunTo(target int64) error {
	if target < 0 {
		target = 0
	}
	if target > r.total {
		target = r.total
	}
	if target < r.executed {
		if err := r.restoreBefore(target); err != nil {
			return err
		}
	}
	for r.executed < target {
		ok := r.StepForward()
		if r.executed >= target {
			break
		}
		if !ok {
			return fmt.Errorf("core: replay stopped at %d before reaching %d", r.executed, target)
		}
	}
	return nil
}

// StepBack moves n instructions backwards.
func (r *ReverseReplayer) StepBack(n int64) error {
	if n <= 0 {
		n = 1
	}
	return r.RunTo(r.executed - n)
}

// restoreBefore restores the latest checkpoint at or before target.
func (r *ReverseReplayer) restoreBefore(target int64) error {
	idx := -1
	for i := len(r.checkpoints) - 1; i >= 0; i-- {
		if r.checkpoints[i].executed <= target {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.reset()
		return nil
	}
	cp := r.checkpoints[idx]

	// Rebuild the machine at the checkpoint: restored state, schedule
	// suffix, syscall log positioned past the consumed prefix.
	pb := r.sess.Pinball
	var suffix []vm.Quantum
	if cp.qi < len(pb.Quanta) {
		first := pb.Quanta[cp.qi]
		first.Count -= cp.qoff
		if first.Count > 0 {
			suffix = append(suffix, first)
		}
		suffix = append(suffix, pb.Quanta[cp.qi+1:]...)
	}
	r.sysWatch = &sysCounter{consumed: make(map[int]int, len(cp.sysConsumed))}
	for k, v := range cp.sysConsumed {
		r.sysWatch.consumed[k] = v
	}
	r.m = vm.NewFromState(r.sess.Prog, cp.state, vm.Config{
		Sched:  vm.NewReplayScheduler(suffix),
		Env:    vm.NewReplayEnvSkipping(pb.Syscalls, cp.sysConsumed),
		Tracer: r.sysWatch,
	})
	r.executed = cp.executed
	r.qi = cp.qi
	r.qoff = cp.qoff
	r.sysConsumed = r.sysWatch.consumed
	return nil
}

// Checkpoints returns how many checkpoints have been taken.
func (r *ReverseReplayer) Checkpoints() int { return len(r.checkpoints) }
