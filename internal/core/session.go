// Package core is DrDebug's façade: it wires the PinPlay-style
// record/replay system, the dynamic slicer and the execution-slice
// machinery into the cyclic-debugging workflow of the paper (Figure 2):
// capture a buggy region into a pinball, replay it deterministically any
// number of times, compute highly precise dynamic slices during replay,
// turn an interesting slice into a slice pinball, and step through the
// execution slice while examining program state.
package core

import (
	"fmt"

	"repro/internal/dualslice"
	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/races"
	"repro/internal/slice"
	"repro/internal/supervisor"
	"repro/internal/tracer"
	"repro/internal/vm"
)

// Session is one cyclic-debugging session: a program plus the pinball
// capturing the execution (region) under study. Traces and slicers are
// computed lazily and cached — PinPlay's repeatability guarantee makes
// one trace valid for every replay of the same pinball.
type Session struct {
	Prog    *isa.Program
	Pinball *pinball.Pinball

	trace    *tracer.Trace
	slicer   *slice.Slicer
	parallel *slice.ParallelSlicer
	workers  int
	opts     slice.Options
	limits   vm.Limits
	sup      supervisor.Options

	// Flight-recorder support: a gapped pinball is materialised once into
	// eff by gap-bridging re-execution (BridgePinball); bridge is that
	// run's verification report. Every replay-driven operation then works
	// on the complete effective pinball, and traces/slices carry the gap
	// overlay for provenance tagging.
	eff    *pinball.Pinball
	bridge *pinplay.BridgeReport
}

// SetSupervisor configures the retry/watchdog policy ReplaySupervised
// uses. The zero value is the supervisor's default policy.
func (s *Session) SetSupervisor(o supervisor.Options) { s.sup = o }

// SetLimits bounds every replay the session performs (trace collection,
// relogging, Replay): instruction budget, wall-clock deadline, memory
// cap, cancellation. The zero value imposes no bounds.
func (s *Session) SetLimits(l vm.Limits) { s.limits = l }

// RecordRegion captures an execution region into a pinball (fast-forward
// SkipMain, record LengthMain main-thread instructions) and opens a
// session on it.
func RecordRegion(prog *isa.Program, cfg pinplay.LogConfig, spec pinplay.RegionSpec) (*Session, error) {
	pb, err := pinplay.Log(prog, cfg, spec)
	if err != nil {
		return nil, err
	}
	return Open(prog, pb), nil
}

// RecordFailure captures from skipMain to the program's failure point —
// the "whole program execution region" workflow of Table 3 when skipMain
// is 0 — and opens a session.
func RecordFailure(prog *isa.Program, cfg pinplay.LogConfig, skipMain int64) (*Session, error) {
	pb, err := pinplay.LogUntilFailure(prog, cfg, skipMain)
	if err != nil {
		return nil, err
	}
	return Open(prog, pb), nil
}

// Open starts a session over an existing pinball.
func Open(prog *isa.Program, pb *pinball.Pinball) *Session {
	return &Session{Prog: prog, Pinball: pb, opts: slice.DefaultOptions()}
}

// LoadSession opens a session from a pinball file.
func LoadSession(prog *isa.Program, pinballPath string) (*Session, error) {
	pb, err := pinball.Load(pinballPath)
	if err != nil {
		return nil, err
	}
	if pb.ProgramName != prog.Name {
		return nil, fmt.Errorf("core: pinball was recorded from %q, not %q", pb.ProgramName, prog.Name)
	}
	return Open(prog, pb), nil
}

// SetSliceOptions configures the slicer used by subsequent slice requests,
// invalidating any cached slicer.
func (s *Session) SetSliceOptions(opts slice.Options) {
	s.opts = opts
	s.slicer = nil
	s.parallel = nil
}

// SetParallelWorkers routes subsequent slice requests through the
// sharded parallel engine with the given worker count (0 restores the
// sequential slicer). Slice results are bit-identical either way; only
// the build cost changes.
func (s *Session) SetParallelWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n != s.workers {
		s.workers = n
		s.parallel = nil
	}
}

// effective returns the pinball replays should run against: the
// session's own pinball, or — for a flight-recorder pinball with
// evicted windows — the complete pinball materialised by gap bridging.
// Materialisation happens once; hash-verification failures degrade to
// estimated windows (reported by GapReport) rather than failing, while
// checkpoint divergence (a corrupted recipe) is a hard typed error.
func (s *Session) effective() (*pinball.Pinball, error) {
	if !s.Pinball.Gapped() {
		return s.Pinball, nil
	}
	if s.eff != nil {
		return s.eff, nil
	}
	eff, brep, err := pinplay.BridgePinball(s.Prog, s.Pinball, pinplay.ReplayOptions{Limits: s.limits})
	if err != nil {
		return nil, fmt.Errorf("core: bridging flight-recorder gaps: %w", err)
	}
	s.eff, s.bridge = eff, brep
	return eff, nil
}

// Bridge forces materialisation of a flight-recorder pinball and
// returns the gap report (nil for ordinary pinballs).
func (s *Session) Bridge() (*pinplay.BridgeReport, error) {
	if _, err := s.effective(); err != nil {
		return nil, err
	}
	return s.bridge, nil
}

// GapReport returns the gap-bridging report when the session has
// materialised a flight-recorder pinball, nil otherwise.
func (s *Session) GapReport() *pinplay.BridgeReport { return s.bridge }

// Replay deterministically re-executes the session's pinball, with an
// optional observer, and returns the machine at the end of the region.
// Divergence checkpoints recorded in the pinball are verified.
func (s *Session) Replay(t vm.Tracer) (*vm.Machine, error) {
	pb, err := s.effective()
	if err != nil {
		return nil, err
	}
	m, _, err := pinplay.ReplayWith(s.Prog, pb, pinplay.ReplayOptions{Tracer: t, Limits: s.limits})
	return m, err
}

// ReplaySupervised replays the session's pinball under the self-healing
// supervisor: panics are isolated, retryable failures retried with
// backoff, and a replay that keeps diverging falls back to a
// checkpoint-anchored partial replay (result.Degraded). The result's
// Report is non-nil in every outcome.
func (s *Session) ReplaySupervised(t vm.Tracer) (*supervisor.ReplayResult, error) {
	pb, err := s.effective()
	if err != nil {
		return nil, err
	}
	return supervisor.Replay(s.Prog, pb, s.sup,
		pinplay.ReplayOptions{Tracer: t, Limits: s.limits})
}

// LoadSessionSalvage opens a session from a pinball file, salvaging the
// file when it does not load cleanly. The report is nil when the file
// was intact and non-nil when salvage ran (successfully or not).
func LoadSessionSalvage(prog *isa.Program, pinballPath string) (*Session, *pinball.SalvageReport, error) {
	s, err := LoadSession(prog, pinballPath)
	if err == nil {
		return s, nil, nil
	}
	pb, rep, serr := pinball.Salvage(pinballPath)
	if serr != nil {
		return nil, rep, fmt.Errorf("core: %w (salvage also failed: %v)", err, serr)
	}
	if pb.ProgramName != prog.Name {
		return nil, rep, fmt.Errorf("core: pinball was recorded from %q, not %q", pb.ProgramName, prog.Name)
	}
	return Open(prog, pb), rep, nil
}

// ReplayMachine returns an un-run machine positioned at region entry; the
// interactive debugger drives it instruction by instruction. For a
// flight-recorder pinball the machine replays the materialised effective
// pinball; if bridging fails the original gapped pinball is used and the
// machine will surface the inconsistency as divergence.
func (s *Session) ReplayMachine(t vm.Tracer) *vm.Machine {
	pb, err := s.effective()
	if err != nil {
		pb = s.Pinball
	}
	return pinplay.NewReplayMachine(s.Prog, pb, t)
}

// Trace returns the session's dynamic-information trace (def/use events,
// shared-memory order, global trace), collecting it on first use by
// replaying the region with the tracing pintool attached.
func (s *Session) Trace() (*tracer.Trace, error) {
	if s.trace != nil {
		return s.trace, nil
	}
	pb, err := s.effective()
	if err != nil {
		return nil, err
	}
	// The collector needs the replay machine to construct itself, so it is
	// patched in through the OnMachine hook (the replay owns machine
	// construction now that it also wires in checkpoint validation).
	var col *tracer.Collector
	hook := &lateTracer{}
	_, _, err = pinplay.ReplayWith(s.Prog, pb, pinplay.ReplayOptions{
		Tracer: hook, Limits: s.limits,
		OnMachine: func(m *vm.Machine) {
			col = tracer.NewCollector(m)
			hook.t = col
		},
	})
	if err != nil {
		return nil, fmt.Errorf("core: trace collection: %w", err)
	}
	tr := col.Trace()
	if err := tr.BuildGlobal(); err != nil {
		return nil, err
	}
	// Flight-recorder pinball: overlay the gap spans so slices can tag
	// every dependence that crosses an evicted window.
	if s.Pinball.Gapped() {
		est := make(map[int64]bool, len(s.bridge.Estimated))
		for _, e := range s.bridge.Estimated {
			est[e.ID] = true
		}
		gaps := make([]tracer.GapSpan, 0, len(s.Pinball.Evictions))
		for _, e := range s.Pinball.Evictions {
			gaps = append(gaps, tracer.GapSpan{From: e.FromStep, To: e.ToStep, Estimated: est[e.ID]})
		}
		tr.SetGaps(gaps)
	}
	s.trace = tr
	return tr, nil
}

// lateTracer delegates to a tracer chosen after construction — the
// OnMachine indirection Trace uses.
type lateTracer struct{ t vm.Tracer }

func (h *lateTracer) OnInstr(ev *vm.InstrEvent)    { h.t.OnInstr(ev) }
func (h *lateTracer) OnOrderEdge(e vm.OrderEdge)   { h.t.OnOrderEdge(e) }
func (h *lateTracer) OnSyscall(r vm.SyscallRecord) { h.t.OnSyscall(r) }

// Slicer returns the session's slicer (forward analysis run once, then
// reused across slice requests).
func (s *Session) Slicer() (*slice.Slicer, error) {
	if s.slicer != nil {
		return s.slicer, nil
	}
	tr, err := s.Trace()
	if err != nil {
		return nil, err
	}
	sl, err := slice.New(s.Prog, tr, s.opts)
	if err != nil {
		return nil, err
	}
	s.slicer = sl
	return sl, nil
}

// ParallelSlicer returns the session's sharded parallel engine,
// building it (or fetching it from the process-lifetime engine cache,
// keyed by the pinball's content identity) on first use.
func (s *Session) ParallelSlicer() (*slice.ParallelSlicer, error) {
	if s.parallel != nil {
		return s.parallel, nil
	}
	tr, err := s.Trace()
	if err != nil {
		return nil, err
	}
	pb, err := s.effective()
	if err != nil {
		return nil, err
	}
	eng, err := slice.CachedParallel(pb.ID(), s.Prog, tr, s.opts, slice.ParallelOptions{
		Workers:    s.workers,
		WindowSize: pinplay.WindowSize(pb),
		Ctx:        s.limits.Ctx,
	})
	if err != nil {
		return nil, err
	}
	s.parallel = eng
	return eng, nil
}

// Querier returns the engine answering the session's slice requests:
// the parallel engine when SetParallelWorkers enabled it, the
// sequential slicer otherwise.
func (s *Session) Querier() (slice.Querier, error) {
	if s.workers > 0 {
		return s.ParallelSlicer()
	}
	return s.Slicer()
}

// SliceAtFailure computes the backward slice of the failure point (the
// failing thread's last instruction, e.g. the assert).
func (s *Session) SliceAtFailure() (*slice.Slice, error) {
	if s.Pinball.Failure == nil {
		return nil, fmt.Errorf("core: session's pinball captured no failure")
	}
	tr, err := s.Trace()
	if err != nil {
		return nil, err
	}
	crit, err := slice.LastEventOf(tr, s.Pinball.Failure.Tid)
	if err != nil {
		return nil, err
	}
	return s.SliceFor(crit)
}

// ResolveCriterion maps a request-level criterion spec — a global
// variable name, a dynamic source-line instance, or (neither given) the
// recorded failure point — onto its trace reference, without slicing.
// The fleet's distributed shard runner resolves once and then carries
// the reference inside the query state from worker to worker.
func (s *Session) ResolveCriterion(varName string, tid int, line int32, nth int) (tracer.Ref, error) {
	tr, err := s.Trace()
	if err != nil {
		return tracer.Ref{}, err
	}
	switch {
	case varName != "":
		sym := s.Prog.SymbolByName(varName)
		if sym == nil {
			return tracer.Ref{}, fmt.Errorf("core: no global variable %q", varName)
		}
		return slice.LastReadOf(tr, sym.Addr)
	case line > 0:
		if nth <= 0 {
			nth = 1
		}
		return slice.EventAtLine(tr, s.Prog, tid, line, nth)
	}
	if s.Pinball.Failure == nil {
		return tracer.Ref{}, fmt.Errorf("core: session's pinball captured no failure")
	}
	return slice.LastEventOf(tr, s.Pinball.Failure.Tid)
}

// SliceFor computes the backward slice for an arbitrary criterion. For
// flight-recorder sessions the result is provenance-annotated: every
// member and edge that touches a bridged or estimated window is tagged,
// and the slice carries a provenance summary.
func (s *Session) SliceFor(crit tracer.Ref) (*slice.Slice, error) {
	q, err := s.Querier()
	if err != nil {
		return nil, err
	}
	sl, err := q.Slice(crit)
	if err != nil {
		return nil, err
	}
	if s.trace != nil && len(s.trace.Gaps) > 0 {
		slice.AnnotateProvenance(s.trace, sl)
	}
	return sl, nil
}

// SliceForVariable computes the slice of the last read of a named global
// variable — the "slice for any interested variable" workflow.
func (s *Session) SliceForVariable(name string) (*slice.Slice, error) {
	sym := s.Prog.SymbolByName(name)
	if sym == nil {
		return nil, fmt.Errorf("core: no global variable %q", name)
	}
	tr, err := s.Trace()
	if err != nil {
		return nil, err
	}
	crit, err := slice.LastReadOf(tr, sym.Addr)
	if err != nil {
		return nil, err
	}
	return s.SliceFor(crit)
}

// SliceAtLine computes the slice for the nth execution of the given
// source line in the given thread.
func (s *Session) SliceAtLine(tid int, line int32, nth int) (*slice.Slice, error) {
	tr, err := s.Trace()
	if err != nil {
		return nil, err
	}
	crit, err := slice.EventAtLine(tr, s.Prog, tid, line, nth)
	if err != nil {
		return nil, err
	}
	return s.SliceFor(crit)
}

// ExecutionSlice converts a slice into exclusion regions and relogs the
// region pinball into a slice pinball (paper §4, Figure 4b).
func (s *Session) ExecutionSlice(sl *slice.Slice) (*pinball.Pinball, []pinball.Exclusion, error) {
	tr, err := s.Trace()
	if err != nil {
		return nil, nil, err
	}
	pb, err := s.effective()
	if err != nil {
		return nil, nil, err
	}
	ex := slice.BuildExclusions(tr, sl)
	spb, err := pinplay.RelogWith(s.Prog, pb, ex, pinplay.ReplayOptions{Limits: s.limits})
	if err != nil {
		return nil, nil, err
	}
	return spb, ex, nil
}

// DetectRaces runs happens-before race detection over the session's
// trace. Each reported racy access is a valid slicing criterion
// (Race.Second can be passed to SliceFor), connecting race detection to
// root-cause slicing.
func (s *Session) DetectRaces() (*races.Report, error) {
	tr, err := s.Trace()
	if err != nil {
		return nil, err
	}
	return races.Detect(tr, vm.StackBase)
}

// DualSlice slices the same criterion in this (failing) session and a
// passing session of the same program, and diffs the results — dual
// slicing per Weeratunge et al. The criterion is the last write to the
// named global in each run, falling back to the failure point / last
// event when the variable is never written.
func DualSlice(failing, passing *Session, varName string) (*dualslice.Diff, error) {
	if failing.Prog != passing.Prog {
		return nil, fmt.Errorf("core: dual slice needs two sessions over the same program")
	}
	sliceIn := func(s *Session) (*tracer.Trace, *slice.Slice, error) {
		tr, err := s.Trace()
		if err != nil {
			return nil, nil, err
		}
		sym := s.Prog.SymbolByName(varName)
		if sym == nil {
			return nil, nil, fmt.Errorf("core: no global variable %q", varName)
		}
		var crit tracer.Ref
		found := false
		for g := len(tr.Global) - 1; g >= 0 && !found; g-- {
			e := tr.Entry(tr.Global[g])
			if e.EffAddr >= sym.Addr && e.EffAddr < sym.Addr+sym.Size {
				crit = tr.Global[g]
				found = true
			}
		}
		if !found {
			crit = tr.Global[len(tr.Global)-1]
		}
		sl, err := s.SliceFor(crit)
		return tr, sl, err
	}
	ftr, fsl, err := sliceIn(failing)
	if err != nil {
		return nil, err
	}
	ptr, psl, err := sliceIn(passing)
	if err != nil {
		return nil, err
	}
	return dualslice.Compare(failing.Prog, ftr, fsl, ptr, psl), nil
}

// SaveSlice persists a slice (with its exclusion regions) so it can be
// reused across debug sessions.
func (s *Session) SaveSlice(sl *slice.Slice, path string) error {
	tr, err := s.Trace()
	if err != nil {
		return err
	}
	ex := slice.BuildExclusions(tr, sl)
	return slice.ToFile(s.Prog, tr, sl, ex).Save(path)
}

// LoadSlice loads a previously saved slice and resolves it against this
// session's trace.
func (s *Session) LoadSlice(path string) (*slice.Slice, error) {
	f, err := slice.LoadFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := s.Trace()
	if err != nil {
		return nil, err
	}
	return f.Resolve(tr)
}
