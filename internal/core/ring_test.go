package core_test

import (
	"bytes"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/tracer"
)

// ringDiffSrc keeps two slice criteria live: "counter" accumulates across
// the whole region (its backward slice reaches into the oldest — evicted —
// windows), while "flag" is assigned a constant just before the region
// end (its slice stays inside the always-retained final window).
const ringDiffSrc = `
int counter;
int mtx;
int flag;
int worker(int id) {
	int i;
	for (i = 0; i < 60; i++) {
		lock(&mtx);
		counter = counter + 1;
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t1 = spawn(worker, 1);
	worker(0);
	join(t1);
	flag = 7;
	write(counter);
	write(flag);
	return 0;
}`

func ringDiffProg(t *testing.T) *isa.Program {
	t.Helper()
	prog, err := cc.CompileSource("ringdiff.c", ringDiffSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func ringDiffConfig() pinplay.LogConfig {
	return pinplay.LogConfig{Seed: 9, MeanQuantum: 17, RandSeed: 3}
}

// ringDiffSessions records the same execution twice — once in full, once
// in flight-recorder mode with a budget tight enough to evict windows —
// and opens a session on each.
func ringDiffSessions(t *testing.T) (full, ring *core.Session) {
	t.Helper()
	prog := ringDiffProg(t)

	fullPB, err := pinplay.Log(prog, ringDiffConfig(), pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("full log: %v", err)
	}
	ringCfg := ringDiffConfig()
	ringCfg.RingBytes = 400
	ringCfg.JournalEvery = 200
	ringPB, err := pinplay.Log(prog, ringCfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("ring log: %v", err)
	}
	if !ringPB.Gapped() {
		t.Fatalf("ring budget evicted nothing (region %d instructions)", ringPB.RegionInstrs)
	}
	if ringPB.RegionInstrs != fullPB.RegionInstrs {
		t.Fatalf("ring region %d != full region %d", ringPB.RegionInstrs, fullPB.RegionInstrs)
	}
	return core.Open(prog, fullPB), core.Open(prog, ringPB)
}

// sliceKey projects a slice onto replay-stable coordinates (per-thread
// dynamic indices) so slices from two different sessions compare.
type sliceKey struct {
	members [][2]int64
	deps    [][5]int64
}

func keyOf(tr *tracer.Trace, sl *slice.Slice) sliceKey {
	var k sliceKey
	for _, m := range sl.Members {
		e := tr.Entry(m)
		k.members = append(k.members, [2]int64{int64(m.Tid), e.Idx})
	}
	for _, d := range sl.Deps {
		fe, te := tr.Entry(d.From), tr.Entry(d.To)
		k.deps = append(k.deps, [5]int64{int64(d.From.Tid), fe.Idx, int64(d.To.Tid), te.Idx, int64(d.Kind)})
	}
	return k
}

func equalKeys(a, b sliceKey) bool {
	if len(a.members) != len(b.members) || len(a.deps) != len(b.deps) {
		return false
	}
	for i := range a.members {
		if a.members[i] != b.members[i] {
			return false
		}
	}
	for i := range a.deps {
		if a.deps[i] != b.deps[i] {
			return false
		}
	}
	return true
}

// TestRingSliceDifferential is the flight-recorder correctness property:
// slicing a ring pinball goes through gap-bridging replay, and the
// resulting slices are bit-identical (members, dependence edges, digest)
// to slices of the full recording of the same execution. A slice that
// stays inside retained windows is all-exact; a slice whose closure
// crosses evicted windows carries a provenance tag on every non-exact
// edge, exactly matching a recomputation from the trace's gap spans.
func TestRingSliceDifferential(t *testing.T) {
	full, ring := ringDiffSessions(t)

	for _, tc := range []struct {
		variable  string
		wantExact bool
	}{
		{"counter", false}, // closure reaches the evicted oldest windows
		{"flag", true},     // closure stays inside the retained tail
	} {
		slFull, err := full.SliceForVariable(tc.variable)
		if err != nil {
			t.Fatalf("full slice %s: %v", tc.variable, err)
		}
		slRing, err := ring.SliceForVariable(tc.variable)
		if err != nil {
			t.Fatalf("ring slice %s: %v", tc.variable, err)
		}

		// Bit-identical content, gap or no gap.
		trFull, _ := full.Trace()
		trRing, _ := ring.Trace()
		if trFull.Len() != trRing.Len() {
			t.Fatalf("%s: bridged trace length %d != full %d", tc.variable, trRing.Len(), trFull.Len())
		}
		if !equalKeys(keyOf(trFull, slFull), keyOf(trRing, slRing)) {
			t.Errorf("%s: ring slice differs from full-trace slice", tc.variable)
		}
		if df, dr := slice.Summarize(slFull).Digest, slice.Summarize(slRing).Digest; df != dr {
			t.Errorf("%s: ring digest %s != full digest %s", tc.variable, dr, df)
		}

		// Provenance: the ring slice is annotated (its trace has gaps),
		// the full slice is not.
		if slFull.Prov != nil {
			t.Errorf("%s: full-trace slice unexpectedly annotated", tc.variable)
		}
		if slRing.Prov == nil {
			t.Fatalf("%s: ring slice not annotated", tc.variable)
		}
		if got := slRing.Prov.Exact(); got != tc.wantExact {
			t.Errorf("%s: provenance exact = %v, want %v (%s)", tc.variable, got, tc.wantExact, slRing.Prov)
		}
		if slRing.Prov.Degraded() {
			t.Errorf("%s: clean bridge reported estimated content: %s", tc.variable, slRing.Prov)
		}

		// Every edge's tag matches an independent recomputation from the
		// trace's gap spans: worst provenance of the two endpoints.
		var bridged int
		for _, d := range slRing.Deps {
			want := trRing.ProvenanceOf(d.From)
			if p := trRing.ProvenanceOf(d.To); p > want {
				want = p
			}
			if d.Provenance != want {
				t.Fatalf("%s: edge tagged %s, recomputed %s", tc.variable, d.Provenance, want)
			}
			if d.Provenance != tracer.ProvExact && d.Confidence != d.Provenance.Confidence() {
				t.Fatalf("%s: edge confidence %v, want %v", tc.variable, d.Confidence, d.Provenance.Confidence())
			}
			if d.Provenance == tracer.ProvBridged {
				bridged++
			}
		}
		if !tc.wantExact && bridged == 0 {
			t.Errorf("%s: gap-crossing slice has no bridged edges", tc.variable)
		}
	}
}

// TestRingSliceDeterministic pins byte-determinism end to end: recording
// the same execution in ring mode twice yields byte-identical pinballs,
// and slicing the ring pinball sequentially, in a fresh session, and with
// the parallel engine at several worker counts yields the same digest and
// the same provenance summary every time.
func TestRingSliceDeterministic(t *testing.T) {
	prog := ringDiffProg(t)
	cfg := ringDiffConfig()
	cfg.RingBytes = 400
	cfg.JournalEvery = 200

	pb1, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	pb2, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("relog: %v", err)
	}
	b1, err1 := pb1.EncodeBytes()
	b2, err2 := pb2.EncodeBytes()
	if err1 != nil || err2 != nil {
		t.Fatalf("encode: %v / %v", err1, err2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two ring recordings of the same execution differ byte-for-byte")
	}

	var wantDigest string
	var wantProv slice.ProvSummary
	for i, workers := range []int{0, 1, 4, 7} {
		sess := core.Open(prog, pb1)
		sess.SetParallelWorkers(workers)
		sl, err := sess.SliceForVariable("counter")
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sl.Prov == nil {
			t.Fatalf("workers=%d: slice not annotated", workers)
		}
		digest := slice.Summarize(sl).Digest
		if i == 0 {
			wantDigest, wantProv = digest, *sl.Prov
			continue
		}
		if digest != wantDigest {
			t.Errorf("workers=%d: digest %s, want %s", workers, digest, wantDigest)
		}
		if *sl.Prov != wantProv {
			t.Errorf("workers=%d: provenance %+v, want %+v", workers, *sl.Prov, wantProv)
		}
	}
}
