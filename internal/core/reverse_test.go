package core_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pinplay"
)

// reverseSession records a deterministic single-bug run with a known
// monotonically updated global, so positions map to observable state.
func reverseSession(t *testing.T) *core.Session {
	t.Helper()
	prog, err := cc.CompileSource("count.c", `
int tick;
int other;
int worker(int n) {
	int i;
	for (i = 0; i < 300; i++) { other = other + 1; }
	return 0;
}
int main() {
	int i;
	int t = spawn(worker, 0);
	for (i = 0; i < 500; i++) { tick = tick + 1; }
	join(t);
	assert(tick == 0);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.RecordFailure(prog, pinplay.LogConfig{Seed: 3, MeanQuantum: 40}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tickAt replays forward to a position and reads the counter.
func tickAt(t *testing.T, s *core.Session, rr *core.ReverseReplayer, pos int64) int64 {
	t.Helper()
	if err := rr.RunTo(pos); err != nil {
		t.Fatal(err)
	}
	sym := s.Prog.SymbolByName("tick")
	return rr.Machine().Mem.Read(sym.Addr)
}

func TestReverseRunToIsConsistent(t *testing.T) {
	s := reverseSession(t)
	rr := s.NewReverseReplayer(500)

	// Forward to several positions, remembering state; then revisit them
	// in arbitrary (including backward) order and require identical
	// state.
	positions := []int64{100, 1500, 3000, 700, 2500, 0, 3000, 42}
	want := map[int64]int64{}
	for _, p := range positions {
		want[p] = tickAt(t, s, rr, p)
	}
	// Shuffle-ish revisit order.
	for _, p := range []int64{3000, 0, 2500, 100, 42, 1500, 700} {
		if got := tickAt(t, s, rr, p); got != want[p] {
			t.Errorf("position %d: tick = %d on revisit, was %d", p, got, want[p])
		}
	}
	if rr.Checkpoints() < 2 {
		t.Errorf("expected multiple checkpoints, got %d", rr.Checkpoints())
	}
}

func TestReverseStepBack(t *testing.T) {
	s := reverseSession(t)
	rr := s.NewReverseReplayer(300)
	if err := rr.RunTo(2000); err != nil {
		t.Fatal(err)
	}
	before := rr.Executed()
	if err := rr.StepBack(1); err != nil {
		t.Fatal(err)
	}
	if rr.Executed() != before-1 {
		t.Fatalf("StepBack(1): at %d, want %d", rr.Executed(), before-1)
	}
	if err := rr.StepBack(499); err != nil {
		t.Fatal(err)
	}
	if rr.Executed() != before-500 {
		t.Fatalf("StepBack(499): at %d, want %d", rr.Executed(), before-500)
	}
	// Stepping back past the start clamps to region entry.
	if err := rr.StepBack(1 << 40); err != nil {
		t.Fatal(err)
	}
	if rr.Executed() != 0 {
		t.Fatalf("StepBack past start: at %d", rr.Executed())
	}
}

func TestReverseReachesFailureAtEnd(t *testing.T) {
	s := reverseSession(t)
	rr := s.NewReverseReplayer(0)
	for rr.StepForward() {
	}
	m := rr.Machine()
	if m.Failure() == nil {
		t.Fatal("forward replay through ReverseReplayer missed the failure")
	}
	// Now go back and forward again; the failure must reproduce.
	if err := rr.StepBack(50); err != nil {
		t.Fatal(err)
	}
	if rr.Machine().Failure() != nil {
		t.Fatal("failure still present after stepping back")
	}
	for rr.StepForward() {
	}
	if rr.Machine().Failure() == nil {
		t.Fatal("failure not reproduced after reverse+forward")
	}
}

func TestReverseSyscallConsistency(t *testing.T) {
	// A program whose state depends on logged nondeterministic syscalls:
	// replays from checkpoints must feed the same values.
	prog, err := cc.CompileSource("rng.c", `
int acc;
int main() {
	int i;
	for (i = 0; i < 200; i++) {
		acc = acc + rand() % 10 + read();
	}
	assert(acc == 0 - 1);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]int64, 200)
	for i := range input {
		input[i] = int64(i % 7)
	}
	s, err := core.RecordFailure(prog, pinplay.LogConfig{Seed: 2, Input: input, RandSeed: 99}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rr := s.NewReverseReplayer(250)
	sym := s.Prog.SymbolByName("acc")

	if err := rr.RunTo(rr.Total()); err != nil {
		t.Fatal(err)
	}
	finalAcc := rr.Machine().Mem.Read(sym.Addr)

	// Bounce around; the final value must be identical every time we
	// return to the end.
	for _, back := range []int64{100, 1000, rr.Total() / 2} {
		if err := rr.StepBack(back); err != nil {
			t.Fatal(err)
		}
		if err := rr.RunTo(rr.Total()); err != nil {
			t.Fatal(err)
		}
		if got := rr.Machine().Mem.Read(sym.Addr); got != finalAcc {
			t.Fatalf("after -%d/+%d bounce: acc = %d, want %d", back, back, got, finalAcc)
		}
	}
}

func TestReverseThreadCountsRestored(t *testing.T) {
	s := reverseSession(t)
	rr := s.NewReverseReplayer(400)
	if err := rr.RunTo(1200); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int64{}
	for _, th := range rr.Machine().Threads {
		counts[th.ID] = th.Count
	}
	if err := rr.RunTo(3000); err != nil {
		t.Fatal(err)
	}
	if err := rr.RunTo(1200); err != nil {
		t.Fatal(err)
	}
	for _, th := range rr.Machine().Threads {
		if counts[th.ID] != th.Count {
			t.Errorf("thread %d count %d after reverse, was %d", th.ID, th.Count, counts[th.ID])
		}
	}
	_ = isa.NumRegs
}
