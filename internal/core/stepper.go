package core

import (
	"fmt"

	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/vm"
)

// StepPoint describes where a slice-stepping session stopped: the slice
// member instruction that just executed, with its source position and the
// value it computed (for instructions that produce one).
type StepPoint struct {
	Tid  int
	PC   int64
	Idx  int64
	Line int32
	Src  string
	// HasValue/Value give the freshly computed value at this point: the
	// written register or memory word.
	HasValue bool
	Value    int64
}

// Stepper replays an execution slice and stops at each slice member,
// letting the user "step from the execution of one statement in the slice
// to the next while examining values of program variables" — the paper's
// capability that no prior slicing tool provides.
type Stepper struct {
	sess    *Session
	runner  *pinplay.SliceRunner
	members map[memberKey]bool
	watch   *stepWatcher
	lastSrc string
}

type memberKey struct {
	tid int
	idx int64
}

type stepWatcher struct {
	vm.NopTracer
	last vm.InstrEvent
	seen bool
}

func (w *stepWatcher) OnInstr(ev *vm.InstrEvent) {
	w.last = *ev
	w.seen = true
}

// NewStepper builds a stepper from a slice: it generates (or reuses) the
// slice pinball and prepares the slice replay.
func (s *Session) NewStepper(sl *slice.Slice) (*Stepper, error) {
	spb, _, err := s.ExecutionSlice(sl)
	if err != nil {
		return nil, err
	}
	return s.NewStepperFromPinball(spb, sl)
}

// NewStepperFromPinball builds a stepper from an existing slice pinball
// and the slice it was generated from.
func (s *Session) NewStepperFromPinball(spb *pinball.Pinball, sl *slice.Slice) (*Stepper, error) {
	if spb.Kind != pinball.KindSlice {
		return nil, fmt.Errorf("core: stepper needs a slice pinball, got %q", spb.Kind)
	}
	tr, err := s.Trace()
	if err != nil {
		return nil, err
	}
	members := make(map[memberKey]bool, len(sl.Members))
	for _, m := range sl.Members {
		members[memberKey{int(m.Tid), tr.Entry(m).Idx}] = true
	}
	w := &stepWatcher{}
	return &Stepper{
		sess:    s,
		runner:  pinplay.NewSliceRunner(s.Prog, spb, w),
		members: members,
		watch:   w,
	}, nil
}

// Machine exposes the replayed machine for state examination (the
// "examine program state at each point" half of the workflow).
func (st *Stepper) Machine() *vm.Machine { return st.runner.Machine() }

// Done reports whether the slice replay has finished.
func (st *Stepper) Done() bool { return st.runner.Done() }

// point converts the watcher's last event into a StepPoint.
func (st *Stepper) point() *StepPoint {
	ev := &st.watch.last
	p := &StepPoint{
		Tid:  ev.Tid,
		PC:   ev.PC,
		Idx:  ev.Idx,
		Line: ev.Instr.Line,
		Src:  st.sess.Prog.SourceOf(ev.PC),
	}
	if ev.EffAddr >= 0 && ev.MemIsWrite {
		p.HasValue = true
		p.Value = ev.MemVal
	} else if defs := ev.Instr.RegDefs(nil); len(defs) > 0 {
		p.HasValue = true
		p.Value = st.runner.Machine().Threads[ev.Tid].Regs[defs[0]]
	}
	return p
}

// NextInstr advances to the next slice-member instruction and returns it,
// or nil when the slice replay is complete.
func (st *Stepper) NextInstr() (*StepPoint, error) {
	for {
		st.watch.seen = false
		ok, err := st.runner.Step()
		if err != nil {
			return nil, err
		}
		if st.watch.seen {
			ev := &st.watch.last
			if st.members[memberKey{ev.Tid, ev.Idx}] {
				p := st.point()
				st.lastSrc = p.Src
				return p, nil
			}
		}
		if !ok {
			return nil, nil
		}
	}
}

// NextStatement advances to the next slice member whose source position
// differs from the previous stop — statement-level slice stepping.
func (st *Stepper) NextStatement() (*StepPoint, error) {
	prev := st.lastSrc
	for {
		p, err := st.NextInstr()
		if err != nil || p == nil {
			return p, err
		}
		if p.Src != prev {
			return p, nil
		}
	}
}

// ReadVar reads the current value of a named global variable from the
// stepped machine.
func (st *Stepper) ReadVar(name string) (int64, error) {
	sym := st.sess.Prog.SymbolByName(name)
	if sym == nil {
		return 0, fmt.Errorf("core: no global variable %q", name)
	}
	return st.runner.Machine().Mem.Read(sym.Addr), nil
}
