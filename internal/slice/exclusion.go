package slice

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/tracer"
)

// BuildExclusions converts a slice into the code-exclusion regions that
// drive PinPlay's relogger (paper §4, Figure 6a): for every thread, the
// maximal runs of traced instructions that are not in the slice. Each
// region carries both the paper's [startPc:instance:tid, endPc:instance:tid)
// boundary form and the per-thread dynamic index range used mechanically.
//
// Thread-lifecycle instructions (SPAWN, JOIN, thread-exiting RET) are kept
// out of exclusions even when they are not slice members: skipping them
// would leave the replayed machine without the thread-table and
// synchronisation side effects that register/memory injection cannot
// restore.
func BuildExclusions(tr *tracer.Trace, sl *Slice) []pinball.Exclusion {
	var out []pinball.Exclusion

	tids := make([]int, 0, len(tr.Locals))
	for tid := range tr.Locals {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	for _, tid := range tids {
		local := tr.Locals[tid]
		first := tr.FirstIdx[tid]

		// instance[pos] = how many times this entry's pc has executed in
		// this thread up to and including this entry (1-based), matching
		// the paper's sinstance/einstance notation.
		instOf := make(map[int64]int64)
		instances := make([]int64, len(local))
		for pos := range local {
			instOf[local[pos].PC]++
			instances[pos] = instOf[local[pos].PC]
		}

		mustKeep := func(pos int) bool {
			e := &local[pos]
			switch e.Instr.Op {
			case isa.SPAWN, isa.JOIN, isa.WAIT, isa.SIGNAL:
				return true
			case isa.RET:
				return e.NextPC == -1 // thread exit
			case isa.HALT:
				return true
			}
			return sl.Contains(tracer.Ref{Tid: int32(tid), Pos: int32(pos)})
		}

		start := -1
		flush := func(end int) {
			if start < 0 {
				return
			}
			ex := pinball.Exclusion{
				Tid:           tid,
				FromIdx:       first + int64(start),
				ToIdx:         first + int64(end),
				StartPC:       local[start].PC,
				StartInstance: instances[start],
			}
			if end < len(local) {
				ex.EndPC = local[end].PC
				ex.EndInstance = instances[end]
			} else {
				ex.EndPC = -1
				ex.EndInstance = 0
			}
			out = append(out, ex)
			start = -1
		}

		for pos := range local {
			if mustKeep(pos) {
				flush(pos)
			} else if start < 0 {
				start = pos
			}
		}
		flush(len(local))
	}
	return out
}

// IncludedInstrs returns how many traced instructions remain after
// applying the exclusions — the slice pinball's instruction count, which
// the paper reports as "%instructions in slice pinball".
func IncludedInstrs(tr *tracer.Trace, exclusions []pinball.Exclusion) int64 {
	var excluded int64
	for _, e := range exclusions {
		excluded += e.ToIdx - e.FromIdx
	}
	return int64(tr.Len()) - excluded
}
