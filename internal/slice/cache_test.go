package slice_test

import (
	"sync"
	"testing"

	"repro/internal/pinplay"
	"repro/internal/slice"
)

// TestEngineCacheSingleFlight hammers one pinball's engine from 16
// goroutines: exactly one build must run (single-flight), and every
// caller must get that one engine. Run under -race this also checks the
// cache's locking discipline against concurrent sessions.
func TestEngineCacheSingleFlight(t *testing.T) {
	slice.ResetEngineCache()
	defer slice.ResetEngineCache()

	prog, pb, tr := fuzzProgram(t, 9)
	id := pb.ID()
	opts := slice.DefaultOptions()
	popts := slice.ParallelOptions{Workers: 2, WindowSize: pinplay.WindowSize(pb)}

	const goroutines = 16
	engines := make([]*slice.ParallelSlicer, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			eng, err := slice.CachedParallel(id, prog, tr, opts, popts)
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = eng
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 1; i < goroutines; i++ {
		if engines[i] != engines[0] {
			t.Fatalf("goroutine %d got a different engine instance", i)
		}
	}
	st := slice.GetEngineCacheStats()
	if st.Misses != 1 {
		t.Errorf("%d builds ran, want 1 (single-flight); stats %+v", st.Misses, st)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestEngineCacheEviction bounds the cache at two engines and loads
// four distinct (options-fingerprint) engines of one pinball: residency
// must never exceed the cap, the LRU engines must be evicted, and an
// evicted engine must be rebuilt on re-request.
func TestEngineCacheEviction(t *testing.T) {
	slice.ResetEngineCache()
	slice.SetEngineCacheCap(2)
	defer func() {
		slice.SetEngineCacheCap(slice.DefaultEngineCacheCap)
		slice.ResetEngineCache()
	}()

	prog, pb, tr := fuzzProgram(t, 10)
	id := pb.ID()
	popts := slice.ParallelOptions{Workers: 2, WindowSize: pinplay.WindowSize(pb)}
	build := func(maxSave int) *slice.ParallelSlicer {
		opts := slice.DefaultOptions()
		opts.MaxSave = maxSave // distinct options fingerprint per maxSave
		eng, err := slice.CachedParallel(id, prog, tr, opts, popts)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	first := build(3)
	for _, ms := range []int{4, 5, 6} {
		build(ms)
	}
	st := slice.GetEngineCacheStats()
	if st.Entries > 2 {
		t.Errorf("cache holds %d engines, cap is 2", st.Entries)
	}
	if st.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", st.Evictions)
	}

	// The first engine was evicted; re-requesting it rebuilds.
	if again := build(3); again == first {
		t.Error("evicted engine instance returned from cache")
	}
	if st := slice.GetEngineCacheStats(); st.Misses != 5 {
		t.Errorf("misses = %d, want 5 (4 distinct + 1 rebuild)", st.Misses)
	}
}
