package slice_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/slice"
)

// countdownCtx is a deterministic cancellation source: it reports
// context.Canceled after its Err method has been polled n times. The
// build pools poll Err between jobs (never selecting on Done), so this
// pins "cancellation arrives mid-build" without racing real timers.
type countdownCtx struct {
	polls atomic.Int64
	after int64
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestParallelBuildCancelledUpfront: a context cancelled before the
// build starts fails it immediately, before any worker runs.
func TestParallelBuildCancelledUpfront(t *testing.T) {
	prog, _, tr := fuzzProgram(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := slice.NewParallel(prog, tr, slice.DefaultOptions(), slice.ParallelOptions{
		Workers: 4, Ctx: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelBuildCancelledMidShards cancels after a handful of worker
// polls: with single-entry windows the shard pool has far more jobs
// than the countdown allows, so the build must abort between shards and
// surface the cancellation instead of completing.
func TestParallelBuildCancelledMidShards(t *testing.T) {
	prog, _, tr := fuzzProgram(t, 8)
	if len(tr.Global) < 32 {
		t.Fatalf("fixture trace too small: %d entries", len(tr.Global))
	}
	ctx := &countdownCtx{after: 8}
	_, err := slice.NewParallel(prog, tr, slice.DefaultOptions(), slice.ParallelOptions{
		Workers:    4,
		WindowSize: 1, // one shard per trace entry: many jobs to cancel between
		Ctx:        ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The pools must have stopped shortly after the countdown expired
	// rather than polling once per remaining window.
	if polls := ctx.polls.Load(); polls > int64(8+2*len(tr.Global)) {
		t.Fatalf("%d Err polls for a %d-entry trace: workers kept running after cancellation",
			polls, len(tr.Global))
	}
}

// TestParallelBuildNilCtx: the default (no context) still builds.
func TestParallelBuildNilCtx(t *testing.T) {
	prog, _, tr := fuzzProgram(t, 6)
	eng, err := slice.NewParallel(prog, tr, slice.DefaultOptions(), slice.ParallelOptions{Workers: 2})
	if err != nil || eng == nil {
		t.Fatalf("build: %v", err)
	}
}
