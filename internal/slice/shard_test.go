package slice_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/slice"
	"repro/internal/tracer"
)

// The shard harness: chaining SliceShard window ranges — including a
// JSON round-trip of the query state between every hop, exactly what
// the fleet protocol does — must reproduce the monolithic Slice result
// bit for bit, and re-running any hop from the same state must yield a
// byte-identical successor (the idempotency that makes hedged and
// re-dispatched shard requests safe).

// shardEngine builds a parallel engine with a small window size so even
// the short fuzz traces span many windows.
func shardEngine(t *testing.T, seed int64) (*slice.ParallelSlicer, *tracer.Trace) {
	t.Helper()
	prog, _, tr := fuzzProgram(t, seed)
	eng, err := slice.NewParallel(prog, tr, optionsForSeed(seed), slice.ParallelOptions{Workers: 2, WindowSize: 32})
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	return eng, tr
}

// roundTrip serialises and reparses a query state, as the wire does.
func roundTrip(t *testing.T, st *slice.QueryState) *slice.QueryState {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	out := &slice.QueryState{}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	return out
}

// chainShards drives a query to completion in hops of `windows` shard
// windows, JSON round-tripping the state between hops. Each hop may run
// on a different engine from engines (round-robin), simulating the
// fleet handing the continuation from worker to worker.
func chainShards(t *testing.T, engines []*slice.ParallelSlicer, crit tracer.Ref, windows int) (*slice.QueryState, int) {
	t.Helper()
	bound, err := engines[0].StartBound(crit)
	if err != nil {
		t.Fatalf("start bound: %v", err)
	}
	var st *slice.QueryState
	hops := 0
	for {
		eng := engines[hops%len(engines)]
		lo := eng.NextShardLo(bound, windows)
		next, err := eng.SliceShard(crit, st, lo)
		if err != nil {
			t.Fatalf("shard hop %d (lo=%d): %v", hops, lo, err)
		}
		hops++
		if hops > 10000 {
			t.Fatalf("shard chain did not converge (bound %d)", bound)
		}
		st = roundTrip(t, next)
		if st.Done {
			return st, hops
		}
		if st.Bound >= bound {
			t.Fatalf("hop %d: bound did not advance: %d -> %d", hops, bound, st.Bound)
		}
		bound = st.Bound
	}
}

func TestShardChainMatchesMonolithic(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 11, 17}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		eng, tr := shardEngine(t, seed)
		for ci, crit := range criteriaOf(t, tr) {
			mono, err := eng.Slice(crit)
			if err != nil {
				t.Fatalf("seed %d crit %d: monolithic: %v", seed, ci, err)
			}
			want := slice.Summarize(mono)
			for _, windows := range []int{1, 2, 5} {
				st, hops := chainShards(t, []*slice.ParallelSlicer{eng}, crit, windows)
				got, err := eng.SummarizeState(st)
				if err != nil {
					t.Fatalf("seed %d crit %d w=%d: summarize: %v", seed, ci, windows, err)
				}
				if got != want {
					t.Fatalf("seed %d crit %d w=%d (%d hops): sharded %+v != monolithic %+v",
						seed, ci, windows, hops, got, want)
				}
				if len(st.Members) != len(mono.Members) {
					t.Fatalf("seed %d crit %d w=%d: %d members sharded, %d monolithic",
						seed, ci, windows, len(st.Members), len(mono.Members))
				}
				for i, g := range st.Members {
					if tr.Global[g] != mono.Members[i] {
						t.Fatalf("seed %d crit %d w=%d: member %d: %+v vs %+v",
							seed, ci, windows, i, tr.Global[g], mono.Members[i])
					}
				}
			}
		}
	}
}

// TestShardSingleHop: lo=0 from a fresh state is the whole query in one
// shard and must equal the monolithic result too.
func TestShardSingleHop(t *testing.T) {
	eng, tr := shardEngine(t, 7)
	for ci, crit := range criteriaOf(t, tr) {
		mono, err := eng.Slice(crit)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.SliceShard(crit, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Done {
			t.Fatalf("crit %d: single hop not done (bound %d)", ci, st.Bound)
		}
		got, err := eng.SummarizeState(st)
		if err != nil {
			t.Fatal(err)
		}
		if want := slice.Summarize(mono); got != want {
			t.Fatalf("crit %d: %+v != %+v", ci, got, want)
		}
	}
}

// TestShardReexecutionIdempotent re-runs every hop of a chain twice
// from the same serialised state: both executions must produce
// byte-identical successor states. This is the property straggler
// re-dispatch and hedging rely on.
func TestShardReexecutionIdempotent(t *testing.T) {
	eng, tr := shardEngine(t, 4)
	crit := criteriaOf(t, tr)[0]
	bound, err := eng.StartBound(crit)
	if err != nil {
		t.Fatal(err)
	}
	var st *slice.QueryState
	for hop := 0; ; hop++ {
		lo := eng.NextShardLo(bound, 1)
		a, err := eng.SliceShard(crit, st, lo)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.SliceShard(crit, st, lo)
		if err != nil {
			t.Fatal(err)
		}
		ab, _ := json.Marshal(a)
		bb, _ := json.Marshal(b)
		if !bytes.Equal(ab, bb) {
			t.Fatalf("hop %d (lo=%d): re-execution diverged:\n%s\n%s", hop, lo, ab, bb)
		}
		st = roundTrip(t, a)
		if st.Done {
			return
		}
		bound = st.Bound
	}
}

// TestShardCrossEngineResume alternates hops between two independently
// built engines over the same trace — the multi-process case, where
// each worker holds its own engine instance.
func TestShardCrossEngineResume(t *testing.T) {
	seed := int64(3)
	prog, _, tr := fuzzProgram(t, seed)
	opts := optionsForSeed(seed)
	engA, err := slice.NewParallel(prog, tr, opts, slice.ParallelOptions{Workers: 1, WindowSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	engB, err := slice.NewParallel(prog, tr, opts, slice.ParallelOptions{Workers: 3, WindowSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for ci, crit := range criteriaOf(t, tr) {
		mono, err := engA.Slice(crit)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := chainShards(t, []*slice.ParallelSlicer{engA, engB}, crit, 1)
		got, err := engB.SummarizeState(st)
		if err != nil {
			t.Fatal(err)
		}
		if want := slice.Summarize(mono); got != want {
			t.Fatalf("crit %d: cross-engine %+v != monolithic %+v", ci, got, want)
		}
	}
}

// TestShardStateVersionGuard: a state with a wrong version must be
// rejected, not misinterpreted.
func TestShardStateVersionGuard(t *testing.T) {
	eng, tr := shardEngine(t, 2)
	crit := criteriaOf(t, tr)[0]
	bound, _ := eng.StartBound(crit)
	st, err := eng.SliceShard(crit, nil, eng.NextShardLo(bound, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Skip("trace too small to suspend")
	}
	st.V = 99
	if _, err := eng.SliceShard(crit, st, 0); err == nil {
		t.Fatal("version-skewed state accepted")
	}
}

// TestShardProvenanceSummary: the member-level breakdown a shard worker
// attaches to a finished query must be nil over a gap-free trace and,
// once a gap overlay is installed, must match both an independent
// recount straight from the overlay and the monolithic
// AnnotateProvenance member counts. Members decide everything here:
// every dependence edge's provenance is the worst of its two member
// endpoints, so agreeing on members means agreeing on Exact()/Degraded().
func TestShardProvenanceSummary(t *testing.T) {
	// Pick a seed+criterion whose slice spans at least two distinct
	// steps, so the overlay below can straddle it.
	var (
		eng   *slice.ParallelSlicer
		tr    *tracer.Trace
		crit  tracer.Ref
		st    *slice.QueryState
		steps []int64
	)
seeds:
	for _, seed := range []int64{4, 5, 8, 12} {
		e, trace := shardEngine(t, seed)
		for _, c := range criteriaOf(t, trace) {
			s, _ := chainShards(t, []*slice.ParallelSlicer{e}, c, 2)

			// Full recording: no gaps, no summary (matching SliceFor).
			if sum := e.SummarizeProvenance(s); sum != nil {
				t.Fatalf("gap-free trace: want nil summary, got %+v", sum)
			}

			var ss []int64
			for _, g := range s.Members {
				if sp := trace.StepOf(trace.Global[g]); sp > 0 {
					ss = append(ss, sp)
				}
			}
			sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
			if len(ss) >= 2 && ss[0] != ss[len(ss)-1] {
				eng, tr, crit, st, steps = e, trace, c, s, ss
				break seeds
			}
		}
	}
	if st == nil {
		t.Fatal("no seed/criterion produced a slice wide enough to straddle a gap")
	}

	// Build the overlay from actual member steps so it is guaranteed to
	// touch the slice: one bridged span over an early member, one
	// estimated span over a late one (a pinball whose bridge partially
	// failed verification carries exactly this shape).
	a, b := steps[0], steps[len(steps)-1]
	tr.SetGaps([]tracer.GapSpan{
		{From: a - 1, To: a},
		{From: b - 1, To: b, Estimated: true},
	})
	defer tr.SetGaps(nil)

	sum := eng.SummarizeProvenance(st)
	if sum == nil {
		t.Fatal("gapped trace: want a summary, got nil")
	}

	// Independent recount straight from the overlay.
	var exact, bridged, est int
	for _, g := range st.Members {
		switch tr.ProvenanceOf(tr.Global[g]) {
		case tracer.ProvExact:
			exact++
		case tracer.ProvBridged:
			bridged++
		case tracer.ProvEstimated:
			est++
		}
	}
	if bridged == 0 || est == 0 {
		t.Fatalf("overlay missed the members it was built from (bridged=%d est=%d)", bridged, est)
	}
	if sum.ExactMembers != exact || sum.BridgedMembers != bridged || sum.EstimatedMembers != est {
		t.Fatalf("summary %+v != recount exact=%d bridged=%d estimated=%d", sum, exact, bridged, est)
	}
	if got := sum.ExactMembers + sum.BridgedMembers + sum.EstimatedMembers; got != len(st.Members) {
		t.Fatalf("summary covers %d of %d members", got, len(st.Members))
	}
	if !sum.Degraded() {
		t.Fatal("estimated member present but summary not Degraded")
	}
	if sum.MinConfidence != tracer.ProvEstimated.Confidence() {
		t.Fatalf("MinConfidence %v, want %v", sum.MinConfidence, tracer.ProvEstimated.Confidence())
	}

	// The monolithic annotation must tell the same member-level story.
	mono, err := eng.Slice(crit)
	if err != nil {
		t.Fatalf("monolithic: %v", err)
	}
	slice.AnnotateProvenance(tr, mono)
	if mono.Prov == nil {
		t.Fatal("monolithic slice over gapped trace not annotated")
	}
	if mono.Prov.ExactMembers != sum.ExactMembers ||
		mono.Prov.BridgedMembers != sum.BridgedMembers ||
		mono.Prov.EstimatedMembers != sum.EstimatedMembers {
		t.Fatalf("shard summary %+v disagrees with monolithic %+v", sum, mono.Prov)
	}
}
