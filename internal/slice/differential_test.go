package slice_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cc"
	"repro/internal/dualslice"
	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/progfuzz"
	"repro/internal/slice"
	"repro/internal/tracer"
)

// The differential harness: the parallel sharded engine must produce
// bit-identical slices to the sequential slicer — same members, same
// exemplar dependence edges in the same order, same bypass counts — for
// every program, criterion, option set and worker count. Programs come
// from the progfuzz generator, so every run covers hundreds of distinct
// control-flow/dataflow shapes, and any mismatch reproduces from its
// seed.

// fuzzProgram builds, logs and traces one seeded progfuzz program.
func fuzzProgram(t *testing.T, seed int64) (*isa.Program, *pinball.Pinball, *tracer.Trace) {
	t.Helper()
	cfg := progfuzz.Config{
		Seed:    seed,
		Stmts:   6 + int(seed%7),
		Funcs:   int(seed % 3),
		Threads: seed%4 == 0,
	}
	src := progfuzz.Generate(cfg)
	prog, err := cc.CompileSource(fmt.Sprintf("fuzz%d.c", seed), src)
	if err != nil {
		t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
	}
	pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 5}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("seed %d: log: %v", seed, err)
	}
	m := pinplay.NewReplayMachine(prog, pb, nil)
	col := tracer.NewCollector(m)
	m.SetTracer(col)
	total := pb.TotalQuantumInstrs()
	for i := int64(0); i < total && m.StepOne(); i++ {
	}
	tr := col.Trace()
	if err := tr.BuildGlobal(); err != nil {
		t.Fatalf("seed %d: global trace: %v", seed, err)
	}
	return prog, pb, tr
}

// optionsForSeed rotates through the precision configurations.
func optionsForSeed(seed int64) slice.Options {
	opts := slice.DefaultOptions()
	switch seed % 5 {
	case 1:
		opts.PruneSaveRestore = false
	case 2:
		opts.ControlDeps = false
	case 3:
		opts.DisableRefinement = true
	case 4:
		opts.UseJumpTables = true
	}
	return opts
}

// mustEqualSlices fails the test unless the two slices are identical in
// every observable field (LP counters excepted: the parallel engine
// does not do LP block skipping, which is the point).
func mustEqualSlices(t *testing.T, label string, seq, par *slice.Slice) {
	t.Helper()
	if seq.Criterion != par.Criterion {
		t.Fatalf("%s: criterion %+v vs %+v", label, seq.Criterion, par.Criterion)
	}
	if len(seq.Members) != len(par.Members) {
		t.Fatalf("%s: %d members sequential, %d parallel", label, len(seq.Members), len(par.Members))
	}
	for i := range seq.Members {
		if seq.Members[i] != par.Members[i] {
			t.Fatalf("%s: member %d: %+v vs %+v", label, i, seq.Members[i], par.Members[i])
		}
	}
	if len(seq.Deps) != len(par.Deps) {
		t.Fatalf("%s: %d dep edges sequential, %d parallel", label, len(seq.Deps), len(par.Deps))
	}
	for i := range seq.Deps {
		if seq.Deps[i] != par.Deps[i] {
			t.Fatalf("%s: dep %d: %+v vs %+v", label, i, seq.Deps[i], par.Deps[i])
		}
	}
	if seq.Stats.Members != par.Stats.Members ||
		seq.Stats.TraceLen != par.Stats.TraceLen ||
		seq.Stats.PrunedBypasses != par.Stats.PrunedBypasses ||
		seq.Stats.VerifiedPairs != par.Stats.VerifiedPairs ||
		seq.Stats.CFGRefinements != par.Stats.CFGRefinements {
		t.Fatalf("%s: stats differ:\nseq %+v\npar %+v", label, seq.Stats, par.Stats)
	}
	for _, m := range seq.Members {
		if !par.Contains(m) {
			t.Fatalf("%s: parallel Contains misses member %+v", label, m)
		}
	}
}

// criteriaOf picks the slice criteria a differential case exercises:
// the program's last event plus the latest reads across threads.
func criteriaOf(t *testing.T, tr *tracer.Trace) []tracer.Ref {
	t.Helper()
	crit, err := slice.LastEventOf(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := []tracer.Ref{crit}
	out = append(out, slice.LastReadsInRegion(tr, 2)...)
	return out
}

// TestDifferentialSeqVsParallel runs the main differential sweep: 200
// seeded programs (a reduced set under -short), each sliced at several
// criteria by both engines with rotating options and worker counts.
func TestDifferentialSeqVsParallel(t *testing.T) {
	programs := int64(200)
	if testing.Short() {
		programs = 25
	}
	cases := 0
	for seed := int64(1); seed <= programs; seed++ {
		prog, pb, tr := fuzzProgram(t, seed)
		opts := optionsForSeed(seed)

		seqEng, err := slice.New(prog, tr, opts)
		if err != nil {
			t.Fatalf("seed %d: sequential slicer: %v", seed, err)
		}
		parEng, err := slice.NewParallel(prog, tr, opts, slice.ParallelOptions{
			Workers:    1 + int(seed%8),
			WindowSize: pinplay.WindowSize(pb),
		})
		if err != nil {
			t.Fatalf("seed %d: parallel engine: %v", seed, err)
		}

		for ci, crit := range criteriaOf(t, tr) {
			label := fmt.Sprintf("seed %d crit %d (opts %+v)", seed, ci, opts)
			seqSl, err := seqEng.Slice(crit)
			if err != nil {
				t.Fatalf("%s: sequential: %v", label, err)
			}
			parSl, err := parEng.Slice(crit)
			if err != nil {
				t.Fatalf("%s: parallel: %v", label, err)
			}
			mustEqualSlices(t, label, seqSl, parSl)
			cases++

			// Exclusion regions (the §4 execution-slice input) must come
			// out identical too — they are derived from the member set.
			if ci == 0 {
				seqEx := slice.BuildExclusions(tr, seqSl)
				parEx := slice.BuildExclusions(tr, parSl)
				if len(seqEx) != len(parEx) {
					t.Fatalf("%s: %d exclusions sequential, %d parallel", label, len(seqEx), len(parEx))
				}
				for i := range seqEx {
					if seqEx[i] != parEx[i] {
						t.Fatalf("%s: exclusion %d: %+v vs %+v", label, i, seqEx[i], parEx[i])
					}
				}
			}
		}
	}
	t.Logf("differential sweep: %d slice pairs compared across %d programs", cases, programs)
}

// TestDifferentialDualSlice checks the engines agree end-to-end through
// dual slicing: two schedules of the same racy program, sliced at the
// same criterion by each engine, must yield identical diffs.
func TestDifferentialDualSlice(t *testing.T) {
	seeds := []int64{4, 8, 12, 16, 20}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		// seed%4==0 gives a threaded program; two different log seeds give
		// two schedules of it.
		progA, pbA, trA := fuzzProgram(t, seed)
		cfg := progfuzz.Config{Seed: seed, Stmts: 6 + int(seed%7), Funcs: int(seed % 3), Threads: true}
		src := progfuzz.Generate(cfg)
		progB, err := cc.CompileSource(fmt.Sprintf("fuzz%d.c", seed), src)
		if err != nil {
			t.Fatal(err)
		}
		pbB, err := pinplay.Log(progB, pinplay.LogConfig{Seed: seed + 1000, MeanQuantum: 3}, pinplay.RegionSpec{})
		if err != nil {
			t.Fatal(err)
		}
		mB := pinplay.NewReplayMachine(progB, pbB, nil)
		colB := tracer.NewCollector(mB)
		mB.SetTracer(colB)
		for i, total := int64(0), pbB.TotalQuantumInstrs(); i < total && mB.StepOne(); i++ {
		}
		trB := colB.Trace()
		if err := trB.BuildGlobal(); err != nil {
			t.Fatal(err)
		}

		critA, err := slice.LastEventOf(trA, 0)
		if err != nil {
			t.Fatal(err)
		}
		critB, err := slice.LastEventOf(trB, 0)
		if err != nil {
			t.Fatal(err)
		}

		opts := slice.DefaultOptions()
		sliceBoth := func(q func(prog *isa.Program, tr *tracer.Trace, pb *pinball.Pinball) slice.Querier) *dualslice.Diff {
			slA, err := q(progA, trA, pbA).Slice(critA)
			if err != nil {
				t.Fatal(err)
			}
			slB, err := q(progB, trB, pbB).Slice(critB)
			if err != nil {
				t.Fatal(err)
			}
			return dualslice.Compare(progA, trA, slA, trB, slB)
		}

		seqDiff := sliceBoth(func(prog *isa.Program, tr *tracer.Trace, pb *pinball.Pinball) slice.Querier {
			s, err := slice.New(prog, tr, opts)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
		parDiff := sliceBoth(func(prog *isa.Program, tr *tracer.Trace, pb *pinball.Pinball) slice.Querier {
			s, err := slice.NewParallel(prog, tr, opts, slice.ParallelOptions{Workers: 4, WindowSize: pinplay.WindowSize(pb)})
			if err != nil {
				t.Fatal(err)
			}
			return s
		})

		if !seqDiff.Equal(parDiff) {
			var sb, pbuf bytes.Buffer
			seqDiff.WriteText(&sb)
			parDiff.WriteText(&pbuf)
			t.Fatalf("seed %d: dual-slice diffs differ:\n--- sequential ---\n%s--- parallel ---\n%s",
				seed, sb.String(), pbuf.String())
		}
	}
}

// TestParallelWorkerCountInvariance: the same engine inputs with
// different worker counts must produce identical slices (worker count
// only changes build scheduling, never results).
func TestParallelWorkerCountInvariance(t *testing.T) {
	prog, pb, tr := fuzzProgram(t, 8) // threaded program
	crit, err := slice.LastEventOf(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	var base *slice.Slice
	for _, workers := range []int{1, 2, 4, 8, 16} {
		eng, err := slice.NewParallel(prog, tr, slice.DefaultOptions(), slice.ParallelOptions{
			Workers:    workers,
			WindowSize: pinplay.WindowSize(pb),
		})
		if err != nil {
			t.Fatal(err)
		}
		sl, err := eng.Slice(crit)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = sl
			continue
		}
		mustEqualSlices(t, fmt.Sprintf("workers=%d", workers), base, sl)
	}
}

// TestParallelSmallWindows shards at an adversarially tiny window size,
// so cross-window stitching is exercised on nearly every dependence.
func TestParallelSmallWindows(t *testing.T) {
	for _, seed := range []int64{3, 4, 7, 11} {
		prog, _, tr := fuzzProgram(t, seed)
		crit, err := slice.LastEventOf(tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		seqEng, err := slice.New(prog, tr, slice.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		seqSl, err := seqEng.Slice(crit)
		if err != nil {
			t.Fatal(err)
		}
		for _, window := range []int{1, 3, 17} {
			parEng, err := slice.NewParallel(prog, tr, slice.DefaultOptions(), slice.ParallelOptions{
				Workers:    4,
				WindowSize: window,
			})
			if err != nil {
				t.Fatal(err)
			}
			parSl, err := parEng.Slice(crit)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualSlices(t, fmt.Sprintf("seed %d window %d", seed, window), seqSl, parSl)
		}
	}
}

// TestEngineCache: same pinball identity and options hit the cache;
// changed options miss; cached engines answer identically.
func TestEngineCache(t *testing.T) {
	slice.ResetEngineCache()
	defer slice.ResetEngineCache()

	prog, pb, tr := fuzzProgram(t, 5)
	id := pb.ID()
	if id == "" {
		t.Fatal("pinball has empty identity")
	}
	opts := slice.DefaultOptions()
	popts := slice.ParallelOptions{Workers: 2, WindowSize: pinplay.WindowSize(pb)}

	e1, err := slice.CachedParallel(id, prog, tr, opts, popts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := slice.CachedParallel(id, prog, tr, opts, popts)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("second CachedParallel call built a new engine")
	}
	st := slice.GetEngineCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("cache stats after hit: %+v", st)
	}

	other := opts
	other.ControlDeps = false
	e3, err := slice.CachedParallel(id, prog, tr, other, popts)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 {
		t.Error("different options returned the cached engine")
	}
	if st := slice.GetEngineCacheStats(); st.Misses != 2 || st.Entries != 2 {
		t.Errorf("cache stats after options change: %+v", st)
	}

	// Empty identity bypasses the cache entirely.
	e4, err := slice.CachedParallel("", prog, tr, opts, popts)
	if err != nil {
		t.Fatal(err)
	}
	if e4 == e1 {
		t.Error("uncacheable build returned the cached engine")
	}
	if st := slice.GetEngineCacheStats(); st.Entries != 2 {
		t.Errorf("uncacheable build polluted the cache: %+v", st)
	}

	crit, err := slice.LastEventOf(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := e1.Slice(crit)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e2.Slice(crit)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSlices(t, "cached engine", s1, s2)
}
