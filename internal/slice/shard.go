package slice

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/tracer"
)

// This file is the distributed face of the parallel engine: a backward
// slice query that can be suspended at a window boundary, serialised,
// and resumed by a different process holding an engine built from the
// same pinball. The fleet coordinator uses it to fan one query's window
// ranges out across workers and to re-dispatch a range when the worker
// computing it dies.
//
// Why this is sound: when the sweep has handled every candidate at
// positions >= B, its live state is exactly (a) the wanted set — each
// demanded location with its demanding member, (b) the pending
// control-parent positions < B, and (c) the members so far. A wanted
// location l's unprocessed heap candidate is always NearestDefBefore(l,
// B): the candidate is the nearest definition before l's demand
// position, and any definition in [B, demandPos) would itself have been
// the candidate and been processed already. Pending event bits are by
// construction the event candidates not yet popped, all < B. So the
// heap can be rebuilt from (wanted, events, B) alone, stale candidates
// and all — re-running a shard from the same state is idempotent, which
// is what makes hedged and re-dispatched shard requests safe.

// queryStateVersion guards the wire form of QueryState.
const queryStateVersion = 1

// WantedLoc is one live demand of a suspended query: the location and
// the slice member that demanded it.
type WantedLoc struct {
	Loc int64 `json:"l"`
	Tid int32 `json:"t"`
	Pos int32 `json:"p"`
}

// QueryState is the serialisable continuation of a backward slice query
// suspended at a window boundary: every position >= Bound has been
// handled, everything below has not. It is a pure value — running a
// shard is a state -> state function with no engine-side residue — so
// the same state may be executed twice (hedging, straggler re-dispatch)
// and both executions return byte-identical successors.
type QueryState struct {
	V    int        `json:"v"`
	Crit tracer.Ref `json:"crit"`
	// Bound is the exclusive low edge of the handled region; 0 when Done.
	Bound int  `json:"bound"`
	Done  bool `json:"done,omitempty"`
	// Wanted and Events rebuild the candidate heap on resume.
	Wanted []WantedLoc `json:"wanted,omitempty"`
	Events []int32     `json:"events,omitempty"`
	// Members are the slice members found so far, as ascending global
	// trace positions.
	Members []int32 `json:"members,omitempty"`
	// DepCount/DepHash carry the dependence edges in digest form: edge
	// lists grow with the slice, but shard hops only need the running
	// FNV-1a fold (edges are appended in a deterministic order, so the
	// fold is deterministic too).
	DepCount int64  `json:"dep_count"`
	DepHash  uint64 `json:"dep_hash"`
	Pruned   int64  `json:"pruned,omitempty"`
}

// StartBound returns the initial bound of a fresh query on crit — one
// past the criterion's global position, i.e. "nothing handled yet".
// Shard planners use it to window the first dispatch.
func (s *ParallelSlicer) StartBound(crit tracer.Ref) (int, error) {
	pos, ok := s.Trace.GlobalPosOf(crit)
	if !ok {
		return 0, fmt.Errorf("slice: criterion %+v outside trace", crit)
	}
	return pos + 1, nil
}

// NextShardLo returns the window-aligned low bound that advances a
// query at `bound` by `windows` checkpoint-cadence windows (the
// engine's shard unit). 0 means the next shard finishes the query.
func (s *ParallelSlicer) NextShardLo(bound, windows int) int {
	if windows < 1 {
		windows = 1
	}
	if bound <= 0 {
		return 0
	}
	// Window index of the highest unhandled position, minus the stride.
	lo := ((bound-1)/s.windowSize - (windows - 1)) * s.windowSize
	if lo < 0 {
		lo = 0
	}
	return lo
}

// SliceShard advances a backward slice query by one window range:
// st == nil starts a fresh query at crit, otherwise st is resumed. The
// sweep runs until every candidate position >= lo is handled, then the
// successor state is captured (Done when the sweep exhausted its
// candidates before reaching lo). The caller owns shard geometry; any
// descending sequence of lo values chains to the exact monolithic
// Slice result.
func (s *ParallelSlicer) SliceShard(crit tracer.Ref, st *QueryState, lo int) (*QueryState, error) {
	var q *query
	var err error
	if st == nil {
		q, err = s.newQuery(crit)
		if err != nil {
			return nil, err
		}
		s.queries.Add(1)
		q.include(q.startPos, crit, nil)
		if lo > q.startPos {
			lo = q.startPos
		}
	} else {
		if st.Done {
			return st, nil
		}
		q, err = s.resumeQuery(st)
		if err != nil {
			return nil, err
		}
		if lo > st.Bound {
			lo = st.Bound
		}
	}
	defer q.release()
	if lo < 0 {
		lo = 0
	}
	q.runTo(lo)
	return q.captureState(lo), nil
}

// resumeQuery reconstructs a suspended query from its wire state. See
// the file comment for why NearestDefBefore(l, Bound) recovers every
// live candidate.
func (s *ParallelSlicer) resumeQuery(st *QueryState) (*query, error) {
	if st.V != queryStateVersion {
		return nil, fmt.Errorf("slice: query state version %d, want %d", st.V, queryStateVersion)
	}
	q, err := s.newQuery(st.Crit)
	if err != nil {
		return nil, err
	}
	q.depHash, q.depCount, q.pruned = st.DepHash, st.DepCount, st.Pruned
	for _, w := range st.Wanted {
		l := tracer.Loc(w.Loc)
		q.sc.ws.add(l, tracer.Ref{Tid: w.Tid, Pos: w.Pos})
		if p, ok := s.idx.NearestDefBefore(l, st.Bound); ok {
			q.sc.h.push(demandCand{pos: int32(p), loc: l})
		}
	}
	for _, p := range st.Events {
		q.sc.events[p>>6] |= 1 << (p & 63)
		q.sc.h.push(demandCand{pos: p, event: true})
	}
	for _, m := range st.Members {
		q.sc.members[m>>6] |= 1 << (m & 63)
	}
	return q, nil
}

// captureState snapshots the suspended query at bound. The capture
// order is canonical (dense wanted locations ascending, then overflow
// locations sorted; events and members ascending), so equal states
// serialise to equal bytes — duplicate shard executions can be
// compared, and deduplicated, textually.
func (q *query) captureState(bound int) *QueryState {
	h, n := q.depHash, q.depCount
	for _, d := range q.deps {
		h = foldDep(h, d)
	}
	n += int64(len(q.deps))
	st := &QueryState{
		V:        queryStateVersion,
		Crit:     q.crit,
		Bound:    bound,
		Done:     len(q.sc.h) == 0,
		DepCount: n,
		DepHash:  h,
		Pruned:   q.pruned,
	}
	for w, word := range q.sc.members {
		for word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			st.Members = append(st.Members, int32(g))
			word &= word - 1
		}
	}
	if st.Done {
		st.Bound = 0
		return st
	}
	ws := &q.sc.ws
	for w, word := range ws.bits {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			r := ws.ref[i]
			st.Wanted = append(st.Wanted, WantedLoc{Loc: int64(ws.space.LocAt(i)), Tid: r.Tid, Pos: r.Pos})
			word &= word - 1
		}
	}
	if len(ws.over) > 0 {
		locs := make([]tracer.Loc, 0, len(ws.over))
		for l := range ws.over {
			locs = append(locs, l)
		}
		sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
		for _, l := range locs {
			r := ws.over[l]
			st.Wanted = append(st.Wanted, WantedLoc{Loc: int64(l), Tid: r.Tid, Pos: r.Pos})
		}
	}
	for w, word := range q.sc.events {
		for word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			st.Events = append(st.Events, int32(g))
			word &= word - 1
		}
	}
	return st
}

// Summary is the scalar outcome of a slice query plus a content digest
// of the full result. A sharded query's Summary must equal the
// single-node Summarize of the same criterion bit for bit — that is the
// fleet's correctness check.
type Summary struct {
	Members        int    `json:"members"`
	TraceLen       int    `json:"trace_len"`
	Deps           int64  `json:"deps"`
	PrunedBypasses int64  `json:"pruned_bypasses,omitempty"`
	Digest         string `json:"digest"`
}

// foldDep folds one dependence edge into the FNV-1a digest in its
// append order: the edge stream is deterministic, so so is the fold.
func foldDep(h uint64, d DepEdge) uint64 {
	h = foldCache(h, uint64(uint32(d.From.Tid)))
	h = foldCache(h, uint64(uint32(d.From.Pos)))
	h = foldCache(h, uint64(uint32(d.To.Tid)))
	h = foldCache(h, uint64(uint32(d.To.Pos)))
	h = foldCache(h, uint64(d.Kind))
	h = foldCache(h, uint64(d.Loc))
	return h
}

// foldRef folds one member reference into the digest.
func foldRef(h uint64, r tracer.Ref) uint64 {
	h = foldCache(h, uint64(uint32(r.Tid)))
	h = foldCache(h, uint64(uint32(r.Pos)))
	return h
}

// Summarize digests a completed slice: dependence edges in append
// order, then members in ascending global order. This is the
// single-node reference the fleet's shard chain is checked against.
func Summarize(sl *Slice) Summary {
	h := fnvOffset
	for _, d := range sl.Deps {
		h = foldDep(h, d)
	}
	for _, m := range sl.Members {
		h = foldRef(h, m)
	}
	return Summary{
		Members:        len(sl.Members),
		TraceLen:       sl.Stats.TraceLen,
		Deps:           int64(len(sl.Deps)),
		PrunedBypasses: sl.Stats.PrunedBypasses,
		Digest:         fmt.Sprintf("%016x", h),
	}
}

// SummarizeState converts a finished query state into its Summary,
// continuing the state's dependence digest with the member fold. The
// state must be Done.
func (s *ParallelSlicer) SummarizeState(st *QueryState) (Summary, error) {
	if !st.Done {
		return Summary{}, fmt.Errorf("slice: query state not done (bound %d)", st.Bound)
	}
	h := st.DepHash
	for _, g := range st.Members {
		h = foldRef(h, s.Trace.Global[g])
	}
	return Summary{
		Members:        len(st.Members),
		TraceLen:       len(s.Trace.Global),
		Deps:           st.DepCount,
		PrunedBypasses: st.Pruned,
		Digest:         fmt.Sprintf("%016x", h),
	}, nil
}

// SummarizeProvenance is the shard-protocol counterpart of
// AnnotateProvenance: a member-level provenance breakdown of a finished
// query state. Shard hops carry dependence edges only in digest form, so
// edge counts are not recoverable — but every edge's provenance is the
// worst of its two member endpoints, so member counts alone decide both
// Exact() and Degraded() exactly as a full annotation would. Returns nil
// over gap-free traces (matching SliceFor on a full recording).
func (s *ParallelSlicer) SummarizeProvenance(st *QueryState) *ProvSummary {
	if len(s.Trace.Gaps) == 0 {
		return nil
	}
	sum := &ProvSummary{MinConfidence: 1.0}
	for _, g := range st.Members {
		p := s.Trace.ProvenanceOf(s.Trace.Global[g])
		switch p {
		case tracer.ProvExact:
			sum.ExactMembers++
		case tracer.ProvBridged:
			sum.BridgedMembers++
		case tracer.ProvEstimated:
			sum.EstimatedMembers++
		}
		if c := p.Confidence(); c < sum.MinConfidence {
			sum.MinConfidence = c
		}
	}
	return sum
}
