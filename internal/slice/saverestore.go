package slice

import "repro/internal/isa"

// srCandidates is the static half of the Section 5.2 save/restore
// detector: the pcs of potential save and restore instructions, found
// without compiler markers so the tool works on arbitrary binaries.
type srCandidates struct {
	saves    map[int64]bool // PUSH pcs in function prologues
	restores map[int64]bool // POP pcs in function epilogues
	maxSave  int
}

// findSaveRestoreCandidates statically scans every function: the first
// MaxSave PUSH instructions at its start are potential saves; the last
// MaxSave POP instructions before each RET are potential restores.
// MaxSave is the paper's tunable parameter (default 10). Intervening
// register moves and frame arithmetic are skipped; anything else ends the
// prologue/epilogue scan, which is how pushes/pops used for ordinary
// computation are kept out of the candidate sets.
func findSaveRestoreCandidates(prog *isa.Program, maxSave int) *srCandidates {
	if maxSave <= 0 {
		maxSave = 10
	}
	c := &srCandidates{
		saves:    make(map[int64]bool),
		restores: make(map[int64]bool),
		maxSave:  maxSave,
	}
	for _, fn := range prog.Funcs {
		// Prologue scan: forward from entry.
		n := 0
	prologue:
		for pc := fn.Entry; pc < fn.End && n < maxSave; pc++ {
			switch prog.Code[pc].Op {
			case isa.PUSH:
				c.saves[pc] = true
				n++
			case isa.MOV, isa.ADDI, isa.STORE:
				// Frame setup and argument homing; keep scanning.
			default:
				break prologue
			}
		}
		// Epilogue scans: backward from each RET.
		for pc := fn.Entry; pc < fn.End; pc++ {
			if prog.Code[pc].Op != isa.RET {
				continue
			}
			n := 0
		epilogue:
			for q := pc - 1; q >= fn.Entry && n < maxSave; q-- {
				switch prog.Code[q].Op {
				case isa.POP:
					c.restores[q] = true
					n++
				case isa.MOV:
					// Frame teardown (mov sp, fp); keep scanning.
				default:
					break epilogue
				}
			}
		}
	}
	return c
}
