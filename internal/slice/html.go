package slice

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
)

// WriteHTML renders the slice as a self-contained HTML report — the
// text-mode stand-in for the paper's KDbg GUI (Figure 9): source listings
// with every slice statement highlighted, per-statement dynamic counts
// and thread sets, and the dependence edges for backward navigation.
//
// sources maps file names (as recorded in the program's line table) to
// their source text; files without source fall back to a statement table.
func (f *File) WriteHTML(w io.Writer, sources map[string]string) error {
	type lineInfo struct {
		Count   int
		Threads string
	}
	// Aggregate members per file:line.
	perFile := map[string]map[int]*lineInfo{}
	threadSets := map[string]map[int]map[int]bool{}
	for _, m := range f.Members {
		file, line := splitSrc(m.Src)
		if file == "" {
			continue
		}
		if perFile[file] == nil {
			perFile[file] = map[int]*lineInfo{}
			threadSets[file] = map[int]map[int]bool{}
		}
		li := perFile[file][line]
		if li == nil {
			li = &lineInfo{}
			perFile[file][line] = li
			threadSets[file][line] = map[int]bool{}
		}
		li.Count++
		threadSets[file][line][m.Tid] = true
	}
	for file, lines := range threadSets {
		for line, tids := range lines {
			var ts []int
			for t := range tids {
				ts = append(ts, t)
			}
			sort.Ints(ts)
			var parts []string
			for _, t := range ts {
				parts = append(parts, fmt.Sprintf("T%d", t))
			}
			perFile[file][line].Threads = strings.Join(parts, ",")
		}
	}

	type renderLine struct {
		No      int
		Text    string
		InSlice bool
		Count   int
		Threads string
	}
	type renderFile struct {
		Name   string
		HasSrc bool
		Lines  []renderLine
		Stmts  []renderLine // fallback when source is unavailable
	}
	type renderDep struct {
		Kind, From, To string
		Cross          bool
		Prov           string // "" for exact edges
		Confidence     string
	}
	data := struct {
		Program      string
		CriterionTid int
		CriterionIdx int64
		Members      int
		Files        []renderFile
		Deps         []renderDep
		Exclusions   []string
		Stats        Stats
		Prov         *ProvSummary
	}{
		Program:      f.Program,
		CriterionTid: f.CriterionTid,
		CriterionIdx: f.CriterionIdx,
		Members:      len(f.Members),
		Stats:        f.Stats,
		Prov:         f.Prov,
	}

	var fileNames []string
	for name := range perFile {
		fileNames = append(fileNames, name)
	}
	sort.Strings(fileNames)
	for _, name := range fileNames {
		rf := renderFile{Name: name}
		if src, ok := sources[name]; ok {
			rf.HasSrc = true
			for i, text := range strings.Split(src, "\n") {
				no := i + 1
				rl := renderLine{No: no, Text: text}
				if li, in := perFile[name][no]; in {
					rl.InSlice = true
					rl.Count = li.Count
					rl.Threads = li.Threads
				}
				rf.Lines = append(rf.Lines, rl)
			}
		} else {
			var nos []int
			for no := range perFile[name] {
				nos = append(nos, no)
			}
			sort.Ints(nos)
			for _, no := range nos {
				li := perFile[name][no]
				rf.Stmts = append(rf.Stmts, renderLine{No: no, InSlice: true, Count: li.Count, Threads: li.Threads})
			}
		}
		data.Files = append(data.Files, rf)
	}

	for _, d := range f.Deps {
		rd := renderDep{
			Kind:  d.Kind.String(),
			From:  fmt.Sprintf("T%d@%d", d.FromTid, d.FromIdx),
			To:    fmt.Sprintf("T%d@%d", d.ToTid, d.ToIdx),
			Cross: d.FromTid != d.ToTid,
		}
		if f.Prov != nil && d.Provenance != 0 {
			rd.Prov = d.Provenance.String()
			rd.Confidence = fmt.Sprintf("%.2f", d.Confidence)
		}
		data.Deps = append(data.Deps, rd)
	}
	for _, e := range f.Exclusions {
		data.Exclusions = append(data.Exclusions, e.String())
	}

	return sliceHTMLTmpl.Execute(w, data)
}

func splitSrc(src string) (string, int) {
	i := strings.LastIndexByte(src, ':')
	if i < 0 {
		return "", 0
	}
	var line int
	if _, err := fmt.Sscanf(src[i+1:], "%d", &line); err != nil {
		return "", 0
	}
	return src[:i], line
}

var sliceHTMLTmpl = template.Must(template.New("slice").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>DrDebug slice — {{.Program}}</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
pre { margin: 0; }
table { border-collapse: collapse; }
.src td { font-family: monospace; white-space: pre; padding: 0 0.6em; }
.src .no { color: #999; text-align: right; user-select: none; }
.hit { background: #fff3a0; }
.meta { color: #777; font-size: 85%; }
.cross { background: #ffd9d9; }
.prov { color: #a40; font-weight: bold; }
.warn { background: #ffe9cc; border: 1px solid #e0a050; padding: 0.6em 1em; }
h2 { border-bottom: 1px solid #ddd; padding-bottom: 0.2em; }
.dep td { padding: 0.1em 0.8em; font-family: monospace; }
</style></head><body>
<h1>Dynamic slice — {{.Program}}</h1>
<p>Criterion: thread {{.CriterionTid}}, instruction {{.CriterionIdx}}.
{{.Members}} dynamic instructions of {{.Stats.TraceLen}} in slice.
Precision: {{.Stats.CFGRefinements}} CFG refinements,
{{.Stats.VerifiedPairs}} save/restore pairs verified,
{{.Stats.PrunedBypasses}} spurious dependences bypassed.</p>
{{if .Prov}}<p class="{{if .Prov.Exact}}meta{{else}}warn{{end}}">Provenance: {{.Prov}}.{{if not .Prov.Exact}}
This slice crosses flight-recorder gaps: bridged edges were re-derived and hash-verified; estimated edges failed verification and are best-effort only.{{end}}</p>
{{end}}

{{range .Files}}
<h2>{{.Name}}</h2>
{{if .HasSrc}}
<table class="src">
{{range .Lines}}<tr{{if .InSlice}} class="hit"{{end}}><td class="no">{{.No}}</td><td>{{.Text}}</td><td class="meta">{{if .InSlice}}&times;{{.Count}} {{.Threads}}{{end}}</td></tr>
{{end}}</table>
{{else}}
<table class="src">
<tr><td class="no">line</td><td class="meta">executions</td><td class="meta">threads</td></tr>
{{range .Stmts}}<tr class="hit"><td class="no">{{.No}}</td><td>&times;{{.Count}}</td><td class="meta">{{.Threads}}</td></tr>
{{end}}</table>
{{end}}
{{end}}

<h2>Dependences ({{len .Deps}})</h2>
<table class="dep">
{{range .Deps}}<tr{{if .Cross}} class="cross"{{end}}><td>{{.Kind}}</td><td>{{.From}}</td><td>&larr;</td><td>{{.To}}</td><td class="prov">{{if .Prov}}{{.Prov}} ({{.Confidence}}){{end}}</td></tr>
{{end}}</table>

<h2>Exclusion regions ({{len .Exclusions}})</h2>
<pre>{{range .Exclusions}}{{.}}
{{end}}</pre>
</body></html>
`))
