package slice

import (
	"repro/internal/isa"
	"repro/internal/lru"
	"repro/internal/tracer"
)

// Process-lifetime engine cache. A cyclic-debugging session replays the
// same pinball region many times, and every replay yields a bit-identical
// trace (that is the point of deterministic replay) — so the parallel
// engine built over one replay, i.e. the forward-pass metadata plus the
// stitched dependence shards, is reusable for every later slice query on
// the same recording. The cache keys on the pinball's content identity
// (pinball.ID) plus a fingerprint of the slicing options, because the
// options change the forward pass (refinement, jump tables, save/restore
// candidates) and hence the engine.
//
// The cache is a size-bounded LRU with single-flight loading: a session
// daemon serving many concurrent clients keeps only the hottest engines
// resident (an engine can be tens of megabytes), and concurrent sessions
// asking for the same engine share one build instead of racing N
// builders for the same shards.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func foldCache(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// optionsFingerprint digests the option fields that shape the engine.
func optionsFingerprint(opts Options, popts ParallelOptions) uint64 {
	h := fnvOffset
	h = foldCache(h, uint64(opts.MaxSave))
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	h = foldCache(h, b(opts.PruneSaveRestore))
	h = foldCache(h, b(opts.ControlDeps))
	h = foldCache(h, b(opts.UseJumpTables))
	h = foldCache(h, b(opts.DisableRefinement))
	h = foldCache(h, uint64(opts.LPBlock))
	h = foldCache(h, uint64(popts.WindowSize))
	return h
}

type engineKey struct {
	pinballID string
	opts      uint64
}

// DefaultEngineCacheCap bounds the engine cache: an interactive
// debugging session touches a handful of (recording, options) pairs; a
// session daemon raises or lowers the cap to its memory budget with
// SetEngineCacheCap.
const DefaultEngineCacheCap = 64

var sharedEngines = lru.New[engineKey, *ParallelSlicer](DefaultEngineCacheCap)

// CachedParallel returns the parallel engine for (pinballID, opts),
// building and caching it on first use. pinballID must identify the
// recording's content (pinball.Pinball.ID); callers replaying the same
// pinball get the already-built engine, paying the forward pass and the
// shard build once per process (concurrent first callers share a single
// build). An empty pinballID disables caching (the trace has no durable
// identity to key on).
func CachedParallel(pinballID string, prog *isa.Program, tr *tracer.Trace, opts Options, popts ParallelOptions) (*ParallelSlicer, error) {
	if pinballID == "" {
		return NewParallel(prog, tr, opts, popts)
	}
	key := engineKey{pinballID: pinballID, opts: optionsFingerprint(opts, popts)}
	return sharedEngines.GetOrLoad(key, func() (*ParallelSlicer, error) {
		return NewParallel(prog, tr, opts, popts)
	})
}

// EngineCacheStats reports the engine cache counters.
type EngineCacheStats struct {
	Entries   int
	Hits      int64
	Misses    int64
	Evictions int64
}

// GetEngineCacheStats returns the shared engine cache's counters.
func GetEngineCacheStats() EngineCacheStats {
	st := sharedEngines.Stats()
	return EngineCacheStats{
		Entries:   st.Entries,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
	}
}

// SetEngineCacheCap bounds the number of resident engines (minimum 1),
// evicting least-recently-used engines immediately if over the new cap.
func SetEngineCacheCap(n int) { sharedEngines.SetCap(n) }

// EngineCacheCap returns the current engine-cache capacity.
func EngineCacheCap() int { return sharedEngines.Cap() }

// ResetEngineCache empties the shared engine cache and counters (tests).
func ResetEngineCache() { sharedEngines.Reset() }
