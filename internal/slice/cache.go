package slice

import (
	"sync"

	"repro/internal/isa"
	"repro/internal/tracer"
)

// Process-lifetime engine cache. A cyclic-debugging session replays the
// same pinball region many times, and every replay yields a bit-identical
// trace (that is the point of deterministic replay) — so the parallel
// engine built over one replay, i.e. the forward-pass metadata plus the
// stitched dependence shards, is reusable for every later slice query on
// the same recording. The cache keys on the pinball's content identity
// (pinball.ID) plus a fingerprint of the slicing options, because the
// options change the forward pass (refinement, jump tables, save/restore
// candidates) and hence the engine.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func foldCache(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// optionsFingerprint digests the option fields that shape the engine.
func optionsFingerprint(opts Options, popts ParallelOptions) uint64 {
	h := fnvOffset
	h = foldCache(h, uint64(opts.MaxSave))
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	h = foldCache(h, b(opts.PruneSaveRestore))
	h = foldCache(h, b(opts.ControlDeps))
	h = foldCache(h, b(opts.UseJumpTables))
	h = foldCache(h, b(opts.DisableRefinement))
	h = foldCache(h, uint64(opts.LPBlock))
	h = foldCache(h, uint64(popts.WindowSize))
	return h
}

type engineKey struct {
	pinballID string
	opts      uint64
}

// engineCacheMax bounds the cache; a debugging session touches a handful
// of (recording, options) pairs, so overflow just drops everything.
const engineCacheMax = 64

type engineCache struct {
	mu      sync.Mutex
	engines map[engineKey]*ParallelSlicer
	hits    int64
	misses  int64
}

var sharedEngines = &engineCache{engines: make(map[engineKey]*ParallelSlicer)}

// CachedParallel returns the parallel engine for (pinballID, opts),
// building and caching it on first use. pinballID must identify the
// recording's content (pinball.Pinball.ID); callers replaying the same
// pinball get the already-built engine, paying the forward pass and the
// shard build once per process. An empty pinballID disables caching (the
// trace has no durable identity to key on).
func CachedParallel(pinballID string, prog *isa.Program, tr *tracer.Trace, opts Options, popts ParallelOptions) (*ParallelSlicer, error) {
	if pinballID == "" {
		return NewParallel(prog, tr, opts, popts)
	}
	key := engineKey{pinballID: pinballID, opts: optionsFingerprint(opts, popts)}
	sharedEngines.mu.Lock()
	if eng, ok := sharedEngines.engines[key]; ok {
		sharedEngines.hits++
		sharedEngines.mu.Unlock()
		return eng, nil
	}
	sharedEngines.misses++
	sharedEngines.mu.Unlock()

	eng, err := NewParallel(prog, tr, opts, popts)
	if err != nil {
		return nil, err
	}

	sharedEngines.mu.Lock()
	if cached, ok := sharedEngines.engines[key]; ok {
		// Raced with a concurrent builder; keep the first engine so every
		// caller shares one instance.
		sharedEngines.mu.Unlock()
		return cached, nil
	}
	if len(sharedEngines.engines) >= engineCacheMax {
		sharedEngines.engines = make(map[engineKey]*ParallelSlicer)
	}
	sharedEngines.engines[key] = eng
	sharedEngines.mu.Unlock()
	return eng, nil
}

// EngineCacheStats reports the engine cache counters.
type EngineCacheStats struct {
	Entries int
	Hits    int64
	Misses  int64
}

// GetEngineCacheStats returns the shared engine cache's counters.
func GetEngineCacheStats() EngineCacheStats {
	sharedEngines.mu.Lock()
	defer sharedEngines.mu.Unlock()
	return EngineCacheStats{
		Entries: len(sharedEngines.engines),
		Hits:    sharedEngines.hits,
		Misses:  sharedEngines.misses,
	}
}

// ResetEngineCache empties the shared engine cache and counters (tests).
func ResetEngineCache() {
	sharedEngines.mu.Lock()
	sharedEngines.engines = make(map[engineKey]*ParallelSlicer)
	sharedEngines.hits = 0
	sharedEngines.misses = 0
	sharedEngines.mu.Unlock()
}
