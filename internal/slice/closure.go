package slice

import (
	"fmt"

	"repro/internal/tracer"
)

// CheckClosure verifies the defining property of a backward dynamic
// slice on a computed result: for every member, the dynamic sources of
// its used values are members too (except where a verified save/restore
// pair bypasses the dependence), every member's dynamic control parent
// inside the region is a member, members ascend in global order ending
// at the criterion, and every exemplar dependence edge connects members
// backward. It is the runtime form of the property-based closure tests,
// exposed so scenario assertions (drmatrix's `slice: closed`) can check
// a cell's slice without importing test internals. The walk is
// O(members × trace), so callers should reserve it for bounded regions.
func (s *Slicer) CheckClosure(sl *Slice) error {
	if sl == nil {
		return fmt.Errorf("slice: nil slice")
	}
	tr, opts, fwd := s.Trace, s.Opts, s.fwd
	if err := checkWellFormed(tr, sl); err != nil {
		return err
	}

	var buf [8]tracer.Loc
	definesAt := func(g int, l tracer.Loc) bool {
		e := tr.Entry(tr.Global[g])
		for _, d := range tracer.Defs(e, buf[:0]) {
			if d == l {
				return true
			}
		}
		return false
	}
	type demand struct {
		l tracer.Loc
		g int
	}
	checked := make(map[demand]bool)
	var walk func(l tracer.Loc, g int) error
	walk = func(l tracer.Loc, g int) error {
		if checked[demand{l, g}] {
			return nil
		}
		checked[demand{l, g}] = true
		for d := g - 1; d >= 0; d-- {
			if !definesAt(d, l) {
				continue
			}
			ref := tr.Global[d]
			if sl.Contains(ref) {
				return nil // closure holds: the source is in the slice
			}
			if opts.PruneSaveRestore {
				if bp, ok := fwd.bypass[ref]; ok {
					switch {
					case bp.role == bypassRestore && bp.reg == l:
						return walk(bp.slot, d)
					case bp.role == bypassSave && bp.slot == l:
						return walk(bp.reg, d)
					}
				}
			}
			return fmt.Errorf("slice: closure violated: member demand for loc %v resolves to non-member %+v (global %d)", l, ref, d)
		}
		return nil // no preceding definition: region-live-in value
	}
	for _, m := range sl.Members {
		g, ok := tr.GlobalPosOf(m)
		if !ok {
			return fmt.Errorf("slice: member %+v outside global trace", m)
		}
		for _, l := range tracer.Uses(tr.Entry(m), buf[:0]) {
			if err := walk(l, g); err != nil {
				return err
			}
		}
	}

	if opts.ControlDeps {
		critPos, _ := tr.GlobalPosOf(sl.Criterion)
		for _, m := range sl.Members {
			if p, ok := fwd.parentOf(m); ok {
				if pg, ok := tr.GlobalPosOf(p); ok && pg <= critPos && !sl.Contains(p) {
					return fmt.Errorf("slice: control parent %+v of member %+v not in slice", p, m)
				}
			}
		}
	}
	return s.checkProvenance(sl)
}

// checkWellFormed verifies the structural invariants of a slice result:
// ascending global member order ending at the criterion, and dependence
// edges that connect members strictly backward, with data edges naming a
// location their target defines.
func checkWellFormed(tr *tracer.Trace, sl *Slice) error {
	if len(sl.Members) == 0 {
		return fmt.Errorf("slice: empty slice")
	}
	prev := -1
	for _, m := range sl.Members {
		g, ok := tr.GlobalPosOf(m)
		if !ok {
			return fmt.Errorf("slice: member %+v outside trace", m)
		}
		if g <= prev {
			return fmt.Errorf("slice: members not in ascending global order at %+v", m)
		}
		prev = g
	}
	if last := sl.Members[len(sl.Members)-1]; last != sl.Criterion {
		return fmt.Errorf("slice: last member %+v is not the criterion %+v", last, sl.Criterion)
	}
	var buf [8]tracer.Loc
	for i, d := range sl.Deps {
		if !sl.Contains(d.From) || !sl.Contains(d.To) {
			return fmt.Errorf("slice: dep %d %+v has non-member endpoint", i, d)
		}
		gf, _ := tr.GlobalPosOf(d.From)
		gt, _ := tr.GlobalPosOf(d.To)
		if gt >= gf && d.From != d.To {
			return fmt.Errorf("slice: dep %d %+v does not point backward (%d -> %d)", i, d, gf, gt)
		}
		if d.Kind == DepData {
			defines := false
			for _, l := range tracer.Defs(tr.Entry(d.To), buf[:0]) {
				if l == d.Loc {
					defines = true
				}
			}
			if !defines {
				return fmt.Errorf("slice: data dep %d %+v names loc %v its target does not define", i, d, d.Loc)
			}
		}
	}
	return nil
}
