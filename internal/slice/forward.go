// Package slice implements DrDebug's dynamic slicer for multi-threaded
// programs (paper Sections 3-5): precise dynamic control dependences via
// the Xin-Zhang online algorithm over CFGs refined with dynamically
// observed indirect-jump targets (§5.1), data dependences recovered by a
// backward traversal of the global trace with Limited-Preprocessing block
// skipping (§3), spurious save/restore dependence pruning (§5.2), and the
// code-exclusion region builder that feeds PinPlay's relogger (§4).
package slice

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/tracer"
)

// noParent marks an entry with no control parent.
var noParent = tracer.Ref{Tid: -1, Pos: -1}

// bypassRole classifies a verified save/restore instruction instance.
type bypassRole uint8

const (
	bypassSave bypassRole = iota + 1
	bypassRestore
)

// bypassInfo describes a verified save or restore event: reg is the saved
// register's location, slot the stack cell it was saved into.
type bypassInfo struct {
	role bypassRole
	reg  tracer.Loc
	slot tracer.Loc
}

// forward holds the results of the forward analysis pass over the trace:
// per-entry dynamic control parents and the verified save/restore pairs.
type forward struct {
	// parent[tid][pos] is the control parent of that entry. For entries
	// guarded by a branch it is the branch; for unguarded entries inside
	// a call it is the CALL (making callee code transitively dependent
	// on the predicate guarding the call, as in paper Figure 8); for a
	// spawned thread's root it is the SPAWN event.
	parent map[int][]tracer.Ref

	bypass map[tracer.Ref]bypassInfo

	// pairs counts dynamically verified save/restore pairs.
	pairs int64
	// cfgRefinements counts newly observed indirect-jump targets.
	cfgRefinements int64
}

// cdEntry is one entry of the per-thread control-dependence stack: either
// an open branch region or a call-frame marker.
type cdEntry struct {
	isFrame bool
	ref     tracer.Ref
	ipdPC   int64 // region close pc; -1 closes only at frame pop
	frameID int64
}

// frameSave records a candidate save awaiting its restore in a frame.
type frameSave struct {
	frameID int64
	reg     isa.Reg
	addr    int64
	val     int64
	ref     tracer.Ref
}

// runForward performs the forward pass: (i) observe every indirect-jump
// target to refine the CFGs (§5.1); (ii) replay the Xin-Zhang region
// stack per thread to attach a dynamic control parent to every entry;
// (iii) dynamically verify save/restore candidate pairs (§5.2).
func runForward(prog *isa.Program, tr *tracer.Trace, an *cfg.Analyzer, cand *srCandidates, refine bool) (*forward, error) {
	// Phase 1: CFG refinement. All dynamic indirect-jump (and indirect
	// call) targets are added before post-dominators are queried, so the
	// control-dependence pass below runs on the fully refined CFG.
	var refs int64
	if refine {
		for _, local := range tr.Locals {
			refs += observeIndirects(an, local)
		}
	}

	f := &forward{
		parent:         make(map[int][]tracer.Ref, len(tr.Locals)),
		bypass:         make(map[tracer.Ref]bypassInfo),
		cfgRefinements: refs,
	}

	for tid, local := range tr.Locals {
		res, err := forwardThread(tr, an, cand, tid, local)
		if err != nil {
			return nil, err
		}
		f.parent[tid] = res.parents
		for ref, bp := range res.bypass {
			f.bypass[ref] = bp
		}
		f.pairs += res.pairs
	}
	return f, nil
}

// observeIndirects feeds one thread's dynamically taken indirect-jump
// targets into the analyzer, returning how many were new.
func observeIndirects(an *cfg.Analyzer, local []tracer.Entry) int64 {
	var refs int64
	for i := range local {
		e := &local[i]
		if e.Instr.Op == isa.JMPI && e.NextPC >= 0 {
			if an.ObserveIndirect(e.PC, e.NextPC) {
				refs++
			}
		}
	}
	return refs
}

// threadForward is one thread's forward-pass result.
type threadForward struct {
	parents []tracer.Ref
	bypass  map[tracer.Ref]bypassInfo
	pairs   int64
}

// forwardThread runs the Xin-Zhang control-dependence stack and the
// save/restore verifier over one thread's local trace. Threads are
// independent — the parallel engine runs one forwardThread per worker —
// and the analyzer must already hold every indirect target (phase 1)
// so the refined CFGs are complete when post-dominators are queried.
func forwardThread(tr *tracer.Trace, an *cfg.Analyzer, cand *srCandidates, tid int, local []tracer.Entry) (threadForward, error) {
	res := threadForward{
		parents: make([]tracer.Ref, len(local)),
		bypass:  make(map[tracer.Ref]bypassInfo),
	}
	parents := res.parents
	var stack []cdEntry
	var saves []frameSave
	var nextFrameID int64 = 1
	var frameIDs = []int64{0} // current frame id stack (root = 0)

	spawnParent := noParent
	if sp, ok := tr.SpawnEvent[tid]; ok {
		spawnParent = sp
	}

	for pos := range local {
		e := &local[pos]
		here := tracer.Ref{Tid: int32(tid), Pos: int32(pos)}
		pc := e.PC

		// Close branch regions whose immediate post-dominator has
		// been reached (same frame only).
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if !top.isFrame && top.ipdPC == pc && top.frameID == frameIDs[len(frameIDs)-1] {
				stack = stack[:len(stack)-1]
				continue
			}
			break
		}

		// Control parent.
		if len(stack) > 0 {
			parents[pos] = stack[len(stack)-1].ref
		} else {
			parents[pos] = spawnParent
		}

		switch {
		case e.Instr.Op == isa.CALL || e.Instr.Op == isa.CALLI:
			stack = append(stack, cdEntry{isFrame: true, ref: here, frameID: frameIDs[len(frameIDs)-1]})
			frameIDs = append(frameIDs, nextFrameID)
			nextFrameID++

		case e.Instr.Op == isa.RET:
			// Pop everything belonging to the returning frame,
			// including the frame marker itself.
			for len(stack) > 0 {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if top.isFrame {
					break
				}
			}
			// Discard unmatched saves of the dead frame.
			fid := frameIDs[len(frameIDs)-1]
			for len(saves) > 0 && saves[len(saves)-1].frameID == fid {
				saves = saves[:len(saves)-1]
			}
			if len(frameIDs) > 1 {
				frameIDs = frameIDs[:len(frameIDs)-1]
			}

		case e.Instr.IsBranch():
			ipd, err := an.IPDPc(pc)
			if err != nil {
				return res, fmt.Errorf("slice: control deps at pc %d: %w", pc, err)
			}
			stack = append(stack, cdEntry{ref: here, ipdPC: ipd, frameID: frameIDs[len(frameIDs)-1]})
		}

		// Save/restore verification.
		if cand != nil {
			fid := frameIDs[len(frameIDs)-1]
			if e.Instr.Op == isa.PUSH && cand.saves[pc] {
				saves = append(saves, frameSave{
					frameID: fid, reg: e.Instr.Rs1, addr: e.EffAddr, val: e.MemVal, ref: here,
				})
			} else if e.Instr.Op == isa.POP && cand.restores[pc] {
				// Match the most recent save of the same frame with
				// the same register, slot and value.
				for i := len(saves) - 1; i >= 0 && saves[i].frameID == fid; i-- {
					s := saves[i]
					if s.reg == e.Instr.Rd && s.addr == e.EffAddr && s.val == e.MemVal {
						reg := tracer.RegLoc(tid, s.reg)
						slot := tracer.MemLoc(s.addr)
						res.bypass[s.ref] = bypassInfo{role: bypassSave, reg: reg, slot: slot}
						res.bypass[here] = bypassInfo{role: bypassRestore, reg: reg, slot: slot}
						res.pairs++
						saves = append(saves[:i], saves[i+1:]...)
						break
					}
				}
			}
		}
	}
	return res, nil
}

// parentOf returns the control parent of ref, or ok=false.
func (f *forward) parentOf(r tracer.Ref) (tracer.Ref, bool) {
	p := f.parent[int(r.Tid)][r.Pos]
	if p.Tid < 0 {
		return noParent, false
	}
	return p, true
}
