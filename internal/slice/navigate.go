package slice

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/tracer"
)

// Navigator supports the KDbg GUI's dependence navigation (paper Figure
// 9): from any instruction in the slice, list the instructions it
// directly depends on (backward edges, the GUI's "Activate" traversal)
// and the instructions depending on it (forward).
type Navigator struct {
	tr      *tracer.Trace
	sl      *Slice
	back    map[tracer.Ref][]DepEdge // From -> edges (To = dependee)
	forward map[tracer.Ref][]DepEdge // To -> edges
}

// NewNavigator indexes a slice's dependence edges for navigation.
func NewNavigator(tr *tracer.Trace, sl *Slice) *Navigator {
	n := &Navigator{
		tr:      tr,
		sl:      sl,
		back:    make(map[tracer.Ref][]DepEdge),
		forward: make(map[tracer.Ref][]DepEdge),
	}
	for _, d := range sl.Deps {
		n.back[d.From] = append(n.back[d.From], d)
		n.forward[d.To] = append(n.forward[d.To], d)
	}
	return n
}

// Criterion returns the slice's criterion ref, the natural navigation
// start point.
func (n *Navigator) Criterion() tracer.Ref { return n.sl.Criterion }

// DependsOn returns the dependence edges from ref to the instructions it
// consumed values (or control) from, ordered data-then-control.
func (n *Navigator) DependsOn(ref tracer.Ref) []DepEdge {
	out := append([]DepEdge(nil), n.back[ref]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Dependents returns the edges from instructions that consumed ref's
// value (or were control dependent on it).
func (n *Navigator) Dependents(ref tracer.Ref) []DepEdge {
	out := append([]DepEdge(nil), n.forward[ref]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Describe renders one slice instruction for display.
func (n *Navigator) Describe(prog *isa.Program, ref tracer.Ref) string {
	e := n.tr.Entry(ref)
	return fmt.Sprintf("T%d@%d %s (%s)", ref.Tid, e.Idx, prog.SourceOf(e.PC), e.Instr.String())
}

// WriteChain walks backwards from ref along the first dependence edge at
// each step — the "follow the value" shortcut — printing up to maxDepth
// hops. Cross-thread hops are marked; this is the textual version of
// clicking Activate repeatedly in the GUI.
func (n *Navigator) WriteChain(w io.Writer, prog *isa.Program, ref tracer.Ref, maxDepth int) {
	cur := ref
	for depth := 0; depth <= maxDepth; depth++ {
		fmt.Fprintf(w, "%*s%s\n", depth*2, "", n.Describe(prog, cur))
		deps := n.DependsOn(cur)
		if len(deps) == 0 {
			return
		}
		d := deps[0]
		marker := ""
		if d.From.Tid != d.To.Tid {
			marker = " [cross-thread]"
		}
		fmt.Fprintf(w, "%*s<- %s%s\n", depth*2, "", d.Kind, marker)
		cur = d.To
	}
	fmt.Fprintf(w, "%*s...\n", (maxDepth+1)*2, "")
}

// ResolveMember finds the slice member for (tid, per-thread idx), or an
// error when that instruction is not in the slice.
func (n *Navigator) ResolveMember(tid int, idx int64) (tracer.Ref, error) {
	ref, ok := n.tr.RefOf(tid, idx)
	if !ok {
		return tracer.Ref{}, fmt.Errorf("slice: T%d@%d outside the traced region", tid, idx)
	}
	if !n.sl.Contains(ref) {
		return tracer.Ref{}, fmt.Errorf("slice: T%d@%d is not in the slice", tid, idx)
	}
	return ref, nil
}
