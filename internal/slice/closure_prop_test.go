package slice

import (
	"fmt"
	"testing"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/pinplay"
	"repro/internal/progfuzz"
	"repro/internal/tracer"
)

// Property-based closure tests (in the internal package, so they can see
// the forward-pass metadata and the member set). The defining property
// of a backward dynamic slice is closure: for every member, the dynamic
// sources of its used values are in the slice too, except where a
// verified save/restore pair explicitly bypasses the dependence (§5.2).
// These properties hold for ANY correct slicer, so they are checked on
// both engines over a population of generated programs.

// propTrace builds, logs and traces one seeded progfuzz program.
func propTrace(t *testing.T, seed int64) (*isa.Program, *tracer.Trace, int) {
	t.Helper()
	src := progfuzz.Generate(progfuzz.Config{
		Seed:    seed,
		Stmts:   5 + int(seed%6),
		Funcs:   int(seed % 3),
		Threads: seed%3 == 0,
	})
	prog, err := cc.CompileSource(fmt.Sprintf("prop%d.c", seed), src)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 4}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("seed %d: log: %v", seed, err)
	}
	m := pinplay.NewReplayMachine(prog, pb, nil)
	col := tracer.NewCollector(m)
	m.SetTracer(col)
	for i, total := int64(0), pb.TotalQuantumInstrs(); i < total && m.StepOne(); i++ {
	}
	tr := col.Trace()
	if err := tr.BuildGlobal(); err != nil {
		t.Fatalf("seed %d: global: %v", seed, err)
	}
	return prog, tr, pinplay.WindowSize(pb)
}

// checkDataClosure walks every member's uses backward to their dynamic
// definition: the definition must be a slice member, or a verified
// save/restore instruction whose bypass redirects the demand (in which
// case the redirected location's definition chain is followed), or not
// exist at all (region-live-in value).
func checkDataClosure(t *testing.T, label string, tr *tracer.Trace, sl *Slice, opts Options, fwd *forward) {
	t.Helper()
	var buf [8]tracer.Loc
	definesAt := func(g int, l tracer.Loc) bool {
		e := tr.Entry(tr.Global[g])
		for _, d := range tracer.Defs(e, buf[:0]) {
			if d == l {
				return true
			}
		}
		return false
	}
	type dk struct {
		l tracer.Loc
		g int
	}
	checked := make(map[dk]bool)
	var walk func(l tracer.Loc, g int)
	walk = func(l tracer.Loc, g int) {
		if checked[dk{l, g}] {
			return
		}
		checked[dk{l, g}] = true
		for d := g - 1; d >= 0; d-- {
			if !definesAt(d, l) {
				continue
			}
			ref := tr.Global[d]
			if sl.Contains(ref) {
				return // closure holds: the source is in the slice
			}
			if opts.PruneSaveRestore {
				if bp, ok := fwd.bypass[ref]; ok {
					switch {
					case bp.role == bypassRestore && bp.reg == l:
						walk(bp.slot, d)
						return
					case bp.role == bypassSave && bp.slot == l:
						walk(bp.reg, d)
						return
					}
				}
			}
			t.Fatalf("%s: closure violated: member demand for loc %v resolves to non-member %+v (global %d)",
				label, l, ref, d)
		}
		// No preceding definition: the value is live-in to the region.
	}
	for _, m := range sl.Members {
		g, ok := tr.GlobalPosOf(m)
		if !ok {
			t.Fatalf("%s: member %+v outside global trace", label, m)
		}
		for _, l := range tracer.Uses(tr.Entry(m), buf[:0]) {
			walk(l, g)
		}
	}
}

// checkControlClosure: every member's dynamic control parent (when
// inside the sliced region) is a member.
func checkControlClosure(t *testing.T, label string, tr *tracer.Trace, sl *Slice, fwd *forward) {
	t.Helper()
	critPos, _ := tr.GlobalPosOf(sl.Criterion)
	for _, m := range sl.Members {
		if p, ok := fwd.parentOf(m); ok {
			if pg, ok := tr.GlobalPosOf(p); ok && pg <= critPos && !sl.Contains(p) {
				t.Fatalf("%s: control parent %+v of member %+v not in slice", label, p, m)
			}
		}
	}
}

// checkSliceWellFormed: members ascend in global order and end at the
// criterion; every dependence edge connects members, and data edges name
// a location their target actually defines.
func checkSliceWellFormed(t *testing.T, label string, tr *tracer.Trace, sl *Slice) {
	t.Helper()
	if len(sl.Members) == 0 {
		t.Fatalf("%s: empty slice", label)
	}
	prev := -1
	for _, m := range sl.Members {
		g, ok := tr.GlobalPosOf(m)
		if !ok {
			t.Fatalf("%s: member %+v outside trace", label, m)
		}
		if g <= prev {
			t.Fatalf("%s: members not in ascending global order at %+v", label, m)
		}
		prev = g
	}
	if last := sl.Members[len(sl.Members)-1]; last != sl.Criterion {
		t.Fatalf("%s: last member %+v is not the criterion %+v", label, last, sl.Criterion)
	}
	var buf [8]tracer.Loc
	for i, d := range sl.Deps {
		if !sl.Contains(d.From) || !sl.Contains(d.To) {
			t.Fatalf("%s: dep %d %+v has non-member endpoint", label, i, d)
		}
		gf, _ := tr.GlobalPosOf(d.From)
		gt, _ := tr.GlobalPosOf(d.To)
		if gt >= gf && d.From != d.To {
			t.Fatalf("%s: dep %d %+v does not point backward (%d -> %d)", label, i, d, gf, gt)
		}
		if d.Kind == DepData {
			defines := false
			for _, l := range tracer.Defs(tr.Entry(d.To), buf[:0]) {
				if l == d.Loc {
					defines = true
				}
			}
			if !defines {
				t.Fatalf("%s: data dep %d %+v names loc %v its target does not define", label, i, d, d.Loc)
			}
		}
	}
}

// TestSliceClosureProperties checks the closure properties on both
// engines across a population of generated programs and option sets.
func TestSliceClosureProperties(t *testing.T) {
	programs := int64(40)
	if testing.Short() {
		programs = 10
	}
	for seed := int64(1); seed <= programs; seed++ {
		prog, tr, window := propTrace(t, seed)
		opts := DefaultOptions()
		switch seed % 3 {
		case 1:
			opts.PruneSaveRestore = false
		case 2:
			opts.ControlDeps = false
		}

		crit, err := LastEventOf(tr, 0)
		if err != nil {
			t.Fatal(err)
		}

		seqEng, err := New(prog, tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		parEng, err := NewParallel(prog, tr, opts, ParallelOptions{Workers: 3, WindowSize: window})
		if err != nil {
			t.Fatal(err)
		}

		for _, eng := range []struct {
			name string
			q    Querier
			fwd  *forward
		}{
			{"sequential", seqEng, seqEng.fwd},
			{"parallel", parEng, parEng.fwd},
		} {
			label := fmt.Sprintf("seed %d %s (opts %+v)", seed, eng.name, opts)
			sl, err := eng.q.Slice(crit)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			checkSliceWellFormed(t, label, tr, sl)
			checkDataClosure(t, label, tr, sl, opts, eng.fwd)
			if opts.ControlDeps {
				checkControlClosure(t, label, tr, sl, eng.fwd)
			}
		}
	}
}

// TestDefIndexMatchesTrace cross-checks the stitched definition index
// against a direct trace scan, for several window sizes and worker
// counts (including windows much smaller and much larger than the
// trace).
func TestDefIndexMatchesTrace(t *testing.T) {
	_, tr, _ := propTrace(t, 9)
	n := len(tr.Global)
	var buf [8]tracer.Loc

	// Reference: per-location def positions from one forward scan.
	want := make(map[tracer.Loc][]int)
	for g := 0; g < n; g++ {
		for _, l := range tracer.Defs(tr.Entry(tr.Global[g]), buf[:0]) {
			want[l] = append(want[l], g)
		}
	}

	for _, window := range []int{1, 7, 64, n, 10 * n} {
		for _, workers := range []int{1, 4} {
			idx := tracer.BuildDefIndex(tr, tracer.SplitWindows(n, window), workers)
			for l, ps := range want {
				// NearestDefBefore at each def position must return the
				// previous def; past-the-end returns the last.
				for i, p := range ps {
					got, ok := idx.NearestDefBefore(l, p)
					if i == 0 {
						if ok {
							t.Fatalf("window %d: loc %v has no def before %d, index returned %d", window, l, p, got)
						}
					} else if !ok || got != ps[i-1] {
						t.Fatalf("window %d: loc %v nearest def before %d = %d, want %d", window, l, p, got, ps[i-1])
					}
				}
				if got, ok := idx.NearestDefBefore(l, n); !ok || got != ps[len(ps)-1] {
					t.Fatalf("window %d: loc %v last def = %d,%v want %d", window, l, got, ok, ps[len(ps)-1])
				}
			}
			if idx.Locations() != len(want) {
				t.Fatalf("window %d: index covers %d locations, want %d", window, idx.Locations(), len(want))
			}
		}
	}
}
