package slice

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/tracer"
)

// Querier is the slice-computation interface shared by the sequential
// Slicer and the parallel engine, so sessions and tools can switch
// implementations without caring which one answers.
type Querier interface {
	Slice(crit tracer.Ref) (*Slice, error)
}

// ParallelOptions configures the parallel engine's build phase.
type ParallelOptions struct {
	// Workers bounds the worker pool used for the forward pass and the
	// dependence-shard build. <= 0 means GOMAXPROCS.
	Workers int
	// WindowSize is the global-trace entries per dependence shard.
	// Callers normally pass the pinball's checkpoint cadence (see
	// pinplay.TraceWindows); <= 0 falls back to tracer.DefaultLPBlock.
	WindowSize int
	// Ctx cancels the build cooperatively: the worker pools check it
	// between per-thread forward passes and between window shards, so an
	// aborted or preempted session stops burning workers promptly. Ctx
	// does not shape the built engine (it is excluded from the cache
	// fingerprint). nil means no cancellation.
	Ctx context.Context
}

// EngineStats reports the parallel engine's build/query accounting.
type EngineStats struct {
	Workers    int   // resolved worker count
	Shards     int   // dependence-shard windows built
	IndexDefs  int64 // definitions in the stitched index
	Queries    int64 // Slice calls answered so far
	IndexSteps int64 // demand-resolution events across all queries
}

// ParallelSlicer computes backward dynamic slices with the sharded
// engine: the forward pass (CFG refinement, control parents,
// save/restore verification) runs one thread per worker, the global
// trace is cut into checkpoint-cadence windows whose definition shards
// are built concurrently and stitched deterministically, and each query
// then resolves demands by binary search in the stitched index instead
// of re-walking the trace.
//
// The engine is bit-identical to the sequential Slicer by construction:
// a query simulates the exact backward sweep of Slicer.Slice — same
// demand set, same per-entry match selection, same save/restore
// bypasses, same exemplar-edge order — but visits only the positions
// where something can happen (the next pending definition or control
// parent), which the index serves in O(log n). Results therefore do
// not depend on the worker count, only the build cost does.
//
// A built engine is immutable and safe for concurrent Slice calls.
type ParallelSlicer struct {
	Prog  *isa.Program
	Trace *tracer.Trace
	Opts  Options

	analyzer *cfg.Analyzer
	fwd      *forward
	idx      *tracer.DefIndex
	// bypassAt flags the global positions of verified save/restore
	// entries; bypassRank and bypassInfos form its rank directory, so a
	// query reads an entry's bypass roles with popcount arithmetic
	// instead of probing the (large) forward-pass map.
	bypassAt    []uint64
	bypassRank  []int32
	bypassInfos []bypassInfo

	// Query scratches are pooled on an engine-owned free list rather
	// than a sync.Pool: the arrays are tens of megabytes and rebuilding
	// (and re-zeroing) them after every GC cycle costs more than the
	// retention. The list holds at most one scratch per concurrent
	// query, for the engine's lifetime.
	scratchMu sync.Mutex
	scratches []*queryScratch
	mkScratch func() *queryScratch
	// depsHint tracks the largest dependence-edge count any query has
	// produced, so later queries allocate their result once.
	depsHint atomic.Int64

	workers    int
	windowSize int
	queries    atomic.Int64
	indexSteps atomic.Int64
}

// wantedSet is the query's demand set: location -> demanding member.
// Locations inside the trace's dense LocSpace live in a direct-indexed
// table (a presence bitset plus a requester array — the hot path);
// out-of-space locations (untouched addresses) fall back to a map.
type wantedSet struct {
	space tracer.LocSpace
	bits  []uint64
	ref   []tracer.Ref
	over  map[tracer.Loc]tracer.Ref
}

// add records ref as l's requester and reports whether l was freshly
// demanded (not already wanted).
func (ws *wantedSet) add(l tracer.Loc, r tracer.Ref) bool {
	if i, ok := ws.space.Index(l); ok {
		w, b := i>>6, uint64(1)<<(i&63)
		fresh := ws.bits[w]&b == 0
		ws.bits[w] |= b
		ws.ref[i] = r
		return fresh
	}
	_, had := ws.over[l]
	ws.over[l] = r
	return !had
}

// get returns l's requester and whether l is wanted.
func (ws *wantedSet) get(l tracer.Loc) (tracer.Ref, bool) {
	if i, ok := ws.space.Index(l); ok {
		if ws.bits[i>>6]&(1<<(i&63)) == 0 {
			return tracer.Ref{}, false
		}
		return ws.ref[i], true
	}
	r, ok := ws.over[l]
	return r, ok
}

// has reports whether l is wanted.
func (ws *wantedSet) has(l tracer.Loc) bool {
	if i, ok := ws.space.Index(l); ok {
		return ws.bits[i>>6]&(1<<(i&63)) != 0
	}
	_, ok := ws.over[l]
	return ok
}

// del kills the demand on l.
func (ws *wantedSet) del(l tracer.Loc) {
	if i, ok := ws.space.Index(l); ok {
		ws.bits[i>>6] &^= 1 << (i & 63)
		return
	}
	delete(ws.over, l)
}

// queryScratch is the reusable allocation block of one Slice call:
// the demand set, the member bitset, the candidate heap and the drain
// buffer. Engines pool scratches so repeated queries (the cyclic
// debugging loop) allocate only their results.
type queryScratch struct {
	ws      wantedSet
	members []uint64
	events  []uint64
	h       candHeap
	batch   []tracer.Loc
}

// getScratch pops a pooled scratch or builds a fresh one.
func (s *ParallelSlicer) getScratch() *queryScratch {
	s.scratchMu.Lock()
	defer s.scratchMu.Unlock()
	if n := len(s.scratches); n > 0 {
		sc := s.scratches[n-1]
		s.scratches = s.scratches[:n-1]
		return sc
	}
	return s.mkScratch()
}

func (s *ParallelSlicer) putScratch(sc *queryScratch) {
	s.scratchMu.Lock()
	s.scratches = append(s.scratches, sc)
	s.scratchMu.Unlock()
}

// NewParallel builds the parallel engine: forward-pass metadata and the
// per-window dependence shards, computed on a bounded worker pool.
func NewParallel(prog *isa.Program, tr *tracer.Trace, opts Options, popts ParallelOptions) (*ParallelSlicer, error) {
	if opts.MaxSave == 0 {
		opts.MaxSave = 10
	}
	workers := popts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(tr.Global) == 0 && tr.Len() > 0 {
		if err := tr.BuildGlobal(); err != nil {
			return nil, err
		}
	}
	var an *cfg.Analyzer
	if opts.UseJumpTables {
		an = cfg.NewAnalyzerWithTables(prog)
	} else {
		an = cfg.NewAnalyzer(prog)
	}
	var cand *srCandidates
	if opts.PruneSaveRestore {
		cand = findSaveRestoreCandidates(prog, opts.MaxSave)
	}
	if err := buildCancelled(popts.Ctx); err != nil {
		return nil, err
	}
	fwd, err := runForwardParallel(popts.Ctx, tr, an, cand, !opts.DisableRefinement, workers)
	if err != nil {
		return nil, err
	}
	windowSize := popts.WindowSize
	if windowSize <= 0 {
		windowSize = tracer.DefaultLPBlock
	}
	windows := tracer.SplitWindows(len(tr.Global), windowSize)
	idx, err := tracer.BuildDefIndexCtx(popts.Ctx, tr, windows, workers)
	if err != nil {
		return nil, err
	}

	// Bypass rank directory: bitset over global positions plus the
	// per-word rank prefix into the position-ordered info array. Two
	// passes over the forward-pass map — set the bits, then place each
	// info at its rank — avoid sorting.
	bypassAt := make([]uint64, len(tr.Global)/64+1)
	for ref := range fwd.bypass {
		if g, ok := tr.GlobalPosOf(ref); ok {
			bypassAt[g>>6] |= 1 << (g & 63)
		}
	}
	bypassRank := make([]int32, len(bypassAt))
	rank := int32(0)
	for w, word := range bypassAt {
		bypassRank[w] = rank
		rank += int32(bits.OnesCount64(word))
	}
	bypassInfos := make([]bypassInfo, rank)
	for ref, bp := range fwd.bypass {
		if g, ok := tr.GlobalPosOf(ref); ok {
			w, b := g>>6, uint(g&63)
			bypassInfos[int(bypassRank[w])+bits.OnesCount64(bypassAt[w]&(1<<b-1))] = bp
		}
	}

	s := &ParallelSlicer{
		Prog:        prog,
		Trace:       tr,
		Opts:        opts,
		analyzer:    an,
		fwd:         fwd,
		idx:         idx,
		bypassAt:    bypassAt,
		bypassRank:  bypassRank,
		bypassInfos: bypassInfos,
		workers:     workers,
		windowSize:  windowSize,
	}
	space := idx.Space()
	nGlobal := len(tr.Global)
	s.mkScratch = func() *queryScratch {
		return &queryScratch{
			ws: wantedSet{
				space: space,
				bits:  make([]uint64, space.Total()/64+1),
				ref:   make([]tracer.Ref, space.Total()),
				over:  make(map[tracer.Loc]tracer.Ref),
			},
			members: make([]uint64, nGlobal/64+1),
			events:  make([]uint64, nGlobal/64+1),
			batch:   make([]tracer.Loc, 0, 16),
		}
	}
	return s, nil
}

// bypassAtPos returns the bypass roles of the entry at global position g
// via the rank directory; ok is false for non-bypass positions.
func (s *ParallelSlicer) bypassAtPos(g int) (bypassInfo, bool) {
	w, b := g>>6, uint(g&63)
	word := s.bypassAt[w]
	if word&(1<<b) == 0 {
		return bypassInfo{}, false
	}
	i := int(s.bypassRank[w]) + bits.OnesCount64(word&(1<<b-1))
	return s.bypassInfos[i], true
}

// Stats returns the engine's accounting counters.
func (s *ParallelSlicer) Stats() EngineStats {
	return EngineStats{
		Workers:    s.workers,
		Shards:     s.idx.Shards,
		IndexDefs:  s.idx.DefCount(),
		Queries:    s.queries.Load(),
		IndexSteps: s.indexSteps.Load(),
	}
}

// buildCancelled reports a (possibly nil) build context's cancellation
// as an error. Cancellation is polled via Err() only — never a Done()
// select — so tests can drive it with deterministic counting contexts.
func buildCancelled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// runForwardParallel is runForward with both phases fanned out over the
// worker pool. Phase 1 (indirect-target observation) is a set union, so
// the refinement count and the refined CFGs are independent of worker
// interleaving; phase 2 runs each thread's Xin-Zhang stack — threads
// are mutually independent — and merges per-thread results in thread-id
// order. A cancelled ctx stops the pools between per-thread jobs and
// fails the build with ctx's error.
func runForwardParallel(ctx context.Context, tr *tracer.Trace, an *cfg.Analyzer, cand *srCandidates, refine bool, workers int) (*forward, error) {
	tids := make([]int, 0, len(tr.Locals))
	for tid := range tr.Locals {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	runPool := func(job func(tid int)) {
		n := workers
		if n > len(tids) {
			n = len(tids)
		}
		if n <= 1 {
			for _, tid := range tids {
				if buildCancelled(ctx) != nil {
					return
				}
				job(tid)
			}
			return
		}
		next := make(chan int, len(tids))
		for _, tid := range tids {
			next <- tid
		}
		close(next)
		var wg sync.WaitGroup
		for k := 0; k < n; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for tid := range next {
					if buildCancelled(ctx) != nil {
						continue // drain the queue without working
					}
					job(tid)
				}
			}()
		}
		wg.Wait()
	}

	var refs atomic.Int64
	if refine {
		runPool(func(tid int) {
			refs.Add(observeIndirects(an, tr.Locals[tid]))
		})
	}
	if err := buildCancelled(ctx); err != nil {
		return nil, err
	}

	results := make(map[int]threadForward, len(tids))
	errs := make(map[int]error, len(tids))
	var mu sync.Mutex
	runPool(func(tid int) {
		res, err := forwardThread(tr, an, cand, tid, tr.Locals[tid])
		mu.Lock()
		results[tid] = res
		errs[tid] = err
		mu.Unlock()
	})
	if err := buildCancelled(ctx); err != nil {
		return nil, err
	}

	f := &forward{
		parent:         make(map[int][]tracer.Ref, len(tids)),
		bypass:         make(map[tracer.Ref]bypassInfo),
		cfgRefinements: refs.Load(),
	}
	for _, tid := range tids {
		if err := errs[tid]; err != nil {
			return nil, err
		}
		res := results[tid]
		f.parent[tid] = res.parents
		for ref, bp := range res.bypass {
			f.bypass[ref] = bp
		}
		f.pairs += res.pairs
	}
	return f, nil
}

// demandCand is one pending resolution event of a query: either "the
// next definition of loc is at pos" or "the control parent awaited at
// pos" (event). Stale entries are filtered at pop time.
type demandCand struct {
	pos   int32
	loc   tracer.Loc
	event bool
}

// candHeap is a max-heap on pos (the query processes positions in the
// same descending order as the sequential sweep).
type candHeap []demandCand

func (h *candHeap) push(c demandCand) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].pos >= (*h)[i].pos {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *candHeap) pop() demandCand {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && (*h)[l].pos > (*h)[big].pos {
			big = l
		}
		if r < n && (*h)[r].pos > (*h)[big].pos {
			big = r
		}
		if big == i {
			break
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
	return top
}

// query is one in-progress backward slice computation: the pooled
// scratch plus the result accumulators. A query either runs to
// completion in-process (Slice) or is advanced one window range at a
// time with its live state serialised between ranges (SliceShard) —
// both paths drive the same sweep loop, so a sharded query is
// bit-identical to a monolithic one by construction.
type query struct {
	s        *ParallelSlicer
	sc       *queryScratch
	crit     tracer.Ref
	startPos int
	// deps collects the dependence edges appended during the current
	// range. A suspending query folds them into depHash/depCount (result
	// payloads carry counts and a digest, not the edge list); a
	// monolithic query hands them to the Slice result untouched.
	deps     []DepEdge
	depHash  uint64
	depCount int64
	pruned   int64
	steps    int64
	batch    []tracer.Loc
	locBuf   [8]tracer.Loc
}

// newQuery resolves the criterion and prepares a cleared scratch.
func (s *ParallelSlicer) newQuery(crit tracer.Ref) (*query, error) {
	startPos, ok := s.Trace.GlobalPosOf(crit)
	if !ok {
		return nil, fmt.Errorf("slice: criterion %+v outside trace", crit)
	}
	// The scratch holds the query's allocation-heavy state; resetting a
	// pooled one costs a few bitset clears instead of rebuilding maps.
	sc := s.getScratch()
	clear(sc.ws.bits)
	clear(sc.ws.over)
	clear(sc.members)
	clear(sc.events)
	sc.h = sc.h[:0]
	return &query{
		s:        s,
		sc:       sc,
		crit:     crit,
		startPos: startPos,
		// deps is sized from the engine's running maximum so
		// steady-state queries allocate their result exactly once.
		deps:    make([]DepEdge, 0, s.depsHint.Load()),
		depHash: fnvOffset,
		batch:   sc.batch[:0],
	}, nil
}

// release returns the scratch to the engine pool and flushes counters.
func (q *query) release() {
	q.sc.batch = q.batch
	q.s.putScratch(q.sc)
	q.s.indexSteps.Add(q.steps)
	q.steps = 0
}

func (q *query) isMember(g int) bool {
	return q.sc.members[g>>6]&(1<<(g&63)) != 0
}

// demand mirrors the sequential `wanted[l] = ...; wantedBy[l] = ref`
// writes: a fresh demand gets its next-definition candidate from the
// index; re-demanding an already-wanted location only retargets the
// requester (the pending candidate stays correct — every definition
// between it and `at` has already been processed).
func (q *query) demand(l tracer.Loc, ref tracer.Ref, at int) {
	if q.sc.ws.add(l, ref) {
		if p, ok := q.s.idx.NearestDefBefore(l, at); ok {
			q.sc.h.push(demandCand{pos: int32(p), loc: l})
		}
	}
}

// include takes the entry's already-decoded definitions when the
// caller has them (the data-match path), avoiding a second decode.
func (q *query) include(gpos int, ref tracer.Ref, defs []tracer.Loc) {
	if q.isMember(gpos) {
		return
	}
	q.sc.members[gpos>>6] |= 1 << (gpos & 63)
	e := q.s.Trace.Entry(ref)
	if defs == nil {
		defs = tracer.Defs(e, q.locBuf[:0])
	}
	// Kill the locations this entry defines, then demand its uses.
	for _, l := range defs {
		q.sc.ws.del(l)
	}
	for _, l := range tracer.Uses(e, q.locBuf[:0]) {
		q.demand(l, ref, gpos)
	}
	if q.s.Opts.ControlDeps {
		if p, ok := q.s.fwd.parentOf(ref); ok {
			if pg, ok := q.s.Trace.GlobalPosOf(p); ok && pg <= q.startPos {
				if !q.isMember(pg) {
					// sc.events flags the global positions with a pending
					// control parent. The sequential sweep keys its map by
					// position too, and the demanding member is never read
					// back (the control edge is emitted at demand time), so
					// presence bits carry the whole state.
					if q.sc.events[pg>>6]&(1<<(pg&63)) == 0 {
						q.sc.events[pg>>6] |= 1 << (pg & 63)
						q.sc.h.push(demandCand{pos: int32(pg), event: true})
					}
				}
				q.deps = append(q.deps, DepEdge{From: ref, To: p, Kind: DepControl})
			}
		}
	}
}

// runTo advances the sweep, handling candidate positions in descending
// order, until the heap is exhausted or every remaining candidate lies
// below lo. runTo(0) is the complete sweep; a positive lo suspends the
// query at a window boundary with its state capturable by captureState.
func (q *query) runTo(lo int) {
	tr := q.s.Trace
	wanted := &q.sc.ws
	wantedEvents := q.sc.events
	h := &q.sc.h
	batch := q.batch
	for len(*h) > 0 && int((*h)[0].pos) >= lo {
		// Drain every candidate at the current position: the position is
		// handled once, exactly like one iteration of the backward sweep.
		// Candidates whose location was killed since they were pushed are
		// stale; dropping them here (one presence-bit probe) skips the
		// entry decode for positions where nothing is live.
		g := int((*h)[0].pos)
		batch = batch[:0]
		event := false
		for len(*h) > 0 && int((*h)[0].pos) == g {
			c := h.pop()
			if c.event {
				event = true
			} else if wanted.has(c.loc) {
				batch = append(batch, c.loc)
			}
		}
		q.steps++

		// Pending control parent: include and skip data matching, as the
		// sequential sweep does. Demands this entry satisfies are killed
		// by include; the drained candidates die with them.
		if event {
			if wantedEvents[g>>6]&(1<<(g&63)) != 0 {
				wantedEvents[g>>6] &^= 1 << (g & 63)
				q.include(g, tr.Global[g], nil)
				continue
			}
		}
		if len(batch) == 0 {
			continue // all drained demands went stale since they were pushed
		}
		ref := tr.Global[g]

		// Save/restore bypass: same redirection as the sequential sweep.
		// A verified save/restore entry defines exactly one tracked
		// location (the PUSH's slot or the POP's register; SP is excluded
		// from dependence tracking), recorded in its bypass info — so the
		// match is decided against the batch without decoding the entry,
		// which matters: bypass hops dominate the event count on
		// call-heavy traces. The entry is not included, so any other
		// demand whose candidate was this position must look further back.
		if q.s.Opts.PruneSaveRestore {
			if bp, isBp := q.s.bypassAtPos(g); isBp {
				from, to := bp.slot, bp.reg
				if bp.role == bypassRestore {
					from, to = bp.reg, bp.slot
				}
				live := false
				for _, l := range batch {
					if l == from {
						live = true
						break
					}
				}
				if !live {
					continue // the pending demand on `from` went stale
				}
				requester, _ := wanted.get(from)
				wanted.del(from)
				q.demand(to, requester, g)
				q.pruned++
				for _, l := range batch {
					if wanted.has(l) {
						if p, ok := q.s.idx.NearestDefBefore(l, g); ok {
							h.push(demandCand{pos: int32(p), loc: l})
						}
					}
				}
				continue
			}
		}

		// Data match: the first location in the entry's definition order
		// with a pending demand, exactly the sequential sweep's selection.
		// Every wanted location this entry defines has its candidate in
		// the drained batch (candidates pop in position order), so the
		// batch doubles as the set of live demands to match against.
		e := tr.Entry(ref)
		defs := tracer.Defs(e, q.locBuf[:0])
		matched := tracer.Loc(0)
		found := false
		for _, l := range defs {
			for _, b := range batch {
				if b == l {
					matched = l
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			continue // all drained demands went stale since they were pushed
		}
		if from, ok := wanted.get(matched); ok {
			q.deps = append(q.deps, DepEdge{From: from, To: ref, Kind: DepData, Loc: matched})
		}
		q.include(g, ref, defs)
	}
	q.batch = batch
}

// finish materialises the completed query's Slice result.
func (q *query) finish() *Slice {
	out := &Slice{Criterion: q.crit, Deps: q.deps}
	if n := int64(len(q.deps)); n > q.s.depsHint.Load() {
		q.s.depsHint.Store(n)
	}
	// Materialise members in global order straight off the bitset. The
	// membership map is left to Contains to build on demand.
	members := q.sc.members
	n := 0
	for _, word := range members {
		n += bits.OnesCount64(word)
	}
	out.Members = make([]tracer.Ref, 0, n)
	for w, word := range members {
		for word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			out.Members = append(out.Members, q.s.Trace.Global[g])
			word &= word - 1
		}
	}
	out.Stats.TraceLen = len(q.s.Trace.Global)
	out.Stats.Members = len(out.Members)
	out.Stats.VerifiedPairs = q.s.fwd.pairs
	out.Stats.CFGRefinements = q.s.fwd.cfgRefinements
	out.Stats.PrunedBypasses = q.pruned
	return out
}

// Slice computes the backward dynamic slice of the criterion. See the
// type comment: this is an event-driven simulation of Slicer.Slice over
// the stitched definition index, producing an identical Slice.
func (s *ParallelSlicer) Slice(crit tracer.Ref) (*Slice, error) {
	q, err := s.newQuery(crit)
	if err != nil {
		return nil, err
	}
	defer q.release()
	s.queries.Add(1)
	q.include(q.startPos, crit, nil)
	q.runTo(0)
	return q.finish(), nil
}
