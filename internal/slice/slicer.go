package slice

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/tracer"
)

// Options controls slicer precision features.
type Options struct {
	// MaxSave is the save/restore detector's scan depth (paper default
	// 10). Detection runs whenever PruneSaveRestore is on.
	MaxSave int
	// PruneSaveRestore bypasses spurious dependences through verified
	// save/restore pairs (§5.2).
	PruneSaveRestore bool
	// ControlDeps includes dynamic control dependences (on by default
	// via DefaultOptions).
	ControlDeps bool
	// UseJumpTables seeds the CFG with the compiler's ground-truth jump
	// tables instead of (and in addition to) dynamic refinement; tests
	// use it to compare refined slices against the ideal.
	UseJumpTables bool
	// DisableRefinement turns off §5.1 dynamic CFG refinement, leaving
	// the approximate static CFG in place — the imprecise baseline the
	// paper's Figure 7 contrasts against.
	DisableRefinement bool
	// LPBlock is the Limited Preprocessing block size (0 = default).
	LPBlock int
}

// DefaultOptions returns the configuration DrDebug runs with: control
// dependences on, save/restore pruning on with MaxSave=10.
func DefaultOptions() Options {
	return Options{MaxSave: 10, PruneSaveRestore: true, ControlDeps: true}
}

// DepKind classifies a dependence edge.
type DepKind uint8

// Dependence kinds.
const (
	DepData DepKind = iota
	DepControl
)

func (k DepKind) String() string {
	if k == DepControl {
		return "control"
	}
	return "data"
}

// DepEdge records that From (later in the global trace) dynamically
// depends on To. For data dependences, Loc is the register or memory
// location the value flowed through.
type DepEdge struct {
	From tracer.Ref
	To   tracer.Ref
	Kind DepKind
	Loc  tracer.Loc
	// Provenance and Confidence are filled by AnnotateProvenance when the
	// trace came from a flight-recorder replay: the worst provenance of
	// the edge's two endpoints and its confidence weight. Zero values
	// (ProvExact / 0) mean the slice was never annotated.
	Provenance tracer.Provenance
	Confidence float64
}

// Stats reports slicing cost and precision metrics.
type Stats struct {
	TraceLen       int   // entries in the global trace
	Members        int   // entries in the slice
	PrunedBypasses int64 // save/restore chains bypassed
	VerifiedPairs  int64 // dynamically verified save/restore pairs
	CFGRefinements int64 // indirect-jump targets added to the CFG
	LPBlocksVisit  int64
	LPBlocksSkip   int64
}

// Slice is a computed backward dynamic slice.
type Slice struct {
	Criterion tracer.Ref
	// Members lists the slice's entries in global-trace order (the
	// criterion is the last member).
	Members []tracer.Ref
	// Deps holds one exemplar dependence edge per included dependence,
	// for backward navigation in the UI.
	Deps  []DepEdge
	Stats Stats
	// Prov is the provenance breakdown, present once AnnotateProvenance
	// has run (nil for slices over ordinary full traces).
	Prov *ProvSummary

	memberSet     map[tracer.Ref]struct{}
	memberSetOnce sync.Once
}

// Contains reports whether ref is in the slice. The membership map is
// built on first use when the producer did not fill it (the parallel
// engine leaves it to the consumer, keeping the query loop map-free).
func (s *Slice) Contains(r tracer.Ref) bool {
	s.memberSetOnce.Do(func() {
		if s.memberSet == nil {
			s.memberSet = make(map[tracer.Ref]struct{}, len(s.Members))
			for _, m := range s.Members {
				s.memberSet[m] = struct{}{}
			}
		}
	})
	_, ok := s.memberSet[r]
	return ok
}

// Slicer computes backward dynamic slices over one collected trace. The
// forward analysis (CFG refinement, control-dependence parents,
// save/restore verification) runs once in New; each Slice call is then a
// backward traversal, so computing many slices over one region amortises
// the preprocessing — which is how DrDebug keeps interactive slicing
// practical.
type Slicer struct {
	Prog  *isa.Program
	Trace *tracer.Trace
	Opts  Options

	analyzer *cfg.Analyzer
	lp       *tracer.LPIndex
	fwd      *forward
}

// New prepares a slicer: builds the global trace (if not yet built), the
// LP block index and the forward-pass metadata.
func New(prog *isa.Program, tr *tracer.Trace, opts Options) (*Slicer, error) {
	if opts.MaxSave == 0 {
		opts.MaxSave = 10
	}
	if len(tr.Global) == 0 && tr.Len() > 0 {
		if err := tr.BuildGlobal(); err != nil {
			return nil, err
		}
	}
	var an *cfg.Analyzer
	if opts.UseJumpTables {
		an = cfg.NewAnalyzerWithTables(prog)
	} else {
		an = cfg.NewAnalyzer(prog)
	}
	var cand *srCandidates
	if opts.PruneSaveRestore {
		cand = findSaveRestoreCandidates(prog, opts.MaxSave)
	}
	fwd, err := runForward(prog, tr, an, cand, !opts.DisableRefinement)
	if err != nil {
		return nil, err
	}
	return &Slicer{
		Prog:     prog,
		Trace:    tr,
		Opts:     opts,
		analyzer: an,
		lp:       tracer.BuildLPIndex(tr, opts.LPBlock),
		fwd:      fwd,
	}, nil
}

// Slice computes the backward dynamic slice of the value computed at the
// criterion entry: the transitive closure over dynamic data and control
// dependences, recovered by traversing the global trace backwards with LP
// block skipping.
func (s *Slicer) Slice(crit tracer.Ref) (*Slice, error) {
	tr := s.Trace
	startPos, ok := tr.GlobalPosOf(crit)
	if !ok {
		return nil, fmt.Errorf("slice: criterion %+v outside trace", crit)
	}

	out := &Slice{
		Criterion: crit,
		memberSet: make(map[tracer.Ref]struct{}),
	}
	wanted := make(map[tracer.Loc]struct{})
	wantedBy := make(map[tracer.Loc]tracer.Ref)
	wantedEvents := make(map[int]tracer.Ref) // global pos -> who wants it
	var locBuf [8]tracer.Loc

	include := func(gpos int, ref tracer.Ref) {
		if _, dup := out.memberSet[ref]; dup {
			return
		}
		out.memberSet[ref] = struct{}{}
		e := tr.Entry(ref)
		// Kill the locations this entry defines, then demand its uses.
		for _, l := range tracer.Defs(e, locBuf[:0]) {
			delete(wanted, l)
			delete(wantedBy, l)
		}
		for _, l := range tracer.Uses(e, locBuf[:0]) {
			wanted[l] = struct{}{}
			wantedBy[l] = ref
		}
		if s.Opts.ControlDeps {
			if p, ok := s.fwd.parentOf(ref); ok {
				if pg, ok := tr.GlobalPosOf(p); ok && pg <= startPos {
					if _, seen := out.memberSet[p]; !seen {
						wantedEvents[pg] = ref
					}
					out.Deps = append(out.Deps, DepEdge{From: ref, To: p, Kind: DepControl})
				}
			}
		}
	}

	include(startPos, crit)

	anyWantedEventIn := func(lo, hi int) bool {
		// wantedEvents is small (pending control parents); scan it.
		for g := range wantedEvents {
			if g >= lo && g <= hi {
				return true
			}
		}
		return false
	}

	g := startPos - 1
	for g >= 0 && (len(wanted) > 0 || len(wantedEvents) > 0) {
		// Limited Preprocessing: skip whole blocks that define none of
		// the wanted locations and hold no pending control parents.
		b := s.lp.BlockOf(g)
		blockStart := s.lp.BlockStart(b)
		if !s.lp.MayDefine(b, wanted) && !anyWantedEventIn(blockStart, g) {
			s.lp.Skipped++
			g = blockStart - 1
			continue
		}
		s.lp.Visited++

		for ; g >= blockStart && (len(wanted) > 0 || len(wantedEvents) > 0); g-- {
			ref := tr.Global[g]
			if from, isWanted := wantedEvents[g]; isWanted {
				delete(wantedEvents, g)
				_ = from
				include(g, ref)
				continue
			}
			e := tr.Entry(ref)
			matched := tracer.Loc(0)
			found := false
			for _, l := range tracer.Defs(e, locBuf[:0]) {
				if _, want := wanted[l]; want {
					matched = l
					found = true
					break
				}
			}
			if !found {
				continue
			}
			// Save/restore bypass (§5.2): a verified restore defining a
			// wanted register redirects the demand to its stack slot
			// without entering the slice; the matching save converts the
			// slot demand back into the register, re-establishing the
			// pre-call definition as the direct source.
			if s.Opts.PruneSaveRestore {
				if bp, isBp := s.fwd.bypass[ref]; isBp {
					switch {
					case bp.role == bypassRestore && matched == bp.reg:
						requester := wantedBy[bp.reg]
						delete(wanted, bp.reg)
						delete(wantedBy, bp.reg)
						wanted[bp.slot] = struct{}{}
						wantedBy[bp.slot] = requester
						out.Stats.PrunedBypasses++
						continue
					case bp.role == bypassSave && matched == bp.slot:
						requester := wantedBy[bp.slot]
						delete(wanted, bp.slot)
						delete(wantedBy, bp.slot)
						wanted[bp.reg] = struct{}{}
						wantedBy[bp.reg] = requester
						out.Stats.PrunedBypasses++
						continue
					}
				}
			}
			if from, ok := wantedBy[matched]; ok {
				out.Deps = append(out.Deps, DepEdge{From: from, To: ref, Kind: DepData, Loc: matched})
			}
			include(g, ref)
		}
	}

	// Materialise members in global order.
	out.Members = make([]tracer.Ref, 0, len(out.memberSet))
	for ref := range out.memberSet {
		out.Members = append(out.Members, ref)
	}
	sort.Slice(out.Members, func(i, j int) bool {
		gi, _ := tr.GlobalPosOf(out.Members[i])
		gj, _ := tr.GlobalPosOf(out.Members[j])
		return gi < gj
	})
	out.Stats.TraceLen = len(tr.Global)
	out.Stats.Members = len(out.Members)
	out.Stats.VerifiedPairs = s.fwd.pairs
	out.Stats.CFGRefinements = s.fwd.cfgRefinements
	out.Stats.LPBlocksVisit = s.lp.Visited
	out.Stats.LPBlocksSkip = s.lp.Skipped
	return out, nil
}

// LastEventOf returns the ref of the last traced entry of a thread —
// typically the failing assert, i.e. the natural slicing criterion at a
// failure point.
func LastEventOf(tr *tracer.Trace, tid int) (tracer.Ref, error) {
	l := tr.Locals[tid]
	if len(l) == 0 {
		return tracer.Ref{}, fmt.Errorf("slice: thread %d has no trace", tid)
	}
	return tracer.Ref{Tid: int32(tid), Pos: int32(len(l) - 1)}, nil
}

// LastReadOf returns the last entry (in global order) that reads the
// given memory address — "slice for variable v" with v resolved to its
// address.
func LastReadOf(tr *tracer.Trace, addr int64) (tracer.Ref, error) {
	for g := len(tr.Global) - 1; g >= 0; g-- {
		ref := tr.Global[g]
		e := tr.Entry(ref)
		if e.EffAddr == addr && (!e.MemIsWrite || e.MemAlsoRead) {
			return ref, nil
		}
	}
	return tracer.Ref{}, fmt.Errorf("slice: no read of address %d in trace", addr)
}

// LastReadsInRegion returns up to n refs of the latest read instructions
// in the global trace, spread across threads in backward order — the
// criterion set the paper's slicing-overhead evaluation uses ("slices for
// the last 10 read instructions spread across five threads").
func LastReadsInRegion(tr *tracer.Trace, n int) []tracer.Ref {
	var out []tracer.Ref
	perThread := map[int32]int{}
	for g := len(tr.Global) - 1; g >= 0 && len(out) < n; g-- {
		ref := tr.Global[g]
		e := tr.Entry(ref)
		if e.EffAddr >= 0 && !e.MemIsWrite {
			// Spread across threads: at most ceil(n/threads)+1 each.
			if perThread[ref.Tid] <= n/max(1, len(tr.Locals)) {
				out = append(out, ref)
				perThread[ref.Tid]++
			}
		}
	}
	return out
}

// EventAtLine returns the nth (1-based) entry of thread tid whose source
// line matches; the debugger uses it to resolve "slice at file:line".
func EventAtLine(tr *tracer.Trace, prog *isa.Program, tid int, line int32, nth int) (tracer.Ref, error) {
	count := 0
	l := tr.Locals[tid]
	for pos := range l {
		if l[pos].Instr.Line == line {
			count++
			if count == nth {
				return tracer.Ref{Tid: int32(tid), Pos: int32(pos)}, nil
			}
		}
	}
	return tracer.Ref{}, fmt.Errorf("slice: thread %d has %d events at line %d, want instance %d", tid, count, line, nth)
}
