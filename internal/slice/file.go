package slice

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/tracer"
)

// FileEntry is a slice member in session-independent form: thread id and
// per-thread dynamic instruction index (stable across replays of the same
// pinball thanks to PinPlay's repeatability guarantee).
type FileEntry struct {
	Tid int
	Idx int64
	PC  int64
	Src string
}

// FileDep is a dependence edge in session-independent form.
type FileDep struct {
	FromTid int
	FromIdx int64
	ToTid   int
	ToIdx   int64
	Kind    DepKind
	// Provenance/Confidence carry the flight-recorder annotation (zero
	// for slices over ordinary full traces and for old slice files).
	Provenance tracer.Provenance
	Confidence float64
}

// File is the persisted form of a slice: the paper's "normal slice file"
// (members and dependences for browsing/navigation) together with the
// "special slice file" content (the code exclusion regions the relogger
// consumes). One file therefore serves both slice navigation in a later
// debug session and slice-pinball generation.
type File struct {
	Program      string
	CriterionTid int
	CriterionIdx int64
	Members      []FileEntry
	Deps         []FileDep
	Exclusions   []pinball.Exclusion
	Stats        Stats
	// Prov is the provenance breakdown of an annotated slice (nil
	// otherwise, including for files written before flight-recorder mode).
	Prov *ProvSummary
}

// ToFile converts a computed slice (plus its exclusion regions) into
// persistable form.
func ToFile(prog *isa.Program, tr *tracer.Trace, sl *Slice, exclusions []pinball.Exclusion) *File {
	f := &File{
		Program:      prog.Name,
		CriterionTid: int(sl.Criterion.Tid),
		CriterionIdx: tr.Entry(sl.Criterion).Idx,
		Exclusions:   exclusions,
		Stats:        sl.Stats,
		Prov:         sl.Prov,
	}
	for _, m := range sl.Members {
		e := tr.Entry(m)
		f.Members = append(f.Members, FileEntry{
			Tid: int(m.Tid), Idx: e.Idx, PC: e.PC, Src: prog.SourceOf(e.PC),
		})
	}
	for _, d := range sl.Deps {
		fe, te := tr.Entry(d.From), tr.Entry(d.To)
		f.Deps = append(f.Deps, FileDep{
			FromTid: int(d.From.Tid), FromIdx: fe.Idx,
			ToTid: int(d.To.Tid), ToIdx: te.Idx,
			Kind: d.Kind, Provenance: d.Provenance, Confidence: d.Confidence,
		})
	}
	return f
}

// Resolve maps the persisted members back onto a trace collected from a
// fresh replay of the same pinball, reconstructing a Slice usable for
// navigation. It fails if any member falls outside the trace (i.e. the
// file does not belong to this pinball).
func (f *File) Resolve(tr *tracer.Trace) (*Slice, error) {
	sl := &Slice{memberSet: make(map[tracer.Ref]struct{}, len(f.Members))}
	crit, ok := tr.RefOf(f.CriterionTid, f.CriterionIdx)
	if !ok {
		return nil, fmt.Errorf("slice: criterion tid %d idx %d outside trace", f.CriterionTid, f.CriterionIdx)
	}
	sl.Criterion = crit
	for _, m := range f.Members {
		ref, ok := tr.RefOf(m.Tid, m.Idx)
		if !ok {
			return nil, fmt.Errorf("slice: member tid %d idx %d outside trace", m.Tid, m.Idx)
		}
		sl.memberSet[ref] = struct{}{}
		sl.Members = append(sl.Members, ref)
	}
	for _, d := range f.Deps {
		from, ok1 := tr.RefOf(d.FromTid, d.FromIdx)
		to, ok2 := tr.RefOf(d.ToTid, d.ToIdx)
		if ok1 && ok2 {
			sl.Deps = append(sl.Deps, DepEdge{
				From: from, To: to, Kind: d.Kind,
				Provenance: d.Provenance, Confidence: d.Confidence,
			})
		}
	}
	sl.Stats = f.Stats
	sl.Prov = f.Prov
	return sl, nil
}

// Slice-file framing, mirroring the pinball format's magic+version.
const (
	sliceFileMagic     = "DRSL"
	sliceFormatVersion = byte(1)
)

// Save writes the slice file, gob-encoded and compressed.
func (f *File) Save(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("slice: %w", err)
	}
	defer w.Close()
	if _, err := w.Write(append([]byte(sliceFileMagic), sliceFormatVersion)); err != nil {
		return fmt.Errorf("slice: %w", err)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(f); err != nil {
		return fmt.Errorf("slice: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return w.Close()
}

// LoadFile reads a slice file.
func LoadFile(path string) (*File, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("slice: %w", err)
	}
	defer r.Close()
	header := make([]byte, len(sliceFileMagic)+1)
	if _, err := io.ReadFull(r, header); err != nil || string(header[:len(sliceFileMagic)]) != sliceFileMagic {
		return nil, fmt.Errorf("slice: %s is not a slice file", path)
	}
	if v := header[len(sliceFileMagic)]; v != sliceFormatVersion {
		return nil, fmt.Errorf("slice: %s has format version %d; this build reads %d", path, v, sliceFormatVersion)
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("slice: %w", err)
	}
	defer zr.Close()
	var f File
	if err := gob.NewDecoder(zr).Decode(&f); err != nil {
		return nil, fmt.Errorf("slice: decode: %w", err)
	}
	return &f, nil
}

// WriteText renders the slice human-readably: members grouped by source
// position with dynamic counts, then the dependence edges, then the
// exclusion regions in the paper's notation.
func (f *File) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "# dynamic slice for %s, criterion tid=%d idx=%d\n",
		f.Program, f.CriterionTid, f.CriterionIdx)
	fmt.Fprintf(w, "# %d dynamic instructions in slice\n", len(f.Members))
	if f.Prov != nil {
		fmt.Fprintf(w, "# provenance: %s\n", f.Prov)
		if !f.Prov.Exact() {
			fmt.Fprintf(w, "# WARNING: slice crosses flight-recorder gaps; non-exact edges are tagged below\n")
		}
	}

	type srcLine struct {
		src   string
		count int
		tids  map[int]bool
	}
	bySrc := map[string]*srcLine{}
	var order []string
	for _, m := range f.Members {
		sl, ok := bySrc[m.Src]
		if !ok {
			sl = &srcLine{src: m.Src, tids: map[int]bool{}}
			bySrc[m.Src] = sl
			order = append(order, m.Src)
		}
		sl.count++
		sl.tids[m.Tid] = true
	}
	sort.Strings(order)
	fmt.Fprintf(w, "\n[statements]\n")
	for _, src := range order {
		sl := bySrc[src]
		tids := make([]int, 0, len(sl.tids))
		for t := range sl.tids {
			tids = append(tids, t)
		}
		sort.Ints(tids)
		var ts []string
		for _, t := range tids {
			ts = append(ts, fmt.Sprintf("T%d", t))
		}
		fmt.Fprintf(w, "%-32s x%-6d threads=%s\n", src, sl.count, strings.Join(ts, ","))
	}

	fmt.Fprintf(w, "\n[dependences] (%d edges)\n", len(f.Deps))
	for _, d := range f.Deps {
		fmt.Fprintf(w, "%s: T%d@%d -> T%d@%d", d.Kind, d.FromTid, d.FromIdx, d.ToTid, d.ToIdx)
		if f.Prov != nil && d.Provenance != tracer.ProvExact {
			fmt.Fprintf(w, "  [%s, confidence %.2f]", d.Provenance, d.Confidence)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\n[exclusion regions] (%d)\n", len(f.Exclusions))
	for _, e := range f.Exclusions {
		fmt.Fprintf(w, "%s  idx=[%d,%d)\n", e, e.FromIdx, e.ToIdx)
	}
	return nil
}
