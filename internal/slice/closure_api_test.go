package slice

import (
	"testing"

	"repro/internal/tracer"
)

// TestCheckClosureAPI: the exported checker accepts every slice the
// engines produce over generated programs and rejects a tampered one.
func TestCheckClosureAPI(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		prog, tr, _ := propTrace(t, seed)
		opts := DefaultOptions()
		eng, err := New(prog, tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		crit, err := LastEventOf(tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		sl, err := eng.Slice(crit)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.CheckClosure(sl); err != nil {
			t.Fatalf("seed %d: closure check rejected a correct slice: %v", seed, err)
		}

		// Dropping a non-criterion member must break either closure or
		// well-formedness (it can only be legal if the member fed nothing,
		// which a backward slice never contains).
		if len(sl.Members) > 1 {
			broken := &Slice{
				Criterion: sl.Criterion,
				Members:   append(append([]tracer.Ref{}, sl.Members[:len(sl.Members)/2]...), sl.Members[len(sl.Members)/2+1:]...),
				Deps:      sl.Deps,
			}
			if err := eng.CheckClosure(broken); err == nil {
				t.Fatalf("seed %d: closure check accepted a slice with a member removed", seed)
			}
		}
	}
	var s Slicer
	if err := s.CheckClosure(nil); err == nil {
		t.Fatal("nil slice accepted")
	}
}
