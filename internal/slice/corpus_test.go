package slice_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/cc"
	"repro/internal/pinplay"
	"repro/internal/progfuzz"
	"repro/internal/slice"
	"repro/internal/tracer"
)

// TestCorpusDifferential replays the committed progfuzz corpus
// (internal/progfuzz/corpus/seed-<n>.c) through the full differential
// pipeline: compile the frozen source, record, trace, slice at every
// canonical criterion with both engines, and require bit-identical
// results plus the closure property. Unlike the generator-driven sweep,
// this coverage is pinned to files under version control — a slicer
// regression against these exact shapes reproduces from the committed
// source alone.
func TestCorpusDifferential(t *testing.T) {
	for _, seed := range progfuzz.CorpusSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			path := fmt.Sprintf("../progfuzz/corpus/seed-%d.c", seed)
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("corpus file: %v", err)
			}
			prog, err := cc.CompileSource(fmt.Sprintf("seed-%d.c", seed), string(src))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 5}, pinplay.RegionSpec{})
			if err != nil {
				t.Fatalf("log: %v", err)
			}
			m := pinplay.NewReplayMachine(prog, pb, nil)
			col := tracer.NewCollector(m)
			m.SetTracer(col)
			total := pb.TotalQuantumInstrs()
			for i := int64(0); i < total && m.StepOne(); i++ {
			}
			tr := col.Trace()
			if err := tr.BuildGlobal(); err != nil {
				t.Fatalf("global trace: %v", err)
			}

			opts := optionsForSeed(seed)
			seqEng, err := slice.New(prog, tr, opts)
			if err != nil {
				t.Fatalf("sequential slicer: %v", err)
			}
			parEng, err := slice.NewParallel(prog, tr, opts, slice.ParallelOptions{
				Workers:    1 + int(seed%8),
				WindowSize: pinplay.WindowSize(pb),
			})
			if err != nil {
				t.Fatalf("parallel engine: %v", err)
			}
			for ci, crit := range criteriaOf(t, tr) {
				label := fmt.Sprintf("corpus seed %d crit %d", seed, ci)
				seqSl, err := seqEng.Slice(crit)
				if err != nil {
					t.Fatalf("%s: sequential: %v", label, err)
				}
				parSl, err := parEng.Slice(crit)
				if err != nil {
					t.Fatalf("%s: parallel: %v", label, err)
				}
				mustEqualSlices(t, label, seqSl, parSl)
				if err := seqEng.CheckClosure(seqSl); err != nil {
					t.Errorf("%s: %v", label, err)
				}
			}
		})
	}
}
