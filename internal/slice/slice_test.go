package slice_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/tracer"
	"repro/internal/vm"
)

// logAndTrace logs the whole execution (finding a failing seed if
// mustFail), replays it with a trace collector, and returns everything a
// slicing test needs.
func logAndTrace(t *testing.T, src string, input []int64, mustFail bool) (*isa.Program, *pinball.Pinball, *tracer.Trace) {
	t.Helper()
	prog, err := cc.CompileSource("t.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pb, tr := logAndTraceProg(t, prog, input, mustFail)
	return prog, pb, tr
}

// logAndTraceProg is logAndTrace for an already-built program.
func logAndTraceProg(t *testing.T, prog *isa.Program, input []int64, mustFail bool) (*pinball.Pinball, *tracer.Trace) {
	t.Helper()
	var pb *pinball.Pinball
	for seed := int64(1); seed < 200; seed++ {
		got, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 5, Input: input}, pinplay.RegionSpec{})
		if err != nil {
			t.Fatalf("log: %v", err)
		}
		if !mustFail || got.Failure != nil {
			pb = got
			break
		}
	}
	if pb == nil {
		t.Fatal("no seed produced the required failure")
	}
	m := pinplay.NewReplayMachine(prog, pb, nil)
	col := tracer.NewCollector(m)
	m.SetTracer(col)
	total := pb.TotalQuantumInstrs()
	for i := int64(0); i < total && m.StepOne(); i++ {
	}
	tr := col.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if err := tr.BuildGlobal(); err != nil {
		t.Fatalf("global trace: %v", err)
	}
	return pb, tr
}

// lines returns the set of source lines covered by slice members.
func lines(prog *isa.Program, tr *tracer.Trace, sl *slice.Slice) map[int32]bool {
	out := map[int32]bool{}
	for _, m := range sl.Members {
		out[tr.Entry(m).Instr.Line] = true
	}
	return out
}

func TestGlobalTraceIsTopological(t *testing.T) {
	_, _, tr := logAndTrace(t, `
int counter;
int mtx;
int worker(int n) {
	int i;
	for (i = 0; i < 30; i++) {
		lock(&mtx);
		counter = counter + 1;
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t1 = spawn(worker, 0);
	worker(0);
	join(t1);
	write(counter);
	return 0;
}`, nil, false)

	// Program order must be preserved.
	pos := map[int32]int{}
	for g, ref := range tr.Global {
		if last, ok := pos[ref.Tid]; ok && int(ref.Pos) != last+1 {
			t.Fatalf("thread %d positions out of order at global %d", ref.Tid, g)
		}
		pos[ref.Tid] = int(ref.Pos)
	}
	// Every order edge must point forward in the global trace.
	for _, e := range tr.Edges {
		fr, ok1 := tr.RefOf(e.FromTid, e.FromIdx)
		to, ok2 := tr.RefOf(e.ToTid, e.ToIdx)
		if !ok1 || !ok2 {
			continue
		}
		gf, _ := tr.GlobalPosOf(fr)
		gt, _ := tr.GlobalPosOf(to)
		if gf >= gt {
			t.Fatalf("order edge %+v not honoured: %d >= %d", e, gf, gt)
		}
	}
	// Spawn precedes the child's first instruction.
	for child, sp := range tr.SpawnEvent {
		first, ok := tr.RefOf(child, tr.FirstIdx[child])
		if !ok {
			continue
		}
		gs, _ := tr.GlobalPosOf(sp)
		gf, _ := tr.GlobalPosOf(first)
		if gs >= gf {
			t.Errorf("spawn of %d at global %d not before child's first %d", child, gs, gf)
		}
	}
}

func TestSliceSingleThreadDataChain(t *testing.T) {
	prog, _, tr := logAndTrace(t, `
int a;
int b;
int c;
int unrelated;
int main() {
	int i;
	a = 3;
	unrelated = 42;
	b = a * 2;
	for (i = 0; i < 10; i++) { unrelated = unrelated + i; }
	c = b + 1;
	assert(c == 6);
	return 0;
}`, nil, true)

	sl := mustSlice(t, prog, tr, slice.DefaultOptions())
	got := lines(prog, tr, sl)
	// The chain a=3 (8) -> b=a*2 (10) -> c=b+1 (12) -> assert (13) must
	// be in; the unrelated lines (9, 11) out.
	for _, want := range []int32{8, 10, 12, 13} {
		if !got[want] {
			t.Errorf("slice missing line %d (got %v)", want, got)
		}
	}
	if got[9] {
		t.Errorf("slice wrongly includes 'unrelated = 42' (line 9)")
	}
	if got[11] {
		t.Errorf("slice wrongly includes the unrelated loop (line 11)")
	}
	if sl.Stats.Members <= 0 || sl.Stats.Members > sl.Stats.TraceLen {
		t.Errorf("bad stats: %+v", sl.Stats)
	}
}

func mustSlice(t *testing.T, prog *isa.Program, tr *tracer.Trace, opts slice.Options) *slice.Slice {
	t.Helper()
	s, err := slice.New(prog, tr, opts)
	if err != nil {
		t.Fatalf("slicer: %v", err)
	}
	// Criterion: the failing thread's last event (the assert).
	var critTid = -1
	var critIdx int64 = -1
	for tid, l := range tr.Locals {
		if len(l) == 0 {
			continue
		}
		last := l[len(l)-1]
		if last.Instr.Op == isa.ASSERT {
			critTid = tid
			critIdx = last.Idx
		}
	}
	if critTid < 0 {
		t.Fatal("no assert event in trace")
	}
	crit, _ := tr.RefOf(critTid, critIdx)
	sl, err := s.Slice(crit)
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	return sl
}

// TestPaperFigure5 reproduces the paper's worked example: an atomicity
// violation where one thread's write to a shared variable lands inside
// another thread's assumed-atomic region. The slice of the failing assert
// must capture the racing write — "the dynamic slice captures exactly the
// root cause of the concurrency bug".
func TestPaperFigure5(t *testing.T) {
	src := `
int x;
int y;
int z;
int t2func(int unused) {
	int j = y;
	int k = x + 1;
	yield();
	k = k + x;
	assert(k == 3);
	return k;
}
int main() {
	x = 1;
	z = 1;
	int t = spawn(t2func, 0);
	y = 7;
	yield();
	x = 0 - 1;
	join(t);
	return 0;
}`
	prog, _, tr := logAndTrace(t, src, nil, true)
	sl := mustSlice(t, prog, tr, slice.DefaultOptions())
	got := lines(prog, tr, sl)

	// Root cause: the racing write "x = 0 - 1" (line 19) in main.
	if !got[19] {
		t.Errorf("slice missed the racing write at line 19; lines: %v", got)
	}
	// The atomic region's reads (lines 6/8/9) feed the assert.
	for _, want := range []int32{7, 9, 10} {
		if !got[want] {
			t.Errorf("slice missing line %d; lines: %v", want, got)
		}
	}
	// "j = y" (line 6) is unrelated to k and must not be included.
	if got[6] {
		t.Errorf("slice wrongly includes unrelated 'j = y'")
	}

	// There must be at least one inter-thread data dependence edge.
	cross := false
	for _, d := range sl.Deps {
		if d.From.Tid != d.To.Tid && d.Kind == slice.DepData {
			cross = true
		}
	}
	if !cross {
		t.Error("no inter-thread data dependence in slice")
	}
}

// TestPaperFigure7 reproduces the indirect-jump control-dependence
// experiment with the paper's exact shape (a jump-table dispatch with no
// guarding conditional): with the approximate static CFG the dynamic
// control dependence of the case body on the indirect jump is missed, so
// the slice lacks the dispatch and the switch variable; dynamic CFG
// refinement recovers both.
func TestPaperFigure7(t *testing.T) {
	// The switch lives in a function called once per input — the paper's
	// P(fin, d) with its fgetc-driven switch — so dynamic refinement
	// accumulates every jump-table target across calls. The criterion's
	// call executes the fall-through case, which is exactly the
	// configuration where the approximate CFG silently loses the control
	// dependence on the dispatch.
	src := `
.table tab case0 case1 case2
.func classify
	movi r4, $tab
	add r4, r4, r1
	load r4, [r4+0]
	jmpi r4              ; line 7: switch(c) dispatch
case0:
	addi r0, r2, 2       ; line 9: w = d + 2 (the paper's slice criterion case)
	ret
case1:
	addi r0, r2, -2
	ret
case2:
	add r0, r2, r2
	ret
.endfunc
.func main
	syscall r1, 1, rz
	syscall r2, 1, rz
	call classify
	syscall r1, 1, rz
	syscall r2, 1, rz
	call classify
	syscall r1, 1, rz    ; line 25: c = fgetc(fin)
	syscall r2, 1, rz    ; line 26: d
	call classify        ; line 27
	mov r3, r0
	movi r5, 9
	cmpeq r5, r3, r5
	assert r5            ; line 31: fails (w = 5)
	halt
.endfunc
`
	prog, err := asm.Assemble("fig7.s", src)
	if err != nil {
		t.Fatal(err)
	}
	_, tr := logAndTraceProg(t, prog, []int64{1, 3, 2, 3, 0, 3}, true)

	imprecise := mustSlice(t, prog, tr, slice.Options{
		MaxSave: 10, ControlDeps: true, DisableRefinement: true,
	})
	refined := mustSlice(t, prog, tr, slice.DefaultOptions())

	impLines := lines(prog, tr, imprecise)
	refLines := lines(prog, tr, refined)

	// Imprecise slice: case body (9) and d (26) present, but the
	// dispatch (7) and c (25) missing — the 6₁→4₁ control dependence of
	// the paper's third column is lost.
	if !impLines[9] || !impLines[26] {
		t.Errorf("imprecise slice should keep the data chain; got %v", impLines)
	}
	if impLines[7] || impLines[25] {
		t.Errorf("approximate-CFG slice should miss the dispatch (7) and c (25); got %v", impLines)
	}
	// Refined slice: both recovered (fourth column).
	if !refLines[7] || !refLines[25] {
		t.Errorf("refined slice must include the dispatch (7) and c (25); got %v", refLines)
	}
	if refined.Stats.CFGRefinements == 0 {
		t.Error("no CFG refinements recorded")
	}
	// Refinement only adds members.
	for _, m := range imprecise.Members {
		if !refined.Contains(m) {
			t.Errorf("imprecise member %+v missing from refined slice", m)
		}
	}
}

// TestPaperFigure8 reproduces the save/restore spurious-dependence
// experiment (§5.2, Figure 8/13): without pruning, the slice of a value
// held in a callee-saved register wrongly includes the predicate guarding
// an intervening call (and everything it depends on); with pruning the
// save/restore chain is bypassed.
func TestPaperFigure8(t *testing.T) {
	src := `
int sink;
int q(int n) {
	int a = 1;
	int b = 2;
	int c2 = 3;
	int d2 = 4;
	sink = a + b + c2 + d2 + n;
	return 0;
}
int p(int c, int d) {
	int e = d + d;
	if (c == 5) {
		q(0);
	}
	return e + 1;
}
int main() {
	int c = read();
	int w = p(c, 7);
	assert(w == 999);
	return 0;
}`
	prog, _, tr := logAndTrace(t, src, []int64{5}, true)

	unpruned := mustSlice(t, prog, tr, slice.Options{MaxSave: 10, ControlDeps: true})
	pruned := mustSlice(t, prog, tr, slice.DefaultOptions())

	upLines := lines(prog, tr, unpruned)
	prLines := lines(prog, tr, pruned)

	// Without pruning, the restore of e's register inside q drags in the
	// guard "if (c == 5)" (line 13) and c's read (line 19).
	if !upLines[13] || !upLines[19] {
		t.Errorf("unpruned slice should include the guard and read; got %v", upLines)
	}
	// With pruning they are gone, while the true chain (d -> e -> e+1 ->
	// w -> assert) stays.
	if prLines[13] || prLines[19] {
		t.Errorf("pruned slice still includes spurious lines: %v", prLines)
	}
	for _, want := range []int32{12, 16, 20, 21} {
		if !prLines[want] {
			t.Errorf("pruned slice missing line %d; got %v", want, prLines)
		}
	}
	if pruned.Stats.Members >= unpruned.Stats.Members {
		t.Errorf("pruning did not shrink the slice: %d vs %d",
			pruned.Stats.Members, unpruned.Stats.Members)
	}
	if pruned.Stats.PrunedBypasses == 0 || pruned.Stats.VerifiedPairs == 0 {
		t.Errorf("no pruning activity recorded: %+v", pruned.Stats)
	}
	// The pruned slice must be a subset of the unpruned one.
	for _, m := range pruned.Members {
		if !unpruned.Contains(m) {
			t.Errorf("pruned slice has member %+v missing from unpruned", m)
		}
	}
}

// TestSliceSoundnessBruteForce cross-checks the slicer against a
// brute-force transitive closure over explicitly recomputed def-use
// chains on a single-threaded run.
func TestSliceSoundnessBruteForce(t *testing.T) {
	prog, _, tr := logAndTrace(t, `
int a;
int b;
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 5; i++) {
		s = s + i;
	}
	a = s * 2;
	b = a - 30;
	assert(b == 999);
	return 0;
}`, nil, true)

	sl := mustSlice(t, prog, tr, slice.Options{MaxSave: 10, ControlDeps: false})

	// Brute force: walk backward keeping a want-set, no LP, no pruning.
	type loc = tracer.Loc
	want := map[loc]bool{}
	member := map[tracer.Ref]bool{}
	crit := sl.Criterion
	var buf [8]tracer.Loc
	for _, l := range tracer.Uses(tr.Entry(crit), buf[:0]) {
		want[l] = true
	}
	member[crit] = true
	start, _ := tr.GlobalPosOf(crit)
	for g := start - 1; g >= 0; g-- {
		ref := tr.Global[g]
		e := tr.Entry(ref)
		hit := false
		for _, l := range tracer.Defs(e, buf[:0]) {
			if want[l] {
				hit = true
			}
		}
		if !hit {
			continue
		}
		member[ref] = true
		for _, l := range tracer.Defs(e, buf[:0]) {
			delete(want, l)
		}
		for _, l := range tracer.Uses(e, buf[:0]) {
			want[l] = true
		}
	}

	if len(member) != sl.Stats.Members {
		t.Fatalf("slicer found %d members, brute force %d", sl.Stats.Members, len(member))
	}
	for _, m := range sl.Members {
		if !member[m] {
			t.Errorf("slicer member %+v not in brute-force slice", m)
		}
	}
}

func TestSliceFileRoundTrip(t *testing.T) {
	prog, _, tr := logAndTrace(t, `
int a;
int main() {
	a = read();
	assert(a == 0);
	return 0;
}`, []int64{7}, true)
	sl := mustSlice(t, prog, tr, slice.DefaultOptions())
	ex := slice.BuildExclusions(tr, sl)
	f := slice.ToFile(prog, tr, sl, ex)

	path := filepath.Join(t.TempDir(), "s.slice")
	if err := f.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := slice.LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got.Members) != len(f.Members) || len(got.Exclusions) != len(f.Exclusions) {
		t.Error("round trip lost data")
	}

	resolved, err := got.Resolve(tr)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if len(resolved.Members) != len(sl.Members) {
		t.Error("resolve changed member count")
	}
	for i := range resolved.Members {
		if resolved.Members[i] != sl.Members[i] {
			t.Errorf("member %d differs after round trip", i)
		}
	}

	var buf bytes.Buffer
	if err := got.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"dynamic slice", "[statements]", "[dependences]", "[exclusion regions]", "t.c:4"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}

func TestCriterionHelpers(t *testing.T) {
	prog, _, tr := logAndTrace(t, `
int v;
int main() {
	v = 5;
	v = v + 1;
	write(v);
	return 0;
}`, nil, false)
	sym := prog.SymbolByName("v")
	if sym == nil {
		t.Fatal("no symbol v")
	}
	ref, err := slice.LastReadOf(tr, sym.Addr)
	if err != nil {
		t.Fatalf("LastReadOf: %v", err)
	}
	if e := tr.Entry(ref); e.EffAddr != sym.Addr || e.MemIsWrite {
		t.Errorf("LastReadOf returned wrong entry: %+v", e)
	}
	if _, err := slice.LastReadOf(tr, 99999); err == nil {
		t.Error("LastReadOf of untouched address should fail")
	}
	if _, err := slice.LastEventOf(tr, 0); err != nil {
		t.Errorf("LastEventOf: %v", err)
	}
	if _, err := slice.LastEventOf(tr, 42); err == nil {
		t.Error("LastEventOf of missing thread should fail")
	}
	if _, err := slice.EventAtLine(tr, prog, 0, 5, 1); err != nil {
		t.Errorf("EventAtLine: %v", err)
	}
	if _, err := slice.EventAtLine(tr, prog, 0, 5, 99); err == nil {
		t.Error("EventAtLine with too-high instance should fail")
	}
	reads := slice.LastReadsInRegion(tr, 3)
	if len(reads) == 0 {
		t.Error("LastReadsInRegion found nothing")
	}
}

// TestExecutionSliceEndToEnd drives the full §4 pipeline: slice ->
// exclusion regions -> relog -> slice pinball -> replay, checking that
// the slice replay executes fewer instructions and that the values at the
// slice criterion match the full replay.
func TestExecutionSliceEndToEnd(t *testing.T) {
	src := `
int x;
int garbage;
int t2func(int unused) {
	int k = x + 1;
	yield();
	k = k + x;
	assert(k == 3);
	return k;
}
int main() {
	int i;
	x = 1;
	for (i = 0; i < 200; i++) { garbage = garbage + i; }
	int t = spawn(t2func, 0);
	yield();
	x = 0 - 1;
	join(t);
	return 0;
}`
	prog, pb, tr := logAndTrace(t, src, nil, true)
	sl := mustSlice(t, prog, tr, slice.DefaultOptions())
	ex := slice.BuildExclusions(tr, sl)
	if len(ex) == 0 {
		t.Fatal("no exclusion regions built")
	}

	spb, err := pinplay.Relog(prog, pb, ex)
	if err != nil {
		t.Fatalf("relog: %v", err)
	}
	if spb.RegionInstrs >= pb.RegionInstrs {
		t.Errorf("slice pinball not smaller: %d vs %d", spb.RegionInstrs, pb.RegionInstrs)
	}
	t.Logf("region %d instrs -> slice pinball %d instrs (%.1f%%)",
		pb.RegionInstrs, spb.RegionInstrs, 100*float64(spb.RegionInstrs)/float64(pb.RegionInstrs))

	// Replay the slice pinball, watching the criterion thread.
	watch := &critWatcher{prog: prog}
	m, err := pinplay.Replay(prog, spb, watch)
	if err != nil {
		t.Fatalf("slice replay: %v", err)
	}
	if m.Stopped() != vm.StopFailure {
		t.Errorf("slice replay should reach the assert failure, got %v", m.Stopped())
	}
	// The failing assert must have observed the same register value (0 =
	// condition false) and the same pc as in the full replay.
	if watch.assertPC < 0 {
		t.Fatal("slice replay never executed the assert")
	}
	if watch.assertPC != pb.Failure.PC {
		t.Errorf("assert at pc %d, logged failure at pc %d", watch.assertPC, pb.Failure.PC)
	}

	// Determinism of slice replay.
	m2, err := pinplay.Replay(prog, spb, nil)
	if err != nil {
		t.Fatalf("second slice replay: %v", err)
	}
	if !m.Snapshot().Mem.Equal(m2.Snapshot().Mem) {
		t.Error("slice replays disagree")
	}
}

type critWatcher struct {
	vm.NopTracer
	prog     *isa.Program
	assertPC int64
}

func (c *critWatcher) OnInstr(ev *vm.InstrEvent) {
	if ev.Instr.Op == isa.ASSERT {
		c.assertPC = ev.PC
	}
}

func init() {
	// Guard against accidental zero-value: critWatcher.assertPC must
	// distinguish "never saw assert" from pc 0.
}

func TestExclusionsKeepThreadLifecycle(t *testing.T) {
	prog, _, tr := logAndTrace(t, `
int x;
int child(int v) { x = v; return 0; }
int main() {
	int t = spawn(child, 3);
	join(t);
	assert(x == 99);
	return 0;
}`, nil, true)
	sl := mustSlice(t, prog, tr, slice.DefaultOptions())
	ex := slice.BuildExclusions(tr, sl)

	excluded := func(tid int, idx int64) bool {
		for _, e := range ex {
			if e.Tid == tid && idx >= e.FromIdx && idx < e.ToIdx {
				return true
			}
		}
		return false
	}
	for tid, l := range tr.Locals {
		for pos := range l {
			e := &l[pos]
			idx := e.Idx
			if e.Instr.Op == isa.SPAWN || e.Instr.Op == isa.JOIN {
				if excluded(tid, idx) {
					t.Errorf("lifecycle instruction %v excluded", e.Instr.Op)
				}
			}
			if e.Instr.Op == isa.RET && e.NextPC == -1 && excluded(tid, idx) {
				t.Error("thread-exit RET excluded")
			}
		}
	}
}

func TestLPSkipsBlocks(t *testing.T) {
	// The wanted location (a's cell) is defined before a long unrelated
	// stretch, so the backward traversal must skip those blocks via the
	// LP summaries instead of scanning them.
	prog, _, tr := logAndTrace(t, `
int noise;
int a;
int main() {
	int i;
	a = 5;
	for (i = 0; i < 30000; i++) { noise = noise + i; }
	assert(a == 6);
	return 0;
}`, nil, true)
	s, err := slice.New(prog, tr, slice.Options{MaxSave: 10, ControlDeps: false, LPBlock: 1024})
	if err != nil {
		t.Fatal(err)
	}
	crit, err := slice.LastEventOf(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := s.Slice(crit)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Stats.LPBlocksSkip == 0 {
		t.Errorf("LP skipped no blocks: %+v", sl.Stats)
	}
	if sl.Stats.LPBlocksSkip < sl.Stats.LPBlocksVisit {
		t.Errorf("expected mostly-skipped traversal: %+v", sl.Stats)
	}
}

func TestWriteHTMLReport(t *testing.T) {
	src := `
int a;
int main() {
	a = read();
	int b = a * 2;
	assert(b == 0);
	return 0;
}`
	prog, _, tr := logAndTrace(t, src, []int64{5}, true)
	sl := mustSlice(t, prog, tr, slice.DefaultOptions())
	f := slice.ToFile(prog, tr, sl, slice.BuildExclusions(tr, sl))

	// With source: highlighted listing.
	var buf bytes.Buffer
	if err := f.WriteHTML(&buf, map[string]string{"t.c": src}); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"Dynamic slice", "class=\"hit\"", "a = read()", "Dependences",
		"Exclusion regions", "save/restore",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// The unrelated line "return 0;" must not be highlighted: find its
	// row and check it has no hit class.
	for _, line := range strings.Split(html, "\n") {
		if strings.Contains(line, "return 0;") && strings.Contains(line, "class=\"hit\"") {
			t.Errorf("non-slice line highlighted: %s", line)
		}
	}

	// Without source: statement-table fallback still renders.
	buf.Reset()
	if err := f.WriteHTML(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "executions") {
		t.Error("fallback table missing")
	}
}

// TestExecutionSliceWithCondVars drives the §4 pipeline over a program
// using wait/signal: the synchronisation instructions are kept out of
// exclusions, and the slice pinball replays to the recorded failure.
func TestExecutionSliceWithCondVars(t *testing.T) {
	src := `
int mtx;
int cv;
int ready;
int data;
int garbage;
int consumer(int u) {
	lock(&mtx);
	while (!ready) {
		wait(&cv, &mtx);
	}
	int v = data;
	unlock(&mtx);
	assert(v == 42);
	return 0;
}
int main() {
	int i;
	int t = spawn(consumer, 0);
	for (i = 0; i < 100; i++) { garbage = garbage + i; }
	lock(&mtx);
	data = 41;
	ready = 1;
	signal(&cv);
	unlock(&mtx);
	join(t);
	return 0;
}`
	prog, pb, tr := logAndTrace(t, src, nil, true)
	sl := mustSlice(t, prog, tr, slice.DefaultOptions())
	got := lines(prog, tr, sl)
	// The slice must contain the producer's data write (line 22) and the
	// consumer's read (line 12); the garbage loop (line 20) must not be in.
	if !got[22] || !got[12] {
		t.Errorf("slice missing producer/consumer chain; lines: %v", got)
	}
	if got[20] {
		t.Errorf("slice includes the garbage loop; lines: %v", got)
	}

	ex := slice.BuildExclusions(tr, sl)
	for _, e := range ex {
		for idx := e.FromIdx; idx < e.ToIdx; idx++ {
			if ref, ok := tr.RefOf(e.Tid, idx); ok {
				op := tr.Entry(ref).Instr.Op
				if op == isa.WAIT || op == isa.SIGNAL {
					t.Fatalf("synchronisation op %v excluded", op)
				}
			}
		}
	}
	spb, err := pinplay.Relog(prog, pb, ex)
	if err != nil {
		t.Fatalf("relog: %v", err)
	}
	m, err := pinplay.Replay(prog, spb, nil)
	if err != nil {
		t.Fatalf("slice replay: %v", err)
	}
	if m.Stopped() != vm.StopFailure {
		t.Errorf("slice replay stop = %v, want failure", m.Stopped())
	}
}

func TestNavigator(t *testing.T) {
	prog, _, tr := logAndTrace(t, `
int a;
int b;
int main() {
	a = 3;
	b = a * 2;
	assert(b == 7);
	return 0;
}`, nil, true)
	sl := mustSlice(t, prog, tr, slice.DefaultOptions())
	nav := slice.NewNavigator(tr, sl)

	crit := nav.Criterion()
	deps := nav.DependsOn(crit)
	if len(deps) == 0 {
		t.Fatal("criterion has no dependences")
	}
	// Walking DependsOn from the criterion must stay within the slice and
	// reach the definition of a (line 5) within a few hops.
	seenA := false
	frontier := []tracer.Ref{crit}
	for hop := 0; hop < 12 && !seenA; hop++ {
		var next []tracer.Ref
		for _, r := range frontier {
			for _, d := range nav.DependsOn(r) {
				if !sl.Contains(d.To) {
					t.Fatalf("dependence target %+v outside slice", d.To)
				}
				if tr.Entry(d.To).Instr.Line == 5 {
					seenA = true
				}
				next = append(next, d.To)
			}
		}
		frontier = next
	}
	if !seenA {
		t.Error("backward navigation never reached 'a = 3'")
	}

	// Forward navigation: the definition of a has dependents.
	var aRef tracer.Ref
	for _, m := range sl.Members {
		if e := tr.Entry(m); e.Instr.Line == 5 && e.MemIsWrite {
			aRef = m
		}
	}
	if len(nav.Dependents(aRef)) == 0 {
		t.Error("store to a has no dependents")
	}

	// ResolveMember accepts members and rejects non-members.
	if _, err := nav.ResolveMember(int(crit.Tid), tr.Entry(crit).Idx); err != nil {
		t.Errorf("ResolveMember on criterion: %v", err)
	}
	if _, err := nav.ResolveMember(42, 0); err == nil {
		t.Error("bogus member accepted")
	}

	var buf bytes.Buffer
	nav.WriteChain(&buf, prog, crit, 5)
	if !strings.Contains(buf.String(), "<- data") {
		t.Errorf("chain output missing data hops:\n%s", buf.String())
	}
}
