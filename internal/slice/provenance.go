package slice

import (
	"fmt"

	"repro/internal/tracer"
)

// Slice provenance. When the trace behind a slice came from a
// flight-recorder replay, some of its entries were re-derived by gap
// bridging instead of replayed from recorded streams (see
// tracer.Provenance). AnnotateProvenance is a post-pass over a finished
// slice: it tags every member and dependence edge with the worst
// provenance it touches and attaches a summary. Running it after the
// traversal — rather than inside the engines — keeps the sequential and
// parallel slicers bit-identical and provenance purely additive.

// ProvSummary is a slice's provenance breakdown.
type ProvSummary struct {
	ExactMembers     int `json:"exact_members"`
	BridgedMembers   int `json:"bridged_members,omitempty"`
	EstimatedMembers int `json:"estimated_members,omitempty"`

	ExactEdges     int `json:"exact_edges"`
	BridgedEdges   int `json:"bridged_edges,omitempty"`
	EstimatedEdges int `json:"estimated_edges,omitempty"`

	// MinConfidence is the lowest edge confidence in the slice (1.0 when
	// every edge is exact, or when the slice has no edges at all).
	MinConfidence float64 `json:"min_confidence"`
}

// Exact reports whether every member and edge replayed from recorded
// streams — the slice is as trustworthy as a full-trace slice.
func (p *ProvSummary) Exact() bool {
	return p.BridgedMembers == 0 && p.EstimatedMembers == 0 &&
		p.BridgedEdges == 0 && p.EstimatedEdges == 0
}

// Degraded reports whether the slice touches estimated (hash-unverified)
// content.
func (p *ProvSummary) Degraded() bool {
	return p.EstimatedMembers > 0 || p.EstimatedEdges > 0
}

func (p *ProvSummary) String() string {
	return fmt.Sprintf("members exact=%d bridged=%d estimated=%d; edges exact=%d bridged=%d estimated=%d; min confidence %.2f",
		p.ExactMembers, p.BridgedMembers, p.EstimatedMembers,
		p.ExactEdges, p.BridgedEdges, p.EstimatedEdges, p.MinConfidence)
}

// edgeProvenance is the worst provenance among an edge's endpoints.
func edgeProvenance(tr *tracer.Trace, d DepEdge) tracer.Provenance {
	p := tr.ProvenanceOf(d.From)
	if q := tr.ProvenanceOf(d.To); q > p {
		p = q
	}
	return p
}

// AnnotateProvenance tags a finished slice against the trace's gap
// overlay and attaches the summary. It is idempotent, deterministic and
// independent of which engine produced the slice. Slices over gap-free
// traces get an all-exact summary.
func AnnotateProvenance(tr *tracer.Trace, sl *Slice) {
	sum := &ProvSummary{MinConfidence: 1.0}
	for _, m := range sl.Members {
		switch tr.ProvenanceOf(m) {
		case tracer.ProvExact:
			sum.ExactMembers++
		case tracer.ProvBridged:
			sum.BridgedMembers++
		case tracer.ProvEstimated:
			sum.EstimatedMembers++
		}
	}
	for i := range sl.Deps {
		p := edgeProvenance(tr, sl.Deps[i])
		sl.Deps[i].Provenance = p
		sl.Deps[i].Confidence = p.Confidence()
		switch p {
		case tracer.ProvExact:
			sum.ExactEdges++
		case tracer.ProvBridged:
			sum.BridgedEdges++
		case tracer.ProvEstimated:
			sum.EstimatedEdges++
		}
		if c := p.Confidence(); c < sum.MinConfidence {
			sum.MinConfidence = c
		}
	}
	sl.Prov = sum
}

// checkProvenance verifies an annotated slice's provenance consistency:
// every edge tag is the worst of its endpoints' provenance with the
// matching confidence, and the summary counts add up. Unannotated slices
// must not carry provenance tags at all.
func (s *Slicer) checkProvenance(sl *Slice) error {
	if sl.Prov == nil {
		for i, d := range sl.Deps {
			if d.Provenance != tracer.ProvExact || d.Confidence != 0 {
				return fmt.Errorf("slice: unannotated slice carries provenance on dep %d: %v/%.2f", i, d.Provenance, d.Confidence)
			}
		}
		return nil
	}
	var want ProvSummary
	want.MinConfidence = 1.0
	for _, m := range sl.Members {
		switch s.Trace.ProvenanceOf(m) {
		case tracer.ProvExact:
			want.ExactMembers++
		case tracer.ProvBridged:
			want.BridgedMembers++
		case tracer.ProvEstimated:
			want.EstimatedMembers++
		}
	}
	for i, d := range sl.Deps {
		p := edgeProvenance(s.Trace, d)
		if d.Provenance != p {
			return fmt.Errorf("slice: dep %d tagged %v, endpoints say %v", i, d.Provenance, p)
		}
		if d.Confidence != p.Confidence() {
			return fmt.Errorf("slice: dep %d confidence %.2f does not match provenance %v", i, d.Confidence, p)
		}
		switch p {
		case tracer.ProvExact:
			want.ExactEdges++
		case tracer.ProvBridged:
			want.BridgedEdges++
		case tracer.ProvEstimated:
			want.EstimatedEdges++
		}
		if c := p.Confidence(); c < want.MinConfidence {
			want.MinConfidence = c
		}
	}
	if *sl.Prov != want {
		return fmt.Errorf("slice: provenance summary %+v does not match recomputation %+v", *sl.Prov, want)
	}
	if len(s.Trace.Gaps) == 0 && !sl.Prov.Exact() {
		return fmt.Errorf("slice: gap-free trace produced non-exact provenance: %v", sl.Prov)
	}
	return nil
}
