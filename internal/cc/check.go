package cc

import (
	"fmt"

	"repro/internal/isa"
)

// Storage classes assigned by the checker.
type storageClass uint8

const (
	scGlobal storageClass = iota
	scReg                 // scalar local held in a callee-saved register
	scStack               // local in the stack frame
)

// symbol is a resolved variable.
type symbol struct {
	name      string
	class     storageClass
	isArray   bool
	size      int64
	addrTaken bool

	addr int64   // scGlobal: global word address (set by codegen)
	reg  isa.Reg // scReg
	off  int64   // scStack: lowest address is FP - off

	isParam  bool
	paramIdx int
	decl     *VarDecl
}

// builtin names; calls to these compile to dedicated instructions.
var builtins = map[string]int{
	// name -> arity
	"read": 0, "write": 1, "time": 0, "rand": 0, "alloc": 1,
	"tid": 0, "yield": 0, "assert": 1, "halt": 0,
	"spawn": 2, "join": 1, "lock": 1, "unlock": 1,
	"wait": 2, "signal": 1,
}

// maxArgs is the number of register-passed arguments (Arg0..Arg2).
const maxArgs = 3

// maxRegLocals is how many scalar locals are register-allocated to
// callee-saved registers R8..R11; this is what generates the prologue
// save / epilogue restore pairs of Section 5.2.
const maxRegLocals = 4

// checker resolves names, marks address-taken symbols and assigns storage.
type checker struct {
	file    *File
	funcs   map[string]*FuncDecl
	globals map[string]*symbol
	scopes  []map[string]*symbol
	cur     *FuncDecl
	errs    []error
}

// Check resolves the file in place. It must run before Compile.
func Check(f *File) error {
	c := &checker{
		file:    f,
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*symbol),
	}
	for _, fn := range f.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return fmt.Errorf("%s:%d: duplicate function %q", f.Name, fn.Line, fn.Name)
		}
		if _, isB := builtins[fn.Name]; isB {
			return fmt.Errorf("%s:%d: function %q shadows a builtin", f.Name, fn.Line, fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	if c.funcs["main"] == nil {
		return fmt.Errorf("%s: no main function", f.Name)
	}
	for _, g := range f.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return fmt.Errorf("%s:%d: duplicate global %q", f.Name, g.Line, g.Name)
		}
		g.sym = &symbol{name: g.Name, class: scGlobal, isArray: g.IsArray, size: g.Size, decl: g}
		c.globals[g.Name] = g.sym
	}
	for _, fn := range f.Funcs {
		c.checkFunc(fn)
	}
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

func (c *checker) errf(line int32, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s:%d: %s", c.file.Name, line, fmt.Sprintf(format, args...)))
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(d *VarDecl, isParam bool, idx int) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[d.Name]; dup {
		c.errf(d.Line, "duplicate declaration of %q", d.Name)
		return
	}
	s := &symbol{name: d.Name, isArray: d.IsArray, size: d.Size, isParam: isParam, paramIdx: idx, decl: d}
	top[d.Name] = s
	d.sym = s
	c.cur.locals = append(c.cur.locals, s)
}

func (c *checker) lookup(name string) *symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(fn *FuncDecl) {
	c.cur = fn
	c.push()
	if len(fn.Params) > maxArgs {
		c.errf(fn.Line, "function %q has %d parameters; max %d", fn.Name, len(fn.Params), maxArgs)
	}
	for i, p := range fn.Params {
		c.declare(p, true, i)
	}
	c.checkBlock(fn.Body)
	c.pop()
	c.assignStorage(fn)
	c.cur = nil
}

func (c *checker) checkBlock(b *BlockStmt) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		c.checkBlock(st)
	case *DeclStmt:
		for _, d := range st.Decls {
			c.declare(d, false, 0)
			if d.InitX != nil {
				c.checkExpr(d.InitX)
			}
		}
	case *ExprStmt:
		c.checkExpr(st.X)
	case *IfStmt:
		c.checkExpr(st.Cond)
		c.checkBlock(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *WhileStmt:
		c.checkExpr(st.Cond)
		c.checkBlock(st.Body)
	case *DoWhileStmt:
		c.checkBlock(st.Body)
		c.checkExpr(st.Cond)
	case *ForStmt:
		// The for statement is its own scope, so a C99-style loop
		// variable declaration is visible to the clauses and body but
		// not to siblings.
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.checkExpr(st.Cond)
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.checkBlock(st.Body)
		c.pop()
	case *SwitchStmt:
		c.checkExpr(st.Cond)
		seen := map[int64]bool{}
		defaults := 0
		for _, cl := range st.Cases {
			if cl.IsDefault {
				defaults++
				if defaults > 1 {
					c.errf(cl.Line, "multiple default cases")
				}
			} else if seen[cl.Val] {
				c.errf(cl.Line, "duplicate case %d", cl.Val)
			} else {
				seen[cl.Val] = true
			}
			for _, bs := range cl.Body {
				c.checkStmt(bs)
			}
		}
	case *ReturnStmt:
		if st.X != nil {
			c.checkExpr(st.X)
		}
	case *BreakStmt, *ContinueStmt:
	default:
		c.errf(s.stmtLine(), "unhandled statement %T", s)
	}
}

func (c *checker) checkExpr(e Expr) {
	switch x := e.(type) {
	case *NumExpr:
	case *IdentExpr:
		if s := c.lookup(x.Name); s != nil {
			x.sym = s
			return
		}
		if _, ok := c.funcs[x.Name]; ok {
			x.fn = x.Name
			return
		}
		c.errf(x.Line, "undefined: %q", x.Name)
	case *IndexExpr:
		c.checkExpr(x.X)
		c.checkExpr(x.Index)
	case *UnaryExpr:
		c.checkExpr(x.X)
		if x.Op == "&" {
			c.markAddrTaken(x.X)
		}
	case *BinExpr:
		c.checkExpr(x.X)
		c.checkExpr(x.Y)
	case *CondExpr:
		c.checkExpr(x.Cond)
		c.checkExpr(x.Then)
		c.checkExpr(x.Else)
	case *AssignExpr:
		c.checkExpr(x.LHS)
		c.checkExpr(x.RHS)
		switch lhs := x.LHS.(type) {
		case *IdentExpr:
			if lhs.sym == nil {
				c.errf(x.Line, "cannot assign to function %q", lhs.Name)
			} else if lhs.sym.isArray {
				c.errf(x.Line, "cannot assign to array %q", lhs.Name)
			}
		case *IndexExpr, *UnaryExpr:
			if u, ok := x.LHS.(*UnaryExpr); ok && u.Op != "*" {
				c.errf(x.Line, "invalid assignment target")
			}
		default:
			c.errf(x.Line, "invalid assignment target")
		}
	case *CallExpr:
		for _, a := range x.Args {
			c.checkExpr(a)
		}
		if arity, ok := builtins[x.Callee]; ok {
			if len(x.Args) != arity {
				c.errf(x.Line, "builtin %q wants %d args, got %d", x.Callee, arity, len(x.Args))
			}
			if x.Callee == "spawn" {
				id, ok := x.Args[0].(*IdentExpr)
				if !ok || c.funcs[id.Name] == nil {
					c.errf(x.Line, "spawn's first argument must be a function name")
				} else {
					id.fn = id.Name
					id.sym = nil
					if fn := c.funcs[id.Name]; len(fn.Params) > 1 {
						c.errf(x.Line, "spawned function %q must take at most one parameter", id.Name)
					}
				}
			}
			return
		}
		if fn, ok := c.funcs[x.Callee]; ok {
			if len(x.Args) != len(fn.Params) {
				c.errf(x.Line, "function %q wants %d args, got %d", x.Callee, len(fn.Params), len(x.Args))
			}
			return
		}
		if s := c.lookup(x.Callee); s != nil {
			// Indirect call through a function-pointer variable.
			x.sym = s
			if len(x.Args) > maxArgs {
				c.errf(x.Line, "too many args in indirect call")
			}
			return
		}
		c.errf(x.Line, "undefined function %q", x.Callee)
	default:
		c.errf(e.exprLine(), "unhandled expression %T", e)
	}
}

// markAddrTaken records that &x forces x into memory.
func (c *checker) markAddrTaken(e Expr) {
	switch x := e.(type) {
	case *IdentExpr:
		if x.sym != nil {
			x.sym.addrTaken = true
		}
	case *IndexExpr:
		// &a[i]: the array is already in memory.
	case *UnaryExpr:
		// &*p is p.
	default:
		c.errf(e.exprLine(), "cannot take address of this expression")
	}
}

// assignStorage decides where each local lives: the first maxRegLocals
// scalar, non-address-taken locals go to callee-saved registers R8..R11;
// everything else gets a frame slot. Frame offsets: a symbol's lowest
// address is FP - off, and the frame occupies [FP-frameWords, FP-1].
func (c *checker) assignStorage(fn *FuncDecl) {
	nextReg := isa.CalleeLo
	var off int64
	for _, s := range fn.locals {
		if !s.isArray && !s.addrTaken && nextReg <= isa.CalleeLo+isa.Reg(maxRegLocals)-1 {
			s.class = scReg
			s.reg = nextReg
			nextReg++
			continue
		}
		s.class = scStack
		off += s.size
		s.off = off
	}
}

// frameWords returns the stack-frame size of fn in words.
func frameWords(fn *FuncDecl) int64 {
	var max int64
	for _, s := range fn.locals {
		if s.class == scStack && s.off > max {
			max = s.off
		}
	}
	return max
}

// usedCalleeRegs returns the callee-saved registers fn's locals occupy, in
// ascending order.
func usedCalleeRegs(fn *FuncDecl) []isa.Reg {
	var regs []isa.Reg
	for _, s := range fn.locals {
		if s.class == scReg {
			regs = append(regs, s.reg)
		}
	}
	return regs
}
