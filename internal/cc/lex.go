// Package cc compiles "mini-C" — the workload language of this
// reproduction — to isa machine code. The language has ints, int arrays,
// int pointers, functions, the usual C control flow, and builtins for
// threads (spawn/join/lock/unlock), I/O (read/write) and assertions.
//
// Two code-generation choices deliberately mirror what gcc does to x86
// binaries, because the paper's precision work (Section 5) targets them:
//
//   - dense switch statements compile to an indirect jump through a jump
//     table (the source of static-CFG imprecision addressed in §5.1), and
//   - scalar locals are register-allocated to callee-saved registers,
//     which the prologue saves with PUSH and the epilogue restores with
//     POP — the save/restore pairs whose spurious dependences §5.2 prunes.
package cc

import (
	"fmt"
	"strconv"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct
	tKeyword
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int32
}

var keywords = map[string]bool{
	"int": true, "void": true, "if": true, "else": true, "while": true, "do": true,
	"for": true, "switch": true, "case": true, "default": true,
	"break": true, "continue": true, "return": true,
}

// lexer tokenises mini-C source.
type lexer struct {
	src  string
	pos  int
	line int32
	file string
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, line: 1, file: file}
}

func (l *lexer) errf(line int32, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", l.file, line, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf(l.line, "unterminated comment")
			}
			l.pos += 2
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: l.line}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[text] {
			return token{kind: tKeyword, text: text, line: l.line}, nil
		}
		return token{kind: tIdent, text: text, line: l.line}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (isIdentPart(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		n, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, l.errf(l.line, "bad number %q", text)
		}
		return token{kind: tNumber, text: text, num: n, line: l.line}, nil
	case c == '\'':
		// Character literal.
		if l.pos+2 < len(l.src) && l.src[l.pos+1] == '\\' && l.src[l.pos+3] == '\'' {
			var v int64
			switch l.src[l.pos+2] {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return token{}, l.errf(l.line, "bad escape")
			}
			l.pos += 4
			return token{kind: tNumber, num: v, line: l.line}, nil
		}
		if l.pos+2 < len(l.src) && l.src[l.pos+2] == '\'' {
			v := int64(l.src[l.pos+1])
			l.pos += 3
			return token{kind: tNumber, num: v, line: l.line}, nil
		}
		return token{}, l.errf(l.line, "bad character literal")
	default:
		// Multi-character punctuation first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "++", "--":
			l.pos += 2
			return token{kind: tPunct, text: two, line: l.line}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '&', '|', '^', '!', '<', '>', '=',
			'(', ')', '{', '}', '[', ']', ';', ',', ':', '?':
			l.pos++
			return token{kind: tPunct, text: string(c), line: l.line}, nil
		}
		return token{}, l.errf(l.line, "unexpected character %q", string(c))
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// lexAll tokenises the whole source.
func lexAll(file, src string) ([]token, error) {
	l := newLexer(file, src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}
