package cc

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Compile checks and compiles a parsed file into a program.
func Compile(f *File) (*isa.Program, error) {
	if err := Check(f); err != nil {
		return nil, err
	}
	g := &gen{b: asm.NewBuilder(f.Name)}
	g.fileIdx = g.b.File(f.Name)
	for _, d := range f.Globals {
		d.sym.addr = g.b.Global(d.Name, d.Size)
		for i, v := range d.Init {
			g.b.InitWord(d.sym.addr+int64(i), v)
		}
	}
	for _, fn := range f.Funcs {
		if err := g.genFunc(fn); err != nil {
			return nil, err
		}
	}
	return g.b.Finish()
}

// CompileSource parses, checks and compiles mini-C source text.
func CompileSource(name, src string) (*isa.Program, error) {
	f, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

// MustCompile is CompileSource that panics on error; for registering
// static workloads.
func MustCompile(name, src string) *isa.Program {
	p, err := CompileSource(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// switch statements whose case-value span is at most this compile to a
// jump table (an indirect jump); sparser switches become compare chains.
const denseSwitchSpan = 256

// Scratch registers used by expression evaluation. Temporaries that must
// survive a sub-evaluation are pushed on the stack, which also gives the
// save/restore detector realistic "push/pop not used for save/restore"
// traffic to disambiguate.
const (
	acc = isa.R4 // primary accumulator
	sec = isa.R5 // secondary operand
	aux = isa.R6 // indirect-call target
)

type loopCtx struct {
	breakL    asm.LabelID
	continueL asm.LabelID
	hasCont   bool
}

type gen struct {
	b       *asm.Builder
	fileIdx int32
	fn      *FuncDecl
	epi     asm.LabelID
	loops   []loopCtx
	err     error
}

func (g *gen) errf(line int32, format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
	}
}

func (g *gen) pos(line int32) { g.b.SetPos(g.fileIdx, line) }

// genFunc emits one function: prologue (push fp, allocate frame, push
// used callee-saved registers, home the arguments), body, single epilogue
// (pop callee-saved, tear down frame, ret).
func (g *gen) genFunc(fn *FuncDecl) error {
	g.fn = fn
	g.epi = g.b.NewLabel()
	g.pos(fn.Line)
	g.b.BeginFunc(fn.Name)

	// Prologue.
	g.b.Emit(isa.Instr{Op: isa.PUSH, Rs1: isa.FP})
	g.b.Mov(isa.FP, isa.SP)
	if n := frameWords(fn); n > 0 {
		g.b.Emit(isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: -n})
	}
	saved := usedCalleeRegs(fn)
	for _, r := range saved {
		g.b.Emit(isa.Instr{Op: isa.PUSH, Rs1: r})
	}
	// Home the parameters.
	for i, p := range fn.Params {
		argReg := isa.Arg0 + isa.Reg(i)
		switch p.sym.class {
		case scReg:
			g.b.Mov(p.sym.reg, argReg)
		case scStack:
			g.b.Store(isa.FP, -p.sym.off, argReg)
		}
	}

	g.genBlock(fn.Body)

	// Fall-off-the-end returns 0.
	g.pos(fn.Line)
	g.b.MovImm(isa.RetReg, 0)

	// Epilogue.
	g.b.Bind(g.epi)
	for i := len(saved) - 1; i >= 0; i-- {
		g.b.Emit(isa.Instr{Op: isa.POP, Rd: saved[i]})
	}
	g.b.Mov(isa.SP, isa.FP)
	g.b.Emit(isa.Instr{Op: isa.POP, Rd: isa.FP})
	g.b.Emit(isa.Instr{Op: isa.RET})
	g.b.EndFunc()
	g.fn = nil
	return g.err
}

func (g *gen) genBlock(b *BlockStmt) {
	for _, s := range b.Stmts {
		g.genStmt(s)
	}
}

func (g *gen) genStmt(s Stmt) {
	if g.err != nil {
		return
	}
	g.pos(s.stmtLine())
	switch st := s.(type) {
	case *BlockStmt:
		g.genBlock(st)

	case *DeclStmt:
		for _, d := range st.Decls {
			if d.InitX != nil {
				g.genExpr(d.InitX)
				g.pos(d.Line)
				g.storeScalar(d.sym)
			}
		}

	case *ExprStmt:
		g.genExpr(st.X)

	case *IfStmt:
		elseL := g.b.NewLabel()
		endL := g.b.NewLabel()
		g.genExpr(st.Cond)
		g.pos(st.Line)
		g.b.Branch(isa.BRZ, acc, elseL)
		g.genBlock(st.Then)
		if st.Else != nil {
			g.b.Jump(endL)
			g.b.Bind(elseL)
			g.genStmt(st.Else)
			g.b.Bind(endL)
		} else {
			g.b.Bind(elseL)
			g.b.Bind(endL)
		}

	case *WhileStmt:
		condL := g.b.NewLabel()
		endL := g.b.NewLabel()
		g.b.Bind(condL)
		g.genExpr(st.Cond)
		g.pos(st.Line)
		g.b.Branch(isa.BRZ, acc, endL)
		g.loops = append(g.loops, loopCtx{breakL: endL, continueL: condL, hasCont: true})
		g.genBlock(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		g.b.Jump(condL)
		g.b.Bind(endL)

	case *ForStmt:
		condL := g.b.NewLabel()
		postL := g.b.NewLabel()
		endL := g.b.NewLabel()
		if st.Init != nil {
			g.genStmt(st.Init)
		}
		g.b.Bind(condL)
		if st.Cond != nil {
			g.genExpr(st.Cond)
			g.pos(st.Line)
			g.b.Branch(isa.BRZ, acc, endL)
		}
		g.loops = append(g.loops, loopCtx{breakL: endL, continueL: postL, hasCont: true})
		g.genBlock(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		g.b.Bind(postL)
		if st.Post != nil {
			g.genStmt(st.Post)
		}
		g.b.Jump(condL)
		g.b.Bind(endL)

	case *DoWhileStmt:
		bodyL := g.b.NewLabel()
		condL := g.b.NewLabel()
		endL := g.b.NewLabel()
		g.b.Bind(bodyL)
		g.loops = append(g.loops, loopCtx{breakL: endL, continueL: condL, hasCont: true})
		g.genBlock(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		g.b.Bind(condL)
		g.genExpr(st.Cond)
		g.pos(st.Line)
		g.b.Branch(isa.BR, acc, bodyL)
		g.b.Bind(endL)

	case *SwitchStmt:
		g.genSwitch(st)

	case *BreakStmt:
		if len(g.loops) == 0 {
			g.errf(st.Line, "break outside loop/switch")
			return
		}
		g.b.Jump(g.loops[len(g.loops)-1].breakL)

	case *ContinueStmt:
		for i := len(g.loops) - 1; i >= 0; i-- {
			if g.loops[i].hasCont {
				g.b.Jump(g.loops[i].continueL)
				return
			}
		}
		g.errf(st.Line, "continue outside loop")

	case *ReturnStmt:
		if st.X != nil {
			g.genExpr(st.X)
			g.b.Mov(isa.RetReg, acc)
		} else {
			g.b.MovImm(isa.RetReg, 0)
		}
		g.b.Jump(g.epi)

	default:
		g.errf(s.stmtLine(), "unhandled statement %T", s)
	}
}

// genSwitch compiles a switch: dense case sets go through a jump table
// and an indirect jump (the §5.1 pattern); sparse ones become a compare
// chain.
func (g *gen) genSwitch(st *SwitchStmt) {
	endL := g.b.NewLabel()
	defL := endL
	var caseLabels []asm.LabelID
	var caseVals []int64
	for _, cl := range st.Cases {
		l := g.b.NewLabel()
		caseLabels = append(caseLabels, l)
		if cl.IsDefault {
			defL = l
		} else {
			caseVals = append(caseVals, cl.Val)
		}
	}

	g.genExpr(st.Cond)
	g.pos(st.Line)

	dense := false
	var minV, maxV int64
	if len(caseVals) >= 2 {
		minV, maxV = caseVals[0], caseVals[0]
		for _, v := range caseVals {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if maxV-minV < denseSwitchSpan {
			dense = true
		}
	}

	if dense {
		span := maxV - minV + 1
		entries := make([]asm.LabelID, span)
		for i := range entries {
			entries[i] = defL
		}
		for i, cl := range st.Cases {
			if !cl.IsDefault {
				entries[cl.Val-minV] = caseLabels[i]
			}
		}
		if minV != 0 {
			g.b.Emit(isa.Instr{Op: isa.ADDI, Rd: acc, Rs1: acc, Imm: -minV})
		}
		// Bounds checks route out-of-range values to default.
		g.b.Op(isa.CMPLT, sec, acc, isa.RZ)
		g.b.Branch(isa.BR, sec, defL)
		g.b.MovImm(sec, span)
		g.b.Op(isa.CMPLT, sec, acc, sec)
		g.b.Branch(isa.BRZ, sec, defL)
		base := g.b.JumpTable(entries)
		g.b.MovImm(sec, base)
		g.b.Op(isa.ADD, sec, sec, acc)
		g.b.Load(sec, sec, 0)
		g.b.Emit(isa.Instr{Op: isa.JMPI, Rs1: sec})
	} else {
		for i, cl := range st.Cases {
			if cl.IsDefault {
				continue
			}
			g.pos(cl.Line)
			g.b.MovImm(sec, cl.Val)
			g.b.Op(isa.CMPEQ, sec, acc, sec)
			g.b.Branch(isa.BR, sec, caseLabels[i])
		}
		g.b.Jump(defL)
	}

	g.loops = append(g.loops, loopCtx{breakL: endL})
	for i, cl := range st.Cases {
		g.b.Bind(caseLabels[i])
		for _, bs := range cl.Body {
			g.genStmt(bs)
		}
		// C fallthrough: no jump between consecutive cases.
	}
	g.loops = g.loops[:len(g.loops)-1]
	g.b.Bind(endL)
}

// storeScalar stores acc into a scalar symbol.
func (g *gen) storeScalar(s *symbol) {
	switch s.class {
	case scReg:
		g.b.Mov(s.reg, acc)
	case scStack:
		g.b.Store(isa.FP, -s.off, acc)
	case scGlobal:
		g.b.Store(isa.RZ, s.addr, acc)
	}
}

// genExpr evaluates e into acc.
func (g *gen) genExpr(e Expr) {
	if g.err != nil {
		return
	}
	g.pos(e.exprLine())
	switch x := e.(type) {
	case *NumExpr:
		g.b.MovImm(acc, x.Val)

	case *IdentExpr:
		if x.fn != "" {
			g.b.FuncAddr(acc, x.fn)
			return
		}
		s := x.sym
		if s == nil {
			g.errf(x.Line, "unresolved identifier %q", x.Name)
			return
		}
		if s.isArray {
			g.genSymAddr(s)
			return
		}
		switch s.class {
		case scReg:
			g.b.Mov(acc, s.reg)
		case scStack:
			g.b.Load(acc, isa.FP, -s.off)
		case scGlobal:
			g.b.Load(acc, isa.RZ, s.addr)
		}

	case *IndexExpr:
		g.genAddr(x)
		g.b.Load(acc, acc, 0)

	case *UnaryExpr:
		switch x.Op {
		case "-":
			g.genExpr(x.X)
			g.pos(x.Line)
			g.b.Op(isa.SUB, acc, isa.RZ, acc)
		case "!":
			g.genExpr(x.X)
			g.pos(x.Line)
			g.b.Op(isa.CMPEQ, acc, acc, isa.RZ)
		case "*":
			g.genExpr(x.X)
			g.pos(x.Line)
			g.b.Load(acc, acc, 0)
		case "&":
			g.genAddr(x.X)
		default:
			g.errf(x.Line, "unhandled unary %q", x.Op)
		}

	case *BinExpr:
		g.genBin(x)

	case *AssignExpr:
		g.genAssign(x)

	case *CondExpr:
		elseL := g.b.NewLabel()
		endL := g.b.NewLabel()
		g.genExpr(x.Cond)
		g.pos(x.Line)
		g.b.Branch(isa.BRZ, acc, elseL)
		g.genExpr(x.Then)
		g.b.Jump(endL)
		g.b.Bind(elseL)
		g.genExpr(x.Else)
		g.b.Bind(endL)

	case *CallExpr:
		g.genCall(x)

	default:
		g.errf(e.exprLine(), "unhandled expression %T", e)
	}
}

// genBin evaluates a binary expression into acc. The left operand is
// pushed across the right operand's evaluation.
func (g *gen) genBin(x *BinExpr) {
	switch x.Op {
	case "&&":
		endL := g.b.NewLabel()
		g.genExpr(x.X)
		g.pos(x.Line)
		g.b.Op(isa.CMPNE, acc, acc, isa.RZ)
		g.b.Branch(isa.BRZ, acc, endL)
		g.genExpr(x.Y)
		g.pos(x.Line)
		g.b.Op(isa.CMPNE, acc, acc, isa.RZ)
		g.b.Bind(endL)
		return
	case "||":
		endL := g.b.NewLabel()
		g.genExpr(x.X)
		g.pos(x.Line)
		g.b.Op(isa.CMPNE, acc, acc, isa.RZ)
		g.b.Branch(isa.BR, acc, endL)
		g.genExpr(x.Y)
		g.pos(x.Line)
		g.b.Op(isa.CMPNE, acc, acc, isa.RZ)
		g.b.Bind(endL)
		return
	}

	g.genExpr(x.X)
	g.pos(x.Line)
	g.b.Emit(isa.Instr{Op: isa.PUSH, Rs1: acc})
	g.genExpr(x.Y)
	g.pos(x.Line)
	g.b.Emit(isa.Instr{Op: isa.POP, Rd: sec})
	// Now: sec = X, acc = Y.
	switch x.Op {
	case "+":
		g.b.Op(isa.ADD, acc, sec, acc)
	case "-":
		g.b.Op(isa.SUB, acc, sec, acc)
	case "*":
		g.b.Op(isa.MUL, acc, sec, acc)
	case "/":
		g.b.Op(isa.DIV, acc, sec, acc)
	case "%":
		g.b.Op(isa.MOD, acc, sec, acc)
	case "&":
		g.b.Op(isa.AND, acc, sec, acc)
	case "|":
		g.b.Op(isa.OR, acc, sec, acc)
	case "^":
		g.b.Op(isa.XOR, acc, sec, acc)
	case "<<":
		g.b.Op(isa.SHL, acc, sec, acc)
	case ">>":
		g.b.Op(isa.SHR, acc, sec, acc)
	case "==":
		g.b.Op(isa.CMPEQ, acc, sec, acc)
	case "!=":
		g.b.Op(isa.CMPNE, acc, sec, acc)
	case "<":
		g.b.Op(isa.CMPLT, acc, sec, acc)
	case "<=":
		g.b.Op(isa.CMPLE, acc, sec, acc)
	case ">":
		g.b.Op(isa.CMPLT, acc, acc, sec)
	case ">=":
		g.b.Op(isa.CMPLE, acc, acc, sec)
	default:
		g.errf(x.Line, "unhandled operator %q", x.Op)
	}
}

// genAssign evaluates lhs = rhs, leaving the value in acc.
func (g *gen) genAssign(x *AssignExpr) {
	switch lhs := x.LHS.(type) {
	case *IdentExpr:
		g.genExpr(x.RHS)
		g.pos(x.Line)
		if lhs.sym == nil {
			g.errf(x.Line, "bad assignment target")
			return
		}
		g.storeScalar(lhs.sym)
	case *IndexExpr:
		g.genAddr(lhs)
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.PUSH, Rs1: acc})
		g.genExpr(x.RHS)
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.POP, Rd: sec})
		g.b.Store(sec, 0, acc)
	case *UnaryExpr:
		if lhs.Op != "*" {
			g.errf(x.Line, "bad assignment target")
			return
		}
		g.genExpr(lhs.X)
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.PUSH, Rs1: acc})
		g.genExpr(x.RHS)
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.POP, Rd: sec})
		g.b.Store(sec, 0, acc)
	default:
		g.errf(x.Line, "bad assignment target")
	}
}

// genSymAddr puts the address of a memory-resident symbol into acc.
func (g *gen) genSymAddr(s *symbol) {
	switch s.class {
	case scStack:
		g.b.Emit(isa.Instr{Op: isa.ADDI, Rd: acc, Rs1: isa.FP, Imm: -s.off})
	case scGlobal:
		g.b.MovImm(acc, s.addr)
	case scReg:
		g.errf(0, "internal: address of register-allocated %q", s.name)
	}
}

// genAddr evaluates the address of an lvalue into acc.
func (g *gen) genAddr(e Expr) {
	g.pos(e.exprLine())
	switch x := e.(type) {
	case *IdentExpr:
		if x.sym == nil {
			g.errf(x.Line, "cannot take address of %q", x.Name)
			return
		}
		g.genSymAddr(x.sym)
	case *IndexExpr:
		g.genExpr(x.X) // array decays to base address; pointer value as-is
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.PUSH, Rs1: acc})
		g.genExpr(x.Index)
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.POP, Rd: sec})
		g.b.Op(isa.ADD, acc, sec, acc)
	case *UnaryExpr:
		if x.Op != "*" {
			g.errf(x.Line, "cannot take address of this expression")
			return
		}
		g.genExpr(x.X)
	default:
		g.errf(e.exprLine(), "cannot take address of this expression")
	}
}

// genCall compiles builtins to instructions and real calls to the
// stack-based argument protocol.
func (g *gen) genCall(x *CallExpr) {
	switch x.Callee {
	case "read":
		g.b.Emit(isa.Instr{Op: isa.SYSCALL, Rd: acc, Rs1: isa.RZ, Imm: isa.SysRead})
		return
	case "write":
		g.genExpr(x.Args[0])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.SYSCALL, Rd: acc, Rs1: acc, Imm: isa.SysWrite})
		return
	case "time":
		g.b.Emit(isa.Instr{Op: isa.SYSCALL, Rd: acc, Rs1: isa.RZ, Imm: isa.SysTime})
		return
	case "rand":
		g.b.Emit(isa.Instr{Op: isa.SYSCALL, Rd: acc, Rs1: isa.RZ, Imm: isa.SysRand})
		return
	case "alloc":
		g.genExpr(x.Args[0])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.SYSCALL, Rd: acc, Rs1: acc, Imm: isa.SysAlloc})
		return
	case "tid":
		g.b.Emit(isa.Instr{Op: isa.SYSCALL, Rd: acc, Rs1: isa.RZ, Imm: isa.SysThreadID})
		return
	case "yield":
		g.b.Emit(isa.Instr{Op: isa.SYSCALL, Rd: acc, Rs1: isa.RZ, Imm: isa.SysYield})
		return
	case "assert":
		g.genExpr(x.Args[0])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.ASSERT, Rs1: acc})
		return
	case "halt":
		g.b.Emit(isa.Instr{Op: isa.HALT})
		return
	case "spawn":
		fnName := x.Args[0].(*IdentExpr).fn
		g.genExpr(x.Args[1])
		g.pos(x.Line)
		g.b.Spawn(acc, fnName, acc)
		return
	case "join":
		g.genExpr(x.Args[0])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.JOIN, Rs1: acc})
		return
	case "lock":
		g.genExpr(x.Args[0])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.LOCK, Rs1: acc})
		return
	case "unlock":
		g.genExpr(x.Args[0])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.UNLOCK, Rs1: acc})
		return
	case "wait":
		// wait(cv, m): WAIT releases m and blocks on cv; the LOCK that
		// follows reacquires m on wakeup (pthread_cond_wait semantics).
		g.genExpr(x.Args[0])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.PUSH, Rs1: acc})
		g.genExpr(x.Args[1])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.POP, Rd: sec})
		g.b.Emit(isa.Instr{Op: isa.WAIT, Rs1: sec, Rs2: acc})
		g.b.Emit(isa.Instr{Op: isa.LOCK, Rs1: acc})
		return
	case "signal":
		g.genExpr(x.Args[0])
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.SIGNAL, Rs1: acc})
		return
	}

	// Real call: evaluate arguments left to right, pushing each; pop them
	// into the argument registers in reverse; call; move R0 to acc.
	for _, a := range x.Args {
		g.genExpr(a)
		g.pos(x.Line)
		g.b.Emit(isa.Instr{Op: isa.PUSH, Rs1: acc})
	}
	for i := len(x.Args) - 1; i >= 0; i-- {
		g.b.Emit(isa.Instr{Op: isa.POP, Rd: isa.Arg0 + isa.Reg(i)})
	}
	if x.sym != nil {
		// Indirect call through a variable.
		switch x.sym.class {
		case scReg:
			g.b.Mov(aux, x.sym.reg)
		case scStack:
			g.b.Load(aux, isa.FP, -x.sym.off)
		case scGlobal:
			g.b.Load(aux, isa.RZ, x.sym.addr)
		}
		g.b.Emit(isa.Instr{Op: isa.CALLI, Rs1: aux})
	} else {
		g.b.Call(x.Callee)
	}
	g.b.Mov(acc, isa.RetReg)
}
