package cc

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

// run compiles src and executes it with a deterministic scheduler,
// returning the machine after it stops.
func run(t *testing.T, src string, input []int64) *vm.Machine {
	t.Helper()
	prog, err := CompileSource("test.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := vm.New(prog, vm.Config{
		Sched:    vm.NewRandomScheduler(42, 50),
		Env:      vm.NewNativeEnv(input, 7),
		MaxSteps: 5_000_000,
	})
	m.Run()
	return m
}

func wantOutput(t *testing.T, m *vm.Machine, want ...int64) {
	t.Helper()
	got := m.Output()
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v (stop=%v, failure=%v)", got, want, m.Stopped(), m.Failure())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
int main() {
	int a;
	int b;
	a = 6;
	b = 7;
	write(a * b);
	write(a + b * 2);
	write((a + b) * 2);
	write(100 / a);
	write(100 % a);
	write(-a);
	write(a << 2);
	write(1000 >> 3);
	write(a & 3);
	write(a | 9);
	write(a ^ 3);
	return 0;
}`, nil)
	wantOutput(t, m, 42, 20, 26, 16, 4, -6, 24, 125, 2, 15, 5)
}

func TestComparisonsAndLogic(t *testing.T) {
	m := run(t, `
int main() {
	int a = 5;
	write(a == 5);
	write(a != 5);
	write(a < 6);
	write(a <= 5);
	write(a > 5);
	write(a >= 5);
	write(!a);
	write(!0);
	write(a && 0);
	write(a && 3);
	write(0 || 0);
	write(0 || 9);
	return 0;
}`, nil)
	wantOutput(t, m, 1, 0, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1)
}

func TestShortCircuit(t *testing.T) {
	// The right operand must not be evaluated when short-circuited.
	m := run(t, `
int hits;
int bump() { hits = hits + 1; return 1; }
int main() {
	int r;
	r = 0 && bump();
	r = 1 || bump();
	write(hits);
	r = 1 && bump();
	r = 0 || bump();
	write(hits);
	write(r);
	return 0;
}`, nil)
	wantOutput(t, m, 0, 2, 1)
}

func TestControlFlow(t *testing.T) {
	m := run(t, `
int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) { continue; }
		sum += i;
	}
	write(sum);
	i = 0;
	while (1) {
		i++;
		if (i >= 5) { break; }
	}
	write(i);
	return 0;
}`, nil)
	wantOutput(t, m, 25, 5)
}

func TestSwitchDense(t *testing.T) {
	src := `
int classify(int c) {
	int w = -1;
	switch (c) {
	case 0: w = 100; break;
	case 1: w = 101; break;
	case 2: w = 102; break;
	case 5: w = 105; break;
	default: w = 999; break;
	}
	return w;
}
int main() {
	write(classify(0));
	write(classify(1));
	write(classify(2));
	write(classify(3));
	write(classify(5));
	write(classify(-7));
	write(classify(100));
	return 0;
}`
	prog, err := CompileSource("sw.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// The dense switch must compile to an indirect jump via a jump table.
	foundJMPI := false
	for _, in := range prog.Code {
		if in.Op == isa.JMPI {
			foundJMPI = true
		}
	}
	if !foundJMPI {
		t.Error("dense switch did not produce a JMPI")
	}
	if len(prog.JumpTables) != 1 {
		t.Errorf("got %d jump tables, want 1", len(prog.JumpTables))
	}
	m := vm.New(prog, vm.Config{MaxSteps: 100000})
	m.Run()
	wantOutput(t, m, 100, 101, 102, 999, 105, 999, 999)
}

func TestSwitchSparse(t *testing.T) {
	m := run(t, `
int main() {
	int v = 1000;
	int r;
	switch (v) {
	case 1: r = 1; break;
	case 1000: r = 2; break;
	case 100000: r = 3; break;
	}
	write(r);
	return 0;
}`, nil)
	wantOutput(t, m, 2)
}

func TestSwitchFallthrough(t *testing.T) {
	m := run(t, `
int main() {
	int r = 0;
	switch (1) {
	case 0: r += 1;
	case 1: r += 10;
	case 2: r += 100;
	default: r += 1000;
	}
	write(r);
	return 0;
}`, nil)
	wantOutput(t, m, 1110)
}

func TestArraysAndPointers(t *testing.T) {
	m := run(t, `
int g[8];
int main() {
	int i;
	int local[4];
	int *p;
	int x = 5;
	for (i = 0; i < 8; i++) { g[i] = i * i; }
	write(g[3]);
	local[0] = 11;
	local[3] = 44;
	write(local[0] + local[3]);
	p = &x;
	*p = 77;
	write(x);
	p = &g[2];
	write(*p);
	p = g;
	write(p[7]);
	return 0;
}`, nil)
	wantOutput(t, m, 9, 55, 77, 4, 49)
}

func TestGlobalInit(t *testing.T) {
	m := run(t, `
int a = 42;
int tab[4] = {10, 20, 30};
int main() {
	write(a);
	write(tab[0] + tab[1] + tab[2] + tab[3]);
	return 0;
}`, nil)
	wantOutput(t, m, 42, 60)
}

func TestFunctionsAndRecursion(t *testing.T) {
	m := run(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
int add3(int a, int b, int c) { return a + b + c; }
int main() {
	write(fib(10));
	write(add3(1, 2, 3));
	return 0;
}`, nil)
	wantOutput(t, m, 55, 6)
}

func TestIndirectCall(t *testing.T) {
	m := run(t, `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int main() {
	int f;
	f = twice;
	write(f(10));
	f = thrice;
	write(f(10));
	return 0;
}`, nil)
	wantOutput(t, m, 20, 30)
}

func TestReadWriteSyscalls(t *testing.T) {
	m := run(t, `
int main() {
	int a = read();
	int b = read();
	write(a + b);
	write(read());
	return 0;
}`, []int64{3, 4, 99})
	wantOutput(t, m, 7, 99)
}

func TestThreadsAndLocks(t *testing.T) {
	m := run(t, `
int counter;
int mtx;
int worker(int n) {
	int i;
	for (i = 0; i < n; i++) {
		lock(&mtx);
		counter = counter + 1;
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t1;
	int t2;
	t1 = spawn(worker, 100);
	t2 = spawn(worker, 100);
	worker(50);
	join(t1);
	join(t2);
	write(counter);
	return 0;
}`, nil)
	wantOutput(t, m, 250)
	if m.Stopped() != vm.StopExit {
		t.Errorf("stop = %v, want exit", m.Stopped())
	}
}

func TestAssertFailure(t *testing.T) {
	m := run(t, `
int main() {
	int x = 1;
	assert(x == 1);
	assert(x == 2);
	write(123);
	return 0;
}`, nil)
	if m.Stopped() != vm.StopFailure {
		t.Fatalf("stop = %v, want failure", m.Stopped())
	}
	if len(m.Output()) != 0 {
		t.Errorf("output %v, want none", m.Output())
	}
}

func TestAssertPass(t *testing.T) {
	m := run(t, `
int main() {
	assert(1);
	write(1);
	return 0;
}`, nil)
	wantOutput(t, m, 1)
}

func TestAlloc(t *testing.T) {
	m := run(t, `
int main() {
	int *p;
	int *q;
	p = alloc(10);
	q = alloc(10);
	p[0] = 5;
	q[0] = 6;
	write(p[0] + q[0]);
	write(q - p);
	return 0;
}`, nil)
	wantOutput(t, m, 11, 10)
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined var", `int main() { x = 1; return 0; }`},
		{"undefined func", `int main() { foo(); return 0; }`},
		{"dup global", "int a; int a;\nint main() { return 0; }"},
		{"no main", `int f() { return 0; }`},
		{"arity", `int f(int a) { return a; } int main() { return f(1,2); }`},
		{"assign to array", `int a[3]; int main() { a = 1; return 0; }`},
		{"bad spawn", `int main() { spawn(1, 2); return 0; }`},
		{"dup case", `int main() { switch(1){ case 1: break; case 1: break; } return 0; }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := CompileSource("e.c", tc.src); err == nil {
				t.Errorf("expected compile error for %q", tc.name)
			}
		})
	}
}

func TestCalleeSavedAcrossCalls(t *testing.T) {
	// Register-allocated locals must survive calls (the callee saves and
	// restores them).
	m := run(t, `
int clobber() {
	int a = 111;
	int b = 222;
	int c = 333;
	int d = 444;
	return a + b + c + d;
}
int main() {
	int w = 1;
	int x = 2;
	int y = 3;
	int z = 4;
	clobber();
	write(w + x + y + z);
	return 0;
}`, nil)
	wantOutput(t, m, 10)
}

func TestPrologueHasSaveRestorePairs(t *testing.T) {
	prog, err := CompileSource("p.c", `
int f(int a) {
	int x = a;
	int y = a * 2;
	return x + y;
}
int main() { write(f(3)); return 0; }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fn := prog.FuncByName("f")
	if fn == nil {
		t.Fatal("no function f")
	}
	pushes := 0
	pops := 0
	for pc := fn.Entry; pc < fn.End; pc++ {
		switch prog.Code[pc].Op {
		case isa.PUSH:
			pushes++
		case isa.POP:
			pops++
		}
	}
	// push fp + 3 callee-saved (a, x, y) = 4 saves minimum.
	if pushes < 4 || pops < 4 {
		t.Errorf("expected >=4 push/pop pairs in f, got %d/%d", pushes, pops)
	}
}

func TestDoWhile(t *testing.T) {
	m := run(t, `
int main() {
	int i = 10;
	int n = 0;
	do {
		n = n + 1;
		i = i - 1;
	} while (i > 7);
	write(n);
	// Body always runs at least once.
	int j = 0;
	do { j = j + 100; } while (0);
	write(j);
	// break and continue inside do-while.
	int k = 0;
	int c = 0;
	do {
		k = k + 1;
		if (k == 2) { continue; }
		if (k >= 5) { break; }
		c = c + 1;
	} while (1);
	write(k);
	write(c);
	return 0;
}`, nil)
	wantOutput(t, m, 3, 100, 5, 3)
}

func TestTernary(t *testing.T) {
	m := run(t, `
int pick(int c) { return c > 10 ? 111 : 222; }
int main() {
	write(pick(20));
	write(pick(5));
	int x = 3;
	// Nested / right-associative.
	write(x == 1 ? 10 : x == 3 ? 30 : 40);
	// Ternary in compound contexts.
	int arr[4];
	arr[x > 0 ? 0 : 1] = 9;
	write(arr[0]);
	write((x > 2 ? 1 : 0) + (x > 9 ? 1 : 0));
	return 0;
}`, nil)
	wantOutput(t, m, 111, 222, 30, 9, 1)
}

func TestTernaryShortCircuits(t *testing.T) {
	// Only the selected arm may evaluate.
	m := run(t, `
int hits;
int bump(int v) { hits = hits + 1; return v; }
int main() {
	int r = 1 ? bump(5) : bump(6);
	write(r);
	write(hits);
	r = 0 ? bump(7) : bump(8);
	write(r);
	write(hits);
	return 0;
}`, nil)
	wantOutput(t, m, 5, 1, 8, 2)
}

func TestForWithDeclaration(t *testing.T) {
	m := run(t, `
int main() {
	int sum = 0;
	for (int i = 0; i < 5; i++) {
		sum += i;
	}
	write(sum);
	// Each loop's variable is scoped to its statement.
	for (int i = 10; i < 12; i++) { sum += i; }
	write(sum);
	return 0;
}`, nil)
	wantOutput(t, m, 10, 31)
}

func TestForDeclScoping(t *testing.T) {
	// The loop variable must not leak out of the for statement... mini-C
	// scoping attaches it to the enclosing block, matching C89 practice
	// of reuse, so redeclaration in a sibling loop within one block is
	// the compatibility case we guarantee above. Referencing an
	// undeclared variable still fails:
	if _, err := CompileSource("s.c", `
int main() {
	for (int i = 0; i < 3; i++) { }
	return j;
}`); err == nil {
		t.Error("undefined variable accepted")
	}
}
