package cc

// AST definitions. Every node carries its source line for the debug line
// table.

// File is a parsed translation unit.
type File struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a variable: a scalar ("int x"), a pointer ("int *p") or
// an array ("int a[10]"), optionally with constant initialisers.
type VarDecl struct {
	Name    string
	IsArray bool
	Size    int64   // array length (1 for scalars)
	Init    []int64 // constant initialisers (globals)
	InitX   Expr    // expression initialiser (local scalars)
	Line    int32

	// Filled in by the checker.
	sym *symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []*VarDecl
	Body   *BlockStmt
	Line   int32

	locals []*symbol // all locals incl. params, filled by the checker
}

// Statements.
type (
	// BlockStmt is { ... }.
	BlockStmt struct {
		Stmts []Stmt
		Line  int32
	}
	// DeclStmt declares locals.
	DeclStmt struct {
		Decls []*VarDecl
		Line  int32
	}
	// ExprStmt evaluates an expression for effect (calls, assignments).
	ExprStmt struct {
		X    Expr
		Line int32
	}
	// IfStmt with optional else.
	IfStmt struct {
		Cond Expr
		Then *BlockStmt
		Else Stmt // *BlockStmt, *IfStmt or nil
		Line int32
	}
	// WhileStmt loop.
	WhileStmt struct {
		Cond Expr
		Body *BlockStmt
		Line int32
	}
	// DoWhileStmt runs the body at least once.
	DoWhileStmt struct {
		Body *BlockStmt
		Cond Expr
		Line int32
	}
	// ForStmt loop; any clause may be nil.
	ForStmt struct {
		Init Stmt
		Cond Expr
		Post Stmt
		Body *BlockStmt
		Line int32
	}
	// SwitchStmt with cases; compiled to a jump table when dense.
	SwitchStmt struct {
		Cond  Expr
		Cases []*CaseClause
		Line  int32
	}
	// CaseClause is one case (or default, when IsDefault) arm.
	CaseClause struct {
		Val       int64
		IsDefault bool
		Body      []Stmt
		Line      int32
	}
	// BreakStmt exits the innermost loop or switch.
	BreakStmt struct{ Line int32 }
	// ContinueStmt continues the innermost loop.
	ContinueStmt struct{ Line int32 }
	// ReturnStmt with optional value.
	ReturnStmt struct {
		X    Expr
		Line int32
	}
)

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtLine() int32 }

func (s *BlockStmt) stmtLine() int32    { return s.Line }
func (s *DeclStmt) stmtLine() int32     { return s.Line }
func (s *ExprStmt) stmtLine() int32     { return s.Line }
func (s *IfStmt) stmtLine() int32       { return s.Line }
func (s *WhileStmt) stmtLine() int32    { return s.Line }
func (s *DoWhileStmt) stmtLine() int32  { return s.Line }
func (s *ForStmt) stmtLine() int32      { return s.Line }
func (s *SwitchStmt) stmtLine() int32   { return s.Line }
func (s *BreakStmt) stmtLine() int32    { return s.Line }
func (s *ContinueStmt) stmtLine() int32 { return s.Line }
func (s *ReturnStmt) stmtLine() int32   { return s.Line }

// Expressions.
type (
	// NumExpr is an integer literal.
	NumExpr struct {
		Val  int64
		Line int32
	}
	// IdentExpr names a variable or function.
	IdentExpr struct {
		Name string
		Line int32

		sym *symbol // variable reference, filled by the checker
		fn  string  // non-empty when the name resolves to a function
	}
	// IndexExpr is a[i].
	IndexExpr struct {
		X, Index Expr
		Line     int32
	}
	// UnaryExpr: op one of - ! * & ~.
	UnaryExpr struct {
		Op   string
		X    Expr
		Line int32
	}
	// BinExpr: arithmetic, comparison, logical (&& and || short-circuit).
	BinExpr struct {
		Op   string
		X, Y Expr
		Line int32
	}
	// AssignExpr: lhs = rhs (also +=, -= etc. desugared by the parser).
	AssignExpr struct {
		LHS, RHS Expr
		Line     int32
	}
	// CondExpr is the ternary conditional c ? a : b.
	CondExpr struct {
		Cond, Then, Else Expr
		Line             int32
	}
	// CallExpr calls a named function, a builtin, or (when the callee
	// resolves to a variable) an indirect function pointer.
	CallExpr struct {
		Callee string
		Args   []Expr
		Line   int32

		sym *symbol // set when the call is through a variable (indirect)
	}
)

// Expr is implemented by all expression nodes.
type Expr interface{ exprLine() int32 }

func (e *NumExpr) exprLine() int32    { return e.Line }
func (e *IdentExpr) exprLine() int32  { return e.Line }
func (e *IndexExpr) exprLine() int32  { return e.Line }
func (e *UnaryExpr) exprLine() int32  { return e.Line }
func (e *BinExpr) exprLine() int32    { return e.Line }
func (e *AssignExpr) exprLine() int32 { return e.Line }
func (e *CondExpr) exprLine() int32   { return e.Line }
func (e *CallExpr) exprLine() int32   { return e.Line }
