package cc

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/vm"
)

// TestExpressionSemanticsMatchReference cross-checks compiled expression
// evaluation against a direct Go-side evaluator: random expression trees
// over variables with known values must produce identical results when
// compiled to machine code and when interpreted structurally.

// refExpr is a tiny expression AST with a Go evaluator and a mini-C
// printer.
type refExpr interface {
	eval(env map[string]int64) int64
	src() string
}

type refNum int64

func (n refNum) eval(map[string]int64) int64 { return int64(n) }
func (n refNum) src() string                 { return fmt.Sprintf("(%d)", int64(n)) }

type refVar string

func (v refVar) eval(env map[string]int64) int64 { return env[string(v)] }
func (v refVar) src() string                     { return string(v) }

type refBin struct {
	op   string
	l, r refExpr
}

func (b refBin) eval(env map[string]int64) int64 {
	l, r := b.l.eval(env), b.r.eval(env)
	switch b.op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		return l / r // divisor construction guarantees non-zero
	case "%":
		return l % r
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<<":
		return l << uint64(r&63)
	case ">>":
		return int64(uint64(l) >> uint64(r&63))
	case "==":
		return b2(l == r)
	case "!=":
		return b2(l != r)
	case "<":
		return b2(l < r)
	case "<=":
		return b2(l <= r)
	case ">":
		return b2(l > r)
	case ">=":
		return b2(l >= r)
	case "&&":
		return b2(l != 0 && r != 0)
	case "||":
		return b2(l != 0 || r != 0)
	}
	panic("bad op " + b.op)
}

func (b refBin) src() string {
	return fmt.Sprintf("(%s %s %s)", b.l.src(), b.op, b.r.src())
}

type refCond struct{ c, a, b refExpr }

func (t refCond) eval(env map[string]int64) int64 {
	if t.c.eval(env) != 0 {
		return t.a.eval(env)
	}
	return t.b.eval(env)
}

func (t refCond) src() string {
	return fmt.Sprintf("(%s ? %s : %s)", t.c.src(), t.a.src(), t.b.src())
}

type refNeg struct{ x refExpr }

func (n refNeg) eval(env map[string]int64) int64 { return -n.x.eval(env) }
func (n refNeg) src() string                     { return fmt.Sprintf("(-%s)", n.x.src()) }

type refNot struct{ x refExpr }

func (n refNot) eval(env map[string]int64) int64 { return b2(n.x.eval(env) == 0) }
func (n refNot) src() string                     { return fmt.Sprintf("(!%s)", n.x.src()) }

func b2(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

type exprRng struct{ s uint64 }

func (r *exprRng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *exprRng) intn(n int) int { return int(r.next() % uint64(n)) }

var refVars = []string{"va", "vb", "vc", "vd"}

// genRefExpr builds a random expression of bounded depth. Shift amounts
// are small constants; divisors are non-zero constants.
func genRefExpr(r *exprRng, depth int) refExpr {
	if depth <= 0 || r.intn(4) == 0 {
		if r.intn(2) == 0 {
			return refNum(int64(r.intn(41)) - 20)
		}
		return refVar(refVars[r.intn(len(refVars))])
	}
	switch r.intn(12) {
	case 0:
		return refNeg{genRefExpr(r, depth-1)}
	case 1:
		return refNot{genRefExpr(r, depth-1)}
	case 2:
		return refCond{genRefExpr(r, depth-1), genRefExpr(r, depth-1), genRefExpr(r, depth-1)}
	case 3:
		return refBin{"/", genRefExpr(r, depth-1), refNum(int64(1 + r.intn(9)))}
	case 4:
		return refBin{"%", genRefExpr(r, depth-1), refNum(int64(1 + r.intn(13)))}
	case 5:
		op := []string{"<<", ">>"}[r.intn(2)]
		return refBin{op, genRefExpr(r, depth-1), refNum(int64(r.intn(8)))}
	default:
		ops := []string{"+", "-", "*", "&", "|", "^", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
		return refBin{ops[r.intn(len(ops))], genRefExpr(r, depth-1), genRefExpr(r, depth-1)}
	}
}

func TestExpressionSemanticsMatchReference(t *testing.T) {
	const perProgram = 20
	for seed := uint64(1); seed <= 30; seed++ {
		r := &exprRng{s: seed*0x9e3779b97f4a7c15 + 1}
		env := map[string]int64{}
		for _, v := range refVars {
			env[v] = int64(r.intn(2001)) - 1000
		}

		var exprs []refExpr
		var want []int64
		var body strings.Builder
		for _, v := range refVars {
			fmt.Fprintf(&body, "\tint %s = %d;\n", v, env[v])
		}
		for i := 0; i < perProgram; i++ {
			e := genRefExpr(r, 4)
			exprs = append(exprs, e)
			want = append(want, e.eval(env))
			fmt.Fprintf(&body, "\twrite(%s);\n", e.src())
		}
		src := fmt.Sprintf("int main() {\n%s\treturn 0;\n}\n", body.String())

		prog, err := CompileSource("x.c", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		m := vm.New(prog, vm.Config{MaxSteps: 1_000_000})
		if m.Run() != vm.StopExit {
			t.Fatalf("seed %d: stop = %v (%v)", seed, m.Stopped(), m.Failure())
		}
		got := m.Output()
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d outputs, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d expr %d: compiled %d, reference %d\nexpr: %s",
					seed, i, got[i], want[i], exprs[i].src())
			}
		}
	}
}
