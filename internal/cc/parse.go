package cc

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	file string
	toks []token
	pos  int
}

// Parse parses mini-C source into an AST.
func Parse(file, src string) (*File, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	f := &File{Name: file}
	for !p.at(tEOF, "") {
		if err := p.parseTopLevel(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (p *parser) tok() token  { return p.toks[p.pos] }
func (p *parser) line() int32 { return p.tok().line }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.tok()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.tok()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, fmt.Errorf("%s:%d: expected %q, got %q", p.file, t.line, want, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.line(), fmt.Sprintf(format, args...))
}

// parseTopLevel parses one global declaration or function definition.
func (p *parser) parseTopLevel(f *File) error {
	if !p.accept(tKeyword, "int") && !p.accept(tKeyword, "void") {
		return p.errf("expected declaration, got %q", p.tok().text)
	}
	p.accept(tPunct, "*") // pointer return/var: same word type
	name, err := p.expect(tIdent, "")
	if err != nil {
		return err
	}
	if p.at(tPunct, "(") {
		fn, err := p.parseFunc(name.text, name.line)
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, fn)
		return nil
	}
	// Global variable(s).
	for {
		d, err := p.parseVarRest(name.text, name.line)
		if err != nil {
			return err
		}
		f.Globals = append(f.Globals, d)
		if p.accept(tPunct, ",") {
			p.accept(tPunct, "*")
			name, err = p.expect(tIdent, "")
			if err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err = p.expect(tPunct, ";")
	return err
}

// parseVarRest parses the rest of one variable declarator after the name:
// optional [size] and optional = init.
func (p *parser) parseVarRest(name string, line int32) (*VarDecl, error) {
	d := &VarDecl{Name: name, Size: 1, Line: line}
	if p.accept(tPunct, "[") {
		n, err := p.expect(tNumber, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		if n.num <= 0 {
			return nil, fmt.Errorf("%s:%d: bad array size %d", p.file, line, n.num)
		}
		d.IsArray = true
		d.Size = n.num
	}
	if p.accept(tPunct, "=") {
		if d.IsArray {
			if _, err := p.expect(tPunct, "{"); err != nil {
				return nil, err
			}
			for !p.accept(tPunct, "}") {
				neg := p.accept(tPunct, "-")
				n, err := p.expect(tNumber, "")
				if err != nil {
					return nil, err
				}
				v := n.num
				if neg {
					v = -v
				}
				d.Init = append(d.Init, v)
				if !p.accept(tPunct, ",") && !p.at(tPunct, "}") {
					return nil, p.errf("expected ',' or '}' in initialiser")
				}
			}
			if int64(len(d.Init)) > d.Size {
				return nil, fmt.Errorf("%s:%d: too many initialisers", p.file, line)
			}
		} else {
			neg := p.accept(tPunct, "-")
			n, err := p.expect(tNumber, "")
			if err != nil {
				return nil, err
			}
			v := n.num
			if neg {
				v = -v
			}
			d.Init = []int64{v}
		}
	}
	return d, nil
}

// parseFunc parses a function definition after its name.
func (p *parser) parseFunc(name string, line int32) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Line: line}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	if !p.accept(tPunct, ")") {
		if p.accept(tKeyword, "void") {
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
		} else {
			for {
				if !p.accept(tKeyword, "int") {
					return nil, p.errf("expected parameter type")
				}
				p.accept(tPunct, "*")
				pn, err := p.expect(tIdent, "")
				if err != nil {
					return nil, err
				}
				fn.Params = append(fn.Params, &VarDecl{Name: pn.text, Size: 1, Line: pn.line})
				if p.accept(tPunct, ",") {
					continue
				}
				break
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseBlock parses { stmt* }.
func (p *parser) parseBlock() (*BlockStmt, error) {
	l := p.line()
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: l}
	for !p.accept(tPunct, "}") {
		if p.at(tEOF, "") {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// parseStmt parses one statement.
func (p *parser) parseStmt() (Stmt, error) {
	l := p.line()
	switch {
	case p.at(tPunct, "{"):
		return p.parseBlock()

	case p.accept(tKeyword, "int"):
		ds := &DeclStmt{Line: l}
		for {
			p.accept(tPunct, "*")
			name, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			d := &VarDecl{Name: name.text, Size: 1, Line: name.line}
			if p.accept(tPunct, "[") {
				n, err := p.expect(tNumber, "")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tPunct, "]"); err != nil {
					return nil, err
				}
				if n.num <= 0 {
					return nil, p.errf("bad array size %d", n.num)
				}
				d.IsArray = true
				d.Size = n.num
			} else if p.accept(tPunct, "=") {
				x, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				d.InitX = x
			}
			ds.Decls = append(ds.Decls, d)
			if p.accept(tPunct, ",") {
				continue
			}
			break
		}
		_, err := p.expect(tPunct, ";")
		return ds, err

	case p.accept(tKeyword, "if"):
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: l}
		if p.accept(tKeyword, "else") {
			if p.at(tKeyword, "if") {
				p.pos++
				// else if: re-parse as nested if by rewinding the "if".
				p.pos--
				els, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				st.Else = els
			} else {
				els, err := p.parseStmtAsBlock()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil

	case p.accept(tKeyword, "do"):
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tKeyword, "while"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond, Line: l}, nil

	case p.accept(tKeyword, "while"):
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: l}, nil

	case p.accept(tKeyword, "for"):
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		st := &ForStmt{Line: l}
		if p.at(tKeyword, "int") {
			// C99-style loop-variable declaration: for (int i = 0; ...).
			p.pos++
			name, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			d := &VarDecl{Name: name.text, Size: 1, Line: name.line}
			if p.accept(tPunct, "=") {
				x, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				d.InitX = x
			}
			st.Init = &DeclStmt{Decls: []*VarDecl{d}, Line: l}
		} else if !p.at(tPunct, ";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: x, Line: l}
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tPunct, ";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tPunct, ")") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Post = &ExprStmt{X: x, Line: x.exprLine()}
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil

	case p.accept(tKeyword, "switch"):
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "{"); err != nil {
			return nil, err
		}
		st := &SwitchStmt{Cond: cond, Line: l}
		for !p.accept(tPunct, "}") {
			cl := &CaseClause{Line: p.line()}
			if p.accept(tKeyword, "case") {
				neg := p.accept(tPunct, "-")
				n, err := p.expect(tNumber, "")
				if err != nil {
					return nil, err
				}
				cl.Val = n.num
				if neg {
					cl.Val = -cl.Val
				}
			} else if p.accept(tKeyword, "default") {
				cl.IsDefault = true
			} else {
				return nil, p.errf("expected case or default")
			}
			if _, err := p.expect(tPunct, ":"); err != nil {
				return nil, err
			}
			for !p.at(tKeyword, "case") && !p.at(tKeyword, "default") && !p.at(tPunct, "}") {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				cl.Body = append(cl.Body, s)
			}
			st.Cases = append(st.Cases, cl)
		}
		return st, nil

	case p.accept(tKeyword, "break"):
		_, err := p.expect(tPunct, ";")
		return &BreakStmt{Line: l}, err

	case p.accept(tKeyword, "continue"):
		_, err := p.expect(tPunct, ";")
		return &ContinueStmt{Line: l}, err

	case p.accept(tKeyword, "return"):
		st := &ReturnStmt{Line: l}
		if !p.at(tPunct, ";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = x
		}
		_, err := p.expect(tPunct, ";")
		return st, err

	case p.accept(tPunct, ";"):
		return &BlockStmt{Line: l}, nil

	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Line: l}, nil
	}
}

// parseStmtAsBlock parses a statement, wrapping non-blocks in a block.
func (p *parser) parseStmtAsBlock() (*BlockStmt, error) {
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if b, ok := s.(*BlockStmt); ok {
		return b, nil
	}
	return &BlockStmt{Stmts: []Stmt{s}, Line: s.stmtLine()}, nil
}

// Expression parsing: assignment (right-assoc) over a precedence climber.

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	l := p.line()
	switch {
	case p.accept(tPunct, "="):
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{LHS: lhs, RHS: rhs, Line: l}, nil
	case p.at(tPunct, "+=") || p.at(tPunct, "-=") || p.at(tPunct, "*=") ||
		p.at(tPunct, "/=") || p.at(tPunct, "%="):
		op := p.tok().text[:1]
		p.pos++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		// Desugar: lhs op= rhs  =>  lhs = lhs op rhs. The LHS is
		// duplicated; safe because mini-C lvalues have no side effects.
		return &AssignExpr{LHS: lhs, RHS: &BinExpr{Op: op, X: lhs, Y: rhs, Line: l}, Line: l}, nil
	}
	return lhs, nil
}

// parseTernary parses c ? a : b (right-associative) above the binary
// operators.
func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	l := p.line()
	if !p.accept(tPunct, "?") {
		return cond, nil
	}
	thenX, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ":"); err != nil {
		return nil, err
	}
	elseX, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: thenX, Else: elseX, Line: l}, nil
}

// binary operator precedence, loosest first.
var precTable = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := precTable[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.tok()
	if t.kind == tPunct {
		switch t.text {
		case "-", "!", "*", "&":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
		case "++", "--":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			op := "+"
			if t.text == "--" {
				op = "-"
			}
			one := &NumExpr{Val: 1, Line: t.line}
			return &AssignExpr{LHS: x, RHS: &BinExpr{Op: op, X: x, Y: one, Line: t.line}, Line: t.line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		l := p.line()
		switch {
		case p.accept(tPunct, "["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx, Line: l}
		case p.at(tPunct, "++") || p.at(tPunct, "--"):
			// Postfix inc/dec as statement-level sugar: value semantics
			// are pre-increment, which the workloads only use for effect.
			op := "+"
			if p.tok().text == "--" {
				op = "-"
			}
			p.pos++
			one := &NumExpr{Val: 1, Line: l}
			x = &AssignExpr{LHS: x, RHS: &BinExpr{Op: op, X: x, Y: one, Line: l}, Line: l}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.tok()
	switch {
	case t.kind == tNumber:
		p.pos++
		return &NumExpr{Val: t.num, Line: t.line}, nil
	case t.kind == tIdent:
		p.pos++
		if p.accept(tPunct, "(") {
			call := &CallExpr{Callee: t.text, Line: t.line}
			for !p.accept(tPunct, ")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(tPunct, ",") && !p.at(tPunct, ")") {
					return nil, p.errf("expected ',' or ')' in call")
				}
			}
			return call, nil
		}
		return &IdentExpr{Name: t.text, Line: t.line}, nil
	case p.accept(tPunct, "("):
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
