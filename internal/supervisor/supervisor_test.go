package supervisor

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/pinball"
	"repro/internal/pinplay"
)

func TestRunFirstTrySuccess(t *testing.T) {
	calls := 0
	rep, err := Run(PhaseReplay, Options{Sleep: func(time.Duration) { t.Fatal("slept") }}, func() error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if rep.Recovered || len(rep.Attempts) != 0 || rep.Kind != "" {
		t.Fatalf("report: %+v", rep)
	}
}

func TestRunRetriesWithBackoff(t *testing.T) {
	var sleeps []time.Duration
	fails := 2
	rep, err := Run(PhaseSlice, Options{
		MaxAttempts: 5,
		Backoff:     10 * time.Millisecond,
		BackoffMax:  15 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}, func() error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Recovered || len(rep.Attempts) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	// 10ms, then doubled-and-capped to 15ms.
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want %v", sleeps, want)
	}
}

// TestRunBackoffGrowsExponentially pins the retry schedule: each sleep
// doubles from Backoff until BackoffMax caps it.
func TestRunBackoffGrowsExponentially(t *testing.T) {
	var sleeps []time.Duration
	_, err := Run(PhaseReplay, Options{
		MaxAttempts: 6,
		Backoff:     10 * time.Millisecond,
		BackoffMax:  time.Minute, // never caps in this run
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}, func() error { return errors.New("transient") })
	if err == nil {
		t.Fatal("want failure after exhausting attempts")
	}
	want := []time.Duration{10, 20, 40, 80, 160}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times, want %d: %v", len(sleeps), len(want), sleeps)
	}
	for i, w := range want {
		if sleeps[i] != w*time.Millisecond {
			t.Errorf("sleep %d = %v, want %v", i, sleeps[i], w*time.Millisecond)
		}
	}
}

// TestRunBackoffJitterBounds drives the jitter's uniform source through
// its extremes and checks every sleep lands in [b·(1−J), b·(1+J)] while
// the exponential base itself keeps doubling undisturbed.
func TestRunBackoffJitterBounds(t *testing.T) {
	const jitter = 0.5
	randSeq := []float64{0, 0.999999, 0.5, 0.25} // min, ~max, midpoint, quarter
	ri := 0
	var sleeps []time.Duration
	_, err := Run(PhaseReplay, Options{
		MaxAttempts: 5,
		Backoff:     100 * time.Millisecond,
		BackoffMax:  time.Minute,
		Jitter:      jitter,
		Rand:        func() float64 { r := randSeq[ri]; ri++; return r },
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}, func() error { return errors.New("transient") })
	if err == nil {
		t.Fatal("want failure after exhausting attempts")
	}
	bases := []time.Duration{100, 200, 400, 800}
	if len(sleeps) != len(bases) {
		t.Fatalf("slept %d times, want %d: %v", len(sleeps), len(bases), sleeps)
	}
	for i, base := range bases {
		b := base * time.Millisecond
		lo := time.Duration(float64(b) * (1 - jitter))
		hi := time.Duration(float64(b) * (1 + jitter))
		if sleeps[i] < lo || sleeps[i] > hi {
			t.Errorf("sleep %d = %v outside jitter bounds [%v, %v]", i, sleeps[i], lo, hi)
		}
	}
	// rand() = 0 maps to the lower bound exactly; midpoint to the base.
	if sleeps[0] != 50*time.Millisecond {
		t.Errorf("rand=0 sleep = %v, want 50ms (b·(1−J))", sleeps[0])
	}
	if sleeps[2] != 400*time.Millisecond {
		t.Errorf("rand=0.5 sleep = %v, want the undisturbed 400ms base", sleeps[2])
	}
}

// TestRunPermanentFailureNeverRetried: a permanent failure — a file
// that is not a pinball — must fail on the first attempt with no sleeps
// and no retry callbacks, whatever the retry budget says.
func TestRunPermanentFailureNeverRetried(t *testing.T) {
	calls := 0
	_, err := Run(PhaseReplay, Options{
		MaxAttempts: 10,
		Jitter:      0.5,
		Sleep:       func(time.Duration) { t.Fatal("slept on a permanent failure") },
		OnRetry:     func(int, error) { t.Fatal("retried a permanent failure") },
	}, func() error {
		calls++
		return fmt.Errorf("load: %w", pinball.ErrNotPinball)
	})
	var se *SessionError
	if !errors.As(err, &se) || se.Kind != KindCorrupt || se.Attempts != 1 || calls != 1 {
		t.Fatalf("err=%v calls=%d, want one corrupt attempt", err, calls)
	}
}

func TestRunExhaustsAttempts(t *testing.T) {
	var retries []int
	calls := 0
	boom := errors.New("always broken")
	rep, err := Run(PhaseReplay, Options{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
		OnRetry:     func(n int, _ error) { retries = append(retries, n) },
	}, func() error {
		calls++
		return boom
	})
	var se *SessionError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v (%T), want *SessionError", err, err)
	}
	if se.Phase != PhaseReplay || se.Kind != KindError || se.Attempts != 3 || !errors.Is(err, boom) {
		t.Fatalf("SessionError: %+v", se)
	}
	if calls != 3 || len(retries) != 2 {
		t.Fatalf("calls=%d retries=%v", calls, retries)
	}
	if rep.Kind != KindError || rep.Failure == "" || len(rep.Attempts) != 3 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestRunFailsFastOnNonRetryable checks the fail-fast kinds: corrupt
// files and exhausted limits are deterministic, so retrying wastes time.
func TestRunFailsFastOnNonRetryable(t *testing.T) {
	for _, tc := range []struct {
		err  error
		kind Kind
	}{
		{fmt.Errorf("load: %w", pinball.ErrCorrupt), KindCorrupt},
		{fmt.Errorf("load: %w", pinball.ErrUnsalvageable), KindCorrupt},
		{fmt.Errorf("replay: %w", pinplay.ErrLimit), KindLimit},
	} {
		calls := 0
		_, err := Run(PhaseReplay, Options{MaxAttempts: 3, Sleep: func(time.Duration) { t.Fatal("slept") }},
			func() error { calls++; return tc.err })
		var se *SessionError
		if !errors.As(err, &se) || se.Kind != tc.kind || calls != 1 {
			t.Errorf("%v: kind=%v calls=%d, want %v after 1 attempt", tc.err, err, calls, tc.kind)
		}
	}
}

func TestRunIsolatesPanic(t *testing.T) {
	_, err := Run(PhaseRecord, Options{MaxAttempts: 2, Sleep: func(time.Duration) {}}, func() error {
		panic("tracer exploded")
	})
	var se *SessionError
	if !errors.As(err, &se) || se.Kind != KindPanic || se.Attempts != 2 {
		t.Fatalf("error = %v, want panic SessionError after 2 attempts", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("no PanicError in chain: %v", err)
	}
	if fmt.Sprint(pe.Value) != "tracer exploded" || !strings.Contains(string(pe.Stack), "supervisor") {
		t.Fatalf("PanicError value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
}

func TestRunWatchdogFires(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	start := time.Now()
	_, err := Run(PhaseSlice, Options{Watchdog: 20 * time.Millisecond}, func() error {
		<-release
		return nil
	})
	var se *SessionError
	if !errors.As(err, &se) || se.Kind != KindTimeout || se.Attempts != 1 {
		t.Fatalf("error = %v, want timeout SessionError after 1 attempt", err)
	}
	var he *HangError
	if !errors.As(err, &he) || he.Phase != PhaseSlice || he.After != 20*time.Millisecond {
		t.Fatalf("HangError: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("watchdog verdict was not prompt")
	}
}

func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want Kind
	}{
		{&PanicError{Value: "x"}, KindPanic},
		{&HangError{Phase: PhaseReplay, After: time.Second}, KindTimeout},
		{fmt.Errorf("f: %w", pinball.ErrNotPinball), KindCorrupt},
		{fmt.Errorf("f: %w", pinball.ErrVersionSkew), KindCorrupt},
		{fmt.Errorf("f: %w", pinball.ErrTruncated), KindCorrupt},
		{fmt.Errorf("f: %w", pinball.ErrCorrupt), KindCorrupt},
		{fmt.Errorf("f: %w", pinball.ErrUnsalvageable), KindCorrupt},
		{fmt.Errorf("f: %w: %w", pinplay.ErrReplay, pinplay.ErrLimit), KindLimit},
		{&pinplay.DivergenceError{}, KindDivergence},
		{fmt.Errorf("f: %w", pinplay.ErrReplay), KindDivergence},
		{errors.New("anything else"), KindError},
	} {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

func TestKindRetryable(t *testing.T) {
	for k, want := range map[Kind]bool{
		KindPanic: true, KindDivergence: true, KindError: true,
		KindCorrupt: false, KindLimit: false, KindTimeout: false,
	} {
		if k.Retryable() != want {
			t.Errorf("%s.Retryable() = %v, want %v", k, !want, want)
		}
	}
}

// TestReportJSON pins the structured failure report's wire shape, which
// drreplay -report exposes to tooling.
func TestReportJSON(t *testing.T) {
	rep, err := Run(PhaseReplay, Options{MaxAttempts: 1}, func() error {
		return fmt.Errorf("f: %w", pinball.ErrCorrupt)
	})
	if err == nil {
		t.Fatal("want failure")
	}
	data, jerr := json.Marshal(rep)
	if jerr != nil {
		t.Fatalf("marshal: %v", jerr)
	}
	for _, key := range []string{`"phase":"replay"`, `"kind":"corrupt"`, `"attempts"`, `"failure"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON lacks %s: %s", key, data)
		}
	}
}

// TestRunRetryBudgetStopsRetries pins the wall-clock cap: with an
// injected clock where each attempt costs 40ms and each backoff sleep
// 10ms, a 100ms budget admits attempt 1 (40ms) + sleep (10ms) +
// attempt 2 (40ms) = 90ms, and then refuses the next retry because
// 90ms + 10ms reaches the budget — even though MaxAttempts would allow
// ten attempts.
func TestRunRetryBudgetStopsRetries(t *testing.T) {
	now := time.Unix(1000, 0)
	calls := 0
	rep, err := Run(PhaseSlice, Options{
		MaxAttempts: 10,
		Backoff:     10 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		RetryBudget: 100 * time.Millisecond,
		Now:         func() time.Time { return now },
		Sleep:       func(d time.Duration) { now = now.Add(d) },
	}, func() error {
		calls++
		now = now.Add(40 * time.Millisecond)
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (budget should stop the third attempt)", calls)
	}
	if !rep.BudgetExhausted {
		t.Fatalf("report not marked budget-exhausted: %+v", rep)
	}
	var se *SessionError
	if !errors.As(err, &se) || se.Attempts != 2 {
		t.Fatalf("error: %v", err)
	}
}

// TestRunRetryBudgetCountsSleeps: the pending backoff sleep itself is
// charged against the budget, so a sleep that would cross the deadline
// is never taken (retries cannot outlive the watchdog allowance by
// sleeping right up to it and then running one more attempt).
func TestRunRetryBudgetCountsSleeps(t *testing.T) {
	now := time.Unix(1000, 0)
	slept := time.Duration(0)
	_, err := Run(PhaseSlice, Options{
		MaxAttempts: 10,
		Backoff:     60 * time.Millisecond,
		RetryBudget: 50 * time.Millisecond,
		Now:         func() time.Time { return now },
		Sleep: func(d time.Duration) {
			slept += d
			now = now.Add(d)
		},
	}, func() error { return errors.New("transient") })
	if err == nil {
		t.Fatal("expected failure")
	}
	if slept != 0 {
		t.Fatalf("slept %v; the first 60ms backoff already exceeds the 50ms budget", slept)
	}
}

// TestRunZeroBudgetMeansUnlimited: the zero value keeps today's
// behaviour (MaxAttempts alone bounds the retries).
func TestRunZeroBudgetMeansUnlimited(t *testing.T) {
	calls := 0
	_, err := Run(PhaseSlice, Options{
		MaxAttempts: 4,
		Sleep:       func(time.Duration) {},
	}, func() error {
		calls++
		return errors.New("transient")
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want 4 attempts", err, calls)
	}
}

// TestDecorrelatedJitter pins the sequence's bounds: every sleep lies
// in [base, min(3·prev, max)], and a saturated sequence stays at max.
func TestDecorrelatedJitter(t *testing.T) {
	base, max := 10*time.Millisecond, 400*time.Millisecond
	// rnd = 1 (upper edge): prev doubles-and-a-half each step until max.
	up := func() float64 { return 0.9999999 }
	prev := time.Duration(0)
	for i := 0; i < 10; i++ {
		d := DecorrelatedJitter(prev, base, max, up)
		if d < base || d > max {
			t.Fatalf("step %d: %v outside [%v, %v]", i, d, base, max)
		}
		lim := 3 * prev
		if prev < base {
			lim = 3 * base
		}
		if lim > max {
			lim = max
		}
		if d > lim {
			t.Fatalf("step %d: %v exceeds 3·prev cap %v", i, d, lim)
		}
		prev = d
	}
	if prev != max {
		t.Fatalf("saturated sequence ended at %v, want cap %v", prev, max)
	}
	// rnd = 0 (lower edge): always the base.
	if d := DecorrelatedJitter(123*time.Millisecond, base, max, func() float64 { return 0 }); d != base {
		t.Fatalf("lower edge: %v, want %v", d, base)
	}
	// nil rnd must not panic and must respect the bounds.
	if d := DecorrelatedJitter(0, base, max, nil); d < base || d > max {
		t.Fatalf("nil rnd: %v outside [%v, %v]", d, base, max)
	}
}
