package supervisor

import (
	"errors"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/vm"
)

// ReplayResult is what a supervised replay hands back: the machine (at
// the region end, or at the recovery anchor when Degraded), the replay's
// verification report and the supervisor's own report.
type ReplayResult struct {
	Machine  *vm.Machine
	Replay   *pinplay.ReplayReport
	Report   *Report
	Degraded bool
	// RecoveredStep is the region step the degraded recovery reached —
	// the last divergence checkpoint the replay still matched.
	RecoveredStep int64
}

// Replay runs a full replay of pb under the supervisor's policy. When
// the replay diverges on every attempt, it falls back to a
// checkpoint-anchored partial replay: the prefix up to the divergence's
// last good checkpoint (Divergence.FromStep) re-runs, and if that
// prefix is clean the call succeeds with Degraded set — the caller gets
// a machine in the last provably faithful state instead of nothing.
func Replay(prog *isa.Program, pb *pinball.Pinball, opts Options, ropts pinplay.ReplayOptions) (*ReplayResult, error) {
	res := &ReplayResult{}
	rep, err := Run(PhaseReplay, opts, func() error {
		m, r, err := pinplay.ReplayWith(prog, pb, ropts)
		res.Machine, res.Replay = m, r
		return err
	})
	res.Report = rep
	if err == nil {
		return res, nil
	}

	var se *SessionError
	var de *pinplay.DivergenceError
	if errors.As(err, &se) && se.Kind == KindDivergence &&
		errors.As(se.Err, &de) && de.Div.FromStep > 0 {
		m, r, perr := pinplay.ReplayToStep(prog, pb, de.Div.FromStep, ropts)
		if perr == nil {
			res.Machine, res.Replay = m, r
			res.Degraded, res.RecoveredStep = true, de.Div.FromStep
			rep.Degraded, rep.RecoveredStep = true, de.Div.FromStep
			rep.Kind, rep.Failure = "", ""
			return res, nil
		}
	}
	return res, err
}

// Record runs a logging session under the supervisor's policy. Recording
// panics (a buggy tracer, a journal write blowing up) surface as typed
// session errors; transient failures retry per the options.
func Record(prog *isa.Program, cfg pinplay.LogConfig, spec pinplay.RegionSpec, opts Options) (*pinball.Pinball, *Report, error) {
	var pb *pinball.Pinball
	rep, err := Run(PhaseRecord, opts, func() error {
		p, err := pinplay.Log(prog, cfg, spec)
		pb = p
		return err
	})
	if err != nil {
		return nil, rep, err
	}
	return pb, rep, nil
}
