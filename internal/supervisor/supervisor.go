// Package supervisor is the self-healing session layer: it runs the
// record/replay/slice phases of a debugging session under panic
// isolation, watchdog deadlines and retry-with-backoff, so that a bad
// pinball, a buggy analysis pass or a hung replay surfaces as a typed,
// reportable failure instead of a crash or a stuck process.
//
// The failure policy, by classified kind:
//
//	corrupt   — the pinball file is bad; deterministic, fail fast.
//	limit     — an execution budget/deadline was exhausted; deliberate,
//	            fail fast.
//	timeout   — the watchdog fired on a hung phase; retrying a hang
//	            re-hangs, fail fast.
//	divergence, panic, error — retried with exponential backoff up to
//	            MaxAttempts; a divergence that survives its retries is
//	            additionally offered checkpoint-anchored degraded
//	            recovery (see Replay).
//
// Every outcome — recovered, degraded or failed — is summarised in a
// JSON-serialisable Report for structured failure output.
package supervisor

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"repro/internal/pinball"
	"repro/internal/pinplay"
)

// Phase names the part of the session a supervised call runs.
type Phase string

// Session phases.
const (
	PhaseRecord Phase = "record"
	PhaseReplay Phase = "replay"
	PhaseSlice  Phase = "slice"
	PhaseRelog  Phase = "relog"
)

// Kind classifies why a supervised phase failed.
type Kind string

// Failure kinds.
const (
	KindPanic      Kind = "panic"      // the phase panicked (recovered)
	KindTimeout    Kind = "timeout"    // the watchdog fired on a hung phase
	KindDivergence Kind = "divergence" // replay left the recorded execution
	KindCorrupt    Kind = "corrupt"    // the pinball file is bad
	KindLimit      Kind = "limit"      // an execution limit was exhausted
	KindError      Kind = "error"      // any other failure
)

// Retryable reports whether another attempt can plausibly change the
// outcome.
func (k Kind) Retryable() bool {
	switch k {
	case KindCorrupt, KindLimit, KindTimeout:
		return false
	}
	return true
}

// SessionError is the typed failure a supervised phase ends in after the
// retry policy is exhausted. It wraps the final attempt's error.
type SessionError struct {
	Phase    Phase
	Kind     Kind
	Attempts int
	Err      error
}

func (e *SessionError) Error() string {
	return fmt.Sprintf("supervisor: %s failed (%s) after %d attempt(s): %v", e.Phase, e.Kind, e.Attempts, e.Err)
}

func (e *SessionError) Unwrap() error { return e.Err }

// PanicError is a recovered panic converted into an error, carrying the
// goroutine stack at the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// HangError is the watchdog's verdict on a phase that did not finish in
// time.
type HangError struct {
	Phase Phase
	After time.Duration
}

func (e *HangError) Error() string {
	return fmt.Sprintf("%s hung: no result after %v (watchdog)", e.Phase, e.After)
}

// Classify maps an error to its failure kind.
func Classify(err error) Kind {
	var pe *PanicError
	var he *HangError
	var de *pinplay.DivergenceError
	switch {
	case errors.As(err, &pe):
		return KindPanic
	case errors.As(err, &he):
		return KindTimeout
	case errors.Is(err, pinball.ErrNotPinball),
		errors.Is(err, pinball.ErrVersionSkew),
		errors.Is(err, pinball.ErrTruncated),
		errors.Is(err, pinball.ErrCorrupt),
		errors.Is(err, pinball.ErrUnsalvageable):
		return KindCorrupt
	case errors.Is(err, pinplay.ErrLimit):
		return KindLimit
	case errors.As(err, &de):
		return KindDivergence
	case errors.Is(err, pinplay.ErrReplay):
		return KindDivergence
	}
	return KindError
}

// Options tunes the retry policy. The zero value means: 3 attempts,
// 10ms initial backoff doubling to at most 1s, no jitter, no watchdog.
type Options struct {
	// MaxAttempts caps how often a retryable failure is retried
	// (0 = default 3; 1 = never retry).
	MaxAttempts int
	// Backoff is the sleep before the first retry; it doubles per retry
	// up to BackoffMax (defaults 10ms and 1s).
	Backoff    time.Duration
	BackoffMax time.Duration
	// Jitter spreads each retry sleep uniformly over
	// [b·(1−Jitter), b·(1+Jitter)] around the exponential base b, so a
	// population of sessions retrying the same transient fault (the
	// session daemon's workers) does not retry in lockstep. 0 means no
	// jitter; values are clamped to [0, 1].
	Jitter float64
	// Rand replaces the jitter's uniform [0,1) source in tests.
	Rand func() float64
	// Watchdog bounds each attempt's wall-clock time (0 = no watchdog).
	// A fired watchdog abandons the attempt's goroutine — pair it with a
	// vm deadline limit so the abandoned replay also stops itself.
	Watchdog time.Duration
	// RetryBudget caps the total wall-clock the phase may spend across
	// attempts and backoff sleeps (0 = no cap). Once launching another
	// retry could not complete inside the budget — elapsed time plus the
	// pending sleep reaches it — the phase fails with the last attempt's
	// error instead of retrying. The session daemon derives it from the
	// session's quota deadline, so a retry storm can never outlive the
	// watchdog allowance the client was promised.
	RetryBudget time.Duration
	// Now replaces time.Now in tests (paired with Sleep for fully
	// deterministic budget accounting).
	Now func() time.Time
	// OnRetry observes each retry decision (attempt just failed, err why).
	OnRetry func(attempt int, err error)
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	}
	if o.Jitter > 1 {
		o.Jitter = 1
	}
	if o.Rand == nil {
		o.Rand = rand.Float64
	}
	return o
}

// jittered spreads b uniformly over [b·(1−j), b·(1+j)]; j = 0 returns b
// unchanged. Only the sleep is jittered — the exponential base keeps
// doubling undisturbed, so jitter never compounds across retries.
func (o Options) jittered(b time.Duration) time.Duration {
	if o.Jitter == 0 {
		return b
	}
	f := 1 + o.Jitter*(2*o.Rand()-1)
	return time.Duration(float64(b) * f)
}

// DecorrelatedJitter returns the next sleep of a decorrelated-jitter
// backoff sequence: drawn uniformly from [base, 3·prev] and capped at
// max. Unlike exponential backoff with symmetric jitter, successive
// sleeps are decoupled from the retry ordinal, so a population of
// clients hammering the same recovering peer (the fleet coordinator's
// per-worker retries) spreads out instead of re-synchronising at every
// doubling step. Pass prev = 0 (or base) for the first retry; feed each
// result back as the next prev. rnd replaces the uniform [0,1) source
// in tests; nil uses the global math/rand source.
func DecorrelatedJitter(prev, base, max time.Duration, rnd func() float64) time.Duration {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if prev < base {
		prev = base
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	d := base + time.Duration(rnd()*float64(3*prev-base))
	if d > max {
		d = max
	}
	return d
}

// Attempt records one supervised execution of the phase function.
type Attempt struct {
	N    int    `json:"n"`
	Kind Kind   `json:"kind"`
	Err  string `json:"error"`
}

// Report is the structured outcome of a supervised phase, serialisable
// as JSON for tooling.
type Report struct {
	Phase    Phase     `json:"phase"`
	Attempts []Attempt `json:"attempts,omitempty"` // failed attempts only
	// Recovered means the phase succeeded after at least one failed
	// attempt; Degraded means it succeeded only via checkpoint-anchored
	// partial replay, reaching RecoveredStep of the region.
	Recovered     bool  `json:"recovered,omitempty"`
	Degraded      bool  `json:"degraded,omitempty"`
	RecoveredStep int64 `json:"recovered_step,omitempty"`
	// BudgetExhausted marks a failure where retries remained under
	// MaxAttempts but the RetryBudget wall-clock cap stopped them.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	// Kind and Failure describe the final failure when the phase did not
	// succeed at all.
	Kind    Kind   `json:"kind,omitempty"`
	Failure string `json:"failure,omitempty"`
}

// runOnce executes fn in its own goroutine with panic isolation and the
// watchdog applied. A fired watchdog abandons the goroutine: its result
// is discarded whenever it does finish.
func runOnce(phase Phase, watchdog time.Duration, fn func() error) error {
	done := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- &PanicError{Value: p, Stack: debug.Stack()}
			}
		}()
		done <- fn()
	}()
	if watchdog <= 0 {
		return <-done
	}
	t := time.NewTimer(watchdog)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return &HangError{Phase: phase, After: watchdog}
	}
}

// Run executes fn under the supervisor's policy: panic isolation, the
// watchdog, and retry-with-exponential-backoff for retryable kinds. The
// report is non-nil in every outcome; on failure the returned error is a
// *SessionError wrapping the last attempt's error.
func Run(phase Phase, opts Options, fn func() error) (*Report, error) {
	o := opts.withDefaults()
	rep := &Report{Phase: phase}
	backoff := o.Backoff
	start := o.Now()
	var err error
	for attempt := 1; ; attempt++ {
		err = runOnce(phase, o.Watchdog, fn)
		if err == nil {
			rep.Recovered = attempt > 1
			return rep, nil
		}
		kind := Classify(err)
		rep.Attempts = append(rep.Attempts, Attempt{N: attempt, Kind: kind, Err: err.Error()})
		if !kind.Retryable() || attempt >= o.MaxAttempts {
			break
		}
		sleep := o.jittered(backoff)
		if o.RetryBudget > 0 && o.Now().Sub(start)+sleep >= o.RetryBudget {
			// Another retry could not complete inside the wall-clock
			// budget; fail now rather than outlive the promised deadline.
			rep.BudgetExhausted = true
			break
		}
		if o.OnRetry != nil {
			o.OnRetry(attempt, err)
		}
		o.Sleep(sleep)
		if backoff *= 2; backoff > o.BackoffMax {
			backoff = o.BackoffMax
		}
	}
	se := &SessionError{Phase: phase, Kind: Classify(err), Attempts: len(rep.Attempts), Err: err}
	rep.Kind, rep.Failure = se.Kind, se.Error()
	return rep, se
}
