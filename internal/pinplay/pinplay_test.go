package pinplay

import (
	"path/filepath"
	"testing"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

const workerSrc = `
int counter;
int mtx;
int results[4];
int worker(int id) {
	int i;
	int local = 0;
	for (i = 0; i < 50; i++) {
		local = local + i;
		lock(&mtx);
		counter = counter + 1;
		unlock(&mtx);
	}
	results[id] = local;
	return 0;
}
int main() {
	int t1 = spawn(worker, 1);
	int t2 = spawn(worker, 2);
	worker(0);
	join(t1);
	join(t2);
	write(counter);
	write(results[0]);
	write(results[1]);
	write(results[2]);
	return 0;
}`

func compileT(t testing.TB, src string) *isa.Program {
	t.Helper()
	p, err := cc.CompileSource("w.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestLogWholeAndReplay(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 3, MeanQuantum: 31}, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	if pb.Kind != pinball.KindWhole {
		t.Errorf("kind = %v, want whole", pb.Kind)
	}
	if pb.EndReason != "exit" {
		t.Errorf("end = %q, want exit", pb.EndReason)
	}
	if pb.RegionInstrs == 0 || pb.MainInstrs == 0 {
		t.Error("empty region accounting")
	}

	m, err := Replay(prog, pb, nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	out := m.Output()
	if len(out) != 4 || out[0] != 150 || out[1] != 1225 {
		t.Fatalf("replayed output = %v", out)
	}
}

func TestLogRegionSkipLength(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 5, MeanQuantum: 17}, RegionSpec{SkipMain: 200, LengthMain: 300})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	if pb.Kind != pinball.KindRegion {
		t.Errorf("kind = %v", pb.Kind)
	}
	if pb.MainInstrs < 300 {
		t.Errorf("main instrs = %d, want >= 300", pb.MainInstrs)
	}
	if pb.SkipMain != 200 {
		t.Errorf("skip = %d", pb.SkipMain)
	}
	if _, err := Replay(prog, pb, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	prog := compileT(t, workerSrc)
	for _, seed := range []int64{1, 2, 3, 9, 100} {
		pb, err := Log(prog, LogConfig{Seed: seed, MeanQuantum: 23}, RegionSpec{SkipMain: 50, LengthMain: 500})
		if err != nil {
			t.Fatalf("seed %d: log: %v", seed, err)
		}
		if err := CheckReplayDeterminism(prog, pb); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestReplayMatchesOriginalFinalState(t *testing.T) {
	prog := compileT(t, workerSrc)
	// Log the whole run, then compare the replay's final memory with an
	// identically seeded native run.
	pb, err := Log(prog, LogConfig{Seed: 7, MeanQuantum: 13}, RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	native := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(7, 13), MaxSteps: 1 << 30})
	native.Run()

	replayed, err := Replay(prog, pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !native.Snapshot().Mem.Equal(replayed.Snapshot().Mem) {
		t.Error("replayed final memory differs from native run")
	}
}

func TestLogCapturesFailure(t *testing.T) {
	prog := compileT(t, `
int x;
int racer(int v) { x = v; return 0; }
int main() {
	int t = spawn(racer, 5);
	x = 1;
	join(t);
	assert(x == 1);
	return 0;
}`)
	// Find a seed where the assert fires, then check the pinball
	// reproduces the failure on every replay.
	var pb *pinball.Pinball
	for seed := int64(1); seed < 64; seed++ {
		got, err := Log(prog, LogConfig{Seed: seed, MeanQuantum: 3}, RegionSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Failure != nil {
			pb = got
			break
		}
	}
	if pb == nil {
		t.Fatal("no seed exposed the race")
	}
	for i := 0; i < 3; i++ {
		m, err := Replay(prog, pb, nil)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if m.Stopped() != vm.StopFailure {
			t.Fatalf("replay %d: stop = %v, want failure", i, m.Stopped())
		}
		f := m.Failure()
		if f.Tid != pb.Failure.Tid || f.PC != pb.Failure.PC {
			t.Errorf("replay %d: failure at tid %d pc %d, logged tid %d pc %d",
				i, f.Tid, f.PC, pb.Failure.Tid, pb.Failure.PC)
		}
	}
}

func TestLogUntilFailureErrorsOnCleanRun(t *testing.T) {
	prog := compileT(t, `int main() { return 0; }`)
	if _, err := LogUntilFailure(prog, LogConfig{Seed: 1}, 0); err == nil {
		t.Error("expected error for non-failing program")
	}
}

func TestPinballSaveLoadRoundTrip(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 11, MeanQuantum: 19}, RegionSpec{SkipMain: 10, LengthMain: 200})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := pinball.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.RegionInstrs != pb.RegionInstrs || len(got.Quanta) != len(pb.Quanta) {
		t.Error("round trip lost data")
	}
	if _, err := Replay(prog, got, nil); err != nil {
		t.Fatalf("replay of loaded pinball: %v", err)
	}
	if sz, err := pb.EncodedSize(); err != nil || sz <= 0 {
		t.Errorf("EncodedSize = %d, %v", sz, err)
	}
}

func TestRecorderManualRegion(t *testing.T) {
	prog := compileT(t, workerSrc)
	m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(2, 29), MaxSteps: 1 << 30})
	for i := 0; i < 500 && m.StepOne(); i++ {
	}
	rec := StartRecording(m)
	for i := 0; i < 2000 && m.StepOne(); i++ {
	}
	pb := rec.Finish(m, "manual")
	if pb.EndReason != "manual" {
		t.Errorf("end = %q", pb.EndReason)
	}
	if pb.RegionInstrs != 2000 {
		t.Errorf("region instrs = %d, want 2000", pb.RegionInstrs)
	}
	if _, err := Replay(prog, pb, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestLogErrorsWhenSkipPastEnd(t *testing.T) {
	prog := compileT(t, `int main() { return 0; }`)
	if _, err := Log(prog, LogConfig{Seed: 1}, RegionSpec{SkipMain: 1 << 40}); err == nil {
		t.Error("expected error when skip exceeds execution length")
	}
}

func TestRelogWithManualExclusion(t *testing.T) {
	// Exclude a chunk of the main thread's computation and check the
	// slice replay still reaches the same final memory via injections.
	prog := compileT(t, `
int a;
int b;
int c;
int main() {
	int i;
	a = 1;
	for (i = 0; i < 100; i++) { b = b + i; }
	c = a + 7;
	write(c);
	return 0;
}`)
	pb, err := Log(prog, LogConfig{Seed: 1}, RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Find the loop's index range in the main thread by tracing a replay.
	type rng struct{ from, to int64 }
	var loop rng
	tr := &spanTracer{prog: prog}
	if _, err := Replay(prog, pb, tr); err != nil {
		t.Fatal(err)
	}
	loop = rng{tr.loopFrom, tr.loopTo}
	if loop.from == 0 || loop.to <= loop.from {
		t.Fatalf("could not locate loop span: %+v", loop)
	}

	ex := []pinball.Exclusion{{
		Tid: 0, FromIdx: loop.from, ToIdx: loop.to,
	}}
	spb, err := Relog(prog, pb, ex)
	if err != nil {
		t.Fatalf("relog: %v", err)
	}
	if spb.Kind != pinball.KindSlice {
		t.Error("relog did not mark slice pinball")
	}
	if spb.RegionInstrs >= pb.RegionInstrs {
		t.Errorf("slice pinball has %d instrs, region had %d", spb.RegionInstrs, pb.RegionInstrs)
	}
	if len(spb.Injections) != 1 {
		t.Fatalf("got %d injections, want 1", len(spb.Injections))
	}

	m, err := Replay(prog, spb, nil)
	if err != nil {
		t.Fatalf("slice replay: %v", err)
	}
	// The excluded loop's effect on b must be present via injection, and
	// the included tail must have computed c.
	full, err := Replay(prog, pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Snapshot().Mem.Equal(full.Snapshot().Mem) {
		t.Error("slice replay memory differs from full replay")
	}
	if out := m.Output(); len(out) != 1 || out[0] != 8 {
		t.Errorf("slice output = %v, want [8]", out)
	}
}

// spanTracer finds the main-thread index range of the for loop in the
// TestRelogWithManualExclusion program (source lines 7).
type spanTracer struct {
	vm.NopTracer
	prog     *isa.Program
	loopFrom int64
	loopTo   int64
}

func (s *spanTracer) OnInstr(ev *vm.InstrEvent) {
	if ev.Tid != 0 {
		return
	}
	line := ev.Instr.Line
	if line == 8 { // "for (i = 0; ...) { b = b + i; }"
		if s.loopFrom == 0 {
			s.loopFrom = ev.Idx
		}
		s.loopTo = ev.Idx + 1
	}
}

func TestRelogRejectsBadExclusions(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 1, MeanQuantum: 21}, RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Relog(prog, pb, []pinball.Exclusion{{Tid: 0, FromIdx: 10, ToIdx: 10}}); err == nil {
		t.Error("empty exclusion accepted")
	}
	if _, err := Relog(prog, pb, []pinball.Exclusion{
		{Tid: 0, FromIdx: 10, ToIdx: 30},
		{Tid: 0, FromIdx: 20, ToIdx: 40},
	}); err == nil {
		t.Error("overlapping exclusions accepted")
	}
}

// TestLogBetweenPoints captures the region between two code locations —
// the paper's start/end-point region selection — and checks the region
// covers exactly the computation between them.
func TestLogBetweenPoints(t *testing.T) {
	prog := compileT(t, `
int phase;
int work;
int stage1() { phase = 1; return 0; }
int stage2() { phase = 2; return 0; }
int main() {
	int i;
	for (i = 0; i < 500; i++) { work = work + i; }
	stage1();
	for (i = 0; i < 500; i++) { work = work + i; }
	stage2();
	for (i = 0; i < 500; i++) { work = work + i; }
	write(work);
	return 0;
}`)
	start, err := prog.ResolveLocation("stage1")
	if err != nil {
		t.Fatal(err)
	}
	end, err := prog.ResolveLocation("stage2")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := LogBetween(prog, LogConfig{Seed: 1}, PointSpec{StartPC: start, EndPC: end})
	if err != nil {
		t.Fatal(err)
	}
	if pb.EndReason != "end-point" {
		t.Errorf("end reason = %q", pb.EndReason)
	}
	// The region covers stage1 and the middle loop but not the other two
	// loops: roughly a third of the whole run.
	whole, err := Log(prog, LogConfig{Seed: 1}, RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if pb.RegionInstrs <= 0 || pb.RegionInstrs >= whole.RegionInstrs/2 {
		t.Errorf("region = %d instrs of %d total; want roughly a third", pb.RegionInstrs, whole.RegionInstrs)
	}
	// The region replays deterministically and its memory state at region
	// entry has phase == 0, at region end phase == 1 (stage2 not yet run).
	m, err := Replay(prog, pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	sym := prog.SymbolByName("phase")
	if got := m.Mem.Read(sym.Addr); got != 1 {
		t.Errorf("phase at region end = %d, want 1", got)
	}
	if got := pb.State.Mem; got == nil {
		t.Fatal("no initial state")
	}
}

// TestLogBetweenInstances selects a later dynamic instance of the start
// point.
func TestLogBetweenInstances(t *testing.T) {
	prog := compileT(t, `
int hits;
int mark() { hits = hits + 1; return 0; }
int main() {
	int i;
	for (i = 0; i < 5; i++) { mark(); }
	return 0;
}`)
	start, err := prog.ResolveLocation("mark")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := LogBetween(prog, LogConfig{Seed: 1}, PointSpec{StartPC: start, StartInstance: 4, EndPC: -1})
	if err != nil {
		t.Fatal(err)
	}
	// At region entry, mark has executed 3 times.
	sym := prog.SymbolByName("hits")
	var entryHits int64
	for pn, words := range pb.State.Mem {
		if sym.Addr>>12 == pn {
			entryHits = words[sym.Addr&4095]
		}
	}
	if entryHits != 3 {
		t.Errorf("hits at region entry = %d, want 3", entryHits)
	}
	m, err := Replay(prog, pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Read(sym.Addr); got != 5 {
		t.Errorf("hits at end = %d, want 5", got)
	}
}

func TestLogBetweenUnreachedPoint(t *testing.T) {
	prog := compileT(t, `
int unreached() { return 1; }
int main() { return 0; }`)
	start, err := prog.ResolveLocation("unreached")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LogBetween(prog, LogConfig{Seed: 1}, PointSpec{StartPC: start, EndPC: -1}); err == nil {
		t.Error("unreached start point accepted")
	}
}

func TestLogWithJournalMatchesSave(t *testing.T) {
	prog := compileT(t, workerSrc)
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.pinball")
	cfg := LogConfig{Seed: 3, MeanQuantum: 31, JournalPath: jpath, JournalEvery: 512, JournalNoSync: true}
	pb, err := Log(prog, cfg, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	got, err := pinball.Load(jpath)
	if err != nil {
		t.Fatalf("load journal: %v", err)
	}
	if got.ID() != pb.ID() {
		t.Fatalf("journaled pinball differs from the in-memory one: %s vs %s", got.ID(), pb.ID())
	}
	if got.RegionInstrs != pb.RegionInstrs || len(got.Quanta) == 0 ||
		len(got.Syscalls) != len(pb.Syscalls) || len(got.Checkpoints) != len(pb.Checkpoints) {
		t.Fatalf("journaled content mismatch: region %d/%d, %d/%d syscalls, %d/%d checkpoints",
			got.RegionInstrs, pb.RegionInstrs, len(got.Syscalls), len(pb.Syscalls),
			len(got.Checkpoints), len(pb.Checkpoints))
	}
	// The journaled file replays exactly like the in-memory pinball.
	m1, err := Replay(prog, pb, nil)
	if err != nil {
		t.Fatalf("replay original: %v", err)
	}
	m2, err := Replay(prog, got, nil)
	if err != nil {
		t.Fatalf("replay journaled: %v", err)
	}
	o1, o2 := m1.Output(), m2.Output()
	if len(o1) != len(o2) {
		t.Fatalf("outputs differ: %v vs %v", o1, o2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, o1, o2)
		}
	}
}
