package pinplay

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

// ReplayToStep replays only the first step instructions of the pinball's
// region and treats arriving there as success: checkpoints inside the
// prefix are still validated, but nothing past the boundary is expected
// to be reached. This is the degraded-recovery primitive — when a full
// replay diverges, the supervisor re-runs the prefix up to the last
// checkpoint that still matched (Divergence.FromStep), handing the
// caller a machine in a known-good state instead of nothing.
func ReplayToStep(prog *isa.Program, pb *pinball.Pinball, step int64, opts ReplayOptions) (*vm.Machine, *ReplayReport, error) {
	total := pb.TotalQuantumInstrs()
	if step < 0 || step > total {
		return nil, nil, fmt.Errorf("pinplay: replay-to-step %d outside region of %d instructions", step, total)
	}
	if pb.Kind == pinball.KindSlice {
		return replaySliceToStep(prog, pb, step, opts)
	}
	m, v := newValidatedMachine(prog, pb, opts)
	var executed int64
	rep := &ReplayReport{}
	for executed < step && m.StepOne() {
		executed++
		if d := v.failed(); d != nil {
			rep.Executed = executed
			rep.Checked, rep.Divergences = v.report()
			return m, rep, &DivergenceError{Div: *d}
		}
	}
	rep.Executed = executed
	rep.Checked, rep.Divergences = v.report()
	return m, rep, prefixStopErr(m, pb, executed, step)
}

// replaySliceToStep is ReplayToStep for slice pinballs, driving the
// injection-aware SliceRunner.
func replaySliceToStep(prog *isa.Program, pb *pinball.Pinball, step int64, opts ReplayOptions) (*vm.Machine, *ReplayReport, error) {
	r := NewSliceRunnerWith(prog, pb, opts)
	for r.executed < step {
		ok, err := r.Step()
		if err != nil {
			return r.Machine(), r.Report(), err
		}
		if !ok {
			break
		}
	}
	return r.Machine(), r.Report(), prefixStopErr(r.Machine(), pb, r.executed, step)
}

// prefixStopErr classifies a prefix replay that stopped before its
// target step: reproducing the recorded failure early is success, a
// limit stop is a limit error, anything else is a divergence.
func prefixStopErr(m *vm.Machine, pb *pinball.Pinball, executed, step int64) error {
	if executed >= step {
		return nil
	}
	switch {
	case m.Stopped() == vm.StopFailure && pb.Failure != nil:
		return nil
	case m.Stopped().LimitStop():
		return limitErr(m, executed, step)
	}
	return fmt.Errorf("%w: executed %d of %d prefix instructions (stop: %v)",
		ErrReplay, executed, step, m.Stopped())
}
