package pinplay

import (
	"testing"

	"repro/internal/isa"
)

// benchSrc is a longer workload (~100k region instructions) so the
// per-instruction checkpoint overhead dominates fixed costs.
const benchSrc = `
int counter;
int mtx;
int worker(int id) {
	int i;
	int local = 0;
	for (i = 0; i < 2000; i++) {
		local = local + i;
		lock(&mtx);
		counter = counter + 1;
		unlock(&mtx);
	}
	return local;
}
int main() {
	int t1 = spawn(worker, 1);
	int t2 = spawn(worker, 2);
	worker(0);
	join(t1);
	join(t2);
	write(counter);
	return 0;
}`

func benchProgram(b *testing.B) *isa.Program {
	b.Helper()
	return compileT(b, benchSrc)
}

// benchmarkLog measures recording cost at a given checkpoint cadence
// (negative disables checkpointing — the baseline).
func benchmarkLog(b *testing.B, every int64) {
	prog := benchProgram(b)
	cfg := LogConfig{Seed: 3, MeanQuantum: 41, CheckpointEvery: every}
	pb, err := Log(prog, cfg, RegionSpec{})
	if err != nil {
		b.Fatalf("log: %v", err)
	}
	b.SetBytes(pb.RegionInstrs) // "bytes" = instructions: ns/instr falls out
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Log(prog, cfg, RegionSpec{}); err != nil {
			b.Fatalf("log: %v", err)
		}
	}
}

func BenchmarkLogNoCheckpoints(b *testing.B)      { benchmarkLog(b, -1) }
func BenchmarkLogCheckpointEvery1k(b *testing.B)  { benchmarkLog(b, 1_000) }
func BenchmarkLogCheckpointEvery10k(b *testing.B) { benchmarkLog(b, 10_000) }

// benchmarkReplay measures validated replay cost at a given cadence.
func benchmarkReplay(b *testing.B, every int64, noVerify bool) {
	prog := benchProgram(b)
	pb, err := Log(prog, LogConfig{Seed: 3, MeanQuantum: 41, CheckpointEvery: every}, RegionSpec{})
	if err != nil {
		b.Fatalf("log: %v", err)
	}
	opts := ReplayOptions{NoVerify: noVerify}
	b.SetBytes(pb.RegionInstrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReplayWith(prog, pb, opts); err != nil {
			b.Fatalf("replay: %v", err)
		}
	}
}

func BenchmarkReplayNoCheckpoints(b *testing.B)      { benchmarkReplay(b, -1, false) }
func BenchmarkReplayCheckpointEvery1k(b *testing.B)  { benchmarkReplay(b, 1_000, false) }
func BenchmarkReplayCheckpointEvery10k(b *testing.B) { benchmarkReplay(b, 10_000, false) }
func BenchmarkReplayVerifyDisabled(b *testing.B)     { benchmarkReplay(b, 1_000, true) }
