package pinplay

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/pinball"
)

func TestCheckpointsRecordedAtCadence(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 3, MeanQuantum: 31, CheckpointEvery: 16}, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	if pb.CheckpointEvery != 16 {
		t.Fatalf("CheckpointEvery = %d, want 16", pb.CheckpointEvery)
	}
	if len(pb.Checkpoints) == 0 {
		t.Fatal("no checkpoints recorded")
	}
	lastSeq := map[int]int64{}
	total := pb.TotalQuantumInstrs()
	for _, cp := range pb.Checkpoints {
		if cp.Seq%16 != 0 || cp.Seq <= 0 {
			t.Errorf("checkpoint Seq %d is not a positive multiple of the cadence", cp.Seq)
		}
		if cp.Seq <= lastSeq[cp.Tid] {
			t.Errorf("thread %d checkpoint Seq %d not increasing", cp.Tid, cp.Seq)
		}
		lastSeq[cp.Tid] = cp.Seq
		if cp.Step <= 0 || cp.Step > total {
			t.Errorf("checkpoint Step %d outside region of %d", cp.Step, total)
		}
	}
}

func TestReplayVerifiesEveryCheckpoint(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 3, MeanQuantum: 31, CheckpointEvery: 16}, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	_, rep, err := ReplayWith(prog, pb, ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Checked != len(pb.Checkpoints) {
		t.Fatalf("checked %d of %d checkpoints", rep.Checked, len(pb.Checkpoints))
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("clean replay reported divergences: %v", rep.Divergences)
	}
}

func TestUnreachedCheckpointDetected(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 3, MeanQuantum: 31, CheckpointEvery: 16}, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	// A checkpoint thread 0 never reaches, but structurally valid: the
	// replay must notice it fell short of the recorded execution.
	var last pinball.Checkpoint
	for _, cp := range pb.Checkpoints {
		if cp.Tid == 0 {
			last = cp
		}
	}
	if last.Seq == 0 {
		t.Fatal("no thread-0 checkpoint to extend")
	}
	bogus := last
	bogus.Seq += pb.CheckpointEvery
	bogus.Idx += pb.CheckpointEvery
	bogus.Step = pb.TotalQuantumInstrs()
	pb.Checkpoints = append(pb.Checkpoints, bogus)
	if err := pb.Validate(); err != nil {
		t.Fatalf("bogus checkpoint should pass structural validation: %v", err)
	}

	_, _, err = ReplayWith(prog, pb, ReplayOptions{})
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("replay error = %v, want DivergenceError", err)
	}
	if de.Div.GotPC != -1 {
		t.Errorf("unreached checkpoint should report GotPC -1, got %d", de.Div.GotPC)
	}
	if !errors.Is(err, ErrReplay) {
		t.Error("DivergenceError does not wrap ErrReplay")
	}
}

func TestCheckpointingDisabled(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 3, MeanQuantum: 31, CheckpointEvery: -1}, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	if pb.CheckpointEvery != 0 || len(pb.Checkpoints) != 0 {
		t.Fatalf("disabled checkpointing still recorded: every=%d n=%d",
			pb.CheckpointEvery, len(pb.Checkpoints))
	}
	_, rep, err := ReplayWith(prog, pb, ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Checked != 0 {
		t.Fatalf("replay checked %d checkpoints on a checkpoint-free pinball", rep.Checked)
	}
}

func TestLegacyPinballReplaysWithoutValidation(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 3, MeanQuantum: 31}, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	path := filepath.Join(t.TempDir(), "legacy.pinball")
	if err := pb.SaveLegacy(path); err != nil {
		t.Fatalf("save legacy: %v", err)
	}
	old, err := pinball.Load(path)
	if err != nil {
		t.Fatalf("load legacy: %v", err)
	}
	if len(old.Checkpoints) != 0 || old.CheckpointEvery != 0 {
		t.Fatal("legacy pinball carries checkpoints")
	}
	m, rep, err := ReplayWith(prog, old, ReplayOptions{})
	if err != nil {
		t.Fatalf("legacy replay: %v", err)
	}
	if rep.Checked != 0 {
		t.Fatalf("legacy replay checked %d checkpoints", rep.Checked)
	}
	if out := m.Output(); len(out) != 4 || out[0] != 150 {
		t.Fatalf("legacy replay output = %v", out)
	}
}

func TestRelogCarriesSliceCheckpoints(t *testing.T) {
	prog := compileT(t, workerSrc)
	pb, err := Log(prog, LogConfig{Seed: 5, MeanQuantum: 17, CheckpointEvery: 8}, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	// Exclude a small window of thread 1's execution.
	ex := []pinball.Exclusion{{Tid: 1, FromIdx: 40, ToIdx: 60}}
	spb, err := Relog(prog, pb, ex)
	if err != nil {
		t.Fatalf("relog: %v", err)
	}
	if spb.CheckpointEvery != 8 || len(spb.Checkpoints) == 0 {
		t.Fatalf("slice pinball checkpoints: every=%d n=%d", spb.CheckpointEvery, len(spb.Checkpoints))
	}
	_, rep, err := ReplaySliceWith(prog, spb, ReplayOptions{})
	if err != nil {
		t.Fatalf("slice replay: %v", err)
	}
	if rep.Checked != len(spb.Checkpoints) {
		t.Fatalf("slice replay checked %d of %d checkpoints", rep.Checked, len(spb.Checkpoints))
	}
}
