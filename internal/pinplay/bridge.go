package pinplay

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

// Gap-bridging replay. A flight-recorder pinball has holes: windows the
// ring evicted, each survived only by its step span and windowed event
// hash. Replaying such a pinball cannot feed the recorded streams back
// (they are gone for the gaps) — instead the bridge re-executes the whole
// region natively from the pinball's initial state with the recipe's
// resumed scheduler and environment, which reproduces the original
// execution deterministically. The re-derivation is then proved, not
// assumed: every divergence checkpoint is validated en route, and each
// evicted window's re-derived event hash is compared against the retained
// one. A mismatch is a typed outcome — BridgeError under the strict
// policy, an "estimated" window under ReplayOptions.BridgeEstimates —
// never a silently wrong answer.

// ErrBridge marks gap-bridge verification failures: the re-derived
// content of an evicted window did not match its retained divergence
// hash. Bridge errors wrap both ErrReplay and ErrBridge.
var ErrBridge = errors.New("gap bridge verification failed")

// BridgeError is the typed verification failure for one evicted window.
type BridgeError struct {
	Ev   pinball.Eviction
	Want uint64
	Got  uint64
}

func (e *BridgeError) Error() string {
	return fmt.Sprintf("pinplay: gap bridge verification failed: %v re-derived with hash %016x", e.Ev, e.Got)
}

// Is makes errors.Is match both ErrReplay and ErrBridge.
func (e *BridgeError) Is(target error) bool { return target == ErrReplay || target == ErrBridge }

// BridgeReport summarises a gap-bridging replay.
type BridgeReport struct {
	Windows   int   // evicted windows bridged
	GapInstrs int64 // instructions re-derived by re-execution
	Exact     int   // windows whose re-derived hash matched the retained one
	// Estimated lists the windows whose verification failed but which the
	// BridgeEstimates policy let the replay carry as estimated content.
	Estimated []pinball.Eviction
}

// Degraded reports whether any bridged window failed verification.
func (b *BridgeReport) Degraded() bool { return b != nil && len(b.Estimated) > 0 }

// primedScheduler replays the recipe's in-flight quantum first, then
// hands over to the resumed scheduler. A recording region rarely starts
// on a quantum boundary, but a machine rebuilt from a snapshot always
// asks for a fresh scheduling decision — without the priming, the bridge
// would preempt earlier than the original execution did.
type primedScheduler struct {
	first vm.Quantum
	used  bool
	next  vm.Scheduler
}

func (s *primedScheduler) Pick(runnable []int) (int, int64) {
	if !s.used {
		s.used = true
		for _, tid := range runnable {
			if tid == s.first.Tid {
				return s.first.Tid, s.first.Count
			}
		}
	}
	return s.next.Pick(runnable)
}

// gapHasher recomputes, during the bridge run, the windowed FNV-1a event
// hash over each evicted window's step span — the same fold the recorder
// applied when it sealed the window.
type gapHasher struct {
	vm.NopTracer
	evs  []pinball.Eviction
	pos  int
	step int64
	h    uint64
	got  []uint64
	done []bool
}

func newGapHasher(evs []pinball.Eviction) *gapHasher {
	return &gapHasher{evs: evs, h: fnvOffset, got: make([]uint64, len(evs)), done: make([]bool, len(evs))}
}

func (g *gapHasher) OnInstr(ev *vm.InstrEvent) {
	g.step++
	if g.pos >= len(g.evs) {
		return
	}
	e := g.evs[g.pos]
	if g.step <= e.FromStep {
		return
	}
	g.h = foldEvent(g.h, ev)
	if g.step == e.ToStep {
		g.got[g.pos], g.done[g.pos] = g.h, true
		g.h = fnvOffset
		g.pos++
	}
}

// bridgeMachine builds the native re-execution machine for a gapped
// pinball: state restored, scheduler and environment resumed from the
// recipe, the checkpoint validator and the gap hasher chained in front of
// the caller's tracer, and limits clamped so that a tampered recipe can
// never run the bridge away (at most RegionInstrs+1 instructions).
func bridgeMachine(prog *isa.Program, pb *pinball.Pinball, opts ReplayOptions) (*vm.Machine, *checkpointValidator, *gapHasher) {
	rc := pb.Recipe
	var sched vm.Scheduler = vm.ResumeRandomScheduler(rc.SchedState, rc.MeanQ)
	if rc.CurLeft > 0 {
		sched = &primedScheduler{first: vm.Quantum{Tid: rc.CurTid, Count: rc.CurLeft}, next: sched}
	}
	env := vm.ResumeNativeEnv(rc.EnvInput, vm.EnvState{
		InputPos: int(rc.EnvPos), RandState: rc.EnvRand, Clock: rc.EnvClock,
	})
	m := vm.NewFromState(prog, pb.State, vm.Config{Sched: sched, Env: env})

	gh := newGapHasher(pb.Evictions)
	var v *checkpointValidator
	if !opts.NoVerify {
		v = newValidator(m, pb, opts.Degraded, opts.OnDivergence)
	}
	tracers := vm.MultiTracer{gh}
	if v != nil {
		tracers = append(tracers, v)
	}
	if opts.Tracer != nil {
		tracers = append(tracers, opts.Tracer)
	}
	m.SetTracer(tracers)

	lim := opts.Limits
	if lim.Steps <= 0 || lim.Steps > pb.RegionInstrs+1 {
		lim.Steps = pb.RegionInstrs + 1
	}
	m.SetLimits(lim)
	if opts.OnMachine != nil {
		opts.OnMachine(m)
	}
	return m, v, gh
}

// replayBridged is the gapped-pinball path of ReplayWith: the bridge run
// IS the replay. It executes exactly the recorded region length, fails on
// checkpoint divergence like a normal replay, and then settles each
// evicted window: hash match → exact bridge; mismatch → BridgeError, or
// an estimated window under the BridgeEstimates policy.
func replayBridged(prog *isa.Program, pb *pinball.Pinball, opts ReplayOptions) (*vm.Machine, *ReplayReport, error) {
	m, v, gh := bridgeMachine(prog, pb, opts)
	total := pb.RegionInstrs
	var executed int64
	rep := &ReplayReport{Bridge: &BridgeReport{Windows: len(pb.Evictions), GapInstrs: pb.GapInstrs()}}
	for executed < total && m.StepOne() {
		executed++
		if d := v.failed(); d != nil {
			rep.Executed = executed
			rep.Checked, rep.Divergences = v.report()
			return m, rep, &DivergenceError{Div: *d}
		}
	}
	earlyFailure := executed < total && m.Stopped() == vm.StopFailure && pb.Failure != nil
	if !m.Stopped().LimitStop() {
		v.finish(earlyFailure)
	}
	rep.Executed = executed
	rep.Checked, rep.Divergences = v.report()
	if d := v.failed(); d != nil {
		return m, rep, &DivergenceError{Div: *d}
	}
	if executed < total && !earlyFailure {
		if m.Stopped().LimitStop() {
			return m, rep, limitErr(m, executed, total)
		}
		return m, rep, fmt.Errorf("%w: bridged replay executed %d of %d instructions (stop: %v)",
			ErrReplay, executed, total, m.Stopped())
	}
	for i, e := range pb.Evictions {
		if gh.done[i] && gh.got[i] == e.Hash {
			rep.Bridge.Exact++
			continue
		}
		if opts.BridgeEstimates {
			rep.Bridge.Estimated = append(rep.Bridge.Estimated, e)
			continue
		}
		return m, rep, &BridgeError{Ev: e, Want: e.Hash, Got: gh.got[i]}
	}
	// Reproduce a trailing machine fault (not counted in the region), as
	// the normal replay path does.
	if pb.Failure != nil && m.Running() {
		m.StepOne()
	}
	return m, rep, nil
}

// BridgePinball materialises a gapped pinball into a complete one: the
// bridge run regenerates the full schedule, syscall and order-edge
// streams, which replace the retained fragments. The returned pinball has
// no evictions and replays like any other; the report says which windows
// verified exactly and which are estimated (the BridgeEstimates policy is
// implied — callers that want strict verification use ReplayWith). The
// caller decides what estimated content means for its analysis: the
// session layer maps it to estimated slice provenance.
func BridgePinball(prog *isa.Program, pb *pinball.Pinball, opts ReplayOptions) (*pinball.Pinball, *BridgeReport, error) {
	if !pb.Gapped() {
		return pb, &BridgeReport{}, nil
	}
	rec := &recordTracer{}
	if opts.Tracer != nil {
		opts.Tracer = vm.MultiTracer{rec, opts.Tracer}
	} else {
		opts.Tracer = rec
	}
	opts.BridgeEstimates = true
	m, rep, err := replayBridged(prog, pb, opts)
	if err != nil {
		return nil, rep.Bridge, err
	}
	out := *pb
	out.Quanta = append([]vm.Quantum(nil), m.Quanta()...)
	out.Syscalls = rec.syscalls
	out.OrderEdges = rec.edges
	out.Evictions = nil
	out.Recipe = nil
	if err := out.Validate(); err != nil {
		return nil, rep.Bridge, fmt.Errorf("%w: bridged pinball is inconsistent: %v", ErrReplay, err)
	}
	return &out, rep.Bridge, nil
}
