package pinplay

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

// Relog replays a region pinball while skipping the given per-thread code
// exclusion regions and produces a slice pinball: the new schedule covers
// only the included instructions, and each skipped region is summarised
// as a side-effect injection (its final register file, continuation pc
// and the memory cells it modified). This is PinPlay's relogger with the
// side-effects detection it uses for system calls, applied to excluded
// code regions (paper Section 4).
//
// The exclusion list must be sorted by (Tid, FromIdx) and non-overlapping
// per thread; slice.BuildExclusions produces it in that form.
func Relog(prog *isa.Program, pb *pinball.Pinball, exclusions []pinball.Exclusion) (*pinball.Pinball, error) {
	return RelogWith(prog, pb, exclusions, ReplayOptions{})
}

// RelogWith is Relog with checkpoint policy and execution limits applied
// to the underlying region replay. The produced slice pinball carries
// fresh divergence checkpoints (over included instructions only, at the
// source pinball's cadence), so slice replays are verified too.
func RelogWith(prog *isa.Program, pb *pinball.Pinball, exclusions []pinball.Exclusion, opts ReplayOptions) (*pinball.Pinball, error) {
	if pb.Kind == pinball.KindSlice {
		return nil, fmt.Errorf("pinplay: cannot relog a slice pinball")
	}
	perThread := make(map[int][]pinball.Exclusion)
	for _, e := range exclusions {
		if e.FromIdx >= e.ToIdx {
			return nil, fmt.Errorf("pinplay: empty exclusion %v", e)
		}
		lst := perThread[e.Tid]
		if n := len(lst); n > 0 && lst[n-1].ToIdx > e.FromIdx {
			return nil, fmt.Errorf("pinplay: overlapping/unsorted exclusions for thread %d", e.Tid)
		}
		perThread[e.Tid] = append(lst, e)
	}

	rt := &relogTracer{
		perThread: perThread,
		pos:       make(map[int]int),
		mem:       make(map[int]map[int64]int64),
	}
	opts.Tracer = rt
	m, v := newValidatedMachine(prog, pb, opts)
	rt.m = m
	if pb.CheckpointEvery > 0 {
		rt.ck = newCheckpointer(m, pb.CheckpointEvery)
	}

	total := pb.TotalQuantumInstrs()
	var executed int64
	for executed < total && m.StepOne() {
		executed++
		if d := v.failed(); d != nil {
			return nil, &DivergenceError{Div: *d}
		}
	}
	earlyFailure := executed < total && m.Stopped() == vm.StopFailure && pb.Failure != nil
	if !m.Stopped().LimitStop() {
		v.finish(earlyFailure)
	}
	if d := v.failed(); d != nil {
		return nil, &DivergenceError{Div: *d}
	}
	if executed < total && !earlyFailure {
		if m.Stopped().LimitStop() {
			return nil, limitErr(m, executed, total)
		}
		return nil, fmt.Errorf("%w: relog replay diverged at %d of %d (stop: %v)", ErrReplay, executed, total, m.Stopped())
	}

	out := &pinball.Pinball{
		ProgramName:  pb.ProgramName,
		Kind:         pinball.KindSlice,
		State:        pb.State,
		Quanta:       rt.quanta,
		Syscalls:     rt.syscalls,
		RegionInstrs: rt.included,
		MainInstrs:   rt.includedMain,
		SkipMain:     pb.SkipMain,
		EndReason:    pb.EndReason,
		Failure:      pb.Failure,
		Exclusions:   exclusions,
		Injections:   rt.injections,
	}
	if rt.ck != nil {
		out.CheckpointEvery = pb.CheckpointEvery
		out.Checkpoints = rt.ck.cps
	}
	return out, nil
}

// relogTracer watches a region replay, classifying every instruction as
// included or excluded, collecting the new schedule and the side-effect
// injections.
type relogTracer struct {
	vm.NopTracer
	m         *vm.Machine
	perThread map[int][]pinball.Exclusion
	pos       map[int]int // per-thread cursor into perThread

	// Side-effect detection for the currently open exclusion per thread.
	mem map[int]map[int64]int64

	included     int64
	includedMain int64
	quanta       []vm.Quantum
	syscalls     []vm.SyscallRecord
	injections   []pinball.Injection

	// ck hashes the included instructions into fresh checkpoints for the
	// slice pinball (slice replays see exactly this stream).
	ck *checkpointer

	pendingSys []vm.SyscallRecord
}

// exclusionOf returns the exclusion containing idx for tid, advancing the
// per-thread cursor (event idx values are strictly increasing per thread).
func (r *relogTracer) exclusionOf(tid int, idx int64) *pinball.Exclusion {
	lst := r.perThread[tid]
	p := r.pos[tid]
	for p < len(lst) && idx >= lst[p].ToIdx {
		p++
	}
	r.pos[tid] = p
	if p < len(lst) && idx >= lst[p].FromIdx {
		return &lst[p]
	}
	return nil
}

func (r *relogTracer) OnSyscall(rec vm.SyscallRecord) {
	// Classified when the instruction's OnInstr arrives (immediately
	// after, same instruction).
	r.pendingSys = append(r.pendingSys, rec)
}

func (r *relogTracer) OnInstr(ev *vm.InstrEvent) {
	excl := r.exclusionOf(ev.Tid, ev.Idx)
	if excl == nil {
		// Included instruction: extend the slice schedule.
		r.included++
		if ev.Tid == 0 {
			r.includedMain++
		}
		if r.ck != nil {
			r.ck.observe(ev)
		}
		if n := len(r.quanta); n > 0 && r.quanta[n-1].Tid == ev.Tid {
			r.quanta[n-1].Count++
		} else {
			r.quanta = append(r.quanta, vm.Quantum{Tid: ev.Tid, Count: 1})
		}
		for _, s := range r.pendingSys {
			r.syscalls = append(r.syscalls, s)
		}
		r.pendingSys = r.pendingSys[:0]
		return
	}

	// Excluded instruction: detect side effects.
	r.pendingSys = r.pendingSys[:0] // excluded syscalls are not replayed
	if ev.EffAddr >= 0 && ev.MemIsWrite {
		mw := r.mem[ev.Tid]
		if mw == nil {
			mw = make(map[int64]int64)
			r.mem[ev.Tid] = mw
		}
		mw[ev.EffAddr] = ev.MemVal
	}
	if ev.Idx+1 == excl.ToIdx {
		// Last excluded instruction of the region: summarise it as an
		// injection at the current position in the new schedule.
		t := r.m.Threads[ev.Tid]
		inj := pinball.Injection{
			AtStep:   r.included,
			Tid:      ev.Tid,
			NewPC:    ev.NextPC,
			NewCount: ev.Idx + 1,
			Regs:     t.Regs,
		}
		mw := r.mem[ev.Tid]
		addrs := make([]int64, 0, len(mw))
		for a := range mw {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			inj.Mem = append(inj.Mem, pinball.MemWrite{Addr: a, Val: mw[a]})
		}
		delete(r.mem, ev.Tid)
		r.injections = append(r.injections, inj)
	}
}
