// Package pinplay reimplements the record/replay core of the PinPlay
// framework on the vm substrate: a Logger that fast-forwards to an
// execution region and captures it into a pinball, a Replayer that
// deterministically re-executes a pinball, and a Relogger that replays a
// region pinball while excluding code regions to produce a smaller slice
// pinball (paper Sections 1, 2 and 4).
package pinplay

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

// RegionSpec selects which part of an execution the logger captures, in
// PinPlay's skip/length convention: both counts are in main-thread
// instructions. Length 0 means "until the program stops" (including a
// failure — which is how a bug's symptom ends up inside the pinball).
type RegionSpec struct {
	SkipMain   int64
	LengthMain int64
}

// LogConfig configures a native (original) execution for logging.
type LogConfig struct {
	// Seed drives the emulated OS scheduling nondeterminism.
	Seed int64
	// MeanQuantum is the scheduler's mean preemption quantum.
	MeanQuantum int64
	// Input is the program input consumed by read().
	Input []int64
	// RandSeed seeds the program-visible rand() syscall.
	RandSeed int64
	// MaxSteps bounds total execution (0 = default guard).
	MaxSteps int64
	// CheckpointEvery is the per-thread divergence-checkpoint cadence
	// recorded into the pinball (0 = pinball.DefaultCheckpointEvery,
	// negative = disable checkpointing).
	CheckpointEvery int64
	// JournalPath, when set, makes the logger write the capture
	// incrementally to that path as a format-v3 journal while recording
	// runs: a crash mid-record leaves a salvageable prefix on disk
	// instead of nothing. The committed journal IS the output pinball
	// file — no separate Save is needed.
	JournalPath string
	// JournalEvery is the journal flush cadence in executed region
	// instructions (0 = DefaultJournalFlushEvery).
	JournalEvery int64
	// JournalNoSync disables the per-flush fsync (faster, but a flushed
	// window is only durable against process crashes, not power loss).
	JournalNoSync bool
	// RingBytes switches recording to flight-recorder mode: the retained
	// event streams are bounded to this many estimated bytes, oldest flush
	// windows evicted first (checkpoints and each evicted window's span +
	// divergence hash are always kept, so replay can re-derive and verify
	// the gaps). 0 = full-trace recording.
	RingBytes int64
	// RingSample is the ring's sampling policy: keep 1 window in N
	// (0 or 1 = keep every window the budget allows). Sampling alone (with
	// RingBytes 0) also enables flight-recorder mode. The final window of
	// a region is always retained. The flush-window cadence is
	// JournalEvery, journal or not.
	RingSample int64
}

// DefaultJournalFlushEvery is the default journal flush cadence in
// executed region instructions. Each flush seals a window with an fsync
// (~1ms of fixed cost), so the default is sized for paper-scale regions
// (millions of instructions): frequent enough that a crash loses at most
// a modest tail, rare enough that the fsync cost stays in the single
// percents of recording time.
const DefaultJournalFlushEvery = 1 << 20

// every resolves the configured checkpoint cadence.
func (c LogConfig) every() int64 {
	switch {
	case c.CheckpointEvery < 0:
		return 0
	case c.CheckpointEvery == 0:
		return pinball.DefaultCheckpointEvery
	}
	return c.CheckpointEvery
}

func (c LogConfig) env() *vm.NativeEnv { return vm.NewNativeEnv(c.Input, c.RandSeed) }

func (c LogConfig) sched() *vm.RandomScheduler {
	mq := c.MeanQuantum
	if mq <= 0 {
		mq = 1000
	}
	return vm.NewRandomScheduler(c.Seed, mq)
}

// captureRecipe snapshots the resumable nondeterminism state at region
// entry: generator states, environment cursors and the machine's
// in-flight scheduling quantum. Gap bridging replays the region against
// exactly this state.
func captureRecipe(m *vm.Machine, sched *vm.RandomScheduler, env *vm.NativeEnv, input []int64) *pinball.Recipe {
	tid, left := m.InFlightQuantum()
	es := env.State()
	return &pinball.Recipe{
		SchedState: sched.State(),
		MeanQ:      sched.MeanQ,
		CurTid:     tid,
		CurLeft:    left,
		EnvInput:   append([]int64(nil), input...),
		EnvPos:     int64(es.InputPos),
		EnvRand:    es.RandState,
		EnvClock:   es.Clock,
	}
}

// recordTracer accumulates the nondeterministic events a pinball stores,
// plus the divergence checkpoints replay will verify.
type recordTracer struct {
	vm.NopTracer
	syscalls []vm.SyscallRecord
	edges    []vm.OrderEdge
	ck       *checkpointer // nil when checkpointing is disabled
	ring     *ringState    // nil when flight-recorder mode is off

	// Journal flushing: every flushEvery instructions flush() seals the
	// accumulated deltas to the attached journal (in ring mode, seals the
	// open ring window). Zero when neither is active.
	flushEvery int64
	sinceFlush int64
	flush      func()
}

func (r *recordTracer) OnSyscall(rec vm.SyscallRecord) { r.syscalls = append(r.syscalls, rec) }
func (r *recordTracer) OnOrderEdge(e vm.OrderEdge)     { r.edges = append(r.edges, e) }
func (r *recordTracer) OnInstr(ev *vm.InstrEvent) {
	if r.ck != nil {
		r.ck.observe(ev)
	}
	if r.ring != nil {
		r.ring.hash = foldEvent(r.ring.hash, ev)
		r.ring.step++
	}
	if r.flush != nil {
		r.sinceFlush++
		if r.sinceFlush >= r.flushEvery {
			r.sinceFlush = 0
			r.flush()
		}
	}
}

// Log executes prog natively, fast-forwards SkipMain main-thread
// instructions at uninstrumented speed, then records the region into a
// pinball. Logging ends when the main thread has executed LengthMain more
// instructions, or when the program stops (halt, exit, failure, deadlock).
func Log(prog *isa.Program, cfg LogConfig, spec RegionSpec) (*pinball.Pinball, error) {
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	sched, env := cfg.sched(), cfg.env()
	m := vm.New(prog, vm.Config{Sched: sched, Env: env, MaxSteps: maxSteps})

	// Fast-forward: the logger "does only minimal instrumentation before
	// the region, so fast-forwarding proceeds at Pin-only speed".
	for m.Threads[0].Count < spec.SkipMain && m.StepOne() {
	}
	if !m.Running() && m.Threads[0].Count < spec.SkipMain {
		return nil, fmt.Errorf("pinplay: program stopped (%v) before skip %d", m.Stopped(), spec.SkipMain)
	}

	kind := pinball.KindRegion
	if spec.SkipMain == 0 && spec.LengthMain == 0 {
		kind = pinball.KindWhole
	}
	rec := startRecording(m, cfg.every())
	if cfg.JournalPath != "" {
		if err := rec.AttachJournal(cfg.JournalPath, kind, cfg.JournalEvery, !cfg.JournalNoSync); err != nil {
			return nil, err
		}
	}
	if cfg.RingBytes > 0 || cfg.RingSample > 1 {
		// Flight-recorder mode: capture the scheduler/environment state the
		// region continues from, so evicted windows stay re-derivable.
		if err := rec.EnableRing(cfg.RingBytes, cfg.RingSample, cfg.JournalEvery, captureRecipe(m, sched, env, cfg.Input)); err != nil {
			return nil, err
		}
	}
	var endReason string
	if spec.LengthMain > 0 {
		target := m.Threads[0].Count + spec.LengthMain
		for m.Threads[0].Count < target && m.StepOne() {
		}
		endReason = "length"
		if !m.Running() {
			endReason = m.Stopped().String()
		}
	} else {
		m.Run()
		endReason = m.Stopped().String()
	}
	pb := rec.Finish(m, endReason)
	pb.Kind = kind
	pb.SkipMain = spec.SkipMain
	if err := rec.CommitJournal(pb); err != nil {
		return nil, err
	}
	return pb, nil
}

// LogUntilFailure is a convenience wrapper capturing from SkipMain to the
// program's failure point; it fails if the program does not fail.
func LogUntilFailure(prog *isa.Program, cfg LogConfig, skipMain int64) (*pinball.Pinball, error) {
	pb, err := Log(prog, cfg, RegionSpec{SkipMain: skipMain})
	if err != nil {
		return nil, err
	}
	if pb.Failure == nil {
		return nil, fmt.Errorf("pinplay: execution did not fail (end: %s)", pb.EndReason)
	}
	return pb, nil
}

// Recorder captures a region of a live machine: the debugger's
// "record on/off" commands use it directly.
type Recorder struct {
	m          *vm.Machine
	state      *vm.MachineState
	tracer     *recordTracer
	every      int64
	startMain  int64
	startSteps int64

	// Journal state (nil jw = journaling off): how much of each event
	// stream earlier flushes already consumed. The machine's run-length
	// quanta only grow, so (entry index, count within entry) marks the
	// consumed prefix exactly — a still-open quantum is flushed partially
	// and its remainder becomes the next flush's first delta entry.
	jw   *pinball.JournalWriter
	qIdx int
	qOff int64
	sIdx int
	eIdx int
	cIdx int

	// ring is non-nil in flight-recorder mode (EnableRing); it takes over
	// the tracer's flush hook, so journal chunk flushing and ring sealing
	// never run together.
	ring *ringState
}

// StartRecording snapshots the machine state and begins capturing
// nondeterministic events (with divergence checkpoints at the default
// cadence). The machine's existing tracer keeps receiving events.
func StartRecording(m *vm.Machine) *Recorder {
	return startRecording(m, pinball.DefaultCheckpointEvery)
}

// startRecording is StartRecording with an explicit checkpoint cadence
// (0 disables checkpointing).
func startRecording(m *vm.Machine, every int64) *Recorder {
	r := &Recorder{
		m:          m,
		state:      m.Snapshot(),
		tracer:     &recordTracer{},
		every:      every,
		startMain:  m.Threads[0].Count,
		startSteps: m.Steps(),
	}
	if every > 0 {
		r.tracer.ck = newCheckpointer(m, every)
	}
	m.ResetQuanta()
	m.ResetSharedTracking()
	// Shared-access order tracking only runs while a tracer is attached,
	// so recording always installs one.
	m.SetTracer(r.tracer)
	return r
}

// StartRecordingWith is StartRecording but keeps an additional tracer
// attached alongside the recorder's.
func StartRecordingWith(m *vm.Machine, extra vm.Tracer) *Recorder {
	r := StartRecording(m)
	if extra != nil {
		m.SetTracer(vm.MultiTracer{r.tracer, extra})
	}
	return r
}

// Finish stops recording and assembles the pinball. endReason documents
// why the region ended.
func (r *Recorder) Finish(m *vm.Machine, endReason string) *pinball.Pinball {
	pb := &pinball.Pinball{
		ProgramName:  m.Prog.Name,
		Kind:         pinball.KindRegion,
		State:        r.state,
		Quanta:       append([]vm.Quantum(nil), m.Quanta()...),
		Syscalls:     r.tracer.syscalls,
		OrderEdges:   r.tracer.edges,
		RegionInstrs: m.Steps() - r.startSteps,
		MainInstrs:   m.Threads[0].Count - r.startMain,
		EndReason:    endReason,
		Failure:      m.Failure(),
	}
	if r.tracer.ck != nil {
		pb.CheckpointEvery = r.every
		pb.Checkpoints = r.tracer.ck.cps
	}
	if r.ring != nil {
		// Ring mode: the retained streams live in the sealed windows, not
		// in the tracer's (reset-at-seal) accumulators.
		r.finishRing(pb)
	}
	m.SetTracer(nil)
	return pb
}

// AttachJournal starts writing the recording incrementally to path as a
// format-v3 journal. kind must match the kind the finished pinball will
// carry (the journal header pins it). flushEvery is the flush cadence in
// executed region instructions (0 = DefaultJournalFlushEvery); sync
// fsyncs every flushed window. Call between StartRecording and Finish;
// seal with CommitJournal after Finish (and any Kind/SkipMain fixups),
// or AbortJournal to leave a salvageable partial file.
func (r *Recorder) AttachJournal(path string, kind pinball.Kind, flushEvery int64, sync bool) error {
	provisional := &pinball.Pinball{
		ProgramName: r.m.Prog.Name,
		Kind:        kind,
		State:       r.state,
	}
	if r.tracer.ck != nil {
		provisional.CheckpointEvery = r.every
	}
	jw, err := pinball.NewJournalWriter(path, provisional, sync)
	if err != nil {
		return err
	}
	if flushEvery <= 0 {
		flushEvery = DefaultJournalFlushEvery
	}
	r.jw = jw
	r.tracer.flushEvery = flushEvery
	r.tracer.flush = r.flushJournal
	return nil
}

// flushJournal seals the deltas since the previous flush into one
// journal chunk. Write errors stick in the journal writer; recording is
// never interrupted by a failing journal.
func (r *Recorder) flushJournal() {
	if r.jw == nil {
		return
	}
	q := r.m.Quanta()
	var dq []vm.Quantum
	for i := r.qIdx; i < len(q); i++ {
		e := q[i]
		if i == r.qIdx {
			e.Count -= r.qOff
		}
		if e.Count > 0 {
			dq = append(dq, e)
		}
	}
	if n := len(q); n > 0 {
		r.qIdx, r.qOff = n-1, q[n-1].Count
	}
	ds := r.tracer.syscalls[r.sIdx:]
	de := r.tracer.edges[r.eIdx:]
	r.sIdx, r.eIdx = len(r.tracer.syscalls), len(r.tracer.edges)
	var dc []pinball.Checkpoint
	if ck := r.tracer.ck; ck != nil {
		dc = ck.cps[r.cIdx:]
		r.cIdx = len(ck.cps)
	}
	r.jw.AppendChunk(dq, ds, de, dc)
}

// CommitJournal flushes the recording's tail and seals the journal with
// pb's authoritative metadata, making the file a complete, loadable
// pinball. pb must be the pinball Finish returned, after the caller's
// final fixups (Kind, SkipMain) — the commit frame snapshots it.
func (r *Recorder) CommitJournal(pb *pinball.Pinball) error {
	if r.jw == nil {
		return nil
	}
	if r.ring != nil {
		// Ring mode defers retained window content to commit time: only
		// now is it known which windows survived eviction. The manifest
		// frame (budget, sampling, evictions, recipe) rides in the commit.
		for _, w := range r.ring.windows {
			r.jw.AppendChunk(w.quanta, w.syscalls, w.edges, nil)
		}
	} else {
		r.flushJournal()
	}
	err := r.jw.Commit(pb)
	r.jw = nil
	return err
}

// AbortJournal closes the journal without committing; the partial file
// stays on disk for Salvage. No-op when no journal is attached.
func (r *Recorder) AbortJournal() error {
	if r.jw == nil {
		return nil
	}
	err := r.jw.Abort()
	r.jw = nil
	return err
}

// PointSpec selects an execution region by code locations instead of
// instruction counts — the paper's "users can focus on a (buggy) region
// of execution by specifying its start and end points". StartPC triggers
// recording the nth time (StartInstance, 1-based) any thread is about to
// execute it; EndPC stops it likewise. EndPC < 0 records to program end.
type PointSpec struct {
	StartPC       int64
	StartInstance int64
	EndPC         int64
	EndInstance   int64
}

// LogBetween executes prog natively and captures the region between two
// code points into a pinball.
func LogBetween(prog *isa.Program, cfg LogConfig, spec PointSpec) (*pinball.Pinball, error) {
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	if spec.StartInstance <= 0 {
		spec.StartInstance = 1
	}
	if spec.EndInstance <= 0 {
		spec.EndInstance = 1
	}
	m := vm.New(prog, vm.Config{Sched: cfg.sched(), Env: cfg.env(), MaxSteps: maxSteps})

	// Fast-forward until some thread is about to execute the start pc for
	// the StartInstance'th time. A pending instruction may be observed
	// several times when the thread is preempted before executing it, so
	// instances are deduplicated by (tid, per-thread count).
	var seen int64
	lastCounted := map[int]int64{}
	pending := func(pc int64) bool {
		t := m.CurThread()
		if t == nil {
			return false
		}
		if t.PC != pc {
			return false
		}
		if c, ok := lastCounted[t.ID]; ok && c == t.Count {
			return false
		}
		lastCounted[t.ID] = t.Count
		return true
	}
	for {
		if m.CurThread() == nil {
			return nil, fmt.Errorf("pinplay: program stopped (%v) before reaching start point pc %d", m.Stopped(), spec.StartPC)
		}
		if pending(spec.StartPC) {
			seen++
			if seen >= spec.StartInstance {
				break
			}
		}
		if !m.StepOne() {
			return nil, fmt.Errorf("pinplay: program stopped (%v) before reaching start point pc %d", m.Stopped(), spec.StartPC)
		}
	}

	rec := startRecording(m, cfg.every())
	endReason := "end-point"
	if spec.EndPC >= 0 {
		var endSeen int64
		lastCounted = map[int]int64{}
		for {
			if !m.StepOne() {
				endReason = m.Stopped().String()
				break
			}
			if pending(spec.EndPC) {
				endSeen++
				if endSeen >= spec.EndInstance {
					break
				}
			}
		}
	} else {
		m.Run()
		endReason = m.Stopped().String()
	}
	pb := rec.Finish(m, endReason)
	pb.Kind = pinball.KindRegion
	return pb, nil
}
