package pinplay

import (
	"sort"

	"repro/internal/pinball"
	"repro/internal/vm"
)

// Flight-recorder (ring) recording. Instead of retaining the whole
// region, the recorder seals the event streams into flush windows and
// keeps a bounded FIFO of them: once the estimated retained bytes exceed
// the budget (or the sampling policy says so), the oldest windows are
// dropped. What survives an eviction is deliberately small and
// deliberately sufficient: the window's step span and the windowed
// FNV-1a hash of every instruction event inside it (plus every divergence
// checkpoint, which the ring never evicts). Gap-bridging replay
// re-derives the dropped content by re-executing the region from the
// recipe and proves the re-derivation against those hashes.

// ringWindow is one sealed flush window held in the recorder's ring.
type ringWindow struct {
	id       int64
	fromStep int64 // first global region step of the window (exclusive base)
	toStep   int64 // last global region step of the window (inclusive)
	hash     uint64
	quanta   []vm.Quantum
	syscalls []vm.SyscallRecord
	edges    []vm.OrderEdge
	est      int64 // deterministic byte estimate
}

// ringState is the recorder's flight-recorder mode state.
type ringState struct {
	budget int64 // retained byte budget (0 = unbounded)
	sample int64 // keep 1 window in N (<=1 = keep all)
	recipe *pinball.Recipe

	hash     uint64 // rolling event hash of the open window
	step     int64  // region instructions observed so far
	sealedTo int64  // region step the last sealed window ended at
	nextID   int64

	windows   []ringWindow // retained, oldest first
	kept      int64        // estimated retained bytes
	evictions []pinball.Eviction
}

// estimate is the deterministic per-window byte estimate the eviction
// policy charges against the budget. It deliberately uses fixed per-entry
// costs rather than real encoded sizes, so eviction decisions (and
// therefore the recorded pinball) are identical across runs and builds.
func (w *ringWindow) estimate() int64 {
	return 16 + 16*int64(len(w.quanta)) + 32*int64(len(w.syscalls)) + 32*int64(len(w.edges))
}

// admit appends a sealed window and applies the sampling and budget
// eviction policies. The final window of a region — the failure
// neighbourhood a flight recorder exists to keep — is exempt from
// sampling and is never evicted.
func (rs *ringState) admit(w ringWindow, final bool) {
	w.est = w.estimate()
	if !final && rs.sample > 1 && w.id%rs.sample != 0 {
		rs.evict(w)
		return
	}
	rs.windows = append(rs.windows, w)
	rs.kept += w.est
	if rs.budget > 0 {
		for rs.kept > rs.budget && len(rs.windows) > 1 {
			old := rs.windows[0]
			rs.windows = rs.windows[1:]
			rs.kept -= old.est
			rs.evict(old)
		}
	}
}

func (rs *ringState) evict(w ringWindow) {
	rs.evictions = append(rs.evictions, pinball.Eviction{
		ID: w.id, FromStep: w.fromStep, ToStep: w.toStep, Bytes: w.est, Hash: w.hash,
	})
}

// EnableRing switches the recorder to flight-recorder mode: flush
// windows of windowEvery instructions (0 = DefaultJournalFlushEvery) are
// sealed into a bounded ring of budget estimated bytes, sampled keep-1-
// in-sample, with recipe as the bridge recipe evictions will replay
// against. Call after StartRecording (and after AttachJournal when
// journaling — the recipe frame lands right behind the header sections).
func (r *Recorder) EnableRing(budget, sample, windowEvery int64, recipe *pinball.Recipe) error {
	if windowEvery <= 0 {
		windowEvery = DefaultJournalFlushEvery
	}
	r.ring = &ringState{budget: budget, sample: sample, recipe: recipe, hash: fnvOffset}
	r.tracer.ring = r.ring
	r.tracer.flushEvery = windowEvery
	r.tracer.flush = r.sealRing
	if r.jw != nil {
		return r.jw.AppendRecipe(recipe)
	}
	return nil
}

// sealRing is the tracer flush hook in ring mode.
func (r *Recorder) sealRing() { r.sealRingWindow(false) }

// sealRingWindow closes the open flush window: the event-stream deltas
// since the previous seal become the window's content, the rolling event
// hash its divergence hash. With a journal attached, the checkpoint delta
// and the tiny window-seal frame are written immediately — content is
// deferred to commit time (it may yet be evicted), which is what keeps an
// interrupted ring journal recoverable as a fully bridgeable pinball.
func (r *Recorder) sealRingWindow(final bool) {
	rs := r.ring
	if rs.step == rs.sealedTo {
		return
	}
	q := r.m.Quanta()
	var dq []vm.Quantum
	for i := r.qIdx; i < len(q); i++ {
		e := q[i]
		if i == r.qIdx {
			e.Count -= r.qOff
		}
		if e.Count > 0 {
			dq = append(dq, e)
		}
	}
	if n := len(q); n > 0 {
		r.qIdx, r.qOff = n-1, q[n-1].Count
	}
	ds, de := r.tracer.syscalls, r.tracer.edges
	r.tracer.syscalls, r.tracer.edges = nil, nil
	var dc []pinball.Checkpoint
	if ck := r.tracer.ck; ck != nil {
		dc = ck.cps[r.cIdx:]
		r.cIdx = len(ck.cps)
	}

	w := ringWindow{
		id: rs.nextID, fromStep: rs.sealedTo, toStep: rs.step,
		hash: rs.hash, quanta: dq, syscalls: ds, edges: de,
	}
	rs.nextID++
	rs.sealedTo = rs.step
	rs.hash = fnvOffset // windowed: the next window hashes afresh
	if r.jw != nil {
		if len(dc) > 0 {
			r.jw.AppendChunk(nil, nil, nil, dc)
		}
		r.jw.AppendWindowSeal(w.id, w.fromStep, w.toStep, w.hash)
	}
	rs.admit(w, final)
}

// finishRing seals the tail window and assembles the ring fields and the
// retained event streams onto the finished pinball. Retained quanta are
// re-merged across window boundaries (a seal can split a still-open
// quantum), matching both the machine's maximal run-length form and the
// v3 decoder's chunk merge.
func (r *Recorder) finishRing(pb *pinball.Pinball) {
	rs := r.ring
	r.sealRingWindow(true)
	sort.Slice(rs.evictions, func(i, j int) bool { return rs.evictions[i].FromStep < rs.evictions[j].FromStep })

	var q []vm.Quantum
	var sys []vm.SyscallRecord
	var edges []vm.OrderEdge
	for _, w := range rs.windows {
		for _, e := range w.quanta {
			if n := len(q); n > 0 && q[n-1].Tid == e.Tid {
				q[n-1].Count += e.Count
				continue
			}
			q = append(q, e)
		}
		sys = append(sys, w.syscalls...)
		edges = append(edges, w.edges...)
	}
	pb.Quanta, pb.Syscalls, pb.OrderEdges = q, sys, edges
	pb.RingBytes, pb.SampleKeep = rs.budget, rs.sample
	pb.Evictions = rs.evictions
	pb.Recipe = rs.recipe
}

// RingStats summarises what a ring recording retained and dropped.
type RingStats struct {
	Windows   int   // windows sealed
	Retained  int   // windows kept
	Evicted   int   // windows dropped
	KeptBytes int64 // estimated retained content bytes
	GapInstrs int64 // instructions covered by evicted windows
}

// RingStats reports the recorder's ring occupancy; zero value when ring
// mode is off.
func (r *Recorder) RingStats() RingStats {
	rs := r.ring
	if rs == nil {
		return RingStats{}
	}
	st := RingStats{
		Windows:   int(rs.nextID),
		Retained:  len(rs.windows),
		Evicted:   len(rs.evictions),
		KeptBytes: rs.kept,
	}
	for _, e := range rs.evictions {
		st.GapInstrs += e.Span()
	}
	return st
}
