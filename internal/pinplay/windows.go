package pinplay

import (
	"repro/internal/pinball"
	"repro/internal/tracer"
)

// TraceWindows shards a region trace of traceLen entries into the
// windows the parallel slicing engine processes concurrently. The
// window size is the pinball's divergence-checkpoint cadence
// (CheckpointEvery, per PR-1), so shard boundaries line up with the
// granularity at which replays are already validated: a divergence is
// pinned to one checkpoint window, and the dependence shards a cached
// engine holds for the other windows remain trustworthy. Legacy
// pinballs (no checkpoints recorded) fall back to the default cadence.
func TraceWindows(pb *pinball.Pinball, traceLen int) []tracer.Window {
	return tracer.SplitWindows(traceLen, WindowSize(pb))
}

// WindowSize returns the pinball's shard-window size: the recorded
// divergence-checkpoint cadence, or the default cadence for legacy
// pinballs.
func WindowSize(pb *pinball.Pinball) int {
	every := int64(pinball.DefaultCheckpointEvery)
	if pb != nil && pb.CheckpointEvery > 0 {
		every = pb.CheckpointEvery
	}
	return int(every)
}

// CheckpointWindowsOf returns, per thread, the per-thread instruction
// ranges [from, to) covered by consecutive recorded checkpoints — the
// replay-validation windows of the pinball. Tools use it to reason
// about which part of a trace a divergence report invalidates.
func CheckpointWindowsOf(pb *pinball.Pinball) map[int][][2]int64 {
	out := make(map[int][][2]int64)
	last := make(map[int]int64)
	for _, cp := range pb.Checkpoints {
		from := last[cp.Tid]
		out[cp.Tid] = append(out[cp.Tid], [2]int64{from, cp.Seq})
		last[cp.Tid] = cp.Seq
	}
	return out
}
