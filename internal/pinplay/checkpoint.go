package pinplay

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

// Divergence checkpoints (after rr's early-divergence checks): while
// logging, a rolling hash of each thread's instruction stream — pc,
// per-thread index, effective address, value moved, control target — is
// folded instruction by instruction, and every CheckpointEvery
// instructions the hash plus the thread's full register file and pc are
// recorded into the pinball. Replay recomputes the identical fold and
// compares at each checkpoint, so a divergent replay is caught inside
// the first bad window of at most CheckpointEvery instructions instead
// of as a terminal instruction-count mismatch (or, worse, a silently
// wrong end state).
//
// The hash is windowed: it restarts from the FNV offset after every
// checkpoint, so each recorded hash covers exactly one window. Windows
// are therefore independent — a divergence (or a tampered checkpoint
// record) is reported once per bad window and cannot cascade into later
// ones, which is what makes degraded log-and-continue mode useful.

// fnv-1a (word-folded) rolling hash.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fold(h uint64, v int64) uint64 {
	return (h ^ uint64(v)) * fnvPrime
}

// foldEvent extends a thread's rolling hash with one executed
// instruction. The folded fields pin down the thread's control path and
// data movement; the register file itself is compared (not hashed) at
// checkpoint boundaries.
func foldEvent(h uint64, ev *vm.InstrEvent) uint64 {
	h = fold(h, ev.PC)
	h = fold(h, ev.Idx)
	h = fold(h, ev.EffAddr)
	if ev.EffAddr >= 0 {
		h = fold(h, ev.MemVal)
	}
	h = fold(h, ev.NextPC)
	return h
}

// threadHash is one thread's rolling state on either side (record or
// validate).
type threadHash struct {
	h   uint64
	n   int64 // region instructions this thread has executed
	pos int   // validator: cursor into cps
	cps []pinball.Checkpoint

	lastIdx  int64 // per-thread index after the last good checkpoint
	lastStep int64 // global step of the last good checkpoint
}

// checkpointer records checkpoints during logging (and, for slice
// pinballs, during relogging — where it observes included instructions
// only, so the cadence is in slice instructions).
type checkpointer struct {
	m       *vm.Machine
	every   int64
	step    int64
	threads map[int]*threadHash
	cps     []pinball.Checkpoint
}

func newCheckpointer(m *vm.Machine, every int64) *checkpointer {
	return &checkpointer{m: m, every: every, threads: make(map[int]*threadHash)}
}

func (c *checkpointer) observe(ev *vm.InstrEvent) {
	th := c.threads[ev.Tid]
	if th == nil {
		th = &threadHash{h: fnvOffset}
		c.threads[ev.Tid] = th
	}
	th.h = foldEvent(th.h, ev)
	th.n++
	c.step++
	if th.n%c.every == 0 {
		t := c.m.Threads[ev.Tid]
		c.cps = append(c.cps, pinball.Checkpoint{
			Tid: ev.Tid, Seq: th.n, Idx: ev.Idx, Step: c.step,
			Hash: th.h, PC: t.PC, Regs: t.Regs,
		})
		th.h = fnvOffset // windowed: the next checkpoint hashes afresh
	}
}

// RegDiff is one mismatching register at a failed checkpoint.
type RegDiff struct {
	Reg       isa.Reg
	Want, Got int64
}

// Divergence pins a replay divergence down to the first bad window: the
// replayed execution matched the recording at (FromStep, FromIdx) and no
// longer matches at (ToStep, ToIdx), with the register and control
// differences observed at the failed checkpoint. When the registers and
// pc agree but the rolling hash does not, the divergence is in the
// memory/control trace between the two checkpoints (MemTrace).
type Divergence struct {
	Tid      int
	FromStep int64 // last matching checkpoint, global region step (0 = region entry)
	ToStep   int64 // failed checkpoint, global region step
	FromIdx  int64 // last matching checkpoint, per-thread index (−1 = region entry)
	ToIdx    int64 // failed checkpoint, per-thread index

	WantHash, GotHash uint64
	WantPC, GotPC     int64
	RegDiffs          []RegDiff
	MemTrace          bool
}

// Window formats the divergent window in the paper's step notation.
func (d Divergence) Window() string {
	return fmt.Sprintf("thread %d, steps [%d, %d), per-thread instructions (%d, %d]",
		d.Tid, d.FromStep, d.ToStep, d.FromIdx, d.ToIdx)
}

func (d Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "first divergent window: %s", d.Window())
	if d.WantPC != d.GotPC {
		fmt.Fprintf(&b, "; pc %d, recorded %d", d.GotPC, d.WantPC)
	}
	for i, rd := range d.RegDiffs {
		if i == 4 {
			fmt.Fprintf(&b, "; … %d more registers differ", len(d.RegDiffs)-i)
			break
		}
		fmt.Fprintf(&b, "; r%d=%d, recorded %d", rd.Reg, rd.Got, rd.Want)
	}
	if d.MemTrace {
		fmt.Fprintf(&b, "; memory/control trace hash %016x, recorded %016x", d.GotHash, d.WantHash)
	}
	return b.String()
}

// DivergenceError is the typed replay-divergence failure; it wraps
// ErrReplay so callers can classify with errors.Is and recover the
// window with errors.As.
type DivergenceError struct {
	Div Divergence
}

func (e *DivergenceError) Error() string {
	return "pinplay: replay diverged: " + e.Div.String()
}

// Is makes errors.Is(err, ErrReplay) match.
func (e *DivergenceError) Is(target error) bool { return target == ErrReplay }

// checkpointValidator replays the rolling-hash fold and compares against
// the pinball's recorded checkpoints. It is attached as a tracer; the
// replay loops poll failed() after every step.
type checkpointValidator struct {
	vm.NopTracer
	m       *vm.Machine
	pb      *pinball.Pinball
	threads map[int]*threadHash
	step    int64

	warnOnly bool
	onDiv    func(Divergence)

	divs    []Divergence
	checked int
	fatal   *Divergence
}

// newValidator builds a validator for pb's checkpoints, or returns nil
// when the pinball has none (legacy files, checkpointing disabled).
func newValidator(m *vm.Machine, pb *pinball.Pinball, warnOnly bool, onDiv func(Divergence)) *checkpointValidator {
	if len(pb.Checkpoints) == 0 {
		return nil
	}
	v := &checkpointValidator{
		m: m, pb: pb, threads: make(map[int]*threadHash),
		warnOnly: warnOnly, onDiv: onDiv,
	}
	for _, cp := range pb.Checkpoints {
		th := v.threads[cp.Tid]
		if th == nil {
			th = &threadHash{h: fnvOffset, lastIdx: -1}
			v.threads[cp.Tid] = th
		}
		th.cps = append(th.cps, cp)
	}
	return v
}

func (v *checkpointValidator) OnInstr(ev *vm.InstrEvent) {
	th := v.threads[ev.Tid]
	if th == nil {
		th = &threadHash{h: fnvOffset, lastIdx: -1}
		v.threads[ev.Tid] = th
	}
	th.h = foldEvent(th.h, ev)
	th.n++
	v.step++
	if th.pos >= len(th.cps) || th.n != th.cps[th.pos].Seq {
		return
	}
	cp := th.cps[th.pos]
	th.pos++
	v.checked++
	t := v.m.Threads[ev.Tid]
	got := th.h
	th.h = fnvOffset // windowed: the next checkpoint hashes afresh
	if got == cp.Hash && t.PC == cp.PC && t.Regs == cp.Regs && ev.Idx == cp.Idx {
		th.lastIdx, th.lastStep = cp.Idx, cp.Step
		return
	}
	d := Divergence{
		Tid:      ev.Tid,
		FromStep: th.lastStep, ToStep: v.step,
		FromIdx: th.lastIdx, ToIdx: ev.Idx,
		WantHash: cp.Hash, GotHash: got,
		WantPC: cp.PC, GotPC: t.PC,
	}
	for r := 0; r < isa.NumRegs; r++ {
		if t.Regs[r] != cp.Regs[r] {
			d.RegDiffs = append(d.RegDiffs, RegDiff{Reg: isa.Reg(r), Want: cp.Regs[r], Got: t.Regs[r]})
		}
	}
	d.MemTrace = got != cp.Hash && len(d.RegDiffs) == 0 && d.WantPC == d.GotPC
	v.record(d)
	// Resynchronise the window baseline so degraded mode reports each
	// divergent window once instead of cascading.
	th.lastIdx, th.lastStep = cp.Idx, cp.Step
}

// record registers a divergence under the active policy.
func (v *checkpointValidator) record(d Divergence) {
	v.divs = append(v.divs, d)
	if v.onDiv != nil {
		v.onDiv(d)
	}
	if !v.warnOnly && v.fatal == nil {
		v.fatal = &v.divs[len(v.divs)-1]
	}
}

// failed returns the fatal divergence under the abort policy, else nil.
func (v *checkpointValidator) failed() *Divergence {
	if v == nil {
		return nil
	}
	return v.fatal
}

// finish performs the end-of-replay check: checkpoints that were never
// reached mean the replay fell short of the recorded execution (e.g. a
// tampered, shortened schedule). earlyFailure indicates the replay
// legitimately stopped at the recorded failure, where trailing
// checkpoints past the failure point cannot be reached.
func (v *checkpointValidator) finish(earlyFailure bool) {
	if v == nil || earlyFailure {
		return
	}
	for tid, th := range v.threads {
		if th.pos < len(th.cps) {
			cp := th.cps[th.pos]
			v.record(Divergence{
				Tid:      tid,
				FromStep: th.lastStep, ToStep: cp.Step,
				FromIdx: th.lastIdx, ToIdx: cp.Idx,
				WantHash: cp.Hash, GotHash: th.h,
				WantPC: cp.PC, GotPC: -1,
				MemTrace: false,
			})
			return
		}
	}
}

// report converts the validator state into the replay report fields.
func (v *checkpointValidator) report() (checked int, divs []Divergence) {
	if v == nil {
		return 0, nil
	}
	return v.checked, v.divs
}
