package pinplay

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pinball"
	"repro/internal/vm"
)

// ioSrc exercises every environment syscall the recipe must resume
// (read, rand, time) alongside multi-thread scheduling.
const ioSrc = `
int mtx;
int sum;
int worker(int id) {
	int i;
	for (i = 0; i < 30; i++) {
		lock(&mtx);
		sum = sum + rand() % 7 + time() % 3;
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int i;
	int t1 = spawn(worker, 1);
	int t2 = spawn(worker, 2);
	for (i = 0; i < 20; i++) {
		lock(&mtx);
		sum = sum + read();
		unlock(&mtx);
	}
	join(t1);
	join(t2);
	write(sum);
	return 0;
}`

func ringInput() []int64 {
	in := make([]int64, 64)
	for i := range in {
		in[i] = int64(i*3 + 1)
	}
	return in
}

// logPair records the same execution twice: once full-trace, once in
// ring mode with the given budget/sample, and returns both pinballs.
func logPair(t *testing.T, src string, spec RegionSpec, budget, sample int64) (*pinball.Pinball, *pinball.Pinball) {
	t.Helper()
	prog := compileT(t, src)
	cfg := LogConfig{Seed: 11, MeanQuantum: 13, Input: ringInput(), RandSeed: 5}
	full, err := Log(prog, cfg, spec)
	if err != nil {
		t.Fatalf("full log: %v", err)
	}
	rcfg := cfg
	rcfg.RingBytes, rcfg.RingSample = budget, sample
	rcfg.JournalEvery = 150 // ring window cadence
	ring, err := Log(prog, rcfg, spec)
	if err != nil {
		t.Fatalf("ring log: %v", err)
	}
	return full, ring
}

func TestRingNoEvictionMatchesFullTrace(t *testing.T) {
	full, ring := logPair(t, ioSrc, RegionSpec{}, 1 << 40, 0)
	if len(ring.Evictions) != 0 {
		t.Fatalf("unexpected evictions under a huge budget: %v", ring.Evictions)
	}
	if ring.Recipe == nil {
		t.Fatal("ring pinball has no recipe")
	}
	if !reflect.DeepEqual(full.Quanta, ring.Quanta) {
		t.Errorf("quanta differ: full %d entries, ring %d entries", len(full.Quanta), len(ring.Quanta))
	}
	if !reflect.DeepEqual(full.Syscalls, ring.Syscalls) {
		t.Errorf("syscalls differ: full %d, ring %d", len(full.Syscalls), len(ring.Syscalls))
	}
	if !reflect.DeepEqual(full.OrderEdges, ring.OrderEdges) {
		t.Errorf("order edges differ: full %d, ring %d", len(full.OrderEdges), len(ring.OrderEdges))
	}
	if !reflect.DeepEqual(full.Checkpoints, ring.Checkpoints) {
		t.Error("checkpoints differ")
	}
	if ring.RegionInstrs != full.RegionInstrs {
		t.Errorf("region %d, want %d", ring.RegionInstrs, full.RegionInstrs)
	}
}

func TestRingEvictionBridgesExactly(t *testing.T) {
	full, ring := logPair(t, ioSrc, RegionSpec{}, 400, 0)
	if len(ring.Evictions) == 0 {
		t.Fatal("tiny budget produced no evictions")
	}
	if ring.GapInstrs() == 0 {
		t.Fatal("evictions cover no instructions")
	}
	if err := ring.Validate(); err != nil {
		t.Fatalf("gapped pinball invalid: %v", err)
	}

	fm, err := Replay(compileT(t, ioSrc), full, nil)
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	prog := compileT(t, ioSrc)
	rm, rep, err := ReplayWith(prog, ring, ReplayOptions{})
	if err != nil {
		t.Fatalf("bridged replay: %v", err)
	}
	if rep.Bridge == nil {
		t.Fatal("no bridge report")
	}
	if rep.Bridge.Exact != len(ring.Evictions) || len(rep.Bridge.Estimated) != 0 {
		t.Fatalf("bridge exact=%d estimated=%d, want %d exact", rep.Bridge.Exact, len(rep.Bridge.Estimated), len(ring.Evictions))
	}
	if !fm.Snapshot().Mem.Equal(rm.Snapshot().Mem) {
		t.Error("bridged replay reached a different memory state")
	}
	if !reflect.DeepEqual(fm.Output(), rm.Output()) {
		t.Errorf("bridged output %v, full output %v", rm.Output(), fm.Output())
	}
}

func TestRingBridgeMidQuantumRegion(t *testing.T) {
	// A skipped prefix leaves the scheduler mid-quantum at region entry;
	// the recipe's primed quantum must reproduce that exactly.
	full, ring := logPair(t, ioSrc, RegionSpec{SkipMain: 137, LengthMain: 400}, 300, 0)
	if len(ring.Evictions) == 0 {
		t.Fatal("no evictions")
	}
	prog := compileT(t, ioSrc)
	fm, err := Replay(prog, full, nil)
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	rm, rep, err := ReplayWith(prog, ring, ReplayOptions{})
	if err != nil {
		t.Fatalf("bridged replay: %v", err)
	}
	if rep.Bridge.Exact != len(ring.Evictions) {
		t.Fatalf("only %d of %d windows bridged exactly", rep.Bridge.Exact, len(ring.Evictions))
	}
	if !fm.Snapshot().Mem.Equal(rm.Snapshot().Mem) {
		t.Error("bridged replay reached a different memory state")
	}
}

func TestRingSamplingEvicts(t *testing.T) {
	_, ring := logPair(t, ioSrc, RegionSpec{}, 0, 2)
	if len(ring.Evictions) == 0 {
		t.Fatal("sampling keep-1-in-2 evicted nothing")
	}
	if ring.SampleKeep != 2 {
		t.Errorf("SampleKeep = %d", ring.SampleKeep)
	}
	prog := compileT(t, ioSrc)
	if _, rep, err := ReplayWith(prog, ring, ReplayOptions{}); err != nil {
		t.Fatalf("bridged replay: %v", err)
	} else if rep.Bridge.Exact != len(ring.Evictions) {
		t.Errorf("exact = %d, want %d", rep.Bridge.Exact, len(ring.Evictions))
	}
}

func TestRingBridgeDetectsFlippedHash(t *testing.T) {
	_, ring := logPair(t, ioSrc, RegionSpec{}, 400, 0)
	if len(ring.Evictions) == 0 {
		t.Fatal("no evictions")
	}
	prog := compileT(t, ioSrc)
	ring.Evictions[0].Hash ^= 1

	// Strict policy: a typed bridge error, classified as a replay failure.
	_, _, err := ReplayWith(prog, ring, ReplayOptions{})
	if !errors.Is(err, ErrBridge) || !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v, want ErrBridge wrapping ErrReplay", err)
	}
	var be *BridgeError
	if !errors.As(err, &be) || be.Ev.ID != ring.Evictions[0].ID {
		t.Fatalf("err = %v, want BridgeError for window %d", err, ring.Evictions[0].ID)
	}

	// Estimate policy: the replay completes, the window is flagged.
	_, rep, err := ReplayWith(prog, ring, ReplayOptions{BridgeEstimates: true})
	if err != nil {
		t.Fatalf("estimates replay: %v", err)
	}
	if len(rep.Bridge.Estimated) != 1 || rep.Bridge.Estimated[0].ID != ring.Evictions[0].ID {
		t.Fatalf("estimated = %v, want exactly the flipped window", rep.Bridge.Estimated)
	}
	if rep.Bridge.Exact != len(ring.Evictions)-1 {
		t.Errorf("exact = %d, want %d", rep.Bridge.Exact, len(ring.Evictions)-1)
	}
}

func TestRingBridgeDetectsTamperedRecipe(t *testing.T) {
	_, ring := logPair(t, ioSrc, RegionSpec{}, 400, 0)
	prog := compileT(t, ioSrc)
	ring.Recipe.SchedState ^= 1
	_, _, err := ReplayWith(prog, ring, ReplayOptions{})
	if !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v, want a typed replay failure", err)
	}
}

func TestBridgePinballMatchesFullTrace(t *testing.T) {
	full, ring := logPair(t, ioSrc, RegionSpec{}, 400, 0)
	prog := compileT(t, ioSrc)
	bpb, brep, err := BridgePinball(prog, ring, ReplayOptions{})
	if err != nil {
		t.Fatalf("bridge: %v", err)
	}
	if brep.Degraded() {
		t.Fatalf("unexpected estimated windows: %v", brep.Estimated)
	}
	if bpb.Gapped() {
		t.Fatal("bridged pinball still gapped")
	}
	if !reflect.DeepEqual(full.Quanta, bpb.Quanta) {
		t.Errorf("regenerated quanta differ (%d vs %d entries)", len(bpb.Quanta), len(full.Quanta))
	}
	if !reflect.DeepEqual(full.Syscalls, bpb.Syscalls) {
		t.Errorf("regenerated syscalls differ (%d vs %d)", len(bpb.Syscalls), len(full.Syscalls))
	}
	if !reflect.DeepEqual(full.OrderEdges, bpb.OrderEdges) {
		t.Errorf("regenerated order edges differ (%d vs %d)", len(bpb.OrderEdges), len(full.OrderEdges))
	}
	if err := CheckReplayDeterminism(prog, bpb); err != nil {
		t.Errorf("bridged pinball: %v", err)
	}
}

func TestRingCapturesFailure(t *testing.T) {
	src := `
int x;
int racer(int v) { x = v; return 0; }
int main() {
	int i; int t;
	for (i = 0; i < 200; i++) { x = x + rand() % 3; }
	t = spawn(racer, 5);
	x = 1;
	join(t);
	assert(x == 1);
	return 0;
}`
	prog := compileT(t, src)
	var ring *pinball.Pinball
	for seed := int64(1); seed < 64; seed++ {
		cfg := LogConfig{Seed: seed, MeanQuantum: 3, RandSeed: 2, RingBytes: 300, JournalEvery: 100}
		got, err := Log(prog, cfg, RegionSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Failure != nil && len(got.Evictions) > 0 {
			ring = got
			break
		}
	}
	if ring == nil {
		t.Skip("no seed exposed the race with evictions")
	}
	m, rep, err := ReplayWith(prog, ring, ReplayOptions{})
	if err != nil {
		t.Fatalf("bridged replay: %v", err)
	}
	if rep.Bridge.Exact != len(ring.Evictions) {
		t.Errorf("exact = %d of %d", rep.Bridge.Exact, len(ring.Evictions))
	}
	if m.Stopped() != vm.StopFailure {
		t.Fatalf("stop = %v, want failure", m.Stopped())
	}
	if f := m.Failure(); f.Tid != ring.Failure.Tid || f.PC != ring.Failure.PC {
		t.Errorf("failure at tid %d pc %d, logged tid %d pc %d", f.Tid, f.PC, ring.Failure.Tid, ring.Failure.PC)
	}
}

func TestRingJournalCommitRoundTrip(t *testing.T) {
	prog := compileT(t, ioSrc)
	path := filepath.Join(t.TempDir(), "ring.pb")
	cfg := LogConfig{
		Seed: 11, MeanQuantum: 13, Input: ringInput(), RandSeed: 5,
		JournalPath: path, JournalEvery: 150, JournalNoSync: true,
		RingBytes: 400,
	}
	pb, err := Log(prog, cfg, RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	if len(pb.Evictions) == 0 {
		t.Fatal("no evictions")
	}
	loaded, err := pinball.Load(path)
	if err != nil {
		t.Fatalf("load committed ring journal: %v", err)
	}
	if loaded.ID() != pb.ID() {
		t.Fatalf("journal round trip changed the pinball: %s vs %s", loaded.ID(), pb.ID())
	}
	if loaded.Recipe == nil || len(loaded.Evictions) != len(pb.Evictions) {
		t.Fatal("ring fields lost in the journal round trip")
	}
	if _, rep, err := ReplayWith(prog, loaded, ReplayOptions{}); err != nil {
		t.Fatalf("replay of loaded ring journal: %v", err)
	} else if rep.Bridge.Exact != len(loaded.Evictions) {
		t.Errorf("exact = %d of %d", rep.Bridge.Exact, len(loaded.Evictions))
	}
}

// TestRingJournalTornSalvageBridges is the end-to-end crash story: a
// real ring recording's journal is torn at an arbitrary mid-file frame
// boundary (as a crash would leave it), salvaged into a fully evicted
// pinball, and gap-bridging replay re-derives the whole prefix and
// proves it against the retained window hashes.
func TestRingJournalTornSalvageBridges(t *testing.T) {
	prog := compileT(t, ioSrc)
	path := filepath.Join(t.TempDir(), "ring.pb")
	cfg := LogConfig{
		Seed: 11, MeanQuantum: 13, Input: ringInput(), RandSeed: 5,
		JournalPath: path, JournalEvery: 150, JournalNoSync: true,
		RingBytes: 400,
	}
	if _, err := Log(prog, cfg, RegionSpec{}); err != nil {
		t.Fatalf("log: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the journal's frames (13-byte header: id, length, CRC) and cut
	// a few bytes into every window-seal frame (id 15) past the first.
	const headerLen, frameHdr = 6, 13
	var cuts []int64
	seals := 0
	for off := int64(headerLen); off+frameHdr <= int64(len(data)); {
		id := data[off]
		plen := int64(binary.BigEndian.Uint64(data[off+1 : off+9]))
		if id == 15 {
			seals++
			if seals > 1 {
				cuts = append(cuts, off+5)
			}
		}
		off += frameHdr + plen
	}
	if len(cuts) == 0 {
		t.Fatalf("recording sealed only %d windows; no mid-file tear point", seals)
	}
	for i, cut := range cuts {
		pb, rep, err := pinball.SalvageBytes(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: salvage: %v\n%s", i, err, rep.Summary())
		}
		if rep.Evicted == 0 || !pb.Gapped() || len(pb.Quanta) != 0 {
			t.Fatalf("cut %d: salvage kept content (evicted=%d quanta=%d), want fully evicted", i, rep.Evicted, len(pb.Quanta))
		}
		_, rrep, err := ReplayWith(prog, pb, ReplayOptions{})
		if err != nil {
			t.Fatalf("cut %d: bridged replay of salvaged pinball: %v", i, err)
		}
		if rrep.Bridge.Exact != len(pb.Evictions) || len(rrep.Bridge.Estimated) != 0 {
			t.Errorf("cut %d: exact=%d estimated=%d of %d windows", i, rrep.Bridge.Exact, len(rrep.Bridge.Estimated), len(pb.Evictions))
		}
	}
}

func TestRingStatsReporting(t *testing.T) {
	prog := compileT(t, ioSrc)
	cfg := LogConfig{Seed: 11, MeanQuantum: 13, Input: ringInput(), RandSeed: 5}
	m := vm.New(prog, vm.Config{Sched: cfg.sched(), Env: cfg.env(), MaxSteps: 1 << 30})
	rec := StartRecording(m)
	if st := rec.RingStats(); st != (RingStats{}) {
		t.Errorf("non-ring recorder reports ring stats: %+v", st)
	}
	m.SetTracer(nil)
}
