package pinplay

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

// ErrReplay is the sentinel all replay failures wrap: checkpoint
// divergences, terminal instruction-count mismatches and executions cut
// off by a limit. Tools classify "replay went wrong" (versus "pinball
// unreadable", the pinball.Err* family) with errors.Is(err, ErrReplay).
var ErrReplay = errors.New("replay failed")

// ErrLimit marks replays cut off by an execution limit (instruction
// budget, deadline, memory cap or cancellation) rather than by a real
// divergence. Limit errors wrap both ErrReplay and ErrLimit, so
// errors.Is(err, ErrLimit) distinguishes "ran out of budget" from "the
// replay went wrong" — the supervisor fails fast on the former instead
// of retrying a deterministic exhaustion.
var ErrLimit = errors.New("execution limit hit")

// ReplayOptions configures a replay beyond the bare defaults: an
// observing tracer, the divergence-checkpoint policy and execution
// limits so a tampered pinball can never hang the caller.
type ReplayOptions struct {
	// Tracer observes the replayed execution (how analysis pintools such
	// as the slicer attach). Optional.
	Tracer vm.Tracer
	// Degraded switches checkpoint validation from fail-fast to
	// log-and-continue: divergences are recorded in the report (and
	// OnDivergence fires) but the replay runs to the end of the region.
	Degraded bool
	// NoVerify disables checkpoint validation entirely.
	NoVerify bool
	// OnDivergence, if set, is called for every divergent window found.
	OnDivergence func(Divergence)
	// Limits bounds the replay (instruction budget, wall-clock deadline,
	// memory cap, cancellation). The zero value imposes no bounds.
	// Gap-bridging replays additionally clamp the instruction budget to
	// the recorded region length, so a tampered recipe cannot hang them.
	Limits vm.Limits
	// BridgeEstimates switches gap-bridge hash verification from fail-fast
	// (BridgeError) to carry-on: windows whose re-derived hash mismatches
	// are listed as estimated in the bridge report and the replay
	// completes. Checkpoint divergences still follow the Degraded policy.
	BridgeEstimates bool
	// OnMachine, if set, is called with the replay machine after it is
	// built and before the first instruction executes — the hook for
	// observers that need the machine to construct themselves (e.g. the
	// def/use trace collector).
	OnMachine func(*vm.Machine)
}

// ReplayReport summarises what a replay verified.
type ReplayReport struct {
	Executed    int64
	Checked     int // checkpoints compared
	Divergences []Divergence
	// Bridge is set when the pinball had evicted windows and the replay
	// ran as a gap bridge.
	Bridge *BridgeReport
}

// NewReplayMachine builds a machine that runs off a pinball: initial
// state restored, schedule and syscall results fed from the capture. The
// optional tracer observes the replayed execution (this is how analysis
// pintools such as the slicer attach).
func NewReplayMachine(prog *isa.Program, pb *pinball.Pinball, tracer vm.Tracer) *vm.Machine {
	m := vm.NewFromState(prog, pb.State, vm.Config{
		Sched:  vm.NewReplayScheduler(pb.Quanta),
		Env:    vm.NewReplayEnv(pb.Syscalls),
		Tracer: tracer,
	})
	return m
}

// newValidatedMachine builds the replay machine with the checkpoint
// validator (when the pinball carries checkpoints and the policy allows)
// chained in front of the caller's tracer, and the limits applied.
func newValidatedMachine(prog *isa.Program, pb *pinball.Pinball, opts ReplayOptions) (*vm.Machine, *checkpointValidator) {
	m := NewReplayMachine(prog, pb, nil)
	var v *checkpointValidator
	if !opts.NoVerify {
		v = newValidator(m, pb, opts.Degraded, opts.OnDivergence)
	}
	switch {
	case v != nil && opts.Tracer != nil:
		m.SetTracer(vm.MultiTracer{v, opts.Tracer})
	case v != nil:
		// The validator consumes no order edges; skip the per-access
		// bookkeeping that only exists to produce them.
		m.SetTracer(v)
		m.SetOrderTracking(false)
	case opts.Tracer != nil:
		m.SetTracer(opts.Tracer)
	}
	m.SetLimits(opts.Limits)
	if opts.OnMachine != nil {
		opts.OnMachine(m)
	}
	return m, v
}

// limitErr converts a limit-triggered stop into a typed replay error
// wrapping both ErrReplay and ErrLimit.
func limitErr(m *vm.Machine, executed, total int64) error {
	return fmt.Errorf("%w: %w: %v after %d of %d instructions", ErrReplay, ErrLimit, m.Stopped(), executed, total)
}

// Replay deterministically re-executes the pinball's region to its end
// and returns the machine in its end-of-region state. The replay stops
// exactly after the recorded number of instructions, or earlier if the
// region ends in the recorded failure. Divergence checkpoints recorded
// in the pinball are validated along the way.
func Replay(prog *isa.Program, pb *pinball.Pinball, tracer vm.Tracer) (*vm.Machine, error) {
	m, _, err := ReplayWith(prog, pb, ReplayOptions{Tracer: tracer})
	return m, err
}

// ReplayWith is Replay with full control over validation policy, limits
// and observation, returning the verification report.
func ReplayWith(prog *isa.Program, pb *pinball.Pinball, opts ReplayOptions) (*vm.Machine, *ReplayReport, error) {
	if pb.Kind == pinball.KindSlice {
		return ReplaySliceWith(prog, pb, opts)
	}
	if pb.Gapped() {
		// Flight-recorder pinball: the recorded streams have holes, so the
		// replay runs as a verified native re-execution instead.
		return replayBridged(prog, pb, opts)
	}
	m, v := newValidatedMachine(prog, pb, opts)
	total := pb.TotalQuantumInstrs()
	var executed int64
	rep := &ReplayReport{}
	for executed < total && m.StepOne() {
		executed++
		if d := v.failed(); d != nil {
			rep.Executed = executed
			rep.Checked, rep.Divergences = v.report()
			return m, rep, &DivergenceError{Div: *d}
		}
	}
	earlyFailure := executed < total && m.Stopped() == vm.StopFailure && pb.Failure != nil
	if !m.Stopped().LimitStop() {
		// Checkpoints unreached because a limit cut the replay short are
		// expected, not divergence — skip the end-of-replay check then.
		v.finish(earlyFailure)
	}
	rep.Executed = executed
	rep.Checked, rep.Divergences = v.report()
	if d := v.failed(); d != nil {
		return m, rep, &DivergenceError{Div: *d}
	}
	if executed < total {
		// The region legitimately ends early only at the recorded
		// failure (a failing assert is counted in the quanta).
		if earlyFailure {
			return m, rep, nil
		}
		if m.Stopped().LimitStop() {
			return m, rep, limitErr(m, executed, total)
		}
		return m, rep, fmt.Errorf("%w: executed %d of %d instructions (stop: %v)",
			ErrReplay, executed, total, m.Stopped())
	}
	// A region that ends in a machine fault (bad memory access, divide by
	// zero, ...) does not count the faulting instruction in its quanta;
	// take the one extra deterministic step to reproduce the fault.
	if pb.Failure != nil && m.Running() {
		m.StepOne()
	}
	return m, rep, nil
}

// ReplaySlice re-executes a slice pinball: the recorded quanta only cover
// the instructions inside the execution slice, and each skipped exclusion
// region's side effects are injected at its recorded position.
func ReplaySlice(prog *isa.Program, pb *pinball.Pinball, tracer vm.Tracer) (*vm.Machine, error) {
	m, _, err := ReplaySliceWith(prog, pb, ReplayOptions{Tracer: tracer})
	return m, err
}

// ReplaySliceWith is ReplaySlice with validation policy, limits and the
// verification report.
func ReplaySliceWith(prog *isa.Program, pb *pinball.Pinball, opts ReplayOptions) (*vm.Machine, *ReplayReport, error) {
	r := NewSliceRunnerWith(prog, pb, opts)
	for {
		ok, err := r.Step()
		if err != nil {
			return r.Machine(), r.Report(), err
		}
		if !ok {
			return r.Machine(), r.Report(), nil
		}
	}
}

// SliceRunner replays a slice pinball one instruction at a time, applying
// pending side-effect injections between instructions. The debugger's
// slice-stepping commands drive it directly.
type SliceRunner struct {
	m        *vm.Machine
	pb       *pinball.Pinball
	v        *checkpointValidator
	inj      []pinball.Injection
	executed int64
	total    int64
	finished bool
}

// NewSliceRunner prepares a slice replay with default options.
func NewSliceRunner(prog *isa.Program, pb *pinball.Pinball, tracer vm.Tracer) *SliceRunner {
	return NewSliceRunnerWith(prog, pb, ReplayOptions{Tracer: tracer})
}

// NewSliceRunnerWith prepares a slice replay with validation policy and
// limits.
func NewSliceRunnerWith(prog *isa.Program, pb *pinball.Pinball, opts ReplayOptions) *SliceRunner {
	m, v := newValidatedMachine(prog, pb, opts)
	return &SliceRunner{
		m:     m,
		pb:    pb,
		v:     v,
		inj:   pb.Injections,
		total: pb.TotalQuantumInstrs(),
	}
}

// Machine exposes the machine being driven, for state examination.
func (r *SliceRunner) Machine() *vm.Machine { return r.m }

// Executed returns how many slice instructions have run.
func (r *SliceRunner) Executed() int64 { return r.executed }

// Done reports whether the slice replay has completed.
func (r *SliceRunner) Done() bool {
	return r.executed >= r.total || !r.m.Running()
}

// Report returns what the replay has verified so far.
func (r *SliceRunner) Report() *ReplayReport {
	rep := &ReplayReport{Executed: r.executed}
	rep.Checked, rep.Divergences = r.v.report()
	return rep
}

// Step applies due injections and executes one instruction. It returns
// false when the replay is complete (end of slice, or the recorded
// failure). An unexpected early stop is a divergence error.
func (r *SliceRunner) Step() (bool, error) {
	for len(r.inj) > 0 && r.inj[0].AtStep == r.executed {
		applyInjection(r.m, &r.inj[0])
		r.inj = r.inj[1:]
	}
	if r.executed >= r.total {
		if !r.finished {
			r.finished = true
			r.v.finish(false)
			if d := r.v.failed(); d != nil {
				return false, &DivergenceError{Div: *d}
			}
			// Reproduce a trailing machine fault (not counted in quanta).
			if r.pb.Failure != nil && r.m.Running() && r.executed == r.total {
				r.executed++ // take the extra step exactly once
				r.m.StepOne()
			}
		}
		return false, nil
	}
	if !r.m.StepOne() {
		if r.m.Stopped() == vm.StopFailure && r.pb.Failure != nil {
			r.finished = true
			r.v.finish(true)
			if d := r.v.failed(); d != nil {
				return false, &DivergenceError{Div: *d}
			}
			return false, nil
		}
		if r.m.Stopped().LimitStop() {
			return false, limitErr(r.m, r.executed, r.total)
		}
		return false, fmt.Errorf("%w: slice replay diverged at %d of %d (stop: %v)",
			ErrReplay, r.executed, r.total, r.m.Stopped())
	}
	r.executed++
	if d := r.v.failed(); d != nil {
		return false, &DivergenceError{Div: *d}
	}
	return true, nil
}

// applyInjection restores the side effects of one skipped code region:
// register file, continuation pc and the region's memory writes.
func applyInjection(m *vm.Machine, in *pinball.Injection) {
	t := m.Threads[in.Tid]
	t.Regs = in.Regs
	t.PC = in.NewPC
	t.Count = in.NewCount
	for _, w := range in.Mem {
		m.Mem.Write(w.Addr, w.Val)
	}
}

// CheckReplayDeterminism replays the pinball twice and verifies that both
// replays end in identical memory and output — the repeatability
// guarantee cyclic debugging relies on. It returns an error describing
// the first difference.
func CheckReplayDeterminism(prog *isa.Program, pb *pinball.Pinball) error {
	m1, err := Replay(prog, pb, nil)
	if err != nil {
		return err
	}
	m2, err := Replay(prog, pb, nil)
	if err != nil {
		return err
	}
	if !m1.Snapshot().Mem.Equal(m2.Snapshot().Mem) {
		return fmt.Errorf("pinplay: replays reached different memory states")
	}
	o1, o2 := m1.Output(), m2.Output()
	if len(o1) != len(o2) {
		return fmt.Errorf("pinplay: replays produced different outputs")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			return fmt.Errorf("pinplay: replay outputs differ at %d", i)
		}
	}
	return nil
}
