package pinplay

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/vm"
)

// NewReplayMachine builds a machine that runs off a pinball: initial
// state restored, schedule and syscall results fed from the capture. The
// optional tracer observes the replayed execution (this is how analysis
// pintools such as the slicer attach).
func NewReplayMachine(prog *isa.Program, pb *pinball.Pinball, tracer vm.Tracer) *vm.Machine {
	m := vm.NewFromState(prog, pb.State, vm.Config{
		Sched:  vm.NewReplayScheduler(pb.Quanta),
		Env:    vm.NewReplayEnv(pb.Syscalls),
		Tracer: tracer,
	})
	return m
}

// Replay deterministically re-executes the pinball's region to its end
// and returns the machine in its end-of-region state. The replay stops
// exactly after the recorded number of instructions, or earlier if the
// region ends in the recorded failure.
func Replay(prog *isa.Program, pb *pinball.Pinball, tracer vm.Tracer) (*vm.Machine, error) {
	if pb.Kind == pinball.KindSlice {
		return ReplaySlice(prog, pb, tracer)
	}
	m := NewReplayMachine(prog, pb, tracer)
	total := pb.TotalQuantumInstrs()
	var executed int64
	for executed < total && m.StepOne() {
		executed++
	}
	if executed < total {
		// The region legitimately ends early only at the recorded
		// failure (a failing assert is counted in the quanta).
		if m.Stopped() == vm.StopFailure && pb.Failure != nil {
			return m, nil
		}
		return m, fmt.Errorf("pinplay: replay diverged: executed %d of %d instructions (stop: %v)",
			executed, total, m.Stopped())
	}
	// A region that ends in a machine fault (bad memory access, divide by
	// zero, ...) does not count the faulting instruction in its quanta;
	// take the one extra deterministic step to reproduce the fault.
	if pb.Failure != nil && m.Running() {
		m.StepOne()
	}
	return m, nil
}

// ReplaySlice re-executes a slice pinball: the recorded quanta only cover
// the instructions inside the execution slice, and each skipped exclusion
// region's side effects are injected at its recorded position.
func ReplaySlice(prog *isa.Program, pb *pinball.Pinball, tracer vm.Tracer) (*vm.Machine, error) {
	r := NewSliceRunner(prog, pb, tracer)
	for {
		ok, err := r.Step()
		if err != nil {
			return r.Machine(), err
		}
		if !ok {
			return r.Machine(), nil
		}
	}
}

// SliceRunner replays a slice pinball one instruction at a time, applying
// pending side-effect injections between instructions. The debugger's
// slice-stepping commands drive it directly.
type SliceRunner struct {
	m        *vm.Machine
	pb       *pinball.Pinball
	inj      []pinball.Injection
	executed int64
	total    int64
}

// NewSliceRunner prepares a slice replay.
func NewSliceRunner(prog *isa.Program, pb *pinball.Pinball, tracer vm.Tracer) *SliceRunner {
	return &SliceRunner{
		m:     NewReplayMachine(prog, pb, tracer),
		pb:    pb,
		inj:   pb.Injections,
		total: pb.TotalQuantumInstrs(),
	}
}

// Machine exposes the machine being driven, for state examination.
func (r *SliceRunner) Machine() *vm.Machine { return r.m }

// Executed returns how many slice instructions have run.
func (r *SliceRunner) Executed() int64 { return r.executed }

// Done reports whether the slice replay has completed.
func (r *SliceRunner) Done() bool {
	return r.executed >= r.total || !r.m.Running()
}

// Step applies due injections and executes one instruction. It returns
// false when the replay is complete (end of slice, or the recorded
// failure). An unexpected early stop is a divergence error.
func (r *SliceRunner) Step() (bool, error) {
	for len(r.inj) > 0 && r.inj[0].AtStep == r.executed {
		applyInjection(r.m, &r.inj[0])
		r.inj = r.inj[1:]
	}
	if r.executed >= r.total {
		// Reproduce a trailing machine fault (not counted in quanta).
		if r.pb.Failure != nil && r.m.Running() && r.executed == r.total {
			r.executed++ // take the extra step exactly once
			r.m.StepOne()
		}
		return false, nil
	}
	if !r.m.StepOne() {
		if r.m.Stopped() == vm.StopFailure && r.pb.Failure != nil {
			return false, nil
		}
		return false, fmt.Errorf("pinplay: slice replay diverged at %d of %d (stop: %v)",
			r.executed, r.total, r.m.Stopped())
	}
	r.executed++
	return true, nil
}

// applyInjection restores the side effects of one skipped code region:
// register file, continuation pc and the region's memory writes.
func applyInjection(m *vm.Machine, in *pinball.Injection) {
	t := m.Threads[in.Tid]
	t.Regs = in.Regs
	t.PC = in.NewPC
	t.Count = in.NewCount
	for _, w := range in.Mem {
		m.Mem.Write(w.Addr, w.Val)
	}
}

// CheckReplayDeterminism replays the pinball twice and verifies that both
// replays end in identical memory and output — the repeatability
// guarantee cyclic debugging relies on. It returns an error describing
// the first difference.
func CheckReplayDeterminism(prog *isa.Program, pb *pinball.Pinball) error {
	m1, err := Replay(prog, pb, nil)
	if err != nil {
		return err
	}
	m2, err := Replay(prog, pb, nil)
	if err != nil {
		return err
	}
	if !m1.Snapshot().Mem.Equal(m2.Snapshot().Mem) {
		return fmt.Errorf("pinplay: replays reached different memory states")
	}
	o1, o2 := m1.Output(), m2.Output()
	if len(o1) != len(o2) {
		return fmt.Errorf("pinplay: replays produced different outputs")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			return fmt.Errorf("pinplay: replay outputs differ at %d", i)
		}
	}
	return nil
}
