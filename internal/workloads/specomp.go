package workloads

// The five SPEC OMP2001-like workloads used for the Figure 13 experiment
// (save/restore spurious-dependence pruning). What matters for that
// experiment is call density: deep chains of small numeric helper
// functions whose prologues save callee-saved registers that the caller
// holds live values in. Each kernel below therefore factors its inner
// loop into several leaf calls, exactly the shape gcc gives the original
// Fortran/C codes. They run multi-threaded (the paper uses the OpenMP
// "medium" configuration) through the same harness as the PARSEC-likes.

// Ammp models molecular-dynamics force accumulation: pairwise force
// terms computed by nested helpers.
var Ammp = register(&Workload{
	Name:        "ammp",
	Suite:       SuiteSpecOMP,
	Description: "molecular dynamics pairwise force accumulation",
	Source: `
int pos[2048];
int lj(int r2) {
	int inv = 1000000 / (r2 + 1);
	int six = inv * inv / 1000 * inv / 1000;
	return six * 2 - inv;
}
int pairForce(int a, int b) {
	int dx = pos[a] - pos[b];
	int r2 = dx * dx + 1;
	int f = lj(r2 % 10000);
	return f % 1000;
}
int accumulate(int a, int i) {
	int f1 = pairForce(a, (a + i) % 2048);
	int f2 = pairForce(a, (a + i + 1) % 2048);
	return f1 + f2;
}
int worker(int id) {
	int i;
	int energy = 0;
	int a = id * 512;
	for (i = 0; i < size; i++) {
		energy = energy + accumulate((a + i) % 2048, i % 64);
		pos[(a + i) % 2048] = (energy + i) % 4096;
	}
	results[id] = energy;
	return 0;
}` + parallelHarness,
})

// Apsi models a meteorology kernel: layered updates with several small
// physics helpers per cell.
var Apsi = register(&Workload{
	Name:        "apsi",
	Suite:       SuiteSpecOMP,
	Description: "mesoscale weather column updates",
	Source: `
int temperature[1024];
int pressure[1024];
int advect(int t, int wind) {
	return t + wind / 8 - t / 64;
}
int diffuse(int t, int tl, int tr) {
	return (tl + 2 * t + tr) / 4;
}
int columnStep(int c) {
	int t = temperature[c];
	int tl = temperature[(c + 1023) % 1024];
	int tr = temperature[(c + 1) % 1024];
	int w = pressure[c] % 32;
	t = advect(t, w);
	t = diffuse(t, tl, tr);
	temperature[c] = t;
	return t;
}
int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i < size; i++) {
		int c = (id * 256 + i) % 1024;
		acc = acc + columnStep(c);
		pressure[c] = (pressure[c] + acc) % 2048;
	}
	results[id] = acc;
	return 0;
}` + parallelHarness,
})

// Galgel models Galerkin fluid oscillation: small matrix-vector helper
// calls per step.
var Galgel = register(&Workload{
	Name:        "galgel",
	Suite:       SuiteSpecOMP,
	Description: "Galerkin method oscillatory flow steps",
	Source: `
int coeff[256];
int xvec[4];
int dot4(int base) {
	int s = coeff[base] * xvec[0] + coeff[base + 1] * xvec[1];
	s = s + coeff[base + 2] * xvec[2] + coeff[base + 3] * xvec[3];
	return s / 16;
}
int mode(int m, int phase) {
	int b = (m * 4) % 252;
	xvec[0] = phase;
	xvec[1] = phase / 2;
	xvec[2] = phase / 3 + 1;
	xvec[3] = phase / 5 + 1;
	return dot4(b);
}
int worker(int id) {
	int i;
	int amp = id + 1;
	for (i = 0; i < size; i++) {
		amp = amp + mode(i % 63, amp % 97) % 50 - 20;
		if (amp < 0) { amp = 0 - amp; }
		coeff[(id * 64 + i) % 256] = amp % 128;
	}
	results[id] = amp;
	return 0;
}` + parallelHarness,
})

// Mgrid models the multigrid V-cycle: restriction, smoothing and
// prolongation helpers over a 1-D hierarchy.
var Mgrid = register(&Workload{
	Name:        "mgrid",
	Suite:       SuiteSpecOMP,
	Description: "multigrid V-cycle smoothing",
	Source: `
int fine[2048];
int coarse[1024];
int smooth(int idx) {
	int v = (fine[idx] + fine[(idx + 1) % 2048] + fine[(idx + 2047) % 2048]) / 3;
	fine[idx] = v;
	return v;
}
int restrictTo(int idx) {
	int v = (fine[(2 * idx) % 2048] + fine[(2 * idx + 1) % 2048]) / 2;
	coarse[idx % 1024] = v;
	return v;
}
int prolong(int idx) {
	int v = coarse[idx % 1024];
	fine[(2 * idx) % 2048] = (fine[(2 * idx) % 2048] + v) / 2;
	return v;
}
int vcycle(int base, int i) {
	int a = smooth((base + i) % 2048);
	int b = restrictTo((base + i) % 1024);
	int c = prolong((base + i / 2) % 1024);
	return a + b - c;
}
int worker(int id) {
	int i;
	int residual = 0;
	for (i = 0; i < size; i++) {
		residual = residual + vcycle(id * 512, i) % 100;
	}
	results[id] = residual;
	return 0;
}` + parallelHarness,
})

// Wupwise models lattice QCD su3 multiplications: fixed-size complex
// arithmetic helpers chained per lattice site.
var Wupwise = register(&Workload{
	Name:        "wupwise",
	Suite:       SuiteSpecOMP,
	Description: "lattice gauge su3-like multiply chains",
	Source: `
int lattice[4096];
int cmulRe(int ar, int ai, int b) {
	int br = b / 4096;
	int bi = b % 4096;
	return (ar * br - ai * bi) / 256;
}
int cmulIm(int ar, int ai, int b) {
	int br = b / 4096;
	int bi = b % 4096;
	return (ar * bi + ai * br) / 256;
}
int siteMul(int s) {
	int ar = lattice[s];
	int ai = lattice[(s + 1) % 4096];
	int br = lattice[(s + 2) % 4096] % 4096;
	int bi = lattice[(s + 3) % 4096] % 4096;
	int packed = br * 4096 + bi;
	int re = cmulRe(ar, ai, packed);
	int im = cmulIm(ar, ai, packed);
	lattice[s] = (re + 256) % 512;
	return re + im;
}
int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i < size; i++) {
		acc = acc + siteMul((id * 1024 + i * 4) % 4093);
	}
	results[id] = acc;
	return 0;
}` + parallelHarness,
})
