package workloads_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/maple"
	"repro/internal/pinplay"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func TestAllWorkloadsCompile(t *testing.T) {
	all := workloads.All()
	if len(all) != 16 {
		t.Fatalf("got %d workloads, want 16 (8 parsec + 5 specomp + 3 bugs)", len(all))
	}
	for _, w := range all {
		if _, err := w.Program(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
	if len(workloads.Parsec()) != 8 {
		t.Errorf("parsec count = %d", len(workloads.Parsec()))
	}
	if len(workloads.SpecOMP()) != 5 {
		t.Errorf("specomp count = %d", len(workloads.SpecOMP()))
	}
	if len(workloads.Bugs()) != 3 {
		t.Errorf("bug count = %d", len(workloads.Bugs()))
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := workloads.ByName("blackscholes"); err != nil {
		t.Error(err)
	}
	if _, err := workloads.ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestBenchWorkloadsRunDeterministically runs each non-bug workload twice
// with the same seed and checks identical output, and once with a
// different seed to ensure they terminate cleanly.
func TestBenchWorkloadsRunDeterministically(t *testing.T) {
	for _, w := range append(workloads.Parsec(), workloads.SpecOMP()...) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Program()
			if err != nil {
				t.Fatal(err)
			}
			run := func(seed int64) []int64 {
				m := vm.New(prog, vm.Config{
					Sched:    vm.NewRandomScheduler(seed, 200),
					Env:      vm.NewNativeEnv(w.Input(4, 300), seed),
					MaxSteps: 50_000_000,
				})
				if got := m.Run(); got != vm.StopExit {
					t.Fatalf("stop = %v (failure: %v)", got, m.Failure())
				}
				return m.Output()
			}
			o1 := run(7)
			o2 := run(7)
			if len(o1) != 1 || len(o2) != 1 || o1[0] != o2[0] {
				t.Errorf("outputs differ: %v vs %v", o1, o2)
			}
			run(8)
		})
	}
}

// TestWorkloadsUseAllThreads checks the harness actually runs the
// requested thread count.
func TestWorkloadsUseAllThreads(t *testing.T) {
	w, _ := workloads.ByName("blackscholes")
	prog, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{
		Sched:    vm.NewRandomScheduler(1, 100),
		Env:      vm.NewNativeEnv(w.Input(4, 100), 1),
		MaxSteps: 10_000_000,
	})
	m.Run()
	if len(m.Threads) != 4 {
		t.Errorf("thread count = %d, want 4", len(m.Threads))
	}
	for _, th := range m.Threads {
		if th.Count == 0 {
			t.Errorf("thread %d executed nothing", th.ID)
		}
	}
}

// exposeBug finds a failing execution of a bug workload, first by seed
// search, then via Maple if needed.
func exposeBug(t *testing.T, name string, threads, size int64) *core.Session {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	input := w.Input(threads, size)
	for seed := int64(1); seed < 100; seed++ {
		cfg := pinplay.LogConfig{Seed: seed, MeanQuantum: 20, Input: input, MaxSteps: 50_000_000}
		s, err := core.RecordFailure(prog, cfg, 0)
		if err == nil {
			return s
		}
	}
	res, err := maple.FindBug(nil, prog, pinplay.LogConfig{Seed: 1, MeanQuantum: 20, Input: input, MaxSteps: 50_000_000}, maple.Options{})
	if err == nil && res.Exposed {
		return core.Open(prog, res.Pinball)
	}
	t.Fatalf("%s: bug not exposed by seed search or maple", name)
	return nil
}

// TestTable1BugsReproduce exposes each Table 1 bug, replays it, and
// slices the failure — the full DrDebug workflow on each case study.
func TestTable1BugsReproduce(t *testing.T) {
	cases := []struct {
		name          string
		threads, size int64
	}{
		{"pbzip2", 3, 40},
		{"aget", 3, 30},
		{"mozilla", 2, 30},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := exposeBug(t, tc.name, tc.threads, tc.size)
			if s.Pinball.Failure == nil {
				t.Fatal("no failure captured")
			}
			// Deterministic reproduction.
			m, err := s.Replay(nil)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if m.Stopped() != vm.StopFailure {
				t.Fatalf("replay stop = %v", m.Stopped())
			}
			if m.Failure().PC != s.Pinball.Failure.PC {
				t.Errorf("replayed failure at pc %d, logged %d", m.Failure().PC, s.Pinball.Failure.PC)
			}
			// The failure slice must be non-trivial and smaller than the
			// whole region.
			sl, err := s.SliceAtFailure()
			if err != nil {
				t.Fatalf("slice: %v", err)
			}
			if sl.Stats.Members == 0 {
				t.Error("empty failure slice")
			}
			if sl.Stats.Members >= sl.Stats.TraceLen {
				t.Errorf("slice (%d) not smaller than region (%d)", sl.Stats.Members, sl.Stats.TraceLen)
			}
			// And it must be convertible into a replayable slice pinball.
			spb, _, err := s.ExecutionSlice(sl)
			if err != nil {
				t.Fatalf("execution slice: %v", err)
			}
			m2, err := pinplay.Replay(s.Prog, spb, nil)
			if err != nil {
				t.Fatalf("slice replay: %v", err)
			}
			if m2.Stopped() != vm.StopFailure {
				t.Errorf("slice replay should reproduce the failure, got %v", m2.Stopped())
			}
		})
	}
}

// TestRegistryRecordReplayClean is the table-driven registry sweep: every
// registered workload must compile, record a pinball at its
// DefaultThreads with a small input, and replay divergence-free —
// including the bug kernels, whose captured failures (if a given seed
// happens to expose one) must still replay deterministically.
func TestRegistryRecordReplayClean(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := w.Program()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cfg := pinplay.LogConfig{
				Seed: 1, MeanQuantum: 50, RandSeed: 1,
				Input:    w.Input(w.DefaultThreads, 12),
				MaxSteps: 50_000_000,
			}
			pb, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			m, rep, err := pinplay.ReplayWith(prog, pb, pinplay.ReplayOptions{})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if len(rep.Divergences) != 0 {
				t.Fatalf("%d divergences on replay", len(rep.Divergences))
			}
			// A recorded failure must be reproduced; a clean recording
			// must not fail on replay (the machine may sit at region end
			// rather than a formal exit stop — divergence checking above
			// is the authoritative verdict).
			if pb.Failure != nil && m.Stopped() != vm.StopFailure {
				t.Fatalf("recorded a failure but replay stopped with %v", m.Stopped())
			}
			if pb.Failure == nil && m.Stopped() == vm.StopFailure {
				t.Fatalf("clean recording failed on replay: %v", m.Failure())
			}
		})
	}
}
