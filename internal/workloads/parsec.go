package workloads

// The eight PARSEC-like workloads. Each mirrors the parallelisation
// pattern and computational character of its namesake at mini-C scale:
// the main thread participates as worker 0 (so main-thread skip/length
// region selection works exactly as in the paper), workers 1..N-1 are
// spawned, and the kernel body is organised into helper functions so the
// generated code has realistic call/prologue/epilogue structure.

// parallelHarness wraps a kernel body into the standard spawn/join main.
// The kernel must define "int worker(int id)".
const parallelHarness = `
int nthreads;
int size;
int results[64];
int main() {
	int tids[64];
	int i;
	nthreads = read();
	size = read();
	if (nthreads > 64) { nthreads = 64; }
	for (i = 1; i < nthreads; i++) { tids[i] = spawn(worker, i); }
	worker(0);
	for (i = 1; i < nthreads; i++) { join(tids[i]); }
	int sum = 0;
	for (i = 0; i < nthreads; i++) { sum = sum ^ results[i]; }
	write(sum);
	return 0;
}`

// Blackscholes prices a portfolio of options with a fixed-point
// polynomial CNDF approximation — PARSEC's blackscholes in miniature.
var Blackscholes = register(&Workload{
	Name:        "blackscholes",
	Suite:       SuiteParsec,
	Class:       "app",
	Description: "Black-Scholes option pricing over a partitioned portfolio",
	Source: `
int cndf(int x) {
	int ax = x;
	if (ax < 0) { ax = 0 - ax; }
	int k = 1000000 / (1000 + 235 * ax / 1000);
	int poly = 319 * k / 1000;
	poly = poly - 356 * k / 1000 * k / 1000000;
	poly = poly + 178 * k / 1000 * k / 1000000 * k / 1000;
	if (x < 0) { return 1000 - poly; }
	return poly;
}
int price(int spot, int strike, int vol) {
	int d1 = (spot - strike) * 1000 / (vol + 1);
	int d2 = d1 - vol;
	int c = spot * cndf(d1) / 1000 - strike * cndf(d2) / 1000;
	if (c < 0) { c = 0 - c; }
	return c;
}
int worker(int id) {
	int i;
	int acc = 0;
	int spot = 100 + id;
	for (i = 0; i < size; i++) {
		int strike = 90 + (i % 21);
		int vol = 150 + (i % 70);
		acc = acc + price(spot, strike, vol);
		spot = 80 + (spot + acc) % 40;
	}
	results[id] = acc;
	return 0;
}` + parallelHarness,
})

// Swaptions runs Monte-Carlo interest-rate paths using the program-level
// rand() syscall, like PARSEC's swaptions HJM simulation.
var Swaptions = register(&Workload{
	Name:        "swaptions",
	Suite:       SuiteParsec,
	Class:       "app",
	Description: "Monte-Carlo swaption pricing along simulated rate paths",
	Source: `
int stepRate(int r, int shock) {
	int drift = (500 - r) / 16;
	return r + drift + shock % 23 - 11;
}
int payoff(int r, int strike) {
	if (r > strike) { return r - strike; }
	return 0;
}
int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i < size; i++) {
		int r = 400 + id * 10;
		int j;
		for (j = 0; j < 8; j++) {
			r = stepRate(r, rand());
		}
		acc = acc + payoff(r, 450);
	}
	results[id] = acc;
	return 0;
}` + parallelHarness,
})

// Fluidanimate relaxes a shared grid; border cells between partitions
// are protected by per-border locks, giving real thread interaction.
var Fluidanimate = register(&Workload{
	Name:        "fluidanimate",
	Suite:       SuiteParsec,
	Class:       "app",
	Description: "grid relaxation with lock-protected partition borders",
	Source: `
int grid[4160];
int borderlock[64];
int cellIndex(int id, int i) {
	return id * 64 + (i % 64);
}
int relax(int idx) {
	int left = grid[idx];
	int right = grid[idx + 1];
	grid[idx] = (left * 3 + right) / 4;
	return grid[idx];
}
int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i < size; i++) {
		int idx = cellIndex(id, i);
		if (i % 64 == 63) {
			lock(&borderlock[id]);
			acc = acc + relax(idx);
			unlock(&borderlock[id]);
		} else {
			acc = acc + relax(idx);
		}
	}
	results[id] = acc;
	return 0;
}` + parallelHarness,
})

// Vips runs a staged per-pixel transform pipeline whose stage dispatch is
// a dense switch — an indirect jump through a jump table.
var Vips = register(&Workload{
	Name:        "vips",
	Suite:       SuiteParsec,
	Class:       "app",
	Description: "image transform pipeline with switch-dispatched stages",
	Source: `
int clampByte(int v) {
	if (v < 0) { return 0; }
	if (v > 255) { return 255; }
	return v;
}
int applyStage(int op, int px) {
	int out = px;
	switch (op) {
	case 0: out = px + 30; break;
	case 1: out = px * 2; break;
	case 2: out = 255 - px; break;
	case 3: out = px / 2 + 64; break;
	case 4: out = (px * 3 + 128) / 4; break;
	default: out = px; break;
	}
	return clampByte(out);
}
int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i < size; i++) {
		int px = (i * 37 + id * 11) % 256;
		px = applyStage(i % 5, px);
		px = applyStage((i + 2) % 5, px);
		px = applyStage((i * i) % 5, px);
		acc = acc + px;
	}
	results[id] = acc;
	return 0;
}` + parallelHarness,
})

// X264 does block motion estimation: sum-of-absolute-differences over
// candidate offsets, nested loops and small helper calls.
var X264 = register(&Workload{
	Name:        "x264",
	Suite:       SuiteParsec,
	Class:       "app",
	Description: "block motion estimation (SAD search)",
	Source: `
int frameA[1024];
int frameB[1024];
int absdiff(int a, int b) {
	int d = a - b;
	if (d < 0) { return 0 - d; }
	return d;
}
int sad(int base, int off) {
	int j;
	int s = 0;
	for (j = 0; j < 8; j++) {
		s = s + absdiff(frameA[(base + j) % 1024], frameB[(base + off + j) % 1024]);
	}
	return s;
}
int worker(int id) {
	int i;
	int best = 1 << 30;
	for (i = 0; i < size; i++) {
		int base = (id * 256 + i * 8) % 1024;
		int off;
		int localBest = 1 << 30;
		for (off = 0; off < 4; off++) {
			int s = sad(base, off);
			if (s < localBest) { localBest = s; }
		}
		if (localBest < best) { best = localBest; }
		frameA[(base + i) % 1024] = i % 255;
	}
	results[id] = best;
	return 0;
}` + parallelHarness,
})

// Canneal does simulated-annealing element swaps with rand()-driven
// accept/reject, on thread-private slices of a shared netlist.
var Canneal = register(&Workload{
	Name:        "canneal",
	Suite:       SuiteParsec,
	Class:       "kernel",
	Description: "simulated annealing with randomized swap accept/reject",
	Source: `
int netlist[4096];
int swapCost(int a, int b) {
	int d = netlist[a] - netlist[b];
	if (d < 0) { d = 0 - d; }
	return d;
}
int doSwap(int a, int b) {
	int t = netlist[a];
	netlist[a] = netlist[b];
	netlist[b] = t;
	return t;
}
int worker(int id) {
	int i;
	int acc = 0;
	int temp = 1000;
	for (i = 0; i < size; i++) {
		int a = id * 1024 + (rand() % 1024);
		int b = id * 1024 + (rand() % 1024);
		int cost = swapCost(a, b);
		if (cost < temp || rand() % 100 < 5) {
			doSwap(a, b);
			acc = acc + cost;
		}
		if (temp > 10 && i % 64 == 0) { temp = temp * 99 / 100; }
	}
	results[id] = acc;
	return 0;
}` + parallelHarness,
})

// Dedup chunks a synthetic stream with a rolling hash and deduplicates
// chunks in a lock-protected shared hash table.
var Dedup = register(&Workload{
	Name:        "dedup",
	Suite:       SuiteParsec,
	Class:       "kernel",
	Description: "rolling-hash chunking with a shared dedup table",
	Source: `
int table[2048];
int tlock;
int rollHash(int h, int byte) {
	return (h * 31 + byte) % 1048573;
}
int lookupInsert(int h) {
	int slot = h % 2048;
	int hit = 0;
	lock(&tlock);
	if (table[slot] == h) {
		hit = 1;
	} else {
		table[slot] = h;
	}
	unlock(&tlock);
	return hit;
}
int worker(int id) {
	int i;
	int dups = 0;
	int h = id + 1;
	for (i = 0; i < size; i++) {
		int byte = (i * 131 + id * 17) % 251;
		h = rollHash(h, byte);
		if (h % 16 == 0) {
			dups = dups + lookupInsert(h);
			h = id + 1;
		}
	}
	results[id] = dups;
	return 0;
}` + parallelHarness,
})

// Streamcluster assigns streamed points to the nearest of k centres and
// updates per-thread cluster statistics.
var Streamcluster = register(&Workload{
	Name:        "streamcluster",
	Suite:       SuiteParsec,
	Class:       "kernel",
	Description: "online k-median point assignment",
	Source: `
int centers[16];
int dist(int p, int c) {
	int d = p - c;
	if (d < 0) { d = 0 - d; }
	return d;
}
int nearest(int p) {
	int best = 0;
	int bestd = dist(p, centers[0]);
	int k;
	for (k = 1; k < 8; k++) {
		int d = dist(p, centers[k]);
		if (d < bestd) { bestd = d; best = k; }
	}
	return best;
}
int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i < size; i++) {
		int p = (i * 97 + id * 13) % 1000;
		int c = nearest(p);
		acc = acc + c;
		if (i % 128 == 0) {
			centers[(c + id) % 8] = (centers[c] + p) / 2;
		}
	}
	results[id] = acc;
	return 0;
}` + parallelHarness,
})
