package workloads

// The three real concurrency bugs of Table 1, reconstructed to preserve
// the reported bug pattern. Each program is correct under "lucky"
// schedules and fails under the buggy interleaving, so they exercise the
// full DrDebug pipeline: expose (Maple or seed search), record, replay,
// slice.

// Pbzip2Bug reconstructs the pbzip2 0.9.4 race: the main thread tears
// down the FIFO queue (destroying fifo->mut) while compressor threads may
// still be draining it. The symptom is a compressor using the destroyed
// mutex.
var Pbzip2Bug = register(&Workload{
	Name:           "pbzip2",
	Suite:          SuiteBug,
	Description:    "data race on fifo->mut between main and the compressor threads (use of a destroyed mutex)",
	DefaultThreads: 3,
	Source: `
int fifoMut;
int fifoNotEmpty;
int fifoValid;
int queue[128];
int qhead;
int qtail;
int produced;
int compressed[8];
int compressor(int id) {
	int running = 1;
	while (running) {
		// pbzip2's consumer uses fifo->mut (and its condition variable)
		// assuming the queue is still alive; the assert is the "mutex
		// destroyed" crash of the real bug.
		assert(fifoValid == 1);
		lock(&fifoMut);
		while (qhead == qtail && !produced) {
			wait(&fifoNotEmpty, &fifoMut);
		}
		if (qhead < qtail) {
			int block = queue[qhead % 128];
			qhead = qhead + 1;
			compressed[id] = compressed[id] + block % 97;
		} else {
			running = 0;
		}
		unlock(&fifoMut);
		yield();
	}
	return 0;
}
int main() {
	int nthreads = read();
	int blocks = read();
	int tids[8];
	int i;
	fifoValid = 1;
	if (nthreads > 8) { nthreads = 8; }
	for (i = 1; i < nthreads; i++) { tids[i] = spawn(compressor, i); }
	for (i = 0; i < blocks; i++) {
		lock(&fifoMut);
		queue[qtail % 128] = i * 31 + 7;
		qtail = qtail + 1;
		signal(&fifoNotEmpty);
		unlock(&fifoMut);
		if (i % 4 == 0) { yield(); }
	}
	lock(&fifoMut);
	produced = 1;
	for (i = 1; i < nthreads; i++) { signal(&fifoNotEmpty); }
	unlock(&fifoMut);
	yield();
	// BUG: main destroys the queue (mutex and condvar) without joining
	// the compressors first (the pbzip2 0.9.4 fifo->mut race).
	fifoValid = 0;
	for (i = 1; i < nthreads; i++) { join(tids[i]); }
	int total = 0;
	for (i = 0; i < nthreads; i++) { total = total + compressed[i]; }
	write(total);
	return 0;
}`,
})

// AgetBug reconstructs the Aget 0.57 race: downloader threads update the
// shared byte counter bwritten without synchronisation against the signal
// handler thread that reads it to write the resume log; the resume state
// can then disagree with the bytes actually written.
var AgetBug = register(&Workload{
	Name:           "aget",
	Suite:          SuiteBug,
	Description:    "data race on bwritten between downloader threads and the signal-handler thread",
	DefaultThreads: 3,
	Source: `
int bwritten;
int written[8];
int saveRequested;
int savedState;
int saveDone;
int downloader(int id) {
	int i;
	int chunks = size;
	for (i = 0; i < chunks; i++) {
		// BUG: read-modify-write of bwritten with no lock (Aget 0.57).
		int cur = bwritten;
		yield();
		bwritten = cur + 1;
		written[id] = written[id] + 1;
	}
	return 0;
}
int size;
int sigHandler(int u) {
	while (!saveRequested) { yield(); }
	// The signal handler snapshots bwritten for the resume log.
	savedState = bwritten;
	saveDone = 1;
	return 0;
}
int main() {
	int nthreads = read();
	size = read();
	int tids[8];
	int i;
	if (nthreads > 8) { nthreads = 8; }
	int sig = spawn(sigHandler, 0);
	for (i = 1; i < nthreads; i++) { tids[i] = spawn(downloader, i); }
	downloader(0);
	for (i = 1; i < nthreads; i++) { join(tids[i]); }
	saveRequested = 1;
	join(sig);
	int actual = 0;
	for (i = 0; i < nthreads; i++) { actual = actual + written[i]; }
	// With the lost updates, the saved resume state disagrees with the
	// bytes actually written.
	assert(savedState == actual);
	write(savedState);
	return 0;
}`,
})

// MozillaBug reconstructs the mozilla js engine race: one thread destroys
// rt->scriptFilenameTable while another thread is sweeping it; the
// sweeper crashes dereferencing the freed table (here: a poisoned
// pointer, producing a real memory fault in the VM).
var MozillaBug = register(&Workload{
	Name:           "mozilla",
	Suite:          SuiteBug,
	Description:    "race on rt->scriptFilenameTable: destroy vs js_SweepScriptFilenames crash",
	DefaultThreads: 2,
	Source: `
int tablePtr;
int sweepRounds;
int destroyed;
int sweepEntry(int base, int i) {
	// js_SweepScriptFilenames: walks the hash table through the runtime
	// pointer. If the other thread has destroyed the table, base is the
	// poison pointer and this load faults (the reported crash).
	int *p = base;
	return p[i % 64];
}
int sweeper(int u) {
	int r;
	int live = 0;
	for (r = 0; r < sweepRounds; r++) {
		int base = tablePtr;
		int i;
		for (i = 0; i < 16; i++) {
			live = live + sweepEntry(base, r * 16 + i) % 3;
		}
		yield();
	}
	return live;
}
int main() {
	int unusedThreads = read();
	sweepRounds = read();
	int i;
	tablePtr = alloc(64);
	int *t = tablePtr;
	for (i = 0; i < 64; i++) { t[i] = i * 7; }
	int sw = spawn(sweeper, 0);
	int work = 0;
	for (i = 0; i < 40; i++) { work = work + i; yield(); }
	// BUG: destroy the table while the sweeper may still be running
	// (mozilla 1.9.1 shutdown race). The poison value makes any further
	// sweep access fault, like touching freed memory.
	tablePtr = 0 - 1;
	destroyed = 1;
	join(sw);
	write(work);
	return 0;
}`,
})
