// Package workloads provides the benchmark programs of the paper's
// evaluation, reconstructed in mini-C for the vm substrate:
//
//   - eight PARSEC-like multi-threaded kernels (five "apps", three
//     "kernels") used by the logging/replay scaling experiments
//     (Figures 11, 12, 14),
//   - five SPEC OMP2001-like call-dense numeric kernels (ammp, apsi,
//     galgel, mgrid, wupwise) used by the save/restore pruning experiment
//     (Figure 13), and
//   - the three real concurrency bugs of Table 1 (pbzip2, Aget, mozilla),
//     reconstructed to preserve each bug's pattern.
//
// Every program is parameterised through its input stream: word 0 is the
// thread count, word 1 the work size, so region lengths scale smoothly.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cc"
	"repro/internal/isa"
)

// Suite classifies a workload.
type Suite string

// Workload suites.
const (
	SuiteParsec  Suite = "parsec"
	SuiteSpecOMP Suite = "specomp"
	SuiteBug     Suite = "bug"
)

// Workload is one registered benchmark program.
type Workload struct {
	Name        string
	Suite       Suite
	Class       string // "app" or "kernel" for PARSEC-likes
	Description string
	Source      string

	// DefaultThreads is the thread count the paper's experiments use.
	DefaultThreads int64

	once sync.Once
	prog *isa.Program
	err  error
}

// Program compiles the workload (once) and returns it.
func (w *Workload) Program() (*isa.Program, error) {
	w.once.Do(func() {
		w.prog, w.err = cc.CompileSource(w.Name+".c", w.Source)
	})
	return w.prog, w.err
}

// Input builds the program input: thread count, work size, then any
// extra words the specific workload reads.
func (w *Workload) Input(threads, size int64) []int64 {
	if threads <= 0 {
		threads = w.DefaultThreads
	}
	return []int64{threads, size}
}

var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	if w.DefaultThreads == 0 {
		w.DefaultThreads = 4
	}
	registry[w.Name] = w
	return w
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (try 'list')", name)
	}
	return w, nil
}

// All returns every workload, sorted by suite then name.
func All() []*Workload {
	var out []*Workload
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BySuite returns the workloads of one suite, sorted by name.
func BySuite(s Suite) []*Workload {
	var out []*Workload
	for _, w := range registry {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Parsec returns the eight PARSEC-like workloads.
func Parsec() []*Workload { return BySuite(SuiteParsec) }

// SpecOMP returns the five SPEC OMP-like workloads.
func SpecOMP() []*Workload { return BySuite(SuiteSpecOMP) }

// Bugs returns the three Table-1 bug reconstructions.
func Bugs() []*Workload { return BySuite(SuiteBug) }
