package maple_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/maple"
	"repro/internal/pinplay"
	"repro/internal/vm"
)

func compileT(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := cc.CompileSource("m.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// orderBugSrc has an order violation that virtually never fires under
// plain scheduling: the worker burns a long warm-up before reading init,
// so main's (unsynchronised) initialisation always wins the race — unless
// a scheduler actively delays it.
const orderBugSrc = `
int init;
int val;
int worker(int u) {
	int i;
	int w = 0;
	for (i = 0; i < 5000; i++) { w = w + i; }
	val = init * 2;
	assert(val == 20);
	return 0;
}
int main() {
	int t = spawn(worker, 0);
	init = 10;
	join(t);
	return 0;
}`

func TestProfilePhaseObservesAndPredicts(t *testing.T) {
	prog := compileT(t, orderBugSrc)
	prof, failing, err := maple.ProfilePhase(context.Background(), prog, pinplay.LogConfig{Seed: 1, MeanQuantum: 500}, maple.Options{ProfileRuns: 4})
	if err != nil {
		t.Fatal(err)
	}
	if failing != nil {
		t.Skip("profiling run already failed; active phase not needed on this host seed")
	}
	if len(prof.Observed) == 0 {
		t.Fatal("no iRoots observed")
	}
	if len(prof.Predicted) == 0 {
		t.Fatal("no iRoots predicted")
	}
	// The store to init and the load of init must appear in some
	// observed iRoot.
	sym := prog.SymbolByName("init")
	if sym == nil {
		t.Fatal("no symbol init")
	}
	found := false
	for r := range prof.Observed {
		if prog.Code[r.First].Op == isa.STORE || prog.Code[r.Then].Op == isa.LOAD {
			found = true
		}
	}
	if !found {
		t.Error("no store->load iRoot observed")
	}
}

func TestFindBugExposesOrderViolation(t *testing.T) {
	prog := compileT(t, orderBugSrc)
	res, err := maple.FindBug(context.Background(), prog, pinplay.LogConfig{Seed: 1, MeanQuantum: 500}, maple.Options{ProfileRuns: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exposed {
		t.Fatalf("maple failed to expose the bug (%d roots predicted, %d attempts)",
			res.RootsPredicted, res.Attempts)
	}
	if res.Pinball == nil || res.Pinball.Failure == nil {
		t.Fatal("no failing pinball recorded")
	}
	if res.DuringProfiling {
		t.Log("bug fired during profiling; active scheduling not exercised on this run")
	} else if res.Attempts == 0 {
		t.Error("active phase reported success without attempts")
	}

	// The recorded pinball must deterministically reproduce the failure —
	// the paper's "pinballs generated could be readily replayed and
	// debugged".
	for i := 0; i < 3; i++ {
		m, err := pinplay.Replay(prog, res.Pinball, nil)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if m.Stopped() != vm.StopFailure {
			t.Fatalf("replay %d: stop = %v", i, m.Stopped())
		}
		if m.Failure().PC != res.Pinball.Failure.PC {
			t.Fatalf("replay %d: failure at pc %d, logged %d", i, m.Failure().PC, res.Pinball.Failure.PC)
		}
	}
}

func TestMapleToDrDebugIntegration(t *testing.T) {
	// End-to-end: Maple exposes and records the bug; DrDebug opens the
	// pinball and slices the failure down to the unsynchronised read.
	prog := compileT(t, orderBugSrc)
	res, err := maple.FindBug(context.Background(), prog, pinplay.LogConfig{Seed: 1, MeanQuantum: 500}, maple.Options{ProfileRuns: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exposed {
		t.Fatal("bug not exposed")
	}
	sess := core.Open(prog, res.Pinball)
	sl, err := sess.SliceAtFailure()
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	tr, err := sess.Trace()
	if err != nil {
		t.Fatal(err)
	}
	foundRead := false
	for _, m := range sl.Members {
		if tr.Entry(m).Instr.Line == 8 { // "val = init * 2"
			foundRead = true
		}
	}
	if !foundRead {
		t.Error("failure slice missing the racy read of init")
	}
	// The warm-up loop (line 7) is noise and must not be in the slice.
	for _, m := range sl.Members {
		if tr.Entry(m).Instr.Line == 7 {
			t.Error("failure slice includes the warm-up loop")
			break
		}
	}
}

func TestFindBugOnCleanProgram(t *testing.T) {
	prog := compileT(t, `
int total;
int mtx;
int worker(int n) {
	lock(&mtx);
	total = total + n;
	unlock(&mtx);
	return 0;
}
int main() {
	int t1 = spawn(worker, 1);
	int t2 = spawn(worker, 2);
	join(t1);
	join(t2);
	assert(total == 3);
	return 0;
}`)
	res, err := maple.FindBug(context.Background(), prog, pinplay.LogConfig{Seed: 1, MeanQuantum: 50}, maple.Options{ProfileRuns: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exposed {
		t.Errorf("maple exposed a bug in a correct program (root %v)", res.Root)
	}
	if res.RootsPredicted == 0 {
		t.Error("correct program with real interleavings should still predict candidate roots")
	}
}

// TestFindBugContextCancellation: a pre-cancelled context stops the
// exploration immediately, and a deadline cancels a run from inside the
// VM's stepping loop instead of waiting out MaxSteps.
func TestFindBugContextCancellation(t *testing.T) {
	prog := compileT(t, orderBugSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := maple.FindBug(ctx, prog, pinplay.LogConfig{Seed: 1, MeanQuantum: 500}, maple.Options{ProfileRuns: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled FindBug err = %v, want context.Canceled", err)
	}
	if _, _, err := maple.ProfilePhase(ctx, prog, pinplay.LogConfig{Seed: 1}, maple.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ProfilePhase err = %v, want context.Canceled", err)
	}

	// An endless program under an already-expired deadline: without the
	// in-run limit this would spin for the full MaxSteps default.
	spin := compileT(t, `
int flag;
int worker(int u) {
	while (flag == 0) { yield(); }
	return 0;
}
int main() {
	int t = spawn(worker, 0);
	int i;
	for (i = 0; i < 1000000000; i = i) { i = i; yield(); }
	flag = 1;
	join(t);
	return 0;
}`)
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	start := time.Now()
	_, err := maple.FindBug(dctx, spin, pinplay.LogConfig{Seed: 1, MeanQuantum: 100}, maple.Options{ProfileRuns: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined FindBug err = %v, want context.DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("deadline cancellation took %v; exploration was not cut short", took)
	}
}
