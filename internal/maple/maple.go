// Package maple reimplements the Maple workflow the paper integrates with
// DrDebug: a coverage-driven testing tool for multi-threaded programs
// with (i) a profiling phase that records observed inter-thread
// dependencies (iRoots) and predicts untested ones, and (ii) an active
// scheduling phase that runs the program on a single virtual processor,
// manipulating thread priorities to force a predicted interleaving until
// the bug is exposed. Following the paper's integration, the active
// scheduler does PinPlay-based logging of every attempt, so the moment an
// attempt fails the buggy execution is already captured in a pinball that
// DrDebug can replay and slice.
package maple

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/vm"
)

// IRoot is a simplified idiom-1 inter-thread dependency: the instruction
// at First executes, and the next conflicting access to the same shared
// location comes from a different thread at Then (at least one of the two
// is a write).
type IRoot struct {
	First int64
	Then  int64
}

func (r IRoot) String() string { return fmt.Sprintf("pc%d->pc%d", r.First, r.Then) }

// Profile is the outcome of the profiling phase.
type Profile struct {
	// Observed maps each iRoot seen in some profile run to the number of
	// runs it appeared in.
	Observed map[IRoot]int
	// Predicted lists iRoots never observed whose flip was observed —
	// the candidate untested interleavings the active phase forces.
	Predicted []IRoot
	// Runs is the number of profiling runs performed.
	Runs int
}

// profiler observes conflicting cross-thread access pairs.
type profiler struct {
	vm.NopTracer
	last     map[int64]lastAccess
	observed map[IRoot]int
}

type lastAccess struct {
	tid     int
	pc      int64
	isWrite bool
}

func (p *profiler) OnInstr(ev *vm.InstrEvent) {
	if ev.EffAddr < 0 || ev.EffAddr >= vm.StackBase {
		return
	}
	isWrite := ev.MemIsWrite
	prev, ok := p.last[ev.EffAddr]
	if ok && prev.tid != ev.Tid && (prev.isWrite || isWrite) {
		p.observed[IRoot{First: prev.pc, Then: ev.PC}]++
	}
	p.last[ev.EffAddr] = lastAccess{tid: ev.Tid, pc: ev.PC, isWrite: isWrite}
}

// Options configures the Maple workflow.
type Options struct {
	// ProfileRuns is how many differently-seeded profiling runs to
	// perform (default 4).
	ProfileRuns int
	// MaxSteps bounds each run.
	MaxSteps int64
}

// Result reports an exposed bug.
type Result struct {
	// Exposed is true when some run failed.
	Exposed bool
	// Root is the iRoot whose enforcement exposed the bug (zero when the
	// failure surfaced during profiling).
	Root IRoot
	// DuringProfiling is set when a plain profiling run already failed.
	DuringProfiling bool
	// Pinball captures the failing execution, ready for DrDebug.
	Pinball *pinball.Pinball
	// Attempts counts active-scheduler runs performed.
	Attempts int
	// RootsPredicted is the size of the candidate set.
	RootsPredicted int
}

// ProfilePhase runs the profiler. Every run is logged; if a run happens
// to fail outright, the failing pinball is returned alongside the profile.
// Cancelling ctx stops the exploration between (and inside) runs; the
// phase then returns ctx.Err().
func ProfilePhase(ctx context.Context, prog *isa.Program, cfg pinplay.LogConfig, opts Options) (*Profile, *pinball.Pinball, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runs := opts.ProfileRuns
	if runs <= 0 {
		runs = 4
	}
	prof := &Profile{Observed: make(map[IRoot]int), Runs: runs}
	var failing *pinball.Pinball
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("maple: profiling cancelled after %d of %d runs: %w", i, runs, err)
		}
		p := &profiler{last: make(map[int64]lastAccess), observed: prof.Observed}
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(i)*7919
		pb, err := logRun(ctx, prog, vm.NewRandomScheduler(runCfg.Seed, mq(runCfg)), runCfg, p, opts.MaxSteps)
		if err != nil {
			return nil, nil, err
		}
		if pb.Failure != nil && failing == nil {
			failing = pb
		}
	}
	// Predict the flips of observed iRoots that were never themselves
	// observed.
	seen := map[IRoot]bool{}
	for r := range prof.Observed {
		seen[r] = true
	}
	for r := range prof.Observed {
		flip := IRoot{First: r.Then, Then: r.First}
		if !seen[flip] {
			prof.Predicted = append(prof.Predicted, flip)
		}
	}
	sort.Slice(prof.Predicted, func(i, j int) bool {
		a, b := prof.Predicted[i], prof.Predicted[j]
		if a.First != b.First {
			return a.First < b.First
		}
		return a.Then < b.Then
	})
	return prof, failing, nil
}

// mq returns the configured mean quantum with the default applied.
func mq(cfg pinplay.LogConfig) int64 {
	if cfg.MeanQuantum <= 0 {
		return 1000
	}
	return cfg.MeanQuantum
}

// logRun executes prog under the given scheduler with recording on from
// the start, returning the whole-execution pinball. A cancelled ctx
// stops the machine mid-run (via vm.Limits) and surfaces as ctx's error.
func logRun(ctx context.Context, prog *isa.Program, sched vm.Scheduler, cfg pinplay.LogConfig, extra vm.Tracer, maxSteps int64) (*pinball.Pinball, error) {
	if maxSteps <= 0 {
		maxSteps = 200_000_000
	}
	m := vm.New(prog, vm.Config{
		Sched:    sched,
		Env:      vm.NewNativeEnv(cfg.Input, cfg.RandSeed),
		MaxSteps: maxSteps,
	})
	if ctx != nil && ctx.Done() != nil {
		m.SetLimits(vm.Limits{Ctx: ctx})
	}
	if as, ok := sched.(*activeScheduler); ok {
		as.m = m
	}
	rec := pinplay.StartRecordingWith(m, extra)
	m.Run()
	if m.Stopped() == vm.StopCancelled {
		return nil, fmt.Errorf("maple: run cancelled: %w", ctx.Err())
	}
	pb := rec.Finish(m, m.Stopped().String())
	pb.Kind = pinball.KindWhole
	return pb, nil
}

// FindBug runs the full Maple workflow: profile, predict, then force each
// predicted iRoot with the active scheduler until a run fails. The
// failing run's pinball is returned ready for replay-based debugging.
// Cancelling ctx deadline-bounds the whole exploration: the current run
// is stopped from the VM's stepping loop and FindBug returns ctx.Err()
// instead of waiting out MaxSteps on every remaining candidate.
func FindBug(ctx context.Context, prog *isa.Program, cfg pinplay.LogConfig, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prof, failing, err := ProfilePhase(ctx, prog, cfg, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{RootsPredicted: len(prof.Predicted)}
	if failing != nil {
		res.Exposed = true
		res.DuringProfiling = true
		res.Pinball = failing
		return res, nil
	}
	for _, root := range prof.Predicted {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("maple: exploration cancelled after %d of %d attempts: %w",
				res.Attempts, len(prof.Predicted), err)
		}
		res.Attempts++
		watch := &rootWatcher{root: root}
		sched := &activeScheduler{root: root, watch: watch}
		pb, err := logRun(ctx, prog, sched, cfg, watch, opts.MaxSteps)
		if err != nil {
			return nil, err
		}
		if pb.Failure != nil {
			res.Exposed = true
			res.Root = root
			res.Pinball = pb
			return res, nil
		}
	}
	return res, nil
}

// rootWatcher tracks whether the iRoot's First pc has executed yet (and
// on which thread), driving the active scheduler's decisions.
type rootWatcher struct {
	vm.NopTracer
	root      IRoot
	firstDone bool
	firstTid  int
	enforced  bool
}

func (w *rootWatcher) OnInstr(ev *vm.InstrEvent) {
	if !w.firstDone && ev.PC == w.root.First {
		w.firstDone = true
		w.firstTid = ev.Tid
		return
	}
	if w.firstDone && !w.enforced && ev.PC == w.root.Then && ev.Tid != w.firstTid {
		w.enforced = true
	}
}

// activeScheduler runs the program on one virtual processor and delays
// any thread sitting at the iRoot's Then pc until another thread has
// executed First — Maple's priority-based interleaving enforcement,
// simplified to first dynamic occurrences. Decisions are a deterministic
// function of machine state, so the recorded run replays exactly.
type activeScheduler struct {
	root  IRoot
	watch *rootWatcher
	m     *vm.Machine
	rr    int
}

// Pick implements vm.Scheduler with quantum 1 so every decision sees
// fresh thread positions.
func (s *activeScheduler) Pick(runnable []int) (int, int64) {
	if s.m != nil && !s.watch.firstDone {
		// Prefer a thread about to execute First.
		for _, tid := range runnable {
			if s.m.Threads[tid].PC == s.root.First {
				return tid, 1
			}
		}
		// Otherwise avoid threads about to execute Then.
		var ok []int
		for _, tid := range runnable {
			if s.m.Threads[tid].PC != s.root.Then {
				ok = append(ok, tid)
			}
		}
		if len(ok) > 0 {
			s.rr++
			return ok[s.rr%len(ok)], 1
		}
		// Every runnable thread is parked at Then: give up on the
		// enforcement rather than wedge (Maple's timeout, in miniature).
	}
	s.rr++
	return runnable[s.rr%len(runnable)], 1
}
