package progfuzz_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/pinplay"
	"repro/internal/progfuzz"
	"repro/internal/races"
	"repro/internal/slice"
	"repro/internal/vm"
)

// TestGeneratedProgramsCompileAndTerminate: every generated program is
// valid mini-C and runs to a clean exit.
func TestGeneratedProgramsCompileAndTerminate(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		cfg := progfuzz.Config{Seed: seed, Stmts: 10 + int(seed%15), Funcs: int(seed % 4), Threads: seed%3 == 0}
		src := progfuzz.Generate(cfg)
		prog, err := cc.CompileSource("fuzz.c", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(seed, 37), MaxSteps: 5_000_000})
		if got := m.Run(); got != vm.StopExit {
			t.Fatalf("seed %d: stop = %v (failure: %v)\n%s", seed, got, m.Failure(), src)
		}
	}
}

// TestGenerationIsDeterministic: same seed, same program text.
func TestGenerationIsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := progfuzz.Config{Seed: seed, Stmts: 15, Funcs: 2, Threads: true}
		if progfuzz.Generate(cfg) != progfuzz.Generate(cfg) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
	}
}

// TestReplayPropertyOnGeneratedPrograms: for random programs, logging the
// whole run and replaying it reproduces the output and final memory.
func TestReplayPropertyOnGeneratedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		cfg := progfuzz.Config{Seed: seed, Stmts: 14, Funcs: 2, Threads: seed%2 == 0}
		src := progfuzz.Generate(cfg)
		prog, err := cc.CompileSource("fuzz.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 13}, pinplay.RegionSpec{})
		if err != nil {
			t.Fatalf("seed %d: log: %v", seed, err)
		}
		native := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(seed, 13), MaxSteps: 1 << 30})
		native.Run()

		replayed, err := pinplay.Replay(prog, pb, nil)
		if err != nil {
			t.Fatalf("seed %d: replay: %v\n%s", seed, err, src)
		}
		no, ro := native.Output(), replayed.Output()
		if len(no) != len(ro) {
			t.Fatalf("seed %d: output lengths %d vs %d", seed, len(no), len(ro))
		}
		for i := range no {
			if no[i] != ro[i] {
				t.Fatalf("seed %d: output[%d] = %d vs %d", seed, i, no[i], ro[i])
			}
		}
		if !native.Snapshot().Mem.Equal(replayed.Snapshot().Mem) {
			t.Fatalf("seed %d: final memory differs", seed)
		}
	}
}

// TestSlicePropertyOnGeneratedPrograms: slicing random criteria never
// errors, slices are subsets of the trace, pruning only shrinks them, and
// the resulting execution slices replay without divergence.
func TestSlicePropertyOnGeneratedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		cfg := progfuzz.Config{Seed: seed, Stmts: 12, Funcs: 2, Threads: seed%2 == 0}
		src := progfuzz.Generate(cfg)
		prog, err := cc.CompileSource("fuzz.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 17}, pinplay.RegionSpec{})
		if err != nil {
			t.Fatalf("seed %d: log: %v", seed, err)
		}
		sess := core.Open(prog, pb)
		tr, err := sess.Trace()
		if err != nil {
			t.Fatalf("seed %d: trace: %v", seed, err)
		}
		pruned, err := slice.New(prog, tr, slice.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: slicer: %v", seed, err)
		}
		unpruned, err := slice.New(prog, tr, slice.Options{MaxSave: 10, ControlDeps: true})
		if err != nil {
			t.Fatalf("seed %d: slicer: %v", seed, err)
		}
		for _, crit := range slice.LastReadsInRegion(tr, 3) {
			sp, err := pruned.Slice(crit)
			if err != nil {
				t.Fatalf("seed %d: slice: %v", seed, err)
			}
			su, err := unpruned.Slice(crit)
			if err != nil {
				t.Fatalf("seed %d: slice: %v", seed, err)
			}
			if sp.Stats.Members > su.Stats.Members {
				t.Fatalf("seed %d: pruning grew slice %d -> %d", seed, su.Stats.Members, sp.Stats.Members)
			}
			if sp.Stats.Members == 0 || sp.Stats.Members > sp.Stats.TraceLen {
				t.Fatalf("seed %d: implausible slice size %d/%d", seed, sp.Stats.Members, sp.Stats.TraceLen)
			}
			// The criterion itself is always a member.
			if !sp.Contains(crit) {
				t.Fatalf("seed %d: slice missing its criterion", seed)
			}
			// Execution slice must replay cleanly and reach identical
			// values: final memory comparison is too strong (skipped
			// output effects), so check no divergence.
			spb, _, err := sess.ExecutionSlice(sp)
			if err != nil {
				t.Fatalf("seed %d: exec slice: %v", seed, err)
			}
			if _, err := pinplay.Replay(prog, spb, nil); err != nil {
				t.Fatalf("seed %d: slice replay: %v\n%s", seed, err, src)
			}
		}
	}
}

// TestRaceDetectorPropertyOnGeneratedPrograms: lock-protected generated
// workers never produce shared-counter races; plain sequential programs
// report none at all.
func TestRaceDetectorPropertyOnGeneratedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		src := progfuzz.Generate(progfuzz.Config{Seed: seed, Stmts: 8, Funcs: 1})
		prog, err := cc.CompileSource("fuzz.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed}, pinplay.RegionSpec{})
		if err != nil {
			t.Fatal(err)
		}
		sess := core.Open(prog, pb)
		tr, err := sess.Trace()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := races.Detect(tr, vm.StackBase)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Races) != 0 {
			t.Fatalf("seed %d: races in single-threaded program: %+v", seed, rep.Races)
		}
	}
}
