int g0 = 34;
int g1 = 74;
int g2 = 16;
int arr0[16];
int fuzzMtx;
int shared;
int helper0(int p0, int p1) {
	int v1_2 = 46;
	int i1;
	for (i1 = 0; i1 < 13; i1++) {
		g1 = g1;
	}
	write((arr0[0] % 10));
	return 62;
}
int helper1(int p0, int p1) {
	int v1_2 = 25;
	int v1_3 = 26;
	p0 = ((v1_2 * arr0[10]) / 5);
	arr0[5] = ((6 << 5) / 3);
	p0 = helper0((p1 + arr0[0]), (v1_2 % 2));
	return ((p0 * -66) / 9);
}
int fuzzWorker(int id) {
	int v1_1 = 17;
	int v1_2 = 40;
	int fi;
	for (fi = 0; fi < 13; fi++) {
		lock(&fuzzMtx);
		shared = shared + (g1 * arr0[8]);
		unlock(&fuzzMtx);
	}
	return 0;
}
int main() {
	int v1_0 = 44;
	int v1_1 = 36;
	int v1_2 = 9;
	int fz1 = spawn(fuzzWorker, 1);
	int fz2 = spawn(fuzzWorker, 2);
	if ((g2 * v1_0) > (arr0[11] * v1_1)) {
		write(((-40 * 77) != (v1_0 - v1_2) ? -15 : g2));
	}
	v1_2 = (((-72 / 6) <= (arr0[6] - -10) ? arr0[9] : -16) + (g2 / 3));
	write((g0 >> 6));
	g1 = ((arr0[10] / 3) + -77);
	write(((arr0[7] % 10) <= ((arr0[1] % 14) != ((-9 & arr0[3]) <= (arr0[11] - -4) ? arr0[9] : 6) ? -78 : arr0[5]) ? arr0[14] : arr0[6]));
	int i2;
	for (i2 = 0; i2 < 5; i2++) {
		write(arr0[0]);
	}
	join(fz1);
	join(fz2);
	write(shared);
	write(g0);
	write(g1);
	write(g2);
	write(arr0[4]);
	return 0;
}
