int g0 = 49;
int g1 = 11;
int arr0[16];
int arr1[16];
int helper0(int p0, int p1) {
	int v1_2 = 24;
	int i1;
	for (i1 = 0; i1 < 7; i1++) {
		arr1[3] = arr1[2];
	}
	arr1[(89 % 16 + 16) % 16] = -22;
	g0 = g0 + 1;
	return (g1 > g0 ? arr0[3] : (67 / 8));
}
int helper1(int p0, int p1) {
	int v1_2 = 16;
	int v1_3 = 13;
	int v1_4 = 3;
	int d2 = 0;
	do {
		g0 = ((v1_3 * arr0[6]) - (g1 / 1));
		d2 = d2 + 1;
	} while (d2 < 5);
	int d3 = 0;
	do {
		p1 = ((98 * -16) ^ arr1[7]);
		d3 = d3 + 1;
	} while (d3 < 2);
	return ((-67 | 69) % 11);
}
int main() {
	int v1_0 = 27;
	int v1_1 = 12;
	int v1_2 = 31;
	g1 = v1_0 + 1;
	arr1[((96 << 7) % 16 + 16) % 16] = arr0[5];
	v1_1 = g1;
	g0 = ((arr0[9] % 9) - (g1 * v1_2));
	int d4 = 0;
	do {
		arr1[5] = ((-48 - arr0[15]) % 8);
		d4 = d4 + 1;
	} while (d4 < 4);
	switch ((46 / 7) % 4) {
	case 0:
		arr1[((arr1[14] + 69) % 16 + 16) % 16] = (4 >> 7);
		break;
	case 1:
		write(v1_1);
		break;
	case 2:
		v1_1 = ((arr1[3] * arr0[12]) ^ g0);
		break;
	case 3:
		int d5 = 0;
		do {
			v1_1 = (g0 + g0);
			d5 = d5 + 1;
		} while (d5 < 6);
		break;
	}
	write(g0);
	write(g1);
	write(arr0[6]);
	write(arr1[4]);
	return 0;
}
