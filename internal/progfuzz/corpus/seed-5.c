int g0 = 8;
int g1 = 72;
int g2 = 35;
int arr0[16];
int helper0(int p0, int p1) {
	int v1_2 = 25;
	int v1_3 = 38;
	g1 = -59;
	arr0[(v1_3 % 16 + 16) % 16] = (g1 / 2);
	if ((99 % 11) > (arr0[5] * 3)) {
		g2 = (g2 - (66 % 5));
	} else {
		p1 = ((g0 + g2) <= (-94 - arr0[6]) ? (g0 * v1_2) : (-9 + g0));
	}
	return ((v1_2 | g2) - (-39 | g1));
}
int helper1(int p0, int p1) {
	int v1_2 = 32;
	int v1_3 = 4;
	int v1_4 = 32;
	g0 = (arr0[8] * 54);
	g1 = arr0[7];
	v1_4 = helper0((arr0[8] + -84), (arr0[3] % 12));
	g1 = ((v1_4 | -78) >> 1);
	g0 = arr0[3];
	return ((g1 / 1) & g0);
}
int main() {
	int v1_0 = 20;
	int v1_1 = 21;
	int d1 = 0;
	do {
		v1_0 = arr0[1];
		d1 = d1 + 1;
	} while (d1 < 2);
	arr0[1] = 64;
	g0 = ((g0 - arr0[2]) + (arr0[12] >> 2));
	arr0[((arr0[10] / 2) % 16 + 16) % 16] = (arr0[13] + arr0[3]);
	if ((v1_0 * 39) != (-19 + v1_0)) {
		write((arr0[0] % 7));
	}
	int i2;
	for (i2 = 0; i2 < 13; i2++) {
		arr0[7] = (((2 + arr0[12]) >= ((v1_0 / 1) < g1 ? 26 : v1_1) ? arr0[5] : arr0[1]) % 11);
	}
	switch ((64 ^ v1_1) % 5) {
	case 0:
		v1_1 = arr0[11];
		break;
	case 1:
		switch ((v1_0 * 25) % 3) {
		case 0:
			write((-17 / 8));
			break;
		case 1:
			g1 = arr0[11];
			break;
		case 2:
			g0 = ((arr0[10] + -30) > (arr0[15] % 8) ? (-47 - arr0[12]) : arr0[9]);
			break;
		}
		break;
	case 2:
		g2 = ((g2 << 4) / 7);
		break;
	case 3:
		int i3;
		for (i3 = 0; i3 < 6; i3++) {
			arr0[9] = ((-8 % 11) < (g2 >= (arr0[9] * -58) ? -20 : v1_1) ? (arr0[9] + 20) : v1_0);
		}
		break;
	case 4:
		switch ((52 << 5) % 4) {
		case 0:
			g2 = -57;
			break;
		case 1:
			g1 = ((-81 >> 3) % 10);
			break;
		case 2:
			arr0[4] = helper0(arr0[2], (arr0[11] * 54));
			break;
		case 3:
			write((((v1_1 == (arr0[8] - v1_1) ? arr0[15] : 24) < (g2 * v1_0) ? g2 : arr0[4]) == g0 ? arr0[13] : v1_1));
			break;
		}
		break;
	default:
		g1 = helper1((g2 % 4), (v1_0 + -79));
		break;
	}
	write(g0);
	write(g1);
	write(g2);
	write(arr0[8]);
	return 0;
}
