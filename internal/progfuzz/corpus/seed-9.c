int g0 = 51;
int g1 = 79;
int g2 = 15;
int g3 = 4;
int arr0[16];
int main() {
	int v1_0 = 31;
	int v1_1 = 33;
	arr0[14] = (-13 % 5);
	int d1 = 0;
	do {
		g1 = v1_0 + 1;
		d1 = d1 + 1;
	} while (d1 < 3);
	arr0[12] = ((arr0[9] / 9) / 5);
	arr0[((-41 | arr0[9]) % 16 + 16) % 16] = arr0[8];
	if ((-66 & g1) != g1) {
		int d2 = 0;
		do {
			g2 = ((arr0[1] % 14) % 6);
			d2 = d2 + 1;
		} while (d2 < 3);
	} else {
		if ((g1 - 1) != (-92 + arr0[14])) {
			g1 = (arr0[11] > (arr0[12] % 6) ? (-82 % 9) : (arr0[8] % 1));
		} else {
			arr0[15] = ((g2 * g3) + (g3 / 5));
		}
	}
	write(g0);
	write(g1);
	write(g2);
	write(g3);
	write(arr0[0]);
	return 0;
}
