int g0 = 74;
int g1 = 80;
int g2 = 64;
int g3 = 2;
int arr0[16];
int arr1[16];
int main() {
	int v1_0 = 33;
	int v1_1 = 6;
	int v1_2 = 39;
	if ((-6 + arr0[12]) != (68 & -28)) {
		write(arr1[6]);
	} else {
		v1_1 = ((arr0[15] - g2) - (arr0[15] % 11));
	}
	int d1 = 0;
	do {
		switch (arr1[0] % 3) {
		case 0:
			write(((arr0[12] / 6) != (v1_0 + g1) ? arr1[13] : arr1[13]));
			break;
		case 1:
			v1_2 = arr0[13];
			break;
		case 2:
			g2 = ((14 / 3) / 9);
			break;
		}
		d1 = d1 + 1;
	} while (d1 < 1);
	int d2 = 0;
	do {
		g3 = ((80 & 55) - (g2 / 6));
		d2 = d2 + 1;
	} while (d2 < 5);
	write(g0);
	write(g1);
	write(g2);
	write(g3);
	write(arr0[14]);
	write(arr1[9]);
	return 0;
}
