int g0 = 33;
int g1 = 9;
int arr0[16];
int arr1[16];
int fuzzMtx;
int shared;
int fuzzWorker(int id) {
	int v1_1 = 39;
	int v1_2 = 11;
	int fi;
	for (fi = 0; fi < 23; fi++) {
		lock(&fuzzMtx);
		shared = shared + (76 % 4);
		unlock(&fuzzMtx);
	}
	return 0;
}
int main() {
	int v1_0 = 46;
	int v1_1 = 26;
	int fz1 = spawn(fuzzWorker, 1);
	int fz2 = spawn(fuzzWorker, 2);
	v1_0 = arr0[2] + 1;
	g0 = ((g1 << 3) % 4);
	g1 = ((v1_0 / 4) * v1_1);
	v1_1 = g1;
	if (((35 ^ -98) == (40 + -72) ? arr0[6] : 44) != (89 % 11)) {
		int i1;
		for (i1 = 0; i1 < 4; i1++) {
			arr0[4] = arr1[3];
		}
	} else {
		v1_0 = arr1[0];
	}
	write((-46 / 2));
	g0 = (arr0[9] << 6);
	arr0[8] = v1_1;
	join(fz1);
	join(fz2);
	write(shared);
	write(g0);
	write(g1);
	write(arr0[3]);
	write(arr1[3]);
	return 0;
}
