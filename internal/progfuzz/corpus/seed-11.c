int g0 = 64;
int g1 = 26;
int arr0[16];
int helper0(int p0, int p1) {
	int v1_2 = 7;
	arr0[((-6 / 5) % 16 + 16) % 16] = (g0 <= (p1 % 1) ? 70 : 78);
	p0 = (g0 + (-97 + -32));
	arr0[4] = -21;
	arr0[14] = (44 != 92 ? (-5 * -94) : p1);
	arr0[12] = p0;
	return ((v1_2 << 4) / 6);
}
int helper1(int p0, int p1) {
	int v1_2 = 9;
	int v1_3 = 24;
	arr0[4] = ((arr0[6] & 86) % 15);
	write((-5 | arr0[13]));
	p1 = (((v1_2 << 5) <= (v1_3 & v1_3) ? arr0[12] : p0) - (arr0[8] + 21));
	int d1 = 0;
	do {
		arr0[1] = ((g0 + 83) / 7);
		d1 = d1 + 1;
	} while (d1 < 3);
	return arr0[11];
}
int main() {
	int v1_0 = 34;
	int v1_1 = 10;
	int v1_2 = 34;
	arr0[((arr0[4] * arr0[14]) % 16 + 16) % 16] = (arr0[5] % 1);
	v1_2 = ((20 - g1) - (16 - -62));
	arr0[14] = v1_0 + 1;
	write((arr0[3] % 8));
	if ((16 / 1) <= (-68 - 6)) {
		v1_0 = ((v1_0 / 3) * arr0[0]);
	} else {
		v1_1 = ((arr0[12] + arr0[10]) | arr0[1]);
	}
	if ((g1 ^ arr0[1]) < (-17 << 5)) {
		arr0[12] = helper0((-64 / 4), (v1_0 | -87));
	}
	int i2;
	for (i2 = 0; i2 < 12; i2++) {
		int d3 = 0;
		do {
			v1_2 = ((v1_2 + arr0[6]) % 15);
			d3 = d3 + 1;
		} while (d3 < 2);
	}
	write(g0);
	write(g1);
	write(arr0[10]);
	return 0;
}
