int g0 = 11;
int g1 = 47;
int arr0[16];
int arr1[16];
int fuzzMtx;
int shared;
int helper0(int p0, int p1) {
	int v1_2 = 42;
	int v1_3 = 32;
	g0 = (5 * p1);
	int d1 = 0;
	do {
		if (43 == (g1 / 7)) {
			write((g0 & arr1[1]));
		} else {
			p0 = ((p1 + -34) * -10);
		}
		d1 = d1 + 1;
	} while (d1 < 3);
	return ((arr1[2] + v1_3) % 11);
}
int fuzzWorker(int id) {
	int v1_1 = 19;
	int v1_2 = 43;
	int fi;
	for (fi = 0; fi < 9; fi++) {
		lock(&fuzzMtx);
		shared = shared + (arr0[3] >= (arr1[1] & v1_2) ? g1 : -66);
		unlock(&fuzzMtx);
	}
	return 0;
}
int main() {
	int v1_0 = 14;
	int v1_1 = 14;
	int v1_2 = 19;
	int fz1 = spawn(fuzzWorker, 1);
	int fz2 = spawn(fuzzWorker, 2);
	g1 = arr1[15] + 1;
	int d2 = 0;
	do {
		switch ((g1 >> 6) % 4) {
		case 0:
			arr1[14] = (((arr0[0] % 12) != (arr1[7] * g0) ? -4 : v1_2) - (v1_0 + arr0[4]));
			break;
		case 1:
			arr0[2] = (-39 / 1);
			break;
		case 2:
			v1_2 = (v1_0 - (arr1[8] - g0));
			break;
		case 3:
			g0 = helper0((9 * 12), ((v1_1 - -89) <= (v1_1 * g1) ? v1_2 : arr0[1]));
			break;
		default:
			v1_2 = ((arr1[7] * -79) / 2);
			break;
		}
		d2 = d2 + 1;
	} while (d2 < 2);
	g0 = ((-89 + g1) / 5);
	arr0[6] = helper0((g0 / 3), (arr1[10] / 7));
	join(fz1);
	join(fz2);
	write(shared);
	write(g0);
	write(g1);
	write(arr0[12]);
	write(arr1[13]);
	return 0;
}
