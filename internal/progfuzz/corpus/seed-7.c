int g0 = 15;
int g1 = 33;
int g2 = 89;
int g3 = 48;
int arr0[16];
int helper0(int p0, int p1) {
	int v1_2 = 11;
	int v1_3 = 24;
	g3 = (arr0[6] % 1);
	int d1 = 0;
	do {
		int i2;
		for (i2 = 0; i2 < 5; i2++) {
			g0 = ((v1_2 / 3) >> 1);
		}
		d1 = d1 + 1;
	} while (d1 < 3);
	return ((v1_2 % 1) / 1);
}
int main() {
	int v1_0 = 26;
	int v1_1 = 46;
	int v1_2 = 36;
	v1_2 = ((arr0[8] * -26) / 4);
	g1 = ((g0 * g3) & arr0[7]);
	arr0[((-3 % 11) % 16 + 16) % 16] = -52;
	int i3;
	for (i3 = 0; i3 < 7; i3++) {
		g3 = ((-68 * v1_2) >> 4);
	}
	v1_0 = helper0(-89, (arr0[14] * -28));
	write(g0);
	write(g1);
	write(g2);
	write(g3);
	write(arr0[6]);
	return 0;
}
