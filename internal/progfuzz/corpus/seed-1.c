int g0 = 41;
int g1 = 13;
int g2 = 16;
int g3 = 27;
int arr0[16];
int arr1[16];
int helper0(int p0, int p1) {
	int v1_2 = 49;
	int d1 = 0;
	do {
		g0 = ((arr1[2] + arr0[12]) - (-98 * arr1[14]));
		d1 = d1 + 1;
	} while (d1 < 2);
	int d2 = 0;
	do {
		g3 = (arr0[2] / 2);
		d2 = d2 + 1;
	} while (d2 < 6);
	return ((p1 << 7) != g1 ? g0 : (-69 - -27));
}
int main() {
	int v1_0 = 21;
	int v1_1 = 29;
	int v1_2 = 9;
	int v1_3 = 28;
	switch ((arr1[13] + arr1[4]) % 4) {
	case 0:
		int i3;
		for (i3 = 0; i3 < 9; i3++) {
			write((-66 * arr0[10]));
		}
		break;
	case 1:
		g3 = arr0[6] + 1;
		break;
	case 2:
		arr1[((arr0[1] % 7) % 16 + 16) % 16] = (arr0[0] * arr0[9]);
		break;
	case 3:
		g2 = g0;
		break;
	}
	int d4 = 0;
	do {
		int d5 = 0;
		do {
			arr1[0] = ((-20 / 8) * v1_0);
			d5 = d5 + 1;
		} while (d5 < 2);
		d4 = d4 + 1;
	} while (d4 < 4);
	write(g0);
	write(g1);
	write(g2);
	write(g3);
	write(arr0[12]);
	write(arr1[7]);
	return 0;
}
