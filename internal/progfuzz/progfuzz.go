// Package progfuzz generates random — but always valid and terminating —
// mini-C programs. The test suites use it to property-test the whole
// stack: every generated program must compile, run deterministically,
// replay from its pinball to an identical final state, and slice without
// divergence. Generation is seed-deterministic so failures reproduce.
package progfuzz

import (
	"fmt"
	"strings"
)

// Config shapes generated programs.
type Config struct {
	Seed int64
	// Stmts is the approximate statement budget per function body.
	Stmts int
	// Funcs is the number of helper functions (callable, non-recursive).
	Funcs int
	// Threads adds spawned workers with lock-protected shared updates.
	Threads bool
}

// rng is a small deterministic generator (split from math/rand so that
// generated programs are stable across Go releases).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// gen carries generation state.
type gen struct {
	r      *rng
	b      strings.Builder
	indent int

	globals []string
	arrays  []string // global arrays, all of size arraySize
	funcs   []string // helper functions defined so far (callable)

	locals [][]string // scope stack of in-scope scalar locals
	depth  int        // statement nesting depth
	budget int
	uniq   int // monotonically increasing name counter
}

const arraySize = 16

// Generate produces one program.
func Generate(cfg Config) string {
	if cfg.Stmts <= 0 {
		cfg.Stmts = 12
	}
	if cfg.Funcs < 0 {
		cfg.Funcs = 0
	}
	g := &gen{r: &rng{s: uint64(cfg.Seed)*2862933555777941757 + 3037000493}}

	// Globals.
	nGlobals := 2 + g.r.intn(3)
	for i := 0; i < nGlobals; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		g.line("int %s = %d;", name, g.r.intn(100))
	}
	nArrays := 1 + g.r.intn(2)
	for i := 0; i < nArrays; i++ {
		name := fmt.Sprintf("arr%d", i)
		g.arrays = append(g.arrays, name)
		g.line("int %s[%d];", name, arraySize)
	}
	if cfg.Threads {
		g.line("int fuzzMtx;")
		g.line("int shared;")
	}

	// Helper functions (each may call only earlier ones: no recursion).
	for i := 0; i < cfg.Funcs; i++ {
		name := fmt.Sprintf("helper%d", i)
		g.line("int %s(int p0, int p1) {", name)
		g.indent++
		g.pushScope("p0", "p1")
		g.declareLocals(1 + g.r.intn(3))
		g.budget = cfg.Stmts / 2
		for g.budget > 0 {
			g.stmt(cfg)
		}
		g.line("return %s;", g.expr(2))
		g.popScope()
		g.indent--
		g.line("}")
		g.funcs = append(g.funcs, name)
	}

	if cfg.Threads {
		g.line("int fuzzWorker(int id) {")
		g.indent++
		g.pushScope("id")
		g.declareLocals(2)
		g.line("int fi;")
		g.line("for (fi = 0; fi < %d; fi++) {", 5+g.r.intn(20))
		g.indent++
		g.line("lock(&fuzzMtx);")
		g.line("shared = shared + %s;", g.expr(1))
		g.line("unlock(&fuzzMtx);")
		g.indent--
		g.line("}")
		g.line("return 0;")
		g.popScope()
		g.indent--
		g.line("}")
	}

	// Main.
	g.line("int main() {")
	g.indent++
	g.pushScope()
	g.declareLocals(2 + g.r.intn(3))
	if cfg.Threads {
		g.line("int fz1 = spawn(fuzzWorker, 1);")
		g.line("int fz2 = spawn(fuzzWorker, 2);")
	}
	g.budget = cfg.Stmts
	for g.budget > 0 {
		g.stmt(cfg)
	}
	if cfg.Threads {
		g.line("join(fz1);")
		g.line("join(fz2);")
		g.line("write(shared);")
	}
	for _, gl := range g.globals {
		g.line("write(%s);", gl)
	}
	for _, a := range g.arrays {
		g.line("write(%s[%d]);", a, g.r.intn(arraySize))
	}
	g.line("return 0;")
	g.popScope()
	g.indent--
	g.line("}")
	return g.b.String()
}

func (g *gen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) pushScope(names ...string) {
	g.locals = append(g.locals, append([]string(nil), names...))
}

func (g *gen) popScope() { g.locals = g.locals[:len(g.locals)-1] }

func (g *gen) scope() []string { return g.locals[len(g.locals)-1] }

// declareLocals adds fresh scalar locals with initialisers to the current
// scope.
func (g *gen) declareLocals(n int) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("v%d_%d", len(g.locals), len(g.scope()))
		g.line("int %s = %d;", name, g.r.intn(50))
		g.locals[len(g.locals)-1] = append(g.locals[len(g.locals)-1], name)
	}
}

// allVars returns every readable scalar in scope (globals + locals).
func (g *gen) allVars() []string {
	out := append([]string(nil), g.globals...)
	for _, s := range g.locals {
		out = append(out, s...)
	}
	return out
}

// expr produces a side-effect-free expression of bounded depth. Division
// and modulo only appear with non-zero constant divisors, so generated
// programs never fault.
func (g *gen) expr(depth int) string {
	vars := g.allVars()
	leaf := func() string {
		switch g.r.intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.intn(200)-100)
		case 1:
			if len(vars) > 0 {
				return vars[g.r.intn(len(vars))]
			}
			return fmt.Sprintf("%d", g.r.intn(9))
		default:
			if len(g.arrays) > 0 {
				return fmt.Sprintf("%s[%d]", g.arrays[g.r.intn(len(g.arrays))], g.r.intn(arraySize))
			}
			return fmt.Sprintf("%d", g.r.intn(9))
		}
	}
	if depth <= 0 {
		return leaf()
	}
	switch g.r.intn(9) {
	case 0, 1:
		return leaf()
	case 8:
		return fmt.Sprintf("(%s ? %s : %s)", g.cond(), g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), leaf())
	case 5:
		return fmt.Sprintf("(%s / %d)", g.expr(depth-1), 1+g.r.intn(9))
	case 6:
		return fmt.Sprintf("(%s %% %d)", g.expr(depth-1), 1+g.r.intn(15))
	default:
		op := []string{"&", "|", "^", "<<", ">>"}[g.r.intn(5)]
		if op == "<<" || op == ">>" {
			return fmt.Sprintf("(%s %s %d)", g.expr(depth-1), op, g.r.intn(8))
		}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, leaf())
	}
}

// cond produces a boolean-ish expression.
func (g *gen) cond() string {
	op := []string{"==", "!=", "<", "<=", ">", ">="}[g.r.intn(6)]
	return fmt.Sprintf("%s %s %s", g.expr(1), op, g.expr(1))
}

// lvalue picks an assignable target.
func (g *gen) lvalue() string {
	vars := g.allVars()
	if len(g.arrays) > 0 && g.r.intn(3) == 0 {
		return fmt.Sprintf("%s[%d]", g.arrays[g.r.intn(len(g.arrays))], g.r.intn(arraySize))
	}
	return vars[g.r.intn(len(vars))]
}

// stmt emits one random statement, consuming budget.
func (g *gen) stmt(cfg Config) {
	g.budget--
	choice := g.r.intn(13)
	if g.depth >= 2 && choice >= 7 {
		choice = g.r.intn(7) // cap nesting
	}
	switch choice {
	case 0, 1, 2, 3:
		g.line("%s = %s;", g.lvalue(), g.expr(2))
	case 4:
		if len(g.funcs) > 0 {
			fn := g.funcs[g.r.intn(len(g.funcs))]
			g.line("%s = %s(%s, %s);", g.lvalue(), fn, g.expr(1), g.expr(1))
		} else {
			g.line("%s = %s;", g.lvalue(), g.expr(2))
		}
	case 5:
		g.line("write(%s);", g.expr(1))
	case 6:
		g.line("%s = %s;", g.lvalue(), g.expr(2))
	case 7:
		g.depth++
		g.line("if (%s) {", g.cond())
		g.indent++
		g.stmt(cfg)
		g.indent--
		if g.r.intn(2) == 0 {
			g.line("} else {")
			g.indent++
			g.stmt(cfg)
			g.indent--
		}
		g.line("}")
		g.depth--
	case 8:
		// Bounded counted loop: always terminates. The loop variable is
		// deliberately NOT added to the visible-variable list — this
		// statement may sit inside a nested block, and mini-C scoping
		// would reject later out-of-block references.
		g.uniq++
		iv := fmt.Sprintf("i%d", g.uniq)
		g.depth++
		g.line("int %s;", iv)
		g.line("for (%s = 0; %s < %d; %s++) {", iv, iv, 2+g.r.intn(12), iv)
		g.indent++
		g.stmt(cfg)
		g.indent--
		g.line("}")
		g.depth--
	case 11:
		// Bounded do-while: runs at least once, terminates via counter.
		g.uniq++
		dv := fmt.Sprintf("d%d", g.uniq)
		g.depth++
		g.line("int %s = 0;", dv)
		g.line("do {")
		g.indent++
		g.stmt(cfg)
		g.line("%s = %s + 1;", dv, dv)
		g.indent--
		g.line("} while (%s < %d);", dv, 1+g.r.intn(6))
		g.depth--
	case 9:
		g.depth++
		n := 2 + g.r.intn(4)
		g.line("switch (%s %% %d) {", g.expr(1), n)
		for c := 0; c < n; c++ {
			g.line("case %d:", c)
			g.indent++
			g.stmt(cfg)
			g.line("break;")
			g.indent--
		}
		if g.r.intn(2) == 0 {
			g.line("default:")
			g.indent++
			g.stmt(cfg)
			g.line("break;")
			g.indent--
		}
		g.line("}")
		g.depth--
	case 10:
		if len(g.arrays) > 0 {
			a := g.arrays[g.r.intn(len(g.arrays))]
			g.line("%s[(%s %% %d + %d) %% %d] = %s;",
				a, g.expr(1), arraySize, arraySize, arraySize, g.expr(1))
		} else {
			g.line("%s = %s;", g.lvalue(), g.expr(2))
		}
	default:
		g.line("%s = %s + 1;", g.lvalue(), g.lvalue())
	}
}
