package progfuzz

// CorpusSeeds are the seeds of the committed regression corpus in
// corpus/seed-<n>.c. The files are the generator's exact output for
// CorpusConfig(seed): a corpus test regenerates and byte-compares them,
// so any change to the generator that would silently shift
// differential-slicer coverage shows up as a corpus diff that must be
// committed deliberately.
var CorpusSeeds = []int64{1, 2, 3, 4, 5, 7, 8, 9, 11, 12}

// CorpusConfig is the canonical generation config for a corpus seed —
// the same derivation the differential slicer tests use, so the corpus
// pins exactly the program shapes those tests sweep.
func CorpusConfig(seed int64) Config {
	return Config{
		Seed:    seed,
		Stmts:   6 + int(seed%7),
		Funcs:   int(seed % 3),
		Threads: seed%4 == 0,
	}
}
