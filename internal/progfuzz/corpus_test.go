package progfuzz

import (
	"fmt"
	"os"
	"testing"
)

// TestCorpusPinned regenerates every committed corpus program and
// byte-compares it against corpus/seed-<n>.c: the corpus is the
// generator's frozen output, so generator drift cannot silently change
// what the differential slicer tests cover.
func TestCorpusPinned(t *testing.T) {
	for _, seed := range CorpusSeeds {
		path := fmt.Sprintf("corpus/seed-%d.c", seed)
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed %d: %v (regenerate the corpus and commit the diff)", seed, err)
		}
		got := Generate(CorpusConfig(seed))
		if got != string(want) {
			t.Errorf("seed %d: generator output diverged from committed %s — "+
				"if the generator change is intentional, regenerate the corpus and commit the diff",
				seed, path)
		}
	}
}

// TestCorpusShapesAreDiverse sanity-checks the seed set still exercises
// both threaded and single-threaded programs.
func TestCorpusShapesAreDiverse(t *testing.T) {
	threaded := 0
	for _, seed := range CorpusSeeds {
		if CorpusConfig(seed).Threads {
			threaded++
		}
	}
	if threaded == 0 || threaded == len(CorpusSeeds) {
		t.Fatalf("corpus has %d/%d threaded programs; want a mix", threaded, len(CorpusSeeds))
	}
}
