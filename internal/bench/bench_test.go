package bench_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
)

// tinyConfig keeps the experiment harness fast enough for unit tests.
func tinyConfig(out *bytes.Buffer) bench.Config {
	cfg := bench.DefaultConfig(out)
	cfg.SweepLengths = []int64{2_000, 5_000}
	cfg.RegionLen = 5_000
	cfg.RegionLenLarge = 20_000
	cfg.Slices = 3
	return cfg
}

func TestTable1(t *testing.T) {
	var out bytes.Buffer
	rows, err := bench.Table1(tinyConfig(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Exposed {
			t.Errorf("%s not exposed", r.Program)
		}
	}
	for _, want := range []string{"pbzip2", "aget", "mozilla", "exposed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTables2And3(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	t2, err := bench.Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := bench.Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 3 || len(t3) != 3 {
		t.Fatalf("row counts: %d, %d", len(t2), len(t3))
	}
	for i := range t2 {
		if t2[i].ExecutedInstrs <= 0 || t3[i].ExecutedInstrs <= 0 {
			t.Errorf("%s: empty regions", t2[i].Program)
		}
		// The buggy region must not be larger than the whole execution.
		if t2[i].ExecutedInstrs > t3[i].ExecutedInstrs {
			t.Errorf("%s: buggy region (%d) larger than whole run (%d)",
				t2[i].Program, t2[i].ExecutedInstrs, t3[i].ExecutedInstrs)
		}
		// Slice pinballs are strictly smaller than their regions — the
		// paper's central claim for both tables.
		if t2[i].SliceInstrs >= t2[i].ExecutedInstrs {
			t.Errorf("%s: slice pinball not smaller (table 2)", t2[i].Program)
		}
		if t3[i].SliceInstrs >= t3[i].ExecutedInstrs {
			t.Errorf("%s: slice pinball not smaller (table 3)", t3[i].Program)
		}
		if t2[i].SpaceBytes <= 0 {
			t.Errorf("%s: no pinball size", t2[i].Program)
		}
	}
}

func TestFigures11And12(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	s11, err := bench.Figure11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s11) != 8 {
		t.Fatalf("fig11: %d series, want 8", len(s11))
	}
	for _, s := range s11 {
		if len(s.Points) != len(cfg.SweepLengths) {
			t.Fatalf("%s: %d points", s.Workload, len(s.Points))
		}
		for i, p := range s.Points {
			if p.Length < cfg.SweepLengths[i] {
				t.Errorf("%s point %d: main length %d < requested %d", s.Workload, i, p.Length, cfg.SweepLengths[i])
			}
			// The paper: total instructions are a small multiple of the
			// main-thread length (3-4x for 4 threads).
			if p.AllThreads < p.Length || p.AllThreads > 8*p.Length {
				t.Errorf("%s point %d: all-threads %d vs main %d out of shape", s.Workload, i, p.AllThreads, p.Length)
			}
			if p.SpaceBytes <= 0 {
				t.Errorf("%s point %d: no pinball size", s.Workload, i)
			}
		}
	}
	s12, err := bench.Figure12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s12) != 8 {
		t.Fatalf("fig12: %d series", len(s12))
	}
}

func TestFigure13ReductionPositive(t *testing.T) {
	var out bytes.Buffer
	rows, err := bench.Figure13(tinyConfig(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	var avg float64
	for _, r := range rows {
		if r.ReductionSmall < 0 || r.ReductionLarge < 0 {
			t.Errorf("%s: negative reduction (pruning grew a slice)", r.Workload)
		}
		if r.PairsVerified == 0 {
			t.Errorf("%s: no save/restore pairs verified", r.Workload)
		}
		avg += r.ReductionSmall
	}
	if avg/float64(len(rows)) <= 0 {
		t.Error("average reduction not positive; save/restore pruning had no effect")
	}
}

func TestFigure14ShapeMatchesPaper(t *testing.T) {
	var out bytes.Buffer
	rows, err := bench.Figure14(tinyConfig(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	var pct float64
	for _, r := range rows {
		if r.AvgSliceInstrs <= 0 || r.AvgSliceInstrs > r.RegionInstrs {
			t.Errorf("%s: slice instrs %d out of range (region %d)", r.Workload, r.AvgSliceInstrs, r.RegionInstrs)
		}
		pct += r.PctInstrsKept
	}
	// The paper reports ~41%% of instructions kept on average; accept a
	// broad band but require real reduction.
	avg := pct / float64(len(rows))
	if avg <= 0 || avg >= 100 {
		t.Errorf("average %%instructions kept = %.1f, want in (0, 100)", avg)
	}
}

func TestSlicingOverhead(t *testing.T) {
	var out bytes.Buffer
	rows, err := bench.SlicingOverhead(tinyConfig(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SlicesComputed == 0 || r.AvgSliceSize == 0 {
			t.Errorf("%s: no slices computed", r.Workload)
		}
	}
}

func TestAblation(t *testing.T) {
	var out bytes.Buffer
	rows, err := bench.Ablation(tinyConfig(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		// Pruning shrinks (or keeps) slices at equal refinement settings.
		if r.Full > r.NoPrune {
			t.Errorf("%s: pruning grew refined slices: %.0f > %.0f", r.Workload, r.Full, r.NoPrune)
		}
		if r.NoRefine > r.Neither {
			t.Errorf("%s: pruning grew approximate slices: %.0f > %.0f", r.Workload, r.NoRefine, r.Neither)
		}
		if r.Full <= 0 {
			t.Errorf("%s: empty slices", r.Workload)
		}
	}
}

func TestRingBench(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	// The capture-size win needs window content to dominate the ring's
	// fixed overhead (recipe + eviction manifest), so this experiment
	// runs a longer region than the other tiny-scale tests.
	cfg.RegionLenLarge = 200_000
	report, err := bench.RingBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(report.Rows))
	}
	for _, r := range report.Rows {
		if r.Evicted == 0 || r.GapInstrs == 0 {
			t.Errorf("%s/%d: ring evicted nothing", r.Workload, r.RingBudget)
		}
		if !r.BridgeExact {
			t.Errorf("%s/%d: gap bridge not exact", r.Workload, r.RingBudget)
		}
		if r.RingBytes >= r.FullBytes {
			t.Errorf("%s/%d: ring capture %d not smaller than full %d",
				r.Workload, r.RingBudget, r.RingBytes, r.FullBytes)
		}
	}
}
