package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/slice"
	"repro/internal/workloads"
)

// AblationRow reports average slice sizes for one workload under the four
// precision configurations: both features, no CFG refinement, no
// save/restore pruning, neither.
type AblationRow struct {
	Workload string
	Full     float64 // refined + pruned (DrDebug default)
	NoRefine float64
	NoPrune  float64
	Neither  float64
	TraceLen int
	Slices   int
}

// Ablation quantifies each Section 5 precision feature in isolation over
// a mixed workload set (switch-heavy vips exercises §5.1, the call-dense
// SPEC OMP-likes exercise §5.2). CFG refinement grows slices (it
// recovers missing control dependences); save/restore pruning shrinks
// them (it removes spurious ones); the table shows both effects
// separately and combined.
func Ablation(cfg Config) ([]AblationRow, error) {
	cfg.printf("Ablation: average slice size under precision-feature combinations, %dk regions\n", cfg.RegionLen/1000)
	cfg.printf("%-14s | %-10s | %-10s | %-10s | %-10s\n",
		"Workload", "full", "no-refine", "no-prune", "neither")

	names := []string{"vips", "x264", "ammp", "mgrid", "wupwise"}
	configs := []slice.Options{
		slice.DefaultOptions(),
		{MaxSave: 10, ControlDeps: true, PruneSaveRestore: true, DisableRefinement: true},
		{MaxSave: 10, ControlDeps: true},
		{MaxSave: 10, ControlDeps: true, DisableRefinement: true},
	}

	var rows []AblationRow
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		pb, _, err := logRegion(w, &cfg, warmupSkip, cfg.RegionLen)
		if err != nil {
			return nil, err
		}
		prog, err := w.Program()
		if err != nil {
			return nil, err
		}
		sess := core.Open(prog, pb)
		tr, err := sess.Trace()
		if err != nil {
			return nil, err
		}
		crits := slice.LastReadsInRegion(tr, cfg.Slices)
		if len(crits) == 0 {
			return nil, fmt.Errorf("bench: ablation %s: no criteria", name)
		}
		row := AblationRow{Workload: name, TraceLen: len(tr.Global), Slices: len(crits)}
		avgs := make([]float64, len(configs))
		for ci, opts := range configs {
			s, err := slice.New(prog, tr, opts)
			if err != nil {
				return nil, err
			}
			var total int
			for _, c := range crits {
				sl, err := s.Slice(c)
				if err != nil {
					return nil, err
				}
				total += sl.Stats.Members
			}
			avgs[ci] = float64(total) / float64(len(crits))
		}
		row.Full, row.NoRefine, row.NoPrune, row.Neither = avgs[0], avgs[1], avgs[2], avgs[3]
		rows = append(rows, row)
		cfg.printf("%-14s | %10.0f | %10.0f | %10.0f | %10.0f\n",
			row.Workload, row.Full, row.NoRefine, row.NoPrune, row.Neither)
	}
	return rows, nil
}
