package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/slice"
	"repro/internal/workloads"
)

// warmupSkip fast-forwards past thread creation so the logged region has
// all worker threads active, like the paper's skip selection.
const warmupSkip int64 = 1000

// SweepPoint is one (length, time) measurement of Figure 11 or 12.
type SweepPoint struct {
	Length     int64 // main-thread instructions in the region
	AllThreads int64 // instructions across all threads
	Time       time.Duration
	SpaceBytes int64
}

// SweepSeries is one benchmark's curve.
type SweepSeries struct {
	Workload string
	Class    string
	Points   []SweepPoint
}

// Figure11 reproduces the logging-time sweep: for each PARSEC-like
// workload, log regions of each configured length (4 threads) and report
// the wall-clock logging time (with compressed pinball size, the paper's
// "with bzip2 pinball compression").
func Figure11(cfg Config) ([]SweepSeries, error) {
	cfg.printf("Figure 11: logging times (wall clock) vs region length, %d threads\n", cfg.Threads)
	return sweep(cfg, "log", func(w *workloads.Workload, length int64) (SweepPoint, error) {
		pb, logTime, err := logRegion(w, &cfg, warmupSkip, length)
		if err != nil {
			return SweepPoint{}, err
		}
		p := SweepPoint{Length: pb.MainInstrs, AllThreads: pb.RegionInstrs, Time: logTime}
		if sz, err := pb.EncodedSize(); err == nil {
			p.SpaceBytes = sz
		}
		return p, nil
	})
}

// Figure12 reproduces the replay-time sweep over the same pinballs.
func Figure12(cfg Config) ([]SweepSeries, error) {
	cfg.printf("Figure 12: replay times (wall clock) vs region length, %d threads\n", cfg.Threads)
	return sweep(cfg, "replay", func(w *workloads.Workload, length int64) (SweepPoint, error) {
		pb, _, err := logRegion(w, &cfg, warmupSkip, length)
		if err != nil {
			return SweepPoint{}, err
		}
		prog, err := w.Program()
		if err != nil {
			return SweepPoint{}, err
		}
		rt, err := replayTimed(prog, pb)
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{Length: pb.MainInstrs, AllThreads: pb.RegionInstrs, Time: rt}, nil
	})
}

// sweep runs one measurement over every PARSEC-like workload and length.
func sweep(cfg Config, what string, measure func(*workloads.Workload, int64) (SweepPoint, error)) ([]SweepSeries, error) {
	var out []SweepSeries
	for _, w := range workloads.Parsec() {
		s := SweepSeries{Workload: w.Name, Class: w.Class}
		for _, length := range cfg.SweepLengths {
			p, err := measure(w, length)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %s @%d: %w", w.Name, what, length, err)
			}
			s.Points = append(s.Points, p)
		}
		out = append(out, s)
		cfg.printf("%-14s (%s):", w.Name, w.Class)
		for _, p := range s.Points {
			cfg.printf("  %dk->%.3fs", p.Length/1000, seconds(p.Time))
		}
		cfg.printf("\n")
	}
	return out, nil
}

// Fig13Row is one workload's Figure 13 result: average reduction in slice
// size from save/restore pruning, for the two region lengths.
type Fig13Row struct {
	Workload       string
	ReductionSmall float64 // % reduction, cfg.RegionLen regions
	ReductionLarge float64 // % reduction, cfg.RegionLenLarge regions
	PairsVerified  int64
	Slices         int
}

// Figure13 reproduces the spurious-dependence-removal experiment: for the
// five SPEC OMP-like workloads, compute the configured number of slices
// (last reads spread across threads) per region with and without
// save/restore pruning (MaxSave=10), reporting the average slice-size
// reduction for both region lengths.
func Figure13(cfg Config) ([]Fig13Row, error) {
	cfg.printf("Figure 13: slice-size reduction from save/restore pruning (MaxSave=10)\n")
	cfg.printf("%-10s | %-10s | %-10s\n", "Workload",
		fmt.Sprintf("%dk region", cfg.RegionLen/1000), fmt.Sprintf("%dk region", cfg.RegionLenLarge/1000))
	var rows []Fig13Row
	for _, w := range workloads.SpecOMP() {
		row := Fig13Row{Workload: w.Name, Slices: cfg.Slices}
		for i, length := range []int64{cfg.RegionLen, cfg.RegionLenLarge} {
			red, pairs, err := pruneReduction(&cfg, w, length)
			if err != nil {
				return nil, fmt.Errorf("bench: fig13 %s @%d: %w", w.Name, length, err)
			}
			if i == 0 {
				row.ReductionSmall = red
			} else {
				row.ReductionLarge = red
			}
			row.PairsVerified = pairs
		}
		rows = append(rows, row)
		cfg.printf("%-10s | %9.2f%% | %9.2f%%\n", row.Workload, row.ReductionSmall, row.ReductionLarge)
	}
	var avgS, avgL float64
	for _, r := range rows {
		avgS += r.ReductionSmall
		avgL += r.ReductionLarge
	}
	if len(rows) > 0 {
		cfg.printf("%-10s | %9.2f%% | %9.2f%%\n", "average", avgS/float64(len(rows)), avgL/float64(len(rows)))
	}
	return rows, nil
}

// pruneReduction measures the average slice-size reduction over the
// configured criteria for one workload and region length.
func pruneReduction(cfg *Config, w *workloads.Workload, length int64) (float64, int64, error) {
	pb, _, err := logRegion(w, cfg, warmupSkip, length)
	if err != nil {
		return 0, 0, err
	}
	prog, err := w.Program()
	if err != nil {
		return 0, 0, err
	}
	sess := core.Open(prog, pb)
	tr, err := sess.Trace()
	if err != nil {
		return 0, 0, err
	}
	unpruned, err := slice.New(prog, tr, slice.Options{MaxSave: 10, ControlDeps: true})
	if err != nil {
		return 0, 0, err
	}
	pruned, err := slice.New(prog, tr, slice.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	crits := slice.LastReadsInRegion(tr, cfg.Slices)
	if len(crits) == 0 {
		return 0, 0, fmt.Errorf("no criteria found")
	}
	var totalRed float64
	var pairs int64
	for _, c := range crits {
		u, err := unpruned.Slice(c)
		if err != nil {
			return 0, 0, err
		}
		p, err := pruned.Slice(c)
		if err != nil {
			return 0, 0, err
		}
		if u.Stats.Members > 0 {
			totalRed += 100 * float64(u.Stats.Members-p.Stats.Members) / float64(u.Stats.Members)
		}
		pairs = p.Stats.VerifiedPairs
	}
	return totalRed / float64(len(crits)), pairs, nil
}

// Fig14Row is one workload's Figure 14 result.
type Fig14Row struct {
	Workload         string
	RegionInstrs     int64
	AvgSliceInstrs   int64
	PctInstrsKept    float64 // avg % of region instructions in slice pinballs
	RegionReplay     time.Duration
	AvgSliceReplay   time.Duration
	ReplaySpeedupPct float64 // how much faster slice replay is
}

// Figure14 reproduces the execution-slicing experiment: for each
// PARSEC-like workload, compute slices for the last reads, relog each
// into a slice pinball, and compare slice-pinball replay time and
// instruction count against the full region pinball (paper: on average
// 41% of instructions kept, replay 36% faster).
func Figure14(cfg Config) ([]Fig14Row, error) {
	cfg.printf("Figure 14: execution slicing — replay times and %%instructions, %dk regions\n", cfg.RegionLen/1000)
	cfg.printf("%-14s | %-10s | %-12s | %-12s | %-8s\n", "Workload", "%instrs", "region(s)", "slice(s)", "faster")
	var rows []Fig14Row
	for _, w := range workloads.Parsec() {
		row, err := execSliceRow(&cfg, w)
		if err != nil {
			return nil, fmt.Errorf("bench: fig14 %s: %w", w.Name, err)
		}
		rows = append(rows, *row)
		cfg.printf("%-14s | %9.1f%% | %12.3f | %12.3f | %6.1f%%\n",
			row.Workload, row.PctInstrsKept, seconds(row.RegionReplay), seconds(row.AvgSliceReplay), row.ReplaySpeedupPct)
	}
	var pct, spd float64
	for _, r := range rows {
		pct += r.PctInstrsKept
		spd += r.ReplaySpeedupPct
	}
	if len(rows) > 0 {
		cfg.printf("%-14s | %9.1f%% | %-12s | %-12s | %6.1f%%\n", "average",
			pct/float64(len(rows)), "", "", spd/float64(len(rows)))
	}
	return rows, nil
}

func execSliceRow(cfg *Config, w *workloads.Workload) (*Fig14Row, error) {
	pb, _, err := logRegion(w, cfg, warmupSkip, cfg.RegionLen)
	if err != nil {
		return nil, err
	}
	prog, err := w.Program()
	if err != nil {
		return nil, err
	}
	sess := core.Open(prog, pb)
	tr, err := sess.Trace()
	if err != nil {
		return nil, err
	}
	slicer, err := sess.Slicer()
	if err != nil {
		return nil, err
	}
	crits := slice.LastReadsInRegion(tr, cfg.Slices)
	if len(crits) == 0 {
		return nil, fmt.Errorf("no criteria")
	}

	regionReplay, err := replayTimed(prog, pb)
	if err != nil {
		return nil, err
	}

	row := &Fig14Row{Workload: w.Name, RegionInstrs: pb.RegionInstrs, RegionReplay: regionReplay}
	var sliceInstrs int64
	var sliceReplay time.Duration
	for _, c := range crits {
		sl, err := slicer.Slice(c)
		if err != nil {
			return nil, err
		}
		spb, _, err := sess.ExecutionSlice(sl)
		if err != nil {
			return nil, err
		}
		sliceInstrs += spb.RegionInstrs
		rt, err := replayTimed(prog, spb)
		if err != nil {
			return nil, err
		}
		sliceReplay += rt
	}
	n := int64(len(crits))
	row.AvgSliceInstrs = sliceInstrs / n
	row.AvgSliceReplay = sliceReplay / time.Duration(n)
	if pb.RegionInstrs > 0 {
		row.PctInstrsKept = 100 * float64(row.AvgSliceInstrs) / float64(pb.RegionInstrs)
	}
	if regionReplay > 0 {
		row.ReplaySpeedupPct = 100 * (1 - seconds(row.AvgSliceReplay)/seconds(regionReplay))
	}
	return row, nil
}

// OverheadSummary reproduces the Section 7 "slicing overhead" text
// numbers: dynamic-information tracing time, and average slice size and
// slicing time for the last-reads criteria.
type OverheadSummary struct {
	Workload       string
	RegionInstrs   int64
	TraceTime      time.Duration
	AvgSliceSize   int64
	AvgSliceTime   time.Duration
	SlicesComputed int
}

// SlicingOverhead measures tracing and slicing cost for each PARSEC-like
// workload at the configured region length.
func SlicingOverhead(cfg Config) ([]OverheadSummary, error) {
	cfg.printf("Slicing overhead (§7): tracing and slicing cost, %dk regions\n", cfg.RegionLen/1000)
	cfg.printf("%-14s | %-12s | %-10s | %-14s | %-10s\n", "Workload", "instrs", "trace(s)", "avg slice size", "avg slice(s)")
	var rows []OverheadSummary
	for _, w := range workloads.Parsec() {
		pb, _, err := logRegion(w, &cfg, warmupSkip, cfg.RegionLen)
		if err != nil {
			return nil, err
		}
		prog, err := w.Program()
		if err != nil {
			return nil, err
		}
		sess := core.Open(prog, pb)
		tr, traceTime, err := collectTrace(sess)
		if err != nil {
			return nil, err
		}
		slicer, err := sess.Slicer()
		if err != nil {
			return nil, err
		}
		crits := slice.LastReadsInRegion(tr, cfg.Slices)
		var size int64
		var dur time.Duration
		for _, c := range crits {
			start := time.Now()
			sl, err := slicer.Slice(c)
			if err != nil {
				return nil, err
			}
			dur += time.Since(start)
			size += int64(sl.Stats.Members)
		}
		row := OverheadSummary{
			Workload:       w.Name,
			RegionInstrs:   pb.RegionInstrs,
			TraceTime:      traceTime,
			SlicesComputed: len(crits),
		}
		if len(crits) > 0 {
			row.AvgSliceSize = size / int64(len(crits))
			row.AvgSliceTime = dur / time.Duration(len(crits))
		}
		rows = append(rows, row)
		cfg.printf("%-14s | %12d | %10.3f | %14d | %10.4f\n",
			row.Workload, row.RegionInstrs, seconds(row.TraceTime), row.AvgSliceSize, seconds(row.AvgSliceTime))
	}
	return rows, nil
}
