package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/workloads"
)

// SliceBenchIterations is the number of cyclic-debugging iterations the
// benchmark replays per workload: the paper's usage model is repeated
// replay-and-slice sessions over one recorded region, so engine cost is
// measured across a short session sequence, not a single query burst.
const SliceBenchIterations = 5

// SliceBenchRow is one workload's sequential-vs-parallel slicing
// measurement over a cyclic-debugging session sequence: engine build
// cost (the sequential slicer rebuilds its forward pass every session,
// the parallel engine is served from the process-lifetime cache after
// the first), per-query cost normalised to ns per traced instruction,
// shard/cache accounting, and the verified speedup.
type SliceBenchRow struct {
	Workload    string `json:"workload"`
	TraceLen    int    `json:"trace_len"`
	Criteria    int    `json:"criteria"`
	Iterations  int    `json:"iterations"`
	Workers     int    `json:"workers"`
	Shards      int    `json:"shards"`
	IndexDefs   int64  `json:"index_defs"`
	SliceInstrs int64  `json:"slice_instrs"` // total members across criteria, one iteration

	// Build and query seconds are totals across all iterations.
	SeqBuildSec float64 `json:"seq_build_sec"`
	ParBuildSec float64 `json:"par_build_sec"`
	SeqQuerySec float64 `json:"seq_query_sec"`
	ParQuerySec float64 `json:"par_query_sec"`

	// NsPerInstr normalises total engine cost (build + queries) over the
	// traced instructions, the paper's slicing-overhead unit.
	SeqNsPerInstr float64 `json:"seq_ns_per_instr"`
	ParNsPerInstr float64 `json:"par_ns_per_instr"`
	// Speedup is sequential total time over parallel total time.
	Speedup float64 `json:"speedup"`

	// CFGCacheHitRate is the shared CFG cache's hit rate over this run;
	// EngineCacheHit reports whether every iteration after the first was
	// served from the process-lifetime engine cache.
	CFGCacheHitRate float64 `json:"cfg_cache_hit_rate"`
	EngineCacheHit  bool    `json:"engine_cache_hit"`

	Identical bool `json:"identical"` // parallel slices matched sequential bit-for-bit
}

// SliceBenchReport is the JSON document written to BENCH_slice.json.
type SliceBenchReport struct {
	RegionLen int64           `json:"region_len"`
	Threads   int64           `json:"threads"`
	GoMaxProc int             `json:"gomaxprocs"`
	Rows      []SliceBenchRow `json:"rows"`
}

// sameSlice compares two slices field by field (LP counters excepted).
func sameSlice(a, b *slice.Slice) bool {
	if a.Criterion != b.Criterion || len(a.Members) != len(b.Members) || len(a.Deps) != len(b.Deps) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	for i := range a.Deps {
		if a.Deps[i] != b.Deps[i] {
			return false
		}
	}
	return a.Stats.PrunedBypasses == b.Stats.PrunedBypasses &&
		a.Stats.VerifiedPairs == b.Stats.VerifiedPairs &&
		a.Stats.CFGRefinements == b.Stats.CFGRefinements
}

// SliceBench measures the parallel sharded engine against the sequential
// slicer on region traces of cfg.RegionLenLarge instructions (the
// paper-scaled "1M instruction" configuration), slicing cfg.Slices
// criteria per iteration across SliceBenchIterations cyclic-debugging
// iterations. Each iteration models one replay-debug session over the
// recorded region: the sequential slicer re-runs its forward pass and
// builds fresh (exactly as core.Session does when a session opens),
// while the parallel engine is fetched through CachedParallel — a cold
// build on the first iteration, process-lifetime cache hits after.
// Every parallel slice is checked bit-identical to its sequential
// counterpart, so the benchmark doubles as a large-trace differential
// test.
func SliceBench(cfg Config, workers int) (*SliceBenchReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg.printf("Parallel slicing engine: %d workers vs sequential, %dk-instruction regions, %d debug iterations\n",
		workers, cfg.RegionLenLarge/1000, SliceBenchIterations)
	cfg.printf("%-14s | %-10s | %-22s | %-22s | %-8s | %-6s\n",
		"Workload", "instrs", "seq build+query (s)", "par build+query (s)", "speedup", "equal")

	report := &SliceBenchReport{
		RegionLen: cfg.RegionLenLarge,
		Threads:   cfg.Threads,
		GoMaxProc: runtime.GOMAXPROCS(0),
	}
	// Two workloads keep the experiment quick while covering distinct
	// dependence shapes (branch-heavy and array-heavy kernels).
	names := []string{"blackscholes", "swaptions"}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		pb, _, err := logRegion(w, &cfg, warmupSkip, cfg.RegionLenLarge)
		if err != nil {
			return nil, err
		}
		prog, err := w.Program()
		if err != nil {
			return nil, err
		}
		sess := core.Open(prog, pb)
		tr, _, err := collectTrace(sess)
		if err != nil {
			return nil, err
		}
		// The paper's criterion set: the last reads spread across threads.
		crits := slice.LastReadsInRegion(tr, cfg.Slices)

		// Sequential sessions: every iteration rebuilds the slicer (the
		// forward pass has no home to survive a session) and slices every
		// criterion. The first iteration's slices are kept as the
		// reference for the differential check.
		var seqBuild, seqQuery time.Duration
		seqSlices := make([]*slice.Slice, len(crits))
		for it := 0; it < SliceBenchIterations; it++ {
			start := time.Now()
			seqEng, err := slice.New(prog, tr, slice.DefaultOptions())
			if err != nil {
				return nil, err
			}
			seqBuild += time.Since(start)
			start = time.Now()
			for i, c := range crits {
				sl, err := seqEng.Slice(c)
				if err != nil {
					return nil, err
				}
				if it == 0 {
					seqSlices[i] = sl
				}
			}
			seqQuery += time.Since(start)
		}

		// Parallel sessions: every iteration fetches the engine through
		// the process-lifetime cache — the first builds, the rest hit —
		// and runs the same queries. Every slice of every iteration is
		// checked against the sequential reference.
		cfgBefore := cfg2Stats()
		popts := slice.ParallelOptions{Workers: workers, WindowSize: pinplay.WindowSize(pb)}
		var parBuild, parQuery time.Duration
		var parEng *slice.ParallelSlicer
		identical := true
		cacheHits := 0
		var members int64
		for it := 0; it < SliceBenchIterations; it++ {
			start := time.Now()
			eng, err := slice.CachedParallel(pb.ID(), prog, tr, slice.DefaultOptions(), popts)
			if err != nil {
				return nil, err
			}
			parBuild += time.Since(start)
			if it > 0 && eng == parEng {
				cacheHits++
			}
			parEng = eng
			start = time.Now()
			for i, c := range crits {
				sl, err := parEng.Slice(c)
				if err != nil {
					return nil, err
				}
				if it == 0 {
					members += int64(sl.Stats.Members)
				}
				if !sameSlice(seqSlices[i], sl) {
					identical = false
				}
			}
			parQuery += time.Since(start)
		}
		cfgAfter := cfg2Stats()

		seqTotal := seqBuild + seqQuery
		parTotal := parBuild + parQuery
		st := parEng.Stats()
		row := SliceBenchRow{
			Workload:    w.Name,
			TraceLen:    len(tr.Global),
			Criteria:    len(crits),
			Iterations:  SliceBenchIterations,
			Workers:     st.Workers,
			Shards:      st.Shards,
			IndexDefs:   st.IndexDefs,
			SliceInstrs: members,

			SeqBuildSec: seconds(seqBuild),
			ParBuildSec: seconds(parBuild),
			SeqQuerySec: seconds(seqQuery),
			ParQuerySec: seconds(parQuery),

			SeqNsPerInstr: float64(seqTotal.Nanoseconds()) / float64(max(1, len(tr.Global))),
			ParNsPerInstr: float64(parTotal.Nanoseconds()) / float64(max(1, len(tr.Global))),
			Speedup:       seconds(seqTotal) / seconds(parTotal),

			EngineCacheHit: cacheHits == SliceBenchIterations-1,
			Identical:      identical,
		}
		if lookups := (cfgAfter.Hits - cfgBefore.Hits) + (cfgAfter.Misses - cfgBefore.Misses); lookups > 0 {
			row.CFGCacheHitRate = float64(cfgAfter.Hits-cfgBefore.Hits) / float64(lookups)
		}
		report.Rows = append(report.Rows, row)
		cfg.printf("%-14s | %10d | %10.3f + %7.4f | %10.3f + %7.4f | %7.2fx | %v\n",
			row.Workload, row.TraceLen, row.SeqBuildSec, row.SeqQuerySec,
			row.ParBuildSec, row.ParQuerySec, row.Speedup, row.Identical)
	}
	return report, nil
}

// cfg2Stats snapshots the shared CFG cache counters.
func cfg2Stats() cfg.CacheStats { return cfg.GraphCacheStats() }

// WriteSliceBenchJSON writes the report to path (BENCH_slice.json by
// convention) in indented JSON.
func WriteSliceBenchJSON(report *SliceBenchReport, path string) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
