// Package bench regenerates every table and figure of the paper's
// evaluation (Section 7) on the Go substrate:
//
//	Table 1  — the three real data-race bugs and their reproduction
//	Table 2  — time/space overhead with buggy execution regions
//	Table 3  — time/space overhead with whole-program regions
//	Fig 11   — logging time vs region length (PARSEC-like, 4 threads)
//	Fig 12   — replay time vs region length
//	Fig 13   — slice-size reduction from save/restore pruning (SPEC OMP-like)
//	Fig 14   — execution-slice replay time and %instructions kept
//	§7 text  — slicing overhead (tracing time, slice size/time)
//
// Absolute times differ from the paper (interpreter vs Xeon hardware); the
// shapes — how cost scales with region length, who wins, by what factor —
// are the reproduction target. Region lengths are scaled by the Scale
// config: the paper's 10M..1B instruction sweeps map onto 10k..1M by
// default so the full suite runs in minutes; raise Scale on the CLI for
// longer sweeps.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/maple"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/tracer"
	"repro/internal/workloads"
)

// Config parameterises the experiment harness.
type Config struct {
	Out io.Writer

	// Threads is the worker thread count (paper: 4-threaded runs).
	Threads int64
	// SweepLengths are the main-thread region lengths for Figures 11/12
	// (the paper's 10M..1B sweep, scaled).
	SweepLengths []int64
	// RegionLen is the Figures 13/14 "1 million instructions (main
	// thread)" region length, scaled.
	RegionLen int64
	// RegionLenLarge is Figure 13's second configuration ("10 million"),
	// scaled.
	RegionLenLarge int64
	// Slices is the number of slicing criteria per region (paper: 10).
	Slices int
	// Seed drives the emulated scheduling nondeterminism.
	Seed int64
	// MaxSeedSearch bounds the failing-seed search for the bug studies.
	MaxSeedSearch int64
}

// DefaultConfig returns the configuration used by `drbench` and the bench
// tests: the paper's parameters with instruction counts scaled 1000x down
// (interpreter vs native hardware).
func DefaultConfig(out io.Writer) Config {
	return Config{
		Out:            out,
		Threads:        4,
		SweepLengths:   []int64{10_000, 30_000, 100_000, 300_000, 1_000_000},
		RegionLen:      100_000,
		RegionLenLarge: 1_000_000,
		Slices:         10,
		Seed:           1,
		MaxSeedSearch:  200,
	}
}

func (c *Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// hugeSize is the work-size input for open-ended region sweeps: the
// program would run (effectively) forever, and the logger cuts the region
// at the requested length.
const hugeSize int64 = 1 << 40

// seconds formats a duration the way the paper's tables do.
func seconds(d time.Duration) float64 { return d.Seconds() }

// mb formats a byte count in MB.
func mb(n int64) float64 { return float64(n) / (1 << 20) }

// logRegion logs one workload region and returns the pinball plus the
// logging wall time.
func logRegion(w *workloads.Workload, cfg *Config, skip, length int64) (*pinball.Pinball, time.Duration, error) {
	prog, err := w.Program()
	if err != nil {
		return nil, 0, err
	}
	lc := pinplay.LogConfig{
		Seed:     cfg.Seed,
		Input:    w.Input(cfg.Threads, hugeSize),
		RandSeed: cfg.Seed,
	}
	start := time.Now()
	pb, err := pinplay.Log(prog, lc, pinplay.RegionSpec{SkipMain: skip, LengthMain: length})
	return pb, time.Since(start), err
}

// replayTimed replays a pinball and returns the wall time.
func replayTimed(prog *isa.Program, pb *pinball.Pinball) (time.Duration, error) {
	start := time.Now()
	_, err := pinplay.Replay(prog, pb, nil)
	return time.Since(start), err
}

// collectTrace replays with the tracing pintool and returns the trace and
// the tracing wall time.
func collectTrace(sess *core.Session) (*tracer.Trace, time.Duration, error) {
	start := time.Now()
	tr, err := sess.Trace()
	return tr, time.Since(start), err
}

// exposeBug finds a failing execution of a bug workload: seed search
// first, Maple's active scheduler as fallback. It returns the session and
// the seed (or -1 when Maple exposed it).
func exposeBug(w *workloads.Workload, cfg *Config, size int64) (*core.Session, int64, error) {
	prog, err := w.Program()
	if err != nil {
		return nil, 0, err
	}
	input := w.Input(w.DefaultThreads, size)
	for seed := cfg.Seed; seed < cfg.Seed+cfg.MaxSeedSearch; seed++ {
		lc := pinplay.LogConfig{Seed: seed, MeanQuantum: 20, Input: input, MaxSteps: 100_000_000}
		s, err := core.RecordFailure(prog, lc, 0)
		if err == nil {
			return s, seed, nil
		}
	}
	res, err := maple.FindBug(nil, prog, pinplay.LogConfig{Seed: cfg.Seed, MeanQuantum: 20, Input: input, MaxSteps: 100_000_000}, maple.Options{})
	if err != nil {
		return nil, 0, err
	}
	if !res.Exposed {
		return nil, 0, fmt.Errorf("bench: bug %s not exposed", w.Name)
	}
	return core.Open(prog, res.Pinball), -1, nil
}

// bugSizes gives each Table 1/2/3 bug workload its input size, chosen so
// the whole-program regions (Table 3) are an order of magnitude larger
// than the buggy regions (Table 2), as in the paper.
var bugSizes = map[string]int64{
	"pbzip2":  400,
	"aget":    250,
	"mozilla": 250,
}
