package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/workloads"
)

// DurBenchIterations is how often each durability variant is timed; the
// minimum is reported, the standard wall-clock noise filter.
const DurBenchIterations = 3

// DurBenchRow is one workload's durability-overhead measurement: the
// cost of crash-safe persistence relative to its non-crash-safe
// baseline, for both write paths the logger has. The one-shot atomic
// Save (encode + temp + fsync + rename) is measured against a plain
// encode-and-write of the same pinball; journaled recording (windows
// sealed to disk during the run, so a crash mid-record leaves a
// salvageable file) is measured against record-then-plain-save, the
// cheapest way to get the same pinball onto disk without crash safety.
type DurBenchRow struct {
	Workload     string `json:"workload"`
	RegionInstrs int64  `json:"region_instrs"`
	PinballBytes int64  `json:"pinball_bytes"`
	JournalBytes int64  `json:"journal_bytes"`

	// Recording-to-durable-pinball wall time: plain log + plain save
	// (baseline), journaled log with fsync per window (crash-safe
	// default), journaled log without fsync.
	LogSaveSec          float64 `json:"log_save_sec"`
	LogJournalSec       float64 `json:"log_journal_sec"`
	LogJournalNoSyncSec float64 `json:"log_journal_nosync_sec"`
	// JournalOverheadPct is (journaled - baseline) / baseline, the
	// headline "what does crash-safe recording cost" number.
	JournalOverheadPct       float64 `json:"journal_overhead_pct"`
	JournalNoSyncOverheadPct float64 `json:"journal_nosync_overhead_pct"`

	// Save wall time, encoding included: plain encode+write vs the
	// atomic temp+fsync+rename path.
	SavePlainSec      float64 `json:"save_plain_sec"`
	SaveAtomicSec     float64 `json:"save_atomic_sec"`
	AtomicOverheadPct float64 `json:"atomic_overhead_pct"`

	// JournalIdentical reports whether the journal on disk decoded to the
	// exact recording (same content hash) — the correctness side of the
	// overhead trade.
	JournalIdentical bool `json:"journal_identical"`
}

// DurBenchReport is the JSON document written to BENCH_durability.json.
type DurBenchReport struct {
	RegionLen int64         `json:"region_len"`
	Threads   int64         `json:"threads"`
	Rows      []DurBenchRow `json:"rows"`
}

// timeBest runs fn DurBenchIterations times and returns the fastest run.
func timeBest(fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < DurBenchIterations; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func pct(over, base time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (float64(over) - float64(base)) / float64(base)
}

// DurBench measures what the crash-safety layers cost on real recording
// workloads: journaled logging vs plain logging, and atomic Save vs a
// plain write. The acceptance target is single-digit percent overhead
// for the journal's default (synced) configuration.
func DurBench(cfg Config) (*DurBenchReport, error) {
	cfg.printf("Durability overhead: journaled recording and atomic save, %dk-instruction regions\n",
		cfg.RegionLenLarge/1000)
	cfg.printf("%-14s | %-10s | %-30s | %-26s | %-5s\n",
		"Workload", "instrs", "log+save plain/journal (s)", "save plain/atomic (s)", "equal")

	report := &DurBenchReport{RegionLen: cfg.RegionLenLarge, Threads: cfg.Threads}
	dir, err := os.MkdirTemp("", "durbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	for _, name := range []string{"blackscholes", "swaptions"} {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, err := w.Program()
		if err != nil {
			return nil, err
		}
		lc := pinplay.LogConfig{
			Seed:            cfg.Seed,
			Input:           w.Input(cfg.Threads, hugeSize),
			RandSeed:        cfg.Seed,
			CheckpointEvery: 1024,
		}
		spec := pinplay.RegionSpec{LengthMain: cfg.RegionLenLarge}
		row := DurBenchRow{Workload: name}

		// Baseline: record with no journal, then persist with a plain
		// (encode + unsynced write) save — same durable artifact, no
		// crash safety at any point.
		pb, err := pinplay.Log(prog, lc, spec)
		if err != nil {
			return nil, err
		}
		row.RegionInstrs = pb.RegionInstrs
		plainPath := filepath.Join(dir, name+".plain")
		logSave, err := timeBest(func() error {
			p, err := pinplay.Log(prog, lc, spec)
			if err != nil {
				return err
			}
			data, err := p.EncodeBytes()
			if err != nil {
				return err
			}
			return os.WriteFile(plainPath, data, 0o644)
		})
		if err != nil {
			return nil, err
		}

		// Journaled recording, synced (the crash-safe default) and unsynced.
		journalPath := filepath.Join(dir, name+".journal")
		jlc := lc
		jlc.JournalPath = journalPath
		journalLog, err := timeBest(func() error {
			_, err := pinplay.Log(prog, jlc, spec)
			return err
		})
		if err != nil {
			return nil, err
		}
		jlc.JournalNoSync = true
		nosyncLog, err := timeBest(func() error {
			_, err := pinplay.Log(prog, jlc, spec)
			return err
		})
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(journalPath); err == nil {
			row.JournalBytes = fi.Size()
		}
		if jpb, err := pinball.Load(journalPath); err == nil {
			row.JournalIdentical = jpb.ID() == pb.ID()
		}

		// One-shot persistence: plain encode+write vs atomic Save.
		if data, err := pb.EncodeBytes(); err == nil {
			row.PinballBytes = int64(len(data))
		}
		savePlain, err := timeBest(func() error {
			data, err := pb.EncodeBytes()
			if err != nil {
				return err
			}
			return os.WriteFile(plainPath, data, 0o644)
		})
		if err != nil {
			return nil, err
		}
		atomicPath := filepath.Join(dir, name+".pinball")
		saveAtomic, err := timeBest(func() error { return pb.Save(atomicPath) })
		if err != nil {
			return nil, err
		}

		row.LogSaveSec = seconds(logSave)
		row.LogJournalSec = seconds(journalLog)
		row.LogJournalNoSyncSec = seconds(nosyncLog)
		row.JournalOverheadPct = pct(journalLog, logSave)
		row.JournalNoSyncOverheadPct = pct(nosyncLog, logSave)
		row.SavePlainSec = seconds(savePlain)
		row.SaveAtomicSec = seconds(saveAtomic)
		row.AtomicOverheadPct = pct(saveAtomic, savePlain)
		report.Rows = append(report.Rows, row)

		cfg.printf("%-14s | %10d | %8.3f / %8.3f (%+.1f%%) | %.4f / %.4f (%+.1f%%) | %v\n",
			name, row.RegionInstrs, row.LogSaveSec, row.LogJournalSec, row.JournalOverheadPct,
			row.SavePlainSec, row.SaveAtomicSec, row.AtomicOverheadPct, row.JournalIdentical)
	}
	return report, nil
}

// WriteDurBenchJSON writes the report to path.
func WriteDurBenchJSON(report *DurBenchReport, path string) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
