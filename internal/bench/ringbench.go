package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/pinplay"
	"repro/internal/workloads"
)

// RingBenchRow is one (workload, budget) flight-recorder measurement:
// what bounding the journal costs at record time, how much smaller the
// capture gets, and what gap-bridging costs at replay time — all
// relative to the same workload's full (unbounded) recording.
type RingBenchRow struct {
	Workload     string `json:"workload"`
	RegionInstrs int64  `json:"region_instrs"`

	// Capture sizes: the full recording vs the ring recording under
	// RingBudget bytes of retained window content.
	FullBytes  int64 `json:"full_bytes"`
	RingBudget int64 `json:"ring_budget"`
	RingBytes  int64 `json:"ring_bytes"`
	// Eviction facts: windows dropped and instructions that survive
	// only as spans + divergence hashes.
	Evicted   int   `json:"evicted"`
	GapInstrs int64 `json:"gap_instrs"`

	// Record wall time: full recording vs ring recording.
	LogFullSec      float64 `json:"log_full_sec"`
	LogRingSec      float64 `json:"log_ring_sec"`
	RingOverheadPct float64 `json:"ring_overhead_pct"`

	// Replay wall time: streaming replay of the full pinball vs the
	// gap-bridging replay of the ring pinball (re-execution + windowed
	// hash verification for every evicted window).
	ReplayFullSec     float64 `json:"replay_full_sec"`
	ReplayBridgeSec   float64 `json:"replay_bridge_sec"`
	BridgeOverheadPct float64 `json:"bridge_overhead_pct"`

	// BridgeExact is the correctness side of the trade: every evicted
	// window's re-derived hash matched the retained one.
	BridgeExact bool `json:"bridge_exact"`
}

// RingBenchReport is the JSON document written to BENCH_ring.json.
type RingBenchReport struct {
	RegionLen int64          `json:"region_len"`
	Threads   int64          `json:"threads"`
	Rows      []RingBenchRow `json:"rows"`
}

// ringBudgetDivisors are the ring budgets measured, as fractions of the
// workload's full pinball size: a mild bound and an aggressive one.
var ringBudgetDivisors = []int64{4, 16}

// RingBench measures flight-recorder mode against the unbounded
// journal baseline: recording overhead (sealing + evicting windows),
// capture-size reduction, and the gap-bridging replay cost of earning
// the exact-bridge verdict back.
func RingBench(cfg Config) (*RingBenchReport, error) {
	cfg.printf("Flight-recorder overhead: ring recording and gap-bridging replay, %dk-instruction regions\n",
		cfg.RegionLenLarge/1000)
	cfg.printf("%-14s | %-10s | %-22s | %-26s | %-26s | %-5s\n",
		"Workload", "instrs", "bytes full/ring", "log full/ring (s)", "replay full/bridge (s)", "exact")

	report := &RingBenchReport{RegionLen: cfg.RegionLenLarge, Threads: cfg.Threads}
	for _, name := range []string{"blackscholes", "swaptions"} {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, err := w.Program()
		if err != nil {
			return nil, err
		}
		// Cadences scale with the region so the ring has enough windows
		// to evict at any benchmark size.
		lc := pinplay.LogConfig{
			Seed:            cfg.Seed,
			Input:           w.Input(cfg.Threads, hugeSize),
			RandSeed:        cfg.Seed,
			CheckpointEvery: max(4096, cfg.RegionLenLarge/16),
			JournalEvery:    max(1024, cfg.RegionLenLarge/64),
		}
		spec := pinplay.RegionSpec{LengthMain: cfg.RegionLenLarge}

		// Full-recording baseline: one pinball for sizing and replay,
		// then timed re-recordings.
		fullPB, err := pinplay.Log(prog, lc, spec)
		if err != nil {
			return nil, err
		}
		fullData, err := fullPB.EncodeBytes()
		if err != nil {
			return nil, err
		}
		logFull, err := timeBest(func() error {
			_, err := pinplay.Log(prog, lc, spec)
			return err
		})
		if err != nil {
			return nil, err
		}
		replayFull, err := timeBest(func() error {
			_, _, err := pinplay.ReplayWith(prog, fullPB, pinplay.ReplayOptions{})
			return err
		})
		if err != nil {
			return nil, err
		}

		for _, div := range ringBudgetDivisors {
			row := RingBenchRow{
				Workload:      name,
				RegionInstrs:  fullPB.RegionInstrs,
				FullBytes:     int64(len(fullData)),
				RingBudget:    int64(len(fullData)) / div,
				LogFullSec:    seconds(logFull),
				ReplayFullSec: seconds(replayFull),
			}
			rlc := lc
			rlc.RingBytes = row.RingBudget
			ringPB, err := pinplay.Log(prog, rlc, spec)
			if err != nil {
				return nil, err
			}
			if !ringPB.Gapped() {
				return nil, fmt.Errorf("ringbench: %s budget %d evicted nothing (region %d instrs)",
					name, row.RingBudget, ringPB.RegionInstrs)
			}
			ringData, err := ringPB.EncodeBytes()
			if err != nil {
				return nil, err
			}
			row.RingBytes = int64(len(ringData))
			row.Evicted = len(ringPB.Evictions)
			row.GapInstrs = ringPB.GapInstrs()

			logRing, err := timeBest(func() error {
				_, err := pinplay.Log(prog, rlc, spec)
				return err
			})
			if err != nil {
				return nil, err
			}
			row.BridgeExact = true
			replayBridge, err := timeBest(func() error {
				_, rep, err := pinplay.ReplayWith(prog, ringPB, pinplay.ReplayOptions{})
				if err != nil {
					return err
				}
				if rep.Bridge == nil || rep.Bridge.Exact != row.Evicted {
					row.BridgeExact = false
				}
				return nil
			})
			if err != nil {
				return nil, err
			}

			row.LogRingSec = seconds(logRing)
			row.RingOverheadPct = pct(logRing, logFull)
			row.ReplayBridgeSec = seconds(replayBridge)
			row.BridgeOverheadPct = pct(replayBridge, replayFull)
			report.Rows = append(report.Rows, row)

			cfg.printf("%-14s | %10d | %8d / %8d | %8.3f / %8.3f (%+.1f%%) | %8.3f / %8.3f (%+.1f%%) | %v\n",
				name, row.RegionInstrs, row.FullBytes, row.RingBytes,
				row.LogFullSec, row.LogRingSec, row.RingOverheadPct,
				row.ReplayFullSec, row.ReplayBridgeSec, row.BridgeOverheadPct, row.BridgeExact)
		}
	}
	return report, nil
}

// WriteRingBenchJSON writes the report to path.
func WriteRingBenchJSON(report *RingBenchReport, path string) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
