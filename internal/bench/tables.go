package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pinplay"
	"repro/internal/workloads"
)

// Table1Row is one case study of Table 1.
type Table1Row struct {
	Program     string
	Description string
	Exposed     bool
	Seed        int64 // -1 when Maple's active scheduler exposed it
	FailurePC   int64
}

// Table1 reproduces Table 1: the three real data-race bugs, each exposed
// and captured in a pinball.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg.printf("Table 1: data race bugs used in the experiments\n")
	cfg.printf("%-8s | %-6s | %s\n", "Program", "Type", "Bug Description")
	var rows []Table1Row
	for _, w := range []string{"pbzip2", "aget", "mozilla"} {
		wl, err := workloads.ByName(w)
		if err != nil {
			return nil, err
		}
		sess, seed, err := exposeBug(wl, &cfg, bugSizes[w])
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Program:     w,
			Description: wl.Description,
			Exposed:     true,
			Seed:        seed,
			FailurePC:   sess.Pinball.Failure.PC,
		}
		rows = append(rows, row)
		how := fmt.Sprintf("seed %d", seed)
		if seed < 0 {
			how = "maple active scheduler"
		}
		cfg.printf("%-8s | %-6s | %s\n", w, "Real", wl.Description)
		cfg.printf("%-8s   exposed via %s; failure at pc %d, reproduced by replay\n", "", how, row.FailurePC)
	}
	return rows, nil
}

// OverheadRow is one row of Table 2 or Table 3.
type OverheadRow struct {
	Program          string
	ExecutedInstrs   int64
	SliceInstrs      int64
	SlicePct         float64
	LoggingTime      time.Duration
	SpaceBytes       int64
	ReplayTime       time.Duration
	SlicingTime      time.Duration
	SliceReplayTime  time.Duration
	TraceCollectTime time.Duration
}

func (r OverheadRow) format() string {
	return fmt.Sprintf("%-8s | %12d | %9d (%5.2f%%) | %9.3f | %9.3f | %9.3f | %9.3f",
		r.Program, r.ExecutedInstrs, r.SliceInstrs, r.SlicePct,
		seconds(r.LoggingTime), mb(r.SpaceBytes), seconds(r.ReplayTime), seconds(r.SlicingTime))
}

const overheadHeader = "Program  | #executed    | #instr in slice pb  | Log(s)    | Space(MB) | Replay(s) | Slice(s)"

// bugOverhead measures one bug under either a whole-program region
// (skip 0) or a buggy region that starts rootWindow main-thread
// instructions before the failure.
func bugOverhead(name string, cfg *Config, rootWindow int64) (*OverheadRow, error) {
	wl, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	// Find the failing schedule on the whole execution first.
	whole, seed, err := exposeBug(wl, cfg, bugSizes[name])
	if err != nil {
		return nil, err
	}
	prog := whole.Prog

	sess := whole
	var logTime time.Duration
	if rootWindow > 0 && seed >= 0 {
		// Buggy region: re-log the same (deterministic, same-seed)
		// execution, fast-forwarding to rootWindow main-thread
		// instructions before the failure — a region containing both the
		// root cause and the symptom.
		skip := whole.Pinball.MainInstrs - rootWindow
		if skip < 0 {
			skip = 0
		}
		lc := pinplay.LogConfig{Seed: seed, MeanQuantum: 20, Input: wl.Input(wl.DefaultThreads, bugSizes[name]), MaxSteps: 100_000_000}
		start := time.Now()
		pb, err := pinplay.LogUntilFailure(prog, lc, skip)
		logTime = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: %s region relog: %w", name, err)
		}
		sess = core.Open(prog, pb)
	} else {
		// Whole execution: time a fresh identical logging run.
		lc := pinplay.LogConfig{Seed: seed, MeanQuantum: 20, Input: wl.Input(wl.DefaultThreads, bugSizes[name]), MaxSteps: 100_000_000}
		if seed >= 0 {
			start := time.Now()
			if _, err := pinplay.LogUntilFailure(prog, lc, 0); err != nil {
				return nil, err
			}
			logTime = time.Since(start)
		}
	}

	row := &OverheadRow{Program: name, ExecutedInstrs: sess.Pinball.RegionInstrs}
	row.LoggingTime = logTime
	if sz, err := sess.Pinball.EncodedSize(); err == nil {
		row.SpaceBytes = sz
	}
	rt, err := replayTimed(prog, sess.Pinball)
	if err != nil {
		return nil, fmt.Errorf("bench: %s replay: %w", name, err)
	}
	row.ReplayTime = rt

	_, traceTime, err := collectTrace(sess)
	if err != nil {
		return nil, fmt.Errorf("bench: %s trace: %w", name, err)
	}
	row.TraceCollectTime = traceTime

	start := time.Now()
	sl, err := sess.SliceAtFailure()
	if err != nil {
		return nil, fmt.Errorf("bench: %s slice: %w", name, err)
	}
	row.SlicingTime = time.Since(start)

	spb, _, err := sess.ExecutionSlice(sl)
	if err != nil {
		return nil, fmt.Errorf("bench: %s exec slice: %w", name, err)
	}
	row.SliceInstrs = spb.RegionInstrs
	if row.ExecutedInstrs > 0 {
		row.SlicePct = 100 * float64(row.SliceInstrs) / float64(row.ExecutedInstrs)
	}
	if srt, err := replayTimed(prog, spb); err == nil {
		row.SliceReplayTime = srt
	}
	return row, nil
}

// Table2 reproduces Table 2: overheads with buggy execution regions
// (root cause to failure point).
func Table2(cfg Config) ([]OverheadRow, error) {
	cfg.printf("Table 2: time and space overhead, buggy execution region\n%s\n", overheadHeader)
	var rows []OverheadRow
	for _, name := range []string{"pbzip2", "aget", "mozilla"} {
		r, err := bugOverhead(name, &cfg, 2000)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *r)
		cfg.printf("%s\n", r.format())
	}
	return rows, nil
}

// Table3 reproduces Table 3: overheads with whole-program execution
// regions (program start to failure point).
func Table3(cfg Config) ([]OverheadRow, error) {
	cfg.printf("Table 3: time and space overhead, whole program execution region\n%s\n", overheadHeader)
	var rows []OverheadRow
	for _, name := range []string{"pbzip2", "aget", "mozilla"} {
		r, err := bugOverhead(name, &cfg, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *r)
		cfg.printf("%s\n", r.format())
	}
	return rows, nil
}
