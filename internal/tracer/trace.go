// Package tracer implements the dynamic-information collection the slicer
// needs (paper Section 3): per-thread local execution traces with the
// memory addresses and registers defined and used by each instruction,
// the construction of the combined global trace honouring shared-memory
// access order, and the Limited Preprocessing block summaries of Zhang et
// al. that let the backward traversal skip irrelevant trace blocks.
package tracer

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Entry is one executed instruction in a local trace. It is exactly the
// VM's instruction event, retained.
type Entry = vm.InstrEvent

// Ref identifies one entry in a Trace: thread id and position within that
// thread's local trace (position, not the per-thread dynamic index — a
// local trace starts at the region entry, where threads may already have
// executed instructions).
type Ref struct {
	Tid int32
	Pos int32
}

// Trace is the dynamic information collected from one replay of a region:
// per-thread local traces, the shared-memory order edges, and — after
// BuildGlobal — the combined global trace.
type Trace struct {
	Locals   map[int][]Entry
	Edges    []vm.OrderEdge
	FirstIdx map[int]int64 // per-thread Idx of the first traced entry

	// Global is the combined, fully ordered trace (filled by BuildGlobal).
	Global []Ref
	// globalPosArr maps tid -> local position -> global position.
	globalPosArr map[int][]int32

	// SpawnEvent maps a thread id to the ref of the SPAWN instruction
	// that created it, when that spawn happened inside the traced region.
	SpawnEvent map[int]Ref

	// Steps maps tid -> local position -> 1-based global region step,
	// parallel to Locals. Gaps is the flight-recorder gap overlay: spans
	// of the region whose events were re-derived by bridging rather than
	// replayed from recorded streams (see provenance.go). Both are empty
	// for ordinary full-trace replays.
	Steps map[int][]int64
	Gaps  []GapSpan
}

// Entry returns the trace entry for a ref.
func (t *Trace) Entry(r Ref) *Entry { return &t.Locals[int(r.Tid)][r.Pos] }

// RefOf translates a (tid, per-thread Idx) pair into a Ref, or false when
// the index is outside the traced region.
func (t *Trace) RefOf(tid int, idx int64) (Ref, bool) {
	first, ok := t.FirstIdx[tid]
	if !ok {
		return Ref{}, false
	}
	pos := idx - first
	if pos < 0 || pos >= int64(len(t.Locals[tid])) {
		return Ref{}, false
	}
	return Ref{Tid: int32(tid), Pos: int32(pos)}, true
}

// GlobalPosOf returns the position of ref in the global trace; BuildGlobal
// must have run.
func (t *Trace) GlobalPosOf(r Ref) (int, bool) {
	arr, ok := t.globalPosArr[int(r.Tid)]
	if !ok || int(r.Pos) >= len(arr) {
		return 0, false
	}
	return int(arr[r.Pos]), true
}

// Len returns the total number of traced instructions.
func (t *Trace) Len() int {
	n := 0
	for _, l := range t.Locals {
		n += len(l)
	}
	return n
}

// Collector is the analysis pintool that gathers the trace during a
// replay: attach it as the machine's tracer.
type Collector struct {
	vm.NopTracer
	trace *Trace
	m     *vm.Machine
	step  int64 // global region steps observed so far
}

// NewCollector creates a collector. The machine reference (optional) lets
// the collector attribute SPAWN instructions to the thread ids they
// create, which the execution-slice builder uses to keep thread creation
// inside slices.
func NewCollector(m *vm.Machine) *Collector {
	return &Collector{
		trace: &Trace{
			Locals:     make(map[int][]Entry),
			FirstIdx:   make(map[int]int64),
			SpawnEvent: make(map[int]Ref),
			Steps:      make(map[int][]int64),
		},
		m: m,
	}
}

// Trace returns the collected trace.
func (c *Collector) Trace() *Trace { return c.trace }

// OnInstr implements vm.Tracer.
func (c *Collector) OnInstr(ev *Entry) {
	l, ok := c.trace.Locals[ev.Tid]
	if !ok {
		c.trace.FirstIdx[ev.Tid] = ev.Idx
	}
	c.trace.Locals[ev.Tid] = append(l, *ev)
	c.step++
	c.trace.Steps[ev.Tid] = append(c.trace.Steps[ev.Tid], c.step)
	if ev.Instr.Op == isa.SPAWN {
		c.trace.SpawnEvent[int(ev.Aux)] = Ref{Tid: int32(ev.Tid), Pos: int32(len(c.trace.Locals[ev.Tid]) - 1)}
	}
}

// OnOrderEdge implements vm.Tracer.
func (c *Collector) OnOrderEdge(e vm.OrderEdge) {
	c.trace.Edges = append(c.trace.Edges, e)
}

// Validate checks internal consistency: entries per thread have
// contiguous, increasing Idx values.
func (t *Trace) Validate() error {
	for tid, l := range t.Locals {
		for i := range l {
			if want := t.FirstIdx[tid] + int64(i); l[i].Idx != want {
				return fmt.Errorf("tracer: thread %d entry %d has idx %d, want %d", tid, i, l[i].Idx, want)
			}
		}
	}
	return nil
}
