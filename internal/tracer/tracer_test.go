package tracer_test

import (
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/tracer"
	"repro/internal/vm"
)

func collect(t *testing.T, src string, seed int64) *tracer.Trace {
	t.Helper()
	prog, err := cc.CompileSource("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(seed, 17), MaxSteps: 5_000_000})
	col := tracer.NewCollector(m)
	m.SetTracer(col)
	m.Run()
	tr := col.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

const twoThreadSrc = `
int shared;
int mtx;
int worker(int n) {
	int i;
	for (i = 0; i < 20; i++) {
		lock(&mtx);
		shared = shared + 1;
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t = spawn(worker, 0);
	worker(0);
	join(t);
	write(shared);
	return 0;
}`

func TestRefRoundTrip(t *testing.T) {
	tr := collect(t, twoThreadSrc, 3)
	for tid, l := range tr.Locals {
		for pos := range l {
			ref, ok := tr.RefOf(tid, l[pos].Idx)
			if !ok {
				t.Fatalf("RefOf failed for tid %d pos %d", tid, pos)
			}
			if int(ref.Pos) != pos || int(ref.Tid) != tid {
				t.Fatalf("RefOf(%d, %d) = %+v", tid, l[pos].Idx, ref)
			}
			if tr.Entry(ref) != &l[pos] {
				t.Fatal("Entry does not return the same element")
			}
		}
	}
	if _, ok := tr.RefOf(99, 0); ok {
		t.Error("RefOf accepted unknown thread")
	}
	if _, ok := tr.RefOf(0, -5); ok {
		t.Error("RefOf accepted negative index")
	}
}

func TestGlobalPosBijection(t *testing.T) {
	tr := collect(t, twoThreadSrc, 5)
	if err := tr.BuildGlobal(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Global) != tr.Len() {
		t.Fatalf("global has %d entries, locals %d", len(tr.Global), tr.Len())
	}
	seen := map[tracer.Ref]bool{}
	for g, ref := range tr.Global {
		if seen[ref] {
			t.Fatalf("ref %+v appears twice", ref)
		}
		seen[ref] = true
		gp, ok := tr.GlobalPosOf(ref)
		if !ok || gp != g {
			t.Fatalf("GlobalPosOf(%+v) = %d,%v; want %d", ref, gp, ok, g)
		}
	}
}

func TestLocLaws(t *testing.T) {
	f := func(tid uint8, reg uint8, addr uint32) bool {
		r := isa.Reg(reg % isa.NumRegs)
		rl := tracer.RegLoc(int(tid), r)
		ml := tracer.MemLoc(int64(addr))
		if !rl.IsReg() || ml.IsReg() {
			return false
		}
		// Distinct threads' registers are distinct locations.
		if tid != 0 && tracer.RegLoc(0, r) == rl {
			return false
		}
		return rl != ml
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefsUsesExcludeSPAndRZ(t *testing.T) {
	var buf [8]tracer.Loc
	push := tracer.Entry{Tid: 1, Instr: isa.Instr{Op: isa.PUSH, Rs1: isa.R3}, EffAddr: 100, MemIsWrite: true}
	defs := tracer.Defs(&push, buf[:0])
	if len(defs) != 1 || defs[0] != tracer.MemLoc(100) {
		t.Errorf("PUSH defs = %v, want just the stack slot", defs)
	}
	uses := tracer.Uses(&push, buf[:0])
	if len(uses) != 1 || uses[0] != tracer.RegLoc(1, isa.R3) {
		t.Errorf("PUSH uses = %v, want just r3", uses)
	}
	lockEv := tracer.Entry{Tid: 0, Instr: isa.Instr{Op: isa.LOCK, Rs1: isa.R1}, EffAddr: 5, MemIsWrite: true, MemAlsoRead: true}
	uses = tracer.Uses(&lockEv, buf[:0])
	found := false
	for _, u := range uses {
		if u == tracer.MemLoc(5) {
			found = true
		}
	}
	if !found {
		t.Errorf("LOCK uses %v must include its cell", uses)
	}
}

func TestLPIndexSummaries(t *testing.T) {
	tr := collect(t, twoThreadSrc, 7)
	if err := tr.BuildGlobal(); err != nil {
		t.Fatal(err)
	}
	idx := tracer.BuildLPIndex(tr, 64)
	// Every entry's defs must appear in its block summary.
	var buf [8]tracer.Loc
	for g, ref := range tr.Global {
		b := idx.BlockOf(g)
		for _, l := range tracer.Defs(tr.Entry(ref), buf[:0]) {
			w := map[tracer.Loc]struct{}{l: {}}
			if !idx.MayDefine(b, w) {
				t.Fatalf("block %d summary missing def %v of global %d", b, l, g)
			}
		}
	}
	// A location never defined must not match any block.
	never := map[tracer.Loc]struct{}{tracer.MemLoc(1 << 40): {}}
	for b := 0; b*64 < len(tr.Global); b++ {
		if idx.MayDefine(b, never) {
			t.Fatalf("block %d claims to define an untouched location", b)
		}
	}
}

func TestSpawnEventRecorded(t *testing.T) {
	tr := collect(t, twoThreadSrc, 9)
	if len(tr.SpawnEvent) != 1 {
		t.Fatalf("spawn events = %d, want 1", len(tr.SpawnEvent))
	}
	sp, ok := tr.SpawnEvent[1]
	if !ok {
		t.Fatal("no spawn event for thread 1")
	}
	if tr.Entry(sp).Instr.Op != isa.SPAWN {
		t.Error("recorded spawn ref is not a SPAWN instruction")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := collect(t, twoThreadSrc, 11)
	tr.Locals[0][3].Idx = 999999
	if err := tr.Validate(); err == nil {
		t.Error("corrupted trace passed validation")
	}
}

func TestGlobalTraceCycleDetection(t *testing.T) {
	// Build a trace with a contradictory order edge; BuildGlobal must
	// fail rather than loop.
	tr := collect(t, `int main() { int x = 1; write(x); return 0; }`, 1)
	tr.Edges = append(tr.Edges, vm.OrderEdge{FromTid: 0, FromIdx: 5, ToTid: 0, ToIdx: 2})
	// A same-thread backward edge contradicts program order.
	if err := tr.BuildGlobal(); err == nil {
		t.Error("contradictory constraints accepted")
	}
}
