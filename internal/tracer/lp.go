package tracer

import "repro/internal/isa"

// Loc is a dependence location: a shared memory word or a per-thread
// register. Registers of different threads are distinct locations.
type Loc int64

const regLocBase Loc = 1 << 62

// MemLoc returns the location of a memory word.
func MemLoc(addr int64) Loc { return Loc(addr) }

// RegLoc returns the location of a register in a thread.
func RegLoc(tid int, r isa.Reg) Loc {
	return regLocBase | Loc(int64(tid)<<8|int64(r))
}

// IsReg reports whether the location is a register.
func (l Loc) IsReg() bool { return l&regLocBase != 0 }

// Defs appends the locations the entry defines (registers written plus
// the memory word written, if any).
//
// The stack pointer is excluded from dependence tracking: SP updates are
// bookkeeping that would chain every stack operation into every slice,
// while the actual values flow through the stack *slots*, which are
// tracked as memory locations (a PUSH defines the slot it writes, a POP
// uses the slot it reads).
func Defs(e *Entry, buf []Loc) []Loc {
	var regs [4]isa.Reg
	for _, r := range e.Instr.RegDefs(regs[:0]) {
		if r == isa.SP {
			continue
		}
		buf = append(buf, RegLoc(e.Tid, r))
	}
	if e.EffAddr >= 0 && e.MemIsWrite {
		buf = append(buf, MemLoc(e.EffAddr))
	}
	return buf
}

// Uses appends the locations the entry uses (registers read plus the
// memory word read, if any). LOCK/UNLOCK both read and write their cell
// (MemAlsoRead), so the cell appears in both Defs and Uses for them.
// SP is excluded for the reason documented on Defs.
func Uses(e *Entry, buf []Loc) []Loc {
	var regs [4]isa.Reg
	for _, r := range e.Instr.RegUses(regs[:0]) {
		if r == isa.SP {
			continue
		}
		buf = append(buf, RegLoc(e.Tid, r))
	}
	if e.EffAddr >= 0 && (!e.MemIsWrite || e.MemAlsoRead) {
		buf = append(buf, MemLoc(e.EffAddr))
	}
	return buf
}

// DefaultLPBlock is the default Limited Preprocessing block size.
const DefaultLPBlock = 4096

// LPIndex divides the global trace into fixed-size blocks and keeps, per
// block, the set of locations defined in it ("summary of downward exposed
// values"). The backward traversal skips any block whose summary is
// disjoint from the wanted locations — the Limited Preprocessing
// algorithm of Zhang, Gupta and Zhang (ICSE'03) the paper adopts.
type LPIndex struct {
	BlockSize int
	summaries []map[Loc]struct{}

	// Skipped and Visited count blocks during traversals, for the
	// evaluation harness.
	Skipped int64
	Visited int64
}

// BuildLPIndex scans the global trace once and constructs the per-block
// definition summaries. BuildGlobal must have run.
func BuildLPIndex(t *Trace, blockSize int) *LPIndex {
	if blockSize <= 0 {
		blockSize = DefaultLPBlock
	}
	n := len(t.Global)
	idx := &LPIndex{
		BlockSize: blockSize,
		summaries: make([]map[Loc]struct{}, (n+blockSize-1)/blockSize),
	}
	var buf [8]Loc
	for g, ref := range t.Global {
		b := g / blockSize
		s := idx.summaries[b]
		if s == nil {
			s = make(map[Loc]struct{}, 64)
			idx.summaries[b] = s
		}
		for _, l := range Defs(t.Entry(ref), buf[:0]) {
			s[l] = struct{}{}
		}
	}
	return idx
}

// BlockOf returns the block number containing global position g.
func (idx *LPIndex) BlockOf(g int) int { return g / idx.BlockSize }

// BlockStart returns the first global position of block b.
func (idx *LPIndex) BlockStart(b int) int { return b * idx.BlockSize }

// MayDefine reports whether block b defines any of the wanted locations.
func (idx *LPIndex) MayDefine(b int, wanted map[Loc]struct{}) bool {
	s := idx.summaries[b]
	if len(s) == 0 {
		return false
	}
	// Iterate over the smaller set.
	if len(wanted) <= len(s) {
		for l := range wanted {
			if _, ok := s[l]; ok {
				return true
			}
		}
		return false
	}
	for l := range s {
		if _, ok := wanted[l]; ok {
			return true
		}
	}
	return false
}
