package tracer

import "sort"

// Trace provenance. A trace collected from a flight-recorder (ring)
// replay is not uniformly trustworthy: instructions inside evicted
// windows were re-derived by gap-bridging re-execution rather than read
// back from recorded streams. When the re-derived window verified
// against its retained divergence hash the content is exact up to hash
// collision ("bridged"); when verification failed but the replay was
// allowed to continue, the content is merely an estimate. The trace
// carries this as an overlay of gap spans keyed by global region step,
// so the slicer can tag every dependence edge that touches one.

// Provenance classifies how the events behind a trace entry (or a
// dependence edge) were obtained.
type Provenance uint8

const (
	// ProvExact content was replayed from recorded streams.
	ProvExact Provenance = iota
	// ProvBridged content was re-derived by gap-bridging re-execution and
	// verified against the retained window hash.
	ProvBridged
	// ProvEstimated content was re-derived but failed hash verification:
	// it is a best-effort estimate, not a proven replay.
	ProvEstimated
)

func (p Provenance) String() string {
	switch p {
	case ProvExact:
		return "exact"
	case ProvBridged:
		return "bridged"
	case ProvEstimated:
		return "estimated"
	}
	return "invalid"
}

// Confidence is the per-edge confidence weight the slicer attaches to
// each provenance class.
func (p Provenance) Confidence() float64 {
	switch p {
	case ProvBridged:
		return 0.9
	case ProvEstimated:
		return 0.3
	}
	return 1.0
}

// GapSpan is one evicted window's span in global region steps: the
// instructions numbered (From, To] were re-derived by bridging.
// Estimated marks spans whose hash verification failed.
type GapSpan struct {
	From      int64
	To        int64
	Estimated bool
}

// SetGaps installs the gap overlay (spans must be sorted by From and
// non-overlapping, as a pinball's eviction manifest is).
func (t *Trace) SetGaps(gaps []GapSpan) { t.Gaps = gaps }

// StepOf returns the 1-based global region step of a trace entry, or 0
// when the collector did not record steps.
func (t *Trace) StepOf(r Ref) int64 {
	steps, ok := t.Steps[int(r.Tid)]
	if !ok || int(r.Pos) >= len(steps) {
		return 0
	}
	return steps[r.Pos]
}

// ProvenanceOf classifies one trace entry against the gap overlay.
func (t *Trace) ProvenanceOf(r Ref) Provenance {
	if len(t.Gaps) == 0 {
		return ProvExact
	}
	step := t.StepOf(r)
	if step == 0 {
		return ProvExact
	}
	// First span whose To covers the step, then check its From.
	i := sort.Search(len(t.Gaps), func(i int) bool { return t.Gaps[i].To >= step })
	if i == len(t.Gaps) || t.Gaps[i].From >= step {
		return ProvExact
	}
	if t.Gaps[i].Estimated {
		return ProvEstimated
	}
	return ProvBridged
}
