package tracer

import (
	"context"
	"sort"
	"sync"

	"repro/internal/vm"
)

// Window is one contiguous global-trace range [Lo, Hi). The parallel
// slicing engine shards the trace into windows (bounded by the pinball's
// checkpoint cadence, see pinplay.TraceWindows) and computes each
// window's dependence shard on its own worker.
type Window struct {
	Lo, Hi int
}

// Len returns the number of trace entries in the window.
func (w Window) Len() int { return w.Hi - w.Lo }

// SplitWindows cuts a trace of n entries into windows of the given size
// (the last window may be shorter). size <= 0 falls back to
// DefaultLPBlock. n == 0 yields no windows.
func SplitWindows(n, size int) []Window {
	if size <= 0 {
		size = DefaultLPBlock
	}
	out := make([]Window, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Window{Lo: lo, Hi: hi})
	}
	return out
}

// defShard is one window's contribution to the definition index: for
// every location defined in the window, the ascending global positions
// of its definitions, plus the window's location-space extents (used to
// size the dense lookup tables).
type defShard struct {
	defs     map[Loc][]int32
	maxLow   int64 // highest accessed address below vm.StackBase, -1 if none
	maxStack int64 // highest accessed address - vm.StackBase, -1 if none
	maxTid   int32 // highest thread id seen, -1 if none
}

// buildShard scans one window of the global trace. Positions within a
// window are visited in ascending order, so each per-location list is
// already sorted.
func buildShard(t *Trace, w Window) defShard {
	sh := defShard{defs: make(map[Loc][]int32, 64), maxLow: -1, maxStack: -1, maxTid: -1}
	var buf [8]Loc
	for g := w.Lo; g < w.Hi; g++ {
		e := t.Entry(t.Global[g])
		for _, l := range Defs(e, buf[:0]) {
			sh.defs[l] = append(sh.defs[l], int32(g))
		}
		if e.Tid > int(sh.maxTid) {
			sh.maxTid = int32(e.Tid)
		}
		if a := e.EffAddr; a >= 0 {
			if a >= vm.StackBase {
				if s := a - vm.StackBase; s > sh.maxStack {
					sh.maxStack = s
				}
			} else if a > sh.maxLow {
				sh.maxLow = a
			}
		}
	}
	return sh
}

// LocSpace describes the compact regions of the dependence-location
// space observed in a trace — globals+heap (below vm.StackBase), the
// stack area, and per-thread registers — so tables over locations can be
// direct-indexed instead of hashed. Index maps a location into
// [0, Total()); locations outside the observed regions (only possible
// for untouched addresses) report false and must use a map fallback.
type LocSpace struct {
	MemSpan   int64 // low addresses [0, MemSpan)
	StackLo   int64 // base of the stack region (vm.StackBase)
	StackSpan int64 // stack addresses [StackLo, StackLo+StackSpan)
	RegSpan   int64 // register ids (tid<<8|reg) in [0, RegSpan)
}

// Total returns the dense table size the space requires.
func (ls LocSpace) Total() int64 { return ls.MemSpan + ls.StackSpan + ls.RegSpan }

// Index returns l's dense table index, or false when l lies outside the
// space's regions.
func (ls LocSpace) Index(l Loc) (int, bool) {
	if l&regLocBase != 0 {
		if r := int64(l &^ regLocBase); r < ls.RegSpan {
			return int(ls.MemSpan + ls.StackSpan + r), true
		}
		return 0, false
	}
	a := int64(l)
	if a < 0 {
		return 0, false
	}
	if a >= ls.StackLo {
		if s := a - ls.StackLo; s < ls.StackSpan {
			return int(ls.MemSpan + s), true
		}
		return 0, false
	}
	if a < ls.MemSpan {
		return int(a), true
	}
	return 0, false
}

// LocAt is the inverse of Index: it reconstructs the location at dense
// table index i. It exists for callers that must externalise a
// direct-indexed table keyed by this space — the windowed slice query
// serialises its live demand set as (location, requester) pairs when a
// shard boundary hands the computation to another process.
func (ls LocSpace) LocAt(i int) Loc {
	n := int64(i)
	if n < ls.MemSpan {
		return Loc(n)
	}
	n -= ls.MemSpan
	if n < ls.StackSpan {
		return Loc(ls.StackLo + n)
	}
	return regLocBase | Loc(n-ls.StackSpan)
}

// DefIndex maps every dependence location to the ascending global
// positions of its dynamic definitions. It is the stitched form of the
// per-window dependence shards: a demand "who last defined location l
// before position g" resolves with one binary search instead of a
// backward trace walk. The index depends only on the trace, never on a
// slicing criterion, so one build serves every slice query over the
// region — the cacheable artefact of the parallel engine.
type DefIndex struct {
	defs map[Loc][]int32
	// space and dense form a direct-indexed view of defs over the
	// trace's compact location regions. They turn the hot per-demand
	// lookup into an array index instead of a large-map probe; defs
	// remains the authoritative fallback for out-of-space locations.
	space LocSpace
	dense [][]int32
	// Shards records how many windows the build used, for stats.
	Shards int
}

// denseCap bounds each dense region: location ranges wider than this
// stay on the map fallback rather than allocating huge tables.
const denseCap = 1 << 21

// buildDense sizes the location space from the shard extents and
// populates the direct-indexed view (it shares the map's position
// slices, so this costs only the table headers).
func (idx *DefIndex) buildDense(maxLow, maxStack int64, maxTid int32) {
	ls := LocSpace{StackLo: vm.StackBase}
	if maxLow >= 0 && maxLow < denseCap {
		ls.MemSpan = maxLow + 1
	}
	if maxStack >= 0 && maxStack < denseCap {
		ls.StackSpan = maxStack + 1
	}
	ls.RegSpan = (int64(maxTid) + 1) << 8
	idx.space = ls
	idx.dense = make([][]int32, ls.Total())
	for l, ps := range idx.defs {
		if i, ok := ls.Index(l); ok {
			idx.dense[i] = ps
		}
	}
}

// Space returns the trace's dense location space, shared with callers
// that want direct-indexed tables of their own (the parallel engine's
// per-query demand set).
func (idx *DefIndex) Space() LocSpace { return idx.space }

// positionsOf returns loc's ascending definition positions.
func (idx *DefIndex) positionsOf(l Loc) []int32 {
	if i, ok := idx.space.Index(l); ok {
		return idx.dense[i]
	}
	return idx.defs[l]
}

// BuildDefIndex computes the per-window shards on up to workers
// concurrent goroutines and merges them. The merge concatenates each
// location's per-window lists in window order, so the result is
// identical regardless of worker count or completion order. BuildGlobal
// must have run.
func BuildDefIndex(t *Trace, windows []Window, workers int) *DefIndex {
	idx, _ := BuildDefIndexCtx(nil, t, windows, workers)
	return idx
}

// ctxDone reports whether ctx (which may be nil) is cancelled. Build
// workers poll it between window shards, so cancellation only needs
// Err() — Done() is never selected on, which lets tests drive
// cancellation with deterministic counting contexts.
func ctxDone(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// BuildDefIndexCtx is BuildDefIndex with cooperative cancellation: the
// worker pool checks ctx between window shards, so an aborted or
// preempted session stops burning workers promptly instead of finishing
// every in-flight window. A cancelled build returns ctx's error and no
// index. A nil ctx never cancels.
func BuildDefIndexCtx(ctx context.Context, t *Trace, windows []Window, workers int) (*DefIndex, error) {
	if workers < 1 {
		workers = 1
	}
	shards := make([]defShard, len(windows))
	if workers == 1 || len(windows) <= 1 {
		for i, w := range windows {
			if ctxDone(ctx) {
				return nil, ctx.Err()
			}
			shards[i] = buildShard(t, w)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int, len(windows))
		for i := range windows {
			next <- i
		}
		close(next)
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ctxDone(ctx) {
						continue // drain the queue without building
					}
					shards[i] = buildShard(t, windows[i])
				}
			}()
		}
		wg.Wait()
		if ctxDone(ctx) {
			return nil, ctx.Err()
		}
	}

	// Deterministic stitch: window order is position order, and each
	// shard's lists are internally sorted, so concatenation yields
	// globally sorted position lists.
	idx := &DefIndex{defs: make(map[Loc][]int32, 256), Shards: len(windows)}
	var maxLow, maxStack int64 = -1, -1
	maxTid := int32(-1)
	for i := range shards {
		for l, ps := range shards[i].defs {
			idx.defs[l] = append(idx.defs[l], ps...)
		}
		if shards[i].maxLow > maxLow {
			maxLow = shards[i].maxLow
		}
		if shards[i].maxStack > maxStack {
			maxStack = shards[i].maxStack
		}
		if shards[i].maxTid > maxTid {
			maxTid = shards[i].maxTid
		}
	}
	idx.buildDense(maxLow, maxStack, maxTid)
	return idx, nil
}

// NearestDefBefore returns the greatest global position p < g at which
// loc is defined, or ok=false when no definition precedes g.
func (idx *DefIndex) NearestDefBefore(l Loc, g int) (int, bool) {
	ps := idx.positionsOf(l)
	// First index with ps[i] >= g; the definition before g is i-1.
	i := sort.Search(len(ps), func(i int) bool { return int(ps[i]) >= g })
	if i == 0 {
		return 0, false
	}
	return int(ps[i-1]), true
}

// DefCount returns the total number of indexed definitions, for stats.
func (idx *DefIndex) DefCount() int64 {
	var n int64
	for _, ps := range idx.defs {
		n += int64(len(ps))
	}
	return n
}

// Locations returns how many distinct locations the index covers.
func (idx *DefIndex) Locations() int { return len(idx.defs) }
