package tracer

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// BuildGlobal combines the per-thread local traces into a single fully
// ordered trace that honours program order and every shared-memory order
// edge (read-after-write, write-after-write, write-after-read), i.e. a
// topological order of the happens-before graph (paper Section 3(ii)).
//
// The construction clusters runs from one thread for as long as its next
// entry's cross-thread predecessors have been emitted, which improves the
// locality of the Limited Preprocessing traversal (the paper's
// "we always try to cluster traces for each thread to the extent
// possible").
func (t *Trace) BuildGlobal() error {
	// Incoming cross-thread constraints per target entry.
	preds := make(map[Ref][]Ref, len(t.Edges))
	for _, e := range t.Edges {
		fr, ok1 := t.RefOf(e.FromTid, e.FromIdx)
		to, ok2 := t.RefOf(e.ToTid, e.ToIdx)
		if !ok1 || !ok2 {
			// An edge endpoint outside the traced region imposes no
			// constraint within it.
			continue
		}
		preds[to] = append(preds[to], fr)
	}
	// Thread-lifecycle causality: a spawn precedes every instruction of
	// the thread it created, and a successful join follows the joined
	// thread's last instruction.
	for child, sp := range t.SpawnEvent {
		if first, ok := t.RefOf(child, t.FirstIdx[child]); ok {
			preds[first] = append(preds[first], sp)
		}
	}
	for tid, l := range t.Locals {
		for pos := range l {
			e := &l[pos]
			if e.Instr.Op == isa.JOIN {
				child := int(e.Aux)
				cl := t.Locals[child]
				if len(cl) > 0 {
					last := Ref{Tid: int32(child), Pos: int32(len(cl) - 1)}
					preds[Ref{Tid: int32(tid), Pos: int32(pos)}] = append(preds[Ref{Tid: int32(tid), Pos: int32(pos)}], last)
				}
			}
		}
	}

	tids := make([]int, 0, len(t.Locals))
	total := 0
	for tid, l := range t.Locals {
		tids = append(tids, tid)
		total += len(l)
	}
	sort.Ints(tids)

	cursor := make(map[int]int, len(tids))
	emitted := func(r Ref) bool { return int(r.Pos) < cursor[int(r.Tid)] }
	ready := func(tid int) bool {
		pos := cursor[tid]
		if pos >= len(t.Locals[tid]) {
			return false
		}
		for _, p := range preds[Ref{Tid: int32(tid), Pos: int32(pos)}] {
			if !emitted(p) {
				return false
			}
		}
		return true
	}

	t.Global = make([]Ref, 0, total)
	gpos := make(map[int][]int32, len(tids))
	for tid, l := range t.Locals {
		gpos[tid] = make([]int32, len(l))
	}

	for len(t.Global) < total {
		progress := false
		for _, tid := range tids {
			for ready(tid) {
				r := Ref{Tid: int32(tid), Pos: int32(cursor[tid])}
				gpos[tid][cursor[tid]] = int32(len(t.Global))
				t.Global = append(t.Global, r)
				cursor[tid]++
				progress = true
			}
		}
		if !progress {
			return fmt.Errorf("tracer: cycle in happens-before constraints (%d of %d emitted)", len(t.Global), total)
		}
	}
	t.globalPosArr = gpos
	return nil
}
