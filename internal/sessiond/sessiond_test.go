package sessiond

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/supervisor"
	"repro/internal/vm"

	drdebug "repro"
)

// daemonSrc is the recorded program the protocol tests run sessions
// against: a lock-guarded counter with read() input, so the pinball
// carries syscalls, order constraints and checkpoints, and "counter" is
// a sliceable global.
const daemonSrc = `
int counter;
int mtx;
int worker(int id) {
	int i;
	for (i = 0; i < 15; i++) {
		lock(&mtx);
		counter = counter + read();
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t = spawn(worker, 1);
	worker(0);
	join(t);
	write(counter);
	return 0;
}`

// daemonFixture lays out everything the daemon tests serve: the source
// file, an intact pinball, a salvageable torn journal and garbage files.
type daemonFixture struct {
	src      string
	good     string
	torn     string
	garbage  string
	garbage2 string
}

func makeDaemonFixture(t testing.TB) *daemonFixture {
	t.Helper()
	dir := t.TempDir()
	f := &daemonFixture{
		src:      filepath.Join(dir, "daemon.c"),
		good:     filepath.Join(dir, "good.pinball"),
		torn:     filepath.Join(dir, "torn.pinball"),
		garbage:  filepath.Join(dir, "garbage.pinball"),
		garbage2: filepath.Join(dir, "garbage2.pinball"),
	}
	if err := os.WriteFile(f.src, []byte(daemonSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := drdebug.CompileFile(f.src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i + 1)
	}
	cfg := pinplay.LogConfig{
		Seed: 7, MeanQuantum: 13, Input: input, CheckpointEvery: 8,
		JournalPath:   filepath.Join(dir, "daemon.journal"),
		JournalEvery:  64,
		JournalNoSync: true,
	}
	pb, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	if err := pb.Save(f.good); err != nil {
		t.Fatal(err)
	}
	jdata, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := pinball.SectionOffsets(jdata)
	if err != nil || len(secs) < 3 {
		t.Fatalf("journal sections: %d, %v", len(secs), err)
	}
	if err := os.WriteFile(f.torn, jdata[:secs[len(secs)-1].Off], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f.garbage, []byte("not a pinball, not even close"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f.garbage2, []byte("a different kind of not-a-pinball"), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

// startServer runs a server on a loopback listener and tears it down
// with the test.
func startServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, lis.Addr().String()
}

// testClient is a minimal line-JSON protocol client.
type testClient struct {
	t    testing.TB
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

func dialT(t testing.TB, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	return &testClient{t: t, conn: conn, enc: json.NewEncoder(conn), sc: sc}
}

// send fires a request without waiting for the answer.
func (c *testClient) send(req *Request) {
	c.t.Helper()
	if err := c.enc.Encode(req); err != nil {
		c.t.Fatalf("send: %v", err)
	}
}

// recv reads the next response.
func (c *testClient) recv() *Response {
	c.t.Helper()
	if !c.sc.Scan() {
		c.t.Fatalf("connection closed, scanner err: %v", c.sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		c.t.Fatalf("bad response %q: %v", c.sc.Text(), err)
	}
	return &resp
}

func (c *testClient) do(req *Request) *Response {
	c.t.Helper()
	c.send(req)
	return c.recv()
}

// fastSup is a retry policy quick enough for tests.
func fastSup() supervisor.Options {
	return supervisor.Options{MaxAttempts: 2, Backoff: time.Millisecond, BackoffMax: 5 * time.Millisecond}
}

func TestHealthAndStats(t *testing.T) {
	f := makeDaemonFixture(t)
	_, addr := startServer(t, Config{Supervisor: fastSup()})
	c := dialT(t, addr)

	resp := c.do(&Request{ID: "h1", Op: OpHealth})
	if !resp.OK || resp.ID != "h1" {
		t.Fatalf("health: %+v", resp)
	}
	var h HealthResult
	if err := json.Unmarshal(resp.Result, &h); err != nil {
		t.Fatal(err)
	}
	if !h.Live || !h.Ready || h.Status != "ok" || h.Active != 0 {
		t.Fatalf("health payload: %+v", h)
	}

	// One real session, then the counters must reflect it.
	if resp := c.do(&Request{Op: OpReplay, File: f.src, Pinball: f.good}); !resp.OK {
		t.Fatalf("replay: %+v", resp)
	}
	var s StatsResult
	resp = c.do(&Request{Op: OpStats})
	if err := json.Unmarshal(resp.Result, &s); err != nil {
		t.Fatal(err)
	}
	if s.Accepted != 1 || s.Completed != 1 || s.Failed != 0 {
		t.Fatalf("stats after one replay: %+v", s)
	}
}

func TestReplaySliceDualSliceOverTCP(t *testing.T) {
	f := makeDaemonFixture(t)
	_, addr := startServer(t, Config{Supervisor: fastSup()})
	c := dialT(t, addr)

	resp := c.do(&Request{ID: "r", Op: OpReplay, File: f.src, Pinball: f.good})
	if !resp.OK || resp.Code != "" {
		t.Fatalf("replay: %+v", resp)
	}
	var rr ReplayResult
	if err := json.Unmarshal(resp.Result, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Executed == 0 || rr.Checked == 0 || rr.Degraded {
		t.Fatalf("replay payload: %+v", rr)
	}

	resp = c.do(&Request{ID: "s", Op: OpSlice, File: f.src, Pinball: f.good, Var: "counter", Workers: 2})
	if !resp.OK {
		t.Fatalf("slice: %+v", resp)
	}
	var sr SliceResult
	if err := json.Unmarshal(resp.Result, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Members == 0 || sr.TraceLen == 0 {
		t.Fatalf("slice payload: %+v", sr)
	}

	resp = c.do(&Request{ID: "d", Op: OpDualSlice, File: f.src,
		Pinball: f.good, PassingPinball: f.good, Var: "counter"})
	if !resp.OK {
		t.Fatalf("dualslice: %+v", resp)
	}
	var dr DualSliceResult
	if err := json.Unmarshal(resp.Result, &dr); err != nil {
		t.Fatal(err)
	}
	// Identical runs must agree perfectly.
	if dr.OnlyFailing != 0 || dr.OnlyPassing != 0 || dr.Common == 0 {
		t.Fatalf("dualslice payload: %+v", dr)
	}

	// A salvaged pinball answers, annotated.
	resp = c.do(&Request{Op: OpReplay, File: f.src, Pinball: f.torn, Salvage: true})
	if !resp.OK || resp.Code != CodeSalvaged {
		t.Fatalf("salvaged replay: %+v", resp)
	}
}

func TestTypedRejections(t *testing.T) {
	f := makeDaemonFixture(t)
	_, addr := startServer(t, Config{
		Supervisor: fastSup(),
		Quota:      QuotaConfig{MaxBudget: 1 << 20},
	})
	c := dialT(t, addr)

	for _, tc := range []struct {
		name string
		req  *Request
		code string
	}{
		{"unknown-op", &Request{Op: "explode"}, CodeBadRequest},
		{"no-program", &Request{Op: OpReplay, Pinball: f.good}, CodeBadRequest},
		{"no-pinball", &Request{Op: OpReplay, File: f.src}, CodeBadRequest},
		{"quota-budget", &Request{Op: OpReplay, File: f.src, Pinball: f.good, Budget: 2 << 20}, CodeQuota},
		{"corrupt", &Request{Op: OpReplay, File: f.src, Pinball: f.garbage}, CodeCorrupt},
		{"corrupt-salvage", &Request{Op: OpReplay, File: f.src, Pinball: f.garbage, Salvage: true}, CodeCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := c.do(tc.req)
			if resp.OK || resp.Code != tc.code {
				t.Fatalf("%s: got ok=%v code=%q err=%q, want %s",
					tc.name, resp.OK, resp.Code, resp.Error, tc.code)
			}
		})
	}

	// A malformed line gets a typed answer too, and the connection
	// stays usable.
	if _, err := c.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if resp := c.recv(); resp.OK || resp.Code != CodeBadRequest {
		t.Fatalf("malformed line: %+v", resp)
	}
	if resp := c.do(&Request{Op: OpHealth}); !resp.OK {
		t.Fatalf("connection unusable after bad line: %+v", resp)
	}
}

// stallChaos injects a test-released stall into the first replay session
// and nothing into later ones. The returned unstall is idempotent and
// safe to both defer and call inline.
func stallChaos() (chaos func(op string) vm.Tracer, unstall func()) {
	release := make(chan struct{})
	var used, closed atomic.Bool
	chaos = func(op string) vm.Tracer {
		if used.CompareAndSwap(false, true) {
			return &faultinject.StallTracer{After: 20, Release: release}
		}
		return nil
	}
	unstall = func() {
		if closed.CompareAndSwap(false, true) {
			close(release)
		}
	}
	return chaos, unstall
}

// waitActive polls health until the running-session count reaches want.
func waitActive(t *testing.T, addr string, want int) {
	t.Helper()
	c := dialT(t, addr)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var h HealthResult
		resp := c.do(&Request{Op: OpHealth})
		if err := json.Unmarshal(resp.Result, &h); err != nil {
			t.Fatal(err)
		}
		if h.Active >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never reached %d active sessions", want)
}

func TestOverloadSheds(t *testing.T) {
	f := makeDaemonFixture(t)
	chaos, unstall := stallChaos()
	defer unstall()
	_, addr := startServer(t, Config{
		Supervisor: fastSup(),
		Admission:  AdmissionConfig{MaxSessions: 1, MaxQueue: -1}, // no queue
		Chaos:      chaos,
	})

	// Occupy the only slot with a stalled replay.
	c1 := dialT(t, addr)
	c1.send(&Request{ID: "slow", Op: OpReplay, File: f.src, Pinball: f.good})
	waitActive(t, addr, 1)

	// Pool full, queue length 0: the next session is shed, typed.
	c2 := dialT(t, addr)
	resp := c2.do(&Request{ID: "shed", Op: OpReplay, File: f.src, Pinball: f.good})
	if resp.OK || resp.Code != CodeOverload {
		t.Fatalf("expected overload, got %+v", resp)
	}

	// Health still answers while the pool is saturated (never queued).
	if resp := c2.do(&Request{Op: OpHealth}); !resp.OK {
		t.Fatalf("health under load: %+v", resp)
	}

	// Releasing the stall completes the slow session normally.
	unstall()
	if resp := c1.recv(); !resp.OK || resp.ID != "slow" {
		t.Fatalf("slow session: %+v", resp)
	}
}

func TestPerClientCap(t *testing.T) {
	f := makeDaemonFixture(t)
	chaos, unstall := stallChaos()
	defer unstall()
	_, addr := startServer(t, Config{
		Supervisor: fastSup(),
		Admission:  AdmissionConfig{MaxSessions: 4, MaxQueue: 16, MaxPerClient: 1},
		Chaos:      chaos,
	})

	c1 := dialT(t, addr)
	c1.send(&Request{ID: "first", Op: OpReplay, Client: "alice", File: f.src, Pinball: f.good})
	waitActive(t, addr, 1)

	// Pool has room, but alice is at her cap.
	c2 := dialT(t, addr)
	resp := c2.do(&Request{ID: "second", Op: OpReplay, Client: "alice", File: f.src, Pinball: f.good})
	if resp.OK || resp.Code != CodeOverload {
		t.Fatalf("expected per-client overload, got %+v", resp)
	}

	// A different client sails through.
	resp = c2.do(&Request{Op: OpReplay, Client: "bob", File: f.src, Pinball: f.good})
	if !resp.OK {
		t.Fatalf("bob blocked: %+v", resp)
	}
}

func TestCircuitBreaker(t *testing.T) {
	f := makeDaemonFixture(t)
	srv, addr := startServer(t, Config{
		Supervisor: fastSup(),
		Breaker:    BreakerConfig{K: 2, Cooldown: time.Hour},
	})
	c := dialT(t, addr)

	bad := &Request{Op: OpReplay, File: f.src, Pinball: f.garbage}
	for i := 0; i < 2; i++ {
		if resp := c.do(bad); resp.Code != CodeCorrupt {
			t.Fatalf("attempt %d: %+v", i, resp)
		}
	}
	// K failures recorded: the circuit is open and fails fast with the
	// cached diagnosis.
	resp := c.do(bad)
	if resp.OK || resp.Code != CodeCircuitOpen {
		t.Fatalf("expected circuit_open, got %+v", resp)
	}
	if resp.Error == "" {
		t.Fatal("circuit_open response carries no cached failure")
	}
	if n := srv.brk.openCount(); n != 1 {
		t.Fatalf("openCount = %d, want 1", n)
	}

	// Other pinballs are unaffected.
	if resp := c.do(&Request{Op: OpReplay, File: f.src, Pinball: f.good}); !resp.OK {
		t.Fatalf("good pinball tripped by unrelated breaker: %+v", resp)
	}

	// Same content under a different path shares the circuit.
	copied := filepath.Join(t.TempDir(), "copy.pinball")
	data, _ := os.ReadFile(f.garbage)
	if err := os.WriteFile(copied, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if resp := c.do(&Request{Op: OpReplay, File: f.src, Pinball: copied}); resp.Code != CodeCircuitOpen {
		t.Fatalf("copied corrupt content not short-circuited: %+v", resp)
	}
}

func TestBreakerCooldownAndReset(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := newBreaker(BreakerConfig{K: 2, Cooldown: time.Minute}, clock)

	b.failure("pb", CodeCorrupt, "bad header")
	if open, _, _ := b.check("pb"); open {
		t.Fatal("open before K failures")
	}
	b.failure("pb", CodeCorrupt, "bad header")
	open, code, msg := b.check("pb")
	if !open || code != CodeCorrupt || msg != "bad header" {
		t.Fatalf("after K failures: open=%v code=%q msg=%q", open, code, msg)
	}

	// Cooldown expiry lets a trial through...
	now = now.Add(2 * time.Minute)
	if open, _, _ := b.check("pb"); open {
		t.Fatal("still open after cooldown")
	}
	// ...and one more failure re-opens immediately (count retained).
	b.failure("pb", CodeDivergence, "window 3")
	if open, code, _ := b.check("pb"); !open || code != CodeDivergence {
		t.Fatalf("trial failure did not re-open: open=%v code=%q", open, code)
	}

	// Success closes for good.
	b.success("pb")
	if open, _, _ := b.check("pb"); open {
		t.Fatal("open after success")
	}
	if n := b.openCount(); n != 0 {
		t.Fatalf("openCount = %d, want 0", n)
	}
}

func TestGracefulDrain(t *testing.T) {
	f := makeDaemonFixture(t)
	chaos, unstall := stallChaos()
	defer unstall()
	srv, addr := startServer(t, Config{
		Supervisor:   fastSup(),
		DrainTimeout: 10 * time.Second,
		Chaos:        chaos,
	})

	// One session in flight, stalled under test control.
	c1 := dialT(t, addr)
	c1.send(&Request{ID: "inflight", Op: OpReplay, File: f.src, Pinball: f.good})
	waitActive(t, addr, 1)

	// A second connection opened (and accepted — the probe proves it)
	// before the drain begins.
	c2 := dialT(t, addr)
	if resp := c2.do(&Request{Op: OpHealth}); !resp.OK {
		t.Fatalf("pre-drain health: %+v", resp)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Once draining, new sessions are refused with a typed code but
	// health keeps answering (readiness goes false).
	var h HealthResult
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := c2.do(&Request{Op: OpHealth})
		if err := json.Unmarshal(resp.Result, &h); err != nil {
			t.Fatal(err)
		}
		if !h.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.Status != "draining" {
		t.Fatalf("health while draining: %+v", h)
	}
	if resp := c2.do(&Request{Op: OpReplay, File: f.src, Pinball: f.good}); resp.OK || resp.Code != CodeDraining {
		t.Fatalf("expected draining rejection, got %+v", resp)
	}

	// The in-flight session finishes inside the drain window and its
	// result is delivered — drain loses nothing.
	unstall()
	if resp := c1.recv(); !resp.OK || resp.ID != "inflight" {
		t.Fatalf("in-flight result lost in drain: %+v", resp)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	f := makeDaemonFixture(t)
	chaos, unstall := stallChaos()
	defer unstall()
	srv, addr := startServer(t, Config{
		Supervisor:   fastSup(),
		DrainTimeout: 50 * time.Millisecond,
		Quota:        QuotaConfig{DefaultDeadline: 200 * time.Millisecond},
		Chaos:        chaos,
	})

	// The stalled session will not finish by itself: the tracer blocks
	// until `release` closes, which this test never does before drain.
	c1 := dialT(t, addr)
	c1.send(&Request{ID: "straggler", Op: OpReplay, File: f.src, Pinball: f.good})
	waitActive(t, addr, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The watchdog (quota deadline + 2s) preempts the stalled attempt
	// after the 50ms drain window triggers the hard cancel; well under
	// the 15s budget either way.
	if elapsed := time.Since(start); elapsed > 12*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}
	// The straggler still got a typed response before its connection
	// closed.
	resp := c1.recv()
	if resp.OK {
		t.Fatalf("cancelled straggler reported success: %+v", resp)
	}
	if resp.Code == "" {
		t.Fatalf("straggler response untyped: %+v", resp)
	}
}

func TestAdmissionFIFOAndAbandon(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxSessions: 1, MaxQueue: 4})
	if err := a.acquire(nil, "a"); err != nil {
		t.Fatal(err)
	}

	got := make(chan int, 2)
	for i := 1; i <= 2; i++ {
		i := i
		ready := make(chan struct{})
		go func() {
			close(ready)
			if err := a.acquire(nil, fmt.Sprintf("w%d", i)); err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			got <- i
		}()
		<-ready
		// Wait until the waiter is actually queued so FIFO order is
		// deterministic.
		for {
			if _, q := a.load(); q >= i {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// A cancelled waiter leaves the queue without leaking its slot.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.acquire(ctx, "cancelled"); err != context.Canceled {
		t.Fatalf("cancelled acquire: %v", err)
	}

	a.release("a")
	if first := <-got; first != 1 {
		t.Fatalf("FIFO violated: waiter %d ran first", first)
	}
	a.release("w1")
	if second := <-got; second != 2 {
		t.Fatalf("FIFO violated: waiter %d ran second", second)
	}
	a.release("w2")
	if r, q := a.load(); r != 0 || q != 0 {
		t.Fatalf("not idle after releases: running=%d queued=%d", r, q)
	}
}
