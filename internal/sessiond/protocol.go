// Package sessiond is the fault-tolerant debugging session daemon
// behind cmd/drserved: a resident service that runs record / replay /
// slice / dual-slice sessions against pinballs on behalf of many
// concurrent clients. The paper's cyclic-debugging loop — record once,
// replay and slice many times — maps onto a long-lived server holding
// the hot slicing engines, but a resident process serving a misbehaving
// client population needs robustness controls the one-shot CLIs never
// did. sessiond layers them over internal/supervisor:
//
//   - admission control: a bounded session pool with a FIFO wait queue
//     and per-client concurrency caps; overflow is rejected with a typed
//     "overload" error (HTTP-503 style) instead of queueing unboundedly;
//   - per-session resource quotas: instruction budget, wall-clock
//     deadline and page cap, server-clamped between defaults and maxima
//     and enforced inside the VM via vm.Limits, with watchdog-driven
//     preemption of hung sessions;
//   - a per-pinball circuit breaker: after K consecutive session
//     failures on the same pinball content, further requests fail fast
//     with the cached failure until a cool-down expires, so one corrupt
//     pinball cannot monopolize the worker pool;
//   - retry with exponential backoff and jitter for transient failures
//     (the supervisor's classification decides transient vs permanent);
//   - graceful drain on shutdown: stop admitting, finish in-flight
//     sessions bounded by a drain deadline, then cancel stragglers;
//   - bounded shared caches: the process-lifetime slice-engine and CFG
//     caches sit behind size-capped LRUs with single-flight loading, so
//     concurrent sessions share hot engines without unbounded growth.
//
// The wire protocol is line-delimited JSON over TCP: one Request per
// line in, one Response per line out, answered in order per connection.
package sessiond

import (
	"encoding/json"

	"repro/internal/supervisor"
)

// Ops a request can ask for.
const (
	OpRecord    = "record"
	OpReplay    = "replay"
	OpSlice     = "slice"
	OpDualSlice = "dualslice"
	OpHealth    = "health" // liveness/readiness probe; never queued
	OpStats     = "stats"  // server counters; never queued
)

// Typed error codes (Response.Code when OK is false) — the failure
// matrix clients program against.
const (
	CodeOverload    = "overload"     // session pool and wait queue full, or per-client cap hit
	CodeQuota       = "quota"        // requested resources exceed the server's maxima
	CodeCircuitOpen = "circuit_open" // pinball's breaker is open; Error carries the cached failure
	CodeDraining    = "draining"     // server is shutting down and admits no new sessions
	CodeBadRequest  = "bad_request"  // malformed or incomplete request
	CodeCorrupt     = "corrupt"      // pinball failed to load (and salvage, if requested)
	CodeDivergence  = "divergence"   // replay left the recorded execution
	CodeLimit       = "limit"        // an execution quota was exhausted mid-session
	CodeTimeout     = "timeout"      // the watchdog preempted a hung session
	CodePanic       = "panic"        // a session phase panicked (isolated)
	CodeInternal    = "internal"     // any other failure
)

// Annotation codes (Response.Code when OK is true and the result is
// degraded in some way).
const (
	CodeSalvaged = "salvaged" // the pinball was damaged; results come from its salvaged prefix
	CodeDegraded = "degraded" // replay recovered only to its last good checkpoint
)

// Request is one client request, one JSON object per line.
type Request struct {
	// ID is echoed on the response so clients can match pipelined
	// requests to answers.
	ID string `json:"id,omitempty"`
	// Op selects the session kind (OpRecord ... OpStats).
	Op string `json:"op"`
	// Client identifies the requester for per-client concurrency caps.
	// Empty means the connection's remote address.
	Client string `json:"client,omitempty"`

	// Program source: exactly one of File (server-local .c/.s path) or
	// Workload (built-in name) for ops that replay or record.
	File     string `json:"file,omitempty"`
	Workload string `json:"workload,omitempty"`

	// Pinball is the server-local pinball path (replay/slice; the
	// failing run for dualslice). PassingPinball is dualslice's passing
	// run.
	Pinball        string `json:"pinball,omitempty"`
	PassingPinball string `json:"passing_pinball,omitempty"`
	// Salvage permits loading a damaged pinball via its salvaged prefix;
	// the response is then annotated CodeSalvaged.
	Salvage bool `json:"salvage,omitempty"`

	// Slice criterion: Var (last read of a global), or Tid/Line/Nth (a
	// dynamic source-line instance), else the recorded failure point.
	// Var also names dualslice's compared variable.
	Var  string `json:"var,omitempty"`
	Tid  int    `json:"tid,omitempty"`
	Line int    `json:"line,omitempty"`
	Nth  int    `json:"nth,omitempty"`
	// Workers selects the parallel slicing engine (0 = sequential).
	Workers int `json:"workers,omitempty"`

	// Record parameters: where to save the pinball, program input and
	// scheduling seed.
	Out         string  `json:"out,omitempty"`
	Input       []int64 `json:"input,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	MeanQuantum int64   `json:"mean_quantum,omitempty"`

	// Requested quotas; 0 means the server default, values above the
	// server maxima are rejected with CodeQuota.
	Budget     int64 `json:"budget,omitempty"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	MaxPages   int   `json:"max_pages,omitempty"`
}

// Response is one server answer, one JSON object per line, in request
// order per connection.
type Response struct {
	ID string `json:"id,omitempty"`
	OK bool   `json:"ok"`
	// Code is the typed error code when OK is false, or a degradation
	// annotation (CodeSalvaged/CodeDegraded) when OK is true.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
	// Result is the op-specific payload (ReplayResult, SliceResult,
	// DualSliceResult, RecordResult, HealthResult, StatsResult).
	Result json.RawMessage `json:"result,omitempty"`
	// Report is the supervisor's structured attempt log, when a session
	// ran at all.
	Report *supervisor.Report `json:"report,omitempty"`
}

// ReplayResult is OpReplay's payload.
type ReplayResult struct {
	Executed      int64 `json:"executed"`
	Checked       int   `json:"checked"`
	Degraded      bool  `json:"degraded,omitempty"`
	RecoveredStep int64 `json:"recovered_step,omitempty"`
}

// SliceResult is OpSlice's payload.
type SliceResult struct {
	Members        int `json:"members"`
	TraceLen       int `json:"trace_len"`
	Deps           int `json:"deps"`
	PrunedBypasses int `json:"pruned_bypasses,omitempty"`
}

// DualSliceResult is OpDualSlice's payload.
type DualSliceResult struct {
	OnlyFailing int `json:"only_failing"`
	OnlyPassing int `json:"only_passing"`
	Common      int `json:"common"`
}

// RecordResult is OpRecord's payload.
type RecordResult struct {
	Pinball      string `json:"pinball"`
	RegionInstrs int64  `json:"region_instrs"`
	Checkpoints  int    `json:"checkpoints"`
}

// HealthResult is OpHealth's payload: Live is process liveness (always
// true in an answer), Ready is readiness (false once draining).
type HealthResult struct {
	Live     bool   `json:"live"`
	Ready    bool   `json:"ready"`
	Status   string `json:"status"` // "ok" or "draining"
	Active   int    `json:"active"`
	Queued   int    `json:"queued"`
	UptimeMS int64  `json:"uptime_ms"`
}

// StatsResult is OpStats's payload.
type StatsResult struct {
	Received      int64 `json:"received"`
	Accepted      int64 `json:"accepted"`
	Rejected      int64 `json:"rejected"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	BreakersOpen  int   `json:"breakers_open"`
	EngineEntries int   `json:"engine_cache_entries"`
	EngineCap     int   `json:"engine_cache_cap"`
	GraphEntries  int   `json:"graph_cache_entries"`
	GraphCap      int   `json:"graph_cache_cap"`
}

// encode marshals a result payload; a marshal failure becomes an
// internal error response (it cannot happen for the types above).
func encode(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		return json.RawMessage(`{}`)
	}
	return data
}
