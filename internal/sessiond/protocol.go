// Package sessiond is the fault-tolerant debugging session daemon
// behind cmd/drserved: a resident service that runs record / replay /
// slice / dual-slice sessions against pinballs on behalf of many
// concurrent clients. The paper's cyclic-debugging loop — record once,
// replay and slice many times — maps onto a long-lived server holding
// the hot slicing engines, but a resident process serving a misbehaving
// client population needs robustness controls the one-shot CLIs never
// did. sessiond layers them over internal/supervisor:
//
//   - admission control: a bounded session pool with a FIFO wait queue
//     and per-client concurrency caps; overflow is rejected with a typed
//     "overload" error (HTTP-503 style) instead of queueing unboundedly;
//   - per-session resource quotas: instruction budget, wall-clock
//     deadline and page cap, server-clamped between defaults and maxima
//     and enforced inside the VM via vm.Limits, with watchdog-driven
//     preemption of hung sessions;
//   - a per-pinball circuit breaker: after K consecutive session
//     failures on the same pinball content, further requests fail fast
//     with the cached failure until a cool-down expires, so one corrupt
//     pinball cannot monopolize the worker pool;
//   - retry with exponential backoff and jitter for transient failures
//     (the supervisor's classification decides transient vs permanent);
//   - graceful drain on shutdown: stop admitting, finish in-flight
//     sessions bounded by a drain deadline, then cancel stragglers;
//   - bounded shared caches: the process-lifetime slice-engine and CFG
//     caches sit behind size-capped LRUs with single-flight loading, so
//     concurrent sessions share hot engines without unbounded growth.
//
// The wire protocol is line-delimited JSON over TCP: one Request per
// line in, one Response per line out, answered in order per connection.
package sessiond

import (
	"encoding/json"

	"repro/internal/slice"
	"repro/internal/supervisor"
)

// Ops a request can ask for.
const (
	OpRecord    = "record"
	OpReplay    = "replay"
	OpSlice     = "slice"
	OpDualSlice = "dualslice"
	OpHealth    = "health" // liveness/readiness probe; never queued
	OpStats     = "stats"  // server counters; never queued

	// Fleet ops (ProtoV2). Worker-to-coordinator: OpRegister announces a
	// worker and its capacity, OpHeartbeat refreshes its liveness,
	// OpSteal asks for a pending shard task, OpFetch submits a finished
	// task's result and fetches the next one in the same round trip.
	// Coordinator-to-worker: OpSliceShard advances one window range of a
	// distributed slice query.
	OpRegister   = "register"
	OpHeartbeat  = "heartbeat"
	OpSteal      = "steal"
	OpFetch      = "fetch"
	OpSliceShard = "slice_shard"

	// Store ops: fetch-by-digest against the content-addressed pinball
	// store (internal/store). OpStorePut uploads pinball bytes (the
	// coordinator replicates the put to the rendezvous owner and its
	// successor), OpStoreFetch downloads validated bytes by digest,
	// OpStoreStat returns the entry's metadata, OpStoreLocate asks the
	// coordinator which workers are ranked to hold a digest (workers use
	// it to find re-fetch peers when their own copy is damaged).
	OpStorePut    = "store_put"
	OpStoreFetch  = "store_fetch"
	OpStoreStat   = "store_stat"
	OpStoreLocate = "store_locate"
)

// Wire protocol versions. A request's Proto field is 0 or ProtoV1 for
// the PR-5 session protocol; ProtoV2 adds the fleet ops. Servers answer
// v1 requests unchanged — the extension is strictly additive — and
// reject fleet ops from clients that did not declare ProtoV2, so a v1
// client can never half-join a fleet.
const (
	ProtoV1 = 1
	ProtoV2 = 2

	ProtoCurrent = ProtoV2
)

// Typed error codes (Response.Code when OK is false) — the failure
// matrix clients program against.
const (
	CodeOverload    = "overload"     // session pool and wait queue full, or per-client cap hit
	CodeQuota       = "quota"        // requested resources exceed the server's maxima
	CodeCircuitOpen = "circuit_open" // pinball's breaker is open; Error carries the cached failure
	CodeDraining    = "draining"     // server is shutting down and admits no new sessions
	CodeBadRequest  = "bad_request"  // malformed or incomplete request
	CodeCorrupt     = "corrupt"      // pinball failed to load (and salvage, if requested)
	CodeDivergence  = "divergence"   // replay left the recorded execution
	CodeLimit       = "limit"        // an execution quota was exhausted mid-session
	CodeTimeout     = "timeout"      // the watchdog preempted a hung session
	CodePanic       = "panic"        // a session phase panicked (isolated)
	CodeInternal    = "internal"     // any other failure
	CodeNoWorkers   = "no_workers"   // fleet coordinator has no live worker to route to
	// CodeStoreUnavailable types store failures that are about
	// availability, not content: no store is configured on this daemon,
	// the digest exists nowhere in the fleet, or every peer that might
	// hold it is unreachable. Content damage stays CodeCorrupt — a
	// corrupt-and-unhealable object is the pinball's fault, and opens
	// its circuit like any other corruption.
	CodeStoreUnavailable = "store_unavailable"
)

// Annotation codes (Response.Code when OK is true and the result is
// degraded in some way).
const (
	CodeSalvaged = "salvaged" // the pinball was damaged; results come from its salvaged prefix
	CodeDegraded = "degraded" // replay recovered only to its last good checkpoint
	// CodeRedispatched marks an answer that is correct but arrived only
	// after the fleet re-dispatched work away from a dead or straggling
	// worker — scripts can detect degraded service (ExitFleetDegraded).
	CodeRedispatched = "redispatched"
	// CodeEstimated marks a result carrying estimated flight-recorder
	// content: the session bridged evicted ring windows and at least one
	// failed hash verification, so parts of the answer are best-effort
	// estimates (ExitEstimated).
	CodeEstimated = "estimated"
	// CodeHealed marks an answer that is correct but required the store's
	// self-healing path first: the local copy of the requested digest was
	// damaged or absent and was repaired by a peer re-fetch before the
	// session ran. Like CodeRedispatched it maps to ExitFleetDegraded —
	// the answer is right, the infrastructure limped.
	CodeHealed = "healed"
)

// Request is one client request, one JSON object per line.
type Request struct {
	// ID is echoed on the response so clients can match pipelined
	// requests to answers.
	ID string `json:"id,omitempty"`
	// Op selects the session kind (OpRecord ... OpStats).
	Op string `json:"op"`
	// Client identifies the requester for per-client concurrency caps.
	// Empty means the connection's remote address.
	Client string `json:"client,omitempty"`

	// Program source: exactly one of File (server-local .c/.s path) or
	// Workload (built-in name) for ops that replay or record.
	File     string `json:"file,omitempty"`
	Workload string `json:"workload,omitempty"`

	// Pinball is the server-local pinball path (replay/slice; the
	// failing run for dualslice). PassingPinball is dualslice's passing
	// run.
	Pinball        string `json:"pinball,omitempty"`
	PassingPinball string `json:"passing_pinball,omitempty"`
	// Digest names the pinball by content digest instead of path: the
	// daemon resolves it against its content-addressed store, healing a
	// damaged or absent local copy from fleet peers before the session
	// runs. Exactly one of Pinball or Digest for ops that load a pinball.
	// For store ops, Digest is the object being fetched/statted/located.
	Digest string `json:"digest,omitempty"`
	// Blob carries pinball file bytes on OpStorePut (base64 on the wire)
	// and store metadata recorded with the entry.
	Blob         []byte `json:"blob,omitempty"`
	StoreProgram string `json:"store_program,omitempty"`
	StoreKind    string `json:"store_kind,omitempty"`
	// StoreNoHeal marks a store_fetch made by a peer healing its own
	// copy: the serving daemon answers from local validated bytes only,
	// never healing recursively — two daemons with damaged copies must
	// fail typed, not chase each other.
	StoreNoHeal bool `json:"store_no_heal,omitempty"`
	// Salvage permits loading a damaged pinball via its salvaged prefix;
	// the response is then annotated CodeSalvaged.
	Salvage bool `json:"salvage,omitempty"`

	// Slice criterion: Var (last read of a global), or Tid/Line/Nth (a
	// dynamic source-line instance), else the recorded failure point.
	// Var also names dualslice's compared variable.
	Var  string `json:"var,omitempty"`
	Tid  int    `json:"tid,omitempty"`
	Line int    `json:"line,omitempty"`
	Nth  int    `json:"nth,omitempty"`
	// Workers selects the parallel slicing engine (0 = sequential).
	Workers int `json:"workers,omitempty"`

	// Record parameters: where to save the pinball, program input and
	// scheduling seed.
	Out         string  `json:"out,omitempty"`
	Input       []int64 `json:"input,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	MeanQuantum int64   `json:"mean_quantum,omitempty"`

	// Requested quotas; 0 means the server default, values above the
	// server maxima are rejected with CodeQuota.
	Budget     int64 `json:"budget,omitempty"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	MaxPages   int   `json:"max_pages,omitempty"`

	// Proto declares the sender's protocol version; 0 means ProtoV1.
	// Fleet ops require ProtoV2.
	Proto int `json:"proto,omitempty"`

	// Fleet fields (ProtoV2). Worker names the sending worker on
	// register/heartbeat/steal/fetch; Addr/Capacity describe it at
	// registration; Load is the heartbeat's current session count.
	Worker   string `json:"fleet_worker,omitempty"`
	Addr     string `json:"fleet_addr,omitempty"`
	Capacity int    `json:"fleet_capacity,omitempty"`
	Load     int    `json:"fleet_load,omitempty"`
	// TaskID/TaskState/TaskErr return a completed task on OpFetch:
	// TaskState is the full Response JSON the worker produced for the
	// task's request, TaskErr a worker-side transport failure when no
	// response could be produced at all.
	TaskID    string          `json:"task_id,omitempty"`
	TaskState json.RawMessage `json:"task_state,omitempty"`
	TaskErr   string          `json:"task_err,omitempty"`
	// State is OpSliceShard's query continuation (empty = fresh query at
	// the request's criterion); ShardWindows is how many checkpoint
	// windows the shard should advance (0 = one).
	State        json.RawMessage `json:"state,omitempty"`
	ShardWindows int             `json:"shard_windows,omitempty"`
}

// Response is one server answer, one JSON object per line, in request
// order per connection.
type Response struct {
	ID string `json:"id,omitempty"`
	OK bool   `json:"ok"`
	// Code is the typed error code when OK is false, or a degradation
	// annotation (CodeSalvaged/CodeDegraded) when OK is true.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
	// Result is the op-specific payload (ReplayResult, SliceResult,
	// DualSliceResult, RecordResult, HealthResult, StatsResult).
	Result json.RawMessage `json:"result,omitempty"`
	// Report is the supervisor's structured attempt log, when a session
	// ran at all.
	Report *supervisor.Report `json:"report,omitempty"`
}

// ReplayResult is OpReplay's payload. The Bridged/Estimated fields are
// the flight-recorder gap summary when the pinball had evicted windows.
type ReplayResult struct {
	Executed      int64 `json:"executed"`
	Checked       int   `json:"checked"`
	Degraded      bool  `json:"degraded,omitempty"`
	RecoveredStep int64 `json:"recovered_step,omitempty"`

	BridgedWindows   int   `json:"bridged_windows,omitempty"`
	BridgedInstrs    int64 `json:"bridged_instrs,omitempty"`
	EstimatedWindows int   `json:"estimated_windows,omitempty"`
}

// SliceResult is OpSlice's payload. Digest is the order-sensitive
// FNV-1a fold of the full result (dependence edges in append order,
// then members) — the fleet's bit-identity check against single-node
// answers.
type SliceResult struct {
	Members        int    `json:"members"`
	TraceLen       int    `json:"trace_len"`
	Deps           int    `json:"deps"`
	PrunedBypasses int    `json:"pruned_bypasses,omitempty"`
	Digest         string `json:"digest,omitempty"`
	// Prov is the provenance breakdown for slices over flight-recorder
	// pinballs (nil for ordinary full traces).
	Prov *slice.ProvSummary `json:"provenance,omitempty"`
}

// DualSliceResult is OpDualSlice's payload.
type DualSliceResult struct {
	OnlyFailing int `json:"only_failing"`
	OnlyPassing int `json:"only_passing"`
	Common      int `json:"common"`
}

// RecordResult is OpRecord's payload.
type RecordResult struct {
	Pinball      string `json:"pinball"`
	RegionInstrs int64  `json:"region_instrs"`
	Checkpoints  int    `json:"checkpoints"`
}

// HealthResult is OpHealth's payload: Live is process liveness (always
// true in an answer), Ready is readiness (false once draining).
type HealthResult struct {
	Live     bool   `json:"live"`
	Ready    bool   `json:"ready"`
	Status   string `json:"status"` // "ok" or "draining"
	Active   int    `json:"active"`
	Queued   int    `json:"queued"`
	UptimeMS int64  `json:"uptime_ms"`
}

// BreakerState is one pinball circuit's live state in StatsResult:
// the content key (hex), whether the circuit is open, the consecutive
// failure count, the cached failure code, and — while open — the
// cooldown deadline in Unix milliseconds.
type BreakerState struct {
	Pinball         string `json:"pinball"`
	Open            bool   `json:"open"`
	Consecutive     int    `json:"consecutive"`
	LastCode        string `json:"last_code,omitempty"`
	CooldownUntilMS int64  `json:"cooldown_until_ms,omitempty"`
}

// StatsResult is OpStats's payload. Active/Queued expose the admission
// pool's instantaneous load (queue depth is what a shedding fleet needs
// to debug), Breakers the per-pinball circuit states with cooldown
// deadlines.
type StatsResult struct {
	Received      int64          `json:"received"`
	Accepted      int64          `json:"accepted"`
	Rejected      int64          `json:"rejected"`
	Completed     int64          `json:"completed"`
	Failed        int64          `json:"failed"`
	Active        int            `json:"active"`
	Queued        int            `json:"queued"`
	BreakersOpen  int            `json:"breakers_open"`
	Breakers      []BreakerState `json:"breakers,omitempty"`
	EngineEntries int            `json:"engine_cache_entries"`
	EngineCap     int            `json:"engine_cache_cap"`
	GraphEntries  int            `json:"graph_cache_entries"`
	GraphCap      int            `json:"graph_cache_cap"`
}

// RegisterResult is OpRegister's payload: the coordinator's accepted
// view of the worker plus the heartbeat cadence it expects.
type RegisterResult struct {
	Worker      string `json:"worker"`
	Proto       int    `json:"proto"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
}

// HeartbeatResult is OpHeartbeat's payload. Known is false when the
// coordinator has no registration for the worker (it was declared dead,
// or the coordinator restarted) — the worker must re-register.
type HeartbeatResult struct {
	Known bool `json:"known"`
}

// ShardTask is one unit of distributed work: a slice_shard request to
// execute locally, identified for result matching and re-dispatch
// accounting.
type ShardTask struct {
	ID  string   `json:"id"`
	Req *Request `json:"req"`
}

// TaskResult answers OpSteal and OpFetch: the next task to run, or nil
// when the queue is empty.
type TaskResult struct {
	Task *ShardTask `json:"task,omitempty"`
}

// ShardResult is OpSliceShard's payload: the successor query state,
// plus the final summary fields once Done.
type ShardResult struct {
	Done     bool            `json:"done"`
	Bound    int             `json:"bound"`
	State    json.RawMessage `json:"state"`
	Members  int             `json:"members,omitempty"`
	TraceLen int             `json:"trace_len,omitempty"`
	Deps     int64           `json:"deps,omitempty"`
	Pruned   int64           `json:"pruned,omitempty"`
	Digest   string          `json:"digest,omitempty"`
	// Prov is the member-level provenance breakdown when the sliced
	// recording was gapped (flight-recorder mode); nil otherwise.
	Prov *slice.ProvSummary `json:"provenance,omitempty"`
}

// StorePutResult is OpStorePut's payload. Replicas lists the workers
// that acknowledged the object when the put went through a coordinator
// (the rendezvous owner first, then best-effort successors).
type StorePutResult struct {
	Digest    string   `json:"digest"`
	Size      int64    `json:"size"`
	Chunks    int      `json:"chunks"`
	NewChunks int      `json:"new_chunks"`
	Existed   bool     `json:"existed,omitempty"`
	Replicas  []string `json:"replicas,omitempty"`
}

// StoreFetchResult is OpStoreFetch's payload: the validated file bytes.
// Healed reports that the serving daemon had to repair its copy first.
type StoreFetchResult struct {
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
	Blob   []byte `json:"blob"`
	Healed bool   `json:"healed,omitempty"`
}

// StoreStatResult is OpStoreStat's payload: the store entry's metadata.
type StoreStatResult struct {
	Digest    string `json:"digest"`
	Size      int64  `json:"size"`
	Chunks    int    `json:"chunks"`
	Program   string `json:"program,omitempty"`
	Kind      string `json:"kind,omitempty"`
	AddedUnix int64  `json:"added_unix"`
	TouchUnix int64  `json:"touch_unix"`
	Pinned    bool   `json:"pinned"`
	Leased    bool   `json:"leased"`
}

// StoreLocateResult is OpStoreLocate's payload. From a coordinator,
// Addrs lists the live workers rendezvous-ranked to hold the digest
// (owner first) — the re-fetch candidates. From a worker, Holds reports
// whether its local store has a live entry for the digest.
type StoreLocateResult struct {
	Digest string   `json:"digest"`
	Addrs  []string `json:"addrs,omitempty"`
	Holds  bool     `json:"holds,omitempty"`
}

// encode marshals a result payload; a marshal failure becomes an
// internal error response (it cannot happen for the types above).
func encode(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		return json.RawMessage(`{}`)
	}
	return data
}
