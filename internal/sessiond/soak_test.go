package sessiond

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/supervisor"

	drdebug "repro"
)

// soakFixture is the pinball population the chaos soak replays: two
// healthy recordings (one absorbs the injected panics/stalls, one backs
// the slice traffic), byte-corrupted files, a semantically tampered
// recording that loads but diverges, and a salvageable torn journal.
type soakFixture struct {
	src      string
	chaosPB  string // healthy; replay ops draw injected faults against it
	cleanPB  string // healthy; slice/dualslice target
	garbage  string
	flipped  string // bit-flipped payload: typed corrupt
	halved   string // truncated: typed corrupt/truncated
	tampered string // shifted schedule: loads, then diverges (or degrades)
	torn     string // salvageable journal prefix
	breakPB  string // reserved for the deterministic breaker phase
}

func makeSoakFixture(t testing.TB) *soakFixture {
	t.Helper()
	dir := t.TempDir()
	f := &soakFixture{
		src:      filepath.Join(dir, "soak.c"),
		chaosPB:  filepath.Join(dir, "chaos.pinball"),
		cleanPB:  filepath.Join(dir, "clean.pinball"),
		garbage:  filepath.Join(dir, "garbage.pinball"),
		flipped:  filepath.Join(dir, "flipped.pinball"),
		halved:   filepath.Join(dir, "halved.pinball"),
		tampered: filepath.Join(dir, "tampered.pinball"),
		torn:     filepath.Join(dir, "torn.pinball"),
		breakPB:  filepath.Join(dir, "breaker.pinball"),
	}
	if err := os.WriteFile(f.src, []byte(daemonSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := drdebug.CompileFile(f.src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i + 1)
	}
	record := func(seed int64, journal string) (*drdebug.Pinball, []byte) {
		cfg := pinplay.LogConfig{
			Seed: seed, MeanQuantum: 13, Input: input, CheckpointEvery: 8,
			JournalPath:   journal,
			JournalEvery:  64,
			JournalNoSync: true,
		}
		pb, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
		if err != nil {
			t.Fatalf("log seed %d: %v", seed, err)
		}
		data, err := os.ReadFile(journal)
		if err != nil {
			t.Fatal(err)
		}
		return pb, data
	}
	chaos, chaosBytes := record(11, filepath.Join(dir, "chaos.journal"))
	clean, _ := record(23, filepath.Join(dir, "clean.journal"))
	if err := chaos.Save(f.chaosPB); err != nil {
		t.Fatal(err)
	}
	if err := clean.Save(f.cleanPB); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(f.garbage, []byte("soak garbage, no pinball here"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f.breakPB, []byte("soak breaker bait, also not a pinball"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Byte-level corruption via the faultinject suite.
	framed, err := os.ReadFile(f.chaosPB)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for _, fc := range faultinject.FileCorruptors() {
		var path string
		switch fc.Name {
		case "flip-payload-bit":
			path = f.flipped
		case "truncate-half":
			path = f.halved
		default:
			continue
		}
		out, ok := fc.Apply(framed)
		if !ok {
			t.Fatalf("corruptor %s does not apply", fc.Name)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		applied++
	}
	if applied != 2 {
		t.Fatalf("applied %d file corruptors, want 2", applied)
	}

	// Semantic tampering: loads cleanly, diverges at replay.
	tampered := false
	for _, pc := range faultinject.PinballCorruptors() {
		if pc.Name != "shift-quantum-boundary" {
			continue
		}
		cp, err := faultinject.Clone(chaos)
		if err != nil {
			t.Fatal(err)
		}
		if !pc.Apply(cp) {
			t.Fatalf("corruptor %s does not apply", pc.Name)
		}
		if err := cp.Save(f.tampered); err != nil {
			t.Fatal(err)
		}
		tampered = true
	}
	if !tampered {
		t.Fatal("shift-quantum-boundary corruptor not found")
	}

	// Torn journal: the salvage path's soak diet.
	secs, err := drdebug.LoadPinball(f.chaosPB) // sanity: healthy file loads
	if err != nil || secs == nil {
		t.Fatalf("healthy pinball does not load: %v", err)
	}
	cut := len(chaosBytes) * 3 / 4
	if err := os.WriteFile(f.torn, chaosBytes[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

// typedCodes is every code a soak response may legally carry.
var typedCodes = map[string]bool{
	"":              true, // clean OK
	CodeSalvaged:    true,
	CodeDegraded:    true,
	CodeOverload:    true,
	CodeQuota:       true,
	CodeCircuitOpen: true,
	CodeDraining:    true,
	CodeBadRequest:  true,
	CodeCorrupt:     true,
	CodeDivergence:  true,
	CodeLimit:       true,
	CodeTimeout:     true,
	CodePanic:       true,
	CodeInternal:    true,
}

// soakMix builds the request rotation one client cycles through.
func soakMix(f *soakFixture) []*Request {
	return []*Request{
		{Op: OpReplay, File: f.src, Pinball: f.chaosPB},                            // healthy, draws chaos
		{Op: OpSlice, File: f.src, Pinball: f.cleanPB, Var: "counter", Workers: 2}, // engine-cache traffic
		{Op: OpReplay, File: f.src, Pinball: f.garbage},                            // corrupt → breaker food
		{Op: OpReplay, File: f.src, Pinball: f.flipped},                            // corrupt
		{Op: OpReplay, File: f.src, Pinball: f.tampered},                           // divergence or degraded
		{Op: OpReplay, File: f.src, Pinball: f.cleanPB, Budget: 1 << 62},           // quota rejection
		{Op: OpReplay, File: f.src},                                                // bad request
		{Op: OpDualSlice, File: f.src, Pinball: f.cleanPB, PassingPinball: f.cleanPB, Var: "counter"},
		{Op: OpReplay, File: f.src, Pinball: f.torn, Salvage: true}, // salvage path
		{Op: OpReplay, File: f.src, Pinball: f.halved},              // corrupt
	}
}

// TestChaosSoak hammers one daemon from 32 concurrent clients with a
// mix of healthy, corrupted, tampered, torn, over-quota and malformed
// requests while panics and stalls are injected into replay sessions.
// The daemon must never crash or deadlock, every request must terminate
// in a typed response, the LRU caches must stay within their caps, the
// breaker must demonstrably short-circuit, and a SIGTERM-style drain
// must complete in time with zero lost in-flight results.
func TestChaosSoak(t *testing.T) {
	f := makeSoakFixture(t)

	const clients = 32
	reqsPerClient := 6
	if s := os.Getenv("DRDEBUG_SOAK_REQS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad DRDEBUG_SOAK_REQS=%q", s)
		}
		reqsPerClient = n
	} else if testing.Short() {
		reqsPerClient = 3
	}

	chaos := &faultinject.SessionChaos{
		PanicEveryN: 7,
		StallEveryN: 13,
		StallFor:    3 * time.Second, // beyond the watchdog: surfaces as timeout
	}
	srv, addr := startServer(t, Config{
		Admission: AdmissionConfig{MaxSessions: 4, MaxQueue: 8, MaxPerClient: 2},
		Breaker:   BreakerConfig{K: 3, Cooldown: 150 * time.Millisecond},
		Supervisor: supervisor.Options{
			MaxAttempts: 2,
			Backoff:     time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
			Jitter:      0.5,
			Watchdog:    time.Second,
		},
		EngineCacheCap: 4,
		GraphCacheCap:  64,
		DrainTimeout:   10 * time.Second,
		Chaos:          chaos.Tracer,
	})

	// Liveness monitor: health must keep answering (never queued) for
	// the whole soak.
	monitorStop := make(chan struct{})
	monitorDone := make(chan error, 1)
	go func() {
		c := dialT(t, addr)
		for {
			select {
			case <-monitorStop:
				monitorDone <- nil
				return
			case <-time.After(20 * time.Millisecond):
			}
			start := time.Now()
			resp := c.do(&Request{Op: OpHealth})
			if !resp.OK {
				monitorDone <- fmt.Errorf("health failed: %+v", resp)
				return
			}
			if d := time.Since(start); d > 5*time.Second {
				monitorDone <- fmt.Errorf("health took %v under load", d)
				return
			}
		}
	}()

	mix := soakMix(f)
	var wg sync.WaitGroup
	type outcome struct {
		client, req int
		resp        *Response
	}
	results := make(chan outcome, clients*reqsPerClient)
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dialT(t, addr)
			for i := 0; i < reqsPerClient; i++ {
				req := *mix[(cl+i)%len(mix)]
				req.ID = fmt.Sprintf("c%d-r%d", cl, i)
				req.Client = fmt.Sprintf("client-%d", cl)
				results <- outcome{cl, i, c.do(&req)}
			}
		}()
	}
	wg.Wait()
	close(results)
	close(monitorStop)
	if err := <-monitorDone; err != nil {
		t.Fatal(err)
	}

	// Every request terminated in a typed response.
	got := 0
	codeCounts := map[string]int{}
	for o := range results {
		got++
		code := o.resp.Code
		if !typedCodes[code] {
			t.Errorf("client %d req %d: untyped code %q (ok=%v err=%q)",
				o.client, o.req, code, o.resp.OK, o.resp.Error)
		}
		if !o.resp.OK && code == "" {
			t.Errorf("client %d req %d: failure without code: %q", o.client, o.req, o.resp.Error)
		}
		codeCounts[code]++
	}
	if want := clients * reqsPerClient; got != want {
		t.Fatalf("lost requests: %d responses, want %d", got, want)
	}
	t.Logf("soak outcomes: %v", codeCounts)

	// The corrupt population must have been detected as such (directly
	// or behind an already-open circuit).
	if codeCounts[CodeCorrupt]+codeCounts[CodeCircuitOpen] == 0 {
		t.Error("no corrupt/circuit_open outcomes despite corrupt pinballs in the mix")
	}

	// Memory stays bounded: the LRU caps held under concurrency.
	eng := slice.GetEngineCacheStats()
	if eng.Entries > 4 {
		t.Errorf("engine cache exceeded its cap: %d entries", eng.Entries)
	}
	var st StatsResult
	resp := dialT(t, addr).do(&Request{Op: OpStats})
	if err := json.Unmarshal(resp.Result, &st); err != nil {
		t.Fatal(err)
	}
	if st.EngineEntries > st.EngineCap || st.GraphEntries > st.GraphCap {
		t.Errorf("cache over cap: %+v", st)
	}
	if st.Accepted+st.Rejected == 0 {
		t.Errorf("stats counted nothing: %+v", st)
	}

	// Deterministic breaker phase: a fresh corrupt file nobody used in
	// the soak fails K times, then short-circuits.
	bc := dialT(t, addr)
	bad := &Request{Op: OpReplay, File: f.src, Pinball: f.breakPB}
	for i := 0; i < 3; i++ {
		if resp := bc.do(bad); resp.Code != CodeCorrupt {
			t.Fatalf("breaker warm-up %d: %+v", i, resp)
		}
	}
	if resp := bc.do(bad); resp.Code != CodeCircuitOpen {
		t.Fatalf("breaker did not short-circuit: %+v", resp)
	}

	// Drain phase: sessions in flight when the shutdown lands must all
	// come back — completed or typed as draining — with none lost.
	const drainers = 8
	statsOf := func(c *testClient) StatsResult {
		var st StatsResult
		resp := c.do(&Request{Op: OpStats})
		if err := json.Unmarshal(resp.Result, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	statsConn := dialT(t, addr)
	baseline := statsOf(statsConn).Received
	type drainOut struct {
		resp *Response
		err  error
	}
	drainResults := make(chan drainOut, drainers)
	var ready, fired sync.WaitGroup
	ready.Add(drainers)
	fired.Add(drainers)
	for i := 0; i < drainers; i++ {
		i := i
		go func() {
			c := dialT(t, addr)
			probe := c.do(&Request{Op: OpHealth}) // ensure the conn is accepted
			ready.Done()
			if !probe.OK {
				fired.Done()
				drainResults <- drainOut{err: fmt.Errorf("drainer %d probe: %+v", i, probe)}
				return
			}
			c.send(&Request{ID: fmt.Sprintf("drain-%d", i), Op: OpReplay, File: f.src, Pinball: f.cleanPB})
			fired.Done()
			drainResults <- drainOut{resp: c.recv()}
		}()
	}
	ready.Wait()
	fired.Wait()
	// Wait until the server has picked every drain request off the wire:
	// from that point each is guaranteed a response before its
	// connection closes.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if statsOf(statsConn).Received >= baseline+drainers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server picked up only %d of %d drain requests",
				statsOf(statsConn).Received-baseline, drainers)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	for i := 0; i < drainers; i++ {
		o := <-drainResults
		if o.err != nil {
			t.Fatal(o.err)
		}
		resp := o.resp
		switch {
		case resp.OK:
		case resp.Code == CodeDraining, resp.Code == CodeOverload,
			resp.Code == CodeTimeout, resp.Code == CodePanic, resp.Code == CodeLimit:
			// Shed, cancelled, or chaos-struck — but typed and delivered.
		default:
			t.Errorf("drainer response untyped: %+v", resp)
		}
	}
}
