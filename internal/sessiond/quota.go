package sessiond

import (
	"context"
	"fmt"
	"time"

	"repro/internal/vm"
)

// QuotaConfig is the server's per-session resource policy: defaults
// applied when a request asks for nothing, maxima a request must not
// exceed. Every session runs under some quota — a resident daemon never
// grants an unbounded execution.
type QuotaConfig struct {
	// DefaultBudget / MaxBudget bound the instruction budget
	// (defaults 2M / 32M).
	DefaultBudget int64
	MaxBudget     int64
	// DefaultDeadline / MaxDeadline bound the wall-clock deadline
	// (defaults 10s / 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DefaultPages / MaxPages bound resident memory in VM pages
	// (defaults 4096 / 65536).
	DefaultPages int
	MaxPages     int
}

func (q QuotaConfig) withDefaults() QuotaConfig {
	if q.DefaultBudget <= 0 {
		q.DefaultBudget = 2 << 20
	}
	if q.MaxBudget <= 0 {
		q.MaxBudget = 32 << 20
	}
	if q.DefaultDeadline <= 0 {
		q.DefaultDeadline = 10 * time.Second
	}
	if q.MaxDeadline <= 0 {
		q.MaxDeadline = time.Minute
	}
	if q.DefaultPages <= 0 {
		q.DefaultPages = 4096
	}
	if q.MaxPages <= 0 {
		q.MaxPages = 65536
	}
	// A configured maximum below the built-in default pulls the default
	// down with it — a request asking for nothing must always fit.
	if q.DefaultBudget > q.MaxBudget {
		q.DefaultBudget = q.MaxBudget
	}
	if q.DefaultDeadline > q.MaxDeadline {
		q.DefaultDeadline = q.MaxDeadline
	}
	if q.DefaultPages > q.MaxPages {
		q.DefaultPages = q.MaxPages
	}
	return q
}

// quotaError is a quota rejection; the server maps it to CodeQuota.
type quotaError struct{ msg string }

func (e *quotaError) Error() string { return "sessiond: quota: " + e.msg }

// resolve turns a request's asks into vm.Limits: zero asks take the
// server defaults, asks above the maxima are rejected, and ctx (the
// server's hard-cancel context) rides along so drain can preempt.
func (q QuotaConfig) resolve(req *Request, ctx context.Context) (vm.Limits, time.Duration, error) {
	budget, deadline, pages := req.Budget, time.Duration(req.DeadlineMS)*time.Millisecond, req.MaxPages
	if budget == 0 {
		budget = q.DefaultBudget
	}
	if deadline == 0 {
		deadline = q.DefaultDeadline
	}
	if pages == 0 {
		pages = q.DefaultPages
	}
	switch {
	case budget < 0 || budget > q.MaxBudget:
		return vm.Limits{}, 0, &quotaError{fmt.Sprintf("instruction budget %d exceeds maximum %d", budget, q.MaxBudget)}
	case deadline < 0 || deadline > q.MaxDeadline:
		return vm.Limits{}, 0, &quotaError{fmt.Sprintf("deadline %v exceeds maximum %v", deadline, q.MaxDeadline)}
	case pages < 0 || pages > q.MaxPages:
		return vm.Limits{}, 0, &quotaError{fmt.Sprintf("page cap %d exceeds maximum %d", pages, q.MaxPages)}
	}
	return vm.Limits{
		Steps:    budget,
		Deadline: time.Now().Add(deadline),
		MaxPages: pages,
		Ctx:      ctx,
	}, deadline, nil
}
