package sessiond

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/lru"
	"repro/internal/pinball"
	"repro/internal/store"
	"repro/internal/supervisor"
)

// Locator names the fleet peers that may hold a digest, ranked
// best-first (rendezvous owner, then successors) and excluding the
// asking daemon itself. A nil Locator (or an empty answer) means the
// daemon is on its own: healing stops at salvage.
type Locator interface {
	Locate(digest string) []string
}

// StoreRetry tunes the peer re-fetch ladder: how many peers a heal may
// try, the decorrelated-jitter backoff between sequential attempts, and
// when to hedge the first fetch with the rendezvous successor.
type StoreRetry struct {
	// Attempts bounds how many peer dials one heal may spend (default 3).
	Attempts int
	// Base/Max shape the decorrelated-jitter backoff between sequential
	// retry dials (defaults 25ms / 500ms).
	Base time.Duration
	Max  time.Duration
	// HedgeAfter launches a second fetch at the next-ranked peer when the
	// best one has not answered yet (default 400ms). First answer wins;
	// the loser's connection is closed.
	HedgeAfter time.Duration
	// DialTimeout / FetchTimeout bound one peer's connect and transfer
	// (defaults 2s / 30s).
	DialTimeout  time.Duration
	FetchTimeout time.Duration
}

func (r StoreRetry) withDefaults() StoreRetry {
	if r.Attempts <= 0 {
		r.Attempts = 3
	}
	if r.Base <= 0 {
		r.Base = 25 * time.Millisecond
	}
	if r.Max <= 0 {
		r.Max = 500 * time.Millisecond
	}
	if r.HedgeAfter <= 0 {
		r.HedgeAfter = 400 * time.Millisecond
	}
	if r.DialTimeout <= 0 {
		r.DialTimeout = 2 * time.Second
	}
	if r.FetchTimeout <= 0 {
		r.FetchTimeout = 30 * time.Second
	}
	return r
}

// errStoreUnavailable types store failures that are about availability,
// not content: the digest exists nowhere reachable, or no store is
// configured. It maps to CodeStoreUnavailable and does NOT open the
// digest's circuit (the pinball content is not at fault).
var errStoreUnavailable = errors.New("store unavailable")

// storeErrorCode maps a store-layer failure onto the wire protocol.
// Availability problems are CodeStoreUnavailable; content damage —
// corrupt or missing objects, digest mismatches, manifest damage — is
// CodeCorrupt, which is pinballAttributable and opens the digest's
// circuit exactly like a corrupt path-named pinball would.
func storeErrorCode(err error) string {
	var be *badRequestError
	switch {
	case errors.As(err, &be):
		return CodeBadRequest
	case errors.Is(err, errStoreUnavailable):
		return CodeStoreUnavailable
	case errors.Is(err, store.ErrNotFound):
		return CodeStoreUnavailable
	case errors.Is(err, store.ErrObjectCorrupt),
		errors.Is(err, store.ErrObjectMissing),
		errors.Is(err, store.ErrDigestMismatch),
		errors.Is(err, store.ErrManifestCorrupt),
		errors.Is(err, store.ErrManifestTorn),
		errors.Is(err, pinball.ErrNotPinball):
		return CodeCorrupt
	}
	return CodeInternal
}

// resolvedPinball is one digest's spooled materialization, the spool
// cache's value type. sticky marks content-level degradation (the spool
// holds salvaged bytes) that every user of the copy must surface;
// healed marks the one-time repair work whose annotation belongs only
// to the requests that waited for it.
type resolvedPinball struct {
	path   string
	sticky string // CodeSalvaged when the spool holds salvaged bytes, else ""
	healed bool   // the load repaired or re-fetched before materializing
}

// storeResolver turns a content digest into a server-local pinball path
// a session can load, healing as needed. The ladder, in order:
//
//  1. materialize the validated local copy to the spool;
//  2. on damage or absence: re-fetch the full file by digest from fleet
//     peers (bounded attempts, decorrelated-jitter backoff, hedged
//     fallback to the rendezvous successor), heal the local store with
//     the validated bytes, and materialize — annotated CodeHealed;
//  3. on unhealable damage: salvage the surviving local bytes
//     (quarantined copies included) into a degraded-but-loadable
//     pinball — annotated CodeSalvaged;
//  4. fail typed: CodeStoreUnavailable if nobody reachable holds the
//     digest, CodeCorrupt if the content itself is beyond recovery.
//
// Resolutions are cached in a single-flight LRU keyed by digest, so
// concurrent sessions on one digest share one materialization (and one
// heal), exactly like the engine cache shares hot slicers.
type storeResolver struct {
	st      *store.Store
	locator Locator
	retry   StoreRetry
	logf    func(format string, args ...any)
	// dial is swappable for tests; defaults to DialTimeout.
	dial func(addr string, d time.Duration) (*Client, error)
	// rnd is the backoff jitter source (nil = math/rand).
	rnd   func() float64
	spool *lru.Cache[string, resolvedPinball]
}

func newStoreResolver(st *store.Store, loc Locator, retry StoreRetry, spoolCap int, logf func(string, ...any)) *storeResolver {
	if spoolCap <= 0 {
		spoolCap = 64
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &storeResolver{
		st:      st,
		locator: loc,
		retry:   retry.withDefaults(),
		logf:    logf,
		dial:    DialTimeout,
		spool:   lru.New[string, resolvedPinball](spoolCap),
	}
}

// resolve materializes digest and leases it for the caller's session.
// It returns the spooled path, the degradation annotation the session's
// answer must carry ("" for a clean cache hit), and a release func that
// ends the GC lease — the caller must run it when the session finishes.
func (r *storeResolver) resolve(ctx context.Context, digest string) (path, ann string, release func(), err error) {
	if !store.ValidDigest(digest) {
		return "", "", nil, badRequest("bad digest %q", digest)
	}
	for attempt := 0; attempt < 2; attempt++ {
		v, fresh, lerr := r.lookup(ctx, digest)
		if lerr != nil {
			return "", "", nil, lerr
		}
		rel, aerr := r.st.Acquire(digest)
		if aerr != nil {
			// GC collected the entry between materialization and lease (or
			// another process healed the world out from under us). Drop the
			// cached resolution and rebuild once.
			r.spool.Remove(digest)
			if attempt == 0 {
				continue
			}
			return "", "", nil, aerr
		}
		// With the lease held GC can no longer touch the spool file; if it
		// vanished before we got here, rebuild.
		if _, serr := os.Stat(v.path); serr != nil {
			rel()
			r.spool.Remove(digest)
			continue
		}
		ann := v.sticky
		if fresh && v.healed && ann == "" {
			ann = CodeHealed
		}
		return v.path, ann, rel, nil
	}
	return "", "", nil, fmt.Errorf("%w: digest %s: could not stabilize a spooled copy against concurrent gc", errStoreUnavailable, digest)
}

// lookup returns the cached resolution for digest or builds one,
// reporting whether this caller participated in a fresh load (fresh
// loads carry the healed annotation; pure cache hits do not).
func (r *storeResolver) lookup(ctx context.Context, digest string) (resolvedPinball, bool, error) {
	if v, ok := r.spool.Get(digest); ok {
		if _, err := os.Stat(v.path); err == nil {
			return v, false, nil
		}
		// Spool file vanished (GC swept an expired lease's spool, or an
		// operator cleaned up): invalidate and rebuild below.
		r.spool.Remove(digest)
	}
	v, err := r.spool.GetOrLoadCtx(ctx, digest, func(ctx context.Context) (resolvedPinball, error) {
		return r.load(ctx, digest)
	})
	return v, true, err
}

// load runs the heal ladder for one digest (single-flight under the
// spool cache).
func (r *storeResolver) load(ctx context.Context, digest string) (resolvedPinball, error) {
	path, err := r.st.Materialize(digest)
	if err == nil {
		return resolvedPinball{path: path}, nil
	}

	if errors.Is(err, store.ErrNotFound) {
		// This daemon never held the digest: plain re-fetch from whoever
		// the fleet ranks for it, then store and materialize locally.
		data, ferr := r.fetchFromPeers(ctx, digest)
		if ferr != nil {
			return resolvedPinball{}, fmt.Errorf("%w: digest %s held by no reachable peer: %v", errStoreUnavailable, digest, ferr)
		}
		if _, perr := r.st.Put(data, store.PutMeta{Kind: "refetch"}); perr != nil {
			return resolvedPinball{}, fmt.Errorf("store re-fetched %s: %w", digest, perr)
		}
		path, merr := r.st.Materialize(digest)
		if merr != nil {
			return resolvedPinball{}, merr
		}
		return resolvedPinball{path: path, healed: true}, nil
	}

	// The local copy is damaged (corrupt or missing chunk, assembly
	// mismatch); the read already quarantined the bad object. Rung 2:
	// replace the whole file from a peer replica.
	r.logf("sessiond: store copy of %s damaged (%v); healing from peers", digest, err)
	if data, ferr := r.fetchFromPeers(ctx, digest); ferr == nil {
		if herr := r.st.Heal(digest, data); herr == nil {
			if path, merr := r.st.Materialize(digest); merr == nil {
				return resolvedPinball{path: path, healed: true}, nil
			}
		} else {
			r.logf("sessiond: heal of %s rejected: %v", digest, herr)
		}
	}

	// Rung 3: no peer could replace the bytes. Salvage whatever survives
	// locally (quarantined copies included) into a loadable pinball.
	if dmg, ok, _ := r.st.GetDamaged(digest); ok {
		if pb, _, serr := pinball.SalvageBytes(dmg); serr == nil {
			if out, eerr := pb.EncodeBytes(); eerr == nil {
				if spath, werr := r.st.SpoolSalvaged(digest, out); werr == nil {
					r.logf("sessiond: %s unhealable, serving salvaged bytes", digest)
					return resolvedPinball{path: spath, sticky: CodeSalvaged, healed: true}, nil
				}
			}
		}
	}

	// Rung 4: typed failure — the original corruption error, which the
	// server maps to CodeCorrupt and counts against the digest's circuit.
	return resolvedPinball{}, err
}

// fetchFromPeers downloads digest's validated bytes from the fleet.
// The first-ranked peer is dialed immediately; if it has not answered
// within HedgeAfter, the next-ranked peer (the rendezvous successor —
// where the replicated put landed) is raced against it. Failures move
// down the ranking with decorrelated-jitter backoff, bounded by
// Attempts total dials. The first validated answer wins; losers'
// connections are closed so their transfers stop.
func (r *storeResolver) fetchFromPeers(ctx context.Context, digest string) ([]byte, error) {
	var addrs []string
	if r.locator != nil {
		addrs = r.locator.Locate(digest)
	}
	if len(addrs) == 0 {
		return nil, errors.New("no fleet peer to fetch from")
	}
	if len(addrs) > r.retry.Attempts {
		addrs = addrs[:r.retry.Attempts]
	}

	type outcome struct {
		data []byte
		addr string
		err  error
	}
	results := make(chan outcome, len(addrs))
	var mu sync.Mutex
	var open []*Client
	aborted := false
	launch := func(addr string) {
		go func() {
			c, err := r.dial(addr, r.retry.DialTimeout)
			if err != nil {
				results <- outcome{nil, addr, err}
				return
			}
			mu.Lock()
			if aborted {
				mu.Unlock()
				c.Close()
				results <- outcome{nil, addr, errors.New("fetch aborted: another peer answered first")}
				return
			}
			open = append(open, c)
			mu.Unlock()
			defer c.Close()
			c.SetDeadline(time.Now().Add(r.retry.FetchTimeout))
			resp, err := c.Do(&Request{Op: OpStoreFetch, Digest: digest, StoreNoHeal: true, Proto: ProtoCurrent})
			if err != nil {
				results <- outcome{nil, addr, err}
				return
			}
			if !resp.OK {
				results <- outcome{nil, addr, fmt.Errorf("peer %s: %s: %s", addr, resp.Code, resp.Error)}
				return
			}
			var fr StoreFetchResult
			if err := json.Unmarshal(resp.Result, &fr); err != nil {
				results <- outcome{nil, addr, fmt.Errorf("peer %s: malformed fetch result: %v", addr, err)}
				return
			}
			// Validate before trusting: a peer's answer must hash to the
			// digest we asked for, or it is treated as one more failure.
			if got := store.Digest(fr.Blob); got != digest {
				results <- outcome{nil, addr, fmt.Errorf("peer %s returned bytes hashing to %s, want %s", addr, got, digest)}
				return
			}
			results <- outcome{fr.Blob, addr, nil}
		}()
	}
	abort := func() {
		mu.Lock()
		aborted = true
		cs := open
		open = nil
		mu.Unlock()
		for _, c := range cs {
			c.Close()
		}
	}

	launched := 1
	pending := 1
	launch(addrs[0])
	hedge := time.NewTimer(r.retry.HedgeAfter)
	defer hedge.Stop()
	var backoff time.Duration
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			abort()
			return nil, ctx.Err()
		case <-hedge.C:
			if launched < len(addrs) {
				r.logf("sessiond: hedging fetch of %s to %s", digest, addrs[launched])
				launch(addrs[launched])
				launched++
				pending++
			}
		case out := <-results:
			pending--
			if out.err == nil {
				abort()
				return out.data, nil
			}
			lastErr = out.err
			if launched < len(addrs) {
				backoff = supervisor.DecorrelatedJitter(backoff, r.retry.Base, r.retry.Max, r.rnd)
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					abort()
					return nil, ctx.Err()
				}
				launch(addrs[launched])
				launched++
				pending++
			} else if pending == 0 {
				return nil, fmt.Errorf("all %d peers failed, last: %w", launched, lastErr)
			}
		}
	}
}

// storeOp answers the four store ops against the daemon's local store.
// store_fetch from a peer healing itself (StoreNoHeal) serves local
// validated bytes only — peer-assisted healing happens exclusively in
// the session resolve path, so two daemons with damaged copies cannot
// recurse into each other forever.
func (s *Server) storeOp(req *Request) Response {
	if req.Proto < ProtoV2 {
		return Response{ID: req.ID, OK: false, Code: CodeBadRequest,
			Error: fmt.Sprintf("sessiond: bad request: store ops require proto >= %d", ProtoV2)}
	}
	if s.resolver == nil {
		return Response{ID: req.ID, OK: false, Code: CodeStoreUnavailable,
			Error: "no store configured on this daemon (start with -store)"}
	}
	st := s.resolver.st
	switch req.Op {
	case OpStorePut:
		if len(req.Blob) == 0 {
			return Response{ID: req.ID, OK: false, Code: CodeBadRequest, Error: "sessiond: bad request: store_put needs blob"}
		}
		res, err := st.Put(req.Blob, store.PutMeta{Program: req.StoreProgram, Kind: req.StoreKind})
		if err != nil {
			return s.storeFailure(req, err)
		}
		return Response{ID: req.ID, OK: true, Result: encode(StorePutResult{
			Digest: res.Digest, Size: res.Size, Chunks: res.Chunks,
			NewChunks: res.NewChunks, Existed: res.Existed,
		})}
	case OpStoreFetch:
		digest, err := s.resolveDigestArg(req.Digest)
		if err != nil {
			return s.storeFailure(req, err)
		}
		data, err := st.Get(digest)
		healed := false
		if err != nil && !req.StoreNoHeal && !errors.Is(err, store.ErrNotFound) {
			// Our copy is damaged: heal from peers before serving, so a
			// client fetch repairs the replica as a side effect.
			if hdata, herr := s.resolver.fetchFromPeers(s.hardCtx, digest); herr == nil {
				if st.Heal(digest, hdata) == nil {
					if d2, gerr := st.Get(digest); gerr == nil {
						data, err, healed = d2, nil, true
					}
				}
			}
		}
		if err != nil {
			return s.storeFailure(req, err)
		}
		resp := Response{ID: req.ID, OK: true, Result: encode(StoreFetchResult{
			Digest: digest, Size: int64(len(data)), Blob: data, Healed: healed,
		})}
		if healed {
			resp.Code = CodeHealed
		}
		return resp
	case OpStoreStat:
		digest, err := s.resolveDigestArg(req.Digest)
		if err != nil {
			return s.storeFailure(req, err)
		}
		info, err := st.Stat(digest)
		if err != nil {
			return s.storeFailure(req, err)
		}
		return Response{ID: req.ID, OK: true, Result: encode(StoreStatResult{
			Digest: info.Digest, Size: info.Size, Chunks: info.Chunks,
			Program: info.Program, Kind: info.Kind,
			AddedUnix: info.AddedUnix, TouchUnix: info.TouchUnix,
			Pinned: info.Pinned, Leased: info.Leased,
		})}
	case OpStoreLocate:
		// Worker-side answer: does the local store hold a live entry?
		// (The coordinator intercepts locate and answers with its
		// fleet-wide ranking instead.)
		if !store.ValidDigest(req.Digest) {
			return s.storeFailure(req, badRequest("bad digest %q", req.Digest))
		}
		_, err := st.Stat(req.Digest)
		return Response{ID: req.ID, OK: true, Result: encode(StoreLocateResult{
			Digest: req.Digest, Holds: err == nil,
		})}
	}
	return Response{ID: req.ID, OK: false, Code: CodeBadRequest, Error: "sessiond: bad request: unknown store op"}
}

// resolveDigestArg accepts a full digest or a unique prefix (local
// store ops only — the convenience the CLI leans on).
func (s *Server) resolveDigestArg(arg string) (string, error) {
	if store.ValidDigest(arg) {
		return arg, nil
	}
	if arg == "" {
		return "", badRequest("need digest")
	}
	return s.resolver.st.Resolve(arg)
}

// storeFailure types a store-layer error into a response.
func (s *Server) storeFailure(req *Request, err error) Response {
	return Response{ID: req.ID, OK: false, Code: storeErrorCode(err), Error: err.Error()}
}
