package sessiond

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client talks the line-JSON protocol to a sessiond (or fleet
// coordinator/worker) instance: one request per line out, one response
// per line back, in order. It is not safe for concurrent use; open one
// client per goroutine — the daemon multiplexes across connections, not
// within one. It is shared by the cmd-layer CLI client and the fleet's
// coordinator/worker links, so every hop of the fleet speaks exactly
// the protocol a human client would.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// Dial connects with a default 5s timeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout is Dial with an explicit connect timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("dial sessiond at %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
}

// Do sends one request and reads its response. A transport failure
// (broken connection, malformed response) is returned as an error; a
// server-side failure arrives as a response with OK false and a typed
// Code, which is not an error here — callers decide what a typed
// failure means.
func (c *Client) Do(req *Request) (*Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("send request: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("read response: %w", err)
		}
		return nil, fmt.Errorf("read response: connection closed by server")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("malformed response: %w", err)
	}
	return &resp, nil
}

// SetDeadline bounds the next Do's network I/O; the zero time clears
// it. The fleet uses per-hop deadlines to turn a stalled peer into a
// typed transport error instead of a hang.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
