package sessiond

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Admission errors. All are terminal for the request that hit them —
// the server maps them to typed response codes, never blocks past the
// bounded queue.
var (
	// ErrOverload: the session pool is busy and the FIFO wait queue is
	// full — the server sheds the request instead of queueing further.
	ErrOverload = errors.New("sessiond: overloaded, session pool and wait queue full")
	// ErrClientOverload: this client already has its maximum number of
	// sessions running or queued.
	ErrClientOverload = errors.New("sessiond: per-client session cap reached")
	// ErrDraining: the server is shutting down and admits nothing new;
	// queued-but-unstarted requests are also failed with this.
	ErrDraining = errors.New("sessiond: draining, not admitting new sessions")
)

// AdmissionConfig bounds the session pool.
type AdmissionConfig struct {
	// MaxSessions is the number of concurrently running sessions
	// (default 4).
	MaxSessions int
	// MaxQueue bounds the FIFO wait queue behind the pool; a request
	// arriving to a full pool and full queue is rejected with
	// ErrOverload (default 16, negative = no queue).
	MaxQueue int
	// MaxPerClient caps one client's running+queued sessions, so a
	// single flooding client cannot own the whole queue (default
	// MaxSessions, i.e. one client can fill the pool but not the queue
	// on top).
	MaxPerClient int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = c.MaxSessions
	}
	return c
}

// waiter is one queued admission request.
type waiter struct {
	ch     chan error // receives nil on grant, ErrDraining on drain
	client string
}

// admission is the bounded session pool: running count, FIFO waiters,
// per-client accounting.
type admission struct {
	cfg AdmissionConfig

	mu        sync.Mutex
	running   int
	queue     []*waiter
	perClient map[string]int // running + queued, per client
	draining  bool
	idle      chan struct{} // closed & re-made; signaled when running hits 0
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{cfg: cfg.withDefaults(), perClient: make(map[string]int)}
}

// acquire blocks until a session slot is granted, FIFO behind earlier
// waiters, or fails with ErrOverload / ErrClientOverload / ErrDraining /
// ctx.Err(). On success the caller owns one slot and must call release
// exactly once.
func (a *admission) acquire(ctx context.Context, client string) error {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return ErrDraining
	}
	if a.perClient[client] >= a.cfg.MaxPerClient {
		a.mu.Unlock()
		return fmt.Errorf("%w (%d for %q)", ErrClientOverload, a.cfg.MaxPerClient, client)
	}
	if a.running < a.cfg.MaxSessions && len(a.queue) == 0 {
		a.running++
		a.perClient[client]++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.cfg.MaxQueue {
		a.mu.Unlock()
		return fmt.Errorf("%w (%d running, %d queued)", ErrOverload, a.cfg.MaxSessions, a.cfg.MaxQueue)
	}
	w := &waiter{ch: make(chan error, 1), client: client}
	a.queue = append(a.queue, w)
	a.perClient[client]++
	a.mu.Unlock()

	if ctx == nil {
		return <-w.ch
	}
	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		a.abandon(w)
		return ctx.Err()
	}
}

// abandon removes a context-cancelled waiter; if the grant raced the
// cancellation, the granted slot is passed on instead.
func (a *admission) abandon(w *waiter) {
	a.mu.Lock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.decClient(w.client)
			a.mu.Unlock()
			return
		}
	}
	a.mu.Unlock()
	// Not queued anymore: a grant or drain signal is in the channel.
	if err := <-w.ch; err == nil {
		a.release(w.client)
	}
}

// decClient drops a client's accounting entry, deleting zeros so the
// map does not grow one key per client ever seen.
func (a *admission) decClient(client string) {
	if n := a.perClient[client] - 1; n > 0 {
		a.perClient[client] = n
	} else {
		delete(a.perClient, client)
	}
}

// release returns a slot, handing it to the eldest waiter if any.
func (a *admission) release(client string) {
	a.mu.Lock()
	a.decClient(client)
	if len(a.queue) > 0 && !a.draining {
		// Transfer the slot: running count is unchanged, the waiter's
		// per-client count was taken at enqueue time.
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()
		w.ch <- nil
		return
	}
	a.running--
	if a.running == 0 && a.idle != nil {
		close(a.idle)
		a.idle = nil
	}
	a.mu.Unlock()
}

// drain stops admission: new acquires fail with ErrDraining and every
// queued waiter is failed with ErrDraining immediately (queued sessions
// never started, so failing them loses no results). Running sessions
// are untouched; awaitIdle waits for them.
func (a *admission) drain() {
	a.mu.Lock()
	a.draining = true
	queued := a.queue
	a.queue = nil
	for _, w := range queued {
		a.decClient(w.client)
	}
	a.mu.Unlock()
	for _, w := range queued {
		w.ch <- ErrDraining
	}
}

// awaitIdle returns a channel closed when no session is running (and
// immediately-closed if already idle).
func (a *admission) awaitIdle() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	ch := make(chan struct{})
	if a.running == 0 {
		close(ch)
		return ch
	}
	if a.idle == nil {
		a.idle = ch
	} else {
		ch = a.idle
	}
	return ch
}

// load reports the current (running, queued) counts.
func (a *admission) load() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, len(a.queue)
}
