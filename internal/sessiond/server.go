package sessiond

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"
	"time"

	cfgpkg "repro/internal/cfg"
	"repro/internal/slice"
	"repro/internal/store"
	"repro/internal/supervisor"
	"repro/internal/vm"
)

// Config assembles the server's robustness policy.
type Config struct {
	// Admission bounds the session pool and wait queue.
	Admission AdmissionConfig
	// Quota is the per-session resource policy.
	Quota QuotaConfig
	// Breaker tunes the per-pinball circuit breaker.
	Breaker BreakerConfig
	// Supervisor is the retry/backoff/watchdog policy sessions run
	// under. A zero Watchdog is derived per request from the session's
	// wall-clock quota, so a hung session is always preempted.
	Supervisor supervisor.Options
	// DrainTimeout bounds the graceful part of Shutdown: how long
	// in-flight sessions may finish before they are cancelled
	// (default 10s).
	DrainTimeout time.Duration
	// EngineCacheCap / GraphCacheCap resize the process-lifetime LRU
	// caches at construction (0 = leave the current caps).
	EngineCacheCap int
	GraphCacheCap  int
	// Store, when set, serves the store ops and lets sessions name
	// pinballs by content digest; nil daemons reject both with
	// CodeStoreUnavailable.
	Store *store.Store
	// Locator names fleet peers for digest re-fetch during healing
	// (nil = no peers; healing stops at salvage).
	Locator Locator
	// StoreRetry tunes the peer re-fetch ladder (zero = defaults).
	StoreRetry StoreRetry
	// SpoolCacheCap bounds the digest→spool-path resolution cache
	// (0 = 64).
	SpoolCacheCap int
	// Logf logs server events (nil = silent).
	Logf func(format string, args ...any)
	// Chaos, when set, supplies a fault-injection observer for replaying
	// ops — the chaos-soak tests' hook. nil in production.
	Chaos func(op string) vm.Tracer
}

func (c Config) withDefaults() Config {
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the sessiond instance: one per process, serving line-JSON
// requests over any number of TCP connections.
type Server struct {
	cfg      Config
	quota    QuotaConfig
	adm      *admission
	brk      *breaker
	resolver *storeResolver // nil when no store is configured
	start    time.Time

	// hardCtx cancels every in-flight session when the drain deadline
	// expires; it rides into vm.Limits.Ctx.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	received  atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	draining  atomic.Bool

	// inflight counts requests between line-read and response-written;
	// Shutdown waits for it to reach zero before closing connections, so
	// a drain never cuts off a response already being produced.
	inflight atomic.Int64

	mu    sync.Mutex
	lis   net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// New builds a server from the config and applies the cache caps.
func New(c Config) *Server {
	c = c.withDefaults()
	if c.EngineCacheCap > 0 {
		slice.SetEngineCacheCap(c.EngineCacheCap)
	}
	if c.GraphCacheCap > 0 {
		cfgpkg.SetGraphCacheCap(c.GraphCacheCap)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        c,
		quota:      c.Quota.withDefaults(),
		adm:        newAdmission(c.Admission),
		brk:        newBreaker(c.Breaker, nil),
		start:      time.Now(),
		hardCtx:    ctx,
		hardCancel: cancel,
		conns:      make(map[net.Conn]struct{}),
	}
	if c.Store != nil {
		s.resolver = newStoreResolver(c.Store, c.Locator, c.StoreRetry, c.SpoolCacheCap, c.Logf)
	}
	return s
}

// Serve accepts connections on lis until Shutdown closes it. It returns
// nil on a clean shutdown and the accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			// Raced a drain: the listener is about to close; refuse.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// handleConn answers one connection's requests in order, one JSON
// object per line each way.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	enc := json.NewEncoder(conn)
	send := func(resp Response) {
		if err := enc.Encode(&resp); err != nil {
			s.cfg.Logf("sessiond: write to %s: %v", conn.RemoteAddr(), err)
		}
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		s.inflight.Add(1)
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			send(Response{OK: false, Code: CodeBadRequest, Error: "malformed request: " + err.Error()})
		} else {
			s.dispatch(&req, conn.RemoteAddr().String(), send)
		}
		s.inflight.Add(-1)
	}
}

// dispatch runs one request through the full admission pipeline and
// sends its response. Every path terminates in a typed response, and a
// session's response is written before its pool slot is released — so
// once the pool is idle during a drain, every admitted result is on the
// wire and none is lost.
func (s *Server) dispatch(req *Request, remote string, send func(Response)) {
	switch req.Op {
	case OpHealth:
		send(s.health(req))
		return
	case OpStats:
		send(s.stats(req))
		return
	}

	s.received.Add(1)
	client := req.Client
	if client == "" {
		client = remote
	}

	// Store ops answer directly from the local store — bounded I/O, no
	// session slot, no breaker (a fetch of a corrupt object heals or
	// fails typed; it is not a session failure against the content).
	switch req.Op {
	case OpStorePut, OpStoreFetch, OpStoreStat, OpStoreLocate:
		resp := s.storeOp(req)
		if resp.OK {
			s.completed.Add(1)
		} else {
			s.failed.Add(1)
		}
		send(resp)
		return
	}

	// Circuit breaker first: a known-bad pinball fails fast without
	// consuming a session slot.
	key := breakerKey(req)
	if open, code, msg := s.brk.check(key); open {
		s.rejected.Add(1)
		send(Response{ID: req.ID, OK: false, Code: CodeCircuitOpen,
			Error: "circuit open for this pinball (last failure " + code + ": " + msg + ")"})
		return
	}

	// Quota resolution before admission: an impossible ask should not
	// occupy a queue slot.
	limits, deadline, err := s.quota.resolve(req, s.hardCtx)
	if err != nil {
		s.rejected.Add(1)
		send(s.failure(req, err, nil))
		return
	}

	// Admission: bounded pool, FIFO queue, per-client caps.
	if err := s.adm.acquire(s.hardCtx, client); err != nil {
		s.rejected.Add(1)
		send(s.failure(req, err, nil))
		return
	}
	defer s.adm.release(client)
	s.accepted.Add(1)

	// Resolve a digest-named pinball through the store before the
	// session runs: materialize (healing from peers as needed) and lease
	// the entry so GC cannot collect it while the session is live. Any
	// degradation the resolution incurred annotates the final answer.
	var resolveAnn string
	if req.Digest != "" && req.Op != OpRecord {
		if s.resolver == nil {
			s.failed.Add(1)
			send(Response{ID: req.ID, OK: false, Code: CodeStoreUnavailable,
				Error: "request names a digest but this daemon has no store (start with -store)"})
			return
		}
		if req.Pinball != "" {
			s.failed.Add(1)
			send(Response{ID: req.ID, OK: false, Code: CodeBadRequest,
				Error: "sessiond: bad request: pinball and digest are mutually exclusive"})
			return
		}
		path, ann, release, rerr := s.resolver.resolve(s.hardCtx, req.Digest)
		if rerr != nil {
			s.failed.Add(1)
			code := storeErrorCode(rerr)
			if pinballAttributable(code) {
				s.brk.failure(key, code, rerr.Error())
			}
			send(Response{ID: req.ID, OK: false, Code: code, Error: rerr.Error()})
			return
		}
		defer release()
		clone := *req
		clone.Pinball = path
		req = &clone
		resolveAnn = ann
	}

	sup := s.cfg.Supervisor
	if sup.Watchdog == 0 {
		// The watchdog backstops the vm deadline: it must outlast it, so
		// limit-bounded sessions fail as "limit", and only a session hung
		// outside the VM's stepping loop trips the watchdog.
		sup.Watchdog = deadline + 2*time.Second
	}
	if sup.RetryBudget == 0 {
		// Retries share the session's wall-clock allowance: however many
		// attempts the policy permits, their total (attempts plus backoff
		// sleeps) may not exceed twice the watchdog window, so a retrying
		// session can never outlive the quota deadline by more than one
		// extra attempt.
		sup.RetryBudget = 2 * sup.Watchdog
	}
	r := &runner{sup: sup, chaos: s.cfg.Chaos}
	res, err := r.run(req, limits)
	if err != nil {
		s.failed.Add(1)
		code := errorCode(err)
		if pinballAttributable(code) {
			s.brk.failure(key, code, err.Error())
		}
		var rep *supervisor.Report
		if res != nil {
			rep = res.report
		}
		send(s.failure(req, err, rep))
		return
	}
	s.completed.Add(1)
	s.brk.success(key)
	// The session's own degradation annotation wins; otherwise surface
	// what the store resolution had to do (healed / salvaged).
	ann := res.annotation
	if ann == "" {
		ann = resolveAnn
	}
	send(Response{ID: req.ID, OK: true, Code: ann, Result: res.result, Report: res.report})
}

// failure types an error into a response.
func (s *Server) failure(req *Request, err error, rep *supervisor.Report) Response {
	return Response{ID: req.ID, OK: false, Code: errorCode(err), Error: err.Error(), Report: rep}
}

func (s *Server) health(req *Request) Response {
	running, queued := s.adm.load()
	draining := s.draining.Load()
	status := "ok"
	if draining {
		status = "draining"
	}
	return Response{ID: req.ID, OK: true, Result: encode(HealthResult{
		Live:     true,
		Ready:    !draining,
		Status:   status,
		Active:   running,
		Queued:   queued,
		UptimeMS: time.Since(s.start).Milliseconds(),
	})}
}

func (s *Server) stats(req *Request) Response {
	eng := slice.GetEngineCacheStats()
	gph := cfgpkg.GraphCacheStats()
	running, queued := s.adm.load()
	return Response{ID: req.ID, OK: true, Result: encode(StatsResult{
		Received:      s.received.Load(),
		Accepted:      s.accepted.Load(),
		Rejected:      s.rejected.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Active:        running,
		Queued:        queued,
		BreakersOpen:  s.brk.openCount(),
		Breakers:      s.brk.snapshot(),
		EngineEntries: eng.Entries,
		EngineCap:     slice.EngineCacheCap(),
		GraphEntries:  gph.Entries,
		GraphCap:      cfgpkg.GraphCacheCap(),
	})}
}

// Execute runs one request through the same pipeline dispatch uses and
// returns its response instead of writing it to a connection. It is the
// in-process entry the fleet worker agent uses for stolen tasks: the
// request still counts against admission, quotas, breakers and drain
// accounting, so a drain waits for stolen work exactly as it waits for
// connection-delivered work.
func (s *Server) Execute(req *Request, client string) Response {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	var out Response
	s.dispatch(req, client, func(resp Response) { out = resp })
	return out
}

// Load reports the admission pool's instantaneous running and queued
// session counts — what a fleet worker advertises in its heartbeats.
func (s *Server) Load() (running, queued int) { return s.adm.load() }

// Shutdown drains the server gracefully: stop admitting (queued waiters
// fail with ErrDraining, new requests get CodeDraining), let in-flight
// sessions finish within DrainTimeout, then cancel stragglers through
// the hard context, and finally close every connection. In-flight
// sessions that finish within the drain window deliver their responses
// — a drain loses no completed work. Returns nil when the server went
// idle, or ctx.Err() if ctx expired first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.adm.drain()
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	s.mu.Unlock()

	graceful := time.NewTimer(s.cfg.DrainTimeout)
	defer graceful.Stop()
	select {
	case <-s.adm.awaitIdle():
		s.cfg.Logf("sessiond: drained cleanly")
	case <-graceful.C:
		s.cfg.Logf("sessiond: drain deadline expired, cancelling in-flight sessions")
		s.hardCancel()
		select {
		case <-s.adm.awaitIdle():
		case <-ctx.Done():
			return ctx.Err()
		}
	case <-ctx.Done():
		s.hardCancel()
		return ctx.Err()
	}

	// Idle, but a handler may still be writing a response the pool no
	// longer accounts for (a rejection, or the final bytes of a
	// completed session). Wait those writes out before closing anything;
	// late arrivals during this phase are fast typed rejections, so the
	// counter converges.
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			s.hardCancel()
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}

	s.hardCancel()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
