package sessiond

import (
	"encoding/json"
	"errors"
	"fmt"

	drdebug "repro"
	"repro/internal/core"
	"repro/internal/slice"
	"repro/internal/supervisor"
	"repro/internal/tracer"
	"repro/internal/vm"
)

// badRequestError is a malformed-request rejection; the server maps it
// to CodeBadRequest.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return "sessiond: bad request: " + e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{fmt.Sprintf(format, args...)}
}

// kindToCode maps the supervisor's failure classification onto the wire
// protocol's typed codes.
func kindToCode(k supervisor.Kind) string {
	switch k {
	case supervisor.KindPanic:
		return CodePanic
	case supervisor.KindTimeout:
		return CodeTimeout
	case supervisor.KindDivergence:
		return CodeDivergence
	case supervisor.KindCorrupt:
		return CodeCorrupt
	case supervisor.KindLimit:
		return CodeLimit
	}
	return CodeInternal
}

// errorCode types an arbitrary session failure for the wire.
func errorCode(err error) string {
	var qe *quotaError
	var be *badRequestError
	var se *supervisor.SessionError
	switch {
	case errors.As(err, &qe):
		return CodeQuota
	case errors.As(err, &be):
		return CodeBadRequest
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrOverload), errors.Is(err, ErrClientOverload):
		return CodeOverload
	case errors.As(err, &se):
		return kindToCode(se.Kind)
	}
	// Failures outside a supervised phase (e.g. loading the pinball for
	// a slice criterion) classify the same way the supervisor would.
	return kindToCode(supervisor.Classify(err))
}

// pinballAttributable reports whether a failure code blames the pinball
// content itself — the codes the circuit breaker counts. Quota, limit
// and bad-request failures are the *request's* fault and must not poison
// the pinball's circuit.
func pinballAttributable(code string) bool {
	switch code {
	case CodeCorrupt, CodeDivergence, CodeTimeout, CodePanic:
		return true
	}
	return false
}

// sessionResult is what one executed session hands the server loop.
type sessionResult struct {
	result     json.RawMessage
	annotation string // CodeSalvaged / CodeDegraded, "" for a clean run
	report     *supervisor.Report
}

// runner executes admitted session requests. It is stateless; all
// policy (quotas, retry, chaos) arrives from the server's config.
type runner struct {
	sup   supervisor.Options
	chaos func(op string) vm.Tracer // test-only fault injection, nil in production
}

// chaosTracer returns the injected observer for ops that replay, nil
// normally.
func (r *runner) chaosTracer(op string) vm.Tracer {
	if r.chaos == nil {
		return nil
	}
	return r.chaos(op)
}

// loadProgram compiles the request's program: a server-local source file
// or a registered workload, exactly one of which must be named.
func loadProgram(req *Request) (*drdebug.Program, error) {
	switch {
	case req.File != "" && req.Workload != "":
		return nil, badRequest("file and workload are mutually exclusive")
	case req.File != "":
		prog, err := drdebug.CompileFile(req.File)
		if err != nil {
			return nil, badRequest("compile %s: %v", req.File, err)
		}
		return prog, nil
	case req.Workload != "":
		w, err := drdebug.WorkloadByName(req.Workload)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		prog, err := w.Program()
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", req.Workload, err)
		}
		return prog, nil
	}
	return nil, badRequest("need file or workload")
}

// loadSession opens the request's pinball (path in field; salvage per
// the request), reporting whether salvage ran.
func loadSession(prog *drdebug.Program, path string, salvage bool, limits vm.Limits, sup supervisor.Options) (*core.Session, bool, error) {
	if path == "" {
		return nil, false, badRequest("need pinball")
	}
	var sess *core.Session
	var salvaged bool
	if salvage {
		s, rep, err := core.LoadSessionSalvage(prog, path)
		if err != nil {
			return nil, false, err
		}
		sess, salvaged = s, rep != nil && !rep.Intact
	} else {
		s, err := core.LoadSession(prog, path)
		if err != nil {
			return nil, false, err
		}
		sess = s
	}
	sess.SetLimits(limits)
	sess.SetSupervisor(sup)
	return sess, salvaged, nil
}

// run executes one admitted session request under the given limits.
func (r *runner) run(req *Request, limits vm.Limits) (*sessionResult, error) {
	switch req.Op {
	case OpRecord:
		return r.record(req, limits)
	case OpReplay:
		return r.replay(req, limits)
	case OpSlice:
		return r.slice(req, limits)
	case OpDualSlice:
		return r.dualSlice(req, limits)
	case OpSliceShard:
		return r.sliceShard(req, limits)
	}
	return nil, badRequest("unknown op %q", req.Op)
}

func (r *runner) record(req *Request, limits vm.Limits) (*sessionResult, error) {
	if req.Out == "" {
		return nil, badRequest("record needs out")
	}
	prog, err := loadProgram(req)
	if err != nil {
		return nil, err
	}
	cfg := drdebug.LogConfig{
		Seed:        req.Seed,
		Input:       req.Input,
		MeanQuantum: req.MeanQuantum,
		MaxSteps:    limits.Steps,
	}
	pb, rep, err := supervisor.Record(prog, cfg, drdebug.RegionSpec{}, r.sup)
	if err != nil {
		return &sessionResult{report: rep}, err
	}
	if err := pb.Save(req.Out); err != nil {
		return &sessionResult{report: rep}, err
	}
	return &sessionResult{
		result: encode(RecordResult{
			Pinball:      req.Out,
			RegionInstrs: pb.RegionInstrs,
			Checkpoints:  len(pb.Checkpoints),
		}),
		report: rep,
	}, nil
}

func (r *runner) replay(req *Request, limits vm.Limits) (*sessionResult, error) {
	prog, err := loadProgram(req)
	if err != nil {
		return nil, err
	}
	sess, salvaged, err := loadSession(prog, req.Pinball, req.Salvage, limits, r.sup)
	if err != nil {
		return nil, err
	}
	res, err := sess.ReplaySupervised(r.chaosTracer(OpReplay))
	var report *supervisor.Report
	if res != nil {
		report = res.Report
	}
	if err != nil {
		return &sessionResult{report: report}, err
	}
	out := &sessionResult{report: report}
	payload := ReplayResult{Degraded: res.Degraded, RecoveredStep: res.RecoveredStep}
	if res.Replay != nil {
		payload.Executed, payload.Checked = res.Replay.Executed, res.Replay.Checked
	}
	if gr := sess.GapReport(); gr != nil {
		payload.BridgedWindows = gr.Windows
		payload.BridgedInstrs = gr.GapInstrs
		payload.EstimatedWindows = len(gr.Estimated)
	}
	out.result = encode(payload)
	switch {
	case payload.EstimatedWindows > 0:
		out.annotation = CodeEstimated
	case res.Degraded:
		out.annotation = CodeDegraded
	case salvaged:
		out.annotation = CodeSalvaged
	}
	return out, nil
}

func (r *runner) slice(req *Request, limits vm.Limits) (*sessionResult, error) {
	prog, err := loadProgram(req)
	if err != nil {
		return nil, err
	}
	sess, salvaged, err := loadSession(prog, req.Pinball, req.Salvage, limits, r.sup)
	if err != nil {
		return nil, err
	}
	sess.SetParallelWorkers(req.Workers)

	// The whole criterion-resolution + trace + slice pipeline runs as
	// one supervised phase: a panicking analysis pass or a hung trace
	// collection surfaces as a typed failure, and transient failures
	// retry under the server's backoff policy.
	var sl *drdebug.Slice
	rep, err := supervisor.Run(supervisor.PhaseSlice, r.sup, func() error {
		var serr error
		switch {
		case req.Var != "":
			sl, serr = sess.SliceForVariable(req.Var)
		case req.Line > 0:
			nth := req.Nth
			if nth <= 0 {
				nth = 1
			}
			sl, serr = sess.SliceAtLine(req.Tid, int32(req.Line), nth)
		default:
			sl, serr = sess.SliceAtFailure()
		}
		return serr
	})
	out := &sessionResult{report: rep}
	if err != nil {
		return out, err
	}
	out.result = encode(SliceResult{
		Members:        len(sl.Members),
		TraceLen:       sl.Stats.TraceLen,
		Deps:           len(sl.Deps),
		PrunedBypasses: int(sl.Stats.PrunedBypasses),
		Digest:         slice.Summarize(sl).Digest,
		Prov:           sl.Prov,
	})
	switch {
	case sl.Prov != nil && sl.Prov.Degraded():
		out.annotation = CodeEstimated
	case salvaged:
		out.annotation = CodeSalvaged
	}
	return out, nil
}

// sliceShard advances one window range of a distributed slice query
// (see slice.SliceShard): an empty State starts a fresh query at the
// request's criterion, otherwise the carried state resumes. The engine
// comes from the shared LRU keyed on pinball content, so a worker
// answering shards of the same pinball reuses its hot engine exactly
// like whole-slice sessions do.
func (r *runner) sliceShard(req *Request, limits vm.Limits) (*sessionResult, error) {
	if req.Proto < ProtoV2 {
		return nil, badRequest("slice_shard requires proto >= %d", ProtoV2)
	}
	var st *slice.QueryState
	if len(req.State) > 0 {
		st = &slice.QueryState{}
		if err := json.Unmarshal(req.State, st); err != nil {
			return nil, badRequest("bad shard state: %v", err)
		}
	}
	prog, err := loadProgram(req)
	if err != nil {
		return nil, err
	}
	sess, salvaged, err := loadSession(prog, req.Pinball, req.Salvage, limits, r.sup)
	if err != nil {
		return nil, err
	}
	sess.SetParallelWorkers(req.Workers)

	var payload ShardResult
	rep, err := supervisor.Run(supervisor.PhaseSlice, r.sup, func() error {
		eng, serr := sess.ParallelSlicer()
		if serr != nil {
			return serr
		}
		var crit tracer.Ref
		var bound int
		if st != nil {
			crit, bound = st.Crit, st.Bound
		} else {
			crit, serr = sess.ResolveCriterion(req.Var, req.Tid, int32(req.Line), req.Nth)
			if serr != nil {
				return serr
			}
			if bound, serr = eng.StartBound(crit); serr != nil {
				return serr
			}
		}
		next, serr := eng.SliceShard(crit, st, eng.NextShardLo(bound, req.ShardWindows))
		if serr != nil {
			return serr
		}
		raw, serr := json.Marshal(next)
		if serr != nil {
			return serr
		}
		payload = ShardResult{Done: next.Done, Bound: next.Bound, State: raw}
		if next.Done {
			sum, serr := eng.SummarizeState(next)
			if serr != nil {
				return serr
			}
			payload.Members, payload.TraceLen = sum.Members, sum.TraceLen
			payload.Deps, payload.Pruned = sum.Deps, sum.PrunedBypasses
			payload.Digest = sum.Digest
			payload.Prov = eng.SummarizeProvenance(next)
		}
		return nil
	})
	out := &sessionResult{report: rep}
	if err != nil {
		return out, err
	}
	out.result = encode(payload)
	switch {
	case payload.Prov != nil && payload.Prov.Degraded():
		out.annotation = CodeEstimated
	case salvaged:
		out.annotation = CodeSalvaged
	}
	return out, nil
}

func (r *runner) dualSlice(req *Request, limits vm.Limits) (*sessionResult, error) {
	if req.Var == "" {
		return nil, badRequest("dualslice needs var")
	}
	if req.PassingPinball == "" {
		return nil, badRequest("dualslice needs passing_pinball")
	}
	prog, err := loadProgram(req)
	if err != nil {
		return nil, err
	}
	failing, salvaged, err := loadSession(prog, req.Pinball, req.Salvage, limits, r.sup)
	if err != nil {
		return nil, err
	}
	passing, _, err := loadSession(prog, req.PassingPinball, req.Salvage, limits, r.sup)
	if err != nil {
		return nil, err
	}
	failing.SetParallelWorkers(req.Workers)
	passing.SetParallelWorkers(req.Workers)

	var payload DualSliceResult
	rep, err := supervisor.Run(supervisor.PhaseSlice, r.sup, func() error {
		d, derr := core.DualSlice(failing, passing, req.Var)
		if derr != nil {
			return derr
		}
		payload = DualSliceResult{
			OnlyFailing: len(d.OnlyFailing),
			OnlyPassing: len(d.OnlyPassing),
			Common:      len(d.Common),
		}
		return nil
	})
	out := &sessionResult{report: rep}
	if err != nil {
		return out, err
	}
	out.result = encode(payload)
	if salvaged {
		out.annotation = CodeSalvaged
	}
	return out, nil
}

// breakerKey identifies the pinball content a session op runs against,
// "" when the op touches no existing pinball (record).
func breakerKey(req *Request) string {
	switch req.Op {
	case OpReplay, OpSlice, OpDualSlice, OpSliceShard:
		// Digest-named requests already carry their content identity; the
		// resolved spool path must share the circuit with every other
		// request for the same digest, whatever path it materialized to.
		if req.Digest != "" {
			return "digest:" + req.Digest
		}
		if req.Pinball == "" {
			return ""
		}
		return pinballContentID(req.Pinball)
	}
	return ""
}
