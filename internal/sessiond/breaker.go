package sessiond

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// BreakerConfig tunes the per-pinball circuit breaker.
type BreakerConfig struct {
	// K is the consecutive-failure threshold that opens a pinball's
	// circuit (default 3; negative disables the breaker).
	K int
	// Cooldown is how long an opened circuit rejects before letting a
	// trial request through (default 30s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.K == 0 {
		c.K = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// breakerEntry is one pinball's failure history.
type breakerEntry struct {
	consecutive int
	openUntil   time.Time
	// Cached failure report served while the circuit is open, so a
	// fast-failed client still learns what is wrong with the pinball.
	lastCode string
	lastErr  string
}

// breaker is the per-pinball circuit breaker. Sessions against a
// pinball whose content has failed K times in a row fail fast with the
// cached report until the cooldown expires; then one (or a raced few)
// trial requests pass, and a single further failure re-opens the
// circuit for another cooldown, while a success closes it.
//
// Keys are content digests of the pinball file, not paths: replacing a
// corrupt file with a good one under the same name closes its circuit
// instantly, and copying a corrupt file to a new path does not reset
// its failure history.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg.withDefaults(), now: now, entries: make(map[string]*breakerEntry)}
}

// pinballContentID digests a pinball file's bytes for breaker keying.
// Unlike pinball.Pinball.ID it works on files that do not even load —
// the breaker's most important customers. An unreadable file keys on
// its path (the best identity available).
func pinballContentID(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return "path:" + path
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		return "path:" + path
	}
	var buf [8]byte
	sum := h.Sum64()
	for i := range buf {
		buf[i] = byte(sum >> (8 * i))
	}
	return string(buf[:])
}

// RouteKey derives a stable routing identity for a request — the key
// the fleet's rendezvous hash places on a worker. Requests naming a
// pinball key on its content digest (the same bytes always land on the
// same worker, so its engine LRU stays hot; renaming or copying the
// file does not move it), record requests key on their output path, and
// anything else on its program source.
func RouteKey(req *Request) string {
	switch {
	case req.Digest != "":
		// Digest-named requests (sessions by digest, store fetch/stat)
		// route on the digest itself: the rendezvous owner of
		// "digest:<d>" is where store_put replicates first, so sessions
		// land where the bytes already are.
		return "digest:" + req.Digest
	case req.Pinball != "":
		return pinballContentID(req.Pinball)
	case req.Out != "":
		return "out:" + req.Out
	default:
		return "prog:" + req.File + ":" + req.Workload
	}
}

// check reports whether the circuit for id is open; when open it
// returns the cached failure code and message.
func (b *breaker) check(id string) (open bool, code, msg string) {
	if b.cfg.K < 0 || id == "" {
		return false, "", ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[id]
	if !ok || b.now().Before(e.openUntil) == false {
		return false, "", ""
	}
	return true, e.lastCode, e.lastErr
}

// success closes id's circuit.
func (b *breaker) success(id string) {
	if b.cfg.K < 0 || id == "" {
		return
	}
	b.mu.Lock()
	delete(b.entries, id)
	b.mu.Unlock()
}

// failure records a session failure attributable to the pinball's
// content; the K-th consecutive one opens the circuit for the cooldown
// (and a failed post-cooldown trial re-opens it immediately).
func (b *breaker) failure(id, code, msg string) {
	if b.cfg.K < 0 || id == "" {
		return
	}
	b.mu.Lock()
	e, ok := b.entries[id]
	if !ok {
		e = &breakerEntry{}
		b.entries[id] = e
	}
	e.consecutive++
	e.lastCode, e.lastErr = code, msg
	if e.consecutive >= b.cfg.K {
		e.openUntil = b.now().Add(b.cfg.Cooldown)
	}
	b.mu.Unlock()
}

// snapshot reports every tracked circuit's state for the stats op,
// sorted by key so the JSON shape is deterministic. Keys are rendered
// hex (content digests are raw bytes on the wire otherwise).
func (b *breaker) snapshot() []BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.entries) == 0 {
		return nil
	}
	now := b.now()
	out := make([]BreakerState, 0, len(b.entries))
	for id, e := range b.entries {
		st := BreakerState{
			Pinball:     fmt.Sprintf("%x", id),
			Open:        now.Before(e.openUntil),
			Consecutive: e.consecutive,
			LastCode:    e.lastCode,
		}
		if st.Open {
			st.CooldownUntilMS = e.openUntil.UnixMilli()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pinball < out[j].Pinball })
	return out
}

// openCount reports how many circuits are currently open.
func (b *breaker) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	n := 0
	for _, e := range b.entries {
		if now.Before(e.openUntil) {
			n++
		}
	}
	return n
}
